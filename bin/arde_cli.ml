(* The arde command-line tool.

   Subcommands:
     list         enumerate bundled workloads (unit-suite cases + PARSEC)
     show         print a workload's TIR (optionally lowered)
     spin-report  run the instrumentation phase and list accepted /
                  rejected spinning read loops
     run          execute a workload under a detector configuration and
                  print the warnings (and the verdict for labelled cases)
     trace        dump a machine event trace
     suite        reproduce Table 1 (or one configuration's tally)
     parsec       reproduce Tables 3-6 *)

module W = Arde_workloads
open Cmdliner

(* A workload name, or a path to a .tir file. *)
let find_program name =
  match W.Catalog.find name with
  | Some (W.Catalog.Case c) -> Ok (c.W.Racey.program, Some c)
  | Some (W.Catalog.Parsec (_, p)) -> Ok (p, None)
  | None -> (
      match () with
      | () ->
          if Sys.file_exists name then begin
            let ic = open_in name in
            let len = in_channel_length ic in
            let text = really_input_string ic len in
            close_in ic;
            match Arde.Parse.program text with
            | Ok p -> (
                match Arde.Validate.check p with
                | Ok () -> Ok (p, None)
                | Error es ->
                    Error
                      (Printf.sprintf "%s: %s" name
                         (String.concat "; "
                            (List.map Arde.Validate.error_to_string es))))
            | Error e ->
                Error
                  (Printf.sprintf "%s: %s" name (Arde.Parse.error_to_string e))
          end
          else
            Error
              (Printf.sprintf
                 "unknown workload %S and no such file (try `arde list`)" name))

let style_conv =
  let parse = function
    | "compact" -> Ok Arde.Lower.Compact
    | "realistic" -> Ok Arde.Lower.Realistic
    | "futex" -> Ok Arde.Lower.Futex
    | s -> Error (`Msg (Printf.sprintf "unknown lowering style %S" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | Arde.Lower.Compact -> "compact"
      | Arde.Lower.Realistic -> "realistic"
      | Arde.Lower.Futex -> "futex")
  in
  Arg.conv (parse, print)

let mode_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Arde.Config.parse_mode s) in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Arde.Config.mode_name m))

(* Scheduler policies: "rr:N", "uniform", "chunked:N". *)
let policy_conv =
  let parse s =
    let int_suffix prefix =
      let plen = String.length prefix in
      if String.length s > plen && String.sub s 0 plen = prefix then
        int_of_string_opt (String.sub s plen (String.length s - plen))
      else None
    in
    match s with
    | "uniform" -> Ok Arde.Sched.Uniform
    | _ -> (
        match (int_suffix "rr:", int_suffix "chunked:") with
        | Some q, _ when q > 0 -> Ok (Arde.Sched.Round_robin q)
        | _, Some n when n > 0 -> Ok (Arde.Sched.Chunked n)
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown policy %S (use rr:N, uniform or chunked:N)" s)))
  in
  let print ppf = function
    | Arde.Sched.Round_robin q -> Format.fprintf ppf "rr:%d" q
    | Arde.Sched.Uniform -> Format.pp_print_string ppf "uniform"
    | Arde.Sched.Chunked n -> Format.fprintf ppf "chunked:%d" n
  in
  Arg.conv (parse, print)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let mode_arg =
  Arg.(
    value
    & opt mode_conv (Arde.Config.Helgrind_spin 7)
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "Detector configuration: lib, lib+spin:K, nolib+spin:K, \
           nolib+spin+locks:K, drd.")

let lower_arg =
  Arg.(
    value
    & opt (some style_conv) None
    & info [ "lower" ] ~docv:"STYLE"
        ~doc:"Lower the program first (compact, realistic or futex).")

let k_arg =
  Arg.(
    value & opt int 7
    & info [ "k" ] ~docv:"K" ~doc:"Spin window in basic blocks.")

(* ---- the shared detection-option spec ----
   Every detection subcommand (run, suite, chaos, compare, parsec) reads
   --seeds/--fuel/--policy/--jobs from this single spec, so a new option
   cannot drift between subcommands.  The term evaluates to a transformer
   applied to the subcommand's baseline options. *)

let seeds_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "s"; "seeds" ] ~docv:"N"
        ~doc:
          "Number of scheduler seeds to run (default: the subcommand's \
           baseline).")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"STEPS"
        ~doc:
          "Maximum machine steps per seed before the run is declared \
           exhausted (fuel-starvation scenarios).")

let policy_arg =
  Arg.(
    value
    & opt (some policy_conv) None
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Scheduler policy: rr:N, uniform or chunked:N.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Domain-pool width for the per-seed stage; 0 means one domain \
           per core.  Reports and exit codes are identical for every \
           value.")

let analysis_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("sweep", Arde.Options.Sweep);
                ("predict", Arde.Options.Predict);
                ("both", Arde.Options.Both);
              ]))
        None
    & info [ "analysis" ] ~docv:"ANALYSIS"
        ~doc:
          "How races are found: $(b,sweep) (default) runs the detector on \
           every seed; $(b,predict) records only the first two seeds and \
           predicts sync-preserving races from their traces; $(b,both) \
           sweeps every seed and predicts from the first recordings.")

let maybe f v base = match v with None -> base | Some v -> f v base

let common_opts : (Arde.Options.t -> Arde.Options.t) Cmdliner.Term.t =
  let apply seeds fuel policy jobs analysis base =
    base
    |> maybe Arde.Options.with_seed_count seeds
    |> maybe Arde.Options.with_fuel fuel
    |> maybe Arde.Options.with_policy policy
    |> maybe Arde.Options.with_jobs jobs
    |> maybe Arde.Options.with_analysis analysis
  in
  Term.(const apply $ seeds_arg $ fuel_arg $ policy_arg $ jobs_arg $ analysis_arg)

(* ---- output format ---- *)

type format = Text | Json

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: human-readable $(b,text) or the stable \
           machine-readable $(b,json).")

let print_json j = print_endline (Arde.Json.to_string ~minify:false j)

(* Exit codes shared by run/suite/chaos: 0 clean, 1 races reported,
   2 degraded (some seed deadlocked / livelocked / starved / crashed),
   3 failed (nothing ran). *)
let exit_code ~races (health : Arde.Driver.health) =
  match health.Arde.Driver.h_verdict with
  | Arde.Driver.Failed -> 3
  | Arde.Driver.Degraded -> 2
  | Arde.Driver.Healthy -> if races then 1 else 0

(* ---- list ---- *)

let list_cmd =
  let run () =
    Printf.printf "PARSEC workloads:\n";
    List.iter
      (fun (i, p) ->
        Printf.printf "  %-16s %-7s %6d LOC, %d threads\n" i.W.Parsec.pname
          i.W.Parsec.model (W.Parsec.loc_of p) i.W.Parsec.threads)
      (W.Parsec.all ());
    Printf.printf "\nUnit-suite cases (%d):\n" (List.length (W.Racey.all ()));
    List.iter
      (fun c ->
        Printf.printf "  %-28s %-6s %2d threads  %s\n" c.W.Racey.name
          c.W.Racey.category c.W.Racey.threads
          (match c.W.Racey.expectation with
          | Arde.Classify.Race_free -> "race-free"
          | Arde.Classify.Racy bs -> "racy on " ^ String.concat ", " bs))
      (W.Racey.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List bundled workloads.") Term.(const run $ const ())

(* ---- show ---- *)

let show_cmd =
  let run name lower =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (p, _) ->
        let p = match lower with Some s -> Arde.Lower.lower ~style:s p | None -> p in
        print_endline (Arde.Pretty.program_to_string p)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a workload's TIR.")
    Term.(const run $ name_arg $ lower_arg)

(* ---- spin-report ---- *)

let spin_report_cmd =
  let run name lower k =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (p, _) ->
        let p = match lower with Some s -> Arde.Lower.lower ~style:s p | None -> p in
        let inst = Arde.Instrument.analyze ~k p in
        Format.printf "%a@." Arde.Instrument.pp_summary inst
  in
  Cmd.v
    (Cmd.info "spin-report"
       ~doc:"Run the instrumentation phase and report spinning read loops.")
    Term.(const run $ name_arg $ lower_arg $ k_arg)

(* ---- run / replay shared output ----
   One renderer behind both `arde run` and `arde replay` (and the
   local half of record --detect): the result prints identically
   whether it came from a live run or a trace. *)

let render_result ~format ~workload ?case ?analysis_cache result =
  let health = result.Arde.Driver.health in
  let code =
    exit_code
      ~races:(Arde.Report.n_contexts result.Arde.Driver.merged > 0)
      health
  in
  let verdict =
    Option.map
      (fun c ->
        Arde.Classify.classify c.W.Racey.expectation
          ~reported:(Arde.Driver.racy_bases result))
      case
  in
  match format with
  | Json -> (
      (* Built from the serialized result by the same function
         `arde submit` uses, so the two paths stay byte-identical. *)
      match
        Arde_server.Protocol.run_output ~workload
          ?expectation:(Option.map (fun c -> c.W.Racey.expectation) case)
          ?analysis_cache
          (Arde.Driver.result_to_json result)
      with
      | Ok (obj, code) ->
          print_json obj;
          code
      | Error e ->
          prerr_endline ("internal: malformed result json: " ^ e);
          3)
  | Text ->
      Printf.printf "mode: %s   spin loops found: %d\n"
        (Arde.Config.mode_name result.Arde.Driver.mode)
        result.Arde.Driver.n_spin_loops;
      List.iter
        (fun sr ->
          Format.printf "seed %d: %a, %d steps, %d contexts, %d spin edges@."
            sr.Arde.Driver.sr_seed Arde.Driver.pp_seed_outcome
            sr.Arde.Driver.sr_outcome sr.Arde.Driver.sr_steps
            sr.Arde.Driver.sr_contexts sr.Arde.Driver.sr_spin_edges)
        result.Arde.Driver.runs;
      Format.printf "%a@." Arde.Report.pp result.Arde.Driver.merged;
      List.iter
        (fun d -> Format.printf "static: %a@." Arde.Cv_checker.pp_diagnostic d)
        result.Arde.Driver.static_cv_hazards;
      List.iter
        (fun sr ->
          List.iter
            (fun d ->
              Format.printf "seed %d: %a@." sr.Arde.Driver.sr_seed
                Arde.Cv_checker.pp_diagnostic d)
            sr.Arde.Driver.sr_cv_diagnostics)
        result.Arde.Driver.runs;
      (match result.Arde.Driver.prediction with
      | None -> ()
      | Some p ->
          Printf.printf
            "prediction: %d section(s), %d events, %d candidate pair(s), %d \
             predicted, %d new context(s)\n"
            p.Arde.Driver.pr_sections p.Arde.Driver.pr_events
            p.Arde.Driver.pr_candidates p.Arde.Driver.pr_predicted
            p.Arde.Driver.pr_new_contexts;
          List.iter
            (fun n -> Printf.printf "prediction: %s\n" n)
            p.Arde.Driver.pr_notes);
      (match verdict with
      | None -> ()
      | Some v ->
          Format.printf "verdict: %s (%a)@."
            (match Arde.Classify.outcome_of v with
            | Arde.Classify.Correct -> "correctly analyzed"
            | Arde.Classify.False_alarm -> "FALSE ALARM"
            | Arde.Classify.Missed_race -> "MISSED RACE")
            Arde.Classify.pp_verdict v);
      Format.printf "health: %a@." Arde.Driver.pp_health health;
      code

(* ---- run ---- *)

let run_cmd =
  let run name mode opts format =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (p, case) ->
        let options = opts Arde.Options.default in
        let before = Arde.Analysis_cache.stats () in
        let result =
          Arde.detect ~ctx:(Arde.Driver.ctx ~options ()) ~mode
            (Arde.Input.Program p)
        in
        let cache_delta =
          Arde.Analysis_cache.stats_delta ~before
            ~after:(Arde.Analysis_cache.stats ())
        in
        exit
          (render_result ~format ~workload:name ?case
             ~analysis_cache:(Arde.Analysis_cache.stats_to_json cache_delta)
             result)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a workload under a detector configuration.  Exit codes: 0 \
          clean, 1 races reported, 2 degraded run, 3 failed run.")
    Term.(const run $ name_arg $ mode_arg $ common_opts $ format_arg)

(* ---- record / replay ---- *)

let read_binary_file path =
  match open_in_bin path with
  | ic ->
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      close_in ic;
      Ok data
  | exception Sys_error e -> Error e

let write_binary_file path data =
  match open_out_bin path with
  | oc -> (
      match
        output_string oc data;
        close_out oc
      with
      | () -> Ok ()
      | exception Sys_error e -> Error e)
  | exception Sys_error e -> Error e

let record_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the binary trace.")
  in
  let detect_arg =
    Arg.(
      value & flag
      & info [ "detect" ]
          ~doc:
            "Run the full detection pipeline alongside the recording and \
             print its result (exit codes as $(b,arde run)); without it \
             only the cheap recording pass runs and the exit code is 0.")
  in
  let run name mode opts out detect_too format =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (p, case) ->
        let options = opts Arde.Options.default in
        let ctx = Arde.Driver.ctx ~options () in
        (match
           Arde.record ~ctx ~mode ~detect:detect_too ~source:name
             (Arde.Input.Program p)
         with
        | Error e ->
            prerr_endline ("record: " ^ e);
            exit 3
        | Ok { Arde.Driver.rec_trace; rec_result } -> (
            (match write_binary_file out rec_trace with
            | Ok () -> ()
            | Error e ->
                prerr_endline ("record: " ^ e);
                exit 3);
            Printf.eprintf "recorded %s under %s: %d seed(s), %d bytes -> %s\n%!"
              name
              (Arde.Config.mode_name mode)
              (List.length options.Arde.Options.seeds)
              (String.length rec_trace) out;
            match rec_result with
            | None -> exit 0
            | Some result ->
                exit (render_result ~format ~workload:name ?case result)))
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Execute a workload with the trace sink attached and write the \
          compact binary trace; $(b,arde replay) later reproduces the \
          detection results byte-for-byte without re-running the machine.")
    Term.(
      const run $ name_arg $ mode_arg $ common_opts $ out_arg $ detect_arg
      $ format_arg)

let wire_arg =
  let wire_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error
            (fun e -> `Msg e)
            (Arde_server.Protocol.parse_wire s)),
        fun ppf w ->
          Format.pp_print_string ppf (Arde_server.Protocol.wire_name w) )
  in
  Arg.(
    value
    & opt wire_conv Arde_server.Protocol.Json
    & info [ "wire" ] ~docv:"WIRE"
        ~doc:
          "Request encoding on the serve socket: $(b,json) (default) or \
           $(b,binary).  Binary negotiates via a hello handshake and \
           carries programs and traces as raw bytes; responses and exit \
           codes are byte-identical either way.")

let replay_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"A binary trace written by arde record.")
  in
  let socket_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Submit the trace to a running $(b,arde serve) daemon (the \
             replay-farm path) instead of replaying locally.")
  in
  let connect_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Like $(b,--socket), but over the daemon's TCP listener \
             (started with $(b,arde serve --tcp)).")
  in
  let run file socket connect wire format =
    match read_binary_file file with
    | Error e ->
        prerr_endline ("replay: " ^ e);
        exit 4
    | Ok trace -> (
        (* Label the output (and classify labelled catalog cases) by the
           recorded source, same as the local path — the header read is
           cheap and skips the event bodies. *)
        let workload, case =
          match Arde.Trace_codec.read_header trace with
          | Ok { Arde.Trace_codec.h_source = ""; _ } | Error _ -> (file, None)
          | Ok { Arde.Trace_codec.h_source = s; _ } -> (
              match W.Catalog.find s with
              | Some (W.Catalog.Case c) -> (s, Some c)
              | _ -> (s, None))
        in
        match (socket, connect) with
        | Some _, Some _ ->
            prerr_endline
              "replay: --socket and --connect are mutually exclusive";
            exit 1
        | (Some _, None | None, Some _) as remote -> (
            let endpoint =
              match remote with
              | Some path, None -> Arde_server.Client.Unix_socket path
              | _, Some hp -> (
                  match Arde_server.Client.parse_tcp_endpoint hp with
                  | Ok e -> e
                  | Error e ->
                      prerr_endline ("replay: " ^ e);
                      exit 1)
              | None, None -> assert false
            in
            let reply, _attempts =
              Arde_server.Client.submit_trace_with_retry ~endpoint
                ~policy:Arde_server.Client.no_retry ~wire ~trace ()
            in
            match reply with
            | Error e ->
                prerr_endline ("replay: " ^ e);
                exit 4
            | Ok resp when not (Arde_server.Protocol.response_ok resp) -> (
                match Arde_server.Protocol.response_error resp with
                | Some (code, msg) ->
                    Printf.eprintf "replay: server error (%s): %s\n" code msg;
                    exit 4
                | None ->
                    prerr_endline "replay: malformed server response";
                    exit 4)
            | Ok resp -> (
                match Arde.Json.member "result" resp with
                | None ->
                    prerr_endline "replay: response carries no result";
                    exit 4
                | Some result_json -> (
                    match
                      Arde_server.Protocol.run_output ~workload
                        ?expectation:
                          (Option.map
                             (fun c -> c.W.Racey.expectation)
                             case)
                        ?analysis_cache:
                          (Arde.Json.member "analysis_cache" resp)
                        result_json
                    with
                    | Ok (obj, code) ->
                        print_json obj;
                        exit code
                    | Error e ->
                        prerr_endline ("replay: malformed result json: " ^ e);
                        exit 4)))
        | None, None -> (
            match Arde.Recorded.of_string trace with
            | Error e ->
                prerr_endline ("replay: " ^ file ^ ": " ^ e);
                exit 4
            | Ok recorded ->
                let result =
                  Arde.detect (Arde.Input.Recorded_trace recorded)
                in
                exit (render_result ~format ~workload ?case result)))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a recorded binary trace through the detector without \
          re-executing the program; the output (and exit code 0-3) is \
          byte-identical to the run that recorded it.  Exit 4 on an \
          unreadable trace or a transport error.")
    Term.(
      const run $ file_arg $ socket_opt_arg $ connect_opt_arg $ wire_arg
      $ format_arg)

(* ---- predict ---- *)

let predict_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE|WORKLOAD"
          ~doc:
            "A binary trace written by $(b,arde record), or a workload \
             name / .tir file to record and predict from.")
  in
  let run target mode opts format =
    (* A readable file that loads as a trace is predicted from directly
       (nothing executes); anything else resolves like `arde run` and
       records the two seeds prediction needs. *)
    let as_trace =
      match read_binary_file target with
      | Error _ -> None
      | Ok data -> (
          match Arde.Recorded.of_string data with
          | Ok r -> Some r
          | Error _ -> None)
    in
    match as_trace with
    | Some recorded ->
        let options =
          Arde.Options.with_analysis Arde.Options.Predict Arde.Options.default
        in
        let workload, case =
          match Arde.Recorded.source recorded with
          | "" -> (target, None)
          | s -> (
              match W.Catalog.find s with
              | Some (W.Catalog.Case c) -> (s, Some c)
              | _ -> (s, None))
        in
        let result =
          Arde.detect
            ~ctx:(Arde.Driver.ctx ~options ())
            (Arde.Input.Recorded_trace recorded)
        in
        exit (render_result ~format ~workload ?case result)
    | None -> (
        match find_program target with
        | Error e ->
            prerr_endline e;
            exit 1
        | Ok (p, case) ->
            let options =
              opts Arde.Options.default
              |> Arde.Options.with_analysis Arde.Options.Predict
            in
            let result =
              Arde.detect
                ~ctx:(Arde.Driver.ctx ~options ())
                ~mode (Arde.Input.Program p)
            in
            exit (render_result ~format ~workload:target ?case result))
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Predict sync-preserving races.  From a recorded trace, nothing \
          executes: races are predicted from the recorded sections on top \
          of the pinned replay.  From a workload, only the first two seeds \
          run (with recording on) and prediction covers the schedules the \
          sweep did not visit.  Exit codes as $(b,arde run).")
    Term.(const run $ target_arg $ mode_arg $ common_opts $ format_arg)

(* ---- trace ---- *)

let trace_cmd =
  let limit_arg =
    Arg.(value & opt int 200 & info [ "limit" ] ~docv:"N" ~doc:"Events to print.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")
  in
  let run name seed limit lower =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (p, _) ->
        let p = match lower with Some s -> Arde.Lower.lower ~style:s p | None -> p in
        let trace = Arde.Trace.create () in
        let cfg =
          {
            Arde.Machine.default_config with
            Arde.Machine.seed;
            observer = Arde.Trace.observer trace;
          }
        in
        let res = Arde.Machine.run_program cfg p in
        let events = Arde.Trace.events trace in
        List.iteri
          (fun i ev ->
            if i < limit then Format.printf "%6d  %a@." i Arde.Event.pp ev)
          events;
        if List.length events > limit then
          Printf.printf "... (%d more events)\n" (List.length events - limit);
        Format.printf "outcome: %a, %d steps, %d context switches, trace hash %08x@."
          Arde.Machine.pp_outcome res.Arde.Machine.outcome res.Arde.Machine.steps
          res.Arde.Machine.context_switches (Arde.Trace.hash trace);
        Array.iteri
          (fun tid n -> if n > 0 then Format.printf "  T%d: %d steps@." tid n)
          res.Arde.Machine.thread_steps
  in
  let dump_term = Term.(const run $ name_arg $ seed_arg $ limit_arg $ lower_arg) in
  let codec_outcome_name =
    let module C = Arde.Trace_codec in
    function
    | C.Finished -> "finished"
    | C.Deadlock tids ->
        Printf.sprintf "deadlock [%s]"
          (String.concat ", " (List.map string_of_int tids))
    | C.Fuel_exhausted -> "fuel-exhausted"
    | C.Livelock sites ->
        Printf.sprintf "livelock (%d site%s)" (List.length sites)
          (if List.length sites = 1 then "" else "s")
    | C.Fault { ftid; msg; _ } -> Printf.sprintf "fault T%d: %s" ftid msg
    | C.Crashed (_, msg) -> "crashed: " ^ msg
    | C.Cancelled -> "cancelled"
  in
  let info_cmd =
    let file_arg =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"TRACE" ~doc:"A binary trace written by arde record.")
    in
    let counts_arg =
      Arg.(
        value & flag
        & info [ "counts" ]
            ~doc:
              "Also decode every section and print per-kind event counts — \
               what a $(b,arde predict) run will consume.  Decoding reads \
               the whole trace; without this flag event bodies are \
               skipped.")
    in
    let event_kind_name =
      let module E = Arde.Event in
      function
      | E.Read { kind = E.Plain; _ } -> "read.plain"
      | E.Read _ -> "read.atomic"
      | E.Write { kind = E.Plain; _ } -> "write.plain"
      | E.Write _ -> "write.atomic"
      | E.Lock_acq _ -> "lock_acq"
      | E.Lock_rel _ -> "lock_rel"
      | E.Cv_signal _ -> "cv_signal"
      | E.Cv_wait_begin _ -> "cv_wait_begin"
      | E.Cv_wait_return _ -> "cv_wait_return"
      | E.Barrier_arrive _ -> "barrier_arrive"
      | E.Barrier_pass _ -> "barrier_pass"
      | E.Sem_post_ev _ -> "sem_post"
      | E.Sem_acquire _ -> "sem_acquire"
      | E.Spawn_ev _ -> "spawn"
      | E.Join_return _ -> "join_return"
      | E.Thread_start _ -> "thread_start"
      | E.Thread_exit _ -> "thread_exit"
      | E.Spin_enter _ -> "spin_enter"
      | E.Spin_exit _ -> "spin_exit"
    in
    let kind_order =
      [
        "read.plain"; "read.atomic"; "write.plain"; "write.atomic";
        "lock_acq"; "lock_rel"; "cv_signal"; "cv_wait_begin";
        "cv_wait_return"; "barrier_arrive"; "barrier_pass"; "sem_post";
        "sem_acquire"; "spawn"; "join_return"; "thread_start";
        "thread_exit"; "spin_enter"; "spin_exit";
      ]
    in
    (* Per-seed (kind, count) lists in a fixed kind order, zero kinds
       omitted; [None] for sections that fail to decode. *)
    let section_counts data =
      match Arde.Trace_codec.read_sections data with
      | Error _ -> fun _ -> None
      | Ok (_, sections) ->
          let by_seed = Hashtbl.create 8 in
          List.iter
            (fun sec ->
              match Arde.Trace_codec.decode_events_list sec with
              | Error _ | (exception _) -> ()
              | Ok evs ->
                  let tally = Hashtbl.create 16 in
                  List.iter
                    (fun ev ->
                      let k = event_kind_name ev in
                      Hashtbl.replace tally k
                        (1
                        + Option.value ~default:0 (Hashtbl.find_opt tally k)))
                    evs;
                  Hashtbl.replace by_seed sec.Arde.Trace_codec.s_seed
                    (List.filter_map
                       (fun k ->
                         Option.map
                           (fun n -> (k, n))
                           (Hashtbl.find_opt tally k))
                       kind_order))
            sections;
          fun seed -> Hashtbl.find_opt by_seed seed
    in
    (* Header and per-seed framing only: event bodies are skipped, never
       decoded, so this stays fast on huge traces — unless --counts asks
       for the decoded per-kind tallies. *)
    let run file counts format =
      match read_binary_file file with
      | Error e ->
          prerr_endline ("trace info: " ^ e);
          exit 4
      | Ok data -> (
          match Arde.Trace_codec.read_info data with
          | Error e ->
              prerr_endline
                ("trace info: " ^ file ^ ": "
                ^ Arde.Trace_codec.error_to_string e);
              exit 4
          | Ok (h, summaries) -> (
              let module C = Arde.Trace_codec in
              let counts_of =
                if counts then section_counts data else fun _ -> None
              in
              match format with
              | Json ->
                  let module J = Arde.Json in
                  let options_json =
                    match J.parse h.C.h_options with
                    | Ok j -> j
                    | Error _ -> J.String h.C.h_options
                  in
                  print_json
                    (J.Obj
                       [
                         ("version", J.Int C.format_version);
                         ("digest", J.String h.C.h_digest);
                         ("mode", J.String h.C.h_mode);
                         ("source", J.String h.C.h_source);
                         ("options", options_json);
                         ("program_bytes", J.Int (String.length h.C.h_program));
                         ("trace_bytes", J.Int (String.length data));
                         ( "seeds",
                           J.List
                             (List.map
                                (fun s ->
                                  J.Obj
                                    ([
                                       ("seed", J.Int s.C.y_seed);
                                       ("events", J.Int s.C.y_n_events);
                                       ("bytes", J.Int s.C.y_bytes);
                                       ( "bytes_per_event",
                                         if s.C.y_n_events = 0 then J.Null
                                         else
                                           J.Float
                                             (float_of_int s.C.y_bytes
                                             /. float_of_int s.C.y_n_events)
                                       );
                                       ("steps", J.Int s.C.y_steps);
                                       ( "outcome",
                                         J.String
                                           (codec_outcome_name s.C.y_outcome)
                                       );
                                     ]
                                    @
                                    match counts_of s.C.y_seed with
                                    | None -> []
                                    | Some ks ->
                                        [
                                          ( "counts",
                                            J.Obj
                                              (List.map
                                                 (fun (k, n) -> (k, J.Int n))
                                                 ks) );
                                        ]))
                                summaries) );
                       ])
              | Text ->
                  Printf.printf "trace:   %s (%d bytes, format v%d)\n" file
                    (String.length data) C.format_version;
                  Printf.printf "source:  %s\n"
                    (if h.C.h_source = "" then "(none)" else h.C.h_source);
                  Printf.printf "mode:    %s\n" h.C.h_mode;
                  Printf.printf "digest:  %s\n" h.C.h_digest;
                  Printf.printf "options: %s\n" h.C.h_options;
                  Printf.printf "program: %d bytes of canonical TIR\n"
                    (String.length h.C.h_program);
                  List.iter
                    (fun s ->
                      let per_event =
                        if s.C.y_n_events = 0 then "    -"
                        else
                          Printf.sprintf "%5.2f"
                            (float_of_int s.C.y_bytes
                            /. float_of_int s.C.y_n_events)
                      in
                      Printf.printf
                        "seed %4d: %7d events, %7d bytes (%s B/event), %8d \
                         steps, %s\n"
                        s.C.y_seed s.C.y_n_events s.C.y_bytes per_event
                        s.C.y_steps
                        (codec_outcome_name s.C.y_outcome);
                      match counts_of s.C.y_seed with
                      | None ->
                          if counts && s.C.y_n_events > 0 then
                            Printf.printf "           counts: (undecodable)\n"
                      | Some ks ->
                          Printf.printf "           counts: %s\n"
                            (String.concat ", "
                               (List.map
                                  (fun (k, n) -> Printf.sprintf "%s=%d" k n)
                                  ks)))
                    summaries))
    in
    Cmd.v
      (Cmd.info "info"
         ~doc:
           "Print a binary trace's header and per-seed summaries without \
            decoding any event body; $(b,--counts) additionally decodes \
            each section and tallies events per kind.")
      Term.(const run $ file_arg $ counts_arg $ format_arg)
  in
  Cmd.group ~default:dump_term
    (Cmd.info "trace"
       ~doc:
         "Dump a machine event trace (default), or inspect recorded binary \
          traces with $(b,arde trace info).")
    [ info_cmd ]

(* ---- compare ---- *)

let compare_cmd =
  let run name opts k =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (p, _) ->
        let options = opts Arde.Options.default in
        let modes =
          [
            Arde.Config.Helgrind_lib; Arde.Config.Drd; Arde.Config.Helgrind_spin k;
          ]
        in
        let results = Arde.Driver.compare_on_trace ~options ~k p modes in
        Printf.printf
          "replaying %d identical trace(s) through %d detectors:
"
          (List.length options.Arde.Options.seeds)
          (List.length modes);
        List.iter
          (fun (mode, report) ->
            Format.printf "--- %s: %d context(s) ---@."
              (Arde.Config.mode_name mode)
              (Arde.Report.n_contexts report);
            List.iter
              (fun race -> Format.printf "  %a@." Arde.Report.pp_race race)
              (Arde.Report.races report))
          results
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Replay identical traces through several detectors (algorithmic \
          differences only).")
    Term.(const run $ name_arg $ common_opts $ k_arg)

(* ---- fmt ---- *)

let fmt_cmd =
  let run name lower =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (p, _) -> (
        let p =
          match lower with Some s -> Arde.Lower.lower ~style:s p | None -> p
        in
        match Arde.Validate.check p with
        | Ok () -> print_endline (Arde.Pretty.program_to_string p)
        | Error es ->
            List.iter
              (fun e -> prerr_endline (Arde.Validate.error_to_string e))
              es;
            exit 1)
  in
  Cmd.v
    (Cmd.info "fmt"
       ~doc:"Validate a workload or .tir file and print its canonical form.")
    Term.(const run $ name_arg $ lower_arg)

(* ---- suite ---- *)

let suite_cmd =
  let verbose_arg =
    Arg.(value & flag & info [ "failures" ] ~doc:"List per-case failures.")
  in
  let run verbose opts =
    let options = opts Arde_harness.Suite_experiment.suite_options in
    let rows, rendered = Arde_harness.Suite_experiment.table1 ~options () in
    print_string rendered;
    if verbose then
      List.iter
        (fun mr ->
          Format.printf "%a@." Arde_harness.Suite_experiment.pp_failures mr)
        rows
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Reproduce Table 1 over the 120-case unit suite.")
    Term.(const run $ verbose_arg $ common_opts)

(* ---- chaos ---- *)

let chaos_cmd =
  let runs_arg =
    Arg.(
      value & opt int 200
      & info [ "runs" ] ~docv:"N" ~doc:"Number of perturbed executions.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"PRNG seed the perturbation stream derives from.")
  in
  let run name mode opts runs chaos_seed format =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (p, _) ->
        let options = opts Arde.Options.default in
        let report =
          Arde.Chaos.storm ~options ~runs ~seed:chaos_seed mode p
        in
        (match format with
        | Json -> print_json (Arde.Chaos.report_to_json report)
        | Text -> Format.printf "%a@." Arde.Chaos.pp_report report);
        exit (if report.Arde.Chaos.ch_escaped = [] then 0 else 3)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep deterministic fault injections (adversarial schedulers, \
          spurious wakeups, injected faults and crashes, fuel starvation) \
          through the detection pipeline and verify that no exception ever \
          escapes the per-seed sandbox.  Exit code 3 if one does.")
    Term.(
      const run $ name_arg $ mode_arg $ common_opts $ runs_arg
      $ chaos_seed_arg $ format_arg)

(* ---- parsec ---- *)

let parsec_cmd =
  let table_arg =
    Arg.(value & opt int 6 & info [ "table" ] ~docv:"N" ~doc:"Which table (3-6).")
  in
  let run table n_seeds jobs =
    let seeds = Option.map (fun n -> List.init n (fun i -> i + 1)) n_seeds in
    match table with
    | 3 -> print_string (Arde_harness.Parsec_experiment.table3 ())
    | 4 ->
        print_string
          (snd (Arde_harness.Parsec_experiment.table4 ?seeds ?jobs ()))
    | 5 ->
        print_string
          (snd (Arde_harness.Parsec_experiment.table5 ?seeds ?jobs ()))
    | 6 ->
        print_string
          (snd (Arde_harness.Parsec_experiment.table6 ?seeds ?jobs ()))
    | n ->
        Printf.eprintf "no table %d (use 3-6)\n" n;
        exit 1
  in
  Cmd.v
    (Cmd.info "parsec" ~doc:"Reproduce the PARSEC tables (3-6).")
    Term.(const run $ table_arg $ seeds_arg $ jobs_arg)

(* ---- serve / submit ---- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")

(* Client-side endpoint selection: daemons always own a Unix socket and
   may additionally listen on TCP, so the client commands accept either
   [--socket PATH] or [--connect HOST:PORT] — exactly one. *)
let client_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix domain socket path of the daemon.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:
          "Reach the daemon over its TCP listener (started with \
           $(b,arde serve --tcp)) instead of the Unix socket.  The host \
           part is optional and defaults to localhost.  Frames, wires \
           and responses are identical on both transports.")

let endpoint_of ~cmd socket connect =
  match (socket, connect) with
  | Some path, None -> Arde_server.Client.Unix_socket path
  | None, Some hp -> (
      match Arde_server.Client.parse_tcp_endpoint hp with
      | Ok e -> e
      | Error e ->
          prerr_endline (cmd ^ ": " ^ e);
          exit 1)
  | Some _, Some _ ->
      prerr_endline (cmd ^ ": --socket and --connect are mutually exclusive");
      exit 1
  | None, None ->
      prerr_endline (cmd ^ ": one of --socket or --connect is required");
      exit 1

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget per detection run; on expiry the remaining \
           seeds are cancelled cooperatively and the response reports a \
           degraded health verdict with every completed seed's findings.")

let serve_cmd =
  let max_pending_arg =
    Arg.(
      value & opt int 64
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission-control bound on queued requests; beyond it new \
             run requests are refused with a structured $(b,overloaded) \
             error.")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker processes.  Each owns its own domain pool and caches; \
             requests are routed by program-digest affinity and a crashed \
             worker is restarted under exponential backoff.")
  in
  let spool_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spool" ] ~docv:"DIR"
          ~doc:
            "Crash-bundle spool directory (default: the socket path plus \
             $(b,.spool)).  Workers journal every request here before \
             executing it; when one dies the journal is sealed into \
             $(b,DIR/bundles/) for replay with $(b,arde postmortem).")
  in
  let watchdog_arg =
    Arg.(
      value & opt int 120_000
      & info [ "watchdog-ms" ] ~docv:"MS"
          ~doc:
            "SIGKILL bound for a worker executing a request that carries \
             no deadline; requests with deadlines get their deadline plus \
             a fixed grace instead.")
  in
  let chaos_plan_arg =
    (* Deliberately undocumented in the manpage: a fault-injection hook
       for the crash-storm tests and CI, not an operator surface. *)
    Arg.(
      value & opt string ""
      & info [ "chaos-plan" ] ~docv:"PLAN" ~docs:Manpage.s_none)
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the stderr event log.")
  in
  let max_frame_mb_arg =
    Arg.(
      value & opt int 8
      & info [ "max-frame-mb" ] ~docv:"MIB"
          ~doc:
            "Frame-size cap in MiB (default 8).  An oversized frame is \
             refused with a structured $(b,bad_frame) error naming the \
             limit; binary clients learn the cap from the hello \
             handshake.")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:
            "Also listen on this TCP endpoint, speaking the identical \
             frame protocol and wires as the Unix socket; clients reach \
             it with $(b,--connect).  The host part is optional (default \
             localhost); port 0 binds an ephemeral port, logged at \
             startup.")
  in
  let store_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store-dir" ] ~docv:"DIR"
          ~doc:
            "On-disk bundle store shared by all workers (default: the \
             socket path plus $(b,.store)).  Prepared analysis bundles \
             are written back here on first compute and reloaded on \
             memory miss, so restarted daemons and sibling workers start \
             warm.  Inspect it with $(b,arde cache).")
  in
  let store_max_mb_arg =
    Arg.(
      value
      & opt int Arde_server.Store.default_max_mb
      & info [ "store-max-mb" ] ~docv:"MIB"
          ~doc:
            "Bundle-store size bound; after each write-back the least \
             recently used entries are evicted down to it.")
  in
  let no_store_arg =
    Arg.(
      value & flag
      & info [ "no-store" ]
          ~doc:
            "Disable the on-disk bundle store entirely (compute-only \
             serving; every restart begins cold).")
  in
  let run socket workers max_pending jobs default_deadline_ms spool
      watchdog_ms max_frame_mb tcp store_dir store_max_mb no_store chaos_plan
      quiet =
    if max_frame_mb <= 0 then begin
      prerr_endline "serve: --max-frame-mb must be positive";
      exit 1
    end;
    let tcp =
      match tcp with
      | None -> None
      | Some hp -> (
          let host, port_s =
            match String.rindex_opt hp ':' with
            | None -> ("", hp)
            | Some i ->
                ( String.sub hp 0 i,
                  String.sub hp (i + 1) (String.length hp - i - 1) )
          in
          match int_of_string_opt port_s with
          | Some port when port >= 0 && port < 65536 -> Some (host, port)
          | Some _ | None ->
              prerr_endline
                (Printf.sprintf "serve: invalid --tcp endpoint %S (want \
                                 HOST:PORT)" hp);
              exit 1)
    in
    let store_dir =
      if no_store then None
      else Some (Option.value store_dir ~default:(socket ^ ".store"))
    in
    let log =
      if quiet then ignore
      else fun m -> Printf.eprintf "[arde-serve] %s\n%!" m
    in
    let cfg =
      Arde_server.Server.config ?tcp ~workers ~max_pending
        ~max_frame:(max_frame_mb * 1024 * 1024) ?jobs ?default_deadline_ms
        ~watchdog_ms ?spool_dir:spool ?store_dir
        ~store_max_mb:(max 1 store_max_mb) ~chaos_plan ~log
        ~socket_path:socket ()
    in
    match Arde_server.Server.create cfg with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok t ->
        Arde_server.Server.handle_signals t;
        Arde_server.Server.run t;
        exit 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-only detection daemon: a supervisor process routing \
          framed JSON requests to worker processes with long-lived domain \
          pools and warm caches.  A crashed worker yields a structured \
          $(b,worker_crashed) error plus a durable crash bundle, and is \
          restarted with backoff.  SIGTERM drains gracefully (in-flight \
          requests finish, new work is refused with a structured error) \
          and exits 0.")
    Term.(
      const run $ socket_arg $ workers_arg $ max_pending_arg $ jobs_arg
      $ deadline_arg $ spool_arg $ watchdog_arg $ max_frame_mb_arg $ tcp_arg
      $ store_dir_arg $ store_max_mb_arg $ no_store_arg $ chaos_plan_arg
      $ quiet_arg)

let submit_cmd =
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry budget for idempotent-safe failures only: a refused or \
             missing socket, a $(b,draining) refusal, or a \
             $(b,worker_crashed) error.  Completed responses are never \
             retried, so their exit codes (including 3 for a failed run) \
             are preserved.")
  in
  let retry_backoff_arg =
    Arg.(
      value & opt int 50
      & info [ "retry-backoff-ms" ] ~docv:"MS"
          ~doc:
            "First retry delay; doubles per retry (capped at 40x) with \
             deterministic jitter in [0.5, 1.5) of the nominal delay.")
  in
  let run socket connect name mode opts deadline_ms retries retry_backoff_ms
      wire =
    let endpoint = endpoint_of ~cmd:"submit" socket connect in
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (p, case) ->
        let options = opts Arde.Options.default in
        let program = Arde.Pretty.program_to_string p in
        let policy =
          Arde_server.Client.retry_policy ~attempts:retries
            ~backoff_ms:retry_backoff_ms
            ~max_backoff_ms:(retry_backoff_ms * 40)
            ~jitter_seed:(Unix.getpid ()) ()
        in
        let reply, attempts =
          Arde_server.Client.submit_with_retry ~endpoint ~policy ~wire
            ?deadline_ms ~program ~mode ~options ()
        in
        if attempts > 0 then
          Printf.eprintf "submit: retried %d time%s\n%!" attempts
            (if attempts = 1 then "" else "s");
        (match reply with
        | Error e ->
            prerr_endline ("submit: " ^ e);
            exit 4
        | Ok resp when not (Arde_server.Protocol.response_ok resp) -> (
            match Arde_server.Protocol.response_error resp with
            | Some (code, msg) ->
                Printf.eprintf "submit: server error (%s): %s\n" code msg;
                exit 4
            | None ->
                prerr_endline "submit: malformed server response";
                exit 4)
        | Ok resp -> (
            match Arde.Json.member "result" resp with
            | None ->
                prerr_endline "submit: response carries no result";
                exit 4
            | Some result_json -> (
                match
                  Arde_server.Protocol.run_output ~workload:name
                    ?expectation:
                      (Option.map (fun c -> c.W.Racey.expectation) case)
                    ?analysis_cache:(Arde.Json.member "analysis_cache" resp)
                    result_json
                with
                | Ok (obj, code) ->
                    print_json obj;
                    exit code
                | Error e ->
                    prerr_endline ("submit: malformed result json: " ^ e);
                    exit 4)))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a workload to a running $(b,arde serve) daemon and print \
          the same JSON object $(b,arde run --format json) would (exit \
          codes 0-3 likewise; 4 on transport or server errors, including \
          an exhausted retry budget).")
    Term.(
      const run $ client_socket_arg $ connect_arg $ name_arg $ mode_arg
      $ common_opts $ deadline_arg $ retries_arg $ retry_backoff_arg
      $ wire_arg)

let stats_cmd =
  let run socket connect =
    let endpoint = endpoint_of ~cmd:"stats" socket connect in
    match Arde_server.Client.connect ~endpoint () with
    | Error e ->
        prerr_endline ("stats: " ^ e);
        exit 4
    | Ok cl ->
        Fun.protect
          ~finally:(fun () -> Arde_server.Client.close cl)
          (fun () ->
            match Arde_server.Client.stats cl with
            | Error e ->
                prerr_endline ("stats: " ^ e);
                exit 4
            | Ok resp -> (
                match Arde.Json.member "stats" resp with
                | Some s ->
                    print_json s;
                    exit 0
                | None ->
                    prerr_endline "stats: malformed server response";
                    exit 4))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Query a running $(b,arde serve) daemon's statistics: per-outcome \
          request counts, queue depth, supervision counters (crashes, \
          restarts, watchdog kills, sealed crash bundles, open circuit \
          breakers) and per-worker health, as JSON on stdout.")
    Term.(const run $ client_socket_arg $ connect_arg)

(* ---- cache ---- *)

let cache_cmd =
  let module St = Arde_server.Store in
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "store-dir" ] ~docv:"DIR"
          ~doc:
            "The bundle-store directory (what the daemon was given as \
             $(b,arde serve --store-dir), by default the socket path \
             plus $(b,.store)).")
  in
  let open_store ~cmd dir =
    match St.create ~dir () with
    | Ok s -> s
    | Error e ->
        prerr_endline (cmd ^ ": " ^ e);
        exit 1
  in
  let print_usage s =
    let n, bytes = St.usage s in
    Printf.printf "%d entr%s, %d bytes\n" n (if n = 1 then "y" else "ies") bytes
  in
  let ls_cmd =
    let run dir =
      let s = open_store ~cmd:"cache ls" dir in
      List.iter
        (fun e ->
          Printf.printf "%-34s %-10s %-10s %-3s %9dB %8.0fs\n"
            e.St.e_digest_hex e.St.e_mode e.St.e_style
            (if e.St.e_count_callees then "cc" else "-")
            e.St.e_bytes e.St.e_age_s)
        (St.entries s);
      print_usage s;
      exit 0
    in
    Cmd.v
      (Cmd.info "ls"
         ~doc:
           "List every bundle in the store, most recently used first: \
            program digest, mode, lowering style, the callee-counting \
            flag, size and idle age.")
      Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let max_mb_arg =
      Arg.(
        required
        & opt (some int) None
        & info [ "max-mb" ] ~docv:"MIB"
            ~doc:"Evict least-recently-used bundles down to this bound.")
    in
    let run dir max_mb =
      let s = open_store ~cmd:"cache gc" dir in
      let removed = St.gc s ~max_bytes:(max 0 max_mb * 1024 * 1024) in
      Printf.printf "evicted %d\n" removed;
      print_usage s;
      exit 0
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Sweep the store down to a size bound, oldest-use first — the \
            same policy the daemon applies after each write-back, for \
            shrinking a store offline.")
      Term.(const run $ dir_arg $ max_mb_arg)
  in
  let clear_cmd =
    let run dir =
      let s = open_store ~cmd:"cache clear" dir in
      Printf.printf "deleted %d\n" (St.clear s);
      exit 0
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Delete every bundle in the store.")
      Term.(const run $ dir_arg)
  in
  let verify_cmd =
    let run dir =
      let s = open_store ~cmd:"cache verify" dir in
      let kept, deleted = St.verify s in
      Printf.printf "%d ok, %d corrupt (deleted)\n" kept deleted;
      exit (if deleted = 0 then 0 else 1)
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Checksum-walk every bundle, deleting any that fail to decode \
            (truncated, corrupted, or written by an incompatible \
            version).  Exits 1 when anything had to be deleted — the \
            daemon itself recovers from such entries transparently, so \
            this is a health check, not a repair prerequisite.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect and maintain an $(b,arde serve) on-disk bundle store: \
          list entries, shrink to a bound, wipe, or checksum-verify.  \
          Safe to run against a live daemon's store — entries are \
          immutable and readers fail open.")
    [ ls_cmd; gc_cmd; clear_cmd; verify_cmd ]

(* ---- postmortem ---- *)

let postmortem_cmd =
  let bundle_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BUNDLE" ~doc:"Path to a sealed crash bundle.")
  in
  let run bundle jobs =
    let module S = Arde_server.Spool in
    let module P = Arde_server.Protocol in
    let module J = Arde.Json in
    match S.load bundle with
    | Error e ->
        prerr_endline ("postmortem: " ^ e);
        exit 1
    | Ok meta -> (
        match S.bundle_request meta with
        | Error e ->
            prerr_endline ("postmortem: " ^ e);
            exit 1
        | Ok raw_request -> (
            (* Replay through the production request parser: the bundle
               stores the verbatim wire request (on either wire), so a
               replay exercises exactly the path the crashed worker
               took. *)
            match P.parse_request raw_request with
            | Error (_, code, msg) ->
                Printf.eprintf "postmortem: unreplayable request (%s): %s\n"
                  (P.code_name code) msg;
                exit 1
            | Ok (P.Ping _ | P.Stats _ | P.Hello) ->
                prerr_endline "postmortem: bundle holds a non-run request";
                exit 1
            | Ok (P.Run req) ->
                let meta_field name =
                  match J.member name meta with
                  | Some ((J.String _ | J.Int _ | J.Float _) as v) ->
                      [ (name, v) ]
                  | _ -> []
                in
                (* Prefer the sealed trace: a record-mode request that
                   died during detection left one, and replaying it
                   reproduces exactly the detection the worker was in
                   the middle of — no machine re-execution, no schedule
                   doubt.  Fall back to re-running the journaled
                   request. *)
                let sealed_trace =
                  match S.bundle_trace meta with
                  | Ok t -> t
                  | Error e ->
                      Printf.eprintf "postmortem: %s (ignoring it)\n" e;
                      None
                in
                let replay_source, input =
                  match (sealed_trace, req.P.rq_payload) with
                  | Some trace, _ -> ("sealed-trace", `Trace trace)
                  | None, P.Rq_trace trace -> ("request-trace", `Trace trace)
                  | None, P.Rq_program p -> ("program", `Program p)
                in
                let pool =
                  Arde.Domain_pool.create
                    ~jobs:
                      (match jobs with
                      | Some j when j > 0 -> j
                      | _ -> Arde.Domain_pool.default_jobs ())
                in
                let started = Unix.gettimeofday () in
                let should_stop =
                  match req.P.rq_deadline_ms with
                  | None -> fun () -> false
                  | Some ms ->
                      fun () ->
                        (Unix.gettimeofday () -. started) *. 1000.
                        > float_of_int ms
                in
                let detect ?options ?program_digest ?mode input =
                  match
                    Arde.detect
                      ~ctx:
                        (Arde.Driver.ctx ?options ~pool ~should_stop
                           ?program_digest ())
                      ?mode input
                  with
                  | result ->
                      P.ok_response ~id:req.P.rq_id
                        [ ("result", Arde.Driver.result_to_json result) ]
                  | exception e ->
                      P.error_response ~id:req.P.rq_id P.Internal
                        (Printexc.to_string e)
                in
                let response =
                  match input with
                  | `Trace trace -> (
                      match Arde.Recorded.of_string trace with
                      | Error e ->
                          P.error_response ~id:req.P.rq_id P.Bad_request
                            ("trace: " ^ e)
                      | Ok recorded ->
                          detect (Arde.Input.Recorded_trace recorded))
                  | `Program { P.rp_program; rp_mode; rp_options; _ } -> (
                      match Arde.Parse.program rp_program with
                      | Error e ->
                          Printf.eprintf "postmortem: program: %s\n"
                            (Arde.Parse.error_to_string e);
                          exit 1
                      | Ok program ->
                          detect ~options:rp_options
                            ~program_digest:(Digest.string rp_program)
                            ~mode:rp_mode (Arde.Input.Program program))
                in
                Arde.Domain_pool.shutdown pool;
                print_json
                  (J.Obj
                     ([ ("bundle", J.String bundle) ]
                     @ meta_field "crash_reason"
                     @ meta_field "sealed_at"
                     @ meta_field "worker"
                     @ meta_field "pid"
                     @ meta_field "digest"
                     @ [
                         ("replayed_from", J.String replay_source);
                         ("response", response);
                       ]));
                exit (if P.response_ok response then 0 else 3)))
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Replay a crash bundle sealed by $(b,arde serve): parse the \
          journaled wire request with the production parser, re-run the \
          detection locally, and print the bundle metadata together with \
          the response the crashed worker would have produced.  Exit 0 \
          when the replay completes, 3 when it yields an error response, \
          1 on an unreadable bundle.")
    Term.(const run $ bundle_arg $ jobs_arg)

let () =
  (* Must run before cmdliner sees argv: an invocation carrying the
     worker marker is a serve worker process, not a CLI session. *)
  Arde_server.Worker.hook ();
  let doc = "ad-hoc synchronization identification for enhanced race detection" in
  let info = Cmd.info "arde" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; show_cmd; spin_report_cmd; run_cmd; record_cmd;
            replay_cmd; predict_cmd; trace_cmd; fmt_cmd; compare_cmd;
            suite_cmd; parsec_cmd; chaos_cmd; serve_cmd; submit_cmd;
            stats_cmd; cache_cmd; postmortem_cmd;
          ]))
