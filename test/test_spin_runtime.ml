(* The runtime phase in detail: context tracking across calls and
   returns, dependency attribution, suppression scope, and same-trace
   detector comparisons. *)

open Arde.Builder

let run_traced ?(seed = 1) ~k p =
  let inst = Arde.analyze_spins ~k p in
  let tr = Arde.Trace.create () in
  let cfg =
    {
      Arde.Machine.default_config with
      Arde.Machine.seed;
      instrument = Some inst;
      observer = Arde.Trace.observer tr;
    }
  in
  let res = Arde.Machine.run_program cfg p in
  (res, Arde.Trace.events tr, inst)

(* A loop whose condition is evaluated in a callee: the marked load lives
   in another function, yet must be tagged with the caller's context. *)
let call_condition_program =
  program
    ~globals:[ global "flag" (); global "data" () ]
    ~entry:"main"
    [
      func "main"
        [
          blk "e"
            [
              spawn "t" "w" [];
              store (g "data") (imm 9);
              store (g "flag") (imm 1);
              join (r "t");
            ]
            exit_t;
        ];
      func "w"
        [
          blk "e" [] (goto "sp");
          blk "sp" [ call ~ret:"ok" "chk" [] ] (br (r "ok") "wk" "sp");
          blk "wk" [ load "d" (g "data"); store (g "data") (r "d") ] exit_t;
        ];
      func "chk"
        [
          blk "e" [ load "v" (g "flag") ] (br (r "v") "y" "n");
          blk "y" [] (ret (Some (imm 1)));
          blk "n" [] (ret (Some (imm 0)));
        ];
    ]

let test_callee_load_tagged () =
  let res, events, _ = run_traced ~k:7 call_condition_program in
  Alcotest.(check bool) "finished" true
    (res.Arde.Machine.outcome = Arde.Machine.Finished);
  let tagged_in_chk =
    List.exists
      (function
        | Arde.Event.Read { loc; spin = _ :: _; _ } -> loc.Arde.Types.lfunc = "chk"
        | _ -> false)
      events
  in
  Alcotest.(check bool) "load inside the helper carries the caller's context"
    true tagged_in_chk

let test_small_window_no_contexts () =
  (* With k too small for this loop, no contexts open at all. *)
  let _, events, inst = run_traced ~k:2 call_condition_program in
  Alcotest.(check int) "no loops accepted" 0
    (List.length (Arde.Instrument.spins inst));
  Alcotest.(check bool) "no spin events" true
    (not
       (List.exists
          (function Arde.Event.Spin_enter _ -> true | _ -> false)
          events))

(* Exiting a spin loop by returning out of the function must close the
   context. *)
let exit_by_return_program =
  program
    ~globals:[ global "flag" (); global "data" () ]
    ~entry:"main"
    [
      func "main"
        [
          blk "e"
            [
              spawn "t" "w" [];
              store (g "data") (imm 5);
              store (g "flag") (imm 1);
              join (r "t");
            ]
            exit_t;
        ];
      func "w" [ blk "e" [ call "waitf" [] ; load "d" (g "data"); store (g "data") (r "d") ] exit_t ];
      func "waitf"
        [
          blk "sp" [ load "v" (g "flag") ] (br (r "v") "out" "sp");
          blk "out" [] ret0;
        ];
    ]

let test_exit_by_return_closes_context () =
  let _, events, _ = run_traced ~k:7 exit_by_return_program in
  let enters, exits =
    List.fold_left
      (fun (en, ex) -> function
        | Arde.Event.Spin_enter _ -> (en + 1, ex)
        | Arde.Event.Spin_exit _ -> (en, ex + 1)
        | _ -> (en, ex))
      (0, 0) events
  in
  Alcotest.(check bool) "contexts opened" true (enters > 0);
  Alcotest.(check int) "all closed" enters exits

let test_edge_still_drawn_through_return () =
  let result =
    Arde.detect
      ~mode:(Arde.Config.Helgrind_spin 7)
      (Arde.Input.Program exit_by_return_program)
  in
  Alcotest.(check (list string)) "data ordered through the returned loop" []
    (Arde.Driver.racy_bases result)

(* Suppression is limited to condition bases: a read of an unmarked
   global inside the loop body is still checked. *)
let body_access_program =
  program
    ~globals:[ global "flag" (); global "noise" () ]
    ~entry:"main"
    [
      func "main"
        [
          blk "e"
            [ spawn "t" "w" []; store (g "noise") (imm 1); store (g "flag") (imm 1); join (r "t") ]
            exit_t;
        ];
      func "w"
        [
          blk "e" [] (goto "sp");
          blk "sp"
            [ load "n" (g "noise"); store (g "noise") (r "n"); load "v" (g "flag") ]
            (br (r "v") "out" "sp");
          blk "out" [] exit_t;
        ];
    ]

let test_body_accesses_not_suppressed () =
  let inst = Arde.analyze_spins ~k:7 body_access_program in
  Alcotest.(check bool) "flag marked" true (Arde.Instrument.is_sync_base inst "flag");
  Alcotest.(check bool) "noise not marked" false
    (Arde.Instrument.is_sync_base inst "noise");
  let result =
    Arde.detect
      ~mode:(Arde.Config.Helgrind_spin 7)
      (Arde.Input.Program body_access_program)
  in
  Alcotest.(check bool) "the unrelated body write is still reported" true
    (List.mem "noise" (Arde.Driver.racy_bases result))

(* ---- same-trace comparison ---- *)

let test_compare_on_trace () =
  let c =
    match Arde_workloads.Racey.find "adhoc_flag_w2/2" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  let results =
    Arde.Driver.compare_on_trace ~k:7 c
      [ Arde.Config.Helgrind_lib; Arde.Config.Helgrind_spin 7; Arde.Config.Drd ]
  in
  let bases mode = Arde.Report.racy_bases (List.assoc mode results) in
  Alcotest.(check bool) "lib reports data on this exact trace" true
    (List.mem "data" (bases Arde.Config.Helgrind_lib));
  Alcotest.(check (list string)) "spin engine silent on the same trace" []
    (bases (Arde.Config.Helgrind_spin 7));
  Alcotest.(check bool) "drd reports data too" true
    (List.mem "data" (bases Arde.Config.Drd))

let test_compare_rejects_lowering_modes () =
  let c =
    match Arde_workloads.Racey.find "adhoc_flag_w2/2" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  match Arde.Driver.compare_on_trace ~k:7 c [ Arde.Config.Nolib_spin 7 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of a lowering mode"

let suite =
  [
    Alcotest.test_case "callee condition loads are tagged" `Quick
      test_callee_load_tagged;
    Alcotest.test_case "small window opens no contexts" `Quick
      test_small_window_no_contexts;
    Alcotest.test_case "exit by return closes contexts" `Quick
      test_exit_by_return_closes_context;
    Alcotest.test_case "edge drawn through a returned loop" `Quick
      test_edge_still_drawn_through_return;
    Alcotest.test_case "suppression limited to condition bases" `Quick
      test_body_accesses_not_suppressed;
    Alcotest.test_case "same-trace mode comparison" `Quick test_compare_on_trace;
    Alcotest.test_case "same-trace rejects lowering modes" `Quick
      test_compare_rejects_lowering_modes;
  ]
