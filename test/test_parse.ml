(* The textual TIR parser: hand-written cases plus the round-trip law
   parse(pretty(p)) = p over the entire bundled corpus. *)

let simple_source =
  {|
# the paper's motivating example
global flag[1] = 0
global data[1] = 0
entry = main

func main():
entry:
  %t1 <- spawn producer()
  %t2 <- spawn consumer()
  goto wait
wait:
  join %t1
  join %t2
  exit

func producer():
entry:
  store @data, 42
  store @flag, 1
  exit

func consumer():
entry:
  goto spin
spin:
  %f <- load @flag
  br %f ? work : spin
work:
  %d <- load @data
  %d1 <- add %d, -1
  store @data, %d1
  exit
|}

let test_parse_and_run () =
  let p = Arde.Parse.program_exn simple_source in
  Arde.Validate.check_exn p;
  let res = Arde.Machine.run_program Arde.Machine.default_config p in
  Alcotest.(check bool) "finished" true
    (res.Arde.Machine.outcome = Arde.Machine.Finished);
  Alcotest.(check int) "data handed off" 41 (Arde.Machine.read_global res "data" 0)

let test_parse_detect () =
  let p = Arde.Parse.program_exn simple_source in
  Alcotest.(check bool) "lib mode flags data" true
    (List.mem "data"
       (Arde.Driver.racy_bases
          (Arde.detect ~mode:Arde.Config.Helgrind_lib (Arde.Input.Program p))));
  Alcotest.(check (list string)) "spin mode clean" []
    (Arde.Driver.racy_bases
       (Arde.detect
          ~mode:(Arde.Config.Helgrind_spin 7)
          (Arde.Input.Program p)))

let expect_error ~line source =
  match Arde.Parse.program source with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> Alcotest.(check int) "error line" line e.Arde.Parse.line

let test_error_positions () =
  expect_error ~line:3
    "entry = main\n\nfunc main(:\nentry:\n  exit\n";
  expect_error ~line:4 "entry = main\n\nfunc main():\n  %x <- load @g\n";
  (* instruction outside a block *)
  expect_error ~line:5 "entry = main\n\nfunc main():\nentry:\n  %x <- bogus @g\n"

let test_missing_terminator () =
  match Arde.Parse.program "entry = main\nfunc main():\nentry:\n  nop\n" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ()

let test_missing_entry () =
  match Arde.Parse.program "func main():\nentry:\n  exit\n" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ()

let test_comments_and_blanks () =
  let p =
    Arde.Parse.program_exn
      "# header\n\nentry = main\n\nfunc main():\nentry:\n  nop  # trailing\n  exit\n"
  in
  Arde.Validate.check_exn p

let test_string_escapes () =
  let p =
    Arde.Parse.program_exn
      "entry = main\nfunc main():\nentry:\n  %v <- 0\n  check %v \"with \\\"quotes\\\"\"\n  exit\n"
  in
  let res = Arde.Machine.run_program Arde.Machine.default_config p in
  match res.Arde.Machine.check_failures with
  | [ (_, msg) ] -> Alcotest.(check string) "unescaped" "with \"quotes\"" msg
  | _ -> Alcotest.fail "check not recorded"

(* Round-trip over the whole corpus: every bundled program (native and
   lowered, which exercises helper names containing ':') survives
   pretty -> parse structurally intact. *)
let roundtrip p =
  let printed = Arde.Pretty.program_to_string p in
  match Arde.Parse.program printed with
  | Error e -> Alcotest.failf "re-parse failed: %s" (Arde.Parse.error_to_string e)
  | Ok p' ->
      if p <> p' then begin
        let printed' = Arde.Pretty.program_to_string p' in
        if printed <> printed' then
          Alcotest.failf "round-trip mismatch:\n%s\nvs\n%s" printed printed'
        else Alcotest.fail "round-trip differs structurally but prints equal"
      end

let test_roundtrip_suite () =
  List.iter
    (fun c -> roundtrip c.Arde_workloads.Racey.program)
    (Arde_workloads.Racey.all ())

let test_roundtrip_lowered () =
  List.iter
    (fun c -> roundtrip (Arde.Lower.lower c.Arde_workloads.Racey.program))
    (Arde_workloads.Racey.all ())

let test_roundtrip_parsec () =
  List.iter (fun (_, p) -> roundtrip p) (Arde_workloads.Parsec.all ())

let suite =
  [
    Alcotest.test_case "parse and execute" `Quick test_parse_and_run;
    Alcotest.test_case "parse and detect" `Quick test_parse_detect;
    Alcotest.test_case "error positions" `Quick test_error_positions;
    Alcotest.test_case "missing terminator rejected" `Quick
      test_missing_terminator;
    Alcotest.test_case "missing entry rejected" `Quick test_missing_entry;
    Alcotest.test_case "comments and blank lines" `Quick test_comments_and_blanks;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "round-trip: unit suite" `Slow test_roundtrip_suite;
    Alcotest.test_case "round-trip: lowered suite" `Slow test_roundtrip_lowered;
    Alcotest.test_case "round-trip: parsec programs" `Slow test_roundtrip_parsec;
  ]
