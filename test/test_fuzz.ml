(* Random-program fuzzing: generated programs are valid by construction;
   the machine must never escape with an exception, the printer/parser
   must round-trip them, lowering must keep them valid, and execution must
   stay deterministic per seed. *)

open Arde.Types
open Arde.Builder

(* -- generator ----------------------------------------------------- *)

(* A deterministic "random program" derived from an integer seed via the
   library's own PRNG; using qcheck only for the seed keeps shrinking
   trivial and failures reproducible by seed. *)
let gen_program seed =
  let rng = Arde_util.Prng.create seed in
  let pick xs = List.nth xs (Arde_util.Prng.int rng (List.length xs)) in
  let globals =
    [ ("ga", 1 + Arde_util.Prng.int rng 4, 0); ("gb", 2, 5); ("gc", 1, 0) ]
  in
  let global_addr () =
    let name, size, _ = pick globals in
    gi name (imm (Arde_util.Prng.int rng size))
  in
  (* Straight-line instructions over a growing register environment. *)
  let fresh_reg env = Printf.sprintf "r%d" (List.length env) in
  let operand env =
    if env = [] || Arde_util.Prng.bool rng then
      imm (Arde_util.Prng.int rng 100 - 50)
    else r (pick env)
  in
  let rand_instr env =
    let d = fresh_reg env in
    match Arde_util.Prng.int rng 8 with
    | 0 -> (Some d, mov d (operand env))
    | 1 ->
        let op = pick [ Add; Sub; Mul; And; Or; Xor ] in
        (Some d, Binop (d, op, operand env, operand env))
    | 2 ->
        (* division by a guaranteed non-zero immediate *)
        (Some d, divi d (operand env) (imm (1 + Arde_util.Prng.int rng 9)))
    | 3 ->
        let op = pick [ Eq; Ne; Lt; Le; Gt; Ge ] in
        (Some d, cmp op d (operand env) (operand env))
    | 4 -> (Some d, load d (global_addr ()))
    | 5 -> (None, store (global_addr ()) (operand env))
    | 6 -> (Some d, cas d (global_addr ()) (operand env) (operand env))
    | _ ->
        let op = pick [ Rmw_add; Rmw_exchange; Rmw_or; Rmw_and ] in
        (Some d, rmw op d (global_addr ()) (operand env))
  in
  let rand_body env0 len =
    let env = ref env0 and acc = ref [] in
    for _ = 1 to len do
      let def, i = rand_instr !env in
      acc := i :: !acc;
      match def with Some d -> env := d :: !env | None -> ()
    done;
    (List.rev !acc, !env)
  in
  (* Worker: a small diamond. *)
  let worker =
    let b1, env = rand_body [ "i" ] (2 + Arde_util.Prng.int rng 4) in
    let cond = if env = [] then imm 1 else r (List.hd env) in
    let b2, _ = rand_body env (1 + Arde_util.Prng.int rng 3) in
    let b3, _ = rand_body env (1 + Arde_util.Prng.int rng 3) in
    func "w" ~params:[ "i" ]
      [
        blk "e" b1 (br cond "left" "right");
        blk "left" b2 (goto "out");
        blk "right" b3 (goto "out");
        blk "out" [] exit_t;
      ]
  in
  let n_workers = 1 + Arde_util.Prng.int rng 3 in
  let spawns =
    List.init n_workers (fun i -> spawn (Printf.sprintf "t%d" i) "w" [ imm i ])
  in
  let joins = List.init n_workers (fun i -> join (r (Printf.sprintf "t%d" i))) in
  let main_body, _ = rand_body [] (1 + Arde_util.Prng.int rng 4) in
  let main =
    func "main"
      [
        blk "e" (main_body @ spawns) (goto "j");
        blk "j" joins exit_t;
      ]
  in
  program
    ~globals:(List.map (fun (n, s, v) -> (n, s, v)) globals)
    ~entry:"main" [ main; worker ]

(* -- properties ---------------------------------------------------- *)

let law ?(count = 60) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 100_000) f)

let run_fuzz p seed =
  Arde.Machine.run_program
    { Arde.Machine.default_config with Arde.Machine.seed; fuel = 50_000 }
    p

let prop_valid_and_runs =
  law "generated programs validate and run" (fun seed ->
      let p = gen_program seed in
      match Arde.Validate.check p with
      | Error _ -> false
      | Ok () -> (
          match (run_fuzz p 1).Arde.Machine.outcome with
          | Arde.Machine.Finished | Arde.Machine.Fault _ -> true
          | Arde.Machine.Deadlock _ | Arde.Machine.Fuel_exhausted
          | Arde.Machine.Livelock _ ->
              false))

let prop_roundtrip =
  law "generated programs round-trip through the parser" (fun seed ->
      let p = gen_program seed in
      match Arde.Parse.program (Arde.Pretty.program_to_string p) with
      | Ok p' -> p = p'
      | Error _ -> false)

let prop_lowering_valid =
  law "generated programs lower to valid programs" (fun seed ->
      let p = gen_program seed in
      List.for_all
        (fun style ->
          Result.is_ok (Arde.Validate.check (Arde.Lower.lower ~style p)))
        [ Arde.Lower.Compact; Arde.Lower.Realistic; Arde.Lower.Futex ])

let prop_deterministic =
  law ~count:30 "generated programs replay deterministically" (fun seed ->
      let p = gen_program seed in
      let hash mseed =
        let tr = Arde.Trace.create () in
        ignore
          (Arde.Machine.run_program
             {
               Arde.Machine.default_config with
               Arde.Machine.seed = mseed;
               fuel = 50_000;
               observer = Arde.Trace.observer tr;
             }
             p);
        Arde.Trace.hash tr
      in
      hash 7 = hash 7)

let prop_detectors_never_crash =
  law ~count:25 "all detectors accept generated programs" (fun seed ->
      let p = gen_program seed in
      List.for_all
        (fun mode ->
          let options =
            Arde.Options.make ~seeds:[ 1; 2 ] ()
          in
          ignore
            (Arde.detect
               ~ctx:(Arde.Driver.ctx ~options ())
               ~mode (Arde.Input.Program p));
          true)
        [
          Arde.Config.Helgrind_lib; Arde.Config.Helgrind_spin 7;
          Arde.Config.Nolib_spin 7; Arde.Config.Nolib_spin_locks 7;
          Arde.Config.Drd;
        ])

let suite =
  [
    prop_valid_and_runs;
    prop_roundtrip;
    prop_lowering_valid;
    prop_deterministic;
    prop_detectors_never_crash;
  ]
