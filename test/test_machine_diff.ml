(* Differential tests for the compiled machine.

   The interpreter rewrite is only allowed to change *speed*, never a
   single observable bit.  Three layers enforce that:

   - the committed golden fixtures (test/fixtures/machine_traces.txt,
     recorded from the pre-rewrite interpreter) must be reproduced
     summary-for-summary, chaos runs included;
   - a live differential against [Arde.Machine_ref] (the frozen
     pre-rewrite interpreter) compares full results and full event
     streams, so a fixture-file regeneration can never hide drift;
   - quiet mode (the default discarding observer) must produce the exact
     same result as a tracing run — skipping event construction is an
     optimization, not a semantic switch.

   The satellite regressions ride along: wide-arity calls (the O(n²)
   argument-binding fix), a 64-thread barrier (O(1) arrival), and a
   scheduler determinism property over the buffer-based [Sched.pick]. *)

module M = Arde.Machine
module MR = Arde.Machine_ref
module TF = Arde_harness.Trace_fixtures
open Arde.Builder

let fixtures_path = "fixtures/machine_traces.txt"

let pp_summary ppf (s : TF.summary) =
  Format.fprintf ppf "len=%d hash=%d steps=%d outcome=%S" s.TF.fx_length
    s.TF.fx_hash s.TF.fx_steps s.TF.fx_outcome

let check_summaries ~what expected got =
  let tbl = Hashtbl.create (List.length expected) in
  List.iter (fun (k, s) -> Hashtbl.replace tbl k s) expected;
  if List.length expected <> List.length got then
    Alcotest.failf "%s: %d fixtures expected, %d produced" what
      (List.length expected) (List.length got);
  List.iter
    (fun (k, s) ->
      match Hashtbl.find_opt tbl k with
      | None -> Alcotest.failf "%s: unexpected fixture key %s" what k
      | Some e ->
          if e <> s then
            Alcotest.failf "%s: trace drift on %s@.  expected %a@.  got      %a"
              what k pp_summary e pp_summary s)
    got

(* Every committed golden fixture — all workloads × policies × seeds plus
   the chaos cross-section — reproduced bit-for-bit by the current
   machine. *)
let test_golden_fixtures () =
  let golden = TF.read_file fixtures_path in
  if List.length golden < 1000 then
    Alcotest.failf "suspiciously few golden fixtures: %d" (List.length golden);
  let got = TF.run_all TF.current_machine in
  check_summaries ~what:"golden" golden got

(* Subsample the fixture enumeration but always keep the chaos groups:
   those exercise spurious wakeups, starved fuel, adversarial policies and
   injected faults. *)
let subset ~every groups =
  List.filteri
    (fun i (g : TF.group) ->
      i mod every = 0
      || Astring.String.is_infix ~affix:"chaos" g.TF.g_name)
    groups

(* The frozen reference interpreter and the current one agree on every
   summary for a live cross-section (chaos included) — guards against a
   regenerated fixture file silently baking in a behaviour change. *)
let test_live_reference_diff () =
  let groups = subset ~every:6 (TF.groups ()) in
  List.iter
    (fun (gr : TF.group) ->
      let cur = TF.current_machine.TF.mi_run_group gr in
      let ref_ = TF.reference_machine.TF.mi_run_group gr in
      check_summaries ~what:("live " ^ gr.TF.g_name) ref_ cur)
    groups

let sorted_memory (res : M.result) =
  Hashtbl.fold (fun k v acc -> (k, Array.to_list v) :: acc) res.M.memory []
  |> List.sort compare

let show_outcome o = Format.asprintf "%a" M.pp_outcome o

let check_results ~ctx (a : M.result) (b : M.result) =
  let chk t name = Alcotest.check t (ctx ^ ": " ^ name) in
  chk Alcotest.string "outcome" (show_outcome a.M.outcome)
    (show_outcome b.M.outcome);
  if a.M.outcome <> b.M.outcome then
    Alcotest.failf "%s: structurally different outcomes" ctx;
  chk Alcotest.int "steps" a.M.steps b.M.steps;
  chk Alcotest.int "threads_spawned" a.M.threads_spawned b.M.threads_spawned;
  chk Alcotest.int "context_switches" a.M.context_switches b.M.context_switches;
  if a.M.check_failures <> b.M.check_failures then
    Alcotest.failf "%s: check_failures differ" ctx;
  if sorted_memory a <> sorted_memory b then
    Alcotest.failf "%s: final memories differ" ctx;
  if a.M.thread_steps <> b.M.thread_steps then
    Alcotest.failf "%s: thread_steps differ" ctx

let check_events ~ctx ea eb =
  if List.length ea <> List.length eb then
    Alcotest.failf "%s: %d events vs %d" ctx (List.length ea)
      (List.length eb);
  List.iteri
    (fun i (x, y) ->
      if x <> y then
        Alcotest.failf "%s: event %d differs:@.  %a@.  %a" ctx i
          Arde.Event.pp x Arde.Event.pp y)
    (List.combine ea eb)

let cfg_of (gr : TF.group) (rs : TF.run_spec) observer =
  {
    M.policy = rs.TF.rs_policy;
    seed = rs.TF.rs_seed;
    fuel = rs.TF.rs_fuel;
    instrument = gr.TF.g_instrument;
    spurious_wakeups = rs.TF.rs_spurious;
    observer;
  }

(* Full-fidelity differential: identical event streams AND identical
   result records (memory, per-thread step counts, switch counts — fields
   the summaries do not cover) on a smaller cross-section. *)
let test_full_event_diff () =
  let groups = subset ~every:10 (TF.groups ()) in
  List.iter
    (fun (gr : TF.group) ->
      let runs =
        List.filteri
          (fun i (rs : TF.run_spec) -> i < 3 && rs.TF.rs_inject_at = None)
          gr.TF.g_runs
      in
      List.iter
        (fun (rs : TF.run_spec) ->
          let t1 = Arde.Trace.create () in
          let r1 =
            M.run_program (cfg_of gr rs (Arde.Trace.observer t1))
              gr.TF.g_program
          in
          let t2 = Arde.Trace.create () in
          let r2 =
            MR.run_program (cfg_of gr rs (Arde.Trace.observer t2))
              gr.TF.g_program
          in
          let ctx = rs.TF.rs_key in
          check_results ~ctx r1 r2;
          check_events ~ctx (Arde.Trace.events t1) (Arde.Trace.events t2))
        runs)
    groups

(* Quiet mode — the default [ignore] observer — must not change anything
   observable in the result.  The machine skips event construction
   entirely on that path, so this pins the optimization as pure. *)
let test_quiet_equivalence () =
  let groups = subset ~every:8 (TF.groups ()) in
  List.iter
    (fun (gr : TF.group) ->
      match
        List.find_opt (fun rs -> rs.TF.rs_inject_at = None) gr.TF.g_runs
      with
      | None -> ()
      | Some rs ->
          let tr = Arde.Trace.create () in
          let traced =
            M.run_program (cfg_of gr rs (Arde.Trace.observer tr))
              gr.TF.g_program
          in
          let quiet =
            M.run_program (cfg_of gr rs M.default_config.M.observer)
              gr.TF.g_program
          in
          check_results ~ctx:("quiet " ^ rs.TF.rs_key) traced quiet)
    groups

(* --- satellite: wide-arity calls ------------------------------------- *)

(* 100-parameter function: argument binding is now a single left-to-right
   pass into the frame's register file (it used to be List.iteri +
   List.nth, quadratic in arity).  The call must bind every argument to
   the right parameter and agree with the reference interpreter. *)
let test_wide_call () =
  let n = 100 in
  let params = List.init n (Printf.sprintf "p%d") in
  let sum_body =
    mov "acc" (imm 0)
    :: List.map (fun p -> addi "acc" (r "acc") (r p)) params
    @ [ store (g "out") (r "acc") ]
  in
  let p =
    program
      ~globals:[ global "out" () ]
      ~entry:"main"
      [
        func "main"
          [ blk "entry" [ call "wide" (List.init n (fun i -> imm (3 * i))) ] exit_t ];
        func "wide" ~params [ blk "entry" sum_body ret0 ];
      ]
  in
  let tr = Arde.Trace.create () in
  let res =
    M.run_program
      { M.default_config with M.observer = Arde.Trace.observer tr }
      p
  in
  Alcotest.(check string)
    "outcome" "finished" (show_outcome res.M.outcome);
  Alcotest.(check int) "sum of 3*i" (3 * (n * (n - 1) / 2))
    (M.read_global res "out" 0);
  let tr2 = Arde.Trace.create () in
  let res2 =
    MR.run_program
      { M.default_config with M.observer = Arde.Trace.observer tr2 }
      p
  in
  check_results ~ctx:"wide-call" res res2;
  check_events ~ctx:"wide-call" (Arde.Trace.events tr) (Arde.Trace.events tr2)

(* --- satellite: 64-thread barrier ------------------------------------ *)

(* Barrier arrival is now an O(1) counter + arrival-order array instead of
   List.length over an accumulating list.  At N=64 (the thread-limit
   maximum: main + 63 workers) every thread must pass, in the same wake
   order as the reference. *)
let test_barrier_64 () =
  let workers = 63 in
  let worker =
    func "w" ~params:[ "me" ]
      [
        blk "entry"
          [ barrier_wait (g "bar"); store (gi "done" (r "me")) (imm 1) ]
          ret0;
      ]
  in
  let spawns =
    List.init workers (fun i ->
        spawn (Printf.sprintf "t%d" i) "w" [ imm i ])
  in
  let joins =
    List.init workers (fun i -> join (r (Printf.sprintf "t%d" i)))
  in
  let p =
    program
      ~globals:[ global "bar" (); global "done" ~size:workers () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "entry"
              ((barrier_init (g "bar") (imm (workers + 1)) :: spawns)
              @ (barrier_wait (g "bar") :: joins))
              exit_t;
          ];
        worker;
      ]
  in
  let run_with runner =
    let tr = Arde.Trace.create () in
    let cfg =
      {
        M.default_config with
        M.policy = Arde.Sched.Chunked 4;
        seed = 9;
        observer = Arde.Trace.observer tr;
      }
    in
    (runner cfg p, tr)
  in
  let res, tr = run_with M.run_program in
  Alcotest.(check string)
    "outcome" "finished" (show_outcome res.M.outcome);
  Alcotest.(check int) "threads" (workers + 1) res.M.threads_spawned;
  for i = 0 to workers - 1 do
    Alcotest.(check int)
      (Printf.sprintf "done[%d]" i)
      1
      (M.read_global res "done" i)
  done;
  let passes =
    List.length
      (List.filter
         (function Arde.Event.Barrier_pass _ -> true | _ -> false)
         (Arde.Trace.events tr))
  in
  Alcotest.(check int) "one pass per thread" (workers + 1) passes;
  let res2, tr2 = run_with MR.run_program in
  check_results ~ctx:"barrier-64" res res2;
  check_events ~ctx:"barrier-64" (Arde.Trace.events tr) (Arde.Trace.events tr2)

(* --- satellite: scheduler determinism property ----------------------- *)

(* [Sched.pick] reads a caller-owned buffer.  For every policy: the pick
   sequence is a pure function of (seed, successive runnable sets, yield
   hints) — same inputs give the same picks even when the buffer carries
   trailing garbage — and every pick is a member of the offered set. *)
let prop_sched_determinism =
  let gen =
    QCheck2.Gen.pair
      (QCheck2.Gen.int_range 1 1000)
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 40)
         (QCheck2.Gen.pair (QCheck2.Gen.int_range 1 255) QCheck2.Gen.bool))
  in
  let policies =
    [
      Arde.Sched.Round_robin 1;
      Arde.Sched.Round_robin 3;
      Arde.Sched.Uniform;
      Arde.Sched.Chunked 1;
      Arde.Sched.Chunked 6;
    ]
  in
  let tids_of_mask mask =
    List.filter (fun i -> mask land (1 lsl i) <> 0) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"Sched.pick is deterministic and sound"
       gen
       (fun (seed, steps) ->
         List.for_all
           (fun policy ->
             let s1 = Arde.Sched.create policy ~seed in
             let s2 = Arde.Sched.create policy ~seed in
             let exact = Array.make 8 0 in
             let padded = Array.make 16 99 in
             List.for_all
               (fun (mask, yield_hint) ->
                 let tids = tids_of_mask mask in
                 let n = List.length tids in
                 List.iteri (fun i t -> exact.(i) <- t) tids;
                 Array.fill padded 0 16 99;
                 List.iteri (fun i t -> padded.(i) <- t) tids;
                 if yield_hint then begin
                   Arde.Sched.force_switch s1;
                   Arde.Sched.force_switch s2
                 end;
                 let p1 = Arde.Sched.pick s1 ~runnable:exact ~n in
                 let p2 = Arde.Sched.pick s2 ~runnable:padded ~n in
                 p1 = p2 && List.mem p1 tids)
               steps)
           policies))

let suite =
  [
    Alcotest.test_case "golden fixtures reproduced bit-for-bit" `Slow
      test_golden_fixtures;
    Alcotest.test_case "live diff vs frozen reference (chaos incl.)" `Slow
      test_live_reference_diff;
    Alcotest.test_case "full event-stream + result diff" `Slow
      test_full_event_diff;
    Alcotest.test_case "quiet mode changes nothing observable" `Quick
      test_quiet_equivalence;
    Alcotest.test_case "100-parameter call binds correctly" `Quick
      test_wide_call;
    Alcotest.test_case "64-thread barrier passes exactly once each" `Quick
      test_barrier_64;
    prop_sched_determinism;
  ]
