(* Fault isolation and self-diagnosis: outcome classification (deadlock /
   livelock / fault / benign fuel exhaustion / crash), per-seed
   sandboxing, run-health verdicts, and the chaos fault-injection
   properties — the pipeline must degrade gracefully, never die. *)

open Arde.Builder
module B = Arde_workloads.Racey_base
module D = Arde.Driver
module M = Arde.Machine

let spin_mode = Arde.Config.Helgrind_spin 7

let options ?(seeds = [ 1; 2; 3 ]) ?(fuel = 30_000) ?inject () =
  Arde.Options.make ~seeds ~fuel ?inject ()

(* Every probe drives the same front door; the optional arguments fold
   into the run context. *)
let detect ?pool ?should_stop ~options mode p =
  Arde.detect
    ~ctx:(D.ctx ~options ?pool ?should_stop ())
    ~mode (Arde.Input.Program p)

(* ------------------------------------------------------------------ *)
(* Workloads with known pathologies                                    *)

(* The paper's failure mode made total: a consumer spins on a flag whose
   counterpart write was removed, so the loop can never be released. *)
let livelock_program =
  let consumer =
    func "consumer"
      (blk "entry" [] (goto "sp_t")
      :: B.spin_flag ~tag:"sp" ~flag:(g "flag") ~window:3 ~exit_lbl:"work"
      @ [ blk "work" [] exit_t ])
  in
  B.harness
    ~globals:[ global "flag" () ]
    ~workers:[ ("consumer", []) ]
    [ consumer ]

(* A waiter on a condition variable nobody ever signals: every thread
   ends up blocked, a textbook deadlock. *)
let deadlock_program =
  let waiter =
    func "waiter" [ blk "e" [ lock (g "m"); wait (g "cv") (g "m") ] exit_t ]
  in
  B.harness
    ~globals:[ global "m" (); global "cv" () ]
    ~workers:[ ("waiter", []) ]
    [ waiter ]

(* Crashes mid-run with a machine-level program fault. *)
let faulty_program =
  let w = func "w" [ blk "e" [ divi "x" (imm 1) (imm 0) ] exit_t ] in
  B.harness ~workers:[ ("w", []) ] [ w ]

(* Spins forever in a register-only loop: exhausts fuel with no active
   spin context, so the exhaustion is benign, not a livelock. *)
let busy_program =
  program ~entry:"main" [ func "main" [ blk "e" [ nop ] (goto "e") ] ]

(* A genuine two-writer race the detector reports on every healthy seed. *)
let racy_program =
  let w = func "w" ~params:[ "v" ] [ blk "e" [ store (g "x") (r "v") ] exit_t ] in
  B.harness
    ~globals:[ global "x" () ]
    ~workers:[ ("w", [ imm 1 ]); ("w", [ imm 2 ]) ]
    [ w ]

(* Fails validation (undeclared global): the pipeline cannot even start. *)
let invalid_program =
  program ~entry:"main"
    [ func "main" [ blk "e" [ store (g "nope") (imm 1) ] exit_t ] ]

(* ------------------------------------------------------------------ *)
(* Outcome classification                                              *)

let seed_outcomes r = List.map (fun sr -> sr.D.sr_outcome) r.D.runs

let test_deadlock () =
  let r = detect ~options:(options ()) spin_mode deadlock_program in
  List.iter
    (function
      | D.Completed (M.Deadlock _) -> ()
      | o -> Alcotest.failf "expected deadlock, got %a" D.pp_seed_outcome o)
    (seed_outcomes r);
  Alcotest.(check int) "all deadlocked" 3 r.D.health.D.h_deadlocked;
  Alcotest.(check bool) "degraded" true (r.D.health.D.h_verdict = D.Degraded)

let test_livelock_attribution () =
  let r = detect ~options:(options ~fuel:20_000 ()) spin_mode livelock_program in
  List.iter
    (function
      | D.Completed (M.Livelock [ site ]) ->
          Alcotest.(check string) "spinning function" "consumer"
            site.M.sp_loc.Arde.Types.lfunc;
          Alcotest.(check string) "spinning loop header" "sp_t"
            site.M.sp_loc.Arde.Types.lblk;
          Alcotest.(check (list string)) "condition variable" [ "flag" ]
            site.M.sp_bases
      | o -> Alcotest.failf "expected livelock, got %a" D.pp_seed_outcome o)
    (seed_outcomes r);
  Alcotest.(check int) "all livelocked" 3 r.D.health.D.h_livelocked;
  Alcotest.(check bool) "degraded" true (r.D.health.D.h_verdict = D.Degraded);
  (* The diagnostic names the loop and its condition variable. *)
  match seed_outcomes r with
  | D.Completed (M.Livelock _ as o) :: _ ->
      let rendered = Format.asprintf "%a" M.pp_outcome o in
      Alcotest.(check bool)
        (Printf.sprintf "%S names loop and variable" rendered)
        true
        (Astring.String.is_infix ~affix:"consumer/sp_t" rendered
        && Astring.String.is_infix ~affix:"flag" rendered)
  | _ -> assert false

let test_benign_fuel_exhaustion () =
  let r = detect ~options:(options ~fuel:1_000 ()) spin_mode busy_program in
  List.iter
    (function
      | D.Completed M.Fuel_exhausted -> ()
      | o ->
          Alcotest.failf "expected benign fuel exhaustion, got %a"
            D.pp_seed_outcome o)
    (seed_outcomes r);
  Alcotest.(check int) "counted as fuel-exhausted" 3
    r.D.health.D.h_fuel_exhausted;
  Alcotest.(check int) "no livelock claimed" 0 r.D.health.D.h_livelocked

let test_program_fault () =
  let r = detect ~options:(options ()) spin_mode faulty_program in
  List.iter
    (function
      | D.Completed (M.Fault { msg; _ }) ->
          Alcotest.(check string) "fault message" "division by zero" msg
      | o -> Alcotest.failf "expected fault, got %a" D.pp_seed_outcome o)
    (seed_outcomes r);
  Alcotest.(check int) "all faulted" 3 r.D.health.D.h_faulted;
  Alcotest.(check bool) "degraded" true (r.D.health.D.h_verdict = D.Degraded)

(* ------------------------------------------------------------------ *)
(* Per-seed sandboxing                                                 *)

(* One seed's observer blows up mid-run; the other seeds' warnings must
   survive and the wreck must be reported, not raised. *)
let test_crash_isolated () =
  let inject ~seed =
    if seed = 2 then (
      let count = ref 0 in
      fun _ev ->
        incr count;
        if !count = 10 then failwith "boom")
    else fun _ev -> ()
  in
  let r = detect ~options:(options ~inject ()) spin_mode racy_program in
  Alcotest.(check int) "one seed crashed" 1 r.D.health.D.h_crashed;
  Alcotest.(check int) "others finished" 2 r.D.health.D.h_finished;
  Alcotest.(check bool) "degraded, not failed" true
    (r.D.health.D.h_verdict = D.Degraded);
  (match List.find (fun sr -> sr.D.sr_seed = 2) r.D.runs with
  | { D.sr_outcome = D.Crashed (_, msg); _ } ->
      Alcotest.(check bool) "crash message preserved" true
        (Astring.String.is_infix ~affix:"boom" msg)
  | sr ->
      Alcotest.failf "seed 2 should have crashed, got %a" D.pp_seed_outcome
        sr.D.sr_outcome);
  Alcotest.(check (list string)) "healthy seeds' warnings still merged"
    [ "x" ] (D.racy_bases r);
  Alcotest.(check bool) "crash note recorded" true (r.D.health.D.h_notes <> [])

(* Every seed crashes: the run is Failed, but detect still returns. *)
let test_all_seeds_crash () =
  let inject ~seed:_ =
    let count = ref 0 in
    fun _ev ->
      incr count;
      if !count = 5 then failwith "chaos everywhere"
  in
  let r = detect ~options:(options ~inject ()) spin_mode racy_program in
  Alcotest.(check int) "all crashed" 3 r.D.health.D.h_crashed;
  Alcotest.(check bool) "failed" true (r.D.health.D.h_verdict = D.Failed)

(* A fault injected through the observer mid-step is attributed by the
   machine itself: a Fault outcome at the chaos location, not a crash. *)
let test_injected_machine_fault () =
  let opts = Arde.Chaos.apply (options ()) (Arde.Chaos.Fault_at 5) in
  let r = detect ~options:opts spin_mode racy_program in
  List.iter
    (function
      | D.Completed (M.Fault { floc; _ }) ->
          Alcotest.(check string) "chaos location" "<chaos>"
            floc.Arde.Types.lfunc
      | o -> Alcotest.failf "expected fault, got %a" D.pp_seed_outcome o)
    (seed_outcomes r);
  Alcotest.(check int) "all faulted" 3 r.D.health.D.h_faulted

(* The pipeline itself cannot start (program fails validation): Failed
   health record, no exception. *)
let test_pipeline_failure () =
  let r = detect ~options:(options ()) spin_mode invalid_program in
  Alcotest.(check int) "no runs" 0 (List.length r.D.runs);
  Alcotest.(check bool) "failed" true (r.D.health.D.h_verdict = D.Failed);
  Alcotest.(check bool) "pipeline note recorded" true
    (List.exists
       (fun n -> Astring.String.is_prefix ~affix:"pipeline:" n)
       r.D.health.D.h_notes)

(* ------------------------------------------------------------------ *)
(* Chaos properties                                                    *)

let law ?(count = 30) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let cases = Arde_workloads.Racey.all ()

let gen_case =
  QCheck2.Gen.map
    (fun i -> List.nth cases (i mod List.length cases))
    (QCheck2.Gen.int_bound (List.length cases - 1))

let health_coherent (h : D.health) =
  h.D.h_finished + h.D.h_deadlocked + h.D.h_livelocked + h.D.h_fuel_exhausted
  + h.D.h_faulted + h.D.h_crashed + h.D.h_cancelled
  = h.D.h_seeds
  &&
  match h.D.h_verdict with
  | D.Failed -> h.D.h_seeds = 0 || h.D.h_crashed = h.D.h_seeds
  | D.Healthy -> h.D.h_finished = h.D.h_seeds
  | D.Degraded -> h.D.h_finished < h.D.h_seeds

(* Whatever we throw at it, the pipeline returns a coherent health record
   rather than raising. *)
let prop_never_raises =
  law ~count:40 "chaos: pipeline never raises, health is coherent"
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 1_000_000) gen_case)
    (fun (pseed, case) ->
      let p = Arde.Chaos.gen (Arde.Prng.create pseed) in
      let opts = Arde.Chaos.apply (options ~fuel:100_000 ()) p in
      match detect ~options:opts spin_mode case.Arde_workloads.Racey.program with
      | r ->
          health_coherent r.D.health
          && List.length r.D.runs = List.length opts.Arde.Options.seeds
      | exception e ->
          QCheck2.Test.fail_reportf "escaped under %a: %s"
            Arde.Chaos.pp_perturbation p (Printexc.to_string e))

(* The acceptance storm: hundreds of perturbed executions over healthy,
   racy and pathological workloads, zero escaped exceptions. *)
let test_storm () =
  let total = ref 0 in
  List.iter
    (fun (name, program, fuel) ->
      let report =
        Arde.Chaos.storm
          ~options:(options ~fuel ())
          ~runs:70 ~seed:42 spin_mode program
      in
      total := !total + report.Arde.Chaos.ch_runs;
      Alcotest.(check int)
        (name ^ ": no escaped exceptions")
        0
        (List.length report.Arde.Chaos.ch_escaped))
    [
      ("racy", racy_program, 50_000);
      ("livelock", livelock_program, 15_000);
      ("deadlock", deadlock_program, 30_000);
    ];
  Alcotest.(check bool) "at least 200 perturbed executions" true (!total >= 200)

(* Schedule-shaped (benign) perturbations and verdict stability.  A
   dynamic detector only reports what the schedule exposes, so a racy
   case may legitimately lose its race under an adversarial policy
   (Missed_race) — but a benign perturbation must never {e manufacture} a
   warning: while every seed stays healthy, a labelled clean verdict
   stays clean, and no perturbation turns any verdict into a false
   alarm. *)
let test_verdict_stability () =
  let baseline_opts = options ~fuel:400_000 () in
  let policies =
    [
      Arde.Sched.Round_robin 13;
      Arde.Sched.Uniform;
      Arde.Sched.Chunked 1;
    ]
  in
  let healthy r = r.D.health.D.h_verdict = D.Healthy in
  let verdict r (c : Arde_workloads.Racey.case) =
    Arde.Classify.outcome_of
      (Arde.Classify.classify c.Arde_workloads.Racey.expectation
         ~reported:(D.racy_bases r))
  in
  let flips = ref [] and compared = ref 0 in
  List.iter
    (fun (c : Arde_workloads.Racey.case) ->
      let base = detect ~options:baseline_opts spin_mode c.program in
      List.iter
        (fun policy ->
          let opts =
            Arde.Chaos.apply baseline_opts (Arde.Chaos.Adversarial_policy policy)
          in
          let perturbed = detect ~options:opts spin_mode c.program in
          if healthy base && healthy perturbed then begin
            incr compared;
            let b = verdict base c and p = verdict perturbed c in
            let manufactured =
              (p = Arde.Classify.False_alarm && b <> Arde.Classify.False_alarm)
              || c.Arde_workloads.Racey.expectation = Arde.Classify.Race_free
                 && b = Arde.Classify.Correct && p <> Arde.Classify.Correct
            in
            if manufactured then
              flips := c.Arde_workloads.Racey.name :: !flips
          end)
        policies)
    cases;
  (* The one family allowed to be schedule-fragile: double-checked
     initialization, whose safety argument is pure lockset over a
     schedule-dependent fast path — the paper's own residual false
     positive.  Everything else must be rock-solid. *)
  let dcl name =
    Astring.String.is_prefix ~affix:"dcl_" name
    || Astring.String.is_prefix ~affix:"double_checked_" name
  in
  Alcotest.(check (list string))
    "no manufactured warnings outside the DCL family" []
    (List.filter (fun n -> not (dcl n)) !flips);
  Alcotest.(check bool) "compared a meaningful sample" true (!compared > 200)

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation — the primitive behind the serve daemon's
   per-request deadlines and graceful drain.                           *)

(* Stop after the first seed completes: with jobs = 1 the hook runs in
   seed order, so exactly the remaining seeds become [Cancelled] while
   the completed seed's report is salvaged. *)
let test_cancelled_run_salvages_reports () =
  let started = ref 0 in
  let should_stop () =
    incr started;
    !started > 1
  in
  let options = options ~seeds:[ 1; 2; 3; 4; 5 ] () |> Arde.Options.with_jobs 1 in
  let r = detect ~options ~should_stop spin_mode racy_program in
  Alcotest.(check int) "one seed ran" 1 r.D.health.D.h_finished;
  Alcotest.(check int) "rest cancelled" 4 r.D.health.D.h_cancelled;
  Alcotest.(check bool) "degraded, not failed" true
    (r.D.health.D.h_verdict = D.Degraded);
  (match r.D.runs with
  | { D.sr_outcome = D.Completed M.Finished; sr_steps; _ } :: rest ->
      Alcotest.(check bool) "completed seed really ran" true (sr_steps > 0);
      List.iter
        (fun sr ->
          match sr.D.sr_outcome with
          | D.Cancelled ->
              Alcotest.(check int)
                (Printf.sprintf "seed %d never ran" sr.D.sr_seed)
                0 sr.D.sr_steps
          | o -> Alcotest.failf "expected cancelled, got %a" D.pp_seed_outcome o)
        rest
  | _ -> Alcotest.fail "expected first seed completed");
  (* the completed seed's warnings survive in the merged report *)
  Alcotest.(check bool) "salvaged race warnings" true
    (Arde.Report.n_contexts r.D.merged > 0);
  Alcotest.(check bool) "racy base reported" true
    (List.mem "x" (D.racy_bases r))

let test_cancelled_before_start () =
  let options = options () |> Arde.Options.with_jobs 1 in
  let r =
    detect ~options ~should_stop:(fun () -> true) spin_mode racy_program
  in
  Alcotest.(check int) "everything cancelled" 3 r.D.health.D.h_cancelled;
  Alcotest.(check bool) "degraded (cancellation is voluntary)" true
    (r.D.health.D.h_verdict = D.Degraded);
  Alcotest.(check int) "no findings" 0 (Arde.Report.n_contexts r.D.merged)

let test_cancelled_health_round_trips () =
  let options = options () |> Arde.Options.with_jobs 1 in
  let stop = ref false in
  let should_stop () =
    let s = !stop in
    stop := true;
    s
  in
  let r = detect ~options ~should_stop spin_mode racy_program in
  Alcotest.(check int) "two cancelled" 2 r.D.health.D.h_cancelled;
  match D.health_of_json (D.health_to_json r.D.health) with
  | Ok h -> Alcotest.(check bool) "health round-trips" true (h = r.D.health)
  | Error e -> Alcotest.failf "health_of_json: %s" e

let test_cancelled_run_on_resident_pool () =
  let pool = Arde.Domain_pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Arde.Domain_pool.shutdown pool)
    (fun () ->
      let options = options ~seeds:[ 1; 2; 3; 4; 5; 6 ] () in
      let r = detect ~options ~pool spin_mode racy_program in
      Alcotest.(check int) "all seeds ran on the pool" 6
        r.D.health.D.h_finished;
      (* byte-identical to the spawning path *)
      let r' = detect ~options spin_mode racy_program in
      Alcotest.(check string) "pool result identical to spawn result"
        (Arde.Json.to_string (D.result_to_json r'))
        (Arde.Json.to_string (D.result_to_json r)))

let suite =
  [
    Alcotest.test_case "deadlock is classified and tallied" `Quick test_deadlock;
    Alcotest.test_case "livelock names the loop and condition variable" `Quick
      test_livelock_attribution;
    Alcotest.test_case "benign fuel exhaustion is not a livelock" `Quick
      test_benign_fuel_exhaustion;
    Alcotest.test_case "program faults are completed outcomes" `Quick
      test_program_fault;
    Alcotest.test_case "a crashing seed is isolated; others still merge" `Quick
      test_crash_isolated;
    Alcotest.test_case "all seeds crashing yields Failed, not an exception"
      `Quick test_all_seeds_crash;
    Alcotest.test_case "injected machine faults are attributed" `Quick
      test_injected_machine_fault;
    Alcotest.test_case "pipeline failure yields a Failed health record" `Quick
      test_pipeline_failure;
    prop_never_raises;
    Alcotest.test_case "chaos storm: 200+ runs, zero escapes" `Slow test_storm;
    Alcotest.test_case "benign perturbations never flip verdicts" `Slow
      test_verdict_stability;
    Alcotest.test_case "cancelled run salvages completed-seed reports" `Quick
      test_cancelled_run_salvages_reports;
    Alcotest.test_case "cancellation before the first seed" `Quick
      test_cancelled_before_start;
    Alcotest.test_case "cancelled health round-trips through JSON" `Quick
      test_cancelled_health_round_trips;
    Alcotest.test_case "resident pool matches the spawning path" `Quick
      test_cancelled_run_on_resident_pool;
  ]
