(* End-to-end smoke tests on the paper's canonical example:

     Thread 1: DATA++; FLAG = 1
     Thread 2: while (FLAG == 0) {}; DATA--

   Without spin detection the hybrid detector false-positives on DATA;
   with it, the happens-before edge from the FLAG store to the loop exit
   removes the warning. *)

open Arde.Builder

let flag_program =
  let worker1 =
    func "producer"
      [
        blk "entry"
          [
            load "d" (g "data");
            addi "d1" (r "d") (imm 1);
            store (g "data") (r "d1");
            store (g "flag") (imm 1);
          ]
          exit_t;
      ]
  in
  let worker2 =
    func "consumer"
      [
        blk "entry" [] (goto "spin");
        blk "spin" [ load "f" (g "flag") ] (br (r "f") "work" "spin");
        blk "work"
          [
            load "d" (g "data");
            subi "d1" (r "d") (imm 1);
            store (g "data") (r "d1");
          ]
          exit_t;
      ]
  in
  let main =
    func "main"
      [
        blk "entry"
          [ spawn "t1" "producer" []; spawn "t2" "consumer" [] ]
          (goto "wait");
        blk "wait" [ join (r "t1"); join (r "t2") ] exit_t;
      ]
  in
  program
    ~globals:[ global "data" (); global "flag" () ]
    ~entry:"main" [ main; worker1; worker2 ]

let detect mode = Arde.detect ~mode (Arde.Input.Program flag_program)

let test_runs_clean () =
  let res = Arde.Machine.run_program Arde.Machine.default_config flag_program in
  Alcotest.(check bool)
    "finished" true
    (res.Arde.Machine.outcome = Arde.Machine.Finished);
  Alcotest.(check int) "data is 0 at the end" 0
    (Arde.Machine.read_global res "data" 0)

let test_spin_loop_found () =
  let inst = Arde.analyze_spins ~k:7 flag_program in
  let spins = Arde.Instrument.spins inst in
  Alcotest.(check int) "one spinning read loop" 1 (List.length spins);
  let c = (List.hd spins).Arde.Instrument.s_cand in
  Alcotest.(check (list string)) "condition base" [ "flag" ] c.Arde.Spin.c_bases

let test_lib_mode_false_positive () =
  let res = detect Arde.Config.Helgrind_lib in
  let bases = Arde.Driver.racy_bases res in
  Alcotest.(check bool) "hybrid without spin warns about data" true
    (List.mem "data" bases)

let test_spin_mode_clean () =
  let res = detect (Arde.Config.Helgrind_spin 7) in
  Alcotest.(check (list string)) "no warnings with spin detection" []
    (Arde.Driver.racy_bases res)

let test_nolib_mode_clean () =
  let res = detect (Arde.Config.Nolib_spin 7) in
  Alcotest.(check (list string)) "universal detector is clean too" []
    (Arde.Driver.racy_bases res)

let suite =
  [
    Alcotest.test_case "machine runs the flag program" `Quick test_runs_clean;
    Alcotest.test_case "instrumentation finds the spin loop" `Quick
      test_spin_loop_found;
    Alcotest.test_case "lib mode false-positives on data" `Quick
      test_lib_mode_false_positive;
    Alcotest.test_case "lib+spin(7) removes the warning" `Quick
      test_spin_mode_clean;
    Alcotest.test_case "nolib+spin(7) removes the warning" `Quick
      test_nolib_mode_clean;
  ]
