let () =
  (* The serve tests start a supervisor that re-execs THIS binary as its
     worker processes; the hook must intercept the marker before
     alcotest ever sees argv. *)
  Arde_server.Worker.hook ();
  Alcotest.run "arde"
    [
      ("util", Test_util.suite);
      ("vclock", Test_vclock.suite);
      ("tir", Test_tir.suite);
      ("cfg", Test_cfg.suite);
      ("parse", Test_parse.suite);
      ("runtime", Test_runtime.suite);
      ("machine-edge", Test_machine_edge.suite);
      ("detect", Test_detect.suite);
      ("extensions", Test_extensions.suite);
      ("spin-runtime", Test_spin_runtime.suite);
      ("hb-edges", Test_hb_edges.suite);
      ("smoke", Test_smoke.suite);
      ("workloads", Test_workloads.suite);
      ("props", Test_props.suite);
      ("fuzz", Test_fuzz.suite);
      ("robustness", Test_robustness.suite);
      ("server", Test_server.suite);
      ("replay", Test_replay.suite);
      ("predict", Test_predict.suite);
      ("parallel", Test_parallel.suite);
      ("engine-diff", Test_engine_diff.suite);
      ("machine-diff", Test_machine_diff.suite);
      ("harness", Test_harness.suite);
      ("integration", Test_integration.suite);
    ]
