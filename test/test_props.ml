(* Property-based tests over the whole pipeline (qcheck via alcotest). *)

let law ?(count = 30) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let cases = Arde_workloads.Racey.all ()

let gen_case =
  QCheck2.Gen.map (fun i -> List.nth cases (i mod List.length cases))
    (QCheck2.Gen.int_bound (List.length cases - 1))

let gen_seed = QCheck2.Gen.int_range 1 1000

let run_hash ?instrument program seed =
  let tr = Arde.Trace.create () in
  let cfg =
    {
      Arde.Machine.default_config with
      Arde.Machine.seed;
      fuel = 400_000;
      instrument;
      observer = Arde.Trace.observer tr;
    }
  in
  let res = Arde.Machine.run_program cfg program in
  (res, Arde.Trace.hash tr)

(* Replaying any case under any seed gives a bit-identical event trace. *)
let prop_determinism =
  law ~count:25 "machine is deterministic per seed"
    (QCheck2.Gen.pair gen_case gen_seed)
    (fun (c, seed) ->
      let _, h1 = run_hash c.Arde_workloads.Racey.program seed in
      let _, h2 = run_hash c.Arde_workloads.Racey.program seed in
      h1 = h2)

(* Spin instrumentation observes but never influences execution. *)
let prop_observer_neutral =
  law ~count:20 "instrumentation does not change the schedule"
    (QCheck2.Gen.pair gen_case gen_seed)
    (fun (c, seed) ->
      let p = c.Arde_workloads.Racey.program in
      let res1, _ = run_hash p seed in
      let inst = Arde.analyze_spins ~k:7 p in
      let res2, _ = run_hash ~instrument:inst p seed in
      res1.Arde.Machine.steps = res2.Arde.Machine.steps
      && res1.Arde.Machine.outcome = res2.Arde.Machine.outcome)

(* The classifier's accepted set grows monotonically with the window. *)
let prop_window_monotone =
  law ~count:20 "spin acceptance is monotone in k"
    (QCheck2.Gen.pair gen_case (QCheck2.Gen.int_range 1 9))
    (fun (c, k) ->
      let p = c.Arde_workloads.Racey.program in
      let ids k =
        List.map
          (fun s -> s.Arde.Instrument.s_cand.Arde.Spin.c_header)
          (Arde.Instrument.spins (Arde.analyze_spins ~k p))
      in
      let small = ids k and large = ids (k + 1) in
      List.for_all (fun h -> List.mem h large) small)

(* Lowering never invents or destroys spin-detectable user loops: every
   loop accepted in the native program is still accepted after lowering
   (helpers only add loops). *)
let prop_lowering_preserves_user_loops =
  law ~count:15 "lowering preserves user spin loops"
    gen_case
    (fun c ->
      let p = c.Arde_workloads.Racey.program in
      let key s =
        ( s.Arde.Instrument.s_cand.Arde.Spin.c_func,
          s.Arde.Instrument.s_cand.Arde.Spin.c_header )
      in
      let native = List.map key (Arde.Instrument.spins (Arde.analyze_spins ~k:7 p)) in
      let lowered =
        List.map key
          (Arde.Instrument.spins (Arde.analyze_spins ~k:7 (Arde.Lower.lower p)))
      in
      List.for_all (fun k -> List.mem k lowered) native)

(* Reports: adding the same race twice is idempotent. *)
let prop_report_idempotent =
  law ~count:50 "report insertion is idempotent"
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 5) (QCheck2.Gen.int_bound 5))
    (fun (i, j) ->
      let race =
        {
          Arde.Report.r_base = "b";
          r_idx = i;
          r_first_tid = 1;
          r_first_loc = { Arde.Types.lfunc = "f"; lblk = string_of_int i; lidx = j };
          r_first_write = true;
          r_second_tid = 2;
          r_second_loc = { Arde.Types.lfunc = "f"; lblk = string_of_int j; lidx = i };
          r_second_write = true;
          r_predicted = false;
        }
      in
      let t = Arde.Report.create () in
      Arde.Report.add t race;
      let n1 = Arde.Report.n_contexts t in
      Arde.Report.add t race;
      n1 = Arde.Report.n_contexts t)

(* Race-free cases keep their runtime self-checks green under arbitrary
   seeds — the machine's sync primitives really synchronize. *)
let prop_race_free_checks_hold =
  law ~count:25 "race-free cases pass their checks under any seed"
    (QCheck2.Gen.pair gen_case gen_seed)
    (fun (c, seed) ->
      c.Arde_workloads.Racey.category = "racy"
      ||
      let res, _ = run_hash c.Arde_workloads.Racey.program seed in
      match res.Arde.Machine.outcome with
      | Arde.Machine.Finished -> res.Arde.Machine.check_failures = []
      | _ -> false)

(* Suppression only ever removes warnings: lib+spin's reported bases on a
   given program are a subset of lib's plus nothing new, modulo schedule
   variation eliminated by using identical seeds. *)
let prop_spin_only_removes =
  law ~count:12 "spin detection only removes warnings"
    gen_case
    (fun c ->
      let bases mode =
        let options =
          Arde.Options.make ~seeds:[ 1; 2 ] ()
        in
        Arde.Driver.racy_bases
          (Arde.detect
             ~ctx:(Arde.Driver.ctx ~options ())
             ~mode (Arde.Input.Program c.Arde_workloads.Racey.program))
      in
      let lib = bases Arde.Config.Helgrind_lib in
      let spin = bases (Arde.Config.Helgrind_spin 7) in
      List.for_all (fun b -> List.mem b lib) spin)

let suite =
  [
    prop_determinism;
    prop_observer_neutral;
    prop_window_monotone;
    prop_lowering_preserves_user_loops;
    prop_report_idempotent;
    prop_race_free_checks_hold;
    prop_spin_only_removes;
  ]
