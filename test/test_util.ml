(* Unit tests for the util library: PRNG determinism and table layout. *)

module Prng = Arde_util.Prng
module Table = Arde_util.Table

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

let test_same_seed_same_stream () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_different_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_int_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of range: %d" v
  done

let test_int_rejects_bad_bound () =
  let t = Prng.create 1 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int t 0))

let test_int_covers_range () =
  let t = Prng.create 3 in
  let seen = Array.make 8 false in
  for _ = 1 to 400 do
    seen.(Prng.int t 8) <- true
  done;
  Alcotest.(check bool) "all 8 values appear" true (Array.for_all Fun.id seen)

let test_copy_is_independent () =
  let a = Prng.create 5 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_split_diverges () =
  let a = Prng.create 9 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "split stream is distinct" true (!same < 4)

let test_shuffle_permutes () =
  let t = Prng.create 11 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id) sorted

let test_bool_is_fair_enough () =
  let t = Prng.create 13 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bool t then incr trues
  done;
  Alcotest.(check bool) "roughly fair" true (!trues > 400 && !trues < 600)

let test_float_bounds () =
  let t = Prng.create 17 in
  for _ = 1 to 100 do
    let f = Prng.float t 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.failf "float out of range: %f" f
  done

let test_pick () =
  let t = Prng.create 19 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 20 do
    let x = Prng.pick t arr in
    Alcotest.(check bool) "member" true (Array.mem x arr)
  done

(* ---- JSON input hardening ----

   The parser sits on the server's socket boundary, so adversarial
   input must come back as a structured error — never a stack overflow
   or an unbounded allocation. *)

module J = Arde_util.Json

let test_json_depth_cap () =
  (* A frame of a hundred thousand '['s must fail cleanly, not blow the
     stack.  The error points at the bracket that crossed the limit. *)
  let deep = String.make 100_000 '[' in
  (match J.parse_checked deep with
  | Ok _ -> Alcotest.fail "over-deep input accepted"
  | Error e ->
      Alcotest.(check int) "fails at the limit-crossing bracket"
        J.default_max_depth e.J.at;
      Alcotest.(check bool) "names the depth limit" true
        (contains e.J.reason "nesting deeper than"));
  (* Mixed nesting counts objects too. *)
  let mixed = String.concat "" (List.init 40 (fun _ -> "{\"a\":[")) in
  match J.parse_checked ~max_depth:16 mixed with
  | Ok _ -> Alcotest.fail "over-deep mixed input accepted"
  | Error e ->
      Alcotest.(check bool) "offset inside input" true
        (e.J.at >= 0 && e.J.at < String.length mixed)

let test_json_depth_cap_boundary () =
  (* Exactly max_depth containers parse; one more fails. *)
  let nested d = String.make d '[' ^ String.make d ']' in
  (match J.parse_checked ~max_depth:8 (nested 8) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth-8 rejected at 8: %s" (J.error_to_string e));
  match J.parse_checked ~max_depth:8 (nested 9) with
  | Ok _ -> Alcotest.fail "depth-9 accepted at 8"
  | Error e -> Alcotest.(check int) "fails at bracket 8" 8 e.J.at

let test_json_size_cap () =
  let big = "\"" ^ String.make 64 'x' ^ "\"" in
  (match J.parse_checked ~max_size:32 big with
  | Ok _ -> Alcotest.fail "over-long input accepted"
  | Error e ->
      Alcotest.(check int) "offset is the size limit" 32 e.J.at;
      Alcotest.(check bool) "names both sizes" true
        (contains e.J.reason "66 bytes" && contains e.J.reason "32"));
  match J.parse_checked ~max_size:66 big with
  | Ok (J.String s) -> Alcotest.(check int) "at-limit input parses" 64 (String.length s)
  | _ -> Alcotest.fail "at-limit input rejected"

let test_json_error_offsets () =
  let check_offset input expected =
    match J.parse_checked input with
    | Ok _ -> Alcotest.failf "%S parsed" input
    | Error e -> Alcotest.(check int) (Printf.sprintf "offset in %S" input) expected e.J.at
  in
  (* the byte where the parser gave up, in order: bad literal, missing
     colon, unterminated string, trailing garbage *)
  check_offset "{\"a\": nul}" 6;
  check_offset "{\"a\" 1}" 5;
  check_offset "\"abc" 4;
  check_offset "[1,2] x" 6;
  check_offset "[1,,2]" 3

let test_json_parse_string_error_compat () =
  (* The string-error variant still renders the offset. *)
  match J.parse "[1,,2]" with
  | Ok _ -> Alcotest.fail "parsed"
  | Error msg -> Alcotest.(check bool) "offset rendered" true (contains msg "offset 3")

(* ---- tables ---- *)

let test_table_render () =
  let t = Table.create [ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (contains s "name");
  Alcotest.(check bool) "right-aligns numbers" true
    (contains s "|  1 |")

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let s = Table.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_rejects_long_rows () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_cell_float () =
  Alcotest.(check string) "integral" "153" (Table.cell_float 153.0);
  Alcotest.(check string) "fractional" "153.4" (Table.cell_float 153.4)

let test_table_separator () =
  let t = Table.create [ "a" ] in
  Table.add_row t [ "1" ];
  Table.add_sep t;
  Table.add_row t [ "2" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "7 lines with separator" 7
    (List.length (List.filter (fun l -> l <> "") lines))

let suite =
  [
    Alcotest.test_case "prng: same seed, same stream" `Quick test_same_seed_same_stream;
    Alcotest.test_case "prng: different seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "prng: int stays in bounds" `Quick test_int_bounds;
    Alcotest.test_case "prng: int rejects bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "prng: int covers its range" `Quick test_int_covers_range;
    Alcotest.test_case "prng: copy is independent" `Quick test_copy_is_independent;
    Alcotest.test_case "prng: split diverges" `Quick test_split_diverges;
    Alcotest.test_case "prng: shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "prng: bool is fair" `Quick test_bool_is_fair_enough;
    Alcotest.test_case "prng: float bounds" `Quick test_float_bounds;
    Alcotest.test_case "prng: pick members" `Quick test_pick;
    Alcotest.test_case "json: depth cap is a structured error" `Quick test_json_depth_cap;
    Alcotest.test_case "json: depth cap boundary" `Quick test_json_depth_cap_boundary;
    Alcotest.test_case "json: size cap is a structured error" `Quick test_json_size_cap;
    Alcotest.test_case "json: error offsets are accurate" `Quick test_json_error_offsets;
    Alcotest.test_case "json: string errors keep the offset" `Quick test_json_parse_string_error_compat;
    Alcotest.test_case "table: renders and aligns" `Quick test_table_render;
    Alcotest.test_case "table: pads short rows" `Quick test_table_pads_short_rows;
    Alcotest.test_case "table: rejects long rows" `Quick test_table_rejects_long_rows;
    Alcotest.test_case "table: float cells" `Quick test_cell_float;
    Alcotest.test_case "table: separators" `Quick test_table_separator;
  ]
