(* Sync-preserving race prediction: unit semantics of the closure on
   hand-built traces, the differential gate against the 16-seed sweep
   (the subsystem's correctness oracle, the way Engine_ref pins
   Engine), prediction over salvaged chaos/cancellation traces, and
   the predicted tag's wire form. *)

module D = Arde.Driver
module E = Arde.Event
module J = Arde.Json
module PB = Arde_harness.Predict_bench
module Report = Arde.Report
module Sp = Arde.Sp_predict
module W = Arde_workloads

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* -- hand-built traces through the predictor ----------------------- *)

let loc f i = { Arde.Types.lfunc = f; lblk = "e"; lidx = i }

let wr tid base base_id value i =
  E.Write
    { tid; base; base_id; idx = 0; value; loc = loc "w" i; kind = E.Plain }

let rd tid base base_id value i =
  E.Read
    {
      tid;
      base;
      base_id;
      idx = 0;
      value;
      loc = loc "r" i;
      kind = E.Plain;
      spin = [];
    }

let preamble = [ E.Thread_start { tid = 0 }; E.Spawn_ev { parent = 0; child = 1; loc = loc "m" 0 } ]
let postamble = [ E.Thread_exit { tid = 1 }; E.Thread_exit { tid = 0 } ]

let predict ?config events =
  Sp.predict ?config (Array.of_list (preamble @ events @ postamble))

let test_unit_racy_pair () =
  let races, stats =
    predict [ wr 0 "x" 0 1 0; E.Thread_start { tid = 1 }; wr 1 "x" 0 2 1 ]
  in
  checki "one race" 1 (List.length races);
  let r = List.hd races in
  Alcotest.(check string) "on x" "x" r.Sp.p_base;
  checkb "closure actually ran" true (stats.Sp.s_closure_runs > 0)

let test_unit_lock_protected () =
  let races, _ =
    predict
      [
        E.Lock_acq { tid = 0; base = "m"; idx = 0; loc = loc "w" 0 };
        wr 0 "x" 0 1 1;
        E.Lock_rel { tid = 0; base = "m"; idx = 0; loc = loc "w" 2 };
        E.Thread_start { tid = 1 };
        E.Lock_acq { tid = 1; base = "m"; idx = 0; loc = loc "r" 0 };
        wr 1 "x" 0 2 1;
        E.Lock_rel { tid = 1; base = "m"; idx = 0; loc = loc "r" 2 };
      ]
  in
  checki "mutual exclusion kills the pair" 0 (List.length races)

(* The ad-hoc handoff: the consumer's flag read observes the producer's
   flag write, so value preservation orders the data accesses — only
   the flag itself can race, and suppressing it (what the spin
   instrumentation vouches for) silences prediction entirely. *)
let flag_handoff =
  [
    wr 0 "data" 0 7 0;
    wr 0 "flag" 1 1 1;
    E.Thread_start { tid = 1 };
    rd 1 "flag" 1 1 0;
    rd 1 "data" 0 7 1;
  ]

let test_unit_adhoc_observation () =
  let races, _ = predict flag_handoff in
  List.iter
    (fun r ->
      if r.Sp.p_base = "data" then
        Alcotest.fail "predicted a race across the observed flag handoff")
    races;
  checkb "the unsuppressed flag itself races" true
    (List.exists (fun r -> r.Sp.p_base = "flag") races)

let test_unit_suppression () =
  let config =
    { Sp.default_config with Sp.suppress = (fun b -> b = "flag") }
  in
  let races, _ = predict ~config flag_handoff in
  checki "suppressed sync base predicts nothing" 0 (List.length races)

let test_unit_cv_synced () =
  let races, _ =
    predict
      [
        wr 0 "x" 0 1 0;
        E.Cv_signal
          {
            tid = 0;
            base = "cv";
            idx = 0;
            loc = loc "w" 1;
            broadcast = false;
            had_waiter = true;
          };
        E.Thread_start { tid = 1 };
        E.Cv_wait_begin { tid = 1; base = "cv"; idx = 0; loc = loc "r" 0 };
        E.Cv_wait_return { tid = 1; base = "cv"; idx = 0; loc = loc "r" 0 };
        rd 1 "x" 0 1 1;
      ]
  in
  checki "cv handoff kills the pair" 0 (List.length races)

(* -- the differential oracle --------------------------------------- *)

(* Catalog cases x Table-1 modes, sweep16 vs Predict-from-2: every
   context the sweep finds must appear in the predict run's merged
   report, and every predicted context must be vouched for by the
   sweep or by ground truth.  The bench harness computes exactly this;
   the test pins it on a representative slice. *)
let test_differential () =
  let t =
    PB.run ~repeats:1
      ~racy:
        [
          "racy_counter/2";
          "racy_flag_no_loop/2";
          "racy_mixed_locks/4";
          "racy_adhoc_broken/2";
          "racy_lock_ordered_w/2";
        ]
      ~race_free:[ "lock_counter/4"; "lock_flag_spin/2"; "double_checked_init/4" ]
      ~fuel:400_000 ~parsec_fuel:20_000 ()
  in
  List.iter
    (fun r ->
      let name = Printf.sprintf "%s under %s" r.PB.p_workload r.PB.p_mode in
      if r.PB.p_racy then
        checki (name ^ ": sweep contexts covered") 0 r.PB.p_missed;
      checki (name ^ ": predicted false positives") 0 r.PB.p_predicted_fp;
      checki
        (name ^ ": predict ran the promised execution budget")
        (min D.predict_limit 16) r.PB.p_predict_execs)
    t.PB.rows;
  checkb "at least 4x fewer executions per race" true
    (t.PB.summary.PB.s_reduction >= 4.)

(* -- salvaged traces ----------------------------------------------- *)

let racy_case name =
  match W.Racey.find name with
  | Some c -> c
  | None -> Alcotest.failf "no case %s" name

let record_trace ~options ~source case =
  match
    Arde.record
      ~ctx:(D.ctx ~options ())
      ~mode:(Arde.Config.Helgrind_spin 7) ~detect:true ~source
      (Arde.Input.Program case.W.Racey.program)
  with
  | Error e -> Alcotest.failf "record: %s" e
  | Ok { D.rec_trace; rec_result } -> (rec_trace, Option.get rec_result)

let predict_ctx =
  D.ctx
    ~options:(Arde.Options.with_analysis Arde.Options.Predict Arde.Options.default)
    ()

(* Chaos-crashed seeds leave partial (but sealed) sections; prediction
   over the salvaged trace must degrade the health verdict, never
   crash. *)
let test_predict_salvaged_chaos () =
  let case = racy_case "racy_counter/2" in
  let options =
    Arde.Chaos.apply
      (Arde.Options.make ~seeds:[ 1; 2; 3; 4 ] ~fuel:50_000 ())
      (Arde.Chaos.Crash_at 10)
  in
  let trace, live = record_trace ~options ~source:"chaos" case in
  checkb "chaos actually crashed a seed" true (live.D.health.D.h_crashed > 0);
  match Arde.Recorded.of_string trace with
  | Error e -> Alcotest.failf "salvaged trace failed to load: %s" e
  | Ok recorded ->
      let result =
        Arde.detect ~ctx:predict_ctx (Arde.Input.Recorded_trace recorded)
      in
      (* every seed of this short case crashes at event 10, so the
         verdict degrades all the way to Failed — either way it must
         not read Healthy, and prediction must survive the salvage *)
      checkb "crashed seeds degrade the verdict" true
        (result.D.health.D.h_verdict <> D.Healthy);
      checkb "prediction still ran" true (result.D.prediction <> None)

(* Cancelled seeds record empty sections; prediction skips them (they
   hold no events to predict from) and works with what completed. *)
let test_predict_salvaged_cancellation () =
  let case = racy_case "racy_counter/2" in
  let options = Arde.Options.make ~seeds:[ 1; 2; 3; 4 ] ~fuel:50_000 ~jobs:1 () in
  let fired = ref 0 in
  let should_stop () =
    incr fired;
    !fired > 1
  in
  match
    Arde.record
      ~ctx:(D.ctx ~options ~should_stop ())
      ~mode:(Arde.Config.Helgrind_spin 7) ~detect:true ~source:"cancel"
      (Arde.Input.Program case.W.Racey.program)
  with
  | Error e -> Alcotest.failf "record: %s" e
  | Ok { D.rec_trace; rec_result = Some live } -> (
      checkb "some seed was cancelled" true (live.D.health.D.h_cancelled > 0);
      match Arde.Recorded.of_string rec_trace with
      | Error e -> Alcotest.failf "salvaged trace failed to load: %s" e
      | Ok recorded -> (
          let result =
            Arde.detect ~ctx:predict_ctx (Arde.Input.Recorded_trace recorded)
          in
          checkb "cancelled seeds degrade the verdict" true
            (result.D.health.D.h_verdict = D.Degraded);
          match result.D.prediction with
          | None -> Alcotest.fail "prediction did not run"
          | Some p ->
              checkb "only completed sections consumed" true
                (p.D.pr_sections <= D.predict_limit)))
  | Ok { rec_result = None; _ } -> Alcotest.fail "no live result"

(* A corrupted section never reaches the predictor: the per-section
   hash fails the load outright, so nothing can be reported from
   unchecksummed events. *)
let test_predict_never_sees_corrupt_events () =
  let case = racy_case "racy_counter/2" in
  let options = Arde.Options.make ~seeds:[ 1; 2 ] ~fuel:50_000 () in
  let trace, _ = record_trace ~options ~source:"corrupt" case in
  let b = Bytes.of_string trace in
  (* flip one bit near the end of the body, inside section bytes *)
  let off = Bytes.length b - 16 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
  match Arde.Recorded.of_string (Bytes.to_string b) with
  | Error _ -> ()
  | Ok recorded ->
      (* the flipped bit may land in a trailer field that still parses;
         what must never happen is a crash or a report sourced from a
         section whose hash does not match *)
      let result =
        Arde.detect ~ctx:predict_ctx (Arde.Input.Recorded_trace recorded)
      in
      ignore result.D.merged

(* -- the wire form -------------------------------------------------- *)

let fixture_race predicted =
  {
    Report.r_base = "x";
    r_idx = 0;
    r_first_tid = 1;
    r_first_loc = loc "w" 3;
    r_first_write = true;
    r_second_tid = 2;
    r_second_loc = loc "r" 5;
    r_second_write = false;
    r_predicted = predicted;
  }

let contains ~affix s = Astring.String.is_infix ~affix s

let test_race_json_roundtrip () =
  List.iter
    (fun predicted ->
      let r = fixture_race predicted in
      match Report.race_of_json (Report.race_to_json r) with
      | Ok r' -> checkb "race round-trips" true (r = r')
      | Error e -> Alcotest.failf "race_of_json: %s" e)
    [ true; false ];
  (* the tag is emitted only when set, keeping observed races (and
     every pinned sweep document) byte-identical to before *)
  checkb "observed race carries no tag" false
    (contains ~affix:"predicted"
       (J.to_string (Report.race_to_json (fixture_race false))));
  checkb "predicted race carries the tag" true
    (contains ~affix:{|"predicted"|}
       (J.to_string (Report.race_to_json (fixture_race true))))

let test_report_json_roundtrip () =
  let t = Report.create () in
  Report.add t (fixture_race false);
  Report.add t (fixture_race true);
  (* same context: the merge keeps the first representative *)
  let t2 = Report.create () in
  Report.add t2 (fixture_race true);
  List.iter
    (fun report ->
      match Report.of_json (Report.to_json report) with
      | Ok back ->
          checkb "report round-trips the tag" true
            (Report.races back = Report.races report)
      | Error e -> Alcotest.failf "Report.of_json: %s" e)
    [ t; t2 ]

let test_options_json_roundtrip () =
  let o =
    Arde.Options.with_analysis Arde.Options.Predict Arde.Options.default
  in
  (match Arde.Options.of_json (Arde.Options.to_json o) with
  | Ok o' ->
      checkb "analysis survives the wire" true
        (o'.Arde.Options.analysis = Arde.Options.Predict)
  | Error e -> Alcotest.failf "Options.of_json: %s" e);
  checkb "default options emit no analysis field" false
    (contains ~affix:"analysis"
       (J.to_string (Arde.Options.to_json Arde.Options.default)))

let test_result_json_shape () =
  let case = racy_case "racy_counter/2" in
  let options =
    Arde.Options.make ~seeds:(List.init 16 (fun i -> i + 1)) ~fuel:400_000 ()
  in
  let sweep =
    Arde.detect
      ~ctx:(D.ctx ~options ())
      ~mode:(Arde.Config.Helgrind_spin 7)
      (Arde.Input.Program case.W.Racey.program)
  in
  checkb "sweep results carry no prediction object" false
    (contains ~affix:"prediction" (J.to_string (D.result_to_json sweep)));
  let pred =
    Arde.detect
      ~ctx:
        (D.ctx
           ~options:(Arde.Options.with_analysis Arde.Options.Predict options)
           ())
      ~mode:(Arde.Config.Helgrind_spin 7)
      (Arde.Input.Program case.W.Racey.program)
  in
  let j = J.to_string (D.result_to_json pred) in
  checkb "predict results carry the prediction object" true
    (contains ~affix:{|"prediction"|} j);
  (* and the merged report round-trips through the documented decoder,
     predicted tags included *)
  match Report.of_json (Report.to_json pred.D.merged) with
  | Ok back ->
      checkb "merged report round-trips" true
        (Report.races back = Report.races pred.D.merged)
  | Error e -> Alcotest.failf "Report.of_json on a predict run: %s" e

let suite =
  [
    Alcotest.test_case "unit: unsynchronized pair predicted" `Quick
      test_unit_racy_pair;
    Alcotest.test_case "unit: lock-protected pair rejected" `Quick
      test_unit_lock_protected;
    Alcotest.test_case "unit: observation preserves ad-hoc handoff" `Quick
      test_unit_adhoc_observation;
    Alcotest.test_case "unit: sync-base suppression" `Quick
      test_unit_suppression;
    Alcotest.test_case "unit: cv handoff rejected" `Quick test_unit_cv_synced;
    Alcotest.test_case "differential: predict-from-2 vs the 16-seed sweep"
      `Slow test_differential;
    Alcotest.test_case "prediction over chaos-salvaged traces" `Quick
      test_predict_salvaged_chaos;
    Alcotest.test_case "prediction over cancelled recordings" `Quick
      test_predict_salvaged_cancellation;
    Alcotest.test_case "corrupt sections never reach the predictor" `Quick
      test_predict_never_sees_corrupt_events;
    Alcotest.test_case "predicted tag round-trips race json" `Quick
      test_race_json_roundtrip;
    Alcotest.test_case "predicted tag round-trips report json" `Quick
      test_report_json_roundtrip;
    Alcotest.test_case "analysis knob round-trips options json" `Quick
      test_options_json_roundtrip;
    Alcotest.test_case "result json: prediction object and tags" `Quick
      test_result_json_shape;
  ]
