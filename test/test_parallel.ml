(* The parallel per-seed stage and its supporting API surface:

   - determinism: [jobs = 1] and [jobs = 8] produce byte-identical
     results (merged report, per-seed runs, health verdict), across the
     workload catalog and under chaos-injected crashes;
   - the analysis cache returns exactly what a fresh analysis returns,
     and actually hits on repeated runs;
   - the JSON wire forms round-trip;
   - the Options construction API behaves. *)

module D = Arde.Driver
module O = Arde.Options
module J = Arde.Json

(* The determinism checks vary only the pool width, and a width beyond
   the host core count is (by design) recorded as a clamp note in the
   health record — drop those notes so the comparison sees just the
   detection results. *)
let strip_clamp_notes r =
  let h = r.D.health in
  {
    r with
    D.health =
      {
        h with
        D.h_notes =
          List.filter
            (fun n ->
              not (String.length n >= 5 && String.sub n 0 5 = "jobs:"))
            h.D.h_notes;
      };
  }

let result_bytes r = J.to_string (D.result_to_json (strip_clamp_notes r))

let run_with_jobs ~jobs ?(options = O.default) mode p =
  Arde.detect
    ~ctx:(Arde.Driver.ctx ~options:(O.with_jobs jobs options) ())
    ~mode (Arde.Input.Program p)

(* ------------------------------------------------------------------ *)
(* Determinism across pool widths                                      *)

(* A slice of the catalog: every 12th case samples all categories
   without making the test slow. *)
let catalog_sample () =
  List.filteri (fun i _ -> i mod 12 = 0) (Arde_workloads.Racey.all ())

let test_jobs_determinism () =
  let options = O.make ~seeds:[ 1; 2; 3; 4; 5; 6 ] ~fuel:400_000 () in
  List.iter
    (fun (c : Arde_workloads.Racey.case) ->
      List.iter
        (fun mode ->
          let seq = run_with_jobs ~jobs:1 ~options mode c.program in
          let par = run_with_jobs ~jobs:8 ~options mode c.program in
          Alcotest.(check string)
            (Printf.sprintf "%s under %s: jobs=1 = jobs=8" c.name
               (Arde.Config.mode_name mode))
            (result_bytes seq) (result_bytes par);
          Alcotest.(check (list string))
            (c.name ^ ": racy bases agree") (D.racy_bases seq)
            (D.racy_bases par))
        [ Arde.Config.Helgrind_lib; Arde.Config.Helgrind_spin 7 ])
    (catalog_sample ())

let racy_case name =
  match Arde_workloads.Racey.find name with
  | Some c -> c.Arde_workloads.Racey.program
  | None -> Alcotest.failf "case %s missing" name

let test_jobs_determinism_under_chaos () =
  (* Crashing and faulting seeds exercise the sandbox on worker domains;
     the salvage path must stay order-stable too. *)
  let p = racy_case "racy_counter/2" in
  List.iter
    (fun perturbation ->
      let options =
        Arde.Chaos.apply
          (O.make ~seeds:[ 1; 2; 3; 4; 5 ] ~fuel:60_000 ())
          perturbation
      in
      let seq = run_with_jobs ~jobs:1 ~options Arde.Config.(Helgrind_spin 7) p in
      let par = run_with_jobs ~jobs:8 ~options Arde.Config.(Helgrind_spin 7) p in
      Alcotest.(check string)
        (Format.asprintf "%a: jobs=1 = jobs=8" Arde.Chaos.pp_perturbation
           perturbation)
        (result_bytes seq) (result_bytes par))
    [
      Arde.Chaos.Crash_at 40;
      Arde.Chaos.Fault_at 25;
      Arde.Chaos.Spurious_wakeups;
      Arde.Chaos.Starve_fuel 200;
    ]

(* ------------------------------------------------------------------ *)
(* Analysis cache                                                      *)

let test_cache_matches_fresh_instrumentation () =
  let p = racy_case "adhoc_flag_w2/8" in
  Arde.Analysis_cache.clear ();
  let fresh = Arde.Instrument.analyze ~count_callees:true ~k:7 p in
  let first = Arde.Analysis_cache.instrumented ~count_callees:true ~k:7 p in
  let cached = Arde.Analysis_cache.instrumented ~count_callees:true ~k:7 p in
  let summary i = Format.asprintf "%a" Arde.Instrument.pp_summary i in
  Alcotest.(check string) "cache miss = fresh analysis" (summary fresh)
    (summary first);
  Alcotest.(check string) "cache hit = fresh analysis" (summary fresh)
    (summary cached);
  Alcotest.(check int) "same accepted spin loops"
    (List.length (Arde.Instrument.spins fresh))
    (List.length (Arde.Instrument.spins cached))

let test_cache_matches_fresh_lowering () =
  let p = racy_case "adhoc_flag_w2/8" in
  Arde.Analysis_cache.clear ();
  let style = Arde.Lower.Realistic in
  let fresh = Arde.Lower.lower ~style p in
  ignore (Arde.Analysis_cache.lowered ~style p);
  let cached = Arde.Analysis_cache.lowered ~style p in
  Alcotest.(check string) "cached lowering = fresh lowering"
    (Arde.Pretty.program_to_string fresh)
    (Arde.Pretty.program_to_string cached)

let test_cache_hits_on_repeated_runs () =
  let p = racy_case "adhoc_flag_w2/8" in
  let options = O.make ~seeds:[ 1; 2; 3; 4; 5 ] ~fuel:100_000 () in
  Arde.Analysis_cache.clear ();
  Arde.Analysis_cache.reset_stats ();
  (* Nolib_spin lowers and instruments; the first run populates the
     prepared bundle (recording inner lower/instrument misses), and the
     repeat run is a single prepared hit that touches neither inner
     table. *)
  let run () =
    ignore
      (Arde.detect
         ~ctx:(Arde.Driver.ctx ~options ())
         ~mode:(Arde.Config.Nolib_spin 7) (Arde.Input.Program p))
  in
  run ();
  run ();
  let s = Arde.Analysis_cache.stats () in
  Alcotest.(check bool) "prepared cache hit" true
    (s.Arde.Analysis_cache.prepare_hits > 0);
  Alcotest.(check int) "one prepared miss" 1 s.Arde.Analysis_cache.prepare_misses;
  Alcotest.(check int) "inner misses recorded once" 1
    s.Arde.Analysis_cache.instrument_misses;
  (* The inner entries are warm too: a direct lookup (what `arde spin`
     and the benches do) hits without re-analyzing. *)
  ignore (Arde.Analysis_cache.lowered ~style:options.O.lower_style p);
  let s = Arde.Analysis_cache.stats () in
  Alcotest.(check bool) "lowering cache hit" true
    (s.Arde.Analysis_cache.lower_hits > 0)

let test_cache_disabled_recomputes () =
  let p = racy_case "racy_counter/2" in
  Arde.Analysis_cache.clear ();
  Arde.Analysis_cache.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Arde.Analysis_cache.set_enabled true)
    (fun () ->
      Arde.Analysis_cache.reset_stats ();
      ignore (Arde.Analysis_cache.instrumented ~count_callees:true ~k:7 p);
      ignore (Arde.Analysis_cache.instrumented ~count_callees:true ~k:7 p);
      let s = Arde.Analysis_cache.stats () in
      Alcotest.(check int) "no hits while disabled" 0
        s.Arde.Analysis_cache.instrument_hits;
      Alcotest.(check int) "both lookups miss" 2
        s.Arde.Analysis_cache.instrument_misses)

(* ------------------------------------------------------------------ *)
(* JSON wire forms                                                     *)

let test_json_value_roundtrip () =
  let v =
    J.Obj
      [
        ("null", J.Null);
        ("flag", J.Bool true);
        ("n", J.Int (-42));
        ("pi", J.Float 3.25);
        ("whole", J.Float 2.0);
        ("s", J.String "line\nbreak \"quoted\" \t tab \\ slash");
        ("xs", J.List [ J.Int 1; J.List []; J.Obj [] ]);
      ]
  in
  (match J.parse (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "minified round-trip" true (v = v')
  | Error e -> Alcotest.fail e);
  (match J.parse (J.to_string ~minify:false v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trip" true (v = v')
  | Error e -> Alcotest.fail e);
  match J.parse "{\"unterminated\": " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad input parsed"

let test_report_json_roundtrip () =
  let r =
    Arde.detect
      ~ctx:(Arde.Driver.ctx ~options:(O.make ~seeds:[ 1; 2; 3 ] ()) ())
      ~mode:Arde.Config.Helgrind_lib
      (Arde.Input.Program (racy_case "racy_counter/2"))
  in
  let merged = r.D.merged in
  Alcotest.(check bool) "report is non-trivial" true
    (Arde.Report.n_contexts merged > 0);
  match Arde.Report.of_json (Arde.Report.to_json merged) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check int) "contexts preserved"
        (Arde.Report.n_contexts merged)
        (Arde.Report.n_contexts back);
      Alcotest.(check bool) "races preserved" true
        (Arde.Report.races merged = Arde.Report.races back);
      Alcotest.(check string) "re-serialization is byte-identical"
        (J.to_string (Arde.Report.to_json merged))
        (J.to_string (Arde.Report.to_json back))

let test_health_json_roundtrip () =
  (* A degraded run gives the health record non-zero counters and
     notes. *)
  let options =
    Arde.Chaos.apply (O.make ~seeds:[ 1; 2; 3 ] ~fuel:60_000 ())
      (Arde.Chaos.Crash_at 30)
  in
  let r =
    Arde.detect
      ~ctx:(Arde.Driver.ctx ~options ())
      ~mode:Arde.Config.Helgrind_lib
      (Arde.Input.Program (racy_case "racy_counter/2"))
  in
  let h = r.D.health in
  match D.health_of_json (D.health_to_json h) with
  | Error e -> Alcotest.fail e
  | Ok back -> Alcotest.(check bool) "health round-trips" true (h = back)

(* ------------------------------------------------------------------ *)
(* Options construction API                                            *)

let test_options_api () =
  Alcotest.(check bool) "make () = default" true (O.make () = O.default);
  let o =
    O.default
    |> O.with_seed_count 4
    |> O.with_fuel 123
    |> O.with_jobs 3
    |> O.with_policy Arde.Sched.Uniform
  in
  Alcotest.(check (list int)) "with_seed_count" [ 1; 2; 3; 4 ] o.O.seeds;
  Alcotest.(check int) "with_fuel" 123 o.O.fuel;
  Alcotest.(check int) "with_jobs" 3 o.O.jobs;
  Alcotest.(check bool) "with_policy" true (o.O.policy = Arde.Sched.Uniform);
  Alcotest.(check bool) "make overrides" true
    ((O.make ~fuel:99 ()).O.fuel = 99)

let test_effective_jobs () =
  let with_jobs j = O.with_jobs j O.default in
  let host = O.default_jobs in
  Alcotest.(check int) "explicit width clamped to host and seeds"
    (max 1 (min (min 8 host) 3))
    (O.effective_jobs (with_jobs 8) ~n_seeds:3);
  Alcotest.(check int) "explicit width below seeds"
    (max 1 (min (min 2 host) 5))
    (O.effective_jobs (with_jobs 2) ~n_seeds:5);
  Alcotest.(check int) "at least one" 1
    (O.effective_jobs (with_jobs 4) ~n_seeds:0);
  Alcotest.(check int) "0 means hardware width (clamped)"
    (max 1 (min O.default_jobs 64))
    (O.effective_jobs (with_jobs 0) ~n_seeds:64);
  Alcotest.(check bool) "oversized request is reported as a clamp"
    (8 > host)
    (O.jobs_clamp (with_jobs 8) <> None);
  Alcotest.(check bool) "hardware default is never a clamp" true
    (O.jobs_clamp (with_jobs 0) = None);
  Alcotest.(check bool) "width 1 is never a clamp" true
    (O.jobs_clamp (with_jobs 1) = None)

(* ------------------------------------------------------------------ *)
(* The domain pool itself                                              *)

let test_domain_pool_map () =
  let xs = List.init 50 Fun.id in
  let expect = List.map (fun i -> i * i) xs in
  Alcotest.(check (list int)) "order preserved at jobs=4" expect
    (Arde.Domain_pool.map ~jobs:4 (fun i -> i * i) xs);
  Alcotest.(check (list int)) "jobs=1 is plain map" expect
    (Arde.Domain_pool.map ~jobs:1 (fun i -> i * i) xs)

let test_domain_pool_exception () =
  match
    Arde.Domain_pool.map ~jobs:4
      (fun i -> if i = 17 then failwith "boom" else i)
      (List.init 32 Fun.id)
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "exception surfaces" "boom" m

let suite =
  [
    Alcotest.test_case "jobs=1 = jobs=8 across the catalog" `Slow
      test_jobs_determinism;
    Alcotest.test_case "jobs=1 = jobs=8 under chaos injection" `Quick
      test_jobs_determinism_under_chaos;
    Alcotest.test_case "cached instrumentation = fresh" `Quick
      test_cache_matches_fresh_instrumentation;
    Alcotest.test_case "cached lowering = fresh" `Quick
      test_cache_matches_fresh_lowering;
    Alcotest.test_case "cache hits on repeated runs" `Quick
      test_cache_hits_on_repeated_runs;
    Alcotest.test_case "disabled cache recomputes" `Quick
      test_cache_disabled_recomputes;
    Alcotest.test_case "JSON values round-trip" `Quick
      test_json_value_roundtrip;
    Alcotest.test_case "report JSON round-trips" `Quick
      test_report_json_roundtrip;
    Alcotest.test_case "health JSON round-trips" `Quick
      test_health_json_roundtrip;
    Alcotest.test_case "Options make/with_*" `Quick test_options_api;
    Alcotest.test_case "effective_jobs clamping" `Quick test_effective_jobs;
    Alcotest.test_case "domain pool preserves order" `Quick
      test_domain_pool_map;
    Alcotest.test_case "domain pool re-raises" `Quick
      test_domain_pool_exception;
  ]
