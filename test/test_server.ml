(* The serve subsystem: frame codec, request schemas, scheduler
   admission control, and the daemon end to end over a real Unix domain
   socket — byte-identical results vs the in-process driver, malformed
   frames answered with structured errors, concurrent clients, deadlines
   and the SIGTERM drain state machine. *)

module J = Arde.Json
module P = Arde_server.Protocol
module S = Arde_server.Server
module C = Arde_server.Client
module W = Arde_workloads

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Protocol unit tests (no socket)                                     *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 100_000 'z'; "{\"a\":1}" ] in
  List.iter
    (fun payload ->
      let d = P.decoder () in
      let f = Bytes.of_string (P.frame payload) in
      (* Feed one byte at a time: reassembly must not depend on chunking. *)
      for i = 0 to Bytes.length f - 1 do
        (match P.next_frame d with
        | P.Await -> ()
        | _ -> Alcotest.fail "frame completed early");
        P.feed d f i 1
      done;
      match P.next_frame d with
      | P.Frame got -> checks "payload" payload got
      | _ -> Alcotest.fail "expected a complete frame")
    payloads

let test_frame_pipelined () =
  let d = P.decoder () in
  let bytes = P.frame "first" ^ P.frame "second" ^ P.frame "third" in
  let b = Bytes.of_string bytes in
  P.feed d b 0 (Bytes.length b);
  let rec collect acc =
    match P.next_frame d with
    | P.Frame s -> collect (s :: acc)
    | P.Await -> List.rev acc
    | P.Too_large _ -> Alcotest.fail "unexpected too-large"
  in
  check (Alcotest.list Alcotest.string) "all frames"
    [ "first"; "second"; "third" ]
    (collect [])

let test_frame_too_large () =
  let d = P.decoder ~max_frame:64 () in
  let b = Bytes.of_string (P.frame (String.make 65 'q')) in
  P.feed d b 0 (Bytes.length b);
  (match P.next_frame d with
  | P.Too_large n -> check Alcotest.int "announced size" 65 n
  | _ -> Alcotest.fail "expected Too_large");
  (* A header with the sign bit set must not wrap into a small size. *)
  let d = P.decoder () in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 0xF0000000l;
  P.feed d hdr 0 4;
  match P.next_frame d with
  | P.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large for sign-bit header"

let test_request_roundtrip () =
  let options = Arde.Options.make ~seeds:[ 3; 1 ] ~fuel:1234 ~jobs:2 () in
  let mode = Arde.Config.Nolib_spin 5 in
  let req =
    P.run_request_json ~id:(J.Int 42) ~deadline_ms:750 ~program:"entry = m\n"
      ~mode ~options ()
  in
  match P.parse_request (J.to_string req) with
  | Ok (P.Run r) -> (
      check Alcotest.string "id" "42" (J.to_string r.P.rq_id);
      check (Alcotest.option Alcotest.int) "deadline" (Some 750)
        r.P.rq_deadline_ms;
      match r.P.rq_payload with
      | P.Rq_program p ->
          checks "program" "entry = m\n" p.P.rp_program;
          checks "mode" "nolib+spin:5" (Arde.Config.mode_id p.P.rp_mode);
          checkb "record defaults to off" false p.P.rp_record;
          checks "options survive the wire"
            (J.to_string (Arde.Options.to_json options))
            (J.to_string (Arde.Options.to_json p.P.rp_options))
      | P.Rq_trace _ -> Alcotest.fail "parsed as a trace request")
  | Ok _ -> Alcotest.fail "parsed as a non-run request"
  | Error (_, _, e) -> Alcotest.failf "parse_request: %s" e

let test_request_errors () =
  let expect_code want payload =
    match P.parse_request payload with
    | Ok _ -> Alcotest.failf "accepted %S" payload
    | Error (_, code, _) -> checks payload want (P.code_name code)
  in
  expect_code "bad_frame" "{not json";
  expect_code "bad_frame" (String.make 80 '[');
  expect_code "bad_request" {|{"type":"frobnicate"}|};
  expect_code "bad_request" {|{"id":1}|};
  expect_code "bad_request" {|{"type":"run","program":"x","mode":"warp:9"}|};
  expect_code "bad_request"
    {|{"type":"run","program":"x","mode":"lib","deadline_ms":-5}|};
  expect_code "bad_request"
    {|{"type":"run","program":"x","mode":"lib","options":{"seeds":"nope"}}|};
  (* The id is recovered even from a bad request, for correlation. *)
  match P.parse_request {|{"type":"frobnicate","id":7}|} with
  | Error (id, _, _) -> checks "echoed id" "7" (J.to_string id)
  | Ok _ -> Alcotest.fail "accepted unknown type"

let test_mode_id_roundtrip () =
  List.iter
    (fun m ->
      (match Arde.Config.parse_mode (Arde.Config.mode_id m) with
      | Ok m' -> checkb "mode_id roundtrip" true (m = m')
      | Error e -> Alcotest.failf "parse_mode (mode_id): %s" e);
      match Arde.Config.parse_mode (Arde.Config.mode_name m) with
      | Ok m' -> checkb "mode_name also parses" true (m = m')
      | Error e -> Alcotest.failf "parse_mode (mode_name): %s" e)
    (Arde.Config.Nolib_spin_locks 3 :: Arde.Config.all_table1_modes)

(* ------------------------------------------------------------------ *)
(* Binary wire unit tests (no socket)                                  *)

let test_binary_request_roundtrip () =
  let options = Arde.Options.make ~seeds:[ 3; 1 ] ~fuel:1234 ~jobs:2 () in
  let mode = Arde.Config.Nolib_spin 5 in
  let payload =
    P.binary_run_request ~id:(J.Int 42) ~deadline_ms:750 ~retry:3
      ~record:true ~program:"entry = m\n" ~mode ~options ()
  in
  checkb "classified binary" true (P.payload_wire payload = P.Binary);
  (match P.parse_request payload with
  | Ok (P.Run r) -> (
      checks "id" "42" (J.to_string r.P.rq_id);
      check (Alcotest.option Alcotest.int) "deadline" (Some 750)
        r.P.rq_deadline_ms;
      check Alcotest.int "retry" 3 r.P.rq_retry;
      match r.P.rq_payload with
      | P.Rq_program p ->
          checks "program" "entry = m\n" p.P.rp_program;
          checks "mode" "nolib+spin:5" (Arde.Config.mode_id p.P.rp_mode);
          checkb "record" true p.P.rp_record;
          checks "options survive the wire"
            (J.to_string (Arde.Options.to_json options))
            (J.to_string (Arde.Options.to_json p.P.rp_options))
      | P.Rq_trace _ -> Alcotest.fail "parsed as a trace request")
  | Ok _ -> Alcotest.fail "parsed as a non-run request"
  | Error (_, _, e) -> Alcotest.failf "parse_request: %s" e);
  (* A replay request's trace is raw bytes — any bytes at all. *)
  let trace = String.init 512 (fun i -> Char.chr (i * 7 mod 256)) in
  (match
     P.parse_request (P.binary_replay_request ~id:(J.String "r") ~trace ())
   with
  | Ok (P.Run { P.rq_payload = P.Rq_trace t; rq_id; _ }) ->
      checks "trace travels verbatim" trace t;
      checks "id" {|"r"|} (J.to_string rq_id)
  | Ok _ -> Alcotest.fail "parsed as a non-trace request"
  | Error (_, _, e) -> Alcotest.failf "replay: %s" e);
  (match P.parse_request (P.binary_stats_request ~id:(J.Int 7) ()) with
  | Ok (P.Stats id) -> checks "stats id" "7" (J.to_string id)
  | _ -> Alcotest.fail "stats request");
  (match P.parse_request (P.binary_ping_request ()) with
  | Ok (P.Ping id) -> checks "ping default id" "null" (J.to_string id)
  | _ -> Alcotest.fail "ping request");
  match P.parse_request (P.binary_hello ()) with
  | Ok P.Hello -> ()
  | _ -> Alcotest.fail "hello request"

let test_binary_request_errors () =
  let expect_code want payload =
    match P.parse_request payload with
    | Ok _ -> Alcotest.failf "accepted %S" payload
    | Error (_, code, _) ->
        checks (String.escaped payload) want (P.code_name code)
  in
  (* Every proper prefix of a valid request is structural garbage. *)
  let good = P.binary_ping_request ~id:(J.Int 1) () in
  for i = 1 to String.length good - 1 do
    expect_code "bad_frame" (String.sub good 0 i)
  done;
  (* Unsupported version byte. *)
  expect_code "bad_frame" "\xB7\x63\x06\x011";
  (* Trailing bytes after a well-formed message. *)
  expect_code "bad_frame" (good ^ "x");
  (* Truncated mid-varint: a length whose continuation bit never ends. *)
  expect_code "bad_frame" "\xB7\x01\x06\xFF";
  (* Structurally sound envelope, meaningless kind. *)
  expect_code "bad_request" "\xB7\x01\x63\x011";
  (* Semantic errors inside a sound envelope are bad_request, like JSON. *)
  let opts = Arde.Options.make () in
  expect_code "bad_request"
    (P.binary_run_request ~deadline_ms:0 ~program:"x"
       ~mode:Arde.Config.Helgrind_lib ~options:opts ());
  (* The id still comes back for correlation, as on the JSON wire. *)
  match
    P.parse_request
      (P.binary_run_request ~id:(J.Int 7) ~deadline_ms:(-5) ~program:"x"
         ~mode:Arde.Config.Helgrind_lib ~options:opts ())
  with
  | Error (id, _, _) -> checks "echoed id" "7" (J.to_string id)
  | Ok _ -> Alcotest.fail "accepted a non-positive deadline"

let test_binary_response_roundtrip () =
  let trace = String.init 300 (fun i -> Char.chr ((i * 13) mod 256)) in
  let resps =
    [
      P.ok_response ~id:(J.Int 1) [ ("pong", J.Bool true) ];
      P.ok_response ~id:(J.String "a")
        [
          ("result", J.Obj [ ("races", J.List [ J.Int 1; J.Int 2 ]) ]);
          ("analysis_cache", J.Obj [ ("hits", J.Int 3) ]);
          ("trace", J.String (Arde.Base64.encode trace));
        ];
      P.ok_response ~id:J.Null [ ("result", J.Obj []) ];
      P.ok_response ~id:(J.Int 2)
        [ ("stats", J.Obj [ ("queue", J.Int 0) ]) ];
      P.error_response ~id:(J.Int 9) P.Bad_request "no such mode";
      P.error_response ~id:J.Null P.Worker_crashed "worker 3 lost";
    ]
  in
  List.iter
    (fun resp ->
      let bin = P.encode_response ~wire:P.Binary resp in
      checkb "classified binary" true (P.payload_wire bin = P.Binary);
      let back =
        match P.response_of_binary bin with
        | Ok j -> j
        | Error e -> Alcotest.failf "response_of_binary: %s" e
      in
      checks "round-trips byte-identically" (J.to_string resp)
        (J.to_string back))
    resps;
  (* The worker's raw-trace short circuit must not change the bytes. *)
  let with_trace = List.nth resps 1 in
  checks "raw_trace short-circuit is byte-identical"
    (P.encode_response ~wire:P.Binary with_trace)
    (P.encode_response ~raw_trace:trace ~wire:P.Binary with_trace);
  (* JSON encoding is untouched by the dual-wire encoder. *)
  checks "json wire unchanged"
    (J.to_string with_trace)
    (P.encode_response ~wire:P.Json with_trace)

let test_hello_ack () =
  (match P.parse_hello_ack (P.binary_hello_ack ~max_frame:123_456) with
  | Ok n -> check Alcotest.int "negotiated cap" 123_456 n
  | Error e -> Alcotest.failf "hello_ack: %s" e);
  checkb "non-ack rejected" true
    (Result.is_error (P.parse_hello_ack (P.binary_hello ())));
  checkb "json rejected" true (Result.is_error (P.parse_hello_ack "{}"));
  checkb "truncated rejected" true
    (Result.is_error (P.parse_hello_ack "\xB7\x01"))

(* ------------------------------------------------------------------ *)
(* Scheduler unit tests                                                *)

let test_scheduler_admission () =
  let module Sch = Arde_server.Scheduler in
  let s = Sch.create ~workers:2 ~max_pending:2 in
  checkb "accepted" true (Sch.submit s ~slot:0 1 = Sch.Accepted);
  checkb "accepted" true (Sch.submit s ~slot:1 2 = Sch.Accepted);
  checkb "overloaded beyond max_pending (global bound)" true
    (Sch.submit s ~slot:0 3 = Sch.Overloaded);
  check Alcotest.int "depth" 2 (Sch.depth s);
  check Alcotest.int "refusals counted" 1 (Sch.refused s);
  checkb "pop slot 0" true (Sch.take s ~slot:0 = Some 1);
  checkb "slot 0 busy" true (Sch.busy s ~slot:0);
  checkb "one job per slot" true (Sch.take s ~slot:0 = None);
  check Alcotest.int "in flight" 1 (Sch.in_flight s);
  checkb "taking freed a queue slot" true (Sch.submit s ~slot:0 3 = Sch.Accepted);
  Sch.begin_drain s;
  checkb "draining refuses" true (Sch.submit s ~slot:0 4 = Sch.Draining);
  checkb "queued work survives drain" true (Sch.take s ~slot:1 = Some 2);
  checkb "queued work survives drain" true
    (Sch.take s ~slot:0 = None (* still busy with job 1 *));
  Sch.finish s ~slot:0;
  checkb "slot 0 serves its queue after finishing" true
    (Sch.take s ~slot:0 = Some 3);
  Sch.finish s ~slot:0;
  Sch.finish s ~slot:1;
  checkb "idle after drain" true (Sch.idle s)

(* Refused and deadline-cancelled requests must release their queue
   slot immediately: admission capacity recovers right after a refusal
   burst, not when a worker gets around to the backlog. *)
let test_scheduler_capacity_recovery () =
  let module Sch = Arde_server.Scheduler in
  let s = Sch.create ~workers:1 ~max_pending:3 in
  List.iter
    (fun j -> checkb "fill" true (Sch.submit s ~slot:0 j = Sch.Accepted))
    [ 1; 2; 3 ];
  (* A refusal burst: none of these may consume capacity. *)
  List.iter
    (fun j ->
      checkb "refused at capacity" true (Sch.submit s ~slot:0 j = Sch.Overloaded))
    [ 4; 5; 6; 7; 8 ];
  check Alcotest.int "burst counted" 5 (Sch.refused s);
  check Alcotest.int "depth unchanged by the burst" 3 (Sch.depth s);
  (* Deadline-cancel one queued job: capacity must recover at once. *)
  let cancelled = Sch.remove s ~pred:(fun j -> j = 2) in
  checkb "cancelled the queued job" true (cancelled = [ 2 ]);
  check Alcotest.int "cancellation counted" 1 (Sch.cancelled s);
  checkb "capacity recovered immediately" true
    (Sch.submit s ~slot:0 9 = Sch.Accepted);
  checkb "and is bounded again" true (Sch.submit s ~slot:0 10 = Sch.Overloaded);
  (* Dead-slot re-routing also conserves capacity. *)
  let orphans = Sch.drain_slot s ~slot:0 in
  check Alcotest.int "orphans" 3 (List.length orphans);
  check Alcotest.int "queue empty" 0 (Sch.depth s);
  List.iter (fun j -> Sch.enqueue s ~slot:0 j) orphans;
  check Alcotest.int "re-routed jobs restored" 3 (Sch.depth s);
  checkb "still bounded after re-route" true
    (Sch.submit s ~slot:0 11 = Sch.Overloaded);
  checkb "queue order preserved" true (Sch.take s ~slot:0 = Some 1)

(* ------------------------------------------------------------------ *)
(* Live-server harness                                                 *)

type server = { t : S.t; path : string; spool : string; runner : unit Domain.t }

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "arde-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun entry -> rm_rf (Filename.concat path entry))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

(* The default worker fleet for tests is small and quick to restart;
   the breaker window is kept tiny so deliberate crash storms in these
   tests exercise restarts, not the circuit breaker (which gets its own
   dedicated test). *)
let start ?tcp ?store_dir ?(workers = 2) ?max_pending ?max_frame ?(jobs = 2)
    ?default_deadline_ms ?watchdog_ms ?(restart_backoff_ms = 10)
    ?breaker_threshold ?(breaker_window_s = 0.001) ?(chaos_plan = "") () =
  let path = fresh_socket () in
  let cfg =
    S.config ?tcp ?store_dir ~workers ?max_pending ?max_frame ~jobs
      ?default_deadline_ms ?watchdog_ms ~restart_backoff_ms ?breaker_threshold
      ~breaker_window_s ~chaos_plan ~socket_path:path ()
  in
  match S.create cfg with
  | Error e -> Alcotest.failf "server create: %s" e
  | Ok t ->
      {
        t;
        path;
        spool = path ^ ".spool";
        runner = Domain.spawn (fun () -> S.run t);
      }

let stop srv =
  S.initiate_drain srv.t;
  Domain.join srv.runner;
  rm_rf srv.spool

let with_server ?tcp ?store_dir ?workers ?max_pending ?max_frame ?jobs
    ?default_deadline_ms ?watchdog_ms ?restart_backoff_ms ?breaker_threshold
    ?breaker_window_s ?chaos_plan f =
  let srv =
    start ?tcp ?store_dir ?workers ?max_pending ?max_frame ?jobs
      ?default_deadline_ms ?watchdog_ms ?restart_backoff_ms ?breaker_threshold
      ?breaker_window_s ?chaos_plan ()
  in
  Fun.protect ~finally:(fun () -> stop srv) (fun () -> f srv)

let connect srv =
  match C.connect ~endpoint:(C.Unix_socket srv.path) () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let with_client srv f =
  let c = connect srv in
  Fun.protect ~finally:(fun () -> C.close c) (fun () -> f c)

let ok_exn label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label e

(* An endless register-only loop: runs for exactly [fuel] machine steps,
   the knob behind every "slow request" below. *)
let busy_tir = "entry = main\nfunc main():\n  e:\n    nop\n    goto e\n"

let error_code resp =
  match P.response_error resp with Some (code, _) -> code | None -> "none"

(* Poll the server's own stats until [pred] holds — timing-free
   synchronization on queue state (stats are answered by the connection
   loop even mid-drain). *)
let await_stats ?(tries = 400) cl ~what pred =
  let rec go tries =
    if tries = 0 then Alcotest.failf "timed out waiting for %s" what;
    let stats =
      Option.value ~default:J.Null
        (J.member "stats" (ok_exn "stats" (C.stats cl)))
    in
    let at path =
      List.fold_left (fun j k -> Option.bind j (J.member k)) (Some stats) path
    in
    let int_at path = Option.bind (at path) J.to_int in
    let bool_at path = Option.bind (at path) J.to_bool in
    if pred ~int_at ~bool_at then ()
    else begin
      Unix.sleepf 0.01;
      go (tries - 1)
    end
  in
  go tries

(* ------------------------------------------------------------------ *)
(* Byte-identity: served results vs the in-process driver              *)

let identity_cases () =
  let all = W.Racey.all () in
  let cats =
    List.sort_uniq compare (List.map (fun c -> c.W.Racey.category) all)
  in
  let picked =
    List.filter_map
      (fun cat ->
        List.find_opt
          (fun c -> c.W.Racey.category = cat && c.W.Racey.threads <= 4)
          all)
      cats
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take 3 picked

let identity_options =
  Arde.Options.make ~seeds:(List.init 16 (fun i -> i + 1)) ~fuel:30_000 ()

let local_result_string case mode =
  let r =
    Arde.detect
      ~ctx:(Arde.Driver.ctx ~options:identity_options ())
      ~mode (Arde.Input.Program case.W.Racey.program)
  in
  J.to_string (Arde.Driver.result_to_json r)

let served_result_string cl case mode =
  let resp =
    ok_exn "run"
      (C.run cl
         ~program:(Arde.Pretty.program_to_string case.W.Racey.program)
         ~mode ~options:identity_options ())
  in
  if not (P.response_ok resp) then
    Alcotest.failf "server refused %s: %s" case.W.Racey.name (error_code resp);
  match J.member "result" resp with
  | Some r -> J.to_string r
  | None -> Alcotest.fail "ok response without result"

let test_byte_identity () =
  let cases = identity_cases () in
  checkb "picked some cases" true (cases <> []);
  with_server ~jobs:1 (fun srv ->
      with_client srv (fun cl ->
          List.iter
            (fun case ->
              List.iter
                (fun mode ->
                  checks
                    (Printf.sprintf "%s under %s" case.W.Racey.name
                       (Arde.Config.mode_id mode))
                    (local_result_string case mode)
                    (served_result_string cl case mode))
                Arde.Config.all_table1_modes)
            cases))

(* The binary wire end to end: a client that negotiated binary framing
   must see byte-identical results, stats, pings and record-mode traces
   to a JSON client of the same server — the wire changes framing cost,
   never meaning — and structural garbage on the binary wire must come
   back as a structured bad_frame without poisoning the server. *)
let test_binary_wire_end_to_end () =
  let case = List.hd (identity_cases ()) in
  let mode = Arde.Config.Helgrind_spin 7 in
  with_server (fun srv ->
      let cb =
        ok_exn "binary connect"
          (C.connect ~wire:P.Binary ~endpoint:(C.Unix_socket srv.path) ())
      in
      Fun.protect
        ~finally:(fun () -> C.close cb)
        (fun () ->
          checkb "client is on the binary wire" true (C.wire cb = P.Binary);
          check Alcotest.int "hello-ack mirrors the server's frame cap"
            P.default_max_frame (C.max_frame cb);
          checkb "ping over binary" true
            (P.response_ok (ok_exn "ping" (C.ping cb)));
          (match J.member "stats" (ok_exn "stats" (C.stats cb)) with
          | Some (J.Obj _) -> ()
          | _ -> Alcotest.fail "stats over binary lacks a stats object");
          with_client srv (fun cj ->
              checks "served results identical across wires"
                (served_result_string cj case mode)
                (served_result_string cb case mode);
              (* Record-mode results and traces must be identical on
                 both wires (the cache-delta field is per-worker state,
                 so it is excluded). *)
              let program =
                Arde.Pretty.program_to_string case.W.Racey.program
              in
              let record cl =
                let resp =
                  ok_exn "record run"
                    (C.run cl ~record:true ~program ~mode
                       ~options:identity_options ())
                in
                if not (P.response_ok resp) then
                  Alcotest.failf "record run refused: %s" (error_code resp);
                let at k =
                  J.to_string
                    (Option.value ~default:J.Null (J.member k resp))
                in
                (at "result", at "trace")
              in
              let jr, jt = record cj and br, bt = record cb in
              checks "record-mode results identical across wires" jr br;
              checks "record-mode traces identical across wires" jt bt);
          (* A trace recorded over binary replays over binary. *)
          let resp =
            ok_exn "record"
              (C.run cb ~record:true
                 ~program:(Arde.Pretty.program_to_string case.W.Racey.program)
                 ~mode ~options:identity_options ())
          in
          let trace =
            match Option.bind (J.member "trace" resp) J.to_str with
            | Some b64 -> ok_exn "trace base64" (Arde.Base64.decode b64)
            | None -> Alcotest.fail "record response without trace"
          in
          let replayed = ok_exn "replay" (C.replay cb ~trace ()) in
          checks "binary replay reproduces the recorded result"
            (J.to_string
               (Option.value ~default:J.Null (J.member "result" resp)))
            (J.to_string
               (Option.value ~default:J.Null (J.member "result" replayed))));
      (* Structural garbage framed as binary: structured bad_frame, and
         the connection keeps serving. *)
      with_client srv (fun cl ->
          ignore (ok_exn "send" (C.send_frame cl "\xB7\x01\x03trunc"));
          checks "binary garbage" "bad_frame"
            (error_code (ok_exn "recv" (C.recv cl)));
          ignore (ok_exn "send" (C.send_frame cl "\xB7\x01\x63\x011"));
          checks "unknown binary kind" "bad_request"
            (error_code (ok_exn "recv" (C.recv cl)));
          (* ... and the same connection still serves JSON. *)
          let resp =
            ok_exn "request"
              (C.run cl ~program:busy_tir ~mode:Arde.Config.Helgrind_lib
                 ~options:(Arde.Options.make ~seeds:[ 1 ] ~fuel:100 ())
                 ())
          in
          checkb "healthy after binary abuse" true (P.response_ok resp)))

(* The replay farm: a record-mode run returns the binary trace in its
   response, and submitting that trace back — with no program, mode or
   options of its own — reproduces the result byte-for-byte, as does a
   local replay of the very same bytes. *)
let test_record_then_server_replay () =
  let case = List.hd (identity_cases ()) in
  let mode = Arde.Config.Helgrind_spin 7 in
  with_server ~jobs:1 (fun srv ->
      with_client srv (fun cl ->
          let resp =
            ok_exn "record run"
              (C.run cl ~record:true
                 ~program:(Arde.Pretty.program_to_string case.W.Racey.program)
                 ~mode ~options:identity_options ())
          in
          if not (P.response_ok resp) then
            Alcotest.failf "record run refused: %s" (error_code resp);
          let recorded_result =
            match J.member "result" resp with
            | Some r -> J.to_string r
            | None -> Alcotest.fail "record response without result"
          in
          checks "record-mode result matches the local driver"
            (local_result_string case mode)
            recorded_result;
          let trace =
            match Option.bind (J.member "trace" resp) J.to_str with
            | None -> Alcotest.fail "record response without trace"
            | Some b64 -> ok_exn "trace base64" (Arde.Base64.decode b64)
          in
          let replay_resp = ok_exn "replay" (C.replay cl ~trace ()) in
          if not (P.response_ok replay_resp) then
            Alcotest.failf "replay refused: %s" (error_code replay_resp);
          (match J.member "result" replay_resp with
          | None -> Alcotest.fail "replay response without result"
          | Some r ->
              checks "served replay reproduces the recorded result"
                recorded_result (J.to_string r));
          (* the same bytes replayed in-process agree too *)
          let recorded =
            ok_exn "local load" (Arde.Recorded.of_string trace)
          in
          let local_replay =
            Arde.detect (Arde.Input.Recorded_trace recorded)
          in
          checks "local replay reproduces the recorded result" recorded_result
            (J.to_string (Arde.Driver.result_to_json local_replay));
          (* hostile trace bytes are a structured refusal, not a crash *)
          let bad = ok_exn "bad replay" (C.replay cl ~trace:"garbage" ()) in
          checkb "garbage trace refused" true (not (P.response_ok bad));
          checks "garbage trace is bad_request" "bad_request" (error_code bad);
          match C.ping cl with
          | Ok r when P.response_ok r -> ()
          | _ -> Alcotest.fail "connection did not survive the bad trace"))

(* Eight concurrent clients, mixed valid and invalid traffic: every
   valid request's result must still be byte-identical to the local
   driver, and every invalid one must come back as a structured error
   with the connection (and server) surviving. *)
let test_concurrent_clients () =
  let cases = identity_cases () in
  let modes = Arde.Config.all_table1_modes in
  let case i = List.nth cases (i mod List.length cases) in
  let mode i = List.nth modes (i mod List.length modes) in
  let expected =
    List.concat_map
      (fun c ->
        List.map
          (fun m -> ((c.W.Racey.name, Arde.Config.mode_id m),
                     local_result_string c m))
          modes)
      cases
  in
  let lookup c m =
    List.assoc (c.W.Racey.name, Arde.Config.mode_id m) expected
  in
  with_server (fun srv ->
      let client_body i () =
        let failures = ref [] in
        let fail fmt =
          Printf.ksprintf (fun s -> failures := s :: !failures) fmt
        in
        (match C.connect ~endpoint:(C.Unix_socket srv.path) () with
        | Error e -> fail "client %d: connect: %s" i e
        | Ok cl ->
            Fun.protect
              ~finally:(fun () -> C.close cl)
              (fun () ->
                if i mod 4 = 3 then begin
                  (* Invalid traffic: junk frame, unknown type, bad mode —
                     each answered, none fatal to the connection. *)
                  (match C.send_frame cl "{broken" with
                  | Ok () -> ()
                  | Error e -> fail "client %d: send: %s" i e);
                  (match C.recv cl with
                  | Ok resp when error_code resp = "bad_frame" -> ()
                  | Ok resp ->
                      fail "client %d: junk got %s" i (J.to_string resp)
                  | Error e -> fail "client %d: recv: %s" i e);
                  (match
                     C.request cl (J.Obj [ ("type", J.String "warp") ])
                   with
                  | Ok resp when error_code resp = "bad_request" -> ()
                  | Ok resp ->
                      fail "client %d: warp got %s" i (J.to_string resp)
                  | Error e -> fail "client %d: recv: %s" i e);
                  match C.ping cl with
                  | Ok resp when P.response_ok resp -> ()
                  | Ok _ -> fail "client %d: ping refused" i
                  | Error e -> fail "client %d: ping: %s" i e
                end
                else
                  let c = case i and m = mode i in
                  match
                    C.run cl
                      ~program:
                        (Arde.Pretty.program_to_string c.W.Racey.program)
                      ~mode:m ~options:identity_options ()
                  with
                  | Error e -> fail "client %d: run: %s" i e
                  | Ok resp when not (P.response_ok resp) ->
                      fail "client %d: refused: %s" i (error_code resp)
                  | Ok resp -> (
                      match J.member "result" resp with
                      | None -> fail "client %d: no result" i
                      | Some r ->
                          if J.to_string r <> lookup c m then
                            fail "client %d: result diverged on %s/%s" i
                              c.W.Racey.name (Arde.Config.mode_id m))));
        List.rev !failures
      in
      let domains =
        List.init 8 (fun i -> Domain.spawn (client_body i))
      in
      let failures = List.concat_map Domain.join domains in
      check (Alcotest.list Alcotest.string) "no client failures" [] failures)

(* ------------------------------------------------------------------ *)
(* Malformed input against a live server                               *)

let test_malformed_frames () =
  with_server ~max_frame:(256 * 1024) (fun srv ->
      (* Oversized length header: structured error, then disconnect. *)
      with_client srv (fun cl ->
          let hdr = Bytes.create 4 in
          Bytes.set_int32_be hdr 0 (Int32.of_int ((256 * 1024) + 1));
          (match C.send_raw cl (Bytes.to_string hdr) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "send header: %s" e);
          (match C.recv cl with
          | Ok resp -> checks "oversized" "bad_frame" (error_code resp)
          | Error e -> Alcotest.failf "recv: %s" e);
          match C.recv cl with
          | Error _ -> () (* server dropped the poisoned stream *)
          | Ok resp ->
              Alcotest.failf "expected disconnect, got %s" (J.to_string resp));
      (* Truncated header, then mid-frame disconnect: server survives. *)
      with_client srv (fun cl ->
          ignore (C.send_raw cl "\x00\x00"));
      with_client srv (fun cl ->
          let b = Bytes.create 4 in
          Bytes.set_int32_be b 0 100l;
          ignore (C.send_raw cl (Bytes.to_string b ^ "only ten b")));
      (* Invalid JSON / unknown type / bad program are per-request
         errors: the connection stays usable. *)
      with_client srv (fun cl ->
          ignore (ok_exn "send" (C.send_frame cl "][ not json"));
          checks "invalid json" "bad_frame"
            (error_code (ok_exn "recv" (C.recv cl)));
          checks "depth bomb" "bad_frame"
            (error_code
               (ok_exn "recv"
                  (let bomb = String.make 80 '[' in
                   ignore (ok_exn "send" (C.send_frame cl bomb));
                   C.recv cl)));
          let resp =
            ok_exn "request"
              (C.request cl
                 (J.Obj [ ("type", J.String "selfdestruct"); ("id", J.Int 9) ]))
          in
          checks "unknown type" "bad_request" (error_code resp);
          checks "id echoed" "9"
            (J.to_string (Option.value ~default:J.Null (J.member "id" resp)));
          let resp =
            ok_exn "request"
              (C.run cl ~program:"this is not tir"
                 ~mode:Arde.Config.Helgrind_lib
                 ~options:(Arde.Options.make ()) ())
          in
          checks "unparsable program" "bad_request" (error_code resp);
          (* ... and the same connection still serves a real run. *)
          let resp =
            ok_exn "request"
              (C.run cl ~program:busy_tir ~mode:Arde.Config.Helgrind_lib
                 ~options:(Arde.Options.make ~seeds:[ 1 ] ~fuel:100 ())
                 ())
          in
          checkb "healthy after abuse" true (P.response_ok resp)))

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let test_admission_control () =
  with_server ~jobs:1 ~max_pending:1 (fun srv ->
      let slow = Arde.Options.make ~seeds:[ 1 ] ~fuel:20_000_000 () in
      let quick = Arde.Options.make ~seeds:[ 1 ] ~fuel:100 () in
      with_client srv (fun blocker ->
          (* Occupy the worker without waiting for the response. *)
          ignore
            (ok_exn "send slow"
               (C.send_frame blocker
                  (J.to_string
                     (P.run_request_json ~id:(J.Int 0) ~program:busy_tir
                        ~mode:Arde.Config.Helgrind_lib ~options:slow ()))));
          with_client srv (fun cl ->
              (* Wait until the worker has actually dequeued the slow
                 request — otherwise it still occupies the queue slot
                 and the whole burst would bounce. *)
              await_stats cl ~what:"blocker in flight"
                (fun ~int_at ~bool_at:_ ->
                  int_at [ "queue"; "in_flight" ] = Some 1
                  && int_at [ "queue"; "depth" ] = Some 0);
              (* Burst three more: the queue holds one, so at least one
                 must bounce with a structured overloaded error. *)
              List.iter
                (fun i ->
                  ignore
                    (ok_exn "send burst"
                       (C.send_frame cl
                          (J.to_string
                             (P.run_request_json ~id:(J.Int i)
                                ~program:busy_tir
                                ~mode:Arde.Config.Helgrind_lib ~options:quick
                                ())))))
                [ 1; 2; 3 ];
              let responses = List.map (fun _ -> ok_exn "recv" (C.recv cl)) [ 1; 2; 3 ] in
              let overloaded, completed =
                List.partition
                  (fun r -> error_code r = "overloaded")
                  responses
              in
              checkb "at least one bounced" true (overloaded <> []);
              checkb "at least one served" true (completed <> []);
              List.iter
                (fun r -> checkb "non-bounced are ok" true (P.response_ok r))
                completed);
          (* The slow blocker still completes with its findings. *)
          let resp = ok_exn "recv blocker" (C.recv blocker) in
          checkb "blocker completed" true (P.response_ok resp)))

(* ------------------------------------------------------------------ *)
(* Per-request deadlines                                               *)

let test_deadline_cancels_remaining_seeds () =
  with_server ~jobs:1 (fun srv ->
      with_client srv (fun cl ->
          let options =
            Arde.Options.make ~seeds:[ 1; 2; 3 ] ~fuel:20_000_000 ()
          in
          let resp =
            ok_exn "run"
              (C.run cl ~deadline_ms:100 ~program:busy_tir
                 ~mode:Arde.Config.Helgrind_lib ~options ())
          in
          checkb "deadline is not an error" true (P.response_ok resp);
          let health =
            match
              Option.bind
                (Option.bind (J.member "result" resp) (J.member "health"))
                (fun h -> Result.to_option (Arde.Driver.health_of_json h))
            with
            | Some h -> h
            | None -> Alcotest.fail "no parsable health in response"
          in
          (* Seed 1 starts before the deadline and burns well past it;
             seeds 2 and 3 must then be cancelled, not run. *)
          check Alcotest.int "cancelled seeds" 2 health.Arde.Driver.h_cancelled;
          check Alcotest.int "seed 1 ran to fuel exhaustion" 1
            health.Arde.Driver.h_fuel_exhausted;
          checkb "degraded, not failed" true
            (health.Arde.Driver.h_verdict = Arde.Driver.Degraded)))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats () =
  with_server ~max_pending:7 (fun srv ->
      with_client srv (fun cl ->
          ignore (ok_exn "ping" (C.ping cl));
          let quick = Arde.Options.make ~seeds:[ 1 ] ~fuel:100 () in
          let run () =
            let r =
              ok_exn "run"
                (C.run cl ~program:busy_tir ~mode:Arde.Config.Helgrind_lib
                   ~options:quick ())
            in
            checkb "run ok" true (P.response_ok r)
          in
          run ();
          run ();
          let resp = ok_exn "stats" (C.stats cl) in
          checkb "stats ok" true (P.response_ok resp);
          let stats =
            Option.value ~default:J.Null (J.member "stats" resp)
          in
          let int_at path =
            match
              Option.bind
                (List.fold_left
                   (fun j k -> Option.bind j (J.member k))
                   (Some stats) path)
                J.to_int
            with
            | Some n -> n
            | None ->
                Alcotest.failf "stats missing %s" (String.concat "." path)
          in
          check Alcotest.int "received" 4 (int_at [ "requests"; "received" ]);
          check Alcotest.int "ok runs" 2 (int_at [ "requests"; "ok" ]);
          check Alcotest.int "pings" 1 (int_at [ "requests"; "ping" ]);
          check Alcotest.int "no crashes" 0
            (int_at [ "requests"; "worker_crashed" ]);
          check Alcotest.int "no retries" 0 (int_at [ "requests"; "retries" ]);
          check Alcotest.int "no spool errors" 0
            (int_at [ "requests"; "spool_errors" ]);
          check Alcotest.int "max_pending echoes config" 7
            (int_at [ "queue"; "max_pending" ]);
          check Alcotest.int "no refusals" 0 (int_at [ "queue"; "refused" ]);
          check Alcotest.int "supervision: quiet fleet" 0
            (int_at [ "supervision"; "crashes" ]
            + int_at [ "supervision"; "restarts" ]
            + int_at [ "supervision"; "watchdog_kills" ]
            + int_at [ "supervision"; "bundles_sealed" ]
            + int_at [ "supervision"; "breaker_open" ]);
          (match
             Option.bind (J.member "supervision" stats) (J.member "workers")
           with
          | Some (J.List ws) ->
              check Alcotest.int "per-worker health rows" 2 (List.length ws);
              List.iter
                (fun w ->
                  match Option.bind (J.member "state" w) J.to_str with
                  | Some ("live" | "starting") -> ()
                  | s ->
                      Alcotest.failf "unexpected worker state %s"
                        (Option.value ~default:"?" s))
                ws
          | _ -> Alcotest.fail "stats missing supervision.workers");
          check Alcotest.int "no bundles" 0 (int_at [ "spool"; "bundles" ]);
          checkb "uptime present" true
            (Option.bind (J.member "uptime_s" stats) J.to_float <> None)))

(* ------------------------------------------------------------------ *)
(* SIGTERM drain                                                       *)

let test_sigterm_drain () =
  let old_term = Sys.signal Sys.sigterm Sys.Signal_default in
  let old_int = Sys.signal Sys.sigint Sys.Signal_default in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int)
    (fun () ->
      let srv = start ~jobs:1 () in
      S.handle_signals srv.t;
      let inflight = connect srv in
      let idle_pre_drain = connect srv in
      (* A slow request is in flight when the signal lands. *)
      ignore
        (ok_exn "send slow"
           (C.send_frame inflight
              (J.to_string
                 (P.run_request_json ~id:(J.Int 1) ~program:busy_tir
                    ~mode:Arde.Config.Helgrind_lib
                    ~options:
                      (Arde.Options.make ~seeds:[ 1 ] ~fuel:100_000_000 ())
                    ()))));
      await_stats idle_pre_drain ~what:"slow run in flight"
        (fun ~int_at ~bool_at:_ -> int_at [ "queue"; "in_flight" ] = Some 1);
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      await_stats idle_pre_drain ~what:"drain flag"
        (fun ~int_at:_ ~bool_at -> bool_at [ "queue"; "draining" ] = Some true);
      (* New work on a pre-drain connection: structured refusal. *)
      let resp =
        ok_exn "request during drain"
          (C.run idle_pre_drain ~program:busy_tir
             ~mode:Arde.Config.Helgrind_lib
             ~options:(Arde.Options.make ~seeds:[ 1 ] ~fuel:100 ())
             ())
      in
      checks "pre-drain connection refused" "draining" (error_code resp);
      (* A brand-new connection: refused at accept, also structured. *)
      (match C.connect ~endpoint:(C.Unix_socket srv.path) () with
      | Error _ -> () (* already torn down: acceptable, drain won the race *)
      | Ok fresh ->
          Fun.protect
            ~finally:(fun () -> C.close fresh)
            (fun () ->
              match C.recv fresh with
              | Ok resp ->
                  checks "new connection refused" "draining"
                    (error_code resp)
              | Error _ -> () (* listener closed first *)));
      (* The in-flight request still completes with a real result. *)
      let resp = ok_exn "in-flight response" (C.recv inflight) in
      checkb "in-flight request finished" true (P.response_ok resp);
      checkb "carried a result" true (J.member "result" resp <> None);
      C.close inflight;
      C.close idle_pre_drain;
      (* And the server loop returns (exit 0 in the CLI). *)
      Domain.join srv.runner;
      checkb "socket removed" false (Sys.file_exists srv.path))

(* ------------------------------------------------------------------ *)
(* Shared plumbing units: chaos plans, outbufs, atomic writes, retry   *)

let test_chaos_plan_parse () =
  let module CS = Arde.Chaos.Serve in
  (match CS.parse "kill:3,wedge:5" with
  | Ok plan ->
      checks "roundtrip" "kill:3,wedge:5" (CS.to_string plan);
      checkb "fires on multiples" true (CS.fires plan ~count:6 = [ CS.Kill_self ]);
      checkb "fires both" true
        (CS.fires plan ~count:15 = [ CS.Kill_self; CS.Wedge ]);
      checkb "quiet otherwise" true (CS.fires plan ~count:7 = [])
  | Error e -> Alcotest.failf "parse: %s" e);
  checkb "empty plan" true (CS.parse "" = Ok CS.empty);
  List.iter
    (fun s ->
      match CS.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "kill:0"; "bogus:2"; "kill"; "kill:-3"; "kill:x" ]

let test_outbuf_flush () =
  let module U = Arde_server.Util in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  let ob = U.outbuf () in
  U.outbuf_push ob "hello ";
  U.outbuf_push ob "world";
  checkb "buffered" false (U.outbuf_is_empty ob);
  (match U.outbuf_flush ob a with
  | U.Flushed -> ()
  | _ -> Alcotest.fail "expected Flushed");
  let buf = Bytes.create 64 in
  let n = Unix.read b buf 0 64 in
  checks "bytes arrive in order" "hello world" (Bytes.sub_string buf 0 n);
  (* A closed peer surfaces as Peer_gone, not an exception. *)
  Unix.close b;
  U.outbuf_push ob "late";
  (match U.outbuf_flush ob a with
  | U.Peer_gone -> ()
  | _ -> Alcotest.fail "expected Peer_gone");
  Unix.close a

let test_write_file_atomic () =
  let module U = Arde_server.Util in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "arde-atomic-%d.txt" (Unix.getpid ()))
  in
  (match U.write_file_atomic path "first" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %s" e);
  checkb "readable" true (U.read_file path = Ok "first");
  (match U.write_file_atomic path "second" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rewrite: %s" e);
  checkb "replaced atomically" true (U.read_file path = Ok "second");
  Sys.remove path;
  match U.write_file_atomic "/nonexistent-dir/x/y" "z" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrote into a missing directory"

(* The retry schedule is bounded, exponential, jittered and
   deterministic for a fixed seed; a dead socket burns the whole budget
   and surfaces the transport error. *)
let test_retry_schedule () =
  let dead = fresh_socket () in
  let delays = ref [] in
  let schedule seed =
    delays := [];
    let policy =
      C.retry_policy ~attempts:3 ~backoff_ms:50 ~max_backoff_ms:150
        ~jitter_seed:seed
        ~sleep:(fun d -> delays := d :: !delays)
        ()
    in
    let outcome, retries =
      C.submit_with_retry ~endpoint:(C.Unix_socket dead) ~policy ~program:busy_tir
        ~mode:Arde.Config.Helgrind_lib
        ~options:(Arde.Options.make ~seeds:[ 1 ] ~fuel:10 ())
        ()
    in
    (match outcome with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "a dead socket produced a response");
    check Alcotest.int "used the whole budget" 3 retries;
    List.rev !delays
  in
  let d1 = schedule 42 in
  check Alcotest.int "one delay per retry" 3 (List.length d1);
  List.iteri
    (fun i d ->
      let nominal = float_of_int (min 150 (50 * (1 lsl i))) /. 1000. in
      checkb
        (Printf.sprintf "delay %d within jitter band (%.3f vs %.3f)" i d
           nominal)
        true
        (d >= (0.5 *. nominal) -. 1e-9 && d < 1.5 *. nominal))
    d1;
  checkb "deterministic for equal seeds" true (schedule 42 = d1);
  checkb "seed changes the schedule" true (schedule 43 <> d1)

(* ------------------------------------------------------------------ *)
(* Crash-only serving: fault injection end to end                      *)

let quick_options = Arde.Options.make ~seeds:[ 1; 2 ] ~fuel:2_000 ()

let submit_quick ?(attempts = 0) srv case =
  let policy =
    C.retry_policy ~attempts ~backoff_ms:5 ~max_backoff_ms:50 ~jitter_seed:7
      ()
  in
  C.submit_with_retry ~endpoint:(C.Unix_socket srv.path) ~policy
    ~program:(Arde.Pretty.program_to_string case.W.Racey.program)
    ~mode:Arde.Config.Helgrind_lib ~options:quick_options ()

(* A worker SIGKILLed mid-request yields a structured [worker_crashed]
   response on the same connection — never a dropped connection — plus
   a sealed, replayable crash bundle. *)
let test_worker_crash_structured () =
  with_server ~workers:1 ~chaos_plan:"kill:1" (fun srv ->
      let case = List.hd (identity_cases ()) in
      let program = Arde.Pretty.program_to_string case.W.Racey.program in
      with_client srv (fun cl ->
          let resp =
            ok_exn "run" (C.run cl ~program ~mode:Arde.Config.Helgrind_lib
                            ~options:quick_options ())
          in
          checks "structured crash error" "worker_crashed" (error_code resp);
          (* The same connection is still usable afterwards. *)
          let pong = ok_exn "ping after crash" (C.ping cl) in
          checkb "connection survived the crash" true (P.response_ok pong));
      (* The journaled request was sealed into a bundle that replays
         through the production parser to the same result the direct
         driver produces. *)
      let module Spool = Arde_server.Spool in
      let spool = ok_exn "spool" (Spool.create ~root:srv.spool) in
      match Spool.bundles spool with
      | [] -> Alcotest.fail "no crash bundle sealed"
      | bundle :: _ -> (
          let meta = ok_exn "load bundle" (Spool.load bundle) in
          let raw_req = ok_exn "bundle request" (Spool.bundle_request meta) in
          match P.parse_request raw_req with
          | Ok (P.Run { P.rq_payload = P.Rq_program rp; _ }) ->
              checks "journaled program is verbatim" program rp.P.rp_program;
              let replayed =
                Arde.detect
                  ~ctx:(Arde.Driver.ctx ~options:rp.P.rp_options ())
                  ~mode:rp.P.rp_mode (Arde.Input.Text rp.P.rp_program)
              in
              let local =
                Arde.detect
                  ~ctx:(Arde.Driver.ctx ~options:quick_options ())
                  ~mode:Arde.Config.Helgrind_lib
                  (Arde.Input.Program case.W.Racey.program)
              in
              checks "replay is byte-identical to the direct driver"
                (J.to_string (Arde.Driver.result_to_json local))
                (J.to_string (Arde.Driver.result_to_json replayed))
          | Ok _ -> Alcotest.fail "bundle holds a non-run request"
          | Error (_, _, e) -> Alcotest.failf "bundle request unparsable: %s" e))

(* 200 requests against a fleet whose workers are killed every 8th
   execution: with retries enabled every client completes (none hang),
   every completed report is byte-identical to the direct driver, and
   the restart count stays proportional to the injected crashes. *)
let test_crash_storm () =
  let cases = identity_cases () in
  let expected =
    List.map
      (fun c ->
        ( c.W.Racey.name,
          J.to_string
            (Arde.Driver.result_to_json
               (Arde.detect
                  ~ctx:(Arde.Driver.ctx ~options:quick_options ())
                  ~mode:Arde.Config.Helgrind_lib
                  (Arde.Input.Program c.W.Racey.program))) ))
      cases
  in
  with_server ~workers:2 ~chaos_plan:"kill:8" (fun srv ->
      let total = 200 and clients = 4 in
      let per_client = total / clients in
      let client_body ci () =
        let failures = ref [] in
        let retries = ref 0 in
        for r = 1 to per_client do
          let case =
            List.nth cases ((ci + r) mod List.length cases)
          in
          let outcome, attempts = submit_quick ~attempts:10 srv case in
          retries := !retries + attempts;
          match outcome with
          | Error e ->
              failures :=
                Printf.sprintf "client %d req %d: %s" ci r e :: !failures
          | Ok resp when not (P.response_ok resp) ->
              failures :=
                Printf.sprintf "client %d req %d: %s" ci r (error_code resp)
                :: !failures
          | Ok resp -> (
              match J.member "result" resp with
              | None ->
                  failures :=
                    Printf.sprintf "client %d req %d: no result" ci r
                    :: !failures
              | Some result ->
                  if
                    J.to_string result <> List.assoc case.W.Racey.name expected
                  then
                    failures :=
                      Printf.sprintf "client %d req %d: result diverged on %s"
                        ci r case.W.Racey.name
                      :: !failures)
        done;
        (List.rev !failures, !retries)
      in
      let domains = List.init clients (fun ci -> Domain.spawn (client_body ci)) in
      let results = List.map Domain.join domains in
      let failures = List.concat_map fst results in
      let retries = List.fold_left (fun acc (_, r) -> acc + r) 0 results in
      check (Alcotest.list Alcotest.string) "every request completed" []
        failures;
      checkb "the chaos plan actually fired" true (retries > 0);
      with_client srv (fun cl ->
          let stats =
            Option.value ~default:J.Null
              (J.member "stats" (ok_exn "stats" (C.stats cl)))
          in
          let int_at path =
            match
              Option.bind
                (List.fold_left
                   (fun j k -> Option.bind j (J.member k))
                   (Some stats) path)
                J.to_int
            with
            | Some n -> n
            | None -> Alcotest.failf "stats missing %s" (String.concat "." path)
          in
          let crashes = int_at [ "supervision"; "crashes" ] in
          let restarts = int_at [ "supervision"; "restarts" ] in
          checkb "crashes happened" true (crashes > 0);
          (* Every injected kill fires once per 8 executions; executions
             are the 200 requests plus their retries.  Restarts may not
             exceed the injected crash budget (no restart storms of our
             own making). *)
          let execs = total + retries in
          checkb
            (Printf.sprintf "restarts bounded (%d restarts, %d crashes, %d \
                             executions)"
               restarts crashes execs)
            true
            (restarts <= (execs / 8) + 2);
          check Alcotest.int "server counted the retried requests"
            retries
            (int_at [ "requests"; "retries" ]);
          checkb "bundles sealed for the crashes" true
            (int_at [ "supervision"; "bundles_sealed" ] > 0)))

(* A wedged worker (ignores all cooperative cancellation) trips the
   watchdog, is SIGKILLed, and the request is answered with a
   structured error naming the watchdog. *)
let test_watchdog_kills_wedged_worker () =
  with_server ~workers:1 ~watchdog_ms:400 ~chaos_plan:"wedge:2" (fun srv ->
      let case = List.hd (identity_cases ()) in
      with_client srv (fun cl ->
          let program = Arde.Pretty.program_to_string case.W.Racey.program in
          let run () =
            ok_exn "run"
              (C.run cl ~program ~mode:Arde.Config.Helgrind_lib
                 ~options:quick_options ())
          in
          let first = run () in
          checkb "first request fine" true (P.response_ok first);
          let second = run () in
          checks "wedged request -> structured error" "worker_crashed"
            (error_code second);
          (match P.response_error second with
          | Some (_, msg) ->
              checkb
                (Printf.sprintf "reason names the watchdog: %s" msg)
                true
                (Astring.String.is_infix ~affix:"watchdog" msg)
          | None -> Alcotest.fail "no error payload");
          await_stats cl ~what:"watchdog kill counted"
            (fun ~int_at ~bool_at:_ ->
              int_at [ "supervision"; "watchdog_kills" ] = Some 1)));
  ()

(* A worker that dies mid-reply (torn frame) must be treated as a
   crash, not parsed as a response. *)
let test_torn_reply_frame () =
  with_server ~workers:1 ~chaos_plan:"torn:2" (fun srv ->
      let case = List.hd (identity_cases ()) in
      with_client srv (fun cl ->
          let program = Arde.Pretty.program_to_string case.W.Racey.program in
          let run () =
            ok_exn "run"
              (C.run cl ~program ~mode:Arde.Config.Helgrind_lib
                 ~options:quick_options ())
          in
          checkb "first request fine" true (P.response_ok (run ()));
          let second = run () in
          checks "torn reply -> structured error" "worker_crashed"
            (error_code second);
          match P.response_error second with
          | Some (_, msg) ->
              checkb
                (Printf.sprintf "reason names the torn stream: %s" msg)
                true
                (Astring.String.is_infix ~affix:"torn" msg)
          | None -> Alcotest.fail "no error payload"))

(* Spool writes are best-effort: a full disk (injected ENOSPC) must not
   fail the request, only mark it in the stats. *)
let test_spool_enospc_not_fatal () =
  with_server ~workers:1 ~chaos_plan:"spool:2" (fun srv ->
      let case = List.hd (identity_cases ()) in
      with_client srv (fun cl ->
          let program = Arde.Pretty.program_to_string case.W.Racey.program in
          let run () =
            ok_exn "run"
              (C.run cl ~program ~mode:Arde.Config.Helgrind_lib
                 ~options:quick_options ())
          in
          checkb "first request fine" true (P.response_ok (run ()));
          checkb "unjournaled request still served" true
            (P.response_ok (run ()));
          await_stats cl ~what:"spool error counted"
            (fun ~int_at ~bool_at:_ ->
              int_at [ "requests"; "spool_errors" ] = Some 1)))

(* Crash-looping every single request trips the restart-storm circuit
   breaker: the slot is marked broken and further requests are refused
   immediately with a structured error instead of queueing behind a
   doomed restart loop. *)
let test_restart_storm_circuit_breaker () =
  with_server ~workers:1 ~chaos_plan:"kill:1" ~breaker_threshold:3
    ~breaker_window_s:30. (fun srv ->
      let case = List.hd (identity_cases ()) in
      let program = Arde.Pretty.program_to_string case.W.Racey.program in
      let crash_once () =
        with_client srv (fun cl ->
            let resp =
              ok_exn "run"
                (C.run cl ~program ~mode:Arde.Config.Helgrind_lib
                   ~options:quick_options ())
            in
            checks "every request crashes" "worker_crashed" (error_code resp))
      in
      crash_once ();
      crash_once ();
      crash_once ();
      with_client srv (fun cl ->
          await_stats cl ~what:"circuit open"
            (fun ~int_at ~bool_at:_ ->
              int_at [ "supervision"; "breaker_open" ] = Some 1);
          let resp =
            ok_exn "run against a broken fleet"
              (C.run cl ~program ~mode:Arde.Config.Helgrind_lib
                 ~options:quick_options ())
          in
          checks "refused while broken" "worker_crashed" (error_code resp);
          match P.response_error resp with
          | Some (_, msg) ->
              checkb
                (Printf.sprintf "refusal names the circuit: %s" msg)
                true
                (Astring.String.is_infix ~affix:"circuit" msg)
          | None -> Alcotest.fail "no error payload"))

(* A request whose deadline elapses while still queued is cancelled
   without touching a worker, releases its admission slot, and is
   answered with [deadline_expired]. *)
let test_deadline_expires_in_queue () =
  with_server ~workers:1 (fun srv ->
      with_client srv (fun blocker ->
          ignore
            (ok_exn "send slow"
               (C.send_frame blocker
                  (J.to_string
                     (P.run_request_json ~id:(J.Int 0) ~program:busy_tir
                        ~mode:Arde.Config.Helgrind_lib
                        ~options:
                          (Arde.Options.make ~seeds:[ 1 ] ~fuel:20_000_000 ())
                        ()))));
          with_client srv (fun cl ->
              await_stats cl ~what:"blocker in flight"
                (fun ~int_at ~bool_at:_ ->
                  int_at [ "queue"; "in_flight" ] = Some 1);
              let resp =
                ok_exn "queued run with a tight deadline"
                  (C.run cl ~deadline_ms:100 ~program:busy_tir
                     ~mode:Arde.Config.Helgrind_lib ~options:quick_options ())
              in
              checks "expired in the queue" "deadline_expired"
                (error_code resp);
              await_stats cl ~what:"cancellation released the slot"
                (fun ~int_at ~bool_at:_ ->
                  int_at [ "queue"; "cancelled" ] = Some 1
                  && int_at [ "queue"; "depth" ] = Some 0));
          let resp = ok_exn "blocker completes" (C.recv blocker) in
          checkb "blocker unaffected" true (P.response_ok resp)))

(* SIGTERM landing while a cold program (never parsed by any worker) is
   queued: the drain must still execute it to completion. *)
let test_drain_races_cold_fill () =
  let srv = start ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> rm_rf srv.spool)
    (fun () ->
      let case = List.hd (List.rev (identity_cases ())) in
      let cl = connect srv in
      ignore
        (ok_exn "send cold request"
           (C.send_frame cl
              (J.to_string
                 (P.run_request_json ~id:(J.Int 1)
                    ~program:
                      (Arde.Pretty.program_to_string case.W.Racey.program)
                    ~mode:Arde.Config.Helgrind_lib ~options:quick_options ()))));
      (* Drain as soon as the request is admitted — typically before the
         cold worker has even said hello, so the request races the cold
         start as well as the cache fill.  (Drain before admission would
         be a plain structured refusal, which is not this test.) *)
      with_client srv (fun probe ->
          await_stats probe ~what:"cold request admitted"
            (fun ~int_at ~bool_at:_ ->
              match
                (int_at [ "queue"; "depth" ], int_at [ "queue"; "in_flight" ])
              with
              | Some d, Some f -> d + f >= 1
              | _ -> false));
      S.initiate_drain srv.t;
      let resp = ok_exn "cold response under drain" (C.recv cl) in
      checkb "cold request completed during drain" true (P.response_ok resp);
      checks "byte-identical to the direct driver"
        (J.to_string
           (Arde.Driver.result_to_json
              (Arde.detect
                 ~ctx:(Arde.Driver.ctx ~options:quick_options ())
                 ~mode:Arde.Config.Helgrind_lib
                 (Arde.Input.Program case.W.Racey.program))))
        (J.to_string
           (Option.value ~default:J.Null (J.member "result" resp)));
      C.close cl;
      Domain.join srv.runner;
      checkb "socket removed" false (Sys.file_exists srv.path))

(* A client that vanishes mid-request must cost nothing but the wasted
   work: no crash, no wedged slot, and the next client is served. *)
let test_client_disconnect_mid_response () =
  with_server ~workers:1 (fun srv ->
      let case = List.hd (identity_cases ()) in
      (* In flight: the worker is executing when the client dies. *)
      let doomed = connect srv in
      ignore
        (ok_exn "send"
           (C.send_frame doomed
              (J.to_string
                 (P.run_request_json ~id:(J.Int 1) ~program:busy_tir
                    ~mode:Arde.Config.Helgrind_lib
                    ~options:(Arde.Options.make ~seeds:[ 1 ] ~fuel:2_000_000 ())
                    ()))));
      with_client srv (fun cl ->
          await_stats cl ~what:"doomed request in flight"
            (fun ~int_at ~bool_at:_ ->
              int_at [ "queue"; "in_flight" ] = Some 1);
          C.close doomed;
          (* Still queued when the client dies: dropped at dispatch. *)
          let doomed2 = connect srv in
          ignore
            (ok_exn "send queued"
               (C.send_frame doomed2
                  (J.to_string
                     (P.run_request_json ~id:(J.Int 2) ~program:busy_tir
                        ~mode:Arde.Config.Helgrind_lib ~options:quick_options
                        ()))));
          C.close doomed2;
          let resp =
            ok_exn "next client"
              (C.run cl
                 ~program:(Arde.Pretty.program_to_string case.W.Racey.program)
                 ~mode:Arde.Config.Helgrind_lib ~options:quick_options ())
          in
          checkb "server healthy after disconnects" true (P.response_ok resp);
          await_stats cl ~what:"no crashes from disconnects"
            (fun ~int_at ~bool_at:_ ->
              int_at [ "supervision"; "crashes" ] = Some 0
              && int_at [ "queue"; "in_flight" ] = Some 0)))

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Persistent bundle store                                             *)

module St = Arde_server.Store
module AC = Arde.Analysis_cache

let store_counter = ref 0

let fresh_store_dir () =
  incr store_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "arde-test-store-%d-%d" (Unix.getpid ()) !store_counter)

let with_store_dir f =
  let dir = fresh_store_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* A spin-mode prepared bundle for one catalog case — exercises the
   whole entry body including the machine's spin cache. *)
let store_mode = Arde.Config.Nolib_spin 2
let store_style = Arde.Lower.Realistic

let store_case () =
  List.find
    (fun c -> c.W.Racey.threads <= 4)
    (W.Racey.all ())

let store_prepared ~digest =
  AC.prepare ~digest ~style:store_style ~count_callees:false store_mode
    (store_case ()).W.Racey.program

let store_key ~digest =
  {
    AC.sk_digest = digest;
    sk_mode = store_mode;
    sk_style = store_style;
    sk_count_callees = false;
  }

let store_path st ~digest =
  St.entry_path st ~digest
    ~mode_id:(Arde.Config.mode_id store_mode)
    ~style:store_style ~count_callees:false

let test_store_roundtrip () =
  with_store_dir @@ fun dir ->
  let st = ok_exn "store create" (St.create ~dir ()) in
  let hooks = St.analysis_store st in
  let p = store_prepared ~digest:"rt" in
  let enc q =
    St.encode ~digest:"rt"
      ~mode_id:(Arde.Config.mode_id store_mode)
      ~style:store_style ~count_callees:false q
  in
  (* Deterministic bytes are what make concurrent worker write-backs
     benign (last writer wins with identical content). *)
  checks "encoding is deterministic" (enc p) (enc p);
  checkb "miss before any save" true (hooks.AC.store_load (store_key ~digest:"rt") = None);
  hooks.AC.store_save (store_key ~digest:"rt") p;
  (match hooks.AC.store_load (store_key ~digest:"rt") with
  | None -> Alcotest.fail "expected a disk hit after save"
  | Some q ->
      checks "program text survives the disk"
        (Arde.Pretty.program_to_string p.AC.p_program)
        (Arde.Pretty.program_to_string q.AC.p_program);
      checkb "cv mutexes survive" true (p.AC.p_cv_mutexes = q.AC.p_cv_mutexes);
      checkb "inferred locks survive" true
        (p.AC.p_inferred_locks = q.AC.p_inferred_locks);
      (* Round-trip stability: a reloaded bundle re-encodes to the same
         bytes, which covers the spin-cache arrays without reaching into
         machine internals. *)
      checks "encode(decode(x)) = encode(x)" (enc p) (enc q));
  let s = St.stats st in
  check Alcotest.int "one save" 1 s.St.st_saves;
  check Alcotest.int "one hit" 1 s.St.st_hits;
  check Alcotest.int "one miss" 1 s.St.st_misses;
  check Alcotest.int "nothing corrupt" 0 s.St.st_corrupt

let test_store_corruption_recovery () =
  with_store_dir @@ fun dir ->
  let st = ok_exn "store create" (St.create ~dir ()) in
  let hooks = St.analysis_store st in
  let key = store_key ~digest:"corrupt" in
  let p = store_prepared ~digest:"corrupt" in
  let path = store_path st ~digest:"corrupt" in
  let mangle f =
    hooks.AC.store_save key p;
    let bytes = ok_exn "read entry" (Arde_server.Util.read_file path) in
    let b = Bytes.of_string bytes in
    f b;
    (match hooks.AC.store_load key with
    | None -> ()
    | Some _ -> Alcotest.fail "loaded a mangled entry");
    checkb "mangled entry deleted" false (Sys.file_exists path)
  in
  (* Truncation. *)
  mangle (fun b ->
      let oc = open_out_bin path in
      output_bytes oc (Bytes.sub b 0 (Bytes.length b / 2));
      close_out oc);
  (* A flipped body byte must fail the checksum. *)
  mangle (fun b ->
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc);
  (* A future format version is recomputed, not trusted. *)
  mangle (fun b ->
      Bytes.set b 8 '\x63';
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc);
  check Alcotest.int "every mangling recovered" 3 (St.stats st).St.st_corrupt;
  (* The slot is usable again afterwards. *)
  hooks.AC.store_save key p;
  checkb "save after recovery works" true (hooks.AC.store_load key <> None)

let test_store_write_failure_degrades () =
  with_store_dir @@ fun dir ->
  let st = ok_exn "store create" (St.create ~dir ()) in
  let hooks = St.analysis_store st in
  let p = store_prepared ~digest:"gone" in
  (* The directory vanishing mid-flight is the portable stand-in for
     ENOSPC: every write failure takes the same degrade path. *)
  rm_rf dir;
  hooks.AC.store_save (store_key ~digest:"gone") p;
  check Alcotest.int "write failure counted" 1 (St.stats st).St.st_errors;
  checkb "lookup is a plain miss" true
    (hooks.AC.store_load (store_key ~digest:"gone") = None);
  check Alcotest.int "no phantom save" 0 (St.stats st).St.st_saves

let test_store_lru_bound () =
  with_store_dir @@ fun dir ->
  let st = ok_exn "store create" (St.create ~dir ()) in
  let hooks = St.analysis_store st in
  let digests = [ "lru-a"; "lru-b"; "lru-c"; "lru-d" ] in
  List.iter
    (fun d ->
      hooks.AC.store_save (store_key ~digest:d) (store_prepared ~digest:d);
      (* Distinct mtimes order the eviction scan deterministically. *)
      Unix.sleepf 0.02)
    digests;
  let _, bytes = St.usage st in
  let per_entry = bytes / List.length digests in
  (* Freshen the oldest entry: LRU must now prefer evicting lru-b. *)
  checkb "touch hit" true (hooks.AC.store_load (store_key ~digest:"lru-a") <> None);
  Unix.sleepf 0.02;
  let evicted = St.gc st ~max_bytes:(per_entry * 2) in
  check Alcotest.int "evicted down to bound" 2 evicted;
  let n, bytes' = St.usage st in
  check Alcotest.int "two entries remain" 2 n;
  checkb "bound respected" true (bytes' <= per_entry * 2);
  checkb "recently used entry survived" true
    (Sys.file_exists (store_path st ~digest:"lru-a"));
  checkb "most recent entry survived" true
    (Sys.file_exists (store_path st ~digest:"lru-d"));
  checkb "LRU victims were the stale ones" false
    (Sys.file_exists (store_path st ~digest:"lru-b")
    || Sys.file_exists (store_path st ~digest:"lru-c"))

(* Satellite guarantee: within one process, concurrent prepares of a
   cold key compute (and write back) exactly once; everyone else waits
   on the single flight and shares the published bundle. *)
let test_store_single_flight () =
  let saves = Atomic.make 0 in
  let loads = Atomic.make 0 in
  AC.set_store
    (Some
       {
         AC.store_load =
           (fun _ ->
             Atomic.incr loads;
             (* A slow miss widens the window concurrent callers race
                into. *)
             Unix.sleepf 0.02;
             None);
         AC.store_save = (fun _ _ -> Atomic.incr saves);
       });
  Fun.protect ~finally:(fun () -> AC.set_store None) @@ fun () ->
  AC.clear ();
  let program = (store_case ()).W.Racey.program in
  let ds =
    List.init 6 (fun _ ->
        Domain.spawn (fun () ->
            AC.prepare ~digest:"single-flight" ~style:store_style
              ~count_callees:false store_mode program))
  in
  let ps = List.map Domain.join ds in
  check Alcotest.int "exactly one store lookup" 1 (Atomic.get loads);
  check Alcotest.int "exactly one write-back" 1 (Atomic.get saves);
  match ps with
  | first :: rest ->
      List.iter
        (fun p ->
          checkb "all callers share one compiled bundle" true
            (p.AC.p_compiled == first.AC.p_compiled))
        rest
  | [] -> Alcotest.fail "no domains ran"

(* Sibling workers racing a write-back: both encode byte-identically, so
   last-writer-wins leaves exactly the bytes either would have written. *)
let test_store_cross_worker_write_back () =
  with_store_dir @@ fun dir ->
  let st1 = ok_exn "store 1" (St.create ~dir ()) in
  let st2 = ok_exn "store 2" (St.create ~dir ()) in
  let p1 = store_prepared ~digest:"xw" in
  AC.clear ();
  let p2 = store_prepared ~digest:"xw" in
  checkb "independent computes" true (p1.AC.p_compiled != p2.AC.p_compiled);
  let enc p =
    St.encode ~digest:"xw"
      ~mode_id:(Arde.Config.mode_id store_mode)
      ~style:store_style ~count_callees:false p
  in
  checks "independent computes encode identically" (enc p1) (enc p2);
  (St.analysis_store st1).AC.store_save (store_key ~digest:"xw") p1;
  (St.analysis_store st2).AC.store_save (store_key ~digest:"xw") p2;
  let on_disk =
    ok_exn "read entry"
      (Arde_server.Util.read_file (store_path st1 ~digest:"xw"))
  in
  checks "last writer left identical bytes" (enc p1) on_disk

(* The tentpole end to end: a daemon is killed and a fresh one on the
   same store answers previously-seen programs from disk, byte-identical
   to the cold compute. *)
let test_store_restart_warm_identity () =
  with_store_dir @@ fun store_dir ->
  let case = List.hd (identity_cases ()) in
  let mode = Arde.Config.Nolib_spin 7 in
  let cold =
    with_server ~store_dir ~workers:1 (fun srv ->
        with_client srv (fun cl -> served_result_string cl case mode))
  in
  (* [stop] tore the whole daemon down (workers included); only the
     store directory carries state across. *)
  with_server ~store_dir ~workers:1 (fun srv ->
      with_client srv (fun cl ->
          let resp =
            ok_exn "restart-warm run"
              (C.run cl
                 ~program:(Arde.Pretty.program_to_string case.W.Racey.program)
                 ~mode ~options:identity_options ())
          in
          checkb "restart-warm run ok" true (P.response_ok resp);
          checks "restart-warm result is byte-identical to cold"
            cold
            (J.to_string
               (Option.value ~default:J.Null (J.member "result" resp)));
          (* The response's own store delta proves the bundle came off
             disk, not from a recompute. *)
          let store_int k =
            Option.bind
              (Option.bind (J.member "store" resp) (J.member k))
              J.to_int
          in
          check (Alcotest.option Alcotest.int) "one disk hit" (Some 1)
            (store_int "disk_hits");
          check (Alcotest.option Alcotest.int) "no save on the warm path"
            (Some 0) (store_int "saves")))

(* ------------------------------------------------------------------ *)
(* TCP listener                                                        *)

let test_parse_tcp_endpoint () =
  let ok s = ok_exn s (C.parse_tcp_endpoint s) in
  checkb "host:port" true (ok "example:4817" = C.Tcp ("example", 4817));
  checkb "bare port" true (ok "4817" = C.Tcp ("", 4817));
  checkb "colon port" true (ok ":4817" = C.Tcp ("", 4817));
  List.iter
    (fun s ->
      match C.parse_tcp_endpoint s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "host:"; "host:0"; "host:notaport"; "host:65536" ]

let test_tcp_end_to_end () =
  let case = List.hd (identity_cases ()) in
  let mode = Arde.Config.Helgrind_lib in
  with_server ~tcp:("127.0.0.1", 0) (fun srv ->
      let host, port =
        match S.tcp_endpoint srv.t with
        | Some ep -> ep
        | None -> Alcotest.fail "server bound no TCP endpoint"
      in
      checkb "ephemeral port was resolved" true (port > 0);
      let unix_result =
        with_client srv (fun cl -> served_result_string cl case mode)
      in
      List.iter
        (fun wire ->
          let c =
            ok_exn "tcp connect"
              (C.connect ~wire ~endpoint:(C.Tcp (host, port)) ())
          in
          Fun.protect
            ~finally:(fun () -> C.close c)
            (fun () ->
              checkb "ping over tcp" true
                (P.response_ok (ok_exn "ping" (C.ping c)));
              checks
                (Printf.sprintf "tcp %s wire matches the unix socket"
                   (P.wire_name wire))
                unix_result
                (served_result_string c case mode)))
        [ P.Json; P.Binary ])

let suite =
  [
    Alcotest.test_case "frame codec reassembles any chunking" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "frame codec splits pipelined frames" `Quick
      test_frame_pipelined;
    Alcotest.test_case "frame codec rejects oversized frames" `Quick
      test_frame_too_large;
    Alcotest.test_case "run requests round-trip the option surface" `Quick
      test_request_roundtrip;
    Alcotest.test_case "malformed requests map to structured errors" `Quick
      test_request_errors;
    Alcotest.test_case "binary requests round-trip the option surface"
      `Quick test_binary_request_roundtrip;
    Alcotest.test_case "malformed binary requests map to structured errors"
      `Quick test_binary_request_errors;
    Alcotest.test_case "binary responses round-trip byte-identically" `Quick
      test_binary_response_roundtrip;
    Alcotest.test_case "hello-ack negotiates the frame cap" `Quick
      test_hello_ack;
    Alcotest.test_case "mode wire form round-trips" `Quick
      test_mode_id_roundtrip;
    Alcotest.test_case "scheduler admission control and drain" `Quick
      test_scheduler_admission;
    Alcotest.test_case "served results are byte-identical to the driver"
      `Quick test_byte_identity;
    Alcotest.test_case "binary wire is byte-identical end to end" `Quick
      test_binary_wire_end_to_end;
    Alcotest.test_case "record-mode run replays identically on the farm"
      `Quick test_record_then_server_replay;
    Alcotest.test_case "8 concurrent clients, mixed valid and invalid"
      `Quick test_concurrent_clients;
    Alcotest.test_case "malformed frames against a live server" `Quick
      test_malformed_frames;
    Alcotest.test_case "admission control bounces past max_pending" `Quick
      test_admission_control;
    Alcotest.test_case "deadlines cancel remaining seeds cooperatively"
      `Quick test_deadline_cancels_remaining_seeds;
    Alcotest.test_case "stats report outcomes, queue and caches" `Quick
      test_stats;
    Alcotest.test_case "SIGTERM drains gracefully" `Quick test_sigterm_drain;
    Alcotest.test_case "refused and cancelled requests release capacity"
      `Quick test_scheduler_capacity_recovery;
    Alcotest.test_case "chaos plans parse, print and fire deterministically"
      `Quick test_chaos_plan_parse;
    Alcotest.test_case "outbuf flushes in order and reports dead peers"
      `Quick test_outbuf_flush;
    Alcotest.test_case "atomic file writes replace, never tear" `Quick
      test_write_file_atomic;
    Alcotest.test_case "retry schedule is bounded, jittered, deterministic"
      `Quick test_retry_schedule;
    Alcotest.test_case "worker crash -> structured error + replayable bundle"
      `Quick test_worker_crash_structured;
    Alcotest.test_case "crash storm: 200 requests, zero hung clients" `Quick
      test_crash_storm;
    Alcotest.test_case "watchdog SIGKILLs wedged workers" `Quick
      test_watchdog_kills_wedged_worker;
    Alcotest.test_case "torn reply frames are crashes, not responses" `Quick
      test_torn_reply_frame;
    Alcotest.test_case "spool ENOSPC is not fatal to the request" `Quick
      test_spool_enospc_not_fatal;
    Alcotest.test_case "restart storms trip the circuit breaker" `Quick
      test_restart_storm_circuit_breaker;
    Alcotest.test_case "deadlines expire queued requests in place" `Quick
      test_deadline_expires_in_queue;
    Alcotest.test_case "drain races a cold-cache fill" `Quick
      test_drain_races_cold_fill;
    Alcotest.test_case "client disconnect mid-response is survivable" `Quick
      test_client_disconnect_mid_response;
    Alcotest.test_case "store entries round-trip deterministically" `Quick
      test_store_roundtrip;
    Alcotest.test_case "corrupt store entries are recomputed, never fatal"
      `Quick test_store_corruption_recovery;
    Alcotest.test_case "store write failures degrade to compute-only" `Quick
      test_store_write_failure_degrades;
    Alcotest.test_case "store eviction is LRU and respects the bound" `Quick
      test_store_lru_bound;
    Alcotest.test_case "concurrent prepares single-flight the compute" `Quick
      test_store_single_flight;
    Alcotest.test_case "racing write-backs leave identical bytes" `Quick
      test_store_cross_worker_write_back;
    Alcotest.test_case "restarted daemon serves byte-identical results warm"
      `Quick test_store_restart_warm_identity;
    Alcotest.test_case "tcp endpoints parse" `Quick test_parse_tcp_endpoint;
    Alcotest.test_case "tcp listener is byte-identical on both wires" `Quick
      test_tcp_end_to_end;
  ]
