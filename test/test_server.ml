(* The serve subsystem: frame codec, request schemas, scheduler
   admission control, and the daemon end to end over a real Unix domain
   socket — byte-identical results vs the in-process driver, malformed
   frames answered with structured errors, concurrent clients, deadlines
   and the SIGTERM drain state machine. *)

module J = Arde.Json
module P = Arde_server.Protocol
module S = Arde_server.Server
module C = Arde_server.Client
module W = Arde_workloads

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Protocol unit tests (no socket)                                     *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 100_000 'z'; "{\"a\":1}" ] in
  List.iter
    (fun payload ->
      let d = P.decoder () in
      let f = Bytes.of_string (P.frame payload) in
      (* Feed one byte at a time: reassembly must not depend on chunking. *)
      for i = 0 to Bytes.length f - 1 do
        (match P.next_frame d with
        | P.Await -> ()
        | _ -> Alcotest.fail "frame completed early");
        P.feed d f i 1
      done;
      match P.next_frame d with
      | P.Frame got -> checks "payload" payload got
      | _ -> Alcotest.fail "expected a complete frame")
    payloads

let test_frame_pipelined () =
  let d = P.decoder () in
  let bytes = P.frame "first" ^ P.frame "second" ^ P.frame "third" in
  let b = Bytes.of_string bytes in
  P.feed d b 0 (Bytes.length b);
  let rec collect acc =
    match P.next_frame d with
    | P.Frame s -> collect (s :: acc)
    | P.Await -> List.rev acc
    | P.Too_large _ -> Alcotest.fail "unexpected too-large"
  in
  check (Alcotest.list Alcotest.string) "all frames"
    [ "first"; "second"; "third" ]
    (collect [])

let test_frame_too_large () =
  let d = P.decoder ~max_frame:64 () in
  let b = Bytes.of_string (P.frame (String.make 65 'q')) in
  P.feed d b 0 (Bytes.length b);
  (match P.next_frame d with
  | P.Too_large n -> check Alcotest.int "announced size" 65 n
  | _ -> Alcotest.fail "expected Too_large");
  (* A header with the sign bit set must not wrap into a small size. *)
  let d = P.decoder () in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 0xF0000000l;
  P.feed d hdr 0 4;
  match P.next_frame d with
  | P.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large for sign-bit header"

let test_request_roundtrip () =
  let options = Arde.Options.make ~seeds:[ 3; 1 ] ~fuel:1234 ~jobs:2 () in
  let mode = Arde.Config.Nolib_spin 5 in
  let req =
    P.run_request_json ~id:(J.Int 42) ~deadline_ms:750 ~program:"entry = m\n"
      ~mode ~options ()
  in
  match P.parse_request (J.to_string req) with
  | Ok (P.Run r) ->
      check Alcotest.string "id" "42" (J.to_string r.P.rq_id);
      checks "program" "entry = m\n" r.P.rq_program;
      checks "mode" "nolib+spin:5" (Arde.Config.mode_id r.P.rq_mode);
      check (Alcotest.option Alcotest.int) "deadline" (Some 750)
        r.P.rq_deadline_ms;
      checks "options survive the wire"
        (J.to_string (Arde.Options.to_json options))
        (J.to_string (Arde.Options.to_json r.P.rq_options))
  | Ok _ -> Alcotest.fail "parsed as a non-run request"
  | Error (_, _, e) -> Alcotest.failf "parse_request: %s" e

let test_request_errors () =
  let expect_code want payload =
    match P.parse_request payload with
    | Ok _ -> Alcotest.failf "accepted %S" payload
    | Error (_, code, _) -> checks payload want (P.code_name code)
  in
  expect_code "bad_frame" "{not json";
  expect_code "bad_frame" (String.make 80 '[');
  expect_code "bad_request" {|{"type":"frobnicate"}|};
  expect_code "bad_request" {|{"id":1}|};
  expect_code "bad_request" {|{"type":"run","program":"x","mode":"warp:9"}|};
  expect_code "bad_request"
    {|{"type":"run","program":"x","mode":"lib","deadline_ms":-5}|};
  expect_code "bad_request"
    {|{"type":"run","program":"x","mode":"lib","options":{"seeds":"nope"}}|};
  (* The id is recovered even from a bad request, for correlation. *)
  match P.parse_request {|{"type":"frobnicate","id":7}|} with
  | Error (id, _, _) -> checks "echoed id" "7" (J.to_string id)
  | Ok _ -> Alcotest.fail "accepted unknown type"

let test_mode_id_roundtrip () =
  List.iter
    (fun m ->
      (match Arde.Config.parse_mode (Arde.Config.mode_id m) with
      | Ok m' -> checkb "mode_id roundtrip" true (m = m')
      | Error e -> Alcotest.failf "parse_mode (mode_id): %s" e);
      match Arde.Config.parse_mode (Arde.Config.mode_name m) with
      | Ok m' -> checkb "mode_name also parses" true (m = m')
      | Error e -> Alcotest.failf "parse_mode (mode_name): %s" e)
    (Arde.Config.Nolib_spin_locks 3 :: Arde.Config.all_table1_modes)

(* ------------------------------------------------------------------ *)
(* Scheduler unit tests                                                *)

let test_scheduler_admission () =
  let module Sch = Arde_server.Scheduler in
  let s = Sch.create ~max_pending:2 in
  checkb "accepted" true (Sch.submit s 1 = Sch.Accepted);
  checkb "accepted" true (Sch.submit s 2 = Sch.Accepted);
  checkb "overloaded beyond max_pending" true (Sch.submit s 3 = Sch.Overloaded);
  check Alcotest.int "depth" 2 (Sch.depth s);
  checkb "pop 1" true (Sch.next s = Some 1);
  check Alcotest.int "in flight" 1 (Sch.in_flight s);
  checkb "freed a slot" true (Sch.submit s 3 = Sch.Accepted);
  Sch.begin_drain s;
  checkb "draining refuses" true (Sch.submit s 4 = Sch.Draining);
  checkb "queued work survives drain" true (Sch.next s = Some 2);
  checkb "queued work survives drain" true (Sch.next s = Some 3);
  checkb "then the worker is released" true (Sch.next s = None);
  Sch.job_done s;
  Sch.job_done s;
  Sch.job_done s;
  checkb "idle after drain" true (Sch.idle s)

(* ------------------------------------------------------------------ *)
(* Live-server harness                                                 *)

type server = { t : S.t; path : string; runner : unit Domain.t }

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "arde-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)

let start ?max_pending ?max_frame ?jobs ?default_deadline_ms () =
  let path = fresh_socket () in
  let cfg =
    S.config ?max_pending ?max_frame ?jobs ?default_deadline_ms
      ~socket_path:path ()
  in
  match S.create cfg with
  | Error e -> Alcotest.failf "server create: %s" e
  | Ok t -> { t; path; runner = Domain.spawn (fun () -> S.run t) }

let stop srv =
  S.initiate_drain srv.t;
  Domain.join srv.runner

let with_server ?max_pending ?max_frame ?jobs ?default_deadline_ms f =
  let srv = start ?max_pending ?max_frame ?jobs ?default_deadline_ms () in
  Fun.protect ~finally:(fun () -> stop srv) (fun () -> f srv)

let connect srv =
  match C.connect ~socket_path:srv.path with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let with_client srv f =
  let c = connect srv in
  Fun.protect ~finally:(fun () -> C.close c) (fun () -> f c)

let ok_exn label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label e

(* An endless register-only loop: runs for exactly [fuel] machine steps,
   the knob behind every "slow request" below. *)
let busy_tir = "entry = main\nfunc main():\n  e:\n    nop\n    goto e\n"

let error_code resp =
  match P.response_error resp with Some (code, _) -> code | None -> "none"

(* Poll the server's own stats until [pred] holds — timing-free
   synchronization on queue state (stats are answered by the connection
   loop even mid-drain). *)
let await_stats ?(tries = 400) cl ~what pred =
  let rec go tries =
    if tries = 0 then Alcotest.failf "timed out waiting for %s" what;
    let stats =
      Option.value ~default:J.Null
        (J.member "stats" (ok_exn "stats" (C.stats cl)))
    in
    let at path =
      List.fold_left (fun j k -> Option.bind j (J.member k)) (Some stats) path
    in
    let int_at path = Option.bind (at path) J.to_int in
    let bool_at path = Option.bind (at path) J.to_bool in
    if pred ~int_at ~bool_at then ()
    else begin
      Unix.sleepf 0.01;
      go (tries - 1)
    end
  in
  go tries

(* ------------------------------------------------------------------ *)
(* Byte-identity: served results vs the in-process driver              *)

let identity_cases () =
  let all = W.Racey.all () in
  let cats =
    List.sort_uniq compare (List.map (fun c -> c.W.Racey.category) all)
  in
  let picked =
    List.filter_map
      (fun cat ->
        List.find_opt
          (fun c -> c.W.Racey.category = cat && c.W.Racey.threads <= 4)
          all)
      cats
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take 3 picked

let identity_options =
  Arde.Options.make ~seeds:(List.init 16 (fun i -> i + 1)) ~fuel:30_000 ()

let local_result_string case mode =
  let r = Arde.detect ~options:identity_options mode case.W.Racey.program in
  J.to_string (Arde.Driver.result_to_json r)

let served_result_string cl case mode =
  let resp =
    ok_exn "run"
      (C.run cl
         ~program:(Arde.Pretty.program_to_string case.W.Racey.program)
         ~mode ~options:identity_options ())
  in
  if not (P.response_ok resp) then
    Alcotest.failf "server refused %s: %s" case.W.Racey.name (error_code resp);
  match J.member "result" resp with
  | Some r -> J.to_string r
  | None -> Alcotest.fail "ok response without result"

let test_byte_identity () =
  let cases = identity_cases () in
  checkb "picked some cases" true (cases <> []);
  with_server ~jobs:1 (fun srv ->
      with_client srv (fun cl ->
          List.iter
            (fun case ->
              List.iter
                (fun mode ->
                  checks
                    (Printf.sprintf "%s under %s" case.W.Racey.name
                       (Arde.Config.mode_id mode))
                    (local_result_string case mode)
                    (served_result_string cl case mode))
                Arde.Config.all_table1_modes)
            cases))

(* Eight concurrent clients, mixed valid and invalid traffic: every
   valid request's result must still be byte-identical to the local
   driver, and every invalid one must come back as a structured error
   with the connection (and server) surviving. *)
let test_concurrent_clients () =
  let cases = identity_cases () in
  let modes = Arde.Config.all_table1_modes in
  let case i = List.nth cases (i mod List.length cases) in
  let mode i = List.nth modes (i mod List.length modes) in
  let expected =
    List.concat_map
      (fun c ->
        List.map
          (fun m -> ((c.W.Racey.name, Arde.Config.mode_id m),
                     local_result_string c m))
          modes)
      cases
  in
  let lookup c m =
    List.assoc (c.W.Racey.name, Arde.Config.mode_id m) expected
  in
  with_server (fun srv ->
      let client_body i () =
        let failures = ref [] in
        let fail fmt =
          Printf.ksprintf (fun s -> failures := s :: !failures) fmt
        in
        (match C.connect ~socket_path:srv.path with
        | Error e -> fail "client %d: connect: %s" i e
        | Ok cl ->
            Fun.protect
              ~finally:(fun () -> C.close cl)
              (fun () ->
                if i mod 4 = 3 then begin
                  (* Invalid traffic: junk frame, unknown type, bad mode —
                     each answered, none fatal to the connection. *)
                  (match C.send_frame cl "{broken" with
                  | Ok () -> ()
                  | Error e -> fail "client %d: send: %s" i e);
                  (match C.recv cl with
                  | Ok resp when error_code resp = "bad_frame" -> ()
                  | Ok resp ->
                      fail "client %d: junk got %s" i (J.to_string resp)
                  | Error e -> fail "client %d: recv: %s" i e);
                  (match
                     C.request cl (J.Obj [ ("type", J.String "warp") ])
                   with
                  | Ok resp when error_code resp = "bad_request" -> ()
                  | Ok resp ->
                      fail "client %d: warp got %s" i (J.to_string resp)
                  | Error e -> fail "client %d: recv: %s" i e);
                  match C.ping cl with
                  | Ok resp when P.response_ok resp -> ()
                  | Ok _ -> fail "client %d: ping refused" i
                  | Error e -> fail "client %d: ping: %s" i e
                end
                else
                  let c = case i and m = mode i in
                  match
                    C.run cl
                      ~program:
                        (Arde.Pretty.program_to_string c.W.Racey.program)
                      ~mode:m ~options:identity_options ()
                  with
                  | Error e -> fail "client %d: run: %s" i e
                  | Ok resp when not (P.response_ok resp) ->
                      fail "client %d: refused: %s" i (error_code resp)
                  | Ok resp -> (
                      match J.member "result" resp with
                      | None -> fail "client %d: no result" i
                      | Some r ->
                          if J.to_string r <> lookup c m then
                            fail "client %d: result diverged on %s/%s" i
                              c.W.Racey.name (Arde.Config.mode_id m))));
        List.rev !failures
      in
      let domains =
        List.init 8 (fun i -> Domain.spawn (client_body i))
      in
      let failures = List.concat_map Domain.join domains in
      check (Alcotest.list Alcotest.string) "no client failures" [] failures)

(* ------------------------------------------------------------------ *)
(* Malformed input against a live server                               *)

let test_malformed_frames () =
  with_server ~max_frame:(256 * 1024) (fun srv ->
      (* Oversized length header: structured error, then disconnect. *)
      with_client srv (fun cl ->
          let hdr = Bytes.create 4 in
          Bytes.set_int32_be hdr 0 (Int32.of_int ((256 * 1024) + 1));
          (match C.send_raw cl (Bytes.to_string hdr) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "send header: %s" e);
          (match C.recv cl with
          | Ok resp -> checks "oversized" "bad_frame" (error_code resp)
          | Error e -> Alcotest.failf "recv: %s" e);
          match C.recv cl with
          | Error _ -> () (* server dropped the poisoned stream *)
          | Ok resp ->
              Alcotest.failf "expected disconnect, got %s" (J.to_string resp));
      (* Truncated header, then mid-frame disconnect: server survives. *)
      with_client srv (fun cl ->
          ignore (C.send_raw cl "\x00\x00"));
      with_client srv (fun cl ->
          let b = Bytes.create 4 in
          Bytes.set_int32_be b 0 100l;
          ignore (C.send_raw cl (Bytes.to_string b ^ "only ten b")));
      (* Invalid JSON / unknown type / bad program are per-request
         errors: the connection stays usable. *)
      with_client srv (fun cl ->
          ignore (ok_exn "send" (C.send_frame cl "][ not json"));
          checks "invalid json" "bad_frame"
            (error_code (ok_exn "recv" (C.recv cl)));
          checks "depth bomb" "bad_frame"
            (error_code
               (ok_exn "recv"
                  (let bomb = String.make 80 '[' in
                   ignore (ok_exn "send" (C.send_frame cl bomb));
                   C.recv cl)));
          let resp =
            ok_exn "request"
              (C.request cl
                 (J.Obj [ ("type", J.String "selfdestruct"); ("id", J.Int 9) ]))
          in
          checks "unknown type" "bad_request" (error_code resp);
          checks "id echoed" "9"
            (J.to_string (Option.value ~default:J.Null (J.member "id" resp)));
          let resp =
            ok_exn "request"
              (C.run cl ~program:"this is not tir"
                 ~mode:Arde.Config.Helgrind_lib
                 ~options:(Arde.Options.make ()) ())
          in
          checks "unparsable program" "bad_request" (error_code resp);
          (* ... and the same connection still serves a real run. *)
          let resp =
            ok_exn "request"
              (C.run cl ~program:busy_tir ~mode:Arde.Config.Helgrind_lib
                 ~options:(Arde.Options.make ~seeds:[ 1 ] ~fuel:100 ())
                 ())
          in
          checkb "healthy after abuse" true (P.response_ok resp)))

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let test_admission_control () =
  with_server ~jobs:1 ~max_pending:1 (fun srv ->
      let slow = Arde.Options.make ~seeds:[ 1 ] ~fuel:20_000_000 () in
      let quick = Arde.Options.make ~seeds:[ 1 ] ~fuel:100 () in
      with_client srv (fun blocker ->
          (* Occupy the worker without waiting for the response. *)
          ignore
            (ok_exn "send slow"
               (C.send_frame blocker
                  (J.to_string
                     (P.run_request_json ~id:(J.Int 0) ~program:busy_tir
                        ~mode:Arde.Config.Helgrind_lib ~options:slow ()))));
          with_client srv (fun cl ->
              (* Wait until the worker has actually dequeued the slow
                 request — otherwise it still occupies the queue slot
                 and the whole burst would bounce. *)
              await_stats cl ~what:"blocker in flight"
                (fun ~int_at ~bool_at:_ ->
                  int_at [ "queue"; "in_flight" ] = Some 1
                  && int_at [ "queue"; "depth" ] = Some 0);
              (* Burst three more: the queue holds one, so at least one
                 must bounce with a structured overloaded error. *)
              List.iter
                (fun i ->
                  ignore
                    (ok_exn "send burst"
                       (C.send_frame cl
                          (J.to_string
                             (P.run_request_json ~id:(J.Int i)
                                ~program:busy_tir
                                ~mode:Arde.Config.Helgrind_lib ~options:quick
                                ())))))
                [ 1; 2; 3 ];
              let responses = List.map (fun _ -> ok_exn "recv" (C.recv cl)) [ 1; 2; 3 ] in
              let overloaded, completed =
                List.partition
                  (fun r -> error_code r = "overloaded")
                  responses
              in
              checkb "at least one bounced" true (overloaded <> []);
              checkb "at least one served" true (completed <> []);
              List.iter
                (fun r -> checkb "non-bounced are ok" true (P.response_ok r))
                completed);
          (* The slow blocker still completes with its findings. *)
          let resp = ok_exn "recv blocker" (C.recv blocker) in
          checkb "blocker completed" true (P.response_ok resp)))

(* ------------------------------------------------------------------ *)
(* Per-request deadlines                                               *)

let test_deadline_cancels_remaining_seeds () =
  with_server ~jobs:1 (fun srv ->
      with_client srv (fun cl ->
          let options =
            Arde.Options.make ~seeds:[ 1; 2; 3 ] ~fuel:20_000_000 ()
          in
          let resp =
            ok_exn "run"
              (C.run cl ~deadline_ms:100 ~program:busy_tir
                 ~mode:Arde.Config.Helgrind_lib ~options ())
          in
          checkb "deadline is not an error" true (P.response_ok resp);
          let health =
            match
              Option.bind
                (Option.bind (J.member "result" resp) (J.member "health"))
                (fun h -> Result.to_option (Arde.Driver.health_of_json h))
            with
            | Some h -> h
            | None -> Alcotest.fail "no parsable health in response"
          in
          (* Seed 1 starts before the deadline and burns well past it;
             seeds 2 and 3 must then be cancelled, not run. *)
          check Alcotest.int "cancelled seeds" 2 health.Arde.Driver.h_cancelled;
          check Alcotest.int "seed 1 ran to fuel exhaustion" 1
            health.Arde.Driver.h_fuel_exhausted;
          checkb "degraded, not failed" true
            (health.Arde.Driver.h_verdict = Arde.Driver.Degraded)))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats () =
  with_server ~max_pending:7 (fun srv ->
      with_client srv (fun cl ->
          ignore (ok_exn "ping" (C.ping cl));
          let quick = Arde.Options.make ~seeds:[ 1 ] ~fuel:100 () in
          let run () =
            let r =
              ok_exn "run"
                (C.run cl ~program:busy_tir ~mode:Arde.Config.Helgrind_lib
                   ~options:quick ())
            in
            checkb "run ok" true (P.response_ok r)
          in
          run ();
          run ();
          let resp = ok_exn "stats" (C.stats cl) in
          checkb "stats ok" true (P.response_ok resp);
          let stats =
            Option.value ~default:J.Null (J.member "stats" resp)
          in
          let int_at path =
            match
              Option.bind
                (List.fold_left
                   (fun j k -> Option.bind j (J.member k))
                   (Some stats) path)
                J.to_int
            with
            | Some n -> n
            | None ->
                Alcotest.failf "stats missing %s" (String.concat "." path)
          in
          check Alcotest.int "received" 4 (int_at [ "requests"; "received" ]);
          check Alcotest.int "ok runs" 2 (int_at [ "requests"; "ok" ]);
          check Alcotest.int "pings" 1 (int_at [ "requests"; "ping" ]);
          check Alcotest.int "max_pending echoes config" 7
            (int_at [ "queue"; "max_pending" ]);
          check Alcotest.int "program cache hit" 1
            (int_at [ "programs"; "hits" ]);
          check Alcotest.int "program cache miss" 1
            (int_at [ "programs"; "misses" ]);
          checkb "uptime present" true
            (Option.bind (J.member "uptime_s" stats) J.to_float <> None);
          checkb "pool width positive" true (int_at [ "pool_width" ] >= 1)))

(* ------------------------------------------------------------------ *)
(* SIGTERM drain                                                       *)

let test_sigterm_drain () =
  let old_term = Sys.signal Sys.sigterm Sys.Signal_default in
  let old_int = Sys.signal Sys.sigint Sys.Signal_default in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int)
    (fun () ->
      let srv = start ~jobs:1 () in
      S.handle_signals srv.t;
      let inflight = connect srv in
      let idle_pre_drain = connect srv in
      (* A slow request is in flight when the signal lands. *)
      ignore
        (ok_exn "send slow"
           (C.send_frame inflight
              (J.to_string
                 (P.run_request_json ~id:(J.Int 1) ~program:busy_tir
                    ~mode:Arde.Config.Helgrind_lib
                    ~options:
                      (Arde.Options.make ~seeds:[ 1 ] ~fuel:100_000_000 ())
                    ()))));
      await_stats idle_pre_drain ~what:"slow run in flight"
        (fun ~int_at ~bool_at:_ -> int_at [ "queue"; "in_flight" ] = Some 1);
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      await_stats idle_pre_drain ~what:"drain flag"
        (fun ~int_at:_ ~bool_at -> bool_at [ "queue"; "draining" ] = Some true);
      (* New work on a pre-drain connection: structured refusal. *)
      let resp =
        ok_exn "request during drain"
          (C.run idle_pre_drain ~program:busy_tir
             ~mode:Arde.Config.Helgrind_lib
             ~options:(Arde.Options.make ~seeds:[ 1 ] ~fuel:100 ())
             ())
      in
      checks "pre-drain connection refused" "draining" (error_code resp);
      (* A brand-new connection: refused at accept, also structured. *)
      (match C.connect ~socket_path:srv.path with
      | Error _ -> () (* already torn down: acceptable, drain won the race *)
      | Ok fresh ->
          Fun.protect
            ~finally:(fun () -> C.close fresh)
            (fun () ->
              match C.recv fresh with
              | Ok resp ->
                  checks "new connection refused" "draining"
                    (error_code resp)
              | Error _ -> () (* listener closed first *)));
      (* The in-flight request still completes with a real result. *)
      let resp = ok_exn "in-flight response" (C.recv inflight) in
      checkb "in-flight request finished" true (P.response_ok resp);
      checkb "carried a result" true (J.member "result" resp <> None);
      C.close inflight;
      C.close idle_pre_drain;
      (* And the server loop returns (exit 0 in the CLI). *)
      Domain.join srv.runner;
      checkb "socket removed" false (Sys.file_exists srv.path))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "frame codec reassembles any chunking" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "frame codec splits pipelined frames" `Quick
      test_frame_pipelined;
    Alcotest.test_case "frame codec rejects oversized frames" `Quick
      test_frame_too_large;
    Alcotest.test_case "run requests round-trip the option surface" `Quick
      test_request_roundtrip;
    Alcotest.test_case "malformed requests map to structured errors" `Quick
      test_request_errors;
    Alcotest.test_case "mode wire form round-trips" `Quick
      test_mode_id_roundtrip;
    Alcotest.test_case "scheduler admission control and drain" `Quick
      test_scheduler_admission;
    Alcotest.test_case "served results are byte-identical to the driver"
      `Quick test_byte_identity;
    Alcotest.test_case "8 concurrent clients, mixed valid and invalid"
      `Quick test_concurrent_clients;
    Alcotest.test_case "malformed frames against a live server" `Quick
      test_malformed_frames;
    Alcotest.test_case "admission control bounces past max_pending" `Quick
      test_admission_control;
    Alcotest.test_case "deadlines cancel remaining seeds cooperatively"
      `Quick test_deadline_cancels_remaining_seeds;
    Alcotest.test_case "stats report outcomes, queue and caches" `Quick
      test_stats;
    Alcotest.test_case "SIGTERM drains gracefully" `Quick test_sigterm_drain;
  ]
