(* The experiment harness itself: table rendering, tallies, category
   breakdowns, inventory generation, and the perf figure plumbing. *)

module SE = Arde_harness.Suite_experiment
module PE = Arde_harness.Parsec_experiment

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

(* A tiny two-case suite keeps these tests fast. *)
let mini_cases () =
  List.filter_map Arde_workloads.Racey.find
    [ "adhoc_flag_w2/8"; "racy_counter/2"; "lock_counter/2" ]

let mini_options =
  Arde.Options.with_seeds [ 1 ] SE.suite_options

let test_run_mode_tallies () =
  let mr = SE.run_mode ~options:mini_options Arde.Config.Helgrind_lib (mini_cases ()) in
  Alcotest.(check int) "three cases detailed" 3 (List.length mr.SE.details);
  Alcotest.(check int) "tally total" 3 (Arde.Classify.total mr.SE.tally);
  Alcotest.(check int) "one false alarm (the flag case)" 1
    mr.SE.tally.Arde.Classify.false_alarms;
  Alcotest.(check int) "no misses" 0 mr.SE.tally.Arde.Classify.missed

let test_spin_mode_clean_on_mini () =
  let mr =
    SE.run_mode ~options:mini_options (Arde.Config.Helgrind_spin 7) (mini_cases ())
  in
  Alcotest.(check int) "everything correct" 3 mr.SE.tally.Arde.Classify.correct

let test_render_has_columns () =
  let mr = SE.run_mode ~options:mini_options Arde.Config.Drd (mini_cases ()) in
  let s = SE.render [ mr ] in
  List.iter
    (fun col -> Alcotest.(check bool) col true (contains s col))
    [ "False alarms"; "Missed races"; "Failed cases"; "Correct"; "Helgrind+ drd" ]

let test_category_table_renders () =
  let mr = SE.run_mode ~options:mini_options Arde.Config.Helgrind_lib (mini_cases ()) in
  let s = SE.category_table [ mr ] in
  Alcotest.(check bool) "has adhoc column" true (contains s "adhoc FA");
  Alcotest.(check bool) "has racy column" true (contains s "racy miss")

let test_failures_of () =
  let mr = SE.run_mode ~options:mini_options Arde.Config.Helgrind_lib (mini_cases ()) in
  let failures = SE.failures_of mr in
  Alcotest.(check int) "exactly the flag case fails" 1 (List.length failures);
  Alcotest.(check string) "which one" "adhoc_flag_w2/8"
    (List.hd failures).SE.case.Arde_workloads.Racey.name

let test_inventory_table () =
  let s = PE.table3 () in
  List.iter
    (fun name -> Alcotest.(check bool) name true (contains s name))
    [ "blackscholes"; "raytrace"; "OpenMP"; "GLib" ];
  (* the no-ad-hoc programs are marked '-' in the Ad-hoc column *)
  Alcotest.(check bool) "has header" true (contains s "Ad-hoc")

let test_parsec_row_shape () =
  match Arde_workloads.Parsec.find "swaptions" with
  | None -> Alcotest.fail "program missing"
  | Some pair ->
      let row = PE.run_one ~seeds:[ 1 ] pair in
      Alcotest.(check int) "four mode columns" 4 (List.length row.PE.contexts);
      List.iter
        (fun (_, v) -> Alcotest.(check (float 0.01)) "clean program" 0. v)
        row.PE.contexts;
      Alcotest.(check int) "no bad outcomes" 0 (List.length row.PE.bad)

let test_perf_measure () =
  match Arde_workloads.Parsec.find "blackscholes" with
  | None -> Alcotest.fail "program missing"
  | Some pair ->
      let fig = Arde_harness.Perf.measure ~repeats:1 pair in
      Alcotest.(check int) "baseline + four modes" 5
        (List.length fig.Arde_harness.Perf.samples);
      let f1 = Arde_harness.Perf.figure1 [ fig ] in
      let f2 = Arde_harness.Perf.figure2 [ fig ] in
      Alcotest.(check bool) "figure1 renders" true (contains f1 "blackscholes");
      Alcotest.(check bool) "figure2 renders" true (contains f2 "blackscholes")

let suite =
  [
    Alcotest.test_case "run_mode tallies" `Quick test_run_mode_tallies;
    Alcotest.test_case "spin mode clean on mini suite" `Quick
      test_spin_mode_clean_on_mini;
    Alcotest.test_case "table rendering columns" `Quick test_render_has_columns;
    Alcotest.test_case "category table" `Quick test_category_table_renders;
    Alcotest.test_case "failures_of" `Quick test_failures_of;
    Alcotest.test_case "parsec inventory table" `Quick test_inventory_table;
    Alcotest.test_case "parsec row shape" `Quick test_parsec_row_shape;
    Alcotest.test_case "perf measurement" `Slow test_perf_measure;
  ]
