(* Record/replay: codec round-trip laws, structured rejection of hostile
   bytes, and the subsystem's correctness oracle — replaying a recording
   yields results byte-identical to the live run that produced it, across
   workloads, modes, seeds, chaos injection and cancellation. *)

module C = Arde.Trace_codec
module D = Arde.Driver
module J = Arde.Json
module W = Arde_workloads
module Prng = Arde_util.Prng

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let law ?(count = 60) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name (QCheck2.Gen.int_range 0 100_000) f)

(* -- base64 -------------------------------------------------------- *)

let prop_base64_roundtrip =
  law "base64 decode ∘ encode = id" (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int rng 80 in
      let s = String.init n (fun _ -> Char.chr (Prng.int rng 256)) in
      Arde.Base64.decode (Arde.Base64.encode s) = Ok s)

let test_base64_strict () =
  let reject what s =
    match Arde.Base64.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s %S" what s
  in
  checks "known vector" "Zm9vYmE=" (Arde.Base64.encode "fooba");
  reject "bad length" "A";
  reject "bad length" "AAAAA";
  reject "invalid character" "AAA!";
  reject "padding in the middle" "AA==AAAA";
  reject "all padding" "====";
  reject "misplaced padding" "A=AA";
  (* non-canonical: bits hidden under the '=' must be zero *)
  reject "dirty padding bits" "AB==";
  reject "dirty padding bits" "AAB=";
  checkb "canonical two-pad accepted" true (Arde.Base64.decode "AQ==" = Ok "\x01")

(* -- random event streams ------------------------------------------ *)

let pick rng xs = List.nth xs (Prng.int rng (List.length xs))

let gen_loc rng =
  {
    Arde.Types.lfunc = pick rng [ "main"; "w"; "a_rather_long_function_name" ];
    lblk = pick rng [ "e"; "loop"; "out"; "" ];
    lidx = Prng.int rng 40 - 8;
  }

let gen_base rng = pick rng [ "x"; "flag"; "m"; "queue"; "" ]

let gen_event rng : Arde.Event.t =
  let tid = Prng.int rng 5 in
  let base = gen_base rng in
  let idx = Prng.int rng 16 - 4 in
  let loc = gen_loc rng in
  match Prng.int rng 19 with
  | 0 | 1 ->
      let spin =
        List.init (Prng.int rng 3) (fun _ ->
            (Prng.int rng 20, Prng.int rng 1000 - 100))
      in
      Arde.Event.Read
        {
          tid;
          base;
          base_id = Prng.int rng 20 - 1;
          idx;
          value = Prng.int rng 10_000 - 5_000;
          loc;
          kind = (if Prng.bool rng then Arde.Event.Plain else Arde.Event.Atomic);
          spin;
        }
  | 2 | 3 ->
      Arde.Event.Write
        {
          tid;
          base;
          base_id = Prng.int rng 20 - 1;
          idx;
          value = Prng.int rng 10_000 - 5_000;
          loc;
          kind = (if Prng.bool rng then Arde.Event.Plain else Arde.Event.Atomic);
        }
  | 4 -> Arde.Event.Lock_acq { tid; base; idx; loc }
  | 5 -> Arde.Event.Lock_rel { tid; base; idx; loc }
  | 6 ->
      Arde.Event.Cv_signal
        {
          tid;
          base;
          idx;
          loc;
          broadcast = Prng.bool rng;
          had_waiter = Prng.bool rng;
        }
  | 7 -> Arde.Event.Cv_wait_begin { tid; base; idx; loc }
  | 8 -> Arde.Event.Cv_wait_return { tid; base; idx; loc }
  | 9 ->
      Arde.Event.Barrier_arrive
        { tid; base; idx; generation = Prng.int rng 8 - 1; loc }
  | 10 ->
      Arde.Event.Barrier_pass
        { tid; base; idx; generation = Prng.int rng 8 - 1; loc }
  | 11 -> Arde.Event.Sem_post_ev { tid; base; idx; loc }
  | 12 -> Arde.Event.Sem_acquire { tid; base; idx; loc }
  | 13 -> Arde.Event.Spawn_ev { parent = tid; child = Prng.int rng 6; loc }
  | 14 -> Arde.Event.Join_return { tid; target = Prng.int rng 6; loc }
  | 15 -> Arde.Event.Thread_start { tid }
  | 16 -> Arde.Event.Thread_exit { tid }
  | 17 ->
      Arde.Event.Spin_enter
        { tid; loop_id = Prng.int rng 30; ctx = Prng.int rng 500 }
  | _ ->
      Arde.Event.Spin_exit
        { tid; loop_id = Prng.int rng 30; ctx = Prng.int rng 500 }

let gen_outcome rng : C.outcome =
  match Prng.int rng 7 with
  | 0 -> C.Finished
  | 1 -> C.Deadlock (List.init (Prng.int rng 4) (fun _ -> Prng.int rng 8))
  | 2 -> C.Fuel_exhausted
  | 3 ->
      C.Livelock
        (List.init (Prng.int rng 3) (fun _ ->
             {
               C.w_tid = Prng.int rng 8;
               w_loop = Prng.int rng 30;
               w_loc = gen_loc rng;
               w_bases = List.init (Prng.int rng 3) (fun _ -> gen_base rng);
             }))
  | 4 ->
      C.Fault
        { ftid = Prng.int rng 8; floc = gen_loc rng; msg = "boom: injected" }
  | 5 ->
      C.Crashed
        ( (if Prng.bool rng then Some (gen_loc rng) else None),
          pick rng [ "detector bug"; "" ] )
  | _ -> C.Cancelled

let gen_trailer rng =
  {
    C.t_outcome = gen_outcome rng;
    t_steps = Prng.int rng 100_000;
    t_check_failures =
      List.init (Prng.int rng 3) (fun _ -> (gen_loc rng, "check failed"));
  }

let gen_section rng ~seed:s_seed =
  let trailer = gen_trailer rng in
  match trailer.C.t_outcome with
  | C.Cancelled -> C.cancelled_section ~seed:s_seed
  | _ ->
      let events = List.init (Prng.int rng 150) (fun _ -> gen_event rng) in
      let s_events, s_hash = C.encode_events events in
      {
        C.s_seed;
        s_n_events = List.length events;
        s_events;
        s_hash;
        s_trailer = trailer;
      }

let gen_header rng =
  {
    C.h_digest = pick rng [ String.make 32 'a'; "00ff00ff" ];
    h_mode = pick rng [ "lib+spin:7"; "drd"; "" ];
    h_options = pick rng [ "{}"; {|{"seeds":[1,2]}|} ];
    h_source = pick rng [ ""; "fuzz"; "a workload with spaces" ];
    h_program = pick rng [ ""; "entry = main\n"; String.make 5_000 'p' ];
  }

(* -- codec round-trip laws ----------------------------------------- *)

let prop_events_roundtrip =
  law "decode ∘ encode = id on random event streams" (fun seed ->
      let rng = Prng.create seed in
      let events = List.init (Prng.int rng 250) (fun _ -> gen_event rng) in
      let s_events, s_hash = C.encode_events events in
      let section =
        {
          C.s_seed = 1;
          s_n_events = List.length events;
          s_events;
          s_hash;
          s_trailer =
            { C.t_outcome = C.Finished; t_steps = 0; t_check_failures = [] };
        }
      in
      match C.decode_events_list section with
      | Ok events' -> events' = events
      | Error _ -> false)

let prop_file_roundtrip =
  law ~count:40 "read_sections ∘ assemble = id on random traces" (fun seed ->
      let rng = Prng.create seed in
      let header = gen_header rng in
      let sections =
        List.init (Prng.int rng 5) (fun i -> gen_section rng ~seed:(i + 1))
      in
      let bytes = C.assemble header sections in
      match C.read_sections bytes with
      | Error _ -> false
      | Ok (header', sections') ->
          header' = header && sections' = sections
          && C.read_header bytes = Ok header
          &&
          (* read_info agrees with the full read on every summary *)
          match C.read_info bytes with
          | Error _ -> false
          | Ok (_, summaries) ->
              List.length summaries = List.length sections
              && List.for_all2
                   (fun y s ->
                     y.C.y_seed = s.C.s_seed
                     && y.C.y_n_events = s.C.s_n_events
                     && y.C.y_bytes = String.length s.C.s_events
                     && y.C.y_outcome = s.C.s_trailer.C.t_outcome
                     && y.C.y_steps = s.C.s_trailer.C.t_steps)
                   summaries sections)

(* -- hostile bytes are structured errors, never a plausible decode -- *)

let small_trace () =
  let rng = Prng.create 7 in
  let header = gen_header rng in
  let events = List.init 40 (fun _ -> gen_event rng) in
  let s_events, s_hash = C.encode_events events in
  let section =
    {
      C.s_seed = 3;
      s_n_events = 40;
      s_events;
      s_hash;
      s_trailer =
        { C.t_outcome = C.Finished; t_steps = 17; t_check_failures = [] };
    }
  in
  (C.assemble header [ section ], s_events)

let test_reject_not_a_trace () =
  (match C.read_header "certainly not a trace" with
  | Error C.Bad_magic -> ()
  | Error e -> Alcotest.failf "wanted Bad_magic, got %s" (C.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted junk");
  match C.read_sections "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted empty input"

let test_reject_future_version () =
  let trace, _ = small_trace () in
  let b = Bytes.of_string trace in
  (* magic is 8 bytes; the version varint follows *)
  Bytes.set b 8 (Char.chr 99);
  match C.read_sections (Bytes.to_string b) with
  | Error (C.Bad_version 99) -> ()
  | Error e ->
      Alcotest.failf "wanted Bad_version 99, got %s" (C.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted a future format version"

let test_reject_every_truncation () =
  let trace, _ = small_trace () in
  let n = String.length trace in
  for len = 0 to n - 1 do
    match C.read_sections (String.sub trace 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted a %d/%d-byte prefix" len n
  done

let test_reject_trailing_garbage () =
  let trace, _ = small_trace () in
  match C.read_sections (trace ^ "\x00") with
  | Error (C.Corrupt _) -> ()
  | Error e -> Alcotest.failf "wanted Corrupt, got %s" (C.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted trailing bytes"

let test_reject_corrupt_body () =
  let trace, s_events = small_trace () in
  (* The encoded event bytes appear verbatim inside the file; flip one
     bit in the middle of them and the per-section hash must catch it. *)
  let needle_at =
    let rec find i =
      if i + String.length s_events > String.length trace then
        Alcotest.fail "event bytes not found in assembled trace"
      else if String.sub trace i (String.length s_events) = s_events then i
      else find (i + 1)
    in
    find 0
  in
  let off = needle_at + (String.length s_events / 2) in
  let b = Bytes.of_string trace in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  match C.read_sections (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hash did not catch a corrupted event body"

let test_reject_oversized_declaration () =
  (* magic, version 1, then a digest string claiming 2^25 bytes. *)
  let buf = Buffer.create 32 in
  Buffer.add_string buf "ARDETRC\x01";
  Buffer.add_char buf '\x01';
  let rec varint n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      varint (n lsr 7)
    end
  in
  varint (1 lsl 25);
  Buffer.add_string buf (String.make 64 'x');
  match C.read_header (Buffer.contents buf) with
  | Error (C.Limit _) -> ()
  | Error e -> Alcotest.failf "wanted Limit, got %s" (C.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted an oversized declared length"

(* -- the replay-identity oracle ------------------------------------ *)

let result_bytes r = J.to_string (D.result_to_json r)

let identity_cases () =
  let all = W.Racey.all () in
  let cats =
    List.sort_uniq compare (List.map (fun c -> c.W.Racey.category) all)
  in
  List.filter_map
    (fun cat ->
      List.find_opt
        (fun c -> c.W.Racey.category = cat && c.W.Racey.threads <= 4)
        all)
    cats

let seeds16 = List.init 16 (fun i -> i + 1)

let record_and_replay ?ctx ~mode ~source program =
  match
    Arde.record ?ctx ~mode ~detect:true ~source (Arde.Input.Program program)
  with
  | Error e -> Alcotest.failf "record: %s" e
  | Ok { D.rec_trace; rec_result = None } ->
      ignore rec_trace;
      Alcotest.fail "record ~detect:true returned no live result"
  | Ok { D.rec_trace; rec_result = Some live } -> (
      match Arde.Recorded.of_string rec_trace with
      | Error e -> Alcotest.failf "recorded trace failed to load: %s" e
      | Ok recorded ->
          let replayed = Arde.detect (Arde.Input.Recorded_trace recorded) in
          (live, replayed, rec_trace))

(* The acceptance matrix: representative unit-suite cases x every
   Table-1 mode x 16 seeds, each checked byte-for-byte. *)
let test_identity_matrix () =
  let options = Arde.Options.make ~seeds:seeds16 ~fuel:400_000 () in
  let ctx = D.ctx ~options () in
  List.iter
    (fun (case : W.Racey.case) ->
      List.iter
        (fun mode ->
          let live, replayed, _ =
            record_and_replay ~ctx ~mode ~source:case.W.Racey.name
              case.W.Racey.program
          in
          checks
            (Printf.sprintf "%s under %s" case.W.Racey.name
               (Arde.Config.mode_name mode))
            (result_bytes live) (result_bytes replayed))
        Arde.Config.all_table1_modes)
    (identity_cases ())

(* A PARSEC program under fuel starvation: Fuel_exhausted seeds must
   replay identically too (their trailers carry the outcome). *)
let test_identity_fuel_exhausted () =
  match W.Parsec.all () with
  | [] -> Alcotest.fail "no parsec programs"
  | (info, program) :: _ ->
      let options =
        Arde.Options.make ~seeds:[ 1; 2; 3; 4 ] ~fuel:3_000 ()
      in
      let live, replayed, _ =
        record_and_replay
          ~ctx:(D.ctx ~options ())
          ~mode:(Arde.Config.Helgrind_spin 7) ~source:info.W.Parsec.pname
          program
      in
      checkb "some seed starved" true
        (live.D.health.D.h_fuel_exhausted > 0
        || live.D.health.D.h_finished > 0);
      checks "fuel-starved replay is byte-identical" (result_bytes live)
        (result_bytes replayed)

(* Chaos: injected machine faults and injected detector crashes truncate
   the recorded stream exactly where they truncated the live engine's,
   so even crashed seeds replay byte-identically. *)
let test_identity_under_chaos () =
  let case = List.hd (identity_cases ()) in
  List.iter
    (fun perturbation ->
      let options =
        Arde.Chaos.apply
          (Arde.Options.make ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8 ] ~fuel:50_000 ())
          perturbation
      in
      let live, replayed, _ =
        record_and_replay
          ~ctx:(D.ctx ~options ())
          ~mode:(Arde.Config.Helgrind_spin 7) ~source:case.W.Racey.name
          case.W.Racey.program
      in
      checks
        (Format.asprintf "replay under %a" Arde.Chaos.pp_perturbation
           perturbation)
        (result_bytes live) (result_bytes replayed))
    [
      Arde.Chaos.Fault_at 25; Arde.Chaos.Crash_at 40;
      Arde.Chaos.Spurious_wakeups;
      Arde.Chaos.Adversarial_policy (Arde.Sched.Chunked 1);
    ]

(* Cancellation mid-run: the cancelled seeds are recorded as such and
   replay as such. *)
let test_identity_under_cancellation () =
  let case = List.hd (identity_cases ()) in
  let options = Arde.Options.make ~seeds:seeds16 ~fuel:50_000 ~jobs:1 () in
  let fired = ref 0 in
  let should_stop () =
    incr fired;
    !fired > 3
  in
  let ctx = D.ctx ~options ~should_stop () in
  let live, replayed, _ =
    record_and_replay ~ctx ~mode:(Arde.Config.Helgrind_spin 7)
      ~source:case.W.Racey.name case.W.Racey.program
  in
  checkb "some seed was cancelled" true (live.D.health.D.h_cancelled > 0);
  checks "cancelled run replays byte-identically" (result_bytes live)
    (result_bytes replayed)

(* The cheap recording mode (no engine attached) must still replay to
   exactly what a live detection run of the same options produces. *)
let test_record_without_detect_matches_live () =
  let case = List.nth (identity_cases ()) 1 in
  let options = Arde.Options.make ~seeds:[ 1; 2; 3; 4 ] ~fuel:400_000 () in
  let mode = Arde.Config.Helgrind_spin 7 in
  let ctx = D.ctx ~options () in
  match
    Arde.record ~ctx ~mode ~source:case.W.Racey.name
      (Arde.Input.Program case.W.Racey.program)
  with
  | Error e -> Alcotest.failf "record: %s" e
  | Ok { D.rec_trace; rec_result } -> (
      checkb "no live result without ~detect" true (rec_result = None);
      match Arde.Recorded.of_string rec_trace with
      | Error e -> Alcotest.failf "trace load: %s" e
      | Ok recorded ->
          let replayed = Arde.detect (Arde.Input.Recorded_trace recorded) in
          let live =
            Arde.detect ~ctx ~mode (Arde.Input.Program case.W.Racey.program)
          in
          checks "record-then-replay equals the live run" (result_bytes live)
            (result_bytes replayed))

(* -- the typed loader's cross-checks ------------------------------- *)

let recorded_fixture () =
  let case = List.hd (identity_cases ()) in
  let options = Arde.Options.make ~seeds:[ 1; 2 ] ~fuel:100_000 () in
  match
    Arde.record
      ~ctx:(D.ctx ~options ())
      ~mode:(Arde.Config.Helgrind_spin 7) ~source:"fixture"
      (Arde.Input.Program case.W.Racey.program)
  with
  | Error e -> Alcotest.failf "record: %s" e
  | Ok { D.rec_trace; _ } -> rec_trace

let test_loader_rejects_digest_mismatch () =
  let trace = recorded_fixture () in
  match C.read_sections trace with
  | Error e -> Alcotest.failf "read_sections: %s" (C.error_to_string e)
  | Ok (h, sections) -> (
      (* flip one hex digit of the claimed digest; the program itself is
         untouched, so the loader's cross-check must notice *)
      let d = Bytes.of_string h.C.h_digest in
      Bytes.set d 0 (if Bytes.get d 0 = '0' then '1' else '0');
      let tampered =
        C.assemble { h with C.h_digest = Bytes.to_string d } sections
      in
      match Arde.Recorded.of_string tampered with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "loaded a trace whose digest does not match")

let test_loader_rejects_unknown_mode () =
  let trace = recorded_fixture () in
  match C.read_sections trace with
  | Error e -> Alcotest.failf "read_sections: %s" (C.error_to_string e)
  | Ok (h, sections) -> (
      let tampered = C.assemble { h with C.h_mode = "warp:9" } sections in
      match Arde.Recorded.of_string tampered with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "loaded a trace with an unknown mode")

let test_mode_conflict_fails_closed () =
  let trace = recorded_fixture () in
  match Arde.Recorded.of_string trace with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok recorded ->
      let result =
        Arde.detect ~mode:Arde.Config.Drd (Arde.Input.Recorded_trace recorded)
      in
      checkb "conflicting mode yields a Failed health" true
        (result.D.health.D.h_verdict = D.Failed)

let test_trace_info () =
  let trace = recorded_fixture () in
  match C.read_info trace with
  | Error e -> Alcotest.failf "read_info: %s" (C.error_to_string e)
  | Ok (h, summaries) ->
      checks "mode survives" "lib+spin:7" h.C.h_mode;
      checks "source survives" "fixture" h.C.h_source;
      checki "one summary per seed" 2 (List.length summaries);
      List.iter
        (fun y ->
          checkb "positive event count" true (y.C.y_n_events > 0);
          checkb "events have bytes" true (y.C.y_bytes > 0))
        summaries;
      (* and the typed view agrees *)
      (match Arde.Recorded.of_string trace with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok r ->
          Alcotest.(check (list int)) "seeds" [ 1; 2 ] (Arde.Recorded.seeds r);
          checkb "n_events totals the summaries" true
            (Arde.Recorded.n_events r
            = List.fold_left (fun a y -> a + y.C.y_n_events) 0 summaries))

let suite =
  [
    prop_base64_roundtrip;
    Alcotest.test_case "base64 strict decode" `Quick test_base64_strict;
    prop_events_roundtrip;
    prop_file_roundtrip;
    Alcotest.test_case "reject non-traces" `Quick test_reject_not_a_trace;
    Alcotest.test_case "reject future version" `Quick
      test_reject_future_version;
    Alcotest.test_case "reject every truncation" `Quick
      test_reject_every_truncation;
    Alcotest.test_case "reject trailing garbage" `Quick
      test_reject_trailing_garbage;
    Alcotest.test_case "reject corrupt event body" `Quick
      test_reject_corrupt_body;
    Alcotest.test_case "reject oversized declaration" `Quick
      test_reject_oversized_declaration;
    Alcotest.test_case "replay identity: cases x modes x 16 seeds" `Slow
      test_identity_matrix;
    Alcotest.test_case "replay identity under fuel starvation" `Quick
      test_identity_fuel_exhausted;
    Alcotest.test_case "replay identity under chaos" `Quick
      test_identity_under_chaos;
    Alcotest.test_case "replay identity under cancellation" `Quick
      test_identity_under_cancellation;
    Alcotest.test_case "record without detect matches live" `Quick
      test_record_without_detect_matches_live;
    Alcotest.test_case "loader rejects digest mismatch" `Quick
      test_loader_rejects_digest_mismatch;
    Alcotest.test_case "loader rejects unknown mode" `Quick
      test_loader_rejects_unknown_mode;
    Alcotest.test_case "mode conflict fails closed" `Quick
      test_mode_conflict_fails_closed;
    Alcotest.test_case "trace info" `Quick test_trace_info;
  ]
