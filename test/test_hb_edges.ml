(* Happens-before edge correctness per synchronization primitive, checked
   end-to-end: a program that is race-free only through primitive X must
   stay quiet in the modes that can see X, including the universal
   detector over the lowered form. *)

open Arde.Builder

let bases ?(mode = Arde.Config.Nolib_spin 7) ?(seeds = 5) p =
  let options = Arde.Options.make ~seeds:(List.init seeds (fun i -> i + 1)) () in
  Arde.Driver.racy_bases
    (Arde.detect ~ctx:(Arde.Driver.ctx ~options ()) ~mode (Arde.Input.Program p))

let all_modes =
  [
    Arde.Config.Helgrind_lib; Arde.Config.Helgrind_spin 7;
    Arde.Config.Nolib_spin 7; Arde.Config.Drd;
  ]

(* Barrier ordering must be all-to-all: after the barrier each thread
   reads its neighbour's pre-barrier cell. *)
let barrier_all_to_all =
  let n = 4 in
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "e"
          [
            muli "v" (r "i") (imm 11);
            store (gi "a" (r "i")) (r "v");
            barrier_wait (g "bar");
            addi "j0" (r "i") (imm 1);
            modi "j" (r "j0") (imm n);
            load "nb" (gi "a" (r "j"));
            store (gi "out" (r "i")) (r "nb");
          ]
          exit_t;
      ]
  in
  Arde_workloads.Racey_base.harness
    ~globals:[ global "bar" (); global "a" ~size:n (); global "out" ~size:n () ]
    ~before:[ barrier_init (g "bar") (imm n) ]
    ~workers:(List.init n (fun i -> ("w", [ imm i ])))
    [ w ]

let test_barrier_all_to_all () =
  List.iter
    (fun mode ->
      Alcotest.(check (list string))
        (Arde.Config.mode_name mode)
        [] (bases ~mode barrier_all_to_all))
    all_modes

(* Semaphore hand-off: the post's pre-history must cover the waiter. *)
let sem_handoff =
  let producer =
    func "producer"
      [ blk "e" [ store (g "payload") (imm 3); sem_post (g "s") ] exit_t ]
  in
  let consumer =
    func "consumer"
      [
        blk "e"
          [
            sem_wait (g "s");
            load "v" (g "payload");
            addi "v1" (r "v") (imm 1);
            store (g "payload") (r "v1");
          ]
          exit_t;
      ]
  in
  Arde_workloads.Racey_base.harness
    ~globals:[ global "s" (); global "payload" () ]
    ~workers:[ ("producer", []); ("consumer", []) ]
    [ producer; consumer ]

let test_sem_handoff () =
  List.iter
    (fun mode ->
      Alcotest.(check (list string))
        (Arde.Config.mode_name mode)
        [] (bases ~mode sem_handoff))
    all_modes

(* Broadcast must wake and order every waiter, not just one. *)
let broadcast_gate =
  let n = 5 in
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "e" [ lock (g "m") ] (goto "t");
        blk "t" [ load "go" (g "go") ] (br (r "go") "run" "sl");
        blk "sl" [ wait (g "cv") (g "m") ] (goto "t");
        blk "run"
          [ unlock (g "m"); load "d" (g "data"); store (gi "out" (r "i")) (r "d") ]
          exit_t;
      ]
  in
  Arde_workloads.Racey_base.harness
    ~globals:
      [
        global "m" (); global "cv" (); global "go" (); global "data" ();
        global "out" ~size:n ();
      ]
    ~before:
      [
        store (g "data") (imm 77);
        lock (g "m");
        store (g "go") (imm 1);
        unlock (g "m");
        broadcast (g "cv");
      ]
    ~workers:(List.init n (fun i -> ("w", [ imm i ])))
    [ w ]

let test_broadcast_orders_all_waiters () =
  List.iter
    (fun mode ->
      Alcotest.(check (list string))
        (Arde.Config.mode_name mode)
        [] (bases ~mode broadcast_gate))
    all_modes

(* Spawn edges are kernel-level and survive even in nolib mode. *)
let spawn_edge =
  let w =
    func "w"
      [ blk "e" [ load "v" (g "cfg"); store (g "cfg") (r "v") ] exit_t ]
  in
  Arde_workloads.Racey_base.harness
    ~globals:[ global "cfg" () ]
    ~before:[ store (g "cfg") (imm 9) ]
    ~workers:[ ("w", []) ]
    [ w ]

let test_spawn_edge_in_nolib () =
  Alcotest.(check (list string)) "parent's pre-spawn writes are ordered" []
    (bases spawn_edge)

(* A spin edge orders only the spinning thread, never bystanders: T3
   races with T2 on y and must stay reported in every mode. *)
let bystander =
  let producer =
    func "producer" [ blk "e" [ store (g "flag") (imm 1) ] exit_t ]
  in
  let spinner =
    func "spinner"
      (blk "e" [] (goto "sp_t")
      :: Arde_workloads.Racey_base.spin_flag ~tag:"sp" ~flag:(g "flag") ~window:2
           ~exit_lbl:"work"
      @ [ blk "work" (Arde_workloads.Racey_base.bump (g "y")) exit_t ])
  in
  let third = func "third" [ blk "e" (Arde_workloads.Racey_base.bump (g "y")) exit_t ] in
  Arde_workloads.Racey_base.harness
    ~globals:[ global "flag" (); global "y" () ]
    ~workers:[ ("producer", []); ("spinner", []); ("third", []) ]
    [ producer; spinner; third ]

let test_spin_edge_does_not_cover_bystanders () =
  List.iter
    (fun mode ->
      Alcotest.(check bool)
        (Arde.Config.mode_name mode ^ " still reports y")
        true
        (List.mem "y" (bases ~mode bystander)))
    [ Arde.Config.Helgrind_spin 7; Arde.Config.Nolib_spin 7 ]

(* Lowered joins stay recoverable even under the futex style. *)
let test_futex_join_recovered () =
  let p = spawn_edge in
  let options =
    Arde.Options.make ~seeds:[ 1; 2; 3 ] ~lower_style:Arde.Lower.Futex ()
  in
  (* main reads nothing after join here, so extend: worker writes, main
     checks after join through the harness [after] — reuse join_result. *)
  ignore p;
  let c =
    match Arde_workloads.Racey.find "join_result/2" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  Alcotest.(check (list string)) "join ordered under futex lowering" []
    (Arde.Driver.racy_bases
       (Arde.detect
          ~ctx:(Arde.Driver.ctx ~options ())
          ~mode:(Arde.Config.Nolib_spin 7) (Arde.Input.Program c)))

(* Detector memory accounting grows with distinct cells touched. *)
let test_memory_accounting_monotone () =
  let prog cells =
    let stores =
      List.concat_map
        (fun i -> [ store (gi "a" (imm i)) (imm i) ])
        (List.init cells Fun.id)
    in
    program
      ~globals:[ global "a" ~size:64 () ]
      ~entry:"main"
      [ func "main" [ blk "e" stores exit_t ] ]
  in
  let words cells =
    let engine =
      Arde.Engine.create (Arde.Config.make Arde.Config.Helgrind_lib)
        ~instrument:None
    in
    let cfg =
      { Arde.Machine.default_config with observer = Arde.Engine.observer engine }
    in
    ignore (Arde.Machine.run_program cfg (prog cells));
    (Arde.Engine.memory_words engine, Arde.Engine.n_shadow_cells engine)
  in
  let w8, c8 = words 8 and w48, c48 = words 48 in
  Alcotest.(check int) "cells tracked (small)" 9 c8 (* + __thread_done[0] *);
  Alcotest.(check int) "cells tracked (large)" 49 c48;
  Alcotest.(check bool) "footprint grows" true (w48 > w8)

let suite =
  [
    Alcotest.test_case "barrier is all-to-all" `Quick test_barrier_all_to_all;
    Alcotest.test_case "semaphore hand-off" `Quick test_sem_handoff;
    Alcotest.test_case "broadcast orders all waiters" `Quick
      test_broadcast_orders_all_waiters;
    Alcotest.test_case "spawn edge survives nolib" `Quick test_spawn_edge_in_nolib;
    Alcotest.test_case "spin edges don't cover bystanders" `Quick
      test_spin_edge_does_not_cover_bystanders;
    Alcotest.test_case "futex join recovered" `Quick test_futex_join_recovered;
    Alcotest.test_case "memory accounting monotone" `Quick
      test_memory_accounting_monotone;
  ]
