(* Integration: the paper's headline shapes must hold on the bundled
   workloads.  These are the claims EXPERIMENTS.md records numerically;
   here we assert the qualitative orderings so regressions fail loudly. *)

module SE = Arde_harness.Suite_experiment
module Config = Arde.Config
module Classify = Arde.Classify

(* One shared suite run (3 seeds over 120 cases per mode). *)
let rows =
  lazy
    (let r, _ = SE.table1 () in
     r)

let tally mode =
  let r = List.find (fun m -> m.SE.mode = mode) (Lazy.force rows) in
  r.SE.tally

let test_spin_slashes_false_alarms () =
  let lib = tally Config.Helgrind_lib in
  let spin = tally (Config.Helgrind_spin 7) in
  Alcotest.(check bool) "most false alarms removed" true
    (spin.Classify.false_alarms * 3 < lib.Classify.false_alarms);
  Alcotest.(check bool) "no new misses beyond one or two" true
    (spin.Classify.missed <= lib.Classify.missed + 2)

let test_nolib_costs_little () =
  let spin = tally (Config.Helgrind_spin 7) in
  let nolib = tally (Config.Nolib_spin 7) in
  Alcotest.(check bool) "removing the library costs few false alarms" true
    (nolib.Classify.false_alarms - spin.Classify.false_alarms <= 2
     && nolib.Classify.false_alarms >= spin.Classify.false_alarms)

let test_drd_tradeoff () =
  let lib = tally Config.Helgrind_lib in
  let spin = tally (Config.Helgrind_spin 7) in
  let drd = tally Config.Drd in
  Alcotest.(check bool) "DRD misses the most races" true
    (drd.Classify.missed > lib.Classify.missed
     && drd.Classify.missed > spin.Classify.missed);
  Alcotest.(check bool) "DRD has fewer false alarms than the plain hybrid" true
    (drd.Classify.false_alarms <= lib.Classify.false_alarms)

let test_spin_mode_beats_everyone () =
  let spin = tally (Config.Helgrind_spin 7) in
  List.iter
    (fun mode ->
      let other = tally mode in
      Alcotest.(check bool)
        (Config.mode_name mode ^ " analyzed fewer cases correctly")
        true
        (spin.Classify.correct >= other.Classify.correct))
    [ Config.Helgrind_lib; Config.Nolib_spin 7; Config.Drd ]

let test_window_sweep_shape () =
  let krows, _ = SE.table2 () in
  let correct k =
    let r = List.find (fun m -> m.SE.mode = Config.Helgrind_spin k) krows in
    r.SE.tally.Classify.correct
  in
  Alcotest.(check bool) "k=3 < k=6 < k=7" true
    (correct 3 < correct 7 && correct 6 < correct 7 && correct 3 <= correct 6);
  Alcotest.(check int) "k=8 adds nothing over k=7" (correct 7) (correct 8)

(* ---- PARSEC shapes (single seed: fast) ---- *)

let parsec_contexts name mode =
  match Arde_workloads.Parsec.find name with
  | None -> Alcotest.failf "program %s missing" name
  | Some (info, program) ->
      let options =
        Arde.Options.make ~seeds:[ 1 ] ~sensitivity:Arde.Msm.Long_running
          ~lower_style:info.Arde_workloads.Parsec.nolib_style ~fuel:4_000_000
          ()
      in
      let result =
        Arde.detect ~ctx:(Arde.Driver.ctx ~options ()) ~mode
          (Arde.Input.Program program)
      in
      (List.hd result.Arde.Driver.runs).Arde.Driver.sr_contexts

let test_clean_programs_stay_clean () =
  List.iter
    (fun name ->
      List.iter
        (fun mode ->
          Alcotest.(check int)
            (Printf.sprintf "%s under %s" name (Config.mode_name mode))
            0
            (parsec_contexts name mode))
        Config.all_table1_modes)
    [ "blackscholes"; "swaptions"; "fluidanimate"; "canneal" ]

let test_freqmine_unknown_runtime () =
  Alcotest.(check bool) "invisible runtime floods the plain hybrid" true
    (parsec_contexts "freqmine" Config.Helgrind_lib > 50);
  Alcotest.(check bool) "spin detection recovers it" true
    (parsec_contexts "freqmine" (Config.Helgrind_spin 7) <= 6)

let test_dedup_signature () =
  (* The paper's sharpest row: hybrid floods, spin fixes, DRD is clean. *)
  Alcotest.(check bool) "hybrid saturates" true
    (parsec_contexts "dedup" Config.Helgrind_lib >= 900);
  Alcotest.(check int) "spin mode silent" 0
    (parsec_contexts "dedup" (Config.Helgrind_spin 7));
  Alcotest.(check int) "DRD silent (lock-order edges)" 0
    (parsec_contexts "dedup" Config.Drd)

let test_bodytrack_futex_residue () =
  (* CV gates over a futex-style runtime: the universal detector keeps
     most of the plain hybrid's noise, the spin-aware one drops it. *)
  let lib = parsec_contexts "bodytrack" Config.Helgrind_lib in
  let spin = parsec_contexts "bodytrack" (Config.Helgrind_spin 7) in
  let nolib = parsec_contexts "bodytrack" (Config.Nolib_spin 7) in
  Alcotest.(check bool) "spin mode almost clean" true (spin * 4 < lib);
  Alcotest.(check bool) "nolib retains most of the noise" true
    (nolib > spin && nolib > lib / 2)

let test_raytrace_universal_recovery () =
  Alcotest.(check bool) "unknown threading library floods the hybrid" true
    (parsec_contexts "raytrace" Config.Helgrind_lib > 50);
  Alcotest.(check int) "the universal detector recovers everything" 0
    (parsec_contexts "raytrace" (Config.Nolib_spin 7))

let suite =
  [
    Alcotest.test_case "spin detection slashes false alarms" `Slow
      test_spin_slashes_false_alarms;
    Alcotest.test_case "removing the library costs ~1 false alarm" `Slow
      test_nolib_costs_little;
    Alcotest.test_case "DRD trade-off (few FAs, many misses)" `Slow
      test_drd_tradeoff;
    Alcotest.test_case "lib+spin(7) is the best configuration" `Slow
      test_spin_mode_beats_everyone;
    Alcotest.test_case "window sweep: rise then plateau at 7" `Slow
      test_window_sweep_shape;
    Alcotest.test_case "clean PARSEC programs stay clean" `Slow
      test_clean_programs_stay_clean;
    Alcotest.test_case "freqmine: unknown runtime recovered" `Slow
      test_freqmine_unknown_runtime;
    Alcotest.test_case "dedup: hybrid floods, spin and DRD silent" `Slow
      test_dedup_signature;
    Alcotest.test_case "bodytrack: futex runtime resists nolib" `Slow
      test_bodytrack_futex_residue;
    Alcotest.test_case "raytrace: universal detector recovers" `Slow
      test_raytrace_universal_recovery;
  ]
