(* The optimized engine's contract: byte-identical results to the frozen
   {!Engine_ref} oracle.  Every test here drives the identical input —
   full pipeline runs over the workload catalog, chaos-injected runs,
   fuzzed programs, or hand-fed event streams — through both engines and
   compares the serialized output:

   - full results (merged report, per-seed spin edges, health verdict)
     across the catalog × 16 seeds × every Table-1 mode;
   - the same under injected perturbations (crashes, faults, spurious
     wakeups, starvation, hostile schedules);
   - differential fuzzing over generated programs;
   - epoch promote/demote edge cases the flat representation could get
     wrong: same-thread re-reads, read-shared → write report ordering,
     atomic chains, long-running priming;
   - the memory accounting fix: open spin-accumulator tables count
     toward [memory_words] in both engines. *)

module D = Arde.Driver
module O = Arde.Options
module J = Arde.Json
module C = Arde.Config
module E = Arde.Engine
module ER = Arde.Engine_ref
module Ev = Arde_runtime.Event
module Sh = Arde.Shadow_epoch

let seeds16 = List.init 16 (fun i -> i + 1)

(* The two engines legitimately differ in live-heap footprint (epochs vs
   clock tables) and a [jobs] clamp note depends on the host, so blank
   both before comparing; everything else — reports, spin edges, per-seed
   outcomes, health — must match byte for byte. *)
let normalize r =
  {
    r with
    D.runs = List.map (fun sr -> { sr with D.sr_memory_words = 0 }) r.D.runs;
    D.health =
      {
        r.D.health with
        D.h_notes =
          List.filter
            (fun n ->
              not (String.length n >= 5 && String.sub n 0 5 = "jobs:"))
            r.D.health.D.h_notes;
      };
  }

let result_bytes r = J.to_string (D.result_to_json (normalize r))

let modes = C.all_table1_modes @ [ C.Nolib_spin_locks 7 ]

let check_diff ?options name mode p =
  let input = Arde.Input.Program p in
  let opt = D.run ~ctx:(D.ctx ?options ~engine:D.opt_engine ()) ~mode input in
  let ref_ = D.run ~ctx:(D.ctx ?options ~engine:D.ref_engine ()) ~mode input in
  Alcotest.(check string)
    (Printf.sprintf "%s under %s: optimized = reference" name
       (C.mode_name mode))
    (result_bytes ref_) (result_bytes opt)

(* ------------------------------------------------------------------ *)
(* Catalog × seeds × modes                                             *)

let test_catalog_differential () =
  let options = O.make ~seeds:seeds16 ~fuel:150_000 () in
  List.iter
    (fun (c : Arde_workloads.Racey.case) ->
      List.iter (fun mode -> check_diff ~options c.name mode c.program) modes)
    (Arde_workloads.Racey.all ())

let test_parsec_differential () =
  let options = O.make ~seeds:[ 1; 2; 3; 4 ] ~fuel:150_000 () in
  List.iter
    (fun name ->
      match Arde_workloads.Parsec.find name with
      | None -> Alcotest.failf "unknown PARSEC workload %s" name
      | Some (_info, p) ->
          List.iter (fun mode -> check_diff ~options name mode p) modes)
    [ "streamcluster"; "x264"; "bodytrack"; "blackscholes" ]

(* ------------------------------------------------------------------ *)
(* Chaos-injected runs                                                 *)

let test_chaos_differential () =
  let base = O.make ~seeds:[ 1; 2; 3; 4; 5 ] ~fuel:100_000 () in
  let perturbations =
    [
      Arde.Chaos.Crash_at 40;
      Arde.Chaos.Fault_at 25;
      Arde.Chaos.Spurious_wakeups;
      Arde.Chaos.Starve_fuel 2_000;
      Arde.Chaos.Adversarial_policy Arde_runtime.Sched.Uniform;
      Arde.Chaos.Shift_seeds 3;
    ]
  in
  let cases =
    List.filteri (fun i _ -> i mod 24 = 0) (Arde_workloads.Racey.all ())
  in
  List.iter
    (fun (c : Arde_workloads.Racey.case) ->
      List.iter
        (fun p ->
          let options = Arde.Chaos.apply base p in
          List.iter
            (fun mode ->
              check_diff ~options
                (Format.asprintf "%s/%a" c.name Arde.Chaos.pp_perturbation p)
                mode c.program)
            [ C.Helgrind_lib; C.Nolib_spin 7 ])
        perturbations)
    cases

(* ------------------------------------------------------------------ *)
(* Differential fuzzing                                                *)

let test_fuzz_differential () =
  let options = O.make ~seeds:[ 1; 2; 3 ] ~fuel:100_000 () in
  for pseed = 1 to 12 do
    let p = Test_fuzz.gen_program pseed in
    List.iter
      (fun mode ->
        check_diff ~options (Printf.sprintf "fuzz#%d" pseed) mode p)
      [ C.Helgrind_lib; C.Helgrind_spin 7; C.Nolib_spin 7; C.Drd ]
  done

(* ------------------------------------------------------------------ *)
(* Epoch representation edge cases                                     *)

let loc_at i =
  { Arde.Types.lfunc = "f"; lblk = Printf.sprintf "b%d" i; lidx = i }

let test_epoch_same_thread_reread () =
  let sh = Sh.create () in
  let c = Sh.cell sh ~base_id:0 ~base:"x" ~idx:0 in
  Sh.record_read c ~tid:1 ~clk:3 ~loc:(loc_at 0);
  Sh.record_read c ~tid:1 ~clk:5 ~loc:(loc_at 1);
  Alcotest.(check int) "same-thread re-read stays a single epoch" 1 c.Sh.rd_tid;
  Alcotest.(check int) "epoch clock advanced" 5 c.Sh.rd_clk;
  Alcotest.(check (list int)) "no promoted list" []
    (List.map (fun (r : Sh.read) -> r.Sh.r_tid) c.Sh.rd_list)

let test_epoch_promote_order () =
  let sh = Sh.create () in
  let c = Sh.cell sh ~base_id:0 ~base:"x" ~idx:0 in
  Sh.record_read c ~tid:1 ~clk:3 ~loc:(loc_at 0);
  Sh.record_read c ~tid:2 ~clk:4 ~loc:(loc_at 1);
  Alcotest.(check int) "promoted" Sh.promoted c.Sh.rd_tid;
  Alcotest.(check (list int)) "newest first, like the reference list"
    [ 2; 1 ]
    (List.map (fun (r : Sh.read) -> r.Sh.r_tid) c.Sh.rd_list);
  (* the accessor's old entry is replaced wherever it sits *)
  Sh.record_read c ~tid:1 ~clk:7 ~loc:(loc_at 2);
  Alcotest.(check (list int)) "tid 1 re-read moves to the front" [ 1; 2 ]
    (List.map (fun (r : Sh.read) -> r.Sh.r_tid) c.Sh.rd_list);
  Sh.record_read c ~tid:1 ~clk:9 ~loc:(loc_at 3);
  Alcotest.(check (list int)) "head replacement keeps one entry per thread"
    [ 1; 2 ]
    (List.map (fun (r : Sh.read) -> r.Sh.r_tid) c.Sh.rd_list);
  (match c.Sh.rd_list with
  | { Sh.r_clk; _ } :: _ ->
      Alcotest.(check int) "head carries the newest clock" 9 r_clk
  | [] -> Alcotest.fail "promoted list vanished");
  Sh.clear_reads c;
  Alcotest.(check int) "a write demotes to the empty epoch" Sh.none c.Sh.rd_tid;
  Alcotest.(check int) "and empties the list" 0 (List.length c.Sh.rd_list)

(* Hand-fed event streams through both engines: the report (and its
   internal insertion order, which drives dedup and the cap) must match
   byte for byte. *)
let reports_equal_on name cfg events =
  let e = E.create cfg ~instrument:None in
  let r = ER.create cfg ~instrument:None in
  List.iter (E.observer e) events;
  List.iter (ER.observer r) events;
  Alcotest.(check string) name
    (J.to_string (Arde.Report.to_json (ER.report r)))
    (J.to_string (Arde.Report.to_json (E.report e)));
  Alcotest.(check int) (name ^ ": spin edges") (ER.n_spin_edges r)
    (E.n_spin_edges e);
  (e, r)

let rd ?(kind = Ev.Plain) ?(spin = []) tid i =
  Ev.Read { tid; base = "g"; base_id = -1; idx = 0; value = 0;
            loc = loc_at i; kind; spin }

let wr ?(kind = Ev.Plain) tid i =
  Ev.Write { tid; base = "g"; base_id = -1; idx = 0; value = 1;
             loc = loc_at i; kind }

let start tid = Ev.Thread_start { tid }

let test_read_shared_then_write () =
  (* two concurrent readers, then an unordered write: the warning must
     list both reads, newest first — the reference insertion order *)
  ignore
    (reports_equal_on "read-shared -> write report order"
       (C.make C.Helgrind_lib)
       [ start 0; start 1; start 2; rd 1 1; rd 2 2; wr 0 3; rd 1 4; wr 0 5 ])

let test_atomic_chain () =
  (* atomic release/acquire chains order the plain accesses around them
     when atomics count as sync (spin modes) — and don't when they don't *)
  List.iter
    (fun mode ->
      ignore
        (reports_equal_on
           (Printf.sprintf "atomic chain under %s" (C.mode_name mode))
           (C.make mode)
           [
             start 0; start 1;
             wr 0 1; wr ~kind:Ev.Atomic 0 2;
             rd ~kind:Ev.Atomic 1 3; rd 1 4;
             wr ~kind:Ev.Atomic 1 5; rd ~kind:Ev.Atomic 0 6; wr 0 7;
           ]))
    [ C.Helgrind_lib; C.Nolib_spin 7; C.Drd ]

let test_long_running_priming () =
  (* long-running sensitivity: the first would-be warning arms the cell
     silently, the second fires — in both engines, at the same access *)
  let cfg = C.make ~sensitivity:Arde.Msm.Long_running C.Helgrind_lib in
  let e, r =
    reports_equal_on "long-running priming" cfg
      [ start 0; start 1; wr 0 1; wr 1 2; wr 0 3; wr 1 4 ]
  in
  Alcotest.(check bool) "something was reported after priming" true
    (Arde.Report.n_contexts (E.report e) > 0);
  ignore r

let test_spin_epoch_demotion () =
  (* a spinning read records the writer's clock; the write in between
     demotes the read epoch — spin edges must still match *)
  let cfg = C.make (C.Nolib_spin 7) in
  ignore
    (reports_equal_on "spin record across demotion" cfg
       [
         start 0; start 1;
         wr 0 1;
         Ev.Spin_enter { tid = 1; loop_id = 0; ctx = 7 };
         rd ~spin:[ (0, 7) ] 1 2;
         wr 0 3;
         rd ~spin:[ (0, 7) ] 1 4;
         Ev.Spin_exit { tid = 1; loop_id = 0; ctx = 7 };
         rd 1 5;
       ])

(* ------------------------------------------------------------------ *)
(* memory_words counts open spin accumulators (the accounting fix)     *)

let test_memory_words_spin_acc () =
  let events_open =
    [
      start 0; start 1;
      wr 0 1;
      Ev.Spin_enter { tid = 1; loop_id = 0; ctx = 3 };
      rd ~spin:[ (0, 3) ] 1 2;
    ]
  in
  let close = [ Ev.Spin_exit { tid = 1; loop_id = 0; ctx = 3 } ] in
  let measure mk_observe mk_words create =
    let t = create () in
    List.iter (mk_observe t) events_open;
    let opened = mk_words t in
    List.iter (mk_observe t) close;
    (opened, mk_words t)
  in
  let cfg = C.make (C.Nolib_spin 7) in
  let opt_open, opt_closed =
    measure E.observer E.memory_words (fun () -> E.create cfg ~instrument:None)
  in
  let ref_open, ref_closed =
    measure ER.observer ER.memory_words (fun () ->
        ER.create cfg ~instrument:None)
  in
  Alcotest.(check bool)
    "optimized: open spin accumulator adds words" true
    (opt_open > opt_closed);
  Alcotest.(check bool)
    "reference: open spin accumulator adds words" true
    (ref_open > ref_closed)

let suite =
  [
    Alcotest.test_case "catalog x 16 seeds x modes differential" `Slow
      test_catalog_differential;
    Alcotest.test_case "PARSEC differential" `Slow test_parsec_differential;
    Alcotest.test_case "chaos-injected differential" `Slow
      test_chaos_differential;
    Alcotest.test_case "fuzzed-program differential" `Slow
      test_fuzz_differential;
    Alcotest.test_case "epoch: same-thread re-read" `Quick
      test_epoch_same_thread_reread;
    Alcotest.test_case "epoch: promote order and demotion" `Quick
      test_epoch_promote_order;
    Alcotest.test_case "read-shared then write" `Quick
      test_read_shared_then_write;
    Alcotest.test_case "atomic chains" `Quick test_atomic_chain;
    Alcotest.test_case "long-running priming" `Quick
      test_long_running_priming;
    Alcotest.test_case "spin record across demotion" `Quick
      test_spin_epoch_demotion;
    Alcotest.test_case "memory_words counts spin accumulators" `Quick
      test_memory_words_spin_acc;
  ]
