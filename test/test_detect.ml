(* Detector components (lockset, state machine, reports) and end-to-end
   detector behaviour on crafted programs. *)

open Arde.Builder
module Lockset = Arde.Lockset
module Msm = Arde.Msm
module Report = Arde.Report

(* ---- lockset ---- *)

let test_lockset_top () =
  Alcotest.(check bool) "top is not empty" false (Lockset.is_empty Lockset.top);
  Alcotest.(check bool) "top contains anything" true
    (Lockset.mem ("m", 0) Lockset.top)

let test_lockset_inter () =
  let a = Lockset.of_list [ ("m", 0); ("n", 0) ] in
  let b = Lockset.of_list [ ("n", 0); ("p", 1) ] in
  let i = Lockset.inter a b in
  Alcotest.(check (option (list (pair string int)))) "intersection"
    (Some [ ("n", 0) ]) (Lockset.to_list i);
  Alcotest.(check bool) "inter with top is identity" true
    (Lockset.to_list (Lockset.inter Lockset.top a) = Lockset.to_list a)

let test_lockset_empty () =
  let e = Lockset.of_list [] in
  Alcotest.(check bool) "empty set is empty" true (Lockset.is_empty e);
  Alcotest.(check bool) "disjoint sets intersect to empty" true
    (Lockset.is_empty
       (Lockset.inter (Lockset.of_list [ ("a", 0) ]) (Lockset.of_list [ ("b", 0) ])))

let test_held_tracking () =
  let h = Lockset.Held.create () in
  Lockset.Held.acquire h 1 ("m", 0);
  Lockset.Held.acquire h 1 ("n", 0);
  Lockset.Held.release h 1 ("m", 0);
  Alcotest.(check (option (list (pair string int)))) "held after release"
    (Some [ ("n", 0) ])
    (Lockset.to_list (Lockset.Held.current h 1));
  Alcotest.(check bool) "other thread holds nothing" true
    (Lockset.is_empty (Lockset.Held.current h 2))

(* ---- memory state machine ---- *)

let test_msm_transitions () =
  let t = Msm.transition in
  Alcotest.(check bool) "virgin -> exclusive" true
    (t Msm.Virgin ~tid:3 ~write:true ~ordered:false = Msm.Exclusive 3);
  Alcotest.(check bool) "exclusive stays with owner" true
    (t (Msm.Exclusive 3) ~tid:3 ~write:true ~ordered:false = Msm.Exclusive 3);
  Alcotest.(check bool) "ordered handover transfers ownership" true
    (t (Msm.Exclusive 3) ~tid:4 ~write:true ~ordered:true = Msm.Exclusive 4);
  Alcotest.(check bool) "unordered read shares" true
    (t (Msm.Exclusive 3) ~tid:4 ~write:false ~ordered:false = Msm.Shared_read);
  Alcotest.(check bool) "unordered write modifies" true
    (t (Msm.Exclusive 3) ~tid:4 ~write:true ~ordered:false = Msm.Shared_modified);
  Alcotest.(check bool) "shared-read + write escalates" true
    (t Msm.Shared_read ~tid:5 ~write:true ~ordered:false = Msm.Shared_modified);
  Alcotest.(check bool) "shared-modified absorbs" true
    (t Msm.Shared_modified ~tid:5 ~write:false ~ordered:true = Msm.Shared_modified)

(* ---- reports ---- *)

let mk_race ?(base = "x") ?(idx = 0) ?(l1 = "a") ?(l2 = "b") () =
  {
    Report.r_base = base;
    r_idx = idx;
    r_first_tid = 1;
    r_first_loc = { Arde.Types.lfunc = "f"; lblk = l1; lidx = 0 };
    r_first_write = true;
    r_second_tid = 2;
    r_second_loc = { Arde.Types.lfunc = "f"; lblk = l2; lidx = 0 };
    r_second_write = false;
    r_predicted = false;
  }

let test_report_dedup () =
  let t = Report.create () in
  Report.add t (mk_race ());
  Report.add t (mk_race ());
  Alcotest.(check int) "same context counted once" 1 (Report.n_contexts t)

let test_report_symmetric_context () =
  let t = Report.create () in
  Report.add t (mk_race ~l1:"a" ~l2:"b" ());
  Report.add t (mk_race ~l1:"b" ~l2:"a" ());
  Alcotest.(check int) "unordered pair" 1 (Report.n_contexts t)

let test_report_cap () =
  let t = Report.create ~cap:3 () in
  for i = 0 to 9 do
    Report.add t (mk_race ~idx:i ~l1:(string_of_int i) ())
  done;
  Alcotest.(check int) "capped at 3" 3 (Report.n_contexts t);
  Alcotest.(check bool) "cap flagged" true (Report.capped t)

let test_report_merge () =
  let a = Report.create () and b = Report.create () in
  Report.add a (mk_race ~l1:"p" ());
  Report.add b (mk_race ~l1:"p" ());
  Report.add b (mk_race ~l1:"q" ());
  Report.merge_into a b;
  Alcotest.(check int) "merge dedups" 2 (Report.n_contexts a)

let test_racy_bases_sorted () =
  let t = Report.create () in
  Report.add t (mk_race ~base:"zz" ());
  Report.add t (mk_race ~base:"aa" ());
  Alcotest.(check (list string)) "sorted unique" [ "aa"; "zz" ] (Report.racy_bases t)

(* ---- classification ---- *)

let test_classify () =
  let open Arde.Classify in
  let v = classify (Racy [ "x"; "y" ]) ~reported:[ "x"; "z" ] in
  Alcotest.(check (list string)) "false" [ "z" ] v.false_bases;
  Alcotest.(check (list string)) "missed" [ "y" ] v.missed_bases;
  Alcotest.(check bool) "false alarm dominates" true
    (outcome_of v = False_alarm);
  Alcotest.(check bool) "pure miss" true
    (outcome_of (classify (Racy [ "x" ]) ~reported:[]) = Missed_race);
  Alcotest.(check bool) "clean" true
    (outcome_of (classify Race_free ~reported:[]) = Correct)

(* ---- end-to-end detector behaviour ---- *)

let detect_bases ?(mode = Arde.Config.Helgrind_lib) ?(seeds = [ 1; 2; 3 ]) p =
  let options = Arde.Options.make ~seeds () in
  Arde.Driver.racy_bases
    (Arde.detect ~ctx:(Arde.Driver.ctx ~options ()) ~mode (Arde.Input.Program p))

let two_workers ?(globals = []) body1 body2 =
  program
    ~globals:(global "x" () :: globals)
    ~entry:"main"
    [
      func "main"
        [
          blk "e" [ spawn "a" "w1" []; spawn "b" "w2" [] ] (goto "j");
          blk "j" [ join (r "a"); join (r "b") ] exit_t;
        ];
      func "w1" [ blk "e" body1 exit_t ];
      func "w2" [ blk "e" body2 exit_t ];
    ]

let bump_x = [ load "v" (g "x"); addi "v1" (r "v") (imm 1); store (g "x") (r "v1") ]

let test_detects_plain_race () =
  let p = two_workers bump_x bump_x in
  List.iter
    (fun mode ->
      Alcotest.(check (list string))
        (Arde.Config.mode_name mode ^ " reports x")
        [ "x" ]
        (detect_bases ~mode p))
    [
      Arde.Config.Helgrind_lib; Arde.Config.Helgrind_spin 7;
      Arde.Config.Nolib_spin 7; Arde.Config.Drd;
    ]

let test_lock_protected_clean () =
  let locked = (lock (g "m") :: bump_x) @ [ unlock (g "m") ] in
  let p = two_workers ~globals:[ global "m" () ] locked locked in
  List.iter
    (fun mode ->
      Alcotest.(check (list string))
        (Arde.Config.mode_name mode ^ " stays quiet")
        []
        (detect_bases ~mode p))
    [
      Arde.Config.Helgrind_lib; Arde.Config.Helgrind_spin 7;
      Arde.Config.Nolib_spin 7; Arde.Config.Drd;
    ]

let test_join_ordering_clean () =
  (* main reads the worker's value only after joining *)
  let p =
    program
      ~globals:[ global "x" () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e" [ spawn "a" "w1" [] ] (goto "j");
            blk "j" [ join (r "a"); load "v" (g "x"); store (g "x") (r "v") ] exit_t;
          ];
        func "w1" [ blk "e" bump_x exit_t ];
      ]
  in
  List.iter
    (fun mode ->
      Alcotest.(check (list string))
        (Arde.Config.mode_name mode ^ " respects join")
        []
        (detect_bases ~mode p))
    [ Arde.Config.Helgrind_lib; Arde.Config.Nolib_spin 7; Arde.Config.Drd ]

let test_lock_flag_asymmetry () =
  (* Publication via a flag written under a lock and polled under the
     lock: DRD is quiet (lock edges), the spin-less hybrid reports the
     payload, the spin-aware hybrid recovers the loop. *)
  let c =
    match Arde_workloads.Racey.find "lock_flag_spin/2" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  Alcotest.(check bool) "hybrid lib reports data" true
    (List.mem "data" (detect_bases ~mode:Arde.Config.Helgrind_lib c));
  Alcotest.(check (list string)) "drd quiet" [] (detect_bases ~mode:Arde.Config.Drd c);
  Alcotest.(check (list string)) "hybrid+spin quiet" []
    (detect_bases ~mode:(Arde.Config.Helgrind_spin 7) c)

let test_sync_race_suppressed_only_with_spin () =
  (* The flag itself: a synchronization race in lib mode, suppressed once
     the loop is detected and the flag marked. *)
  let c =
    match Arde_workloads.Racey.find "racy_adhoc_broken/2" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  Alcotest.(check bool) "lib mode reports the flag too" true
    (List.mem "flag" (detect_bases ~mode:Arde.Config.Helgrind_lib c));
  let spin_bases = detect_bases ~mode:(Arde.Config.Helgrind_spin 7) c in
  Alcotest.(check bool) "spin mode suppresses the flag" false
    (List.mem "flag" spin_bases);
  Alcotest.(check bool) "but still reports the real race on data" true
    (List.mem "data" spin_bases)

let test_spin_edges_counted () =
  let c =
    match Arde_workloads.Racey.find "adhoc_flag_w2/2" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  let options = Arde.Options.make ~seeds:[ 1 ] () in
  let res =
    Arde.detect
      ~ctx:(Arde.Driver.ctx ~options ())
      ~mode:(Arde.Config.Helgrind_spin 7) (Arde.Input.Program c)
  in
  let edges =
    List.fold_left (fun acc s -> acc + s.Arde.Driver.sr_spin_edges) 0
      res.Arde.Driver.runs
  in
  Alcotest.(check bool) "at least one spin edge drawn" true (edges > 0)

let test_short_vs_long_sensitivity () =
  (* One unsynchronized conflicting pair: the short-running machine
     reports it, the long-running machine only arms. *)
  let p = two_workers [ store (g "x") (imm 1) ] [ store (g "x") (imm 2) ] in
  let with_sens sensitivity =
    let options = Arde.Options.make ~seeds:[ 1; 2; 3; 4; 5 ] ~sensitivity () in
    Arde.Driver.racy_bases
      (Arde.detect
         ~ctx:(Arde.Driver.ctx ~options ())
         ~mode:Arde.Config.Helgrind_lib (Arde.Input.Program p))
  in
  Alcotest.(check (list string)) "short-running reports" [ "x" ]
    (with_sens Arde.Msm.Short_running);
  Alcotest.(check (list string)) "long-running misses the single pair" []
    (with_sens Arde.Msm.Long_running)

let test_atomics_never_reported () =
  let body = [ rmw Rmw_add "o" (g "x") (imm 1) ] in
  let p = two_workers body body in
  List.iter
    (fun mode ->
      Alcotest.(check (list string))
        (Arde.Config.mode_name mode ^ " ignores atomics")
        []
        (detect_bases ~mode p))
    [ Arde.Config.Helgrind_lib; Arde.Config.Drd; Arde.Config.Helgrind_spin 7 ]

let suite =
  [
    Alcotest.test_case "lockset: top" `Quick test_lockset_top;
    Alcotest.test_case "lockset: intersection" `Quick test_lockset_inter;
    Alcotest.test_case "lockset: emptiness" `Quick test_lockset_empty;
    Alcotest.test_case "lockset: held tracking" `Quick test_held_tracking;
    Alcotest.test_case "msm transitions" `Quick test_msm_transitions;
    Alcotest.test_case "report dedup" `Quick test_report_dedup;
    Alcotest.test_case "report symmetric contexts" `Quick
      test_report_symmetric_context;
    Alcotest.test_case "report cap" `Quick test_report_cap;
    Alcotest.test_case "report merge" `Quick test_report_merge;
    Alcotest.test_case "racy bases sorted" `Quick test_racy_bases_sorted;
    Alcotest.test_case "classification" `Quick test_classify;
    Alcotest.test_case "plain race detected by all modes" `Quick
      test_detects_plain_race;
    Alcotest.test_case "lock protection respected by all modes" `Quick
      test_lock_protected_clean;
    Alcotest.test_case "join ordering respected" `Quick test_join_ordering_clean;
    Alcotest.test_case "lock+flag: DRD quiet, hybrid needs spin" `Quick
      test_lock_flag_asymmetry;
    Alcotest.test_case "sync races suppressed only with spin" `Quick
      test_sync_race_suppressed_only_with_spin;
    Alcotest.test_case "spin edges are drawn" `Quick test_spin_edges_counted;
    Alcotest.test_case "short vs long sensitivity" `Quick
      test_short_vs_long_sensitivity;
    Alcotest.test_case "atomics never reported" `Quick test_atomics_never_reported;
  ]
