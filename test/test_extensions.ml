(* The extensions beyond the paper's evaluated system: statically inferred
   lock words (the paper's stated future work) and the condition-variable
   bug-pattern checkers Helgrind+ shipped with. *)

open Arde.Builder

(* ---- lock inference ---- *)

let test_infer_lowered_mutex () =
  let p =
    program
      ~globals:[ global "m" (); global "x" () ]
      ~entry:"main"
      [
        func "main"
          [ blk "e" [ lock (g "m"); store (g "x") (imm 1); unlock (g "m") ] exit_t ];
      ]
  in
  let inferred = Arde.Lock_infer.analyze (Arde.Lower.lower p) in
  Alcotest.(check (list string)) "lowered mutex inferred" [ "m" ]
    (Arde.Lock_infer.inferred_locks inferred)

let test_claim_flag_not_inferred () =
  (* A CAS-claimed flag with no release is not a lock. *)
  let p =
    program
      ~globals:[ global "claim" () ]
      ~entry:"main"
      [
        func "main"
          [ blk "e" [ cas "ok" (g "claim") (imm 0) (imm 1) ] exit_t ];
      ]
  in
  let inferred = Arde.Lock_infer.analyze p in
  Alcotest.(check (list string)) "no lock inferred" []
    (Arde.Lock_infer.inferred_locks inferred)

let test_future_work_mode_fixes_lockset_case () =
  (* dcl_writeback: safe only through the lockset argument.  The plain
     universal detector false-positives on val; with inferred locks the
     candidate lockset survives and the warning disappears. *)
  match Arde_workloads.Racey.find "dcl_writeback/6" with
  | None -> Alcotest.fail "case missing"
  | Some c ->
      let bases mode =
        Arde.Driver.racy_bases
          (Arde.detect ~mode (Arde.Input.Program c.Arde_workloads.Racey.program))
      in
      Alcotest.(check bool) "nolib+spin reports val" true
        (List.mem "val" (bases (Arde.Config.Nolib_spin 7)));
      Alcotest.(check bool) "nolib+spin+locks does not" false
        (List.mem "val" (bases (Arde.Config.Nolib_spin_locks 7)))

let test_future_work_mode_still_detects_races () =
  match Arde_workloads.Racey.find "racy_counter/4" with
  | None -> Alcotest.fail "case missing"
  | Some c ->
      Alcotest.(check (list string)) "real races still reported" [ "x" ]
        (Arde.Driver.racy_bases
           (Arde.detect
              ~mode:(Arde.Config.Nolib_spin_locks 7)
              (Arde.Input.Program c.Arde_workloads.Racey.program)))

let test_mode_parsing () =
  Alcotest.(check bool) "parses the future-work mode" true
    (Arde.Config.parse_mode "nolib+spin+locks:7"
    = Ok (Arde.Config.Nolib_spin_locks 7));
  Alcotest.(check bool) "bad window rejected" true
    (Result.is_error (Arde.Config.parse_mode "nolib+spin+locks:0"))

(* ---- CV checkers ---- *)

let gate_program ~recheck =
  let sleep_target = if recheck then "test" else "go" in
  program
    ~globals:[ global "m" (); global "cv" (); global "ready" () ]
    ~entry:"main"
    [
      func "main"
        [
          blk "e"
            [
              spawn "t" "consumer" [];
              lock (g "m");
              store (g "ready") (imm 1);
              unlock (g "m");
              signal (g "cv");
              join (r "t");
            ]
            exit_t;
        ];
      func "consumer"
        [
          blk "e" [ lock (g "m") ] (goto "test");
          blk "test" [ load "rd" (g "ready") ] (br (r "rd") "go" "sl");
          blk "sl" [ wait (g "cv") (g "m") ] (goto sleep_target);
          blk "go" [ unlock (g "m") ] exit_t;
        ];
    ]

let test_static_unsafe_wait () =
  let hazards p = Arde.Cv_checker.static_check p in
  Alcotest.(check int) "predicate loop accepted" 0
    (List.length (hazards (gate_program ~recheck:true)));
  match hazards (gate_program ~recheck:false) with
  | [ Arde.Cv_checker.Unsafe_wait _ ] -> ()
  | ds -> Alcotest.failf "expected one unsafe wait, got %d" (List.length ds)

let test_lost_signal_detected () =
  (* An unlocked predicate write makes the signal racy with the check:
     across enough seeds some run loses the wake-up and deadlocks — the
     checker must pair the void signal with the stuck wait. *)
  let p =
    program
      ~globals:[ global "m" (); global "cv" (); global "ready" () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e"
              [
                spawn "t" "consumer" [];
                store (g "ready") (imm 1);
                signal (g "cv");
                join (r "t");
              ]
              exit_t;
          ];
        func "consumer"
          [
            blk "e" [ lock (g "m") ] (goto "test");
            blk "test" [ load "rd" (g "ready") ] (br (r "rd") "go" "sl");
            blk "sl" [ wait (g "cv") (g "m") ] (goto "test");
            blk "go" [ unlock (g "m") ] exit_t;
          ];
      ]
  in
  let options = Arde.Options.make ~seeds:(List.init 40 (fun i -> i + 1)) () in
  let result =
    Arde.detect
      ~ctx:(Arde.Driver.ctx ~options ())
      ~mode:Arde.Config.Helgrind_lib (Arde.Input.Program p)
  in
  let lost =
    List.exists
      (fun sr ->
        List.exists
          (function Arde.Cv_checker.Lost_signal _ -> true | _ -> false)
          sr.Arde.Driver.sr_cv_diagnostics)
      result.Arde.Driver.runs
  in
  Alcotest.(check bool) "some seed reports a lost signal" true lost

let test_no_lost_signal_when_correct () =
  let options =
    Arde.Options.make ~seeds:(List.init 10 (fun i -> i + 1)) ()
  in
  let result =
    Arde.detect
      ~ctx:(Arde.Driver.ctx ~options ())
      ~mode:Arde.Config.Helgrind_lib
      (Arde.Input.Program (gate_program ~recheck:true))
  in
  List.iter
    (fun sr ->
      Alcotest.(check int) "no diagnostics" 0
        (List.length sr.Arde.Driver.sr_cv_diagnostics))
    result.Arde.Driver.runs

let suite =
  [
    Alcotest.test_case "lowered mutex inferred as lock" `Quick
      test_infer_lowered_mutex;
    Alcotest.test_case "claim flag not inferred" `Quick
      test_claim_flag_not_inferred;
    Alcotest.test_case "future-work mode recovers locksets" `Quick
      test_future_work_mode_fixes_lockset_case;
    Alcotest.test_case "future-work mode keeps real races" `Quick
      test_future_work_mode_still_detects_races;
    Alcotest.test_case "mode string parsing" `Quick test_mode_parsing;
    Alcotest.test_case "static unsafe-wait detection" `Quick
      test_static_unsafe_wait;
    Alcotest.test_case "lost signal detected" `Slow test_lost_signal_detected;
    Alcotest.test_case "correct gate has no diagnostics" `Quick
      test_no_lost_signal_when_correct;
  ]
