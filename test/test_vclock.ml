(* Vector clocks: unit tests plus qcheck lattice laws. *)

module Vc = Arde_vclock.Vector_clock

let vc = Alcotest.testable Vc.pp Vc.equal

let test_bottom () =
  Alcotest.(check bool) "bottom is bottom" true (Vc.is_bottom Vc.bottom);
  Alcotest.(check int) "bottom components are 0" 0 (Vc.get Vc.bottom 5)

let test_inc_get () =
  let c = Vc.inc (Vc.inc Vc.bottom 2) 2 in
  Alcotest.(check int) "incremented twice" 2 (Vc.get c 2);
  Alcotest.(check int) "others still 0" 0 (Vc.get c 0)

let test_set_trims () =
  let c = Vc.set (Vc.set Vc.bottom 4 7) 4 0 in
  Alcotest.(check bool) "trailing zeros trimmed to bottom" true (Vc.is_bottom c)

let test_join () =
  let a = Vc.of_list [ 1; 5; 0; 2 ] and b = Vc.of_list [ 3; 1; 4 ] in
  Alcotest.check vc "pointwise max" (Vc.of_list [ 3; 5; 4; 2 ]) (Vc.join a b)

let test_leq () =
  let a = Vc.of_list [ 1; 2 ] and b = Vc.of_list [ 1; 3; 1 ] in
  Alcotest.(check bool) "a <= b" true (Vc.leq a b);
  Alcotest.(check bool) "not b <= a" false (Vc.leq b a)

let test_size_words () =
  Alcotest.(check bool) "longer clocks cost more" true
    (Vc.size_words (Vc.of_list [ 1; 1; 1; 1 ]) > Vc.size_words Vc.bottom)

(* qcheck generators and laws *)

let gen_vc =
  QCheck2.Gen.(map Vc.of_list (list_size (int_bound 8) (int_bound 20)))

let law name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen f)

let props =
  [
    law "join is commutative" (QCheck2.Gen.pair gen_vc gen_vc) (fun (a, b) ->
        Vc.equal (Vc.join a b) (Vc.join b a));
    law "join is associative"
      (QCheck2.Gen.triple gen_vc gen_vc gen_vc)
      (fun (a, b, c) ->
        Vc.equal (Vc.join a (Vc.join b c)) (Vc.join (Vc.join a b) c));
    law "join is idempotent" gen_vc (fun a -> Vc.equal (Vc.join a a) a);
    law "bottom is the unit" gen_vc (fun a -> Vc.equal (Vc.join a Vc.bottom) a);
    law "operands precede their join" (QCheck2.Gen.pair gen_vc gen_vc)
      (fun (a, b) -> Vc.leq a (Vc.join a b) && Vc.leq b (Vc.join a b));
    law "leq is reflexive" gen_vc (fun a -> Vc.leq a a);
    law "leq is antisymmetric" (QCheck2.Gen.pair gen_vc gen_vc) (fun (a, b) ->
        (not (Vc.leq a b && Vc.leq b a)) || Vc.equal a b);
    law "inc strictly increases" (QCheck2.Gen.pair gen_vc (QCheck2.Gen.int_bound 7))
      (fun (a, t) ->
        let b = Vc.inc a t in
        Vc.leq a b && not (Vc.leq b a));
    law "to_list round-trips" gen_vc (fun a ->
        Vc.equal a (Vc.of_list (Vc.to_list a)));
    (* Equivalence of the mutable epoch-carrying clock with the pure
       ops: random interleavings of tick / snapshot-and-join / re-join
       of a stale snapshot across three owned clocks must leave every
       clock equal to a pure model driven by inc/join.  The re-join arm
       matters: it hits the O(1) already-absorbed skip, which must be a
       semantic no-op. *)
    law "mutable epoch clocks agree with pure ops"
      QCheck2.Gen.(
        list_size (int_bound 48)
          (triple (int_bound 2) (int_bound 2) (int_bound 31)))
      (fun ops ->
        let n = 3 and cap = 8 in
        let ms = Array.init n (fun i -> Vc.make_mut ~owner:i cap) in
        let pure = Array.make n Vc.bottom in
        let hist = ref [] in
        List.iter
          (fun (k, i, x) ->
            match k with
            | 0 ->
                Vc.mtick ms.(i) (x mod cap);
                pure.(i) <- Vc.inc pure.(i) (x mod cap)
            | 1 ->
                let j = x mod n in
                let s = Vc.snapshot ms.(j) in
                hist := (s, pure.(j)) :: !hist;
                Vc.mjoin ms.(i) s;
                pure.(i) <- Vc.join pure.(i) pure.(j)
            | _ -> (
                match !hist with
                | [] -> ()
                | h ->
                    let s, ps = List.nth h (x mod List.length h) in
                    Vc.mjoin ms.(i) s;
                    pure.(i) <- Vc.join pure.(i) ps))
          ops;
        Array.for_all2 (fun m p -> Vc.equal (Vc.snapshot m) p) ms pure);
    law "own snapshots are already absorbed" gen_vc (fun a ->
        let m = Vc.make_mut ~owner:0 12 in
        Vc.mjoin m a;
        Vc.mtick m 0;
        let s = Vc.snapshot m in
        Vc.mjoin m s;
        (not (Vc.mjoin_changed m s)) && Vc.equal (Vc.snapshot m) s);
    law "mjoin_changed reports exactly growth"
      (QCheck2.Gen.pair gen_vc gen_vc)
      (fun (a, b) ->
        let m = Vc.make_mut 12 in
        Vc.mjoin m a;
        let before = Vc.snapshot m in
        let changed = Vc.mjoin_changed m b in
        let after = Vc.snapshot m in
        changed = not (Vc.equal before after)
        && Vc.equal after (Vc.join a b));
    law "provenance is invisible to the lattice" gen_vc (fun a ->
        let m = Vc.make_mut ~owner:1 12 in
        Vc.mjoin m a;
        Vc.mtick m 1;
        let s = Vc.snapshot m in
        let plain = Vc.of_list (List.init 12 (Vc.mget m)) in
        Vc.equal s plain && Vc.leq s plain && Vc.leq plain s);
  ]

let suite =
  [
    Alcotest.test_case "bottom" `Quick test_bottom;
    Alcotest.test_case "inc/get" `Quick test_inc_get;
    Alcotest.test_case "set trims" `Quick test_set_trims;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "leq" `Quick test_leq;
    Alcotest.test_case "size accounting" `Quick test_size_words;
  ]
  @ props
