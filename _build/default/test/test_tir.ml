(* TIR: validation, pretty-printing and the lowering pass. *)

open Arde.Builder

let ok_program =
  program
    ~globals:[ global "x" (); global "a" ~size:4 () ]
    ~entry:"main"
    [
      func "main"
        [
          blk "entry" [ mov "v" (imm 1); store (g "x") (r "v") ] (goto "next");
          blk "next" [ load "w" (gi "a" (imm 2)) ] exit_t;
        ];
    ]

let expect_invalid what p =
  match Arde.Validate.check p with
  | Ok () -> Alcotest.failf "%s: expected a validation error" what
  | Error _ -> ()

let test_valid_program () =
  match Arde.Validate.check ok_program with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map Arde.Validate.error_to_string es))

let test_unknown_label () =
  expect_invalid "unknown label"
    (program ~entry:"main"
       [ func "main" [ blk "entry" [] (goto "nowhere") ] ])

let test_unknown_global () =
  expect_invalid "unknown global"
    (program ~entry:"main"
       [ func "main" [ blk "entry" [ load "v" (g "ghost") ] exit_t ] ])

let test_unknown_function () =
  expect_invalid "unknown function"
    (program ~entry:"main"
       [ func "main" [ blk "entry" [ call "missing" [] ] exit_t ] ])

let test_arity_mismatch () =
  expect_invalid "arity mismatch"
    (program ~entry:"main"
       [
         func "main" [ blk "entry" [ call "f" [ imm 1 ] ] exit_t ];
         func "f" ~params:[ "a"; "b" ] [ blk "entry" [] ret0 ];
       ])

let test_unassigned_register () =
  expect_invalid "unassigned register"
    (program
       ~globals:[ global "x" () ]
       ~entry:"main"
       [ func "main" [ blk "entry" [ store (g "x") (r "never") ] exit_t ] ])

let test_missing_entry () =
  expect_invalid "missing entry"
    (program ~entry:"nope" [ func "main" [ blk "entry" [] exit_t ] ])

let test_entry_with_params () =
  expect_invalid "entry with params"
    (program ~entry:"main" [ func "main" ~params:[ "x" ] [ blk "e" [] exit_t ] ])

let test_duplicate_label () =
  expect_invalid "duplicate label"
    (program ~entry:"main"
       [ func "main" [ blk "e" [] (goto "e"); blk "e" [] exit_t ] ])

let test_duplicate_function () =
  expect_invalid "duplicate function"
    (program ~entry:"main"
       [ func "main" [ blk "e" [] exit_t ]; func "main" [ blk "e" [] exit_t ] ])

let test_bad_func_table () =
  expect_invalid "func table entry missing"
    (program ~entry:"main" ~func_table:[ "ghost" ]
       [ func "main" [ blk "e" [] exit_t ] ])

let test_pretty_contains_instrs () =
  let s = Arde.Pretty.program_to_string ok_program in
  let has affix =
    let n = String.length s and m = String.length affix in
    let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "store printed" true (has "store @x");
  Alcotest.(check bool) "load printed" true (has "%w <- load @a[2]");
  Alcotest.(check bool) "entry printed" true (has "entry = main")

(* ---- lowering ---- *)

let sync_program =
  program
    ~globals:
      [
        global "m" (); global "cv" (); global "bar" (); global "s" ();
        global "x" ();
      ]
    ~entry:"main"
    [
      func "main"
        [
          blk "entry"
            [
              barrier_init (g "bar") (imm 1);
              sem_init (g "s") (imm 1);
              spawn "t" "w" [];
              lock (g "m");
              signal (g "cv");
              unlock (g "m");
              barrier_wait (g "bar");
              sem_wait (g "s");
              sem_post (g "s");
              join (r "t");
            ]
            exit_t;
        ];
      func "w" [ blk "entry" [ store (g "x") (imm 1) ] exit_t ];
    ]

let has_native_sync p =
  List.exists
    (fun f ->
      List.exists
        (fun b ->
          List.exists
            (function
              | Arde.Types.Lock _ | Arde.Types.Unlock _ | Arde.Types.Cond_wait _
              | Arde.Types.Cond_signal _ | Arde.Types.Cond_broadcast _
              | Arde.Types.Barrier_init _ | Arde.Types.Barrier_wait _
              | Arde.Types.Sem_init _ | Arde.Types.Sem_post _
              | Arde.Types.Sem_wait _ | Arde.Types.Join _ ->
                  true
              | _ -> false)
            b.Arde.Types.ins)
        f.Arde.Types.blocks)
    p.Arde.Types.funcs

let test_lower_removes_native_ops () =
  let low = Arde.Lower.lower sync_program in
  Alcotest.(check bool) "no native sync left" false (has_native_sync low);
  Arde.Validate.check_exn low

let test_lower_futex_keeps_locks_native () =
  let low = Arde.Lower.lower ~style:Arde.Lower.Futex sync_program in
  Arde.Validate.check_exn low;
  let lock_count =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc b ->
            List.fold_left
              (fun acc i ->
                match i with Arde.Types.Lock _ -> acc + 1 | _ -> acc)
              acc b.Arde.Types.ins)
          acc f.Arde.Types.blocks)
      0 low.Arde.Types.funcs
  in
  Alcotest.(check bool) "native locks remain under futex" true (lock_count > 0)

let test_lower_compact_validates () =
  Arde.Validate.check_exn (Arde.Lower.lower ~style:Arde.Lower.Compact sync_program)

let test_lower_idempotent_on_lowered () =
  let once = Arde.Lower.lower sync_program in
  let twice = Arde.Lower.lower once in
  Alcotest.(check int) "same function count"
    (List.length once.Arde.Types.funcs)
    (List.length twice.Arde.Types.funcs)

let test_lower_helper_naming () =
  Alcotest.(check bool) "helper prefix recognized" true
    (Arde.Lower.is_lowered_helper "__lock:m");
  Alcotest.(check bool) "user names not helpers" false
    (Arde.Lower.is_lowered_helper "main")

let run_both p seed =
  let run prog =
    let cfg = { Arde.Machine.default_config with Arde.Machine.seed } in
    Arde.Machine.run_program cfg prog
  in
  (run p, run (Arde.Lower.lower p))

let test_lower_preserves_semantics () =
  (* A deterministic data-race-free program must compute the same final
     memory natively and lowered, for several seeds. *)
  List.iter
    (fun seed ->
      let native, lowered = run_both sync_program seed in
      Alcotest.(check bool) "native finished" true
        (native.Arde.Machine.outcome = Arde.Machine.Finished);
      Alcotest.(check bool) "lowered finished" true
        (lowered.Arde.Machine.outcome = Arde.Machine.Finished);
      Alcotest.(check int) "same x"
        (Arde.Machine.read_global native "x" 0)
        (Arde.Machine.read_global lowered "x" 0))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* A program with an actual cond_wait (lost-signal-safe gate), so the
   lowering generates the wait helper. *)
let wait_program =
  program
    ~globals:[ global "m" (); global "cv" (); global "ready" () ]
    ~entry:"main"
    [
      func "main"
        [
          blk "entry"
            [
              spawn "t" "w" [];
              lock (g "m");
              store (g "ready") (imm 1);
              unlock (g "m");
              signal (g "cv");
              join (r "t");
            ]
            exit_t;
        ];
      func "w"
        [
          blk "entry" [ lock (g "m") ] (goto "test");
          blk "test" [ load "rd" (g "ready") ] (br (r "rd") "go" "sleep");
          blk "sleep" [ wait (g "cv") (g "m") ] (goto "test");
          blk "go" [ unlock (g "m") ] exit_t;
        ];
    ]

let test_lowered_loops_found () =
  let low = Arde.Lower.lower sync_program in
  let inst = Arde.analyze_spins ~k:7 low in
  let bases =
    List.concat_map
      (fun s -> s.Arde.Instrument.s_cand.Arde.Spin.c_bases)
      (Arde.Instrument.spins inst)
  in
  List.iter
    (fun b ->
      Alcotest.(check bool) (b ^ " is a recovered sync base") true
        (List.mem b bases))
    [ "m"; "bar__gen"; "s"; "__thread_done" ];
  let low_wait = Arde.Lower.lower wait_program in
  let inst = Arde.analyze_spins ~k:7 low_wait in
  let bases =
    List.concat_map
      (fun s -> s.Arde.Instrument.s_cand.Arde.Spin.c_bases)
      (Arde.Instrument.spins inst)
  in
  Alcotest.(check bool) "cv seq counter recovered" true (List.mem "cv" bases)

let test_futex_loops_too_large () =
  let low = Arde.Lower.lower ~style:Arde.Lower.Futex wait_program in
  let inst = Arde.analyze_spins ~k:7 low in
  let bases =
    List.concat_map
      (fun s -> s.Arde.Instrument.s_cand.Arde.Spin.c_bases)
      (Arde.Instrument.spins inst)
  in
  Alcotest.(check bool) "cv loop not recovered under futex" false
    (List.mem "cv" bases);
  Alcotest.(check bool) "join still recovered" true
    (List.mem "__thread_done" bases)

let suite =
  [
    Alcotest.test_case "validate accepts a good program" `Quick test_valid_program;
    Alcotest.test_case "validate: unknown label" `Quick test_unknown_label;
    Alcotest.test_case "validate: unknown global" `Quick test_unknown_global;
    Alcotest.test_case "validate: unknown function" `Quick test_unknown_function;
    Alcotest.test_case "validate: arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "validate: unassigned register" `Quick
      test_unassigned_register;
    Alcotest.test_case "validate: missing entry" `Quick test_missing_entry;
    Alcotest.test_case "validate: entry with params" `Quick test_entry_with_params;
    Alcotest.test_case "validate: duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "validate: duplicate function" `Quick
      test_duplicate_function;
    Alcotest.test_case "validate: bad func table" `Quick test_bad_func_table;
    Alcotest.test_case "pretty shows the code" `Quick test_pretty_contains_instrs;
    Alcotest.test_case "lower removes native sync" `Quick
      test_lower_removes_native_ops;
    Alcotest.test_case "lower(futex) keeps locks native" `Quick
      test_lower_futex_keeps_locks_native;
    Alcotest.test_case "lower(compact) validates" `Quick
      test_lower_compact_validates;
    Alcotest.test_case "lower is idempotent on lowered code" `Quick
      test_lower_idempotent_on_lowered;
    Alcotest.test_case "helper naming convention" `Quick test_lower_helper_naming;
    Alcotest.test_case "lower preserves race-free semantics" `Slow
      test_lower_preserves_semantics;
    Alcotest.test_case "lowered primitives become spin loops" `Quick
      test_lowered_loops_found;
    Alcotest.test_case "futex loops exceed the window" `Quick
      test_futex_loops_too_large;
  ]
