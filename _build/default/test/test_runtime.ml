(* Machine semantics: arithmetic, faults, every synchronization primitive,
   scheduling determinism, spin-context events. *)

open Arde.Builder

let run ?(seed = 1) ?(policy = Arde.Sched.Chunked 6) ?(fuel = 200_000)
    ?instrument ?(spurious = false) ?(observer = ignore) p =
  let cfg =
    {
      Arde.Machine.policy;
      seed;
      fuel;
      instrument;
      spurious_wakeups = spurious;
      observer;
    }
  in
  Arde.Machine.run_program cfg p

let finished res =
  Alcotest.(check bool)
    (Format.asprintf "finished (got %a)" Arde.Machine.pp_outcome
       res.Arde.Machine.outcome)
    true
    (res.Arde.Machine.outcome = Arde.Machine.Finished)

let single_main ?(globals = [ global "x" () ]) ins =
  program ~globals ~entry:"main" [ func "main" [ blk "entry" ins exit_t ] ]

let test_arithmetic () =
  let p =
    single_main
      [
        mov "a" (imm 17);
        muli "b" (r "a") (imm 3);
        subi "c" (r "b") (imm 1);
        divi "d" (r "c") (imm 5);
        modi "e" (r "d") (imm 7);
        shli "f" (r "e") (imm 2);
        xori "g1" (r "f") (imm 5);
        andi "h" (r "g1") (imm 14);
        ori "i" (r "h") (imm 16);
        store (g "x") (r "i");
      ]
  in
  let res = run p in
  finished res;
  (* 17*3-1=50; 50/5=10; 10 mod 7=3; 3<<2=12; 12 xor 5=9; 9 land 14=8;
     8 lor 16=24 *)
  Alcotest.(check int) "arithmetic chain" 24 (Arde.Machine.read_global res "x" 0)

let test_division_by_zero_faults () =
  let res = run (single_main [ mov "z" (imm 0); divi "d" (imm 1) (r "z") ]) in
  match res.Arde.Machine.outcome with
  | Arde.Machine.Fault { msg; _ } ->
      Alcotest.(check string) "message" "division by zero" msg
  | o -> Alcotest.failf "expected fault, got %a" Arde.Machine.pp_outcome o

let test_out_of_bounds_faults () =
  let res =
    run (single_main ~globals:[ global "a" ~size:2 () ] [ load "v" (gi "a" (imm 5)) ])
  in
  match res.Arde.Machine.outcome with
  | Arde.Machine.Fault _ -> ()
  | o -> Alcotest.failf "expected fault, got %a" Arde.Machine.pp_outcome o

let test_cas_semantics () =
  let p =
    single_main
      ~globals:[ global "x" (); global "out" ~size:2 () ]
      [
        store (g "x") (imm 5);
        cas "ok1" (g "x") (imm 5) (imm 9);
        cas "ok2" (g "x") (imm 5) (imm 11);
        store (gi "out" (imm 0)) (r "ok1");
        store (gi "out" (imm 1)) (r "ok2");
      ]
  in
  let res = run p in
  finished res;
  Alcotest.(check int) "first cas succeeded" 1 (Arde.Machine.read_global res "out" 0);
  Alcotest.(check int) "second cas failed" 0 (Arde.Machine.read_global res "out" 1);
  Alcotest.(check int) "value swapped once" 9 (Arde.Machine.read_global res "x" 0)

let test_rmw_semantics () =
  let p =
    single_main
      [
        rmw Rmw_add "old1" (g "x") (imm 4);
        rmw Rmw_exchange "old2" (g "x") (imm 100);
        rmw Rmw_or "old3" (g "x") (imm 3);
        rmw Rmw_and "old4" (g "x") (imm 6);
        store (g "x") (r "old4");
      ]
  in
  let res = run p in
  finished res;
  (* x: 0 -> 4 -> 100 -> 103 -> 6; old4 = 103 *)
  Alcotest.(check int) "rmw chain old value" 103 (Arde.Machine.read_global res "x" 0)

let test_check_failure_recorded () =
  let res = run (single_main [ mov "z" (imm 0); check (r "z") "should fail" ]) in
  finished res;
  match res.Arde.Machine.check_failures with
  | [ (_, "should fail") ] -> ()
  | other -> Alcotest.failf "expected one failure, got %d" (List.length other)

let test_recursive_lock_faults () =
  let res =
    run (single_main ~globals:[ global "m" () ] [ lock (g "m"); lock (g "m") ])
  in
  match res.Arde.Machine.outcome with
  | Arde.Machine.Fault { msg; _ } ->
      Alcotest.(check bool) "recursive lock" true
        (String.length msg > 9 && String.sub msg 0 9 = "recursive")
  | o -> Alcotest.failf "expected fault, got %a" Arde.Machine.pp_outcome o

let test_unlock_not_owner_faults () =
  let res = run (single_main ~globals:[ global "m" () ] [ unlock (g "m") ]) in
  match res.Arde.Machine.outcome with
  | Arde.Machine.Fault _ -> ()
  | o -> Alcotest.failf "expected fault, got %a" Arde.Machine.pp_outcome o

let test_mutual_exclusion () =
  (* Two threads increment x 50 times each under a mutex: the total is
     exact for every seed, proving the mutex really excludes. *)
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm 50)
           ~body:
             [
               lock (g "m");
               load "v" (g "x");
               addi "v1" (r "v") (imm 1);
               store (g "x") (r "v1");
               unlock (g "m");
             ]
           ~next:"fin"
      @ [ blk "fin" [] exit_t ])
  in
  let p =
    program
      ~globals:[ global "m" (); global "x" () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e" [ spawn "a" "w" [ imm 0 ]; spawn "b" "w" [ imm 1 ] ] (goto "j");
            blk "j" [ join (r "a"); join (r "b") ] exit_t;
          ];
        w;
      ]
  in
  List.iter
    (fun seed ->
      let res = run ~seed p in
      finished res;
      Alcotest.(check int) "exactly 100" 100 (Arde.Machine.read_global res "x" 0))
    [ 1; 2; 3; 4; 5 ]

let test_deadlock_detected () =
  let p =
    program
      ~globals:[ global "m1" (); global "m2" () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e" [ spawn "a" "wa" []; spawn "b" "wb" [] ] (goto "j");
            blk "j" [ join (r "a"); join (r "b") ] exit_t;
          ];
        (* classic lock-order inversion with a yield to force overlap *)
        func "wa"
          [ blk "e" [ lock (g "m1"); yield; yield; lock (g "m2") ] exit_t ];
        func "wb"
          [ blk "e" [ lock (g "m2"); yield; yield; lock (g "m1") ] exit_t ];
      ]
  in
  let deadlocks =
    List.exists
      (fun seed ->
        match (run ~seed ~policy:Arde.Sched.Uniform p).Arde.Machine.outcome with
        | Arde.Machine.Deadlock _ -> true
        | _ -> false)
      (List.init 30 (fun i -> i + 1))
  in
  Alcotest.(check bool) "some seed deadlocks" true deadlocks

let test_fuel_exhaustion () =
  let p =
    program ~entry:"main"
      [ func "main" [ blk "e" [] (goto "e") ] ]
  in
  let res = run ~fuel:1000 p in
  Alcotest.(check bool) "fuel runs out" true
    (res.Arde.Machine.outcome = Arde.Machine.Fuel_exhausted)

let test_barrier_releases_all () =
  let n = 4 in
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "e"
          [ barrier_wait (g "b"); load "v" (g "x"); store (gi "out" (r "i")) (r "v") ]
          exit_t;
      ]
  in
  let spawns = List.init n (fun i -> spawn (Printf.sprintf "t%d" i) "w" [ imm i ]) in
  let joins = List.init n (fun i -> join (r (Printf.sprintf "t%d" i))) in
  let p =
    program
      ~globals:[ global "b" (); global "x" (); global "out" ~size:n () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e"
              ([ barrier_init (g "b") (imm (n + 1)); store (g "x") (imm 7) ]
              @ spawns)
              (goto "sync");
            blk "sync" (barrier_wait (g "b") :: joins) exit_t;
          ];
        w;
      ]
  in
  let res = run p in
  finished res;
  for i = 0 to n - 1 do
    Alcotest.(check int) "saw pre-barrier store" 7
      (Arde.Machine.read_global res "out" i)
  done

let test_semaphore_counts () =
  (* A semaphore initialized to 2 admits at most 2 into the region. *)
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "e"
          [
            sem_wait (g "s");
            rmw Rmw_add "o" (g "inside") (imm 1);
            load "c" (g "inside");
            cmp Le "ok" (r "c") (imm 2);
            check (r "ok") "at most two inside";
            rmw Rmw_add "o2" (g "inside") (imm (-1));
            sem_post (g "s");
          ]
          exit_t;
      ]
  in
  let n = 6 in
  let spawns = List.init n (fun i -> spawn (Printf.sprintf "t%d" i) "w" [ imm i ]) in
  let joins = List.init n (fun i -> join (r (Printf.sprintf "t%d" i))) in
  let p =
    program
      ~globals:[ global "s" (); global "inside" () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e" (sem_init (g "s") (imm 2) :: spawns) (goto "j");
            blk "j" joins exit_t;
          ];
        w;
      ]
  in
  List.iter
    (fun seed ->
      let res = run ~seed p in
      finished res;
      Alcotest.(check (list (pair (of_pp Arde.Pretty.loc) string)))
        "no capacity violation" [] res.Arde.Machine.check_failures)
    [ 1; 2; 3 ]

let test_cv_wakeup () =
  let consumer =
    func "consumer"
      [
        blk "e" [ lock (g "m") ] (goto "t");
        blk "t" [ load "rd" (g "ready") ] (br (r "rd") "go" "sl");
        blk "sl" [ wait (g "cv") (g "m") ] (goto "t");
        blk "go" [ unlock (g "m"); load "d" (g "data"); store (g "out") (r "d") ] exit_t;
      ]
  in
  let p =
    program
      ~globals:
        [
          global "m" (); global "cv" (); global "ready" (); global "data" ();
          global "out" ();
        ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e"
              [
                spawn "t" "consumer" [];
                store (g "data") (imm 55);
                lock (g "m");
                store (g "ready") (imm 1);
                unlock (g "m");
                signal (g "cv");
                join (r "t");
              ]
              exit_t;
          ];
        consumer;
      ]
  in
  List.iter
    (fun seed ->
      let res = run ~seed p in
      finished res;
      Alcotest.(check int) "handoff arrived" 55 (Arde.Machine.read_global res "out" 0))
    [ 1; 2; 3; 4; 5; 6 ]

let delay_instrs n = List.init n (fun _ -> nop)

let test_spurious_wakeup_injection () =
  (* With spurious wakeups a non-predicate-loop wait breaks: the consumer
     proceeds without the handoff at least under one seed. *)
  let consumer =
    func "consumer"
      [
        blk "e" [ lock (g "m") ] (goto "t");
        blk "t" [ load "rd" (g "ready") ] (br (r "rd") "go" "sl");
        blk "sl" [ wait (g "cv") (g "m") ] (goto "go") (* no re-check: bug *);
        blk "go"
          [
            unlock (g "m");
            load "rd2" (g "ready");
            check (r "rd2") "woke without the predicate";
          ]
          exit_t;
      ]
  in
  let p =
    program
      ~globals:[ global "m" (); global "cv" (); global "ready" () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e" [ spawn "t" "consumer" [] ] (goto "w");
            blk "w"
              (delay_instrs 300
              @ [
                  lock (g "m");
                  store (g "ready") (imm 1);
                  unlock (g "m");
                  signal (g "cv");
                  join (r "t");
                ])
              exit_t;
          ];
        consumer;
      ]
  in
  let tripped =
    List.exists
      (fun seed ->
        let res = run ~seed ~spurious:true p in
        res.Arde.Machine.check_failures <> [])
      (List.init 40 (fun i -> i + 1))
  in
  Alcotest.(check bool) "a spurious wakeup bites the buggy wait" true tripped

let test_determinism_same_seed () =
  let p =
    match Arde_workloads.Racey.find "task_queue/5" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  let hash seed =
    let tr = Arde.Trace.create () in
    ignore (run ~seed ~observer:(Arde.Trace.observer tr) p);
    Arde.Trace.hash tr
  in
  Alcotest.(check int) "seed 3 replays identically" (hash 3) (hash 3);
  Alcotest.(check bool) "different seeds usually differ" true
    (hash 1 <> hash 2 || hash 2 <> hash 4)

let test_round_robin_deterministic () =
  let p =
    match Arde_workloads.Racey.find "racy_counter/4" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  let hash seed =
    let tr = Arde.Trace.create () in
    ignore (run ~seed ~policy:(Arde.Sched.Round_robin 3) ~observer:(Arde.Trace.observer tr) p);
    Arde.Trace.hash tr
  in
  Alcotest.(check int) "round robin ignores the seed" (hash 1) (hash 99)

let test_spin_events_paired () =
  let p =
    match Arde_workloads.Racey.find "adhoc_flag_w2/2" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  let inst = Arde.analyze_spins ~k:7 p in
  let tr = Arde.Trace.create () in
  let res = run ~instrument:inst ~observer:(Arde.Trace.observer tr) p in
  finished res;
  let enters, exits, tagged =
    List.fold_left
      (fun (en, ex, tg) ev ->
        match ev with
        | Arde.Event.Spin_enter _ -> (en + 1, ex, tg)
        | Arde.Event.Spin_exit _ -> (en, ex + 1, tg)
        | Arde.Event.Read { spin = _ :: _; _ } -> (en, ex, tg + 1)
        | _ -> (en, ex, tg))
      (0, 0, 0) (Arde.Trace.events tr)
  in
  Alcotest.(check int) "every context closes" enters exits;
  Alcotest.(check bool) "contexts were opened" true (enters > 0);
  Alcotest.(check bool) "condition loads were tagged" true (tagged > 0)

let test_thread_limit_faults () =
  let p =
    program ~entry:"main"
      [
        func "main"
          (blk "e" [ mov "j" (imm 0) ] (goto "loop_head")
          :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm 100)
               ~body:[ spawn "t" "w" [] ]
               ~next:"fin"
          @ [ blk "fin" [] exit_t ]);
        func "w" [ blk "e" [] exit_t ];
      ]
  in
  match (run p).Arde.Machine.outcome with
  | Arde.Machine.Fault { msg = "thread limit exceeded"; _ } -> ()
  | o -> Alcotest.failf "expected thread-limit fault, got %a" Arde.Machine.pp_outcome o

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "division by zero faults" `Quick test_division_by_zero_faults;
    Alcotest.test_case "out-of-bounds faults" `Quick test_out_of_bounds_faults;
    Alcotest.test_case "cas semantics" `Quick test_cas_semantics;
    Alcotest.test_case "rmw semantics" `Quick test_rmw_semantics;
    Alcotest.test_case "check failures recorded" `Quick test_check_failure_recorded;
    Alcotest.test_case "recursive lock faults" `Quick test_recursive_lock_faults;
    Alcotest.test_case "unlock by non-owner faults" `Quick
      test_unlock_not_owner_faults;
    Alcotest.test_case "mutex mutual exclusion" `Slow test_mutual_exclusion;
    Alcotest.test_case "deadlock detected" `Slow test_deadlock_detected;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "barrier releases everyone" `Quick test_barrier_releases_all;
    Alcotest.test_case "semaphore capacity" `Quick test_semaphore_counts;
    Alcotest.test_case "cv wakeup delivers the handoff" `Quick test_cv_wakeup;
    Alcotest.test_case "spurious wakeups break buggy waits" `Slow
      test_spurious_wakeup_injection;
    Alcotest.test_case "trace determinism per seed" `Quick test_determinism_same_seed;
    Alcotest.test_case "round robin is seed-independent" `Quick
      test_round_robin_deterministic;
    Alcotest.test_case "spin enter/exit pairing" `Quick test_spin_events_paired;
    Alcotest.test_case "thread limit" `Quick test_thread_limit_faults;
  ]
