(* Edge semantics of the machine: faults, calls and returns, scheduler
   policies, trace utilities. *)

open Arde.Builder

let run ?(seed = 1) ?(fuel = 100_000) p =
  Arde.Machine.run_program
    { Arde.Machine.default_config with Arde.Machine.seed; fuel }
    p

let expect_fault name p =
  match (run p).Arde.Machine.outcome with
  | Arde.Machine.Fault _ -> ()
  | o ->
      Alcotest.failf "%s: expected fault, got %a" name Arde.Machine.pp_outcome o

let test_indirect_call_out_of_range () =
  expect_fault "bad table index"
    (program ~entry:"main" ~func_table:[ "f" ]
       [
         func "main" [ blk "e" [ call_ind (imm 3) [] ] exit_t ];
         func "f" [ blk "e" [] ret0 ];
       ])

let test_indirect_call_dispatch () =
  let p =
    program
      ~globals:[ global "out" ~size:2 () ]
      ~entry:"main" ~func_table:[ "f0"; "f1" ]
      [
        func "main"
          [
            blk "e"
              [
                call_ind ~ret:"a" (imm 0) [ imm 10 ];
                call_ind ~ret:"b" (imm 1) [ imm 10 ];
                store (gi "out" (imm 0)) (r "a");
                store (gi "out" (imm 1)) (r "b");
              ]
              exit_t;
          ];
        func "f0" ~params:[ "x" ]
          [ blk "e" [ addi "y" (r "x") (imm 1) ] (ret (Some (r "y"))) ];
        func "f1" ~params:[ "x" ]
          [ blk "e" [ muli "y" (r "x") (imm 2) ] (ret (Some (r "y"))) ];
      ]
  in
  let res = run p in
  Alcotest.(check int) "slot 0 dispatched" 11 (Arde.Machine.read_global res "out" 0);
  Alcotest.(check int) "slot 1 dispatched" 20 (Arde.Machine.read_global res "out" 1)

let test_barrier_uninitialized_faults () =
  expect_fault "barrier before init"
    (program
       ~globals:[ global "b" () ]
       ~entry:"main"
       [ func "main" [ blk "e" [ barrier_wait (g "b") ] exit_t ] ])

let test_join_unknown_thread_faults () =
  expect_fault "join bad tid"
    (program ~entry:"main"
       [ func "main" [ blk "e" [ join (imm 42) ] exit_t ] ])

let test_negative_index_faults () =
  expect_fault "negative index"
    (program
       ~globals:[ global "a" ~size:2 () ]
       ~entry:"main"
       [
         func "main"
           [ blk "e" [ mov "i" (imm (-1)); load "v" (gi "a" (r "i")) ] exit_t ];
       ])

let test_recursion_and_return_values () =
  (* fib(10) through the call stack. *)
  let p =
    program
      ~globals:[ global "out" () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e" [ call ~ret:"v" "fib" [ imm 10 ]; store (g "out") (r "v") ]
              exit_t;
          ];
        func "fib" ~params:[ "n" ]
          [
            blk "e" [ cmp Lt "small" (r "n") (imm 2) ] (br (r "small") "base" "rec");
            blk "base" [] (ret (Some (r "n")));
            blk "rec"
              [
                subi "n1" (r "n") (imm 1);
                subi "n2" (r "n") (imm 2);
                call ~ret:"a" "fib" [ r "n1" ];
                call ~ret:"b" "fib" [ r "n2" ];
                addi "s" (r "a") (r "b");
              ]
              (ret (Some (r "s")));
          ];
      ]
  in
  let res = run p in
  Alcotest.(check int) "fib 10" 55 (Arde.Machine.read_global res "out" 0)

let test_ret_without_value_defaults_zero () =
  let p =
    program
      ~globals:[ global "out" () ]
      ~entry:"main"
      [
        func "main"
          [ blk "e" [ call ~ret:"v" "f" []; store (g "out") (r "v") ] exit_t ];
        func "f" [ blk "e" [] ret0 ];
      ]
  in
  Alcotest.(check int) "void return reads as 0" 0
    (Arde.Machine.read_global (run p) "out" 0)

let test_shift_masking () =
  let p =
    program
      ~globals:[ global "out" ~size:2 () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e"
              [
                mov "big" (imm 100);
                shli "a" (imm 1) (r "big");
                shri "b" (imm 1024) (r "big");
                store (gi "out" (imm 0)) (r "a");
                store (gi "out" (imm 1)) (r "b");
              ]
              exit_t;
          ];
      ]
  in
  let res = run p in
  (* 100 land 62 = 36 *)
  Alcotest.(check int) "shl masks its count" (1 lsl 36)
    (Arde.Machine.read_global res "out" 0);
  Alcotest.(check int) "shr masks its count" 0
    (Arde.Machine.read_global res "out" 1)

let test_round_robin_quantum () =
  (* Under round robin with a large quantum, thread 1 completes all its
     steps before thread 2 starts: the final value is deterministic. *)
  let w =
    func "w" ~params:[ "v" ]
      [ blk "e" [ store (g "x") (r "v") ] exit_t ]
  in
  let p =
    program
      ~globals:[ global "x" () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e" [ spawn "a" "w" [ imm 1 ]; spawn "b" "w" [ imm 2 ] ] (goto "j");
            blk "j" [ join (r "a"); join (r "b") ] exit_t;
          ];
        w;
      ]
  in
  let res =
    Arde.Machine.run_program
      {
        Arde.Machine.default_config with
        Arde.Machine.policy = Arde.Sched.Round_robin 1000;
      }
      p
  in
  Alcotest.(check int) "second spawned thread wrote last" 2
    (Arde.Machine.read_global res "x" 0)

let test_trace_pp_and_length () =
  let tr = Arde.Trace.create () in
  let cfg =
    { Arde.Machine.default_config with observer = Arde.Trace.observer tr }
  in
  let p =
    program
      ~globals:[ global "x" () ]
      ~entry:"main"
      [ func "main" [ blk "e" [ store (g "x") (imm 1) ] exit_t ] ]
  in
  ignore (Arde.Machine.run_program cfg p);
  Alcotest.(check int) "events recorded" (List.length (Arde.Trace.events tr))
    (Arde.Trace.length tr);
  let s = Format.asprintf "%a" Arde.Trace.pp tr in
  Alcotest.(check bool) "printable" true (String.length s > 0)

let test_lock_handoff_fifo () =
  (* Waiters are granted in arrival order: with round robin, the order of
     critical-section entry matches spawn order. *)
  let w =
    func "w" ~params:[ "v" ]
      [
        blk "e"
          ([ lock (g "m") ]
          @ [
              load "seq0" (g "seq");
              addi "seq1" (r "seq0") (imm 1);
              store (g "seq") (r "seq1");
              muli "mark" (r "v") (imm 100);
              addi "rec" (r "mark") (r "seq1");
              store (gi "order" (r "seq0")) (r "rec");
            ]
          @ [ unlock (g "m") ])
          exit_t;
      ]
  in
  let p =
    program
      ~globals:[ global "m" (); global "seq" (); global "order" ~size:3 () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e"
              [
                spawn "a" "w" [ imm 1 ]; spawn "b" "w" [ imm 2 ];
                spawn "c" "w" [ imm 3 ];
              ]
              (goto "j");
            blk "j" [ join (r "a"); join (r "b"); join (r "c") ] exit_t;
          ];
        w;
      ]
  in
  let res = run p in
  Alcotest.(check bool) "three sections ran" true
    (Arde.Machine.read_global res "seq" 0 = 3)

let test_thread_step_accounting () =
  let p =
    program
      ~globals:[ global "x" () ]
      ~entry:"main"
      [
        func "main"
          [
            blk "e" [ spawn "a" "w" [] ] (goto "j");
            blk "j" [ join (r "a") ] exit_t;
          ];
        func "w" [ blk "e" [ store (g "x") (imm 1); nop; nop ] exit_t ];
      ]
  in
  let res = run p in
  Alcotest.(check int) "two threads accounted" 2
    (Array.length res.Arde.Machine.thread_steps);
  Alcotest.(check int) "totals add up" res.Arde.Machine.steps
    (Array.fold_left ( + ) 0 res.Arde.Machine.thread_steps);
  Alcotest.(check bool) "at least one hand-off" true
    (res.Arde.Machine.context_switches >= 1)

let suite =
  [
    Alcotest.test_case "indirect call: out of range" `Quick
      test_indirect_call_out_of_range;
    Alcotest.test_case "indirect call: dispatch" `Quick test_indirect_call_dispatch;
    Alcotest.test_case "barrier before init faults" `Quick
      test_barrier_uninitialized_faults;
    Alcotest.test_case "join of unknown thread faults" `Quick
      test_join_unknown_thread_faults;
    Alcotest.test_case "negative index faults" `Quick test_negative_index_faults;
    Alcotest.test_case "recursion and return values" `Quick
      test_recursion_and_return_values;
    Alcotest.test_case "void return reads as zero" `Quick
      test_ret_without_value_defaults_zero;
    Alcotest.test_case "shift counts are masked" `Quick test_shift_masking;
    Alcotest.test_case "round robin quantum" `Quick test_round_robin_quantum;
    Alcotest.test_case "trace printing and length" `Quick test_trace_pp_and_length;
    Alcotest.test_case "lock handoff completes" `Quick test_lock_handoff_fifo;
    Alcotest.test_case "per-thread step accounting" `Quick
      test_thread_step_accounting;
  ]
