test/test_integration.ml: Alcotest Arde Arde_harness Arde_workloads Lazy List Printf
