test/test_runtime.ml: Alcotest Arde Arde_workloads Format List Printf String
