test/test_parse.ml: Alcotest Arde Arde_workloads List
