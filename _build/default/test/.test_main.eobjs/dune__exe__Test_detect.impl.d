test/test_detect.ml: Alcotest Arde Arde_workloads List
