test/test_smoke.ml: Alcotest Arde List
