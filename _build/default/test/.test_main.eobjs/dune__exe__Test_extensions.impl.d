test/test_extensions.ml: Alcotest Arde Arde_workloads List Result
