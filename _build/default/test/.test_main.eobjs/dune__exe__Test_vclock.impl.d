test/test_vclock.ml: Alcotest Arde_vclock QCheck2 QCheck_alcotest
