test/test_spin_runtime.ml: Alcotest Arde Arde_workloads List
