test/test_machine_edge.ml: Alcotest Arde Array Format List String
