test/test_util.ml: Alcotest Arde_util Array Fun List String
