test/test_tir.ml: Alcotest Arde List String
