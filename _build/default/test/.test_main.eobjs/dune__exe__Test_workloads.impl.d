test/test_workloads.ml: Alcotest Arde Arde_workloads Format List String
