test/test_props.ml: Arde Arde_workloads List QCheck2 QCheck_alcotest
