test/test_harness.ml: Alcotest Arde Arde_harness Arde_workloads List String
