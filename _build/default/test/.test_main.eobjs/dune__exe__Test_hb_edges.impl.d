test/test_hb_edges.ml: Alcotest Arde Arde_workloads Fun List
