test/test_fuzz.ml: Arde Arde_util List Printf QCheck2 QCheck_alcotest Result
