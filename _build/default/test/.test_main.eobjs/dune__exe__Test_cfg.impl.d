test/test_cfg.ml: Alcotest Arde Arde_workloads Array List Printf
