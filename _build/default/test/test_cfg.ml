(* The instrumentation phase: CFGs, dominators, natural loops, condition
   slices and the spin classifier's four criteria. *)

open Arde.Builder

let fn_diamond =
  func "d"
    [
      blk "a" [ mov "c" (imm 1) ] (br (r "c") "b1" "b2");
      blk "b1" [] (goto "join_");
      blk "b2" [] (goto "join_");
      blk "join_" [] exit_t;
    ]

let fn_loop =
  func "l"
    [
      blk "entry" [] (goto "head");
      blk "head" [ load "f" (g "flag") ] (br (r "f") "out" "body");
      blk "body" [ yield ] (goto "head");
      blk "out" [] exit_t;
    ]

let graph_of f = Arde.Graph.of_func f

let test_graph_edges () =
  let gr = graph_of fn_diamond in
  Alcotest.(check (list int)) "a's successors" [ 1; 2 ] gr.Arde.Graph.succs.(0);
  Alcotest.(check (list int)) "join's preds (sorted)" [ 1; 2 ]
    (List.sort compare gr.Arde.Graph.preds.(3))

let test_graph_reachability () =
  let f =
    func "u"
      [ blk "a" [] exit_t; blk "dead" [] (goto "a") ]
  in
  let gr = graph_of f in
  let reach = Arde.Graph.reachable gr in
  Alcotest.(check bool) "entry reachable" true reach.(0);
  Alcotest.(check bool) "dead unreachable" false reach.(1)

let test_dominators_diamond () =
  let gr = graph_of fn_diamond in
  let dom = Arde.Dominators.compute gr in
  Alcotest.(check (option int)) "idom b1 = a" (Some 0) (Arde.Dominators.idom dom 1);
  Alcotest.(check (option int)) "idom join = a" (Some 0)
    (Arde.Dominators.idom dom 3);
  Alcotest.(check bool) "a dominates everything" true
    (List.for_all (Arde.Dominators.dominates dom 0) [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "b1 does not dominate join" false
    (Arde.Dominators.dominates dom 1 3)

let test_natural_loop () =
  let gr = graph_of fn_loop in
  let dom = Arde.Dominators.compute gr in
  match Arde.Loops.find gr dom with
  | [ loop ] ->
      Alcotest.(check int) "header is head" 1 loop.Arde.Loops.header;
      Alcotest.(check (list int)) "body is {head, body}" [ 1; 2 ]
        loop.Arde.Loops.body;
      Alcotest.(check (list int)) "exit block" [ 1 ]
        (Arde.Loops.exit_blocks gr loop)
  | loops -> Alcotest.failf "expected 1 loop, got %d" (List.length loops)

let test_nested_loops () =
  let f =
    func "n"
      [
        blk "e" [] (goto "oh");
        blk "oh" [ load "a" (g "x") ] (br (r "a") "out" "ih");
        blk "ih" [ load "b" (g "y") ] (br (r "b") "oh_back" "ih_body");
        blk "ih_body" [] (goto "ih");
        blk "oh_back" [] (goto "oh");
        blk "out" [] exit_t;
      ]
  in
  let gr = graph_of f in
  let dom = Arde.Dominators.compute gr in
  let loops = Arde.Loops.find gr dom in
  Alcotest.(check int) "two loops" 2 (List.length loops)

let test_merged_same_header () =
  (* Two back edges to one header merge into a single loop. *)
  let f =
    func "m"
      [
        blk "e" [] (goto "h");
        blk "h" [ load "a" (g "x") ] (br (r "a") "p" "q");
        blk "p" [ load "b" (g "y") ] (br (r "b") "h" "out");
        blk "q" [] (goto "h");
        blk "out" [] exit_t;
      ]
  in
  let gr = graph_of f in
  let dom = Arde.Dominators.compute gr in
  let loops = Arde.Loops.find gr dom in
  Alcotest.(check int) "one merged loop" 1 (List.length loops);
  Alcotest.(check int) "header plus both back-edge paths" 3
    (List.length (List.hd loops).Arde.Loops.body)

(* ---- classifier ---- *)

let classify_first ?(k = 7) prog fname =
  let ctx = Arde.Slice.make_ctx prog in
  let f = List.find (fun f -> f.Arde.Types.fname = fname) prog.Arde.Types.funcs in
  let gr = graph_of f in
  let dom = Arde.Dominators.compute gr in
  match Arde.Loops.find gr dom with
  | [] -> Alcotest.fail "no loop found"
  | loop :: _ -> Arde.Spin.classify ~k ctx gr loop

let prog_with fns = program ~globals:[ global "flag" (); global "x" (); global "y" () ] ~entry:"main" (func "main" [ blk "e" [] exit_t ] :: fns)

let test_accept_simple_flag_loop () =
  let p = prog_with [ fn_loop ] in
  match classify_first p "l" with
  | Arde.Spin.Accepted c ->
      Alcotest.(check (list string)) "condition base" [ "flag" ]
        c.Arde.Spin.c_bases;
      Alcotest.(check int) "window 2" 2 c.Arde.Spin.c_window
  | Arde.Spin.Rejected (_, why) ->
      Alcotest.failf "rejected: %s" (Arde.Spin.rejection_to_string why)

let test_reject_no_load () =
  let f =
    func "r"
      [
        blk "e" [ mov "i" (imm 10) ] (goto "h");
        blk "h" [ subi "i" (r "i") (imm 1) ] (br (r "i") "h" "out");
        blk "out" [] exit_t;
      ]
  in
  match classify_first (prog_with [ f ]) "r" with
  | Arde.Spin.Rejected (_, Arde.Spin.No_memory_load) -> ()
  | Arde.Spin.Rejected (_, why) ->
      Alcotest.failf "wrong reason: %s" (Arde.Spin.rejection_to_string why)
  | Arde.Spin.Accepted _ -> Alcotest.fail "accepted a register loop"

let test_reject_writes_condition () =
  let f =
    func "w"
      [
        blk "e" [] (goto "h");
        blk "h"
          [ load "v" (g "x"); addi "v1" (r "v") (imm 1); store (g "x") (r "v1") ]
          (br (r "v1") "out" "h");
        blk "out" [] exit_t;
      ]
  in
  match classify_first (prog_with [ f ]) "w" with
  | Arde.Spin.Rejected (_, Arde.Spin.Writes_condition "x") -> ()
  | Arde.Spin.Rejected (_, why) ->
      Alcotest.failf "wrong reason: %s" (Arde.Spin.rejection_to_string why)
  | Arde.Spin.Accepted _ -> Alcotest.fail "accepted a self-updating loop"

let test_reject_too_large () =
  let pads =
    List.init 8 (fun i ->
        blk (Printf.sprintf "p%d" i) [ nop ]
          (goto (if i = 7 then "h" else Printf.sprintf "p%d" (i + 1))))
  in
  let f =
    func "big"
      (blk "e" [] (goto "h")
      :: blk "h" [ load "v" (g "flag") ] (br (r "v") "out" "p0")
      :: pads
      @ [ blk "out" [] exit_t ])
  in
  match classify_first ~k:7 (prog_with [ f ]) "big" with
  | Arde.Spin.Rejected (_, Arde.Spin.Too_large 9) -> ()
  | Arde.Spin.Rejected (_, why) ->
      Alcotest.failf "wrong reason: %s" (Arde.Spin.rejection_to_string why)
  | Arde.Spin.Accepted _ -> Alcotest.fail "accepted a 9-block loop"

let test_reject_indirect () =
  let chk =
    func "chk" ~params:[ "i" ]
      [
        blk "e" [ load "v" (gi "flag" (r "i")) ] (br (r "v") "y" "n");
        blk "y" [] (ret (Some (imm 1)));
        blk "n" [] (ret (Some (imm 0)));
      ]
  in
  let f =
    func "ind"
      [
        blk "e" [] (goto "h");
        blk "h" [ call_ind ~ret:"ok" (imm 0) [ imm 0 ] ] (br (r "ok") "out" "h");
        blk "out" [] exit_t;
      ]
  in
  let p =
    program
      ~globals:[ global "flag" () ]
      ~func_table:[ "chk" ] ~entry:"main"
      [ func "main" [ blk "e" [] exit_t ]; f; chk ]
  in
  match classify_first p "ind" with
  | Arde.Spin.Rejected (_, Arde.Spin.Indirect_condition) -> ()
  | Arde.Spin.Rejected (_, why) ->
      Alcotest.failf "wrong reason: %s" (Arde.Spin.rejection_to_string why)
  | Arde.Spin.Accepted _ -> Alcotest.fail "accepted a function-pointer condition"

let test_call_blocks_counted () =
  let chk =
    func "chk"
      [
        blk "e" [ load "v" (g "flag") ] (br (r "v") "y" "n");
        blk "y" [] (ret (Some (imm 1)));
        blk "n" [] (ret (Some (imm 0)));
      ]
  in
  let f =
    func "c"
      [
        blk "e" [] (goto "h");
        blk "h" [ call ~ret:"ok" "chk" [] ] (br (r "ok") "out" "h");
        blk "out" [] exit_t;
      ]
  in
  let p =
    program ~globals:[ global "flag" () ] ~entry:"main"
      [ func "main" [ blk "e" [] exit_t ]; f; chk ]
  in
  match classify_first p "c" with
  | Arde.Spin.Accepted c ->
      Alcotest.(check int) "1 loop block + 3 callee blocks" 4
        c.Arde.Spin.c_window;
      Alcotest.(check int) "callee load marked" 1 (List.length c.Arde.Spin.c_loads)
  | Arde.Spin.Rejected (_, why) ->
      Alcotest.failf "rejected: %s" (Arde.Spin.rejection_to_string why)

let test_recursive_condition_opaque () =
  let rec_chk =
    func "rchk"
      [
        blk "e" [ call ~ret:"v" "rchk" [] ] (br (r "v") "y" "n");
        blk "y" [] (ret (Some (imm 1)));
        blk "n" [] (ret (Some (imm 0)));
      ]
  in
  let f =
    func "c"
      [
        blk "e" [] (goto "h");
        blk "h" [ call ~ret:"ok" "rchk" [] ] (br (r "ok") "out" "h");
        blk "out" [] exit_t;
      ]
  in
  let p =
    program ~entry:"main"
      [ func "main" [ blk "e" [] exit_t ]; f; rec_chk ]
  in
  match classify_first p "c" with
  | Arde.Spin.Rejected (_, Arde.Spin.Indirect_condition) -> ()
  | Arde.Spin.Rejected (_, why) ->
      Alcotest.failf "wrong reason: %s" (Arde.Spin.rejection_to_string why)
  | Arde.Spin.Accepted _ -> Alcotest.fail "accepted a recursive condition"

let test_window_monotone () =
  (* A loop accepted at window k stays accepted at every k' > k. *)
  let case =
    match Arde_workloads.Racey.find "adhoc_flag_w5/2" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  let accepted k = List.length (Arde.Instrument.spins (Arde.analyze_spins ~k case)) in
  Alcotest.(check bool) "monotone in k" true
    (accepted 3 <= accepted 5 && accepted 5 <= accepted 7 && accepted 7 <= accepted 9)

let test_callee_counting_ablation () =
  (* Without callee accounting, a call-conditioned loop looks tiny and is
     accepted at k = 3; with it, only k >= 7 finds it. *)
  let c =
    match Arde_workloads.Racey.find "adhoc_flag_call/2" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> Alcotest.fail "case missing"
  in
  let n ?count_callees k =
    List.length (Arde.Instrument.spins (Arde.Instrument.analyze ?count_callees ~k c))
  in
  Alcotest.(check bool) "counted: invisible at k=3" true (n 3 < n 7);
  Alcotest.(check int) "uncounted: found already at k=3" (n 7)
    (n ~count_callees:false 3)

let test_instrument_lookups () =
  let p = prog_with [ fn_loop ] in
  let inst = Arde.analyze_spins ~k:7 p in
  Alcotest.(check bool) "flag is a sync base" true
    (Arde.Instrument.is_sync_base inst "flag");
  Alcotest.(check bool) "x is not" false (Arde.Instrument.is_sync_base inst "x");
  match Arde.Instrument.header_at inst ~fname:"l" ~lbl:"head" with
  | Some id ->
      Alcotest.(check bool) "head in its own loop" true
        (Arde.Instrument.in_loop inst ~fname:"l" ~lbl:"head" id);
      Alcotest.(check bool) "body in loop" true
        (Arde.Instrument.in_loop inst ~fname:"l" ~lbl:"body" id);
      Alcotest.(check bool) "out not in loop" false
        (Arde.Instrument.in_loop inst ~fname:"l" ~lbl:"out" id);
      let marked =
        Arde.Instrument.marked_loops_at inst
          { Arde.Types.lfunc = "l"; lblk = "head"; lidx = 0 }
      in
      Alcotest.(check (list int)) "condition load marked" [ id ] marked
  | None -> Alcotest.fail "header not found"

let suite =
  [
    Alcotest.test_case "graph edges" `Quick test_graph_edges;
    Alcotest.test_case "graph reachability" `Quick test_graph_reachability;
    Alcotest.test_case "dominators on a diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "natural loop detection" `Quick test_natural_loop;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "same-header loops merge" `Quick test_merged_same_header;
    Alcotest.test_case "classifier accepts a flag loop" `Quick
      test_accept_simple_flag_loop;
    Alcotest.test_case "classifier rejects: no memory load" `Quick
      test_reject_no_load;
    Alcotest.test_case "classifier rejects: writes its condition" `Quick
      test_reject_writes_condition;
    Alcotest.test_case "classifier rejects: window exceeded" `Quick
      test_reject_too_large;
    Alcotest.test_case "classifier rejects: function pointer" `Quick
      test_reject_indirect;
    Alcotest.test_case "classifier rejects: recursive condition" `Quick
      test_recursive_condition_opaque;
    Alcotest.test_case "condition-call blocks count toward the window" `Quick
      test_call_blocks_counted;
    Alcotest.test_case "acceptance is monotone in k" `Quick test_window_monotone;
    Alcotest.test_case "instrument lookup structures" `Quick
      test_instrument_lookups;
    Alcotest.test_case "callee-counting ablation" `Quick
      test_callee_counting_ablation;
  ]
