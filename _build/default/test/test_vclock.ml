(* Vector clocks: unit tests plus qcheck lattice laws. *)

module Vc = Arde_vclock.Vector_clock

let vc = Alcotest.testable Vc.pp Vc.equal

let test_bottom () =
  Alcotest.(check bool) "bottom is bottom" true (Vc.is_bottom Vc.bottom);
  Alcotest.(check int) "bottom components are 0" 0 (Vc.get Vc.bottom 5)

let test_inc_get () =
  let c = Vc.inc (Vc.inc Vc.bottom 2) 2 in
  Alcotest.(check int) "incremented twice" 2 (Vc.get c 2);
  Alcotest.(check int) "others still 0" 0 (Vc.get c 0)

let test_set_trims () =
  let c = Vc.set (Vc.set Vc.bottom 4 7) 4 0 in
  Alcotest.(check bool) "trailing zeros trimmed to bottom" true (Vc.is_bottom c)

let test_join () =
  let a = Vc.of_list [ 1; 5; 0; 2 ] and b = Vc.of_list [ 3; 1; 4 ] in
  Alcotest.check vc "pointwise max" (Vc.of_list [ 3; 5; 4; 2 ]) (Vc.join a b)

let test_leq () =
  let a = Vc.of_list [ 1; 2 ] and b = Vc.of_list [ 1; 3; 1 ] in
  Alcotest.(check bool) "a <= b" true (Vc.leq a b);
  Alcotest.(check bool) "not b <= a" false (Vc.leq b a)

let test_size_words () =
  Alcotest.(check bool) "longer clocks cost more" true
    (Vc.size_words (Vc.of_list [ 1; 1; 1; 1 ]) > Vc.size_words Vc.bottom)

(* qcheck generators and laws *)

let gen_vc =
  QCheck2.Gen.(map Vc.of_list (list_size (int_bound 8) (int_bound 20)))

let law name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen f)

let props =
  [
    law "join is commutative" (QCheck2.Gen.pair gen_vc gen_vc) (fun (a, b) ->
        Vc.equal (Vc.join a b) (Vc.join b a));
    law "join is associative"
      (QCheck2.Gen.triple gen_vc gen_vc gen_vc)
      (fun (a, b, c) ->
        Vc.equal (Vc.join a (Vc.join b c)) (Vc.join (Vc.join a b) c));
    law "join is idempotent" gen_vc (fun a -> Vc.equal (Vc.join a a) a);
    law "bottom is the unit" gen_vc (fun a -> Vc.equal (Vc.join a Vc.bottom) a);
    law "operands precede their join" (QCheck2.Gen.pair gen_vc gen_vc)
      (fun (a, b) -> Vc.leq a (Vc.join a b) && Vc.leq b (Vc.join a b));
    law "leq is reflexive" gen_vc (fun a -> Vc.leq a a);
    law "leq is antisymmetric" (QCheck2.Gen.pair gen_vc gen_vc) (fun (a, b) ->
        (not (Vc.leq a b && Vc.leq b a)) || Vc.equal a b);
    law "inc strictly increases" (QCheck2.Gen.pair gen_vc (QCheck2.Gen.int_bound 7))
      (fun (a, t) ->
        let b = Vc.inc a t in
        Vc.leq a b && not (Vc.leq b a));
    law "to_list round-trips" gen_vc (fun a ->
        Vc.equal a (Vc.of_list (Vc.to_list a)));
  ]

let suite =
  [
    Alcotest.test_case "bottom" `Quick test_bottom;
    Alcotest.test_case "inc/get" `Quick test_inc_get;
    Alcotest.test_case "set trims" `Quick test_set_trims;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "leq" `Quick test_leq;
    Alcotest.test_case "size accounting" `Quick test_size_words;
  ]
  @ props
