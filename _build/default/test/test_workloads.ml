(* The unit suite's own sanity: 120 cases, all valid TIR, all executable
   to completion (no deadlock/fault/fuel except where a case is a known
   lost-signal bug), and runtime self-checks green on race-free cases. *)

module W = Arde_workloads

let cases = W.Racey.all ()

(* Cases that may legitimately deadlock (lost-signal bugs by design). *)
let may_deadlock name =
  List.exists
    (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
    [ "racy_cv_unlocked_pred" ]

let test_count () = Alcotest.(check int) "exactly 120 cases" 120 (List.length cases)

let test_unique_names () =
  let names = List.map (fun c -> c.W.Racey.name) cases in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_all_validate () =
  List.iter
    (fun c ->
      match Arde.Validate.check c.W.Racey.program with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s: %s" c.W.Racey.name
            (String.concat "; " (List.map Arde.Validate.error_to_string es)))
    cases

let test_all_lowered_validate () =
  List.iter
    (fun c ->
      let lowered = Arde.Lower.lower c.W.Racey.program in
      match Arde.Validate.check lowered with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s (lowered): %s" c.W.Racey.name
            (String.concat "; " (List.map Arde.Validate.error_to_string es)))
    cases

let run_case ?(lowered = false) c seed =
  let program =
    if lowered then Arde.Lower.lower c.W.Racey.program else c.W.Racey.program
  in
  let cfg = { Arde.Machine.default_config with seed } in
  Arde.Machine.run_program cfg program

let test_all_run () =
  List.iter
    (fun c ->
      let res = run_case c 3 in
      match res.Arde.Machine.outcome with
      | Arde.Machine.Finished ->
          if c.W.Racey.category <> "racy" then
            List.iter
              (fun (loc, msg) ->
                Alcotest.failf "%s: check failed at %s: %s" c.W.Racey.name
                  (Arde.Pretty.loc_to_string loc) msg)
              res.Arde.Machine.check_failures
      | Arde.Machine.Deadlock _ when may_deadlock c.W.Racey.name -> ()
      | o ->
          Alcotest.failf "%s: %s" c.W.Racey.name
            (Format.asprintf "%a" Arde.Machine.pp_outcome o))
    cases

let test_all_run_lowered () =
  List.iter
    (fun c ->
      let res = run_case ~lowered:true c 4 in
      match res.Arde.Machine.outcome with
      | Arde.Machine.Finished -> ()
      | Arde.Machine.Deadlock _ when may_deadlock c.W.Racey.name -> ()
      | o ->
          Alcotest.failf "%s (lowered): %s" c.W.Racey.name
            (Format.asprintf "%a" Arde.Machine.pp_outcome o))
    cases

let test_categories () =
  let cats = W.Racey.categories cases in
  Alcotest.(check (list (pair string int)))
    "category histogram"
    [ ("adhoc", 38); ("lib", 44); ("racy", 38) ]
    cats

let suite =
  [
    Alcotest.test_case "120 cases" `Quick test_count;
    Alcotest.test_case "unique names" `Quick test_unique_names;
    Alcotest.test_case "category histogram" `Quick test_categories;
    Alcotest.test_case "all cases validate" `Quick test_all_validate;
    Alcotest.test_case "all cases validate after lowering" `Quick
      test_all_lowered_validate;
    Alcotest.test_case "all cases run to completion" `Slow test_all_run;
    Alcotest.test_case "all cases run lowered" `Slow test_all_run_lowered;
  ]
