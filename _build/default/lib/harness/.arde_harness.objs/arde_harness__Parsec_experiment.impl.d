lib/harness/parsec_experiment.ml: Arde Arde_util Arde_workloads Format List Option String
