lib/harness/suite_experiment.ml: Arde Arde_util Arde_workloads Format List
