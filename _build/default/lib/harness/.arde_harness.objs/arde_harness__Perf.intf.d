lib/harness/perf.mli: Arde Arde_workloads
