lib/harness/perf.ml: Arde Arde_util Arde_workloads Gc Lazy List Printf Unix
