lib/harness/suite_experiment.mli: Arde Arde_workloads Format
