lib/harness/parsec_experiment.mli: Arde Arde_workloads
