type t = int array
(* Invariant: no trailing zero components (so [bottom] is [||] and
   structural equality coincides with clock equality). *)

let bottom = [||]

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let get c t = if t < Array.length c then c.(t) else 0

let set c t v =
  let n = max (Array.length c) (t + 1) in
  let a = Array.make n 0 in
  Array.blit c 0 a 0 (Array.length c);
  a.(t) <- v;
  trim a

let inc c t = set c t (get c t + 1)

let join a b =
  if Array.length a < Array.length b then
    Array.mapi (fun i bv -> max bv (get a i)) b
  else Array.mapi (fun i av -> max av (get b i)) a

let leq a b =
  let rec go i = i >= Array.length a || (a.(i) <= get b i && go (i + 1)) in
  go 0

let is_bottom c = Array.length c = 0

let of_list l = trim (Array.of_list l)
let to_list c = Array.to_list c
let equal a b = a = b

let pp ppf c =
  Format.fprintf ppf "<%s>"
    (String.concat ","
       (List.map string_of_int (Array.to_list c)))

let size_words c = 2 + Array.length c
