(** Vector clocks for happens-before tracking.

    Values are immutable; [join] and [inc] return fresh clocks.  Thread ids
    are small non-negative integers (the machine caps them at
    [Tir.Types.max_threads]), so clocks are dense integer arrays trimmed to
    the highest non-zero component — compact enough to sit in every shadow
    cell, which is what the paper's memory-consumption figure measures. *)

type t

val bottom : t
(** The all-zero clock. *)

val get : t -> int -> int
val inc : t -> int -> t
(** [inc c t] bumps component [t] by one. *)

val set : t -> int -> int -> t

val join : t -> t -> t
(** Component-wise maximum. *)

val leq : t -> t -> bool
(** Pointwise [<=]; the happens-before order on clocks. *)

val is_bottom : t -> bool

val of_list : int list -> t
val to_list : t -> int list
(** Trailing zeros trimmed. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val size_words : t -> int
(** Approximate heap footprint in words, for the memory experiment. *)
