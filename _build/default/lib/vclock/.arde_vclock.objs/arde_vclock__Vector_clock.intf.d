lib/vclock/vector_clock.mli: Format
