lib/vclock/vector_clock.ml: Array Format List String
