open Types

let operand ppf = function
  | Imm n -> Format.fprintf ppf "%d" n
  | Reg x -> Format.fprintf ppf "%%%s" x

let addr ppf a =
  match a.index with
  | Imm 0 -> Format.fprintf ppf "@%s" a.base
  | idx -> Format.fprintf ppf "@%s[%a]" a.base operand idx

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmpop_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let rmw_name = function
  | Rmw_add -> "add"
  | Rmw_exchange -> "xchg"
  | Rmw_or -> "or"
  | Rmw_and -> "and"

let args ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    operand ppf xs

let ret_prefix ppf = function
  | Some d -> Format.fprintf ppf "%%%s <- " d
  | None -> ()

let instr ppf = function
  | Mov (d, o) -> Format.fprintf ppf "%%%s <- %a" d operand o
  | Binop (d, op, a, b) ->
      Format.fprintf ppf "%%%s <- %s %a, %a" d (binop_name op) operand a
        operand b
  | Cmp (d, op, a, b) ->
      Format.fprintf ppf "%%%s <- cmp.%s %a, %a" d (cmpop_name op) operand a
        operand b
  | Load (d, a) -> Format.fprintf ppf "%%%s <- load %a" d addr a
  | Store (a, v) -> Format.fprintf ppf "store %a, %a" addr a operand v
  | Cas (ok, a, e, n) ->
      Format.fprintf ppf "%%%s <- cas %a, %a, %a" ok addr a operand e operand n
  | Rmw (old, op, a, v) ->
      Format.fprintf ppf "%%%s <- rmw.%s %a, %a" old (rmw_name op) addr a
        operand v
  | Fence -> Format.pp_print_string ppf "fence"
  | Call (d, f, xs) -> Format.fprintf ppf "%acall %s(%a)" ret_prefix d f args xs
  | Call_indirect (d, t, xs) ->
      Format.fprintf ppf "%acall.ind [%a](%a)" ret_prefix d operand t args xs
  | Spawn (d, f, xs) -> Format.fprintf ppf "%%%s <- spawn %s(%a)" d f args xs
  | Join t -> Format.fprintf ppf "join %a" operand t
  | Lock m -> Format.fprintf ppf "lock %a" addr m
  | Unlock m -> Format.fprintf ppf "unlock %a" addr m
  | Cond_wait (cv, m) -> Format.fprintf ppf "wait %a, %a" addr cv addr m
  | Cond_signal cv -> Format.fprintf ppf "signal %a" addr cv
  | Cond_broadcast cv -> Format.fprintf ppf "broadcast %a" addr cv
  | Barrier_init (b, n) ->
      Format.fprintf ppf "barrier_init %a, %a" addr b operand n
  | Barrier_wait b -> Format.fprintf ppf "barrier_wait %a" addr b
  | Sem_init (s, n) -> Format.fprintf ppf "sem_init %a, %a" addr s operand n
  | Sem_post s -> Format.fprintf ppf "sem_post %a" addr s
  | Sem_wait s -> Format.fprintf ppf "sem_wait %a" addr s
  | Yield -> Format.pp_print_string ppf "yield"
  | Check (v, msg) -> Format.fprintf ppf "check %a %S" operand v msg
  | Nop -> Format.pp_print_string ppf "nop"

let term ppf = function
  | Goto l -> Format.fprintf ppf "goto %s" l
  | Br (v, a, b) -> Format.fprintf ppf "br %a ? %s : %s" operand v a b
  | Ret None -> Format.pp_print_string ppf "ret"
  | Ret (Some v) -> Format.fprintf ppf "ret %a" operand v
  | Exit -> Format.pp_print_string ppf "exit"

let block ppf b =
  Format.fprintf ppf "@[<v 2>%s:" b.lbl;
  List.iter (fun i -> Format.fprintf ppf "@,%a" instr i) b.ins;
  Format.fprintf ppf "@,%a@]" term b.term

let func ppf f =
  Format.fprintf ppf "@[<v 2>func %s(%s):" f.fname
    (String.concat ", " f.params);
  List.iter (fun b -> Format.fprintf ppf "@,%a" block b) f.blocks;
  Format.fprintf ppf "@]"

let program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun gl ->
      if gl.gname <> thread_done_global then
        Format.fprintf ppf "global %s[%d] = %d@," gl.gname gl.size gl.ginit)
    p.globals;
  if p.func_table <> [] then
    Format.fprintf ppf "func_table = [%s]@," (String.concat "; " p.func_table);
  Format.fprintf ppf "entry = %s@," p.entry;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    func ppf p.funcs;
  Format.fprintf ppf "@]"

let loc ppf l =
  if l.lidx < 0 then Format.fprintf ppf "%s:%s:term" l.lfunc l.lblk
  else Format.fprintf ppf "%s:%s:%d" l.lfunc l.lblk l.lidx

let loc_to_string l = Format.asprintf "%a" loc l
let instr_to_string i = Format.asprintf "%a" instr i
let program_to_string p = Format.asprintf "%a" program p
