(** Static well-formedness checks for TIR programs.

    [check] verifies, per function: unique block labels, branch targets
    resolve, called functions exist with matching arity, every used global
    is declared, the entry function exists and takes no parameters,
    indirect-call table entries resolve, and every register read has a
    potential definition (parameter or prior assignment anywhere in the
    function — a cheap over-approximation, full definite-assignment is the
    interpreter's job). *)

type error = { where : string; what : string }

val check : Types.program -> (unit, error list) result

val check_exn : Types.program -> unit
(** @raise Invalid_argument with a rendered error list. *)

val error_to_string : error -> string
