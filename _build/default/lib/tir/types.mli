(** Core type definitions of TIR, the threaded register IR.

   TIR plays the role that x86 machine code plays for the paper's Valgrind
   tool: programs are made of functions, functions of basic blocks, blocks
   of simple instructions over integer registers and named global memory.
   Threads are first class (spawn / join), and the synchronization
   primitives of a "known library" (mutexes, condition variables, barriers,
   semaphores) exist as native instructions that [Lower] can rewrite into
   plain spinning-read-loop implementations to model unknown libraries.

    This module is types-only; construction helpers live in [Builder],
    checking in [Validate], printing in [Pretty]. *)

type reg = string
(* Virtual register, private to a stack frame. *)

type label = string
(* Basic-block label, unique within a function. *)

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type rmw_op = Rmw_add | Rmw_exchange | Rmw_or | Rmw_and

type operand = Imm of int | Reg of reg

(* A memory address: statically named global plus a dynamic element index.
   Scalars are size-1 globals addressed with index [Imm 0]. *)
type addr = { base : string; index : operand }

type instr =
  | Mov of reg * operand
  | Binop of reg * binop * operand * operand
  | Cmp of reg * cmpop * operand * operand
  | Load of reg * addr
  | Store of addr * operand
  | Cas of reg * addr * operand * operand
    (* [Cas (ok, a, expect, new_)]: atomically, if [!a = expect] then
       [a := new_] and [ok := 1] else [ok := 0]. *)
  | Rmw of reg * rmw_op * addr * operand
    (* [Rmw (old, op, a, arg)]: atomically [old := !a; a := op !a arg]. *)
  | Fence
  | Call of reg option * string * operand list
  | Call_indirect of reg option * operand * operand list
    (* Callee is [func_table.(v)] for the operand's value [v].  Models
       function pointers, which defeat the static condition analysis. *)
  | Spawn of reg * string * operand list (* reg receives the child tid *)
  | Join of operand
  | Lock of addr
  | Unlock of addr
  | Cond_wait of addr * addr (* condition variable, protecting mutex *)
  | Cond_signal of addr
  | Cond_broadcast of addr
  | Barrier_init of addr * operand (* participant count *)
  | Barrier_wait of addr
  | Sem_init of addr * operand
  | Sem_post of addr
  | Sem_wait of addr
  | Yield
  | Check of operand * string
    (* Runtime assertion: records a failure in the run result when the
       operand evaluates to 0.  Used by workloads to assert that the
       synchronization under test really synchronizes. *)
  | Nop

type term =
  | Goto of label
  | Br of operand * label * label (* nonzero -> first target *)
  | Ret of operand option
  | Exit (* thread exit *)

type block = { lbl : label; ins : instr list; term : term }

type func = {
  fname : string;
  params : reg list;
  blocks : block list; (* the entry block is the first one *)
}

type global = { gname : string; size : int; ginit : int }

type program = {
  funcs : func list;
  globals : global list;
  func_table : string list; (* indirect-call targets, indexed by value *)
  entry : string; (* function run by the initial thread, no arguments *)
}

(* A source location: [idx] is the instruction's position inside the
   block's [ins] list, or -1 for the block terminator. *)
type loc = { lfunc : string; lblk : label; lidx : int }

val term_loc : fname:string -> lbl:label -> loc
(** The location of a block's terminator. *)

val compare_loc : loc -> loc -> int
val equal_loc : loc -> loc -> bool

val thread_done_global : string
(** Reserved global written by the machine when a thread terminates;
    [Lower] turns [Join] into a spinning read of it. *)

val max_threads : int
