lib/tir/validate.mli: Types
