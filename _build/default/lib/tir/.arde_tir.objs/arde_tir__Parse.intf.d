lib/tir/parse.mli: Types
