lib/tir/types.mli:
