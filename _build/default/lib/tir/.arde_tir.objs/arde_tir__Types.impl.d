lib/tir/types.ml: Int String
