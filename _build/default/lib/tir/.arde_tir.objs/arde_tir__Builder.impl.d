lib/tir/builder.ml: List Types
