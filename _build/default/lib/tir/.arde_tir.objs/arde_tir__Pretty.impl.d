lib/tir/pretty.ml: Format List String Types
