lib/tir/pretty.mli: Format Types
