lib/tir/parse.ml: Buffer Builder List Option Printf Scanf String Types
