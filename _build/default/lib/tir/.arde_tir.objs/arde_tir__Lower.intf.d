lib/tir/lower.mli: Types
