lib/tir/builder.mli: Types
