lib/tir/lower.ml: Builder Hashtbl List String Types
