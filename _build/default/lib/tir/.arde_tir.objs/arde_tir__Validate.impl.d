lib/tir/validate.ml: List Printf Set String Types
