(** Textual TIR parser — the inverse of {!Pretty}.

    The concrete syntax is exactly what {!Pretty.program} prints, so any
    program can be dumped, edited and re-run:

    {v
    global flag[1] = 0
    global data[1] = 0
    entry = main

    func main():
    entry:
      %t1 <- spawn producer()
      %t2 <- spawn consumer()
      goto wait
    wait:
      join %t1
      join %t2
      exit

    func producer():
    entry:
      store @data, 42
      store @flag, 1
      exit

    func consumer():
    entry:
      goto spin
    spin:
      %f <- load @flag
      br %f ? work : spin
    work:
      %d <- load @data
      store @data, %d
      exit
    v}

    Comments run from [#] to end of line.  [parse] does not validate
    semantics — run {!Validate.check} on the result. *)

type error = { line : int; message : string }

val program : string -> (Types.program, error) result
(** Parse a whole program from a string. *)

val program_exn : string -> Types.program
(** @raise Invalid_argument with a located message. *)

val error_to_string : error -> string
