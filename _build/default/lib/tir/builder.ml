open Types

let imm n = Imm n
let r x = Reg x
let g base = { base; index = Imm 0 }
let gi base index = { base; index }

let mov d o = Mov (d, o)
let addi d a b = Binop (d, Add, a, b)
let subi d a b = Binop (d, Sub, a, b)
let muli d a b = Binop (d, Mul, a, b)
let divi d a b = Binop (d, Div, a, b)
let modi d a b = Binop (d, Mod, a, b)
let andi d a b = Binop (d, And, a, b)
let ori d a b = Binop (d, Or, a, b)
let xori d a b = Binop (d, Xor, a, b)
let shli d a b = Binop (d, Shl, a, b)
let shri d a b = Binop (d, Shr, a, b)
let cmp op d a b = Cmp (d, op, a, b)
let load d a = Load (d, a)
let store a v = Store (a, v)
let cas ok a expect new_ = Cas (ok, a, expect, new_)
let rmw op old a arg = Rmw (old, op, a, arg)
let fence = Fence
let call ?ret f args = Call (ret, f, args)
let call_ind ?ret target args = Call_indirect (ret, target, args)
let spawn d f args = Spawn (d, f, args)
let join t = Join t
let lock m = Lock m
let unlock m = Unlock m
let wait cv m = Cond_wait (cv, m)
let signal cv = Cond_signal cv
let broadcast cv = Cond_broadcast cv
let barrier_init b n = Barrier_init (b, n)
let barrier_wait b = Barrier_wait b
let sem_init s n = Sem_init (s, n)
let sem_post s = Sem_post s
let sem_wait s = Sem_wait s
let yield = Yield
let check v msg = Check (v, msg)
let nop = Nop

let goto l = Goto l
let br v a b = Br (v, a, b)
let ret v = Ret v
let ret0 = Ret None
let exit_t = Exit

let blk lbl ins term = { lbl; ins; term }
let func fname ?(params = []) blocks = { fname; params; blocks }

let global gname ?(size = 1) ?(init = 0) () = (gname, size, init)

let program ?(globals = []) ?(func_table = []) ~entry funcs =
  let globals =
    List.map (fun (gname, size, ginit) -> { gname; size; ginit }) globals
  in
  (* The machine writes __thread_done[tid] on exit; declare it implicitly
     so every program can be lowered and joined on. *)
  let globals =
    if List.exists (fun gl -> gl.gname = thread_done_global) globals then
      globals
    else
      { gname = thread_done_global; size = max_threads; ginit = 0 } :: globals
  in
  { funcs; globals; func_table; entry }

let counted_loop ~tag ~counter ~limit ~body ~next =
  let head = tag ^ "_head" and bdy = tag ^ "_body" and inc = tag ^ "_inc" in
  let t = counter ^ "_cmp" in
  [
    blk head [ cmp Lt t (r counter) limit ] (br (r t) bdy next);
    blk bdy body (goto inc);
    blk inc [ addi counter (r counter) (imm 1) ] (goto head);
  ]
