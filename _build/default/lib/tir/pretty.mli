(** Printers for TIR values, used by the CLI's [show] command, error
    messages, and race reports. *)

open Types

val operand : Format.formatter -> operand -> unit
val addr : Format.formatter -> addr -> unit
val instr : Format.formatter -> instr -> unit
val term : Format.formatter -> term -> unit
val block : Format.formatter -> block -> unit
val func : Format.formatter -> func -> unit
val program : Format.formatter -> program -> unit
val loc : Format.formatter -> loc -> unit

val loc_to_string : loc -> string
val instr_to_string : instr -> string
val program_to_string : program -> string
