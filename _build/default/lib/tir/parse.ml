open Types

type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

exception Err of string

let fail fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

(* ------------------------------------------------------------------ *)
(* Tokens                                                             *)

type tok =
  | Id of string
  | Regtok of string
  | Globtok of string
  | Inttok of int
  | Strtok of string
  | Arrow
  | Comma
  | LPar
  | RPar
  | LBrk
  | RBrk
  | Quest
  | Colon
  | Semi

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some line.[!i + k] else None in
  (* Identifiers may embed ':' when it glues two name parts (lowered
     helper names like __lock:m); a ':' followed by a non-ident char is
     the standalone Colon token of a br terminator. *)
  let scan_ident start =
    let j = ref start in
    let continue () =
      !j < n
      && (is_ident_char line.[!j]
         || (line.[!j] = ':' && !j + 1 < n && is_ident_char line.[!j + 1]))
    in
    while continue () do
      incr j
    done;
    let s = String.sub line start (!j - start) in
    i := !j;
    s
  in
  let scan_int start =
    let j = ref start in
    if !j < n && line.[!j] = '-' then incr j;
    while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
      incr j
    done;
    let s = String.sub line start (!j - start) in
    i := !j;
    int_of_string s
  in
  let scan_string start =
    (* start points at the opening quote *)
    let buf = Buffer.create 16 in
    let j = ref (start + 1) in
    let rec go () =
      if !j >= n then fail "unterminated string"
      else
        match line.[!j] with
        | '"' -> incr j
        | '\\' when !j + 1 < n ->
            Buffer.add_char buf line.[!j];
            Buffer.add_char buf line.[!j + 1];
            j := !j + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr j;
            go ()
    in
    go ();
    i := !j;
    Scanf.unescaped (Buffer.contents buf)
  in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '#' then i := n (* comment *)
    else if c = '<' && peek 1 = Some '-' then begin
      push Arrow;
      i := !i + 2
    end
    else if c = ',' then (push Comma; incr i)
    else if c = '(' then (push LPar; incr i)
    else if c = ')' then (push RPar; incr i)
    else if c = '[' then (push LBrk; incr i)
    else if c = ']' then (push RBrk; incr i)
    else if c = '?' then (push Quest; incr i)
    else if c = ':' then (push Colon; incr i)
    else if c = ';' then (push Semi; incr i)
    else if c = '=' then (push (Id "="); incr i)
    else if c = '%' then begin
      incr i;
      push (Regtok (scan_ident !i))
    end
    else if c = '@' then begin
      incr i;
      push (Globtok (scan_ident !i))
    end
    else if c = '"' then push (Strtok (scan_string !i))
    else if c = '-' || (c >= '0' && c <= '9') then push (Inttok (scan_int !i))
    else if is_ident_char c then push (Id (scan_ident !i))
    else fail "unexpected character %C" c
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token-list parsing                                                 *)

let operand = function
  | Inttok v :: rest -> (Imm v, rest)
  | Regtok x :: rest -> (Reg x, rest)
  | _ -> fail "expected an operand (integer or %%register)"

let addr = function
  | Globtok base :: LBrk :: rest -> (
      let idx, rest = operand rest in
      match rest with
      | RBrk :: rest -> ({ base; index = idx }, rest)
      | _ -> fail "expected ']' after address index")
  | Globtok base :: rest -> ({ base; index = Imm 0 }, rest)
  | _ -> fail "expected an @address"

let comma = function Comma :: rest -> rest | _ -> fail "expected ','"

let rec args_until_rpar acc = function
  | RPar :: rest -> (List.rev acc, rest)
  | toks when acc = [] ->
      let o, rest = operand toks in
      args_until_rpar [ o ] rest
  | Comma :: toks ->
      let o, rest = operand toks in
      args_until_rpar (o :: acc) rest
  | _ -> fail "expected ',' or ')' in argument list"

let call_args = function
  | Id f :: LPar :: rest ->
      let xs, rest = args_until_rpar [] rest in
      (f, xs, rest)
  | _ -> fail "expected a function call"

let binop_of_name = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "mod" -> Some Mod
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | _ -> None

let cmpop_of_name = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "le" -> Some Le
  | "gt" -> Some Gt
  | "ge" -> Some Ge
  | _ -> None

let suffix_after prefix s =
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let two_operands rest =
  let a, rest = operand rest in
  let rest = comma rest in
  let b, rest = operand rest in
  (a, b, rest)

let finish instr = function
  | [] -> instr
  | _ -> fail "trailing tokens after instruction"

(* An assignment: '%d <- rhs'. *)
let assignment d rhs =
  match rhs with
  | Id "load" :: rest ->
      let a, rest = addr rest in
      finish (Load (d, a)) rest
  | Id "cas" :: rest ->
      let a, rest = addr rest in
      let rest = comma rest in
      let e, nv, rest = two_operands rest in
      finish (Cas (d, a, e, nv)) rest
  | Id name :: rest when suffix_after "rmw." name <> None -> (
      let op =
        match suffix_after "rmw." name with
        | Some "add" -> Rmw_add
        | Some "xchg" -> Rmw_exchange
        | Some "or" -> Rmw_or
        | Some "and" -> Rmw_and
        | _ -> fail "unknown rmw operation %S" name
      in
      let a, rest = addr rest in
      let rest = comma rest in
      let v, rest = operand rest in
      match rest with [] -> Rmw (d, op, a, v) | _ -> fail "trailing tokens")
  | Id name :: rest when suffix_after "cmp." name <> None -> (
      match cmpop_of_name (Option.get (suffix_after "cmp." name)) with
      | Some op ->
          let a, b, rest = two_operands rest in
          finish (Cmp (d, op, a, b)) rest
      | None -> fail "unknown comparison %S" name)
  | Id "call.ind" :: LBrk :: rest -> (
      let target, rest = operand rest in
      match rest with
      | RBrk :: LPar :: rest ->
          let xs, rest = args_until_rpar [] rest in
          finish (Call_indirect (Some d, target, xs)) rest
      | _ -> fail "expected '](' in indirect call")
  | Id "call" :: rest ->
      let f, xs, rest = call_args rest in
      finish (Call (Some d, f, xs)) rest
  | Id "spawn" :: rest ->
      let f, xs, rest = call_args rest in
      finish (Spawn (d, f, xs)) rest
  | Id name :: rest when binop_of_name name <> None ->
      let a, b, rest = two_operands rest in
      finish (Binop (d, Option.get (binop_of_name name), a, b)) rest
  | _ ->
      let o, rest = operand rhs in
      finish (Mov (d, o)) rest

let instruction toks =
  match toks with
  | Regtok d :: Arrow :: rhs -> assignment d rhs
  | Id "store" :: rest ->
      let a, rest = addr rest in
      let rest = comma rest in
      let v, rest = operand rest in
      finish (Store (a, v)) rest
  | [ Id "fence" ] -> Fence
  | [ Id "yield" ] -> Yield
  | [ Id "nop" ] -> Nop
  | Id "call.ind" :: LBrk :: rest -> (
      let target, rest = operand rest in
      match rest with
      | RBrk :: LPar :: rest ->
          let xs, rest = args_until_rpar [] rest in
          finish (Call_indirect (None, target, xs)) rest
      | _ -> fail "expected '](' in indirect call")
  | Id "call" :: rest ->
      let f, xs, rest = call_args rest in
      finish (Call (None, f, xs)) rest
  | Id "join" :: rest ->
      let o, rest = operand rest in
      finish (Join o) rest
  | Id "lock" :: rest ->
      let a, rest = addr rest in
      finish (Lock a) rest
  | Id "unlock" :: rest ->
      let a, rest = addr rest in
      finish (Unlock a) rest
  | Id "wait" :: rest ->
      let cv, rest = addr rest in
      let rest = comma rest in
      let m, rest = addr rest in
      finish (Cond_wait (cv, m)) rest
  | Id "signal" :: rest ->
      let a, rest = addr rest in
      finish (Cond_signal a) rest
  | Id "broadcast" :: rest ->
      let a, rest = addr rest in
      finish (Cond_broadcast a) rest
  | Id "barrier_init" :: rest ->
      let a, rest = addr rest in
      let rest = comma rest in
      let v, rest = operand rest in
      finish (Barrier_init (a, v)) rest
  | Id "barrier_wait" :: rest ->
      let a, rest = addr rest in
      finish (Barrier_wait a) rest
  | Id "sem_init" :: rest ->
      let a, rest = addr rest in
      let rest = comma rest in
      let v, rest = operand rest in
      finish (Sem_init (a, v)) rest
  | Id "sem_post" :: rest ->
      let a, rest = addr rest in
      finish (Sem_post a) rest
  | Id "sem_wait" :: rest ->
      let a, rest = addr rest in
      finish (Sem_wait a) rest
  | Id "check" :: rest -> (
      let v, rest = operand rest in
      match rest with
      | [ Strtok msg ] -> Check (v, msg)
      | _ -> fail "expected a quoted message after check")
  | _ -> fail "unrecognized instruction"

let terminator toks =
  match toks with
  | [ Id "goto"; Id l ] -> Some (Goto l)
  | [ Id "br"; o; Quest; Id a; Colon; Id b ] ->
      let v, _ = operand [ o ] in
      Some (Br (v, a, b))
  | [ Id "ret" ] -> Some (Ret None)
  | [ Id "ret"; o ] ->
      let v, _ = operand [ o ] in
      Some (Ret (Some v))
  | [ Id "exit" ] -> Some Exit
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Line-oriented program assembly                                     *)

type pstate = {
  mutable globals : (string * int * int) list; (* reversed *)
  mutable func_table : string list;
  mutable entry : string option;
  mutable funcs : func list; (* reversed *)
  mutable cur_func : (string * reg list) option;
  mutable cur_blocks : block list; (* reversed *)
  mutable cur_label : string option;
  mutable cur_ins : instr list; (* reversed *)
}

let close_block st term =
  match st.cur_label with
  | None -> fail "terminator outside a block"
  | Some lbl ->
      st.cur_blocks <- { lbl; ins = List.rev st.cur_ins; term } :: st.cur_blocks;
      st.cur_label <- None;
      st.cur_ins <- []

let close_func st =
  (match (st.cur_label, st.cur_func) with
  | Some lbl, _ -> fail "block %S has no terminator" lbl
  | None, Some (fname, params) ->
      if st.cur_blocks = [] then fail "function %S has no blocks" fname;
      st.funcs <-
        { fname; params; blocks = List.rev st.cur_blocks } :: st.funcs;
      st.cur_func <- None;
      st.cur_blocks <- []
  | None, None -> ())

let trim = String.trim

let parse_string text =
  let st =
    {
      globals = [];
      func_table = [];
      entry = None;
      funcs = [];
      cur_func = None;
      cur_blocks = [];
      cur_label = None;
      cur_ins = [];
    }
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno0 raw ->
      let lineno = lineno0 + 1 in
      let line = trim raw in
      try
        if line = "" || line.[0] = '#' then ()
        else if String.length line > 7 && String.sub line 0 7 = "global " then begin
          (* global NAME[SIZE] = INIT *)
          match tokenize (String.sub line 7 (String.length line - 7)) with
          | [ Id name; LBrk; Inttok size; RBrk ] ->
              st.globals <- (name, size, 0) :: st.globals
          | Id name :: LBrk :: Inttok size :: RBrk :: Id "=" :: [ Inttok v ] ->
              st.globals <- (name, size, v) :: st.globals
          | _ -> fail "malformed global declaration"
        end
        else if String.length line > 13 && String.sub line 0 13 = "func_table = " then begin
          let inner = String.sub line 13 (String.length line - 13) in
          let inner = trim inner in
          if String.length inner < 2 || inner.[0] <> '[' then
            fail "malformed func_table";
          let inner = String.sub inner 1 (String.length inner - 2) in
          st.func_table <-
            (if trim inner = "" then []
             else List.map trim (String.split_on_char ';' inner))
        end
        else if String.length line > 8 && String.sub line 0 8 = "entry = " then
          st.entry <- Some (trim (String.sub line 8 (String.length line - 8)))
        else if String.length line > 5 && String.sub line 0 5 = "func " then begin
          close_func st;
          (* func NAME(p1, p2): *)
          let body = String.sub line 5 (String.length line - 5) in
          match String.index_opt body '(' with
          | None -> fail "malformed function header"
          | Some lp ->
              let name = trim (String.sub body 0 lp) in
              let rp =
                match String.index_opt body ')' with
                | Some rp when rp > lp -> rp
                | _ -> fail "malformed function header"
              in
              let params_str = String.sub body (lp + 1) (rp - lp - 1) in
              let params =
                if trim params_str = "" then []
                else List.map trim (String.split_on_char ',' params_str)
              in
              st.cur_func <- Some (name, params)
        end
        else if
          String.length line > 1
          && line.[String.length line - 1] = ':'
          && not (String.contains line ' ')
        then begin
          (match st.cur_label with
          | Some lbl -> fail "block %S has no terminator" lbl
          | None -> ());
          if st.cur_func = None then fail "label outside a function";
          st.cur_label <- Some (String.sub line 0 (String.length line - 1))
        end
        else begin
          let toks = tokenize line in
          if toks = [] then ()
          else
            match terminator toks with
            | Some t -> close_block st t
            | None ->
                if st.cur_label = None then fail "instruction outside a block";
                st.cur_ins <- instruction toks :: st.cur_ins
        end
      with Err msg -> raise (Err (Printf.sprintf "%d:%s" lineno msg)))
    lines;
  close_func st;
  let entry =
    match st.entry with Some e -> e | None -> fail "missing 'entry =' line"
  in
  Builder.program
    ~globals:(List.rev st.globals)
    ~func_table:st.func_table ~entry (List.rev st.funcs)

let program text =
  match parse_string text with
  | p -> Ok p
  | exception Err s -> (
      match String.index_opt s ':' with
      | Some i ->
          Error
            {
              line = int_of_string (String.sub s 0 i);
              message = String.sub s (i + 1) (String.length s - i - 1);
            }
      | None -> Error { line = 0; message = s })

let program_exn text =
  match program text with
  | Ok p -> p
  | Error e -> invalid_arg ("Tir.Parse: " ^ error_to_string e)
