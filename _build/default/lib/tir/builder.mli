(** Combinator DSL for constructing TIR programs.

    Workloads and tests build programs from these pure helpers; nothing here
    is stateful.  The conventions:

    - [g "x"] addresses the scalar global [x]; [gi "a" idx] an array slot;
    - registers and labels are plain strings;
    - [blk label instrs terminator] makes a basic block;
    - [func name ~params blocks] a function whose entry is the first block;
    - [program ~globals ~funcs ~entry ()] a whole program. *)

open Types

val imm : int -> operand
val r : reg -> operand

val g : string -> addr
(** Scalar global (index 0). *)

val gi : string -> operand -> addr
(** Array global with a dynamic index. *)

(** Instruction shorthands. *)

val mov : reg -> operand -> instr
val addi : reg -> operand -> operand -> instr
val subi : reg -> operand -> operand -> instr
val muli : reg -> operand -> operand -> instr
val divi : reg -> operand -> operand -> instr
val modi : reg -> operand -> operand -> instr
val andi : reg -> operand -> operand -> instr
val ori : reg -> operand -> operand -> instr
val xori : reg -> operand -> operand -> instr
val shli : reg -> operand -> operand -> instr
val shri : reg -> operand -> operand -> instr
val cmp : cmpop -> reg -> operand -> operand -> instr
val load : reg -> addr -> instr
val store : addr -> operand -> instr
val cas : reg -> addr -> operand -> operand -> instr
val rmw : rmw_op -> reg -> addr -> operand -> instr
val fence : instr
val call : ?ret:reg -> string -> operand list -> instr
val call_ind : ?ret:reg -> operand -> operand list -> instr
val spawn : reg -> string -> operand list -> instr
val join : operand -> instr
val lock : addr -> instr
val unlock : addr -> instr
val wait : addr -> addr -> instr
val signal : addr -> instr
val broadcast : addr -> instr
val barrier_init : addr -> operand -> instr
val barrier_wait : addr -> instr
val sem_init : addr -> operand -> instr
val sem_post : addr -> instr
val sem_wait : addr -> instr
val yield : instr
val check : operand -> string -> instr
val nop : instr

(** Terminators. *)

val goto : label -> term
val br : operand -> label -> label -> term
val ret : operand option -> term
val ret0 : term
(** [Ret None]. *)

val exit_t : term

(** Structure. *)

val blk : label -> instr list -> term -> block
val func : string -> ?params:reg list -> block list -> func

val program :
  ?globals:(string * int * int) list ->
  ?func_table:string list ->
  entry:string ->
  func list ->
  program
(** [globals] are [(name, size, initial_value)] triples; every global used
    by the functions must be declared.  [entry] names the initial thread's
    function (it must take no parameters). *)

val global : string -> ?size:int -> ?init:int -> unit -> string * int * int
(** Convenience for building the [globals] list. *)

val counted_loop :
  tag:string ->
  counter:reg ->
  limit:operand ->
  body:instr list ->
  next:label ->
  block list
(** [counted_loop ~tag ~counter ~limit ~body ~next] generates the blocks of
    a register-counted loop ([for counter = 0 .. limit-1 do body]) that
    falls through to the [next] label.  The condition involves no memory
    load, so the spin classifier never mistakes it for a spinning read
    loop.  Block labels are prefixed with [tag]. *)
