open Types

type error = { where : string; what : string }

let error_to_string e = Printf.sprintf "%s: %s" e.where e.what

module SS = Set.Make (String)

let operand_regs = function Imm _ -> [] | Reg x -> [ x ]
let addr_regs a = operand_regs a.index

(* Registers read / written by one instruction. *)
let instr_uses = function
  | Mov (_, o) -> operand_regs o
  | Binop (_, _, a, b) | Cmp (_, _, a, b) -> operand_regs a @ operand_regs b
  | Load (_, a) -> addr_regs a
  | Store (a, v) -> addr_regs a @ operand_regs v
  | Cas (_, a, e, n) -> addr_regs a @ operand_regs e @ operand_regs n
  | Rmw (_, _, a, v) -> addr_regs a @ operand_regs v
  | Call (_, _, args) -> List.concat_map operand_regs args
  | Call_indirect (_, t, args) ->
      operand_regs t @ List.concat_map operand_regs args
  | Spawn (_, _, args) -> List.concat_map operand_regs args
  | Join t -> operand_regs t
  | Lock a | Unlock a | Cond_signal a | Cond_broadcast a -> addr_regs a
  | Cond_wait (a, b) -> addr_regs a @ addr_regs b
  | Barrier_init (a, n) | Sem_init (a, n) -> addr_regs a @ operand_regs n
  | Barrier_wait a | Sem_post a | Sem_wait a -> addr_regs a
  | Check (v, _) -> operand_regs v
  | Fence | Yield | Nop -> []

let instr_defs = function
  | Mov (d, _)
  | Binop (d, _, _, _)
  | Cmp (d, _, _, _)
  | Load (d, _)
  | Cas (d, _, _, _)
  | Rmw (d, _, _, _)
  | Spawn (d, _, _) ->
      [ d ]
  | Call (Some d, _, _) | Call_indirect (Some d, _, _) -> [ d ]
  | Call (None, _, _) | Call_indirect (None, _, _) -> []
  | Store _ | Join _ | Lock _ | Unlock _ | Cond_wait _ | Cond_signal _
  | Cond_broadcast _ | Barrier_init _ | Barrier_wait _ | Sem_init _
  | Sem_post _ | Sem_wait _ | Fence | Yield | Check _ | Nop ->
      []

let instr_globals = function
  | Load (_, a) | Store (a, _) | Cas (_, a, _, _) | Rmw (_, _, a, _)
  | Lock a | Unlock a | Cond_signal a | Cond_broadcast a | Barrier_wait a
  | Sem_post a | Sem_wait a ->
      [ a.base ]
  | Cond_wait (a, b) -> [ a.base; b.base ]
  | Barrier_init (a, _) | Sem_init (a, _) -> [ a.base ]
  | Mov _ | Binop _ | Cmp _ | Fence | Call _ | Call_indirect _ | Spawn _
  | Join _ | Yield | Check _ | Nop ->
      []

let instr_calls = function
  | Call (_, f, args) | Spawn (_, f, args) -> [ (f, List.length args) ]
  | _ -> []

let term_uses = function
  | Br (v, _, _) -> operand_regs v
  | Ret (Some v) -> operand_regs v
  | Ret None | Goto _ | Exit -> []

let check_func prog errs f =
  let here what = errs := { where = "func " ^ f.fname; what } :: !errs in
  if f.blocks = [] then here "has no blocks";
  let labels = List.map (fun b -> b.lbl) f.blocks in
  let label_set =
    List.fold_left
      (fun acc l ->
        if SS.mem l acc then (
          here (Printf.sprintf "duplicate label %S" l);
          acc)
        else SS.add l acc)
      SS.empty labels
  in
  let target l =
    if not (SS.mem l label_set) then
      here (Printf.sprintf "branch to unknown label %S" l)
  in
  let globals =
    List.fold_left (fun acc gl -> SS.add gl.gname acc) SS.empty prog.globals
  in
  let funcs =
    List.fold_left
      (fun acc fn -> (fn.fname, List.length fn.params) :: acc)
      [] prog.funcs
  in
  let defined =
    List.fold_left
      (fun acc b ->
        List.fold_left
          (fun acc i -> List.fold_left (fun a d -> SS.add d a) acc (instr_defs i))
          acc b.ins)
      (SS.of_list f.params) f.blocks
  in
  let check_instr i =
    List.iter
      (fun u ->
        if not (SS.mem u defined) then
          here (Printf.sprintf "register %S read but never assigned" u))
      (instr_uses i);
    List.iter
      (fun gl ->
        if not (SS.mem gl globals) then
          here (Printf.sprintf "undeclared global %S" gl))
      (instr_globals i);
    List.iter
      (fun (callee, arity) ->
        match List.assoc_opt callee funcs with
        | None -> here (Printf.sprintf "call to unknown function %S" callee)
        | Some n ->
            if n <> arity then
              here
                (Printf.sprintf "call to %S with %d args, expected %d" callee
                   arity n))
      (instr_calls i)
  in
  List.iter
    (fun b ->
      List.iter check_instr b.ins;
      List.iter
        (fun u ->
          if not (SS.mem u defined) then
            here (Printf.sprintf "register %S read but never assigned" u))
        (term_uses b.term);
      match b.term with
      | Goto l -> target l
      | Br (_, a, c) ->
          target a;
          target c
      | Ret _ | Exit -> ())
    f.blocks

let check prog =
  let errs = ref [] in
  let top what = errs := { where = "program"; what } :: !errs in
  (match List.find_opt (fun f -> f.fname = prog.entry) prog.funcs with
  | None -> top (Printf.sprintf "entry function %S not found" prog.entry)
  | Some f ->
      if f.params <> [] then
        top (Printf.sprintf "entry function %S must take no parameters"
               prog.entry));
  let names = List.map (fun f -> f.fname) prog.funcs in
  let rec dups seen = function
    | [] -> ()
    | n :: rest ->
        if SS.mem n seen then top (Printf.sprintf "duplicate function %S" n);
        dups (SS.add n seen) rest
  in
  dups SS.empty names;
  List.iter
    (fun tf ->
      if not (List.mem tf names) then
        top (Printf.sprintf "func_table entry %S not found" tf))
    prog.func_table;
  List.iter
    (fun gl ->
      if gl.size <= 0 then
        top (Printf.sprintf "global %S has non-positive size" gl.gname))
    prog.globals;
  List.iter (check_func prog errs) prog.funcs;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let check_exn prog =
  match check prog with
  | Ok () -> ()
  | Error es ->
      invalid_arg
        ("Tir.Validate: "
        ^ String.concat "; " (List.map error_to_string es))
