(** Thread scheduling policies for the interpreting machine.

    The machine asks the scheduler which runnable thread executes the next
    instruction.  All policies are deterministic given their seed, which is
    what makes every experiment in this repository replayable. *)

type policy =
  | Round_robin of int
      (* quantum in instructions; fully deterministic, used by semantics
         tests *)
  | Uniform  (** a fresh uniform pick every instruction; maximal churn *)
  | Chunked of int
      (* run the current thread for a random burst with the given mean
         length, then switch; the default — realistic preemption that still
         exposes racy interleavings across seeds *)

type t

val create : policy -> seed:int -> t

val pick : t -> runnable:int list -> int
(** Choose the next thread among [runnable] (non-empty, ascending). *)

val force_switch : t -> unit
(** A [Yield] hint: end the current burst so another thread gets picked. *)
