lib/runtime/event.mli: Arde_tir Format
