lib/runtime/sched.ml: Arde_util Array List
