lib/runtime/trace.mli: Event Format
