lib/runtime/event.ml: Arde_tir Format List Printf String
