lib/runtime/trace.ml: Event Format Hashtbl List
