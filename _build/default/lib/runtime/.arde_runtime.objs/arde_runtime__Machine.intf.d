lib/runtime/machine.mli: Arde_cfg Arde_tir Event Format Hashtbl Sched
