lib/runtime/sched.mli:
