lib/runtime/machine.ml: Arde_cfg Arde_tir Arde_util Array Event Format Hashtbl List Option Printf Queue Sched String
