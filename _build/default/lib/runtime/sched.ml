type policy = Round_robin of int | Uniform | Chunked of int

type t = {
  policy : policy;
  rng : Arde_util.Prng.t;
  mutable current : int;
  mutable burst : int; (* remaining instructions before a forced re-pick *)
}

let create policy ~seed =
  { policy; rng = Arde_util.Prng.create seed; current = -1; burst = 0 }

let force_switch t = t.burst <- 0

let fresh_burst t mean = 1 + Arde_util.Prng.int t.rng (2 * mean)

let pick t ~runnable =
  match runnable with
  | [] -> invalid_arg "Sched.pick: no runnable thread"
  | [ only ] ->
      t.current <- only;
      only
  | _ -> (
      match t.policy with
      | Round_robin quantum ->
          let next () =
            match List.find_opt (fun x -> x > t.current) runnable with
            | Some x -> x
            | None -> List.hd runnable
          in
          if t.burst > 0 && List.mem t.current runnable then begin
            t.burst <- t.burst - 1;
            t.current
          end
          else begin
            t.current <- next ();
            t.burst <- quantum - 1;
            t.current
          end
      | Uniform ->
          t.current <- Arde_util.Prng.pick t.rng (Array.of_list runnable);
          t.current
      | Chunked mean ->
          if t.burst > 0 && List.mem t.current runnable then begin
            t.burst <- t.burst - 1;
            t.current
          end
          else begin
            t.current <- Arde_util.Prng.pick t.rng (Array.of_list runnable);
            t.burst <- fresh_burst t mean;
            t.current
          end)
