(** Classification of detector output against a test case's ground truth.

    Mirrors the paper's unit-suite accounting: a case counts as a
    false-alarm case if the detector warned about any variable with no real
    race; otherwise as a missed-race case if a real race went unreported;
    otherwise it is correctly analyzed.  Failed = false alarm or missed. *)

type expectation =
  | Race_free
  | Racy of string list (* global bases with a real race *)

type verdict = {
  false_bases : string list; (* warned about, but not really racy *)
  missed_bases : string list; (* really racy, but not warned about *)
}

type outcome = Correct | False_alarm | Missed_race

val classify : expectation -> reported:string list -> verdict
val outcome_of : verdict -> outcome

type tally = {
  mutable false_alarms : int;
  mutable missed : int;
  mutable correct : int;
}

val tally_create : unit -> tally
val tally_add : tally -> outcome -> unit
val failed : tally -> int
val total : tally -> int

val expectation_bases : expectation -> string list
val pp_verdict : Format.formatter -> verdict -> unit
