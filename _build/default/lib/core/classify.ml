type expectation = Race_free | Racy of string list

type verdict = { false_bases : string list; missed_bases : string list }

type outcome = Correct | False_alarm | Missed_race

let expectation_bases = function Race_free -> [] | Racy bs -> bs

let classify expectation ~reported =
  let expected = expectation_bases expectation in
  let reported = List.sort_uniq String.compare reported in
  {
    false_bases = List.filter (fun b -> not (List.mem b expected)) reported;
    missed_bases = List.filter (fun b -> not (List.mem b reported)) expected;
  }

let outcome_of v =
  if v.false_bases <> [] then False_alarm
  else if v.missed_bases <> [] then Missed_race
  else Correct

type tally = {
  mutable false_alarms : int;
  mutable missed : int;
  mutable correct : int;
}

let tally_create () = { false_alarms = 0; missed = 0; correct = 0 }

let tally_add t = function
  | Correct -> t.correct <- t.correct + 1
  | False_alarm -> t.false_alarms <- t.false_alarms + 1
  | Missed_race -> t.missed <- t.missed + 1

let failed t = t.false_alarms + t.missed
let total t = t.false_alarms + t.missed + t.correct

let pp_verdict ppf v =
  Format.fprintf ppf "false=[%s] missed=[%s]"
    (String.concat ", " v.false_bases)
    (String.concat ", " v.missed_bases)
