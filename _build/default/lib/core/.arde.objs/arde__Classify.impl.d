lib/core/classify.ml: Format List String
