lib/core/classify.mli: Format
