lib/core/arde.ml: Arde_cfg Arde_detect Arde_runtime Arde_tir Arde_util Arde_vclock Classify
