(** Synthetic PARSEC 2.0 workloads.

    Thirteen programs named after the paper's benchmark set, each built
    with the synchronization inventory the paper's Table "PARSEC 2.0"
    lists for it (POSIX condition variables / locks / barriers, ad-hoc
    constructs, or an "unknown library" runtime modelled by pre-lowering
    the program at build time).  The racy-context columns of the paper's
    Tables 4–6 emerge from the mix of writeback / readonly / blind site
    groups each program carries; see DESIGN.md. *)

type info = {
  pname : string;
  model : string; (* parallelization model, as the paper's table heads it *)
  uses_cvs : bool;
  uses_locks : bool;
  uses_barriers : bool;
  uses_adhoc : bool;
  prelowered : bool; (* unknown-library runtime: lowered at build time *)
  nolib_style : Arde.Lower.style;
      (* how the nolib experiment lowers this program's primitives *)
  threads : int;
}

val all : unit -> (info * Arde.Types.program) list
(** The 13 programs, paper order. *)

val without_adhoc : unit -> (info * Arde.Types.program) list
(** blackscholes, swaptions, fluidanimate, canneal, freqmine. *)

val with_adhoc : unit -> (info * Arde.Types.program) list
(** vips … raytrace. *)

val find : string -> (info * Arde.Types.program) option

val loc_of : Arde.Types.program -> int
(** "Lines of code": instructions plus terminators, our analog of the
    paper's LOC column. *)
