(** Site-group generators for the synthetic PARSEC programs.

    Racy contexts count distinct static location pairs, so these builders
    unroll "site groups": each group gets its own producer instructions
    and consumer blocks, ordered by one of the synchronization idioms
    below.  The detector configuration decides whether that ordering is
    visible — which is what produces the paper's per-column context
    counts. *)

open Arde.Types

type consume = [ `Writeback | `Readonly of int | `Blind ]
(** How a consumer touches [data[g]]: two update rounds, [n] distinct
    read sites, or a lone blind store (exactly one context when the
    ordering is invisible). *)

val produce_flag : data:string -> flag:string -> int -> instr list
val produce_cv_gate :
  data:string -> gate:string -> cv:string -> m:string -> int -> instr list
val produce_locked_flag : data:string -> flag:string -> m:string -> int -> instr list

val consumption : tag:string -> data:string -> int -> consume -> instr list

val consumer :
  ?epilogue:(int -> instr list) ->
  fname:string ->
  data:string ->
  consume:consume ->
  gate_blocks:(tag:string -> int -> block list) ->
  int list ->
  func
(** One unrolled consumer handling the given groups in order: per group,
    [gate_blocks] (ending at ["<tag>_wrk"]) then the consumption and the
    optional epilogue (typically the handoff to a chained second
    consumer). *)

val flag_gate : flag:string -> window:int -> tag:string -> int -> block list
val fptr_gate : fptr_slot:int -> tag:string -> int -> block list
val locked_flag_gate : flag:string -> m:string -> tag:string -> int -> block list
val cv_gate : gate:string -> cv:string -> m:string -> tag:string -> int -> block list
(** Check-once-then-[cond_wait]: no loop, so ordering is visible only
    through library knowledge or a recoverable lowering of the wait. *)

val no_gate : tag:string -> int -> block list

val chunks : k:int -> int -> int list list
(** Split [n] groups into at most [k] consecutive non-empty chunks. *)

val producer_func : fname:string -> instr list -> func
