type case = {
  name : string;
  category : string;
  threads : int;
  expectation : Arde.Classify.expectation;
  program : Arde.Types.program;
}

let rf = Arde.Classify.Race_free
let racy bases = Arde.Classify.Racy bases

let case category name threads expectation program =
  { name; category; threads; expectation; program }

let spread name category expectation build counts =
  List.map
    (fun n ->
      case category (Printf.sprintf "%s/%d" name n) n expectation (build n))
    counts

let lib_cases () =
  spread "lock_counter" "lib" rf Racey_lib.lock_counter [ 2; 4; 8; 16 ]
  @ spread "cv_handoff" "lib" rf Racey_lib.cv_handoff [ 2; 4; 8; 16 ]
  @ spread "barrier_phases" "lib" rf Racey_lib.barrier_phases [ 2; 4; 8; 16 ]
  @ spread "sem_pipeline" "lib" rf Racey_lib.sem_pipeline [ 2; 4 ]
  @ spread "join_result" "lib" rf Racey_lib.join_result [ 2; 8; 16 ]
  @ spread "atomic_counter" "lib" rf Racey_lib.atomic_counter [ 2; 4; 8 ]
  @ spread "lock_percell" "lib" rf Racey_lib.lock_percell [ 4; 8 ]
  @ spread "readonly_shared" "lib" rf Racey_lib.readonly_shared [ 4; 16 ]
  @ spread "cv_bounded_buffer" "lib" rf Racey_lib.cv_bounded_buffer [ 3; 5 ]
  @ spread "spawn_chain" "lib" rf Racey_lib.spawn_chain [ 4; 8 ]
  @ spread "barrier_reduction" "lib" rf Racey_lib.barrier_reduction [ 4; 8; 16 ]
  @ spread "fork_join_tree" "lib" rf
      (fun d -> Racey_lib.fork_join_tree d)
      [ 3; 4 ]
  @ spread "cv_broadcast_wakeall" "lib" rf Racey_lib.cv_broadcast_wakeall
      [ 4; 8; 16 ]
  @ spread "sem_rendezvous" "lib" rf Racey_lib.sem_rendezvous [ 2; 4 ]
  @ spread "atomic_publish" "lib" rf Racey_lib.atomic_publish [ 3; 5; 7 ]
  @ spread "lock_counter" "lib" rf Racey_lib.lock_counter [ 6 ]
  @ spread "barrier_phases" "lib" rf Racey_lib.barrier_phases [ 6 ]
  @ spread "readonly_shared" "lib" rf Racey_lib.readonly_shared [ 8 ]

let adhoc_cases () =
  List.concat_map
    (fun window ->
      spread
        (Printf.sprintf "adhoc_flag_w%d" window)
        "adhoc" rf
        (Racey_adhoc.adhoc_flag ~window)
        [ 2 ])
    [ 1; 2; 3; 5; 6; 7 ]
  @ List.concat_map
      (fun window ->
        spread
          (Printf.sprintf "adhoc_flag_w%d" window)
          "adhoc" rf
          (Racey_adhoc.adhoc_flag ~window)
          [ 8; 16 ])
      [ 2; 7 ]
  @ List.concat_map
      (fun window ->
        spread
          (Printf.sprintf "adhoc_flag_w%d" window)
          "adhoc" rf
          (Racey_adhoc.adhoc_flag ~window)
          [ 2; 4 ])
      [ 9; 10 ]
  @ spread "adhoc_flag_call" "adhoc" rf Racey_adhoc.adhoc_flag_call [ 2; 4 ]
  @ spread "adhoc_flag_fptr" "adhoc" rf Racey_adhoc.adhoc_flag_fptr [ 2; 4 ]
  @ spread "lock_flag_spin" "adhoc" rf Racey_adhoc.lock_flag_spin
      [ 2; 3; 4; 6; 8; 12; 16 ]
  @ spread "guarded_queue" "adhoc" rf Racey_adhoc.guarded_queue [ 3; 5; 9 ]
  @ spread "task_queue" "adhoc" rf Racey_adhoc.task_queue [ 3; 5; 9 ]
  @ spread "double_checked_init" "adhoc" rf Racey_adhoc.double_checked_init
      [ 4; 8 ]
  @ spread "dcl_writeback" "adhoc" rf Racey_adhoc.dcl_writeback [ 6 ]
  @ spread "adhoc_phase_flag" "adhoc" rf
      (fun rounds -> Racey_adhoc.adhoc_phase_flag rounds)
      [ 2; 4 ]
  @ spread "adhoc_baton" "adhoc" rf Racey_adhoc.adhoc_baton [ 4 ]
  @ spread "mixed_lock_and_flag" "adhoc" rf Racey_adhoc.mixed_lock_and_flag [ 2 ]

let racy_cases () =
  spread "racy_counter" "racy" (racy [ "x" ]) Racey_racy.racy_counter
    [ 2; 4; 8; 16 ]
  @ spread "racy_flag_no_loop" "racy"
      (racy [ "data"; "flag" ])
      Racey_racy.racy_flag_no_loop [ 2; 4 ]
  @ spread "racy_mixed_locks" "racy" (racy [ "x" ]) Racey_racy.racy_mixed_locks
      [ 2; 4; 8; 16 ]
  @ spread "racy_lock_ordered_w" "racy" (racy [ "x" ])
      (Racey_racy.racy_lock_ordered ~style:`Write)
      [ 2; 3; 4; 6; 8; 10; 12; 16 ]
  @ spread "racy_lock_ordered_r" "racy" (racy [ "x" ])
      (Racey_racy.racy_lock_ordered ~style:`Read)
      [ 2; 4 ]
  @ spread "racy_rare_path" "racy"
      (racy [ "flag"; "x" ])
      Racey_racy.racy_rare_path [ 2; 4; 8 ]
  @ spread "racy_adhoc_broken" "racy" (racy [ "data" ])
      Racey_racy.racy_adhoc_broken [ 2; 4; 8 ]
  @ spread "racy_barrier_missing" "racy" (racy [ "a" ])
      Racey_racy.racy_barrier_missing [ 4; 8 ]
  @ spread "racy_read_write" "racy" (racy [ "x" ]) Racey_racy.racy_read_write
      [ 2; 4; 8; 16 ]
  @ spread "racy_after_join_wrong" "racy" (racy [ "res" ])
      Racey_racy.racy_after_join_wrong [ 2; 4 ]
  @ [
      case "racy" "racy_sem_misuse" 3 (racy [ "buf" ])
        (Racey_racy.racy_sem_misuse ());
    ]
  @ spread "racy_cv_unlocked_pred" "racy" (racy [ "ready" ])
      Racey_racy.racy_cv_unlocked_pred [ 2; 4 ]
  @ [
      case "racy" "racy_queue_overrun" 2 (racy [ "items" ])
        (Racey_racy.racy_queue_overrun ());
    ]

let all () = lib_cases () @ adhoc_cases () @ racy_cases ()

let find name = List.find_opt (fun c -> c.name = name) (all ())

let categories cases =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun c ->
      Hashtbl.replace tbl c.category
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c.category)))
    cases;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
