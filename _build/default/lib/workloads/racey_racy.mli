(** Genuinely racy cases; the catalog records which global bases carry the
    real races.  Several bias the schedule so the racy accesses are almost
    always ordered by unrelated synchronization in the observed run — the
    mechanism behind pure happens-before detectors' missed races. *)

open Arde.Types

val racy_counter : int -> program
val racy_flag_no_loop : int -> program
val racy_mixed_locks : int -> program

val racy_lock_ordered : style:[ `Write | `Read ] -> int -> program
(** A real race on [x] whose sides are, in nearly every schedule, ordered
    through an unrelated critical section: the hybrid lockset fires, pure
    happens-before goes quiet.  [`Read] makes the slow side a reader,
    which even the state machine misses (read-only sharing). *)

val racy_rare_path : int -> program
(** The guarded access executes only under a rare interleaving. *)

val racy_adhoc_broken : int -> program
(** Flag raised {e before} the payload write: the spin edge must not mask
    this real race. *)

val racy_barrier_missing : int -> program
val racy_read_write : int -> program
val racy_after_join_wrong : int -> program
val racy_sem_misuse : unit -> program
val racy_cv_unlocked_pred : int -> program
(** Also a lost-signal bug: some schedules deadlock. *)

val racy_queue_overrun : unit -> program
