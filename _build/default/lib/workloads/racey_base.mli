(** Shared scaffolding for the unit-suite case builders: the spawn/join
    harness, ad-hoc spin-loop shapes of controllable window, private delay
    loops for schedule biasing, and condition-check helpers. *)

open Arde.Types

val harness :
  ?globals:(string * int * int) list ->
  ?func_table:string list ->
  ?before:instr list ->
  ?after:instr list ->
  workers:(string * operand list) list ->
  func list ->
  program
(** A standard main: [before], spawn each worker, join them all, [after]. *)

val spin_flag :
  tag:string -> flag:addr -> window:int -> exit_lbl:label -> block list
(** A spinning read loop on [flag <> 0] whose body has exactly [window]
    basic blocks (1–12). *)

val check_helper_name : string -> string

val check_helper : string -> func
(** Double-checking condition helper over an array base (4 blocks); place
    once per base and call from loops or through the function table. *)

val spin_flag_call :
  tag:string -> flag_base:string -> idx:operand -> exit_lbl:label -> block list
(** A 3-block loop whose condition calls {!check_helper}: effective window
    7. *)

val spin_flag_fptr :
  tag:string -> fptr_slot:int -> idx:operand -> exit_lbl:label -> block list
(** The same loop with the condition behind a function-table slot —
    statically unanalyzable. *)

val delay : tag:string -> n:int -> next:label -> block list
(** [n] iterations of register-only busywork; biases which thread reaches
    a point first. *)

val delay_entry : string -> label
(** Entry label of a {!delay} block sequence with the given tag. *)

val bump : addr -> instr list
(** Load-increment-store of one cell (three distinct access sites). *)
