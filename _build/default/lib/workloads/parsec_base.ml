(* Building blocks for the synthetic PARSEC 2.0 programs.

   Racy contexts — the paper's metric — count distinct *static* location
   pairs, so the generators unroll "site groups": each group gets its own
   producer instructions and its own consumer blocks.  A group is ordered
   by one of the synchronization idioms below; the detector configuration
   decides whether that ordering is visible.

   Group flavours:
   - flag: user-level spinning read loop on flag[g] (ad-hoc sync);
   - fptr: the same loop, condition behind a function pointer
     (statically unanalyzable — residual false positives);
   - locked flag: the flag is sampled under a mutex inside the loop
     (dedup's idiom: pure happens-before tools are clean, hybrids need
     spin detection);
   - cv gate: check-once-then-cond_wait on a native condition variable
     (no loop: ordering is only visible through library knowledge or a
     recoverable lowering of the wait);
   - barrier: groups written before a barrier and consumed after it.

   Consumption is either [`Writeback] (consumer mutates data[g] — hybrids
   report when the ordering is invisible) or [`Readonly sites] (consumer
   only reads, at [sites] distinct locations — only pure happens-before
   detectors report when the ordering is invisible). *)

open Arde.Builder

type consume = [ `Writeback | `Readonly of int | `Blind ]
(* [`Blind] stores without loading: exactly one racy context per group
   when the ordering is invisible. *)

let produce_flag ~data ~flag gidx =
  [
    store (gi data (imm gidx)) (imm ((gidx * 3) + 1));
    store (gi flag (imm gidx)) (imm 1);
  ]

let produce_cv_gate ~data ~gate ~cv ~m gidx =
  [
    store (gi data (imm gidx)) (imm ((gidx * 5) + 2));
    lock (g m);
    store (gi gate (imm gidx)) (imm 1);
    unlock (g m);
    broadcast (gi cv (imm gidx));
  ]

let produce_locked_flag ~data ~flag ~m gidx =
  [
    store (gi data (imm gidx)) (imm ((gidx * 3) + 1));
    lock (g m);
    store (gi flag (imm gidx)) (imm 1);
    unlock (g m);
  ]

(* The consumption instructions for one group: a mutation or [sites]
   distinct reads. *)
let consumption ~tag ~data gidx = function
  | `Writeback ->
      (* Two update rounds: under the long-running state machine the first
         unsynchronized access only arms the cell, so a single mutation
         would never be reported — and real consumers touch their cells
         repeatedly anyway. *)
      [
        load (tag ^ "_v") (gi data (imm gidx));
        addi (tag ^ "_v1") (r (tag ^ "_v")) (imm 1);
        store (gi data (imm gidx)) (r (tag ^ "_v1"));
        load (tag ^ "_w") (gi data (imm gidx));
        muli (tag ^ "_w1") (r (tag ^ "_w")) (imm 3);
        store (gi data (imm gidx)) (r (tag ^ "_w1"));
      ]
  | `Readonly sites ->
      mov (tag ^ "_acc") (imm 0)
      :: List.concat
           (List.init sites (fun s ->
                [
                  load (Printf.sprintf "%s_r%d" tag s) (gi data (imm gidx));
                  addi (tag ^ "_acc") (r (tag ^ "_acc"))
                    (r (Printf.sprintf "%s_r%d" tag s));
                ]))
  | `Blind ->
      [ store (gi data (imm gidx)) (imm 99); store (gi data (imm gidx)) (imm 98) ]

(* Generic unrolled consumer: for each group, [gate_blocks] (ending with a
   jump to "<tag>_wrk") followed by the consumption block and an optional
   per-group epilogue (used to hand the group over to a second consumer
   through the same idiom). *)
let consumer ?(epilogue = fun _ -> []) ~fname ~data ~consume:ckind ~gate_blocks
    gs =
  let rec chain = function
    | [] -> [ blk "fin" [] exit_t ]
    | gidx :: rest ->
        let tag = Printf.sprintf "g%d" gidx in
        let next =
          match rest with [] -> "fin" | g' :: _ -> Printf.sprintf "g%d_t" g'
        in
        gate_blocks ~tag gidx
        @ [
            blk (tag ^ "_wrk")
              (consumption ~tag ~data gidx ckind @ epilogue gidx)
              (goto next);
          ]
        @ chain rest
  in
  let entry_target =
    match gs with [] -> "fin" | gidx :: _ -> Printf.sprintf "g%d_t" gidx
  in
  func fname (blk "entry" [] (goto entry_target) :: chain gs)

let flag_gate ~flag ~window ~tag gidx =
  Racey_base.spin_flag ~tag ~flag:(gi flag (imm gidx)) ~window
    ~exit_lbl:(tag ^ "_wrk")

let fptr_gate ~fptr_slot ~tag gidx =
  Racey_base.spin_flag_fptr ~tag ~fptr_slot ~idx:(imm gidx)
    ~exit_lbl:(tag ^ "_wrk")

let locked_flag_gate ~flag ~m ~tag gidx =
  [
    blk (tag ^ "_t")
      [ lock (g m); load (tag ^ "_f") (gi flag (imm gidx)); unlock (g m) ]
      (br (r (tag ^ "_f")) (tag ^ "_wrk") (tag ^ "_t"));
  ]

let cv_gate ~gate ~cv ~m ~tag gidx =
  [
    blk (tag ^ "_t")
      [ lock (g m); load (tag ^ "_f") (gi gate (imm gidx)) ]
      (br (r (tag ^ "_f")) (tag ^ "_go") (tag ^ "_sl"));
    blk (tag ^ "_sl") [ wait (gi cv (imm gidx)) (g m) ] (goto (tag ^ "_go"));
    blk (tag ^ "_go") [ unlock (g m) ] (goto (tag ^ "_wrk"));
  ]

let no_gate ~tag:_ _gidx = []

(* Split [n] groups into at most [k] consecutive non-empty chunks. *)
let chunks ~k n =
  let k = max 1 (min k n) in
  let base = n / k and extra = n mod k in
  let rec go start i =
    if i >= k then []
    else
      let len = base + if i < extra then 1 else 0 in
      List.init len (fun j -> start + j) :: go (start + len) (i + 1)
  in
  List.filter (fun l -> l <> []) (go 0 0)

let producer_func ~fname instrs = func fname [ blk "entry" instrs exit_t ]
