type entry = Case of Racey.case | Parsec of Parsec.info * Arde.Types.program

let find name =
  match Racey.find name with
  | Some c -> Some (Case c)
  | None -> (
      match Parsec.find name with
      | Some (info, p) -> Some (Parsec (info, p))
      | None -> None)

let program_of = function
  | Case c -> c.Racey.program
  | Parsec (_, p) -> p

let names () =
  List.map (fun c -> c.Racey.name) (Racey.all ())
  @ List.map (fun (i, _) -> i.Parsec.pname) (Parsec.all ())
