(** Unified lookup over every bundled workload. *)

type entry =
  | Case of Racey.case (* labelled unit-suite case *)
  | Parsec of Parsec.info * Arde.Types.program

val find : string -> entry option
val program_of : entry -> Arde.Types.program

val names : unit -> string list
(** All workload names, suite cases first. *)
