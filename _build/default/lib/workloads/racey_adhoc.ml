(* Race-free cases synchronized through ad-hoc constructs — the heart of
   the paper.  Hybrid detectors without spin detection false-positive on
   the data these constructs protect; spin detection (window permitting)
   silences them.  Cases whose conditions go through function pointers or
   exceed the window stay noisy by design. *)

open Arde.Types
open Arde.Builder
open Racey_base

(* Producer writes data[i] then raises flag[i]; consumer i spins on its
   flag (inline loop of [window] blocks) then mutates data[i]. *)
let adhoc_flag ~window n =
  let consumers = n - 1 in
  let producer_body =
    List.concat_map
      (fun i ->
        [
          store (gi "data" (imm i)) (imm (i + 1));
          store (gi "flag" (imm i)) (imm 1);
        ])
      (List.init consumers Fun.id)
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      (blk "entry" [] (goto "sp_t")
      :: spin_flag ~tag:"sp" ~flag:(gi "flag" (r "i")) ~window ~exit_lbl:"work"
      @ [ blk "work" (bump (gi "data" (r "i"))) exit_t ])
  in
  let producer = func "producer" [ blk "entry" producer_body exit_t ] in
  harness
    ~globals:[ global "data" ~size:(max 1 consumers) (); global "flag" ~size:(max 1 consumers) () ]
    ~workers:(("producer", []) :: List.init consumers (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer ]

(* Same protocol, but the loop condition is evaluated by a direct call to
   a double-checking helper: 7 counted blocks, found only at k >= 7. *)
let adhoc_flag_call n =
  let consumers = n - 1 in
  let producer_body =
    List.concat_map
      (fun i ->
        [
          store (gi "data" (imm i)) (imm (i + 1));
          store (gi "flag" (imm i)) (imm 1);
        ])
      (List.init consumers Fun.id)
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      (blk "entry" [] (goto "sp_t")
      :: spin_flag_call ~tag:"sp" ~flag_base:"flag" ~idx:(r "i") ~exit_lbl:"work"
      @ [ blk "work" (bump (gi "data" (r "i"))) exit_t ])
  in
  let producer = func "producer" [ blk "entry" producer_body exit_t ] in
  harness
    ~globals:[ global "data" ~size:consumers (); global "flag" ~size:consumers () ]
    ~workers:(("producer", []) :: List.init consumers (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer; check_helper "flag" ]

(* Condition through a function pointer: statically unanalyzable, the
   false positive survives in every configuration (paper: "function
   pointers for condition evaluation"). *)
let adhoc_flag_fptr n =
  let consumers = n - 1 in
  let producer_body =
    List.concat_map
      (fun i ->
        [
          store (gi "data" (imm i)) (imm (i + 1));
          store (gi "flag" (imm i)) (imm 1);
        ])
      (List.init consumers Fun.id)
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      (blk "entry" [] (goto "sp_t")
      :: spin_flag_fptr ~tag:"sp" ~fptr_slot:0 ~idx:(r "i") ~exit_lbl:"work"
      @ [ blk "work" (bump (gi "data" (r "i"))) exit_t ])
  in
  let producer = func "producer" [ blk "entry" producer_body exit_t ] in
  harness
    ~globals:[ global "data" ~size:consumers (); global "flag" ~size:consumers () ]
    ~func_table:[ check_helper_name "flag" ]
    ~workers:(("producer", []) :: List.init consumers (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer; check_helper "flag" ]

(* The flag is read under a mutex inside the loop: DRD is clean thanks to
   lock-order edges, the hybrid false-positives on the data until spin
   detection recovers the loop. *)
let lock_flag_spin n =
  let consumers = n - 1 in
  let producer_body =
    List.concat_map
      (fun i ->
        [
          store (gi "data" (imm i)) (imm (2 * i));
          lock (g "m");
          store (gi "flag" (imm i)) (imm 1);
          unlock (g "m");
        ])
      (List.init consumers Fun.id)
  in
  (* The condition is evaluated by a helper that samples the flag under
     the lock and double-checks — 4 callee blocks plus the 3-block loop,
     an effective window of 7 (realistic loop conditions go through
     function calls, the paper's k=7 observation). *)
  let chk =
    func "chk_locked_flag" ~params:[ "idx" ]
      [
        blk "e"
          [
            lock (g "m");
            load "v" (gi "flag" (r "idx"));
            unlock (g "m");
            cmp Ne "c" (r "v") (imm 0);
          ]
          (br (r "c") "yes" "re");
        blk "re"
          [
            lock (g "m");
            load "v2" (gi "flag" (r "idx"));
            unlock (g "m");
            cmp Ne "c2" (r "v2") (imm 0);
          ]
          (br (r "c2") "yes" "no");
        blk "yes" [] (ret (Some (imm 1)));
        blk "no" [] (ret (Some (imm 0)));
      ]
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      [
        blk "entry" [] (goto "sp");
        blk "sp"
          [ call ~ret:"f" "chk_locked_flag" [ r "i" ] ]
          (br (r "f") "work" "sp1");
        blk "sp1" [ yield ] (goto "sp2");
        blk "sp2" [ nop ] (goto "sp");
        blk "work" (bump (gi "data" (r "i"))) exit_t;
      ]
  in
  let producer = func "producer" [ blk "entry" producer_body exit_t ] in
  harness
    ~globals:
      [ global "m" (); global "data" ~size:consumers (); global "flag" ~size:consumers () ]
    ~workers:(("producer", []) :: List.init consumers (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer; chk ]

(* Hand-rolled single-producer work queue: consumers spin until the tail
   moves past their claimed head slot (pure-read inner loop), then claim
   the slot with a CAS in the outer retry loop. *)
let task_queue n =
  let consumers = n - 1 in
  let items = consumers * 2 in
  let producer =
    func "producer"
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm items)
           ~body:
             [
               muli "v" (r "j") (imm 10);
               store (gi "items" (r "j")) (r "v");
               addi "j1" (r "j") (imm 1);
               (* Atomic publication, as a real lock-free queue would do. *)
               rmw Rmw_exchange "oldt" (g "tail") (r "j1");
             ]
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  let pop =
    (* Returns a claimed slot index. *)
    func "pop"
      [
        blk "entry" [] (goto "outer");
        blk "outer" [] (goto "waitt");
        blk "waitt"
          [ load "t" (g "tail"); load "h" (g "head"); cmp Lt "av" (r "h") (r "t") ]
          (br (r "av") "claim" "waitb");
        blk "waitb" [ yield ] (goto "waitt");
        blk "claim"
          [
            load "h2" (g "head");
            (* Atomic re-read: the slot check must see the published tail. *)
            rmw Rmw_add "t2" (g "tail") (imm 0);
            cmp Lt "still" (r "h2") (r "t2");
          ]
          (br (r "still") "claim2" "outer");
        blk "claim2"
          [ addi "h3" (r "h2") (imm 1); cas "ok" (g "head") (r "h2") (r "h3") ]
          (br (r "ok") "got" "outer");
        blk "got" [] (ret (Some (r "h2")));
      ]
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm (items / consumers))
           ~body:
             ([ call ~ret:"slot" "pop" [] ]
             @ [
                 load "iv" (gi "items" (r "slot"));
                 addi "iv1" (r "iv") (imm 1);
                 store (gi "items" (r "slot")) (r "iv1");
               ])
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  harness
    ~globals:
      [ global "items" ~size:items (); global "tail" (); global "head" () ]
    ~workers:(("producer", []) :: List.init consumers (fun i -> ("consumer", [ imm i ])))
    [ producer; pop; consumer ]

(* Double-checked initialization: correct under the lock, but readers that
   see the fast path take no lock — only the lockset argument (not
   happens-before) proves the read safe, so pure-HB configurations keep a
   residual false positive even with spin detection (no loop to detect). *)
let double_checked_init n =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry" [ load "f" (g "inited") ] (br (r "f") "use" "slow");
        blk "slow" [ lock (g "m"); load "f2" (g "inited") ]
          (br (r "f2") "unlock_use" "init");
        blk "init"
          [ store (g "val") (imm 42); store (g "inited") (imm 1) ]
          (goto "unlock_use");
        blk "unlock_use" [ unlock (g "m") ] (goto "use");
        blk "use" [ load "v" (g "val"); store (gi "out" (r "i")) (r "v") ] exit_t;
      ]
  in
  harness
    ~globals:
      [ global "m" (); global "inited" (); global "val" (); global "out" ~size:n () ]
    ~workers:(List.init n (fun i -> ("w", [ imm i ])))
    [ w ]

(* Double-checked init followed by lock-protected mutation.  The
   initializing write (under m) and the later mutations (under m2) share
   no happens-before edge when the fast path is taken, but the mutation
   lock keeps the candidate lockset non-empty — only detectors with lock
   knowledge stay quiet.  This is the kind of case that costs the
   universal (nolib) detector its one extra false alarm. *)
let dcl_writeback n =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry" [ load "f" (g "inited") ] (br (r "f") "use" "slow");
        blk "slow" [ lock (g "m"); load "f2" (g "inited") ]
          (br (r "f2") "unlock_use" "init");
        blk "init"
          [ store (g "val") (imm 42); store (g "inited") (imm 1) ]
          (goto "unlock_use");
        blk "unlock_use" [ unlock (g "m") ] (goto "use");
        blk "use"
          ([ lock (g "m2") ] @ bump (g "val") @ [ unlock (g "m2") ])
          exit_t;
      ]
  in
  harness
    ~globals:
      [ global "m" (); global "m2" (); global "inited" (); global "val" () ]
    ~workers:(List.init n (fun i -> ("w", [ imm i ])))
    [ w ]

(* Two threads ping-pong through a pair of flags, alternately mutating a
   shared buffer; flags are written by both sides (set by the peer, reset
   by the owner), so without spin detection they are "synchronization
   races" on top of the apparent races on the buffer. *)
let adhoc_phase_flag rounds =
  let t1 =
    func "t1"
      (blk "entry" [ mov "rnd" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"rnd" ~limit:(imm rounds)
           ~body:(bump (g "shared") @ [ store (g "f2") (imm 1); call "w1" [] ])
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  let w1 =
    func "w1"
      [
        blk "entry" [] (goto "sp");
        blk "sp" [ load "f" (g "f1") ] (br (r "f") "got" "sp");
        blk "got" [ store (g "f1") (imm 0) ] ret0;
      ]
  in
  let t2 =
    func "t2"
      (blk "entry" [ mov "rnd" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"rnd" ~limit:(imm rounds)
           ~body:([ call "w2" [] ] @ bump (g "shared") @ [ store (g "f1") (imm 1) ])
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  let w2 =
    func "w2"
      [
        blk "entry" [] (goto "sp");
        blk "sp" [ load "f" (g "f2") ] (br (r "f") "got" "sp");
        blk "got" [ store (g "f2") (imm 0) ] ret0;
      ]
  in
  harness
    ~globals:[ global "f1" (); global "f2" (); global "shared" () ]
    ~workers:[ ("t1", []); ("t2", []) ]
    [ t1; w1; t2; w2 ]

(* A baton travels around a ring of threads; holding the baton licenses a
   mutation of the shared counter. *)
let adhoc_baton n =
  let rounds = 2 in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry" [ mov "rnd" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"rnd" ~limit:(imm rounds)
           ~body:
             ([ call "grab" [ r "i" ] ]
             @ bump (g "x")
             @ [
                 addi "nx" (r "i") (imm 1);
                 modi "nx2" (r "nx") (imm n);
                 store (gi "baton" (r "nx2")) (imm 1);
               ])
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  let grab =
    func "grab" ~params:[ "i" ]
      [
        blk "entry" [] (goto "sp");
        blk "sp" [ load "b" (gi "baton" (r "i")) ] (br (r "b") "got" "sp");
        blk "got" [ store (gi "baton" (r "i")) (imm 0) ] ret0;
      ]
  in
  harness
    ~globals:[ global "baton" ~size:n (); global "x" () ]
    ~before:[ store (gi "baton" (imm 0)) (imm 1) ]
    ~workers:(List.init n (fun i -> ("w", [ imm i ])))
    ~after:
      [
        load "fx" (g "x");
        cmp Eq "ok" (r "fx") (imm (n * rounds));
        check (r "ok") "adhoc_baton count";
      ]
    [ w; grab ]

(* Watermark queue: the producer fills plain item slots and advances a
   lock-protected [count]; consumers spin on [count] (reading it under the
   lock) and then consume every slot below the watermark.  Lock-order
   edges make DRD quiet; the hybrid needs the spin loop's edge to see that
   the item writes are ordered. *)
let guarded_queue n =
  let consumers = n - 1 in
  let per = 2 in
  let items = consumers * per in
  let producer =
    func "producer"
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm items)
           ~body:
             [
               muli "v" (r "j") (imm 7);
               store (gi "items" (r "j")) (r "v");
               lock (g "m");
               addi "j1" (r "j") (imm 1);
               store (g "count") (r "j1");
               unlock (g "m");
             ]
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  let chk =
    (* Watermark check under the lock, double-checked: 4 callee blocks. *)
    func "chk_watermark" ~params:[ "need" ]
      [
        blk "e"
          [
            lock (g "m");
            load "c" (g "count");
            unlock (g "m");
            cmp Ge "ok" (r "c") (r "need");
          ]
          (br (r "ok") "yes" "re");
        blk "re"
          [
            lock (g "m");
            load "c2" (g "count");
            unlock (g "m");
            cmp Ge "ok2" (r "c2") (r "need");
          ]
          (br (r "ok2") "yes" "no");
        blk "yes" [] (ret (Some (imm 1)));
        blk "no" [] (ret (Some (imm 0)));
      ]
  in
  let consumer =
    (* Consumer i waits for the watermark to cover its slice
       [i*per, (i+1)*per) and folds it. *)
    func "consumer" ~params:[ "i" ]
      [
        blk "entry"
          [ addi "hi" (r "i") (imm 1); muli "need" (r "hi") (imm per) ]
          (goto "sp");
        blk "sp"
          [ call ~ret:"ready" "chk_watermark" [ r "need" ] ]
          (br (r "ready") "fold" "sp1");
        blk "sp1" [ yield ] (goto "sp2");
        blk "sp2" [ nop ] (goto "sp");
        blk "fold"
          [
            muli "lo" (r "i") (imm per);
            load "a" (gi "items" (r "lo"));
            addi "lo1" (r "lo") (imm 1);
            load "b" (gi "items" (r "lo1"));
            addi "s" (r "a") (r "b");
            store (gi "out" (r "i")) (r "s");
          ]
          exit_t;
      ]
  in
  harness
    ~globals:
      [
        global "m" (); global "count" (); global "items" ~size:items ();
        global "out" ~size:consumers ();
      ]
    ~workers:(("producer", []) :: List.init consumers (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer; chk ]

(* One variable protected by a mutex, another by an ad-hoc flag: only the
   flag-protected one should trip a spin-less hybrid. *)
let mixed_lock_and_flag n =
  let consumers = n - 1 in
  let producer =
    func "producer"
      [
        blk "entry"
          ([ lock (g "m") ] @ bump (g "x")
          @ [ unlock (g "m"); store (g "y") (imm 5); store (g "flag") (imm 1) ])
          exit_t;
      ]
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      (blk "entry" ([ lock (g "m") ] @ bump (g "x") @ [ unlock (g "m") ])
         (goto "sp_t")
      :: spin_flag ~tag:"sp" ~flag:(g "flag") ~window:2 ~exit_lbl:"work"
      @ [ blk "work" (bump (g "y")) exit_t ])
  in
  harness
    ~globals:[ global "m" (); global "x" (); global "y" (); global "flag" () ]
    ~workers:(("producer", []) :: List.init consumers (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer ]
