(** Race-free cases synchronized through ad-hoc constructs — the paper's
    subject.  Spin-less hybrids false-positive on the protected data;
    spin detection (window permitting) silences them.  Builders take the
    thread-count parameter unless noted. *)

open Arde.Types

val adhoc_flag : window:int -> int -> program
(** Flag handoff with an inline spin loop of exactly [window] blocks. *)

val adhoc_flag_call : int -> program
(** Condition through a direct helper call: effective window 7. *)

val adhoc_flag_fptr : int -> program
(** Condition through a function pointer: never recovered. *)

val lock_flag_spin : int -> program
(** Flag sampled under a mutex inside the loop (DRD-clean). *)

val guarded_queue : int -> program
(** Lock-protected watermark over plain item slots (DRD-clean). *)

val task_queue : int -> program
(** Hand-rolled CAS work queue with a pure-read wait loop. *)

val double_checked_init : int -> program
(** Safe only through the lockset argument on the fast path. *)

val dcl_writeback : int -> program
(** Double-checked init plus lock-protected mutation: the case that costs
    the universal detector its extra false alarm. *)

val adhoc_phase_flag : int -> program
(** Two threads ping-pong through a flag pair; parameter is rounds. *)

val adhoc_baton : int -> program
(** A baton circulates a ring; holding it licenses the shared mutation. *)

val mixed_lock_and_flag : int -> program
(** One variable under a mutex, another behind a flag (use with 2
    threads). *)
