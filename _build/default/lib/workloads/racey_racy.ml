(* Genuinely racy cases.  Each declares the global bases that carry a real
   race; a detector that stays silent on one of them has missed a race.
   Several cases deliberately bias the schedule so that the racy accesses
   are almost always ordered by unrelated synchronization in the observed
   run — the mechanism behind pure happens-before detectors' missed
   races. *)

open Arde.Types
open Arde.Builder
open Racey_base

(* Plain unprotected increments. *)
let racy_counter n =
  let reps = 3 in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm reps)
           ~body:(bump (g "x")) ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  harness ~globals:[ global "x" () ]
    ~workers:(List.init n (fun i -> ("w", [ imm i ])))
    [ w ]

(* One-shot flag without a loop: both the flag and the data race. *)
let racy_flag_no_loop n =
  let producer =
    func "producer"
      [ blk "entry" [ store (g "data") (imm 1); store (g "flag") (imm 1) ] exit_t ]
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      [
        blk "entry" [ load "f" (g "flag") ] (goto "use");
        blk "use" (bump (g "data") @ [ store (g "flag") (imm 2) ]) exit_t;
      ]
  in
  harness
    ~globals:[ global "data" (); global "flag" () ]
    ~workers:(("producer", []) :: List.init (n - 1) (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer ]

(* Each thread consistently locks - but half use m[0] and half m[1]. *)
let racy_mixed_locks n =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry"
          ([ modi "which" (r "i") (imm 2); lock (gi "ml" (r "which")) ]
          @ bump (g "x")
          @ [ unlock (gi "ml" (r "which")) ])
          exit_t;
      ]
  in
  harness
    ~globals:[ global "ml" ~size:2 (); global "x" () ]
    ~workers:(List.init n (fun i -> ("w", [ imm i ])))
    [ w ]

(* The DRD-miss shape: a real race on x whose two sides are, in almost
   every schedule, ordered through an unrelated critical section.  The
   hybrid lockset still fires (empty candidate set on x); a pure
   happens-before detector draws the lock edge and goes quiet.  [style]
   varies the code shape so the suite has several distinct cases. *)
let racy_lock_ordered ~style n =
  let fast =
    func "fast"
      [
        blk "entry"
          (bump (g "x") @ [ lock (g "c") ] @ bump (g "y") @ [ unlock (g "c") ])
          exit_t;
      ]
  in
  let slow_tail =
    match style with
    | `Write -> bump (g "x")
    | `Read -> [ load "sx" (g "x"); store (g "sink") (r "sx") ]
  in
  let slow =
    func "slow"
      (delay ~tag:"d" ~n:600 ~next:"crit"
      @ [
          blk "crit"
            ([ lock (g "c") ] @ bump (g "y") @ [ unlock (g "c") ] @ slow_tail)
            exit_t;
        ])
  in
  (* Extra well-behaved threads vary the thread count without touching
     the racy cells. *)
  let filler =
    func "filler" ~params:[ "i" ]
      [
        blk "entry"
          ([ lock (g "c") ] @ bump (g "y") @ [ unlock (g "c") ])
          exit_t;
      ]
  in
  let fillers = List.init (max 0 (n - 2)) (fun i -> ("filler", [ imm i ])) in
  harness
    ~globals:[ global "c" (); global "x" (); global "y" (); global "sink" () ]
    ~workers:([ ("fast", []); ("slow", []) ] @ fillers)
    [ fast; slow; filler ]

(* A race on a rarely-taken path: the consumer reads the flag exactly once
   while the producer sets it only after a long private delay, so the
   guarded access to x almost never executes — every dynamic detector
   tends to miss it.  The flag itself is also racy and is caught by pure
   happens-before detectors but not by the state machine (read-only
   sharing). *)
let racy_rare_path n =
  let producer =
    func "producer"
      (delay ~tag:"d" ~n:800 ~next:"set"
      @ [ blk "set" ([ store (g "flag") (imm 1) ] @ bump (g "x")) exit_t ])
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      [
        blk "entry" [ load "f" (g "flag") ] (br (r "f") "touch" "skip");
        blk "touch" (bump (g "x")) exit_t;
        blk "skip" [] exit_t;
      ]
  in
  harness
    ~globals:[ global "flag" (); global "x" () ]
    ~before:(bump (g "x"))
    ~workers:(("producer", []) :: List.init (n - 1) (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer ]

(* Broken ad-hoc synchronization: the flag is raised BEFORE the payload
   write.  The spin edge only covers the producer's pre-store work, so the
   data race must survive spin detection (it is real). *)
let racy_adhoc_broken n =
  let producer =
    func "producer"
      [
        blk "entry"
          [ store (g "flag") (imm 1); yield; store (g "data") (imm 9) ]
          exit_t;
      ]
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      (blk "entry" [] (goto "sp_t")
      :: spin_flag ~tag:"sp" ~flag:(g "flag") ~window:2 ~exit_lbl:"work"
      @ [ blk "work" (bump (g "data")) exit_t ])
  in
  harness
    ~globals:[ global "flag" (); global "data" () ]
    ~workers:(("producer", []) :: List.init (n - 1) (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer ]

(* Phase two reads the neighbour's phase-one cell with no barrier. *)
let racy_barrier_missing n =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry"
          [
            muli "v" (r "i") (imm 5);
            store (gi "a" (r "i")) (r "v");
            addi "j" (r "i") (imm 1);
            modi "j2" (r "j") (imm n);
            load "nb" (gi "a" (r "j2"));
            store (gi "a" (r "i")) (r "nb");
          ]
          exit_t;
      ]
  in
  harness
    ~globals:[ global "a" ~size:n () ]
    ~workers:(List.init n (fun i -> ("w", [ imm i ])))
    [ w ]

(* One writer keeps mutating; readers read with no synchronization. *)
let racy_read_write n =
  let writer =
    func "writer"
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm 6)
           ~body:(bump (g "x")) ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  let reader =
    func "reader" ~params:[ "i" ]
      [
        blk "entry"
          [ load "v" (g "x"); store (gi "out" (r "i")) (r "v") ]
          exit_t;
      ]
  in
  harness
    ~globals:[ global "x" (); global "out" ~size:n () ]
    ~workers:(("writer", []) :: List.init (n - 1) (fun i -> ("reader", [ imm i ])))
    [ writer; reader ]

(* Main reads a result slot between spawn and join. *)
let racy_after_join_wrong n =
  let w =
    func "w" ~params:[ "i" ]
      [ blk "entry" [ store (gi "res" (r "i")) (imm 3) ] exit_t ]
  in
  let spawns = List.init n (fun i -> spawn (Printf.sprintf "t%d" i) "w" [ imm i ]) in
  let joins = List.init n (fun i -> join (r (Printf.sprintf "t%d" i))) in
  let main =
    func "main"
      [
        blk "entry" spawns (goto "peek");
        blk "peek"
          [ load "early" (gi "res" (imm 0)); store (g "sink") (r "early") ]
          (goto "joins");
        blk "joins" joins exit_t;
      ]
  in
  program
    ~globals:[ global "res" ~size:n (); global "sink" () ]
    ~entry:"main" [ main; w ]

(* Two workers, one semaphore post: main legitimately syncs with one
   buffer but reads the other unsynchronized. *)
let racy_sem_misuse () =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry"
          [ store (gi "buf" (r "i")) (imm 8); cmp Eq "first" (r "i") (imm 0) ]
          (br (r "first") "post" "fin");
        blk "post" [ sem_post (g "s") ] (goto "fin");
        blk "fin" [] exit_t;
      ]
  in
  let spawns = [ spawn "t0" "w" [ imm 0 ]; spawn "t1" "w" [ imm 1 ] ] in
  let main =
    func "main"
      [
        blk "entry" spawns (goto "consume");
        blk "consume"
          [
            sem_wait (g "s");
            load "a" (gi "buf" (imm 0));
            load "b" (gi "buf" (imm 1));
            addi "ab" (r "a") (r "b");
            store (g "sink") (r "ab");
          ]
          (goto "joins");
        blk "joins" [ join (r "t0"); join (r "t1") ] exit_t;
      ]
  in
  program
    ~globals:[ global "s" (); global "buf" ~size:2 (); global "sink" () ]
    ~entry:"main" [ main; w ]

(* The condition-variable predicate is written without the mutex. *)
let racy_cv_unlocked_pred n =
  let producer =
    func "producer"
      [ blk "entry" [ store (g "ready") (imm 1); signal (g "cv") ] exit_t ]
  in
  let consumer =
    (* Buggy: the predicate is checked once, not in a loop, so there is no
       spinning read loop to detect and the unlocked predicate write stays
       a reportable race in every configuration. *)
    func "consumer" ~params:[ "i" ]
      [
        blk "entry" [ lock (g "m") ] (goto "test");
        blk "test" [ load "rdy" (g "ready") ] (br (r "rdy") "go" "sleep");
        blk "sleep" [ wait (g "cv") (g "m") ] (goto "go");
        blk "go"
          [ unlock (g "m"); load "d" (g "ready"); store (gi "out" (r "i")) (r "d") ]
          exit_t;
      ]
  in
  harness
    ~globals:[ global "m" (); global "cv" (); global "ready" (); global "out" ~size:n () ]
    ~workers:(("producer", []) :: List.init (n - 1) (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer ]

(* Ad-hoc queue with an off-by-one: the consumer pops one slot past what
   was produced. *)
let racy_queue_overrun () =
  let items = 3 in
  (* A late extra write the consumer's overrun can collide with. *)
  let late_write = [ store (gi "items" (imm items)) (imm 77) ] in
  let producer =
    func "producer"
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm items)
           ~body:
             [
               store (gi "items" (r "j")) (r "j");
               addi "j1" (r "j") (imm 1);
               store (g "tail") (r "j1");
             ]
           ~next:"late"
      @ [ blk "late" late_write exit_t ])
  in
  let consumer =
    func "consumer"
      [
        blk "entry" [] (goto "sp");
        blk "sp"
          [ load "t" (g "tail"); cmp Ge "full" (r "t") (imm items) ]
          (br (r "full") "drain" "sp");
        blk "drain"
          [
            (* Off-by-one: also touches items[items]. *)
            load "v" (gi "items" (imm items));
            store (g "sink") (r "v");
          ]
          exit_t;
      ]
  in
  harness
    ~globals:
      [ global "items" ~size:(items + 1) (); global "tail" (); global "sink" () ]
    ~workers:[ ("producer", []); ("consumer", []) ]
    [ producer; consumer ]
