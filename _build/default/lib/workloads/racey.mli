(** The unit-test suite — our analog of the paper's [data-race-test]
    benchmark: 120 labelled cases (2–16 threads) spanning library
    synchronization, ad-hoc spinning constructs of varying difficulty, and
    genuine races, each with its ground truth. *)

type case = {
  name : string;
  category : string; (* "lib" | "adhoc" | "racy" *)
  threads : int;
  expectation : Arde.Classify.expectation;
  program : Arde.Types.program;
}

val all : unit -> case list
(** Exactly 120 cases. *)

val find : string -> case option
val categories : case list -> (string * int) list
(** Category histogram, sorted. *)
