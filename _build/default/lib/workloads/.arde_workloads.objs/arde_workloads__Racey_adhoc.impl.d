lib/workloads/racey_adhoc.ml: Arde Fun List Racey_base
