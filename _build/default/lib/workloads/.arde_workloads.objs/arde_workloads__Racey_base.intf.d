lib/workloads/racey_base.mli: Arde
