lib/workloads/racey.mli: Arde
