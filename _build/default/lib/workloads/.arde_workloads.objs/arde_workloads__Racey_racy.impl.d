lib/workloads/racey_racy.ml: Arde List Printf Racey_base
