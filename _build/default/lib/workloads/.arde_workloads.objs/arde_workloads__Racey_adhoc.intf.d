lib/workloads/racey_adhoc.mli: Arde
