lib/workloads/catalog.mli: Arde Parsec Racey
