lib/workloads/racey_base.ml: Arde List Printf
