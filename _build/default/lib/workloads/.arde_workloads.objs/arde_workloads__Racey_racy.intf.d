lib/workloads/racey_racy.mli: Arde
