lib/workloads/parsec.mli: Arde
