lib/workloads/parsec.ml: Arde Fun List Parsec_base Printf Racey_base
