lib/workloads/racey.ml: Arde Hashtbl List Option Printf Racey_adhoc Racey_lib Racey_racy
