lib/workloads/catalog.ml: Arde List Parsec Racey
