lib/workloads/parsec_base.mli: Arde
