lib/workloads/parsec_base.ml: Arde List Printf Racey_base
