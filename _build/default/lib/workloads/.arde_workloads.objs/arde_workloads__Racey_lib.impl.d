lib/workloads/racey_lib.ml: Arde Fun List Printf Racey_base
