lib/workloads/racey_lib.mli: Arde
