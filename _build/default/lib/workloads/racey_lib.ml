(* Race-free cases synchronized purely through the known library
   (mutexes, condition variables, barriers, semaphores, join, atomics).
   Every detector configuration should stay quiet on these. *)

open Arde.Types
open Arde.Builder
open Racey_base

let worker_args n = List.init n (fun i -> ("w", [ imm i ]))

(* n threads increment a counter under one mutex, [reps] times each. *)
let lock_counter n =
  let reps = 4 in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm reps)
           ~body:([ lock (g "m") ] @ bump (g "x") @ [ unlock (g "m") ])
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  let expected = n * reps in
  harness
    ~globals:[ global "m" (); global "x" () ]
    ~workers:(worker_args n)
    ~after:
      [
        load "fx" (g "x");
        cmp Eq "ok" (r "fx") (imm expected);
        check (r "ok") "lock_counter total";
      ]
    [ w ]

(* Gate pattern: main publishes data then raises [ready] under the lock
   and broadcasts; workers use the canonical predicate loop around
   cond_wait. *)
let cv_handoff n =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry" [ lock (g "m") ] (goto "test");
        blk "test" [ load "rdy" (g "ready") ] (br (r "rdy") "go" "sleep");
        blk "sleep" [ wait (g "cv") (g "m") ] (goto "test");
        blk "go"
          [
            unlock (g "m");
            load "d" (g "data");
            store (gi "out" (r "i")) (r "d");
          ]
          exit_t;
      ]
  in
  harness
    ~globals:
      [
        global "m" (); global "cv" (); global "ready" (); global "data" ();
        global "out" ~size:n ();
      ]
    ~before:
      [
        store (g "data") (imm 42);
        lock (g "m");
        store (g "ready") (imm 1);
        unlock (g "m");
        broadcast (g "cv");
      ]
    ~workers:(worker_args n) [ w ]

(* Two barrier-separated phases: write own cell, then read the
   neighbour's. *)
let barrier_phases n =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry"
          [
            muli "v" (r "i") (imm 3);
            store (gi "a" (r "i")) (r "v");
            barrier_wait (g "bar");
            addi "j" (r "i") (imm 1);
            modi "j2" (r "j") (imm n);
            load "nb" (gi "a" (r "j2"));
            store (gi "b" (r "i")) (r "nb");
          ]
          exit_t;
      ]
  in
  harness
    ~globals:[ global "bar" (); global "a" ~size:n (); global "b" ~size:n () ]
    ~before:[ barrier_init (g "bar") (imm n) ]
    ~workers:(worker_args n) [ w ]

(* A chain of stages: stage i waits on sem[i], transforms buf, posts
   sem[i+1]; main seeds the chain and waits for the last stage. *)
let sem_pipeline n =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry"
          ([ sem_wait (gi "s" (r "i")) ]
          @ bump (g "buf")
          @ [ addi "nx" (r "i") (imm 1); sem_post (gi "s" (r "nx")) ])
          exit_t;
      ]
  in
  harness
    ~globals:[ global "s" ~size:(n + 1) (); global "buf" () ]
    ~before:[ store (g "buf") (imm 7); sem_post (gi "s" (imm 0)) ]
    ~workers:(worker_args n)
    ~after:
      [
        sem_wait (gi "s" (imm n));
        load "fb" (g "buf");
        cmp Eq "ok" (r "fb") (imm (7 + n));
        check (r "ok") "sem_pipeline hops";
      ]
    [ w ]

(* Workers leave results; main reads them only after joining. *)
let join_result n =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry"
          [ muli "v" (r "i") (r "i"); store (gi "res" (r "i")) (r "v") ]
          exit_t;
      ]
  in
  let sum_after =
    [ mov "acc" (imm 0); mov "j" (imm 0) ]
  in
  let sum_loop =
    counted_loop ~tag:"sum" ~counter:"j" ~limit:(imm n)
      ~body:[ load "rv" (gi "res" (r "j")); addi "acc" (r "acc") (r "rv") ]
      ~next:"fin"
  in
  (* Custom main because the sum loop needs blocks, not just instrs. *)
  let spawns = List.init n (fun i -> spawn (Printf.sprintf "t%d" i) "w" [ imm i ]) in
  let joins = List.init n (fun i -> join (r (Printf.sprintf "t%d" i))) in
  let expected = List.fold_left (fun a i -> a + (i * i)) 0 (List.init n Fun.id) in
  let main =
    func "main"
      ([
         blk "entry" spawns (goto "joins");
         blk "joins" (joins @ sum_after) (goto "sum_head");
       ]
      @ sum_loop
      @ [
          blk "fin"
            [ cmp Eq "ok" (r "acc") (imm expected); check (r "ok") "join_result sum" ]
            exit_t;
        ])
  in
  program ~globals:[ global "res" ~size:n () ] ~entry:"main" [ main; w ]

(* Pure atomic increments: never reported by any configuration. *)
let atomic_counter n =
  let reps = 5 in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm reps)
           ~body:[ rmw Rmw_add "old" (g "x") (imm 1) ]
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  harness
    ~globals:[ global "x" () ]
    ~workers:(worker_args n)
    ~after:
      [
        load "fx" (g "x");
        cmp Eq "ok" (r "fx") (imm (n * reps));
        check (r "ok") "atomic_counter total";
      ]
    [ w ]

(* Every thread touches every cell, but each cell has its own lock. *)
let lock_percell n =
  let cells = 4 in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm cells)
           ~body:
             ([ lock (gi "ml" (r "j")) ]
             @ [
                 load "cv_" (gi "a" (r "j"));
                 addi "cv1" (r "cv_") (imm 1);
                 store (gi "a" (r "j")) (r "cv1");
               ]
             @ [ unlock (gi "ml" (r "j")) ])
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  harness
    ~globals:[ global "ml" ~size:cells (); global "a" ~size:cells () ]
    ~workers:(worker_args n) [ w ]

(* Initialized before spawning; threads only read. *)
let readonly_shared n =
  let cells = 8 in
  let inits =
    List.concat_map
      (fun j -> [ store (gi "tab" (imm j)) (imm (j * j)) ])
      (List.init cells Fun.id)
  in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry" [ mov "j" (imm 0); mov "acc" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm cells)
           ~body:[ load "tv" (gi "tab" (r "j")); addi "acc" (r "acc") (r "tv") ]
           ~next:"done"
      @ [ blk "done" [ store (gi "out" (r "i")) (r "acc") ] exit_t ])
  in
  harness
    ~globals:[ global "tab" ~size:cells (); global "out" ~size:n () ]
    ~before:inits ~workers:(worker_args n) [ w ]

(* Bounded-buffer producer/consumer with a lock and two condition
   variables. One producer (thread 0), n-1 consumers; [items] items. *)
let cv_bounded_buffer n =
  let consumers = n - 1 in
  let items = consumers * 2 in
  let cap = 2 in
  let producer =
    func "producer"
      (blk "entry" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm items)
           ~body:[ call "put" [ r "j" ] ]
           ~next:"done"
      @ [ blk "done" [] exit_t ])
  in
  let put =
    func "put" ~params:[ "v" ]
      [
        blk "entry" [ lock (g "m") ] (goto "test");
        blk "test" [ load "cnt" (g "count"); cmp Lt "hasroom" (r "cnt") (imm cap) ]
          (br (r "hasroom") "do_put" "sleep");
        blk "sleep" [ wait (g "notfull") (g "m") ] (goto "test");
        blk "do_put"
          [
            load "t" (g "tail");
            modi "slot" (r "t") (imm cap);
            store (gi "buf" (r "slot")) (r "v");
            addi "t1" (r "t") (imm 1);
            store (g "tail") (r "t1");
            load "c2" (g "count");
            addi "c3" (r "c2") (imm 1);
            store (g "count") (r "c3");
            signal (g "notempty");
            unlock (g "m");
          ]
          ret0;
      ]
  in
  let take =
    func "take"
      [
        blk "entry" [ lock (g "m") ] (goto "test");
        blk "test" [ load "cnt" (g "count"); cmp Gt "avail" (r "cnt") (imm 0) ]
          (br (r "avail") "do_take" "sleep");
        blk "sleep" [ wait (g "notempty") (g "m") ] (goto "test");
        blk "do_take"
          [
            load "h" (g "head");
            modi "slot" (r "h") (imm cap);
            load "v" (gi "buf" (r "slot"));
            addi "h1" (r "h") (imm 1);
            store (g "head") (r "h1");
            load "c2" (g "count");
            subi "c3" (r "c2") (imm 1);
            store (g "count") (r "c3");
            signal (g "notfull");
            unlock (g "m");
          ]
          (ret (Some (r "v")));
      ]
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      (blk "entry" [ mov "j" (imm 0); mov "acc" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm (items / consumers))
           ~body:[ call ~ret:"v" "take" []; addi "acc" (r "acc") (r "v") ]
           ~next:"done"
      @ [ blk "done" [ store (gi "got" (r "i")) (r "acc") ] exit_t ])
  in
  harness
    ~globals:
      [
        global "m" (); global "notfull" (); global "notempty" ();
        global "count" (); global "head" (); global "tail" ();
        global "buf" ~size:cap (); global "got" ~size:n ();
      ]
    ~workers:
      (("producer", []) :: List.init consumers (fun i -> ("consumer", [ imm i ])))
    [ producer; put; take; consumer ]

(* Stage i writes buf[i], then spawns stage i+1 which reads it: ordering
   by thread creation only. *)
let spawn_chain n =
  let stage =
    func "stage" ~params:[ "i" ]
      [
        blk "entry"
          [
            load "prev" (gi "buf" (r "i"));
            addi "v" (r "prev") (imm 1);
            addi "i1" (r "i") (imm 1);
            store (gi "buf" (r "i1")) (r "v");
            cmp Lt "more" (r "i1") (imm (n - 1));
          ]
          (br (r "more") "spawn_next" "fin");
        blk "spawn_next" [ spawn "c" "stage" [ r "i1" ]; join (r "c") ] (goto "fin");
        blk "fin" [] exit_t;
      ]
  in
  harness
    ~globals:[ global "buf" ~size:(n + 1) () ]
    ~before:[ store (gi "buf" (imm 0)) (imm 10) ]
    ~workers:[ ("stage", [ imm 0 ]) ]
    ~after:
      [
        load "fin" (gi "buf" (imm (n - 1)));
        cmp Eq "ok" (r "fin") (imm (10 + n - 1));
        check (r "ok") "spawn_chain propagation";
      ]
    [ stage ]

(* Tree reduction with a barrier between levels. *)
let barrier_reduction n =
  let levels =
    let rec lg acc x = if x <= 1 then acc else lg (acc + 1) (x / 2) in
    lg 0 n
  in
  let w =
    let level_body p =
      let stride = 1 lsl p in
      [
        modi "mine" (r "i") (imm (2 * stride));
        cmp Eq "active" (r "mine") (imm 0);
      ]
    in
    let rec level_blocks p =
      if p >= levels then [ blk "fin" [] exit_t ]
      else
        let this = Printf.sprintf "lvl%d" p in
        let merge = Printf.sprintf "merge%d" p in
        let next = if p + 1 >= levels then "fin" else Printf.sprintf "lvl%d" (p + 1) in
        let stride = 1 lsl p in
        blk this (level_body p) (br (r "active") merge (this ^ "_sync"))
        :: blk merge
             [
               addi "peer" (r "i") (imm stride);
               load "pv" (gi "a" (r "peer"));
               load "mv" (gi "a" (r "i"));
               addi "sum" (r "pv") (r "mv");
               store (gi "a" (r "i")) (r "sum");
             ]
             (goto (this ^ "_sync"))
        :: blk (this ^ "_sync") [ barrier_wait (g "bar") ] (goto next)
        :: level_blocks (p + 1)
    in
    func "w" ~params:[ "i" ]
      (blk "entry"
         [ addi "iv" (r "i") (imm 1); store (gi "a" (r "i")) (r "iv") ]
         (goto "sync0")
      :: blk "sync0" [ barrier_wait (g "bar") ] (goto "lvl0")
      :: level_blocks 0)
  in
  let expected = n * (n + 1) / 2 in
  harness
    ~globals:[ global "bar" (); global "a" ~size:n () ]
    ~before:[ barrier_init (g "bar") (imm n) ]
    ~workers:(worker_args n)
    ~after:
      [
        load "tot" (gi "a" (imm 0));
        cmp Eq "ok" (r "tot") (imm expected);
        check (r "ok") "barrier_reduction total";
      ]
    [ w ]

(* Fork/join binary tree: node id writes res[id] from its children's
   results. *)
let fork_join_tree depth =
  let node =
    func "node" ~params:[ "id"; "d" ]
      [
        blk "entry" [ cmp Lt "rec" (r "d") (imm depth) ] (br (r "rec") "forks" "leaf");
        blk "forks"
          [
            muli "l" (r "id") (imm 2);
            addi "l1" (r "l") (imm 1);
            addi "l2" (r "l") (imm 2);
            addi "d1" (r "d") (imm 1);
            spawn "cl" "node" [ r "l1"; r "d1" ];
            spawn "cr" "node" [ r "l2"; r "d1" ];
            join (r "cl");
            join (r "cr");
            load "vl" (gi "res" (r "l1"));
            load "vr" (gi "res" (r "l2"));
            addi "s" (r "vl") (r "vr");
            store (gi "res" (r "id")) (r "s");
          ]
          exit_t;
        blk "leaf" [ store (gi "res" (r "id")) (imm 1) ] exit_t;
      ]
  in
  let nodes = (1 lsl (depth + 1)) - 1 in
  let leaves = 1 lsl depth in
  harness
    ~globals:[ global "res" ~size:nodes () ]
    ~workers:[ ("node", [ imm 0; imm 0 ]) ]
    ~after:
      [
        load "tot" (gi "res" (imm 0));
        cmp Eq "ok" (r "tot") (imm leaves);
        check (r "ok") "fork_join_tree leaves";
      ]
    [ node ]

(* Broadcast wakes all waiters at once. *)
let cv_broadcast_wakeall n =
  let w =
    func "w" ~params:[ "i" ]
      [
        blk "entry" [ lock (g "m") ] (goto "test");
        blk "test" [ load "go" (g "go") ] (br (r "go") "run" "sleep");
        blk "sleep" [ wait (g "cv") (g "m") ] (goto "test");
        blk "run" ([ unlock (g "m") ] @ bump (gi "hits" (r "i"))) exit_t;
      ]
  in
  harness
    ~globals:[ global "m" (); global "cv" (); global "go" (); global "hits" ~size:n () ]
    ~before:
      [
        yield;
        lock (g "m");
        store (g "go") (imm 1);
        unlock (g "m");
        broadcast (g "cv");
      ]
    ~workers:(worker_args n) [ w ]

(* Pairwise rendezvous through two semaphores; partners exchange cell
   values. *)
let sem_rendezvous pairs =
  let a =
    func "wa" ~params:[ "i" ]
      [
        blk "entry"
          [
            store (gi "la" (r "i")) (r "i");
            sem_post (gi "sa" (r "i"));
            sem_wait (gi "sb" (r "i"));
            load "v" (gi "lb" (r "i"));
            store (gi "outa" (r "i")) (r "v");
          ]
          exit_t;
      ]
  in
  let b =
    func "wb" ~params:[ "i" ]
      [
        blk "entry"
          [
            store (gi "lb" (r "i")) (imm 100);
            sem_post (gi "sb" (r "i"));
            sem_wait (gi "sa" (r "i"));
            load "v" (gi "la" (r "i"));
            store (gi "outb" (r "i")) (r "v");
          ]
          exit_t;
      ]
  in
  let workers =
    List.concat_map
      (fun i -> [ ("wa", [ imm i ]); ("wb", [ imm i ]) ])
      (List.init pairs Fun.id)
  in
  harness
    ~globals:
      [
        global "sa" ~size:pairs (); global "sb" ~size:pairs ();
        global "la" ~size:pairs (); global "lb" ~size:pairs ();
        global "outa" ~size:pairs (); global "outb" ~size:pairs ();
      ]
    ~workers [ a; b ]

(* Publication through an atomic slot: producer CAS-publishes an index,
   consumers poll with an atomic read-modify-write of zero. *)
let atomic_publish n =
  let producer =
    func "producer"
      [
        blk "entry"
          [
            store (g "payload") (imm 99);
            rmw Rmw_exchange "old" (g "slot") (imm 1);
          ]
          exit_t;
      ]
  in
  let consumer =
    func "consumer" ~params:[ "i" ]
      [
        blk "entry" [] (goto "poll");
        blk "poll" [ rmw Rmw_add "s" (g "slot") (imm 0) ] (br (r "s") "use" "poll");
        blk "use"
          [ load "p" (g "payload"); store (gi "out" (r "i")) (r "p") ]
          exit_t;
      ]
  in
  harness
    ~globals:[ global "slot" (); global "payload" (); global "out" ~size:n () ]
    ~workers:(("producer", []) :: List.init (n - 1) (fun i -> ("consumer", [ imm i ])))
    [ producer; consumer ]
