(* Shared scaffolding for the data-race-test-style case suite: spawn/join
   harness, ad-hoc spin loop shapes of controllable window, and private
   delay loops used to bias schedules. *)

open Arde.Types
open Arde.Builder

(* A standard main: optional setup instructions, spawn [workers] (each a
   function name with argument operands), join them all, optional
   postlude. *)
let harness ?(globals = []) ?(func_table = []) ?(before = []) ?(after = [])
    ~workers funcs =
  let spawns =
    List.mapi (fun i (fn, args) -> spawn (Printf.sprintf "t%d" i) fn args) workers
  in
  let joins = List.mapi (fun i _ -> join (r (Printf.sprintf "t%d" i))) workers in
  let main =
    func "main"
      [
        blk "entry" (before @ spawns) (goto "joins");
        blk "joins" joins (goto "post");
        blk "post" after exit_t;
      ]
  in
  program ~globals ~func_table ~entry:"main" (main :: funcs)

(* Blocks of a spinning read loop on [flag <> 0] whose natural-loop body
   has exactly [window] basic blocks (1 <= window <= 12).  Exits to
   [exit_lbl]. *)
let spin_flag ~tag ~flag ~window ~exit_lbl =
  if window < 1 || window > 12 then invalid_arg "spin_flag: window out of range";
  let test = tag ^ "_t" in
  let pad i = Printf.sprintf "%s_p%d" tag i in
  if window = 1 then
    [ blk test [ load (tag ^ "_f") flag ] (br (r (tag ^ "_f")) exit_lbl test) ]
  else
    let pads =
      List.init (window - 1) (fun i ->
          let next = if i = window - 2 then test else pad (i + 1) in
          blk (pad i) [ (if i = 0 then yield else nop) ] (goto next))
    in
    blk test [ load (tag ^ "_f") flag ] (br (r (tag ^ "_f")) exit_lbl (pad 0))
    :: pads

(* A spin loop whose condition is evaluated by a direct call to a
   double-checking helper: 3 loop blocks + 4 helper blocks = 7 counted
   blocks, the paper's realistic shape.  Returns the loop blocks and the
   helper function (instantiate once per base). *)
let check_helper_name base = "chk_" ^ base

let check_helper base =
  func (check_helper_name base) ~params:[ "idx" ]
    [
      blk "e"
        [ load "v" (gi base (r "idx")); cmp Ne "c" (r "v") (imm 0) ]
        (br (r "c") "yes" "re");
      blk "re"
        [ load "v2" (gi base (r "idx")); cmp Ne "c2" (r "v2") (imm 0) ]
        (br (r "c2") "yes" "no");
      blk "yes" [] (ret (Some (imm 1)));
      blk "no" [] (ret (Some (imm 0)));
    ]

let spin_flag_call ~tag ~flag_base ~idx ~exit_lbl =
  let test = tag ^ "_t" and b1 = tag ^ "_b1" and b2 = tag ^ "_b2" in
  [
    blk test
      [ call ~ret:(tag ^ "_ok") (check_helper_name flag_base) [ idx ] ]
      (br (r (tag ^ "_ok")) exit_lbl b1);
    blk b1 [ yield ] (goto b2);
    blk b2 [ nop ] (goto test);
  ]

(* A spin loop whose condition goes through a function pointer: the
   classifier must reject it (the paper's residual false-positive
   pattern).  The helper must be placed in the program's [func_table] and
   [fptr_slot] is its index there. *)
let spin_flag_fptr ~tag ~fptr_slot ~idx ~exit_lbl =
  let test = tag ^ "_t" and b1 = tag ^ "_b1" in
  [
    blk test
      [ call_ind ~ret:(tag ^ "_ok") (imm fptr_slot) [ idx ] ]
      (br (r (tag ^ "_ok")) exit_lbl b1);
    blk b1 [ yield ] (goto test);
  ]

(* Private busywork of [n] iterations: a register-counted loop with no
   memory traffic, used to bias which thread reaches a code point
   first. *)
let delay ~tag ~n ~next =
  let c = tag ^ "_c" in
  blk (tag ^ "_init") [ mov c (imm 0) ] (goto (tag ^ "_head"))
  :: counted_loop ~tag ~counter:c ~limit:(imm n) ~body:[ nop ] ~next

let delay_entry tag = tag ^ "_init"

(* Store [v] into [a] via a tiny code sequence that gives each call site
   its own location (useful to multiply racy contexts). *)
let bump a =
  let t = "bump_v" in
  [ load t a; addi (t ^ "1") (r t) (imm 1); store a (r (t ^ "1")) ]
