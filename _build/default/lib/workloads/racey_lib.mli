(** Race-free cases synchronized through the known library.  Every
    detector configuration should stay quiet on all of them; most carry a
    runtime [check] proving the synchronization actually synchronizes.
    Each builder takes the thread/size parameter the catalog spreads
    over. *)

open Arde.Types

val lock_counter : int -> program
val cv_handoff : int -> program
val barrier_phases : int -> program
val sem_pipeline : int -> program
val join_result : int -> program
val atomic_counter : int -> program
val lock_percell : int -> program
val readonly_shared : int -> program
val cv_bounded_buffer : int -> program
val spawn_chain : int -> program
val barrier_reduction : int -> program
(** Requires a power-of-two thread count. *)

val fork_join_tree : int -> program
(** Parameter is the tree depth. *)

val cv_broadcast_wakeall : int -> program
val sem_rendezvous : int -> program
(** Parameter is the number of thread pairs. *)

val atomic_publish : int -> program
