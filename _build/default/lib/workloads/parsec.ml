open Arde.Types
open Arde.Builder
module P = Parsec_base

type info = {
  pname : string;
  model : string;
  uses_cvs : bool;
  uses_locks : bool;
  uses_barriers : bool;
  uses_adhoc : bool;
  prelowered : bool;
  nolib_style : Arde.Lower.style;
  threads : int;
}

let mk_info ?(cvs = false) ?(locks = false) ?(barriers = false) ?(adhoc = false)
    ?(prelowered = false) ?(style = Arde.Lower.Realistic) ~model ~threads pname =
  {
    pname;
    model;
    uses_cvs = cvs;
    uses_locks = locks;
    uses_barriers = barriers;
    uses_adhoc = adhoc;
    prelowered;
    nolib_style = style;
    threads;
  }

(* ------------------------------------------------------------------ *)
(* Programs without ad-hoc synchronization                            *)

(* Data-parallel option pricing.  Each worker prices a slice of options
   with a fixed-point Black-Scholes stand-in: a Horner-evaluated rational
   approximation of the normal CDF over a log-moneyness proxy, plus a
   discounting loop — all integer arithmetic, scaled by 2^10.  One
   barrier separates pricing from the aggregation phase. *)
let blackscholes () =
  let n = 8 in
  let opts = 32 in
  let per = opts / n in
  let scale = 1024 in
  (* cnd_fx(x) ~ scaled cumulative-normal surrogate on [-4s, 4s]: a
     clamped cubic evaluated by Horner's rule. *)
  let cnd_fx =
    func "cnd_fx" ~params:[ "x" ]
      [
        blk "clamp_lo" [ cmp Lt "lo" (r "x") (imm (-4 * scale)) ]
          (br (r "lo") "ret_zero" "clamp_hi");
        blk "clamp_hi" [ cmp Gt "hi" (r "x") (imm (4 * scale)) ]
          (br (r "hi") "ret_one" "horner");
        blk "horner"
          [
            (* h = ((a3*t + a2)*t + a1)*t + a0, with t = x/8 + s/2 mapped
               into [0, s] *)
            divi "t0" (r "x") (imm 8);
            addi "t" (r "t0") (imm (scale / 2));
            muli "h0" (r "t") (imm 3);
            divi "h1" (r "h0") (imm scale);
            addi "h2" (r "h1") (imm 7);
            muli "h3" (r "h2") (r "t");
            divi "h4" (r "h3") (imm scale);
            addi "h5" (r "h4") (imm 11);
            muli "h6" (r "h5") (r "t");
            divi "h7" (r "h6") (imm (16 * scale));
            modi "h" (r "h7") (imm (scale + 1));
          ]
          (ret (Some (r "h")));
        blk "ret_zero" [] (ret (Some (imm 0)));
        blk "ret_one" [] (ret (Some (imm scale)));
      ]
  in
  (* discount(v, t) = v reduced by ~2% per period, t periods. *)
  let discount =
    func "discount" ~params:[ "v"; "t" ]
      (blk "entry" [ mov "acc" (r "v"); mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(r "t")
           ~body:[ muli "a0" (r "acc") (imm 1004); divi "acc" (r "a0") (imm 1024) ]
           ~next:"done_"
      @ [ blk "done_" [] (ret (Some (r "acc"))) ])
  in
  let price_kernel =
    [
      load "s" (gi "spot" (r "o"));
      load "k" (gi "strike" (r "o"));
      load "t" (gi "expiry" (r "o"));
      (* log-moneyness proxy: m = (s - k) * scale / k *)
      subi "sk" (r "s") (r "k");
      muli "m0" (r "sk") (imm scale);
      divi "m" (r "m0") (r "k");
      call ~ret:"d1" "cnd_fx" [ r "m" ];
      subi "negm" (imm 0) (r "m");
      call ~ret:"d2" "cnd_fx" [ r "negm" ];
      (* call = s*d1 - k*d2, discounted; put via parity *)
      muli "c0" (r "s") (r "d1");
      muli "c1" (r "k") (r "d2");
      subi "c2" (r "c0") (r "c1");
      divi "c3" (r "c2") (imm scale);
      call ~ret:"callp" "discount" [ r "c3"; r "t" ];
      subi "p0" (r "k") (r "s");
      addi "putp" (r "callp") (r "p0");
      store (gi "price" (r "o")) (r "callp");
      store (gi "put_price" (r "o")) (r "putp");
    ]
  in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry"
         [ muli "lo" (r "i") (imm per); mov "o" (r "lo");
           addi "hi" (r "lo") (imm per) ]
         (goto "ph1")
      :: blk "ph1" [ cmp Lt "more" (r "o") (r "hi") ] (br (r "more") "body" "sync")
      :: blk "body" (price_kernel @ [ addi "o" (r "o") (imm 1) ]) (goto "ph1")
      :: [
           blk "sync" [ barrier_wait (g "bar") ] (goto "agg");
           (* Phase 2: aggregate own slice (call and put legs). *)
           blk "agg" [ mov "o" (r "lo"); mov "acc" (imm 0) ] (goto "agg_h");
           blk "agg_h" [ cmp Lt "more2" (r "o") (r "hi") ]
             (br (r "more2") "agg_b" "done");
           blk "agg_b"
             [
               load "pv" (gi "price" (r "o"));
               load "qv" (gi "put_price" (r "o"));
               addi "pq" (r "pv") (r "qv");
               addi "acc" (r "acc") (r "pq");
               addi "o" (r "o") (imm 1);
             ]
             (goto "agg_h");
           blk "done" [ store (gi "out" (r "i")) (r "acc") ] exit_t;
         ])
  in
  let inits =
    List.concat_map
      (fun o ->
        [
          store (gi "spot" (imm o)) (imm (40 + (o * 3)));
          store (gi "strike" (imm o)) (imm (35 + (o * 2)));
          store (gi "expiry" (imm o)) (imm (1 + (o mod 4)));
        ])
      (List.init opts Fun.id)
  in
  ( mk_info "blackscholes" ~model:"POSIX" ~barriers:true ~threads:n,
    Racey_base.harness
      ~globals:
        [
          global "bar" (); global "spot" ~size:opts ();
          global "strike" ~size:opts (); global "expiry" ~size:opts ();
          global "price" ~size:opts (); global "put_price" ~size:opts ();
          global "out" ~size:n ();
        ]
      ~before:(inits @ [ barrier_init (g "bar") (imm n) ])
      ~workers:(List.init n (fun i -> ("w", [ imm i ])))
      [ w; cnd_fx; discount ] )

(* Monte-Carlo swaption pricing over fully independent slices: per
   swaption, several simulated forward-rate paths driven by a local
   congruential generator, payoff averaged and stored.  No inter-thread
   synchronization beyond spawn/join. *)
let swaptions () =
  let n = 8 in
  let per = 6 in
  let paths = 4 in
  let steps = 8 in
  let lcg =
    (* x' = (x * 1103515245 + 12345) mod 2^20, kept small and positive *)
    func "lcg" ~params:[ "x" ]
      [
        blk "e"
          [
            muli "a" (r "x") (imm 1103515245);
            addi "b" (r "a") (imm 12345);
            modi "c" (r "b") (imm 1048576);
          ]
          (ret (Some (r "c")));
      ]
  in
  let simulate_path =
    (* Walk the forward rate [steps] times; payoff = max(rate - strike, 0). *)
    func "simulate_path" ~params:[ "seed0"; "strike" ]
      (blk "e" [ mov "rate" (imm 512); mov "seed" (r "seed0"); mov "j" (imm 0) ]
         (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm steps)
           ~body:
             [
               call ~ret:"seed" "lcg" [ r "seed" ];
               modi "shock" (r "seed") (imm 64);
               subi "drift" (r "shock") (imm 31);
               addi "rate" (r "rate") (r "drift");
             ]
           ~next:"payoff"
      @ [
          blk "payoff" [ subi "pay" (r "rate") (r "strike");
                         cmp Gt "pos" (r "pay") (imm 0) ]
            (br (r "pos") "keep" "zero");
          blk "keep" [] (ret (Some (r "pay")));
          blk "zero" [] (ret (Some (imm 0)));
        ])
  in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry"
         [ muli "lo" (r "i") (imm per); mov "o" (r "lo");
           addi "hi" (r "lo") (imm per) ]
         (goto "h")
      :: [
           blk "h" [ cmp Lt "more" (r "o") (r "hi") ] (br (r "more") "b" "fin");
           blk "b" [ mov "sum" (imm 0); mov "p" (imm 0) ] (goto "ph");
           blk "ph" [ cmp Lt "morep" (r "p") (imm paths) ]
             (br (r "morep") "pb" "store_");
           blk "pb"
             [
               muli "sd0" (r "o") (imm 7919);
               addi "sd" (r "sd0") (r "p");
               muli "strk0" (r "o") (imm 3);
               addi "strk" (r "strk0") (imm 500);
               call ~ret:"pay" "simulate_path" [ r "sd"; r "strk" ];
               addi "sum" (r "sum") (r "pay");
               addi "p" (r "p") (imm 1);
             ]
             (goto "ph");
           blk "store_"
             [
               divi "avg" (r "sum") (imm paths);
               store (gi "swap_out" (r "o")) (r "avg");
               addi "o" (r "o") (imm 1);
             ]
             (goto "h");
           blk "fin" [] exit_t;
         ])
  in
  ( mk_info "swaptions" ~model:"POSIX" ~threads:n,
    Racey_base.harness
      ~globals:[ global "swap_out" ~size:(n * per) () ]
      ~workers:(List.init n (fun i -> ("w", [ imm i ])))
      [ w; lcg; simulate_path ] )

let mass_fn cells =
  func "mass"
    (blk "e" [ mov "tot" (imm 0); mov "c" (imm 0) ] (goto "loop_head")
    :: counted_loop ~tag:"loop" ~counter:"c" ~limit:(imm cells)
         ~body:[ load "dv" (gi "density" (r "c")); addi "tot" (r "tot") (r "dv") ]
         ~next:"done_"
    @ [ blk "done_" [] (ret (Some (r "tot"))) ])

(* Particle-density exchange on a cell grid.  Updating a pair of
   neighbouring cells takes both cell locks in index order (the classic
   deadlock-free discipline fluidanimate uses for its grid mutexes). *)
let fluidanimate () =
  let n = 8 in
  let cells = 16 in
  let timesteps = 3 in
  let lock_pair =
    func "lock_pair" ~params:[ "a"; "b" ]
      [
        blk "e" [ cmp Lt "ord" (r "a") (r "b") ] (br (r "ord") "ab" "ba");
        blk "ab" [ lock (gi "cl" (r "a")); lock (gi "cl" (r "b")) ] ret0;
        blk "ba" [ lock (gi "cl" (r "b")); lock (gi "cl" (r "a")) ] ret0;
      ]
  in
  let unlock_pair =
    func "unlock_pair" ~params:[ "a"; "b" ]
      [
        blk "e" [ unlock (gi "cl" (r "a")); unlock (gi "cl" (r "b")) ] ret0;
      ]
  in
  (* Move a quarter of the density difference from the denser cell of the
     pair (c, c+1 mod cells) to the other. *)
  let exchange =
    func "exchange" ~params:[ "c" ]
      [
        blk "e"
          [
            addi "c1_" (r "c") (imm 1);
            modi "d" (r "c1_") (imm cells);
            call "lock_pair" [ r "c"; r "d" ];
            load "dc" (gi "density" (r "c"));
            load "dd" (gi "density" (r "d"));
            subi "diff" (r "dc") (r "dd");
            divi "flow" (r "diff") (imm 4);
            subi "nc" (r "dc") (r "flow");
            addi "nd" (r "dd") (r "flow");
            store (gi "density" (r "c")) (r "nc");
            store (gi "density" (r "d")) (r "nd");
            call "unlock_pair" [ r "c"; r "d" ];
          ]
          ret0;
      ]
  in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry" [ mov "ts" (imm 0) ] (goto "steps_head")
      :: counted_loop ~tag:"steps" ~counter:"ts" ~limit:(imm timesteps)
           ~body:[ mov "j" (imm 0); call "sweep" [ r "i" ] ]
           ~next:"fin"
      @ [ blk "fin" [] exit_t ])
  in
  let sweep =
    (* Each worker sweeps the cell pairs starting at its offset. *)
    func "sweep" ~params:[ "i" ]
      (blk "e" [ mov "j" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"j" ~limit:(imm (cells / n))
           ~body:
             [
               muli "c0" (r "j") (imm n);
               addi "c1_" (r "c0") (r "i");
               modi "c" (r "c1_") (imm cells);
               call "exchange" [ r "c" ];
             ]
           ~next:"done_"
      @ [ blk "done_" [] ret0 ])
  in
  let inits =
    List.concat_map
      (fun c -> [ store (gi "density" (imm c)) (imm (100 + (c * 10))) ])
      (List.init cells Fun.id)
  in
  ( mk_info "fluidanimate" ~model:"POSIX" ~locks:true ~threads:n,
    Racey_base.harness
      ~globals:[ global "cl" ~size:cells (); global "density" ~size:cells () ]
      ~before:inits
      ~workers:(List.init n (fun i -> ("w", [ imm i ])))
      ~after:
        [
          (* mass is conserved across all exchanges *)
          mov "tot" (imm 0); mov "c" (imm 0); call ~ret:"tot" "mass" [];
          cmp Eq "ok" (r "tot")
            (imm (List.init cells (fun c -> 100 + (c * 10))
                  |> List.fold_left ( + ) 0));
          check (r "ok") "fluidanimate conserves mass";
        ]
      [ w; sweep; exchange; lock_pair; unlock_pair; mass_fn cells ] )

(* Simulated annealing: each round, a worker claims two elements with
   CAS locks (in index order), swaps their positions if the fixed-point
   "temperature" accepts, updates the shared cost under a mutex, and
   releases the claims. *)
let canneal () =
  let n = 8 in
  let elems = 24 in
  let rounds = 4 in
  (* Element mutexes are taken in index order (a < b is guaranteed by the
     caller), the same deadlock-free discipline as fluidanimate's grid. *)
  let claim2 =
    func "claim2" ~params:[ "a"; "b" ]
      [
        blk "e" [ lock (gi "el" (r "a")); lock (gi "el" (r "b")) ]
          (ret (Some (imm 1)));
      ]
  in
  let release2 =
    func "release2" ~params:[ "a"; "b" ]
      [
        blk "e" [ unlock (gi "el" (r "b")); unlock (gi "el" (r "a")) ] ret0;
      ]
  in
  let w =
    func "w" ~params:[ "i" ]
      (blk "entry" [ mov "rnd" (imm 0) ] (goto "loop_head")
      :: counted_loop ~tag:"loop" ~counter:"rnd" ~limit:(imm rounds)
           ~body:
             [
               (* pick a pseudo-random ordered pair *)
               muli "x0" (r "rnd") (imm 7);
               addi "x1" (r "x0") (r "i");
               modi "e1" (r "x1") (imm elems);
               muli "y0" (r "rnd") (imm 13);
               addi "y1" (r "y0") (r "i");
               modi "e2x" (r "y1") (imm (elems - 1));
               addi "e2y" (r "e2x") (imm 1);
               addi "e2z" (r "e1") (r "e2y");
               modi "e2" (r "e2z") (imm elems);
               cmp Lt "ordp" (r "e1") (r "e2");
               call "attempt" [ r "e1"; r "e2"; r "rnd" ];
             ]
           ~next:"fin"
      @ [ blk "fin" [] exit_t ])
  in
  let attempt =
    func "attempt" ~params:[ "p"; "q"; "temp" ]
      [
        blk "sortpq" [ cmp Lt "ordp" (r "p") (r "q") ] (br (r "ordp") "go" "swp");
        blk "swp" [ mov "t" (r "p"); mov "p" (r "q"); mov "q" (r "t") ]
          (goto "chk");
        blk "chk" [ cmp Eq "same" (r "p") (r "q") ] (br (r "same") "out" "go");
        blk "go" [ call ~ret:"won" "claim2" [ r "p"; r "q" ] ]
          (br (r "won") "swap_" "out");
        blk "swap_"
          [
            (* acceptance: always in early rounds, cooling later *)
            load "pp" (gi "pos" (r "p"));
            load "pq" (gi "pos" (r "q"));
            store (gi "pos" (r "p")) (r "pq");
            store (gi "pos" (r "q")) (r "pp");
            lock (g "costl");
            load "c" (g "cost");
            subi "delta" (r "pp") (r "pq");
            addi "c1" (r "c") (r "delta");
            store (g "cost") (r "c1");
            unlock (g "costl");
            call "release2" [ r "p"; r "q" ];
          ]
          (goto "out");
        blk "out" [] ret0;
      ]
  in
  let inits =
    List.concat_map
      (fun e -> [ store (gi "pos" (imm e)) (imm (e * e)) ])
      (List.init elems Fun.id)
  in
  ( mk_info "canneal" ~model:"POSIX" ~locks:true ~threads:n,
    Racey_base.harness
      ~globals:
        [
          global "el" ~size:elems (); global "pos" ~size:elems ();
          global "cost" (); global "costl" ();
        ]
      ~before:inits
      ~workers:(List.init n (fun i -> ("w", [ imm i ])))
      [ w; attempt; claim2; release2 ] )

(* An OpenMP-style runtime the detector has no hooks for: the whole
   program is lowered at build time.  Producer fills site groups, a
   (lowered) barrier separates production from consumption. *)
let freqmine () =
  let writeback = 67 and readonly = 290 in
  let total = writeback + readonly + 1 (* one fptr group *) in
  let consumers = 3 and readers = 3 in
  let produce =
    List.concat_map (P.produce_flag ~data:"fm_data" ~flag:"fm_flag")
      (List.init total Fun.id)
    @ [ barrier_wait (g "fm_bar") ]
  in
  let producer =
    func "producer" [ blk "entry" produce exit_t ]
  in
  let wb_chunks = P.chunks ~k:consumers writeback in
  let ro_chunks_pre = P.chunks ~k:readers readonly in
  (* barrier participants: the producer plus every chunked consumer (the
     function-pointer consumer gates on its own flag instead); writeback
     chunks are consumed by two threads each *)
  let participants = 1 + List.length wb_chunks + List.length ro_chunks_pre in
  let wb_funcs =
    (* side "a" crosses the (lowered) barrier and hands each group to side
       "b" through a user-level flag, so the two consumers of a cell are
       ordered by the same class of invisible synchronization. *)
    List.mapi
      (fun i gs ->
        P.consumer ~fname:(Printf.sprintf "wba%d" i) ~data:"fm_data"
          ~consume:`Writeback
          ~epilogue:(fun gidx -> [ store (gi "fm_hand" (imm gidx)) (imm 1) ])
          ~gate_blocks:(fun ~tag gidx ->
            if gidx = List.hd gs then
              [ blk (tag ^ "_t") [ barrier_wait (g "fm_bar") ] (goto (tag ^ "_wrk")) ]
            else [ blk (tag ^ "_t") [] (goto (tag ^ "_wrk")) ])
          gs)
      wb_chunks
    @ List.mapi
        (fun i gs ->
          P.consumer ~fname:(Printf.sprintf "wbb%d" i) ~data:"fm_data"
            ~consume:`Writeback
            ~gate_blocks:(P.flag_gate ~flag:"fm_hand" ~window:2)
            gs)
        wb_chunks
  in
  let ro_chunks = ro_chunks_pre in
  let ro_funcs =
    List.mapi
      (fun i gs ->
        let mgs = List.map (fun gx -> gx + writeback) gs in
        P.consumer ~fname:(Printf.sprintf "ro%d" i) ~data:"fm_data"
          ~consume:(`Readonly 4)
          ~gate_blocks:(fun ~tag gidx ->
            if gidx = List.hd mgs then
              [ blk (tag ^ "_t") [ barrier_wait (g "fm_bar") ] (goto (tag ^ "_wrk")) ]
            else [ blk (tag ^ "_t") [] (goto (tag ^ "_wrk")) ])
          mgs)
      ro_chunks
  in
  (* One group whose readiness is checked through a function pointer:
     unrecoverable, the residual warning pair of this program. *)
  let fptr_gid = writeback + readonly in
  let fptr_consumer side =
    if side = "a" then
      P.consumer ~fname:"obscurea" ~data:"fm_data" ~consume:`Writeback
        ~epilogue:(fun gidx -> [ store (gi "fm_hand2" (imm gidx)) (imm 1) ])
        ~gate_blocks:(P.fptr_gate ~fptr_slot:0) [ fptr_gid ]
    else
      P.consumer ~fname:"obscureb" ~data:"fm_data" ~consume:`Writeback
        ~gate_blocks:(P.fptr_gate ~fptr_slot:1) [ fptr_gid ]
  in
  let chk = Racey_base.check_helper "fm_flag" in
  let chk2 = Racey_base.check_helper "fm_hand2" in
  let prog =
    Racey_base.harness
      ~globals:
        [
          global "fm_bar" (); global "fm_data" ~size:total ();
          global "fm_flag" ~size:total (); global "fm_hand" ~size:total ();
          global "fm_hand2" ~size:total ();
        ]
      ~func_table:
        [
          Racey_base.check_helper_name "fm_flag";
          Racey_base.check_helper_name "fm_hand2";
        ]
      ~before:[ barrier_init (g "fm_bar") (imm participants) ]
      ~workers:
        (("producer", [])
        :: List.concat_map
             (fun side ->
               List.mapi (fun i _ -> (Printf.sprintf "wb%s%d" side i, [])) wb_chunks)
             [ "a"; "b" ]
        @ List.mapi (fun i _ -> (Printf.sprintf "ro%d" i, [])) ro_chunks
        @ [ ("obscurea", []); ("obscureb", []) ])
      ((producer :: wb_funcs) @ ro_funcs
      @ [ fptr_consumer "a"; fptr_consumer "b"; chk; chk2 ])
  in
  ( mk_info "freqmine" ~model:"OpenMP" ~barriers:true ~prelowered:true
      ~threads:participants,
    Arde.Lower.lower ~style:Arde.Lower.Realistic prog )

(* ------------------------------------------------------------------ *)
(* Programs with ad-hoc synchronization                               *)

(* GLib-based runtime (unknown library): condition-variable gates,
   pre-lowered. *)
let vips () =
  let writeback = 20 and readonly = 270 in
  let total = writeback + readonly in
  let consumers = 2 and readers = 3 in
  let produce =
    List.concat_map
      (P.produce_cv_gate ~data:"vp_data" ~gate:"vp_gate" ~cv:"vp_cv" ~m:"vp_m")
      (List.init total Fun.id)
  in
  let producer = func "producer" [ blk "entry" produce exit_t ] in
  let gate = P.cv_gate ~gate:"vp_gate" ~cv:"vp_cv" ~m:"vp_m" in
  let wb_funcs =
    List.mapi
      (fun i gs ->
        P.consumer ~fname:(Printf.sprintf "wba%d" i) ~data:"vp_data"
          ~consume:`Writeback ~gate_blocks:gate
          ~epilogue:(fun gidx -> [ store (gi "vp_hand" (imm gidx)) (imm 1) ])
          gs)
      (P.chunks ~k:consumers writeback)
    @ List.mapi
        (fun i gs ->
          P.consumer ~fname:(Printf.sprintf "wbb%d" i) ~data:"vp_data"
            ~consume:`Writeback
            ~gate_blocks:(P.flag_gate ~flag:"vp_hand" ~window:2)
            gs)
        (P.chunks ~k:consumers writeback)
  in
  let ro_funcs =
    List.mapi
      (fun i gs ->
        P.consumer ~fname:(Printf.sprintf "ro%d" i) ~data:"vp_data"
          ~consume:(`Readonly 4) ~gate_blocks:gate
          (List.map (fun g -> g + writeback) gs))
      (P.chunks ~k:readers readonly)
  in
  let prog =
    Racey_base.harness
      ~globals:
        [
          global "vp_m" (); global "vp_data" ~size:total ();
          global "vp_gate" ~size:total (); global "vp_cv" ~size:total ();
          global "vp_hand" ~size:total ();
        ]
      ~workers:
        (("producer", [])
        :: List.concat_map
             (fun side ->
               List.mapi
                 (fun i _ -> (Printf.sprintf "wb%s%d" side i, []))
                 (P.chunks ~k:consumers writeback))
             [ "a"; "b" ]
        @ List.mapi (fun i _ -> (Printf.sprintf "ro%d" i, [])) (P.chunks ~k:readers readonly))
      ((producer :: wb_funcs) @ ro_funcs)
  in
  ( mk_info "vips" ~model:"GLib" ~cvs:true ~locks:true ~adhoc:true
      ~prelowered:true ~threads:(1 + consumers + readers),
    Arde.Lower.lower ~style:Arde.Lower.Realistic prog )

(* Generic builder for the native POSIX programs with ad-hoc sync: a mix
   of detectable flag groups, function-pointer groups, CV gates, locked
   flags and read-only flag groups. *)
let adhoc_program ~prefix ~flag_wb ~fptr_wb ~cv_wb ~locked_wb ~ro_flag
    ?(ro_sites = 3) ?(cv_consume = `Writeback) () =
  let data = prefix ^ "_data" and flag = prefix ^ "_flag" in
  let gate = prefix ^ "_gate" and cv = prefix ^ "_cv" and m = prefix ^ "_m" in
  let ml = prefix ^ "_ml" in
  let total = flag_wb + fptr_wb + cv_wb + locked_wb + ro_flag in
  let base_fptr = flag_wb in
  let base_cv = base_fptr + fptr_wb in
  let base_locked = base_cv + cv_wb in
  let base_ro = base_locked + locked_wb in
  let produce =
    List.concat_map
      (fun gidx ->
        if gidx < base_fptr then P.produce_flag ~data ~flag gidx
        else if gidx < base_cv then P.produce_flag ~data ~flag gidx
        else if gidx < base_locked then P.produce_cv_gate ~data ~gate ~cv ~m gidx
        else if gidx < base_ro then P.produce_locked_flag ~data ~flag ~m:ml gidx
        else P.produce_flag ~data ~flag gidx)
      (List.init total Fun.id)
  in
  let producer = func "producer" [ blk "entry" produce exit_t ] in
  let range lo len = List.init len (fun i -> lo + i) in
  let flag2 = prefix ^ "_flag2" and gate2 = prefix ^ "_gate2" in
  let cv2 = prefix ^ "_cv2" in
  let funcs = ref [] and workers = ref [] in
  let add_consumers ?epilogue ~name ~k ~consume ~gate_blocks gs =
    List.iteri
      (fun i chunk ->
        let fname = Printf.sprintf "%s%d" name i in
        funcs :=
          P.consumer ?epilogue ~fname ~data ~consume ~gate_blocks chunk
          :: !funcs;
        workers := (fname, []) :: !workers)
      (P.chunks ~k (List.length gs) |> List.map (List.map (List.nth gs)))
  in
  (* Writeback groups are consumed by two threads in a chain: consumer A
     mutates the cell and then gates consumer B through the same idiom.
     Under the long-running state machine a lone consumer's first offence
     merely arms the cell, so the second, equally-(in)visible hop is what
     produces the reports — just like real shared cells, which are touched
     by several threads in sequence. *)
  if flag_wb > 0 then begin
    add_consumers ~name:"fwa" ~k:2 ~consume:`Writeback
      ~gate_blocks:(P.flag_gate ~flag ~window:2)
      ~epilogue:(fun gidx -> [ store (gi flag2 (imm gidx)) (imm 1) ])
      (range 0 flag_wb);
    add_consumers ~name:"fwb" ~k:2 ~consume:`Writeback
      ~gate_blocks:(P.flag_gate ~flag:flag2 ~window:2) (range 0 flag_wb)
  end;
  if fptr_wb > 0 then begin
    add_consumers ~name:"fpa" ~k:1 ~consume:`Writeback
      ~gate_blocks:(P.fptr_gate ~fptr_slot:0)
      ~epilogue:(fun gidx -> [ store (gi flag2 (imm gidx)) (imm 1) ])
      (range base_fptr fptr_wb);
    add_consumers ~name:"fpb" ~k:1 ~consume:`Writeback
      ~gate_blocks:(P.fptr_gate ~fptr_slot:1) (range base_fptr fptr_wb)
  end;
  if cv_wb > 0 then begin
    add_consumers ~name:"cga" ~k:1 ~consume:cv_consume
      ~gate_blocks:(P.cv_gate ~gate ~cv ~m)
      ~epilogue:(fun gidx ->
        [
          lock (g m);
          store (gi gate2 (imm gidx)) (imm 1);
          unlock (g m);
          broadcast (gi cv2 (imm gidx));
        ])
      (range base_cv cv_wb);
    add_consumers ~name:"cgb" ~k:1 ~consume:cv_consume
      ~gate_blocks:(P.cv_gate ~gate:gate2 ~cv:cv2 ~m) (range base_cv cv_wb)
  end;
  if locked_wb > 0 then begin
    add_consumers ~name:"lfa" ~k:1 ~consume:`Writeback
      ~gate_blocks:(P.locked_flag_gate ~flag ~m:ml)
      ~epilogue:(fun gidx ->
        [ lock (g ml); store (gi flag2 (imm gidx)) (imm 1); unlock (g ml) ])
      (range base_locked locked_wb);
    add_consumers ~name:"lfb" ~k:1 ~consume:`Writeback
      ~gate_blocks:(P.locked_flag_gate ~flag:flag2 ~m:ml)
      (range base_locked locked_wb)
  end;
  if ro_flag > 0 then
    add_consumers ~name:"ro" ~k:3 ~consume:(`Readonly ro_sites)
      ~gate_blocks:(P.flag_gate ~flag ~window:2) (range base_ro ro_flag);
  let chk = Racey_base.check_helper flag in
  let chk2 = Racey_base.check_helper flag2 in
  let prog =
    Racey_base.harness
      ~globals:
        [
          global m (); global ml (); global data ~size:total ();
          global flag ~size:total (); global flag2 ~size:total ();
          global gate ~size:total (); global gate2 ~size:total ();
          global cv ~size:total (); global cv2 ~size:total ();
        ]
      ~func_table:
        [ Racey_base.check_helper_name flag; Racey_base.check_helper_name flag2 ]
      ~workers:(("producer", []) :: List.rev !workers)
      (producer :: chk :: chk2 :: List.rev !funcs)
  in
  (prog, 1 + List.length !workers)

let bodytrack () =
  let prog, threads =
    adhoc_program ~prefix:"bt" ~flag_wb:13 ~fptr_wb:1 ~cv_wb:14 ~locked_wb:0
      ~ro_flag:0 ()
  in
  ( mk_info "bodytrack" ~model:"POSIX" ~cvs:true ~locks:true ~adhoc:true
      ~style:Arde.Lower.Futex ~threads,
    prog )

let facesim () =
  let prog, threads =
    adhoc_program ~prefix:"fs" ~flag_wb:49 ~fptr_wb:0 ~cv_wb:2 ~locked_wb:0
      ~ro_flag:400 ()
  in
  ( mk_info "facesim" ~model:"POSIX" ~cvs:true ~locks:true ~adhoc:true ~threads,
    prog )

let ferret () =
  let prog, threads =
    adhoc_program ~prefix:"fr" ~flag_wb:43 ~fptr_wb:1 ~cv_wb:22 ~locked_wb:0
      ~ro_flag:25 ()
  in
  ( mk_info "ferret" ~model:"POSIX" ~cvs:true ~locks:true ~adhoc:true
      ~style:Arde.Lower.Futex ~threads,
    prog )

let x264 () =
  let prog, threads =
    adhoc_program ~prefix:"x2" ~flag_wb:495 ~fptr_wb:9 ~cv_wb:5 ~locked_wb:0
      ~ro_flag:0 ()
  in
  ( mk_info "x264" ~model:"POSIX" ~cvs:true ~locks:true ~adhoc:true
      ~style:Arde.Lower.Futex ~threads,
    prog )

let dedup () =
  let prog, threads =
    adhoc_program ~prefix:"dd" ~flag_wb:0 ~fptr_wb:0 ~cv_wb:1 ~locked_wb:505
      ~ro_flag:0 ()
  in
  ( mk_info "dedup" ~model:"POSIX" ~cvs:true ~locks:true ~adhoc:true
      ~style:Arde.Lower.Futex ~threads,
    prog )

(* Custom spin barrier (user code) orders almost everything; one blind
   write goes through a native CV gate. *)
let streamcluster () =
  let wb = 2 and ro = 334 in
  let total = wb + ro in
  (* Custom barrier: an arrival counter plus a generation word, in user
     code — a detectable ad-hoc construct. *)
  let custom_barrier_wait tag participants =
    [
      blk (tag ^ "_t")
        [
          load (tag ^ "_g") (g "sc_gen");
          rmw Rmw_add (tag ^ "_o") (g "sc_cnt") (imm 1);
          addi (tag ^ "_n") (r (tag ^ "_o")) (imm 1);
          cmp Eq (tag ^ "_last") (r (tag ^ "_n")) (imm participants);
        ]
        (br (r (tag ^ "_last")) (tag ^ "_rel") (tag ^ "_sp"));
      blk (tag ^ "_rel")
        [
          store (g "sc_cnt") (imm 0);
          rmw Rmw_add (tag ^ "_go") (g "sc_gen") (imm 1);
        ]
        (goto (tag ^ "_done"));
      blk (tag ^ "_sp")
        [ load (tag ^ "_g2") (g "sc_gen");
          cmp Ne (tag ^ "_moved") (r (tag ^ "_g2")) (r (tag ^ "_g")) ]
        (br (r (tag ^ "_moved")) (tag ^ "_done") (tag ^ "_sp"));
      blk (tag ^ "_done") [] (goto (tag ^ "_next"));
    ]
  in
  let readers = 3 in
  (* barrier waiters: producer, the readers, and writeback consumer "a"
     ("b" is handed its groups through a flag chain) *)
  let participants = 1 + readers + 1 in
  let produce =
    store (g "sc_status") (imm 7)
    :: List.concat_map
         (fun gidx -> [ store (gi "sc_data" (imm gidx)) (imm (gidx + 1)) ])
         (List.init total Fun.id)
    @ [
        (* one blind write handed over through a native CV gate *)
        lock (g "sc_m");
        store (g "sc_gate") (imm 1);
        unlock (g "sc_m");
        signal (g "sc_cv");
        (* second status write: gives the blind consumer's store a fresh
           conflicting access to offend against *)
        store (g "sc_status") (imm 8);
      ]
  in
  let producer =
    func "producer"
      (blk "entry" produce (goto "bar_t")
      :: (custom_barrier_wait "bar" participants
         |> List.map (fun b -> if b.lbl = "bar_done" then { b with term = goto "fin" } else b))
      @ [ blk "fin" [] exit_t ])
  in
  let reader i gs =
    P.consumer ~fname:(Printf.sprintf "ro%d" i) ~data:"sc_data"
      ~consume:(`Readonly 4)
      ~gate_blocks:(fun ~tag gidx ->
        if gidx = List.hd gs then
          custom_barrier_wait tag participants
          |> List.map (fun b ->
                 if b.lbl = tag ^ "_done" then { b with term = goto (tag ^ "_wrk") }
                 else b)
        else [ blk (tag ^ "_t") [] (goto (tag ^ "_wrk")) ])
      gs
  in
  let ro_chunks = P.chunks ~k:readers ro in
  let ro_funcs = List.mapi (fun i gs -> reader i (List.map (fun x -> x + wb) gs)) ro_chunks in
  (* the two write-back groups go through the custom barrier as well *)
  let wb_consumer side =
    if side = "a" then
      P.consumer ~fname:"wb0a" ~data:"sc_data" ~consume:`Writeback
        ~epilogue:(fun gidx -> [ store (gi "sc_hand" (imm gidx)) (imm 1) ])
        ~gate_blocks:(fun ~tag gidx ->
          if gidx = 0 then
            custom_barrier_wait tag participants
            |> List.map (fun b ->
                   if b.lbl = tag ^ "_done" then
                     { b with term = goto (tag ^ "_wrk") }
                   else b)
          else [ blk (tag ^ "_t") [] (goto (tag ^ "_wrk")) ])
        (List.init wb Fun.id)
    else
      P.consumer ~fname:"wb0b" ~data:"sc_data" ~consume:`Writeback
        ~gate_blocks:(P.flag_gate ~flag:"sc_hand" ~window:2)
        (List.init wb Fun.id)
  in
  let blind_consumer =
    (* waits on the CV gate, then blindly overwrites a status word *)
    func "blind"
      [
        blk "entry" [ lock (g "sc_m"); load "f" (g "sc_gate") ]
          (br (r "f") "go" "sl");
        blk "sl" [ wait (g "sc_cv") (g "sc_m") ] (goto "go");
        blk "go" [ unlock (g "sc_m"); store (g "sc_status") (imm 1) ] exit_t;
      ]
  in

  let prog =
    Racey_base.harness
      ~globals:
        [
          global "sc_cnt" (); global "sc_gen" (); global "sc_m" ();
          global "sc_cv" (); global "sc_gate" (); global "sc_status" ();
          global "sc_data" ~size:total (); global "sc_bar" ();
          global "sc_hand" ~size:total ();
        ]
      ~before:[ barrier_init (g "sc_bar") (imm 1) ]
      ~workers:
        (("producer", []) :: ("wb0a", []) :: ("wb0b", []) :: ("blind", [])
        :: List.mapi (fun i _ -> (Printf.sprintf "ro%d" i, [])) ro_chunks)
      (producer :: wb_consumer "a" :: wb_consumer "b" :: blind_consumer
      :: ro_funcs)
  in
  ( mk_info "streamcluster" ~model:"POSIX" ~cvs:true ~locks:true ~barriers:true
      ~adhoc:true ~style:Arde.Lower.Futex ~threads:(3 + readers),
    prog )

(* A home-grown threading library (unknown to the detector): CV gates,
   pre-lowered. *)
let raytrace () =
  let writeback = 40 and readonly = 300 in
  let total = writeback + readonly in
  let consumers = 2 and readers = 3 in
  let produce =
    List.concat_map
      (P.produce_cv_gate ~data:"rt_data" ~gate:"rt_gate" ~cv:"rt_cv" ~m:"rt_m")
      (List.init total Fun.id)
  in
  let producer = func "producer" [ blk "entry" produce exit_t ] in
  let gate = P.cv_gate ~gate:"rt_gate" ~cv:"rt_cv" ~m:"rt_m" in
  let wb_funcs =
    List.mapi
      (fun i gs ->
        P.consumer ~fname:(Printf.sprintf "wba%d" i) ~data:"rt_data"
          ~consume:`Writeback ~gate_blocks:gate
          ~epilogue:(fun gidx -> [ store (gi "rt_hand" (imm gidx)) (imm 1) ])
          gs)
      (P.chunks ~k:consumers writeback)
    @ List.mapi
        (fun i gs ->
          P.consumer ~fname:(Printf.sprintf "wbb%d" i) ~data:"rt_data"
            ~consume:`Writeback
            ~gate_blocks:(P.flag_gate ~flag:"rt_hand" ~window:2)
            gs)
        (P.chunks ~k:consumers writeback)
  in
  let ro_funcs =
    List.mapi
      (fun i gs ->
        P.consumer ~fname:(Printf.sprintf "ro%d" i) ~data:"rt_data"
          ~consume:(`Readonly 4) ~gate_blocks:gate
          (List.map (fun g -> g + writeback) gs))
      (P.chunks ~k:readers readonly)
  in
  let prog =
    Racey_base.harness
      ~globals:
        [
          global "rt_m" (); global "rt_data" ~size:total ();
          global "rt_gate" ~size:total (); global "rt_cv" ~size:total ();
          global "rt_hand" ~size:total ();
        ]
      ~workers:
        (("producer", [])
        :: List.concat_map
             (fun side ->
               List.mapi
                 (fun i _ -> (Printf.sprintf "wb%s%d" side i, []))
                 (P.chunks ~k:consumers writeback))
             [ "a"; "b" ]
        @ List.mapi (fun i _ -> (Printf.sprintf "ro%d" i, [])) (P.chunks ~k:readers readonly))
      ((producer :: wb_funcs) @ ro_funcs)
  in
  ( mk_info "raytrace" ~model:"POSIX" ~cvs:true ~locks:true ~adhoc:true
      ~prelowered:true ~threads:(1 + consumers + readers),
    Arde.Lower.lower ~style:Arde.Lower.Realistic prog )

(* ------------------------------------------------------------------ *)

let without_adhoc () =
  [ blackscholes (); swaptions (); fluidanimate (); canneal (); freqmine () ]

let with_adhoc () =
  [
    vips (); bodytrack (); facesim (); ferret (); x264 (); dedup ();
    streamcluster (); raytrace ();
  ]

let all () = without_adhoc () @ with_adhoc ()

let find name =
  List.find_opt (fun (i, _) -> i.pname = name) (all ())

let loc_of (p : program) =
  List.fold_left
    (fun acc f ->
      List.fold_left (fun acc b -> acc + List.length b.ins + 1) acc f.blocks)
    0 p.funcs
