type key = string * int

module S = Set.Make (struct
  type t = key

  let compare (a : key) (b : key) = compare a b
end)

type t = Top | Set of S.t

let top = Top
let of_list l = Set (S.of_list l)

let inter a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Set x, Set y -> Set (S.inter x y)

let is_empty = function Top -> false | Set s -> S.is_empty s
let is_top = function Top -> true | Set _ -> false
let mem k = function Top -> true | Set s -> S.mem k s
let to_list = function Top -> None | Set s -> Some (S.elements s)

let pp ppf = function
  | Top -> Format.pp_print_string ppf "{*}"
  | Set s ->
      Format.fprintf ppf "{%s}"
        (String.concat ", "
           (List.map (fun (b, i) -> Printf.sprintf "%s[%d]" b i) (S.elements s)))

module Held = struct
  type h = (int, S.t) Hashtbl.t

  let create () : h = Hashtbl.create 8

  let acquire h tid k =
    let cur = Option.value ~default:S.empty (Hashtbl.find_opt h tid) in
    Hashtbl.replace h tid (S.add k cur)

  let release h tid k =
    let cur = Option.value ~default:S.empty (Hashtbl.find_opt h tid) in
    Hashtbl.replace h tid (S.remove k cur)

  let current h tid =
    Set (Option.value ~default:S.empty (Hashtbl.find_opt h tid))
end
