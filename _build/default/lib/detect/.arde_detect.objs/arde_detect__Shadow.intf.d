lib/detect/shadow.mli: Arde_tir Arde_vclock Lockset Msm
