lib/detect/engine.mli: Arde_cfg Arde_runtime Config Report
