lib/detect/driver.mli: Arde_runtime Arde_tir Config Cv_checker Msm Report
