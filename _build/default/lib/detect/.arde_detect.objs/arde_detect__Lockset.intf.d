lib/detect/lockset.mli: Format
