lib/detect/report.ml: Arde_tir Format Hashtbl List String
