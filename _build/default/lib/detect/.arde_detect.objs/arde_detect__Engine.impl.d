lib/detect/engine.ml: Arde_cfg Arde_runtime Arde_tir Arde_vclock Array Config Hashtbl List Lockset Msm Option Report Shadow
