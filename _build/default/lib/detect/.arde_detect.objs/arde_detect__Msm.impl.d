lib/detect/msm.ml: Format
