lib/detect/driver.ml: Arde_cfg Arde_runtime Arde_tir Config Cv_checker Engine List Msm Report String
