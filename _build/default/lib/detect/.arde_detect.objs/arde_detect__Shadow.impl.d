lib/detect/shadow.ml: Arde_tir Arde_vclock Hashtbl List Lockset Msm
