lib/detect/report.mli: Arde_tir Format
