lib/detect/lockset.ml: Format Hashtbl List Option Printf Set String
