lib/detect/cv_checker.mli: Arde_runtime Arde_tir Format
