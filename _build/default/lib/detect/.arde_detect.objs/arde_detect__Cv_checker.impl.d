lib/detect/cv_checker.ml: Arde_cfg Arde_runtime Arde_tir Format Hashtbl List
