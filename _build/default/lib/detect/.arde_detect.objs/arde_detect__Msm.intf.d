lib/detect/msm.mli: Format
