lib/detect/config.mli: Msm
