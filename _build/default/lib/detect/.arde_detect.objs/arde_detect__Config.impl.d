lib/detect/config.ml: Msm Printf Result String
