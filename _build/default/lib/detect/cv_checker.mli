(** Condition-variable bug-pattern checkers.

    Helgrind+ (the detector the paper builds on) ships two automatic
    condition-variable analyses, both reproduced here:

    - {b lost-signal detection} (dynamic): a signal that fires with no
      thread waiting is provisionally lost; if a thread later blocks on
      the same condition variable and never returns from its wait, the
      pairing is reported.
    - {b spurious-wakeup hazard} (static): a [cond_wait] whose block is
      not inside any loop cannot re-check its predicate after waking, so
      a spurious wakeup (or a stale signal) sails straight through.

    The dynamic checker is an event observer, independent of the race
    engine; compose the two with {!Arde_runtime.Trace.tee}. *)

open Arde_tir.Types

type diagnostic =
  | Lost_signal of {
      cv : string * int;
      signal_loc : loc; (* the signal that had no waiter *)
      wait_loc : loc; (* the wait that never returned *)
      wait_tid : int;
    }
  | Unsafe_wait of { wait_loc : loc }
      (* static: wait without a predicate re-check loop *)

type t

val create : unit -> t
val observer : t -> Arde_runtime.Event.t -> unit

val finalize : t -> diagnostic list
(** Dynamic diagnostics once the run is over (waits still pending are the
    lost ones). *)

val static_check : program -> diagnostic list
(** The spurious-wakeup hazard scan. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
