open Arde_tir.Types

type race = {
  r_base : string;
  r_idx : int;
  r_first_tid : int;
  r_first_loc : loc;
  r_first_write : bool;
  r_second_tid : int;
  r_second_loc : loc;
  r_second_write : bool;
}

type context = string * loc * loc (* base + ordered loc pair *)

type t = {
  cap : int;
  seen : (context, unit) Hashtbl.t;
  mutable rev_races : race list;
  mutable n : int;
  mutable hit_cap : bool;
}

let create ?(cap = 1000) () =
  { cap; seen = Hashtbl.create 32; rev_races = []; n = 0; hit_cap = false }

let context_of r =
  let a = r.r_first_loc and b = r.r_second_loc in
  if compare_loc a b <= 0 then (r.r_base, a, b) else (r.r_base, b, a)

let add t r =
  let ctx = context_of r in
  if not (Hashtbl.mem t.seen ctx) then begin
    if t.n >= t.cap then t.hit_cap <- true
    else begin
      Hashtbl.replace t.seen ctx ();
      t.rev_races <- r :: t.rev_races;
      t.n <- t.n + 1
    end
  end

let races t = List.rev t.rev_races
let n_contexts t = t.n
let capped t = t.hit_cap

let racy_bases t =
  List.sort_uniq String.compare (List.map (fun r -> r.r_base) (races t))

let merge_into dst src = List.iter (add dst) (races src)

let kind w = if w then "write" else "read"

let pp_race ppf r =
  Format.fprintf ppf "race on %s[%d]: T%d %s at %a vs T%d %s at %a" r.r_base
    r.r_idx r.r_first_tid (kind r.r_first_write) Arde_tir.Pretty.loc
    r.r_first_loc r.r_second_tid (kind r.r_second_write) Arde_tir.Pretty.loc
    r.r_second_loc

let pp ppf t =
  Format.fprintf ppf "@[<v>%d racy context(s)%s@," t.n
    (if t.hit_cap then " (capped)" else "");
  List.iter (fun r -> Format.fprintf ppf "  %a@," pp_race r) (races t);
  Format.fprintf ppf "@]"
