(** Shadow memory: one cell of detector state per accessed memory cell.

    This is the "shadow cell in which the race detector stores additional
    information" of the paper's instrumentation description; its footprint
    is what the memory-consumption figure measures. *)

open Arde_tir.Types
module Vc = Arde_vclock.Vector_clock

type access = {
  a_tid : int;
  a_clk : int; (* the accessor's own clock component at the access *)
  a_loc : loc;
  a_write : bool;
  a_atomic : bool;
}

type cell = {
  mutable state : Msm.state;
  mutable lockset : Lockset.t;
  mutable last_write : access option;
  mutable write_vc : Vc.t; (* writer's full clock at the last write *)
  mutable reads : access list; (* latest read per thread since last write *)
  mutable atomic_vc : Vc.t; (* accumulated release clock of atomic ops *)
  mutable primed : bool; (* long-running sensitivity armed *)
}

type t

val create : unit -> t
val cell : t -> string * int -> cell
(** Find or allocate. *)

val find : t -> string * int -> cell option
val n_cells : t -> int
val size_words : t -> int
(** Approximate heap words held by all cells (memory experiment). *)

val record_read : cell -> access -> unit
(** Replace the accessor's previous read entry, keep others. *)
