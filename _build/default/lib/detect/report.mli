(** Race warnings and racy-context accounting.

    The paper's PARSEC metric is "racy contexts": distinct program contexts
    a warning is issued for, capped at 1000 per run.  We define a context
    as the unordered pair of code locations of the two conflicting accesses
    together with the global base they touch — stable across seeds, which
    is what lets multi-seed averages mirror the paper's fractional
    values. *)

open Arde_tir.Types

type race = {
  r_base : string;
  r_idx : int;
  r_first_tid : int;
  r_first_loc : loc;
  r_first_write : bool;
  r_second_tid : int;
  r_second_loc : loc;
  r_second_write : bool;
}

type t

val create : ?cap:int -> unit -> t
(** [cap] bounds the number of distinct contexts recorded (default
    1000). *)

val add : t -> race -> unit
val races : t -> race list
(** One representative per distinct context, in first-seen order. *)

val n_contexts : t -> int
val capped : t -> bool
val racy_bases : t -> string list
(** Sorted, deduplicated bases appearing in any warning. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src]'s representatives into [dst]. *)

val pp : Format.formatter -> t -> unit
val pp_race : Format.formatter -> race -> unit
