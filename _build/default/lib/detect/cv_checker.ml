open Arde_tir.Types
module Event = Arde_runtime.Event

type diagnostic =
  | Lost_signal of {
      cv : string * int;
      signal_loc : loc;
      wait_loc : loc;
      wait_tid : int;
    }
  | Unsafe_wait of { wait_loc : loc }

type cv_state = {
  mutable void_signal : loc option; (* latest signal that found no waiter *)
  mutable pending : (int * loc) list; (* waits begun and not yet returned *)
}

type t = { cvs : (string * int, cv_state) Hashtbl.t }

let create () = { cvs = Hashtbl.create 8 }

let state t key =
  match Hashtbl.find_opt t.cvs key with
  | Some s -> s
  | None ->
      let s = { void_signal = None; pending = [] } in
      Hashtbl.replace t.cvs key s;
      s

let observer t (ev : Event.t) =
  match ev with
  | Event.Cv_signal { base; idx; loc; had_waiter; _ } ->
      let s = state t (base, idx) in
      if not had_waiter then s.void_signal <- Some loc
  | Event.Cv_wait_begin { tid; base; idx; loc } ->
      let s = state t (base, idx) in
      s.pending <- (tid, loc) :: s.pending
  | Event.Cv_wait_return { tid; base; idx; _ } ->
      let s = state t (base, idx) in
      s.pending <- List.filter (fun (w, _) -> w <> tid) s.pending
  | _ -> ()

let finalize t =
  Hashtbl.fold
    (fun key s acc ->
      match s.void_signal with
      | Some signal_loc ->
          List.fold_left
            (fun acc (wait_tid, wait_loc) ->
              Lost_signal { cv = key; signal_loc; wait_loc; wait_tid } :: acc)
            acc s.pending
      | None -> acc)
    t.cvs []

(* Static: a cond_wait outside every natural loop of its function cannot
   re-check the predicate after waking. *)
let static_check (p : program) =
  List.concat_map
    (fun f ->
      let gr = Arde_cfg.Graph.of_func f in
      let dom = Arde_cfg.Dominators.compute gr in
      let loops = Arde_cfg.Loops.find gr dom in
      let in_any_loop bi =
        List.exists (fun l -> Arde_cfg.Loops.mem l bi) loops
      in
      List.concat
        (List.mapi
           (fun bi b ->
             List.concat
               (List.mapi
                  (fun ii ins ->
                    match ins with
                    | Cond_wait _ when not (in_any_loop bi) ->
                        [
                          Unsafe_wait
                            {
                              wait_loc =
                                { lfunc = f.fname; lblk = b.lbl; lidx = ii };
                            };
                        ]
                    | _ -> [])
                  b.ins))
           f.blocks))
    p.funcs

let pp_diagnostic ppf = function
  | Lost_signal { cv = base, idx; signal_loc; wait_loc; wait_tid } ->
      Format.fprintf ppf
        "lost signal on %s[%d]: signal at %a found no waiter; T%d still \
         blocked in wait at %a"
        base idx Arde_tir.Pretty.loc signal_loc wait_tid Arde_tir.Pretty.loc
        wait_loc
  | Unsafe_wait { wait_loc } ->
      Format.fprintf ppf
        "wait at %a has no predicate re-check loop (spurious-wakeup hazard)"
        Arde_tir.Pretty.loc wait_loc
