(** Eraser-style locksets.

    A shared location's candidate lockset starts as "all locks" and is
    intersected with the accessing thread's currently-held set on every
    shared access; an empty candidate set means no lock consistently
    protects the location. *)

type key = string * int
(** A mutex identity: global base and element index. *)

type t
(** Either [Top] (all locks — the initial candidate set) or a finite set. *)

val top : t
val of_list : key list -> t
val inter : t -> t -> t
val is_empty : t -> bool
(** [Top] is not empty. *)

val is_top : t -> bool
val mem : key -> t -> bool
val to_list : t -> key list option
(** [None] for [Top]. *)

val pp : Format.formatter -> t -> unit

(** Mutable per-thread held-lock multiset (locks can be acquired in a
    nested fashion across distinct keys; re-acquisition of the same key is
    a machine fault, so plain sets suffice). *)
module Held : sig
  type h

  val create : unit -> h
  val acquire : h -> int -> key -> unit
  val release : h -> int -> key -> unit
  val current : h -> int -> t
  (** The held set of a thread as a lockset. *)
end
