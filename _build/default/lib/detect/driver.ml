open Arde_tir.Types
module Machine = Arde_runtime.Machine
module Sched = Arde_runtime.Sched

type options = {
  seeds : int list;
  policy : Sched.policy;
  fuel : int;
  sensitivity : Msm.sensitivity;
  cap : int;
  lower_style : Arde_tir.Lower.style;
  spurious_wakeups : bool;
  count_callee_blocks : bool; (* spin-window accounting ablation *)
}

let default_options =
  {
    seeds = [ 1; 2; 3; 4; 5 ];
    policy = Sched.Chunked 6;
    fuel = 2_000_000;
    sensitivity = Msm.Short_running;
    cap = 1000;
    lower_style = Arde_tir.Lower.Realistic;
    spurious_wakeups = false;
    count_callee_blocks = true;
  }

type seed_run = {
  sr_seed : int;
  sr_outcome : Machine.outcome;
  sr_steps : int;
  sr_contexts : int;
  sr_capped : bool;
  sr_spin_edges : int;
  sr_memory_words : int;
  sr_check_failures : (loc * string) list;
  sr_cv_diagnostics : Cv_checker.diagnostic list;
}

type result = {
  mode : Config.mode;
  merged : Report.t;
  runs : seed_run list;
  n_spin_loops : int;
  static_cv_hazards : Cv_checker.diagnostic list;
      (* spurious-wakeup-unsafe waits, found statically *)
}

let run ?(options = default_options) mode program =
  let program =
    if Config.needs_lowering mode then
      Arde_tir.Lower.lower ~style:options.lower_style program
    else program
  in
  let instrument =
    match Config.spin_k mode with
    | Some k ->
        Some
          (Arde_cfg.Instrument.analyze
             ~count_callees:options.count_callee_blocks ~k program)
    | None -> None
  in
  let cv_mutexes =
    List.sort_uniq String.compare
      (List.concat_map
         (fun f ->
           List.concat_map
             (fun b ->
               List.filter_map
                 (function
                   | Cond_wait (_, m) -> Some m.base
                   | _ -> None)
                 b.ins)
             f.blocks)
         program.funcs)
  in
  let inferred_locks =
    if Config.infer_locks mode then
      Arde_cfg.Lock_infer.inferred_locks (Arde_cfg.Lock_infer.analyze program)
    else []
  in
  let compiled = Machine.compile program in
  let merged = Report.create ~cap:max_int () in
  let detector_cfg =
    Config.make ~sensitivity:options.sensitivity ~cap:options.cap mode
  in
  let runs =
    List.map
      (fun seed ->
        let engine =
          Engine.create ~cv_mutexes ~inferred_locks detector_cfg ~instrument
        in
        let cv_checker = Cv_checker.create () in
        let mcfg =
          {
            Machine.policy = options.policy;
            seed;
            fuel = options.fuel;
            instrument;
            spurious_wakeups = options.spurious_wakeups;
            observer =
              Arde_runtime.Trace.tee (Engine.observer engine)
                (Cv_checker.observer cv_checker);
          }
        in
        let res = Machine.run mcfg compiled in
        let rep = Engine.report engine in
        Report.merge_into merged rep;
        {
          sr_seed = seed;
          sr_outcome = res.Machine.outcome;
          sr_steps = res.Machine.steps;
          sr_contexts = Report.n_contexts rep;
          sr_capped = Report.capped rep;
          sr_spin_edges = Engine.n_spin_edges engine;
          sr_memory_words = Engine.memory_words engine;
          sr_check_failures = res.Machine.check_failures;
          sr_cv_diagnostics = Cv_checker.finalize cv_checker;
        })
      options.seeds
  in
  let n_spin_loops =
    match instrument with
    | Some inst -> List.length (Arde_cfg.Instrument.spins inst)
    | None -> 0
  in
  {
    mode;
    merged;
    runs;
    n_spin_loops;
    static_cv_hazards = Cv_checker.static_check program;
  }

let mean_contexts r =
  match r.runs with
  | [] -> 0.
  | runs ->
      let total = List.fold_left (fun acc s -> acc + s.sr_contexts) 0 runs in
      float_of_int total /. float_of_int (List.length runs)

let racy_bases r = Report.racy_bases r.merged

let any_bad_outcome r =
  List.find_map
    (fun s ->
      match s.sr_outcome with
      | Machine.Finished -> None
      | o -> Some o)
    r.runs

(* ------------------------------------------------------------------ *)
(* Same-trace comparison                                              *)

let compare_on_trace ?(options = default_options) ~k program modes =
  List.iter
    (fun mode ->
      if Config.needs_lowering mode then
        invalid_arg
          "Driver.compare_on_trace: library-free modes run a different \
           (lowered) program and cannot share a trace")
    modes;
  let instrument = Some (Arde_cfg.Instrument.analyze ~k program) in
  let cv_mutexes =
    List.sort_uniq String.compare
      (List.concat_map
         (fun f ->
           List.concat_map
             (fun b ->
               List.filter_map
                 (function
                   | Cond_wait (_, m) -> Some m.base
                   | _ -> None)
                 b.ins)
             f.blocks)
         program.funcs)
  in
  let compiled = Machine.compile program in
  let engines =
    List.map
      (fun mode ->
        ( mode,
          Report.create ~cap:max_int () ))
      modes
  in
  List.iter
    (fun seed ->
      let trace = Arde_runtime.Trace.create () in
      let mcfg =
        {
          Machine.policy = options.policy;
          seed;
          fuel = options.fuel;
          instrument;
          spurious_wakeups = options.spurious_wakeups;
          observer = Arde_runtime.Trace.observer trace;
        }
      in
      ignore (Machine.run mcfg compiled);
      let events = Arde_runtime.Trace.events trace in
      List.iter
        (fun (mode, merged) ->
          let detector_cfg =
            Config.make ~sensitivity:options.sensitivity ~cap:options.cap mode
          in
          (* Spin-less engines must not see the loop metadata, or they
             would suppress marked bases like the spin-aware ones. *)
          let mode_instrument =
            if Config.spin_k mode <> None then instrument else None
          in
          let engine =
            Engine.create ~cv_mutexes detector_cfg ~instrument:mode_instrument
          in
          List.iter (Engine.observer engine) events;
          Report.merge_into merged (Engine.report engine))
        engines)
    options.seeds;
  engines
