(** End-to-end detector runs: program + mode + seeds → merged report.

    For each seed the driver (1) picks the program form — lowered for
    [Nolib_spin], as written otherwise; (2) runs the instrumentation phase
    when the mode has a spin window; (3) executes the machine with the
    engine attached as observer; (4) merges reports across seeds (a
    dynamic detector's findings accumulate over runs) and averages the
    per-run racy-context counts (the paper's PARSEC metric). *)

open Arde_tir.Types

type options = {
  seeds : int list;
  policy : Arde_runtime.Sched.policy;
  fuel : int;
  sensitivity : Msm.sensitivity;
  cap : int;
  lower_style : Arde_tir.Lower.style;
  spurious_wakeups : bool;
  count_callee_blocks : bool;
      (* count condition-helper callee blocks toward the spin window (the
         paper's accounting); false is the ablation *)
}

val default_options : options
(** Seeds 1–5, [Chunked 6], 2M fuel, short-running, cap 1000, realistic
    lowering, no spurious wakeups. *)

type seed_run = {
  sr_seed : int;
  sr_outcome : Arde_runtime.Machine.outcome;
  sr_steps : int;
  sr_contexts : int;
  sr_capped : bool;
  sr_spin_edges : int;
  sr_memory_words : int;
  sr_check_failures : (loc * string) list;
  sr_cv_diagnostics : Cv_checker.diagnostic list;
      (* lost signals observed in this run *)
}

type result = {
  mode : Config.mode;
  merged : Report.t; (* union of warnings over all seeds *)
  runs : seed_run list;
  n_spin_loops : int; (* accepted by the instrumentation phase *)
  static_cv_hazards : Cv_checker.diagnostic list;
      (* waits without a predicate re-check loop *)
}

val run : ?options:options -> Config.mode -> program -> result

val mean_contexts : result -> float
(** Average distinct racy contexts per seed — the paper's table entry. *)

val racy_bases : result -> string list
val any_bad_outcome : result -> Arde_runtime.Machine.outcome option
(** First non-[Finished] outcome across seeds, if any. *)

val compare_on_trace :
  ?options:options ->
  k:int ->
  program ->
  Config.mode list ->
  (Config.mode * Report.t) list
(** Record one event trace per seed (with spin instrumentation active) and
    replay the {e identical} trace through an engine per mode, isolating
    the algorithmic differences between detectors from schedule variance.
    Modes that require lowering run a different program and are rejected.

    @raise Invalid_argument on a [needs_lowering] mode. *)
