open Arde_tir.Types
module Vc = Arde_vclock.Vector_clock

type access = {
  a_tid : int;
  a_clk : int;
  a_loc : loc;
  a_write : bool;
  a_atomic : bool;
}

type cell = {
  mutable state : Msm.state;
  mutable lockset : Lockset.t;
  mutable last_write : access option;
  mutable write_vc : Vc.t;
  mutable reads : access list;
  mutable atomic_vc : Vc.t;
  mutable primed : bool;
}

type t = (string * int, cell) Hashtbl.t

let create () : t = Hashtbl.create 256

let fresh () =
  {
    state = Msm.Virgin;
    lockset = Lockset.top;
    last_write = None;
    write_vc = Vc.bottom;
    reads = [];
    atomic_vc = Vc.bottom;
    primed = false;
  }

let cell t key =
  match Hashtbl.find_opt t key with
  | Some c -> c
  | None ->
      let c = fresh () in
      Hashtbl.replace t key c;
      c

let find t key = Hashtbl.find_opt t key
let n_cells t = Hashtbl.length t

let size_words t =
  Hashtbl.fold
    (fun _ c acc ->
      acc + 10 (* the record and access option *)
      + Vc.size_words c.write_vc + Vc.size_words c.atomic_vc
      + (6 * List.length c.reads))
    t 0

let record_read c a =
  c.reads <- a :: List.filter (fun r -> r.a_tid <> a.a_tid) c.reads
