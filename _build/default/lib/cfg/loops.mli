(** Natural-loop detection.

    A back edge [u -> h] (where [h] dominates [u]) defines the natural loop
    of all blocks that can reach [u] without passing through [h], plus [h].
    Loops sharing a header are merged, matching the classic definition used
    by binary-level loop finders. *)

type loop = {
  header : int;
  body : int list; (* sorted block indices, header included *)
  back_edge_sources : int list;
}

val find : Graph.t -> Dominators.t -> loop list
(** Loops sorted by header index.  Only reachable blocks participate. *)

val exit_blocks : Graph.t -> loop -> int list
(** Blocks inside the loop with a successor (or a [Ret]/[Exit] terminator)
    outside the loop. *)

val mem : loop -> int -> bool
