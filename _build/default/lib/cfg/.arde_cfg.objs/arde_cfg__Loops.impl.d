lib/cfg/loops.ml: Arde_tir Array Dominators Graph Hashtbl Int List Set
