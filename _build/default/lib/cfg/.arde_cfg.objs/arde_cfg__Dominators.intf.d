lib/cfg/dominators.mli: Graph
