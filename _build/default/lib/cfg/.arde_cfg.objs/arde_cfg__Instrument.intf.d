lib/cfg/instrument.mli: Arde_tir Format Spin
