lib/cfg/dominators.ml: Array Graph List
