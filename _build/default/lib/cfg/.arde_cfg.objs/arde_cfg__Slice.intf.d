lib/cfg/slice.mli: Arde_tir Graph Loops
