lib/cfg/loops.mli: Dominators Graph
