lib/cfg/graph.mli: Arde_tir
