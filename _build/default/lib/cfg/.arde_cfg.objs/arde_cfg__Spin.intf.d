lib/cfg/spin.mli: Arde_tir Graph Loops Slice
