lib/cfg/lock_infer.ml: Arde_tir Format List Set String
