lib/cfg/lock_infer.mli: Arde_tir Format
