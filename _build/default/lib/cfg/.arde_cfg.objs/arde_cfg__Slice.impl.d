lib/cfg/slice.ml: Arde_tir Array Graph Hashtbl List Loops Set String
