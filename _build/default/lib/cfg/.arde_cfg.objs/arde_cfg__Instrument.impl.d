lib/cfg/instrument.ml: Arde_tir Dominators Format Graph Hashtbl List Loops Option Slice Spin String
