lib/cfg/spin.ml: Arde_tir Graph List Loops Printf Slice
