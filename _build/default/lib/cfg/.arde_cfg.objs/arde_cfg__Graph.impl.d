lib/cfg/graph.ml: Arde_tir Array Hashtbl List Printf
