(** Whole-program spin instrumentation metadata.

    [analyze ~k p] runs the instrumentation phase over every function of
    [p]: builds CFGs, finds natural loops, classifies each with
    {!Spin.classify}, and packages the accepted loops into the lookup
    structures the runtime needs on its hot path:

    - is this (function, label) the header of a marked loop?
    - is this (function, label) inside a given marked loop's body?
    - is this load site a marked condition load, and of which loops?
    - is this global base a synchronization variable (so the detector
      suppresses "synchronization races" on it, per the paper)? *)

open Arde_tir.Types

type spin = { s_id : int; s_cand : Spin.candidate }

type t

val analyze : ?count_callees:bool -> k:int -> program -> t
(** [count_callees] is the window-accounting ablation knob; see
    {!Spin.classify}. *)

val k : t -> int
val spins : t -> spin list
val rejected : t -> (Spin.candidate * Spin.rejection) list

val header_at : t -> fname:string -> lbl:label -> int option
(** Spin-loop id whose header is this block, if any. *)

val in_loop : t -> fname:string -> lbl:label -> int -> bool
(** Is the block part of loop [id]'s body? *)

val marked_loops_at : t -> loc -> int list
(** Ids of loops for which this load site is a condition load. *)

val is_sync_base : t -> string -> bool
(** Is the base a condition variable of some accepted spin loop? *)

val find_spin : t -> int -> spin

val pp_summary : Format.formatter -> t -> unit
(** Human-readable listing of accepted and rejected loops (CLI
    [spin-report]). *)
