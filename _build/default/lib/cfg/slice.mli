(** Backward data slices of loop-exit conditions.

    The spin classifier needs to know, for a candidate loop, which memory
    loads feed the value(s) its exit branches test — including loads inside
    directly-called condition helpers (the paper's "loop conditions use
    templates and complex function calls").  This module computes that
    slice with a register-level fixpoint, recursing into direct callees
    whose return value participates.  Indirect calls and recursion make a
    slice opaque: the static analysis gives up on them, which is exactly
    the failure mode the paper reports for function-pointer conditions. *)

open Arde_tir.Types

type callee_summary = {
  cs_blocks : int; (* callee blocks counted toward the spin window *)
  cs_loads : loc list; (* loads feeding the callee's return value *)
  cs_bases : string list;
  cs_stores : string list; (* all bases stored by the callee (transitively) *)
  cs_opaque : bool;
}

type ctx
(** Memoizing analysis context over one program. *)

val make_ctx : program -> ctx
val callee_summary : ctx -> string -> callee_summary

type cond_slice = {
  loads : loc list; (* condition load sites, in-loop and in-callee *)
  bases : string list; (* bases those loads read *)
  callee_blocks : int; (* extra window contributed by condition callees *)
  callees : string list;
  opaque : bool;
  store_bases : string list;
      (* bases stored anywhere in the loop body or by its direct callees *)
}

val of_loop : ctx -> Graph.t -> Loops.loop -> cond_slice
