open Arde_tir.Types

type t = {
  func : func;
  blocks : block array;
  succs : int list array;
  preds : int list array;
}

let targets = function
  | Goto l -> [ l ]
  | Br (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Ret _ | Exit -> []

let of_func (f : func) =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let tbl = Hashtbl.create n in
  Array.iteri (fun i b -> Hashtbl.replace tbl b.lbl i) blocks;
  let index l =
    match Hashtbl.find_opt tbl l with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Cfg.Graph: unknown label %S in %s" l f.fname)
  in
  let succs = Array.map (fun b -> List.map index (targets b.term)) blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    succs;
  { func = f; blocks; succs; preds }

let index_of t l =
  let n = Array.length t.blocks in
  let rec go i =
    if i >= n then invalid_arg ("Cfg.Graph.index_of: " ^ l)
    else if t.blocks.(i).lbl = l then i
    else go (i + 1)
  in
  go 0

let label_of t i = t.blocks.(i).lbl
let n_blocks t = Array.length t.blocks

let reachable t =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then (
      seen.(i) <- true;
      List.iter dfs t.succs.(i))
  in
  if n > 0 then dfs 0;
  seen
