type t = { idoms : int array; rpo_index : int array }

(* Reverse postorder over reachable blocks. *)
let rev_postorder (g : Graph.t) =
  let n = Graph.n_blocks g in
  let seen = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not seen.(i) then (
      seen.(i) <- true;
      List.iter dfs g.succs.(i);
      order := i :: !order)
  in
  if n > 0 then dfs 0;
  !order

let compute (g : Graph.t) =
  let n = Graph.n_blocks g in
  let idoms = Array.make n (-1) in
  let rpo = rev_postorder g in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun k i -> rpo_index.(i) <- k) rpo;
  if n > 0 then idoms.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idoms.(a) b
    else intersect a idoms.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        if i <> 0 then begin
          let processed_preds =
            List.filter
              (fun p -> rpo_index.(p) >= 0 && idoms.(p) >= 0)
              g.preds.(i)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idoms.(i) <> new_idom then begin
                idoms.(i) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idoms; rpo_index }

let idom t i =
  if i = 0 then None
  else if i < 0 || i >= Array.length t.idoms || t.idoms.(i) < 0 then None
  else Some t.idoms.(i)

let dominates t a b =
  if a = b then true
  else if b < 0 || b >= Array.length t.idoms || t.idoms.(b) < 0 then false
  else
    let rec up x = if x = a then true else if x = 0 then false else up t.idoms.(x) in
    if t.rpo_index.(b) < 0 then false else up t.idoms.(b)
