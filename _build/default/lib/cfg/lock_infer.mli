(** Static identification of lock words — the paper's future work
    ("improving the accuracy of the universal race detector by identifying
    the lock operations, enabling lockset analysis").

    A global base is classified as an inferred lock when the program
    contains both halves of the canonical mutual-exclusion shape:

    - an acquire: a compare-and-swap of the base from 0 to 1 (the
      claim step of a test-and-test-and-set), and
    - a release: a plain store or an atomic exchange writing 0 to it.

    Claim-only flags (a CAS with no release anywhere) do not qualify, so
    e.g. one-shot work-stealing claims are not mistaken for mutexes.

    At runtime the detection engine turns successful 0→1 transitions by a
    thread into lockset acquisitions and its 1→0 writes into releases,
    giving the library-free detector an Eraser-style candidate lockset. *)

open Arde_tir.Types

type t

val analyze : program -> t

val inferred_locks : t -> string list
(** Sorted base names classified as locks. *)

val is_lock : t -> string -> bool

val pp : Format.formatter -> t -> unit
