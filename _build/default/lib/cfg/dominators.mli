(** Dominator computation (iterative Cooper–Harvey–Kennedy algorithm).

    Needed to identify natural-loop back edges: an edge [u -> h] is a back
    edge iff [h] dominates [u]. *)

type t
(** Immediate-dominator table for one CFG. *)

val compute : Graph.t -> t

val idom : t -> int -> int option
(** Immediate dominator of a block; [None] for the entry block and for
    unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does [a] dominate [b]?  Reflexive.  Unreachable
    blocks dominate nothing and are dominated by nothing (except
    themselves). *)
