module IS = Set.Make (Int)

type loop = {
  header : int;
  body : int list;
  back_edge_sources : int list;
}

let natural_body (g : Graph.t) header source =
  (* Blocks reaching [source] without passing through [header]. *)
  let body = ref (IS.add header (IS.singleton source)) in
  let stack = ref (if source = header then [] else [ source ]) in
  let rec drain () =
    match !stack with
    | [] -> ()
    | b :: rest ->
        stack := rest;
        List.iter
          (fun p ->
            if not (IS.mem p !body) then begin
              body := IS.add p !body;
              stack := p :: !stack
            end)
          g.preds.(b);
        drain ()
  in
  drain ();
  !body

let find (g : Graph.t) dom =
  let reach = Graph.reachable g in
  let by_header = Hashtbl.create 8 in
  Array.iteri
    (fun u succs ->
      if reach.(u) then
        List.iter
          (fun h ->
            if reach.(h) && Dominators.dominates dom h u then begin
              let prev =
                match Hashtbl.find_opt by_header h with
                | Some (body, sources) -> (body, sources)
                | None -> (IS.empty, [])
              in
              let body = IS.union (fst prev) (natural_body g h u) in
              Hashtbl.replace by_header h (body, u :: snd prev)
            end)
          succs)
    g.succs;
  Hashtbl.fold
    (fun header (body, sources) acc ->
      { header; body = IS.elements body; back_edge_sources = List.sort compare sources }
      :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)

let mem loop i = List.mem i loop.body

let exit_blocks (g : Graph.t) loop =
  List.filter
    (fun b ->
      let outside_succ = List.exists (fun s -> not (mem loop s)) g.succs.(b) in
      let terminal =
        match g.blocks.(b).term with
        | Arde_tir.Types.Ret _ | Arde_tir.Types.Exit -> true
        | Arde_tir.Types.Goto _ | Arde_tir.Types.Br _ -> false
      in
      outside_succ || terminal)
    loop.body
