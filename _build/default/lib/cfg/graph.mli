(** Control-flow graph of one TIR function.

    Blocks are identified by their index in the function's block list; index
    0 is the entry.  Successor/predecessor lists are precomputed. *)

type t = {
  func : Arde_tir.Types.func;
  blocks : Arde_tir.Types.block array;
  succs : int list array;
  preds : int list array;
}

val of_func : Arde_tir.Types.func -> t
(** @raise Invalid_argument if a branch target does not resolve (run
    [Tir.Validate] first). *)

val index_of : t -> Arde_tir.Types.label -> int
val label_of : t -> int -> Arde_tir.Types.label
val n_blocks : t -> int

val reachable : t -> bool array
(** Blocks reachable from the entry. *)
