open Arde_tir.Types

type candidate = {
  c_func : string;
  c_header : label;
  c_body : label list;
  c_window : int;
  c_bases : string list;
  c_loads : loc list;
}

type rejection =
  | Too_large of int
  | No_memory_load
  | Writes_condition of string
  | Indirect_condition

type verdict = Accepted of candidate | Rejected of candidate * rejection

let rejection_to_string = function
  | Too_large w -> Printf.sprintf "loop window of %d basic blocks exceeds k" w
  | No_memory_load -> "exit condition loads nothing from memory"
  | Writes_condition b -> Printf.sprintf "loop writes its own condition base %S" b
  | Indirect_condition -> "condition evaluated through a function pointer or recursion"

let classify ?(count_callees = true) ~k ctx (g : Graph.t) (loop : Loops.loop) =
  let s = Slice.of_loop ctx g loop in
  let cand =
    {
      c_func = g.func.fname;
      c_header = Graph.label_of g loop.header;
      c_body = List.map (Graph.label_of g) loop.body;
      c_window =
        List.length loop.body + (if count_callees then s.callee_blocks else 0);
      c_bases = s.bases;
      c_loads = s.loads;
    }
  in
  if s.opaque then Rejected (cand, Indirect_condition)
  else if s.loads = [] then Rejected (cand, No_memory_load)
  else
    match List.find_opt (fun b -> List.mem b s.store_bases) s.bases with
    | Some b -> Rejected (cand, Writes_condition b)
    | None ->
        if cand.c_window > k then Rejected (cand, Too_large cand.c_window)
        else Accepted cand
