open Arde_tir.Types
module SS = Set.Make (String)

type callee_summary = {
  cs_blocks : int;
  cs_loads : loc list;
  cs_bases : string list;
  cs_stores : string list;
  cs_opaque : bool;
}

type ctx = {
  lookup : string -> func option;
  memo : (string, callee_summary) Hashtbl.t;
  mutable in_progress : SS.t;
}

let make_ctx (p : program) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace tbl f.fname f) p.funcs;
  {
    lookup = (fun name -> Hashtbl.find_opt tbl name);
    memo = Hashtbl.create 16;
    in_progress = SS.empty;
  }

let operand_regs = function Imm _ -> SS.empty | Reg x -> SS.singleton x
let union_ops ops = List.fold_left (fun acc o -> SS.union acc (operand_regs o)) SS.empty ops

(* Registers an instruction defines / the registers it consumes when its
   definition is condition-relevant. *)
let defs = function
  | Mov (d, _) | Binop (d, _, _, _) | Cmp (d, _, _, _) | Load (d, _)
  | Cas (d, _, _, _) | Rmw (d, _, _, _) | Spawn (d, _, _) ->
      Some d
  | Call (Some d, _, _) | Call_indirect (Some d, _, _) -> Some d
  | Call (None, _, _) | Call_indirect (None, _, _) | Store _ | Join _ | Lock _
  | Unlock _ | Cond_wait _ | Cond_signal _ | Cond_broadcast _ | Barrier_init _
  | Barrier_wait _ | Sem_init _ | Sem_post _ | Sem_wait _ | Fence | Yield
  | Check _ | Nop ->
      None

let uses = function
  | Mov (_, o) -> operand_regs o
  | Binop (_, _, a, b) | Cmp (_, _, a, b) -> SS.union (operand_regs a) (operand_regs b)
  | Load (_, a) -> operand_regs a.index
  | Cas (_, a, e, n) -> union_ops [ a.index; e; n ]
  | Rmw (_, _, a, v) -> union_ops [ a.index; v ]
  | Call (_, _, args) -> union_ops args
  | Call_indirect (_, t, args) -> union_ops (t :: args)
  | Spawn (_, _, args) -> union_ops args
  | Store (a, v) -> union_ops [ a.index; v ]
  | Join t -> operand_regs t
  | Check (v, _) -> operand_regs v
  | Lock _ | Unlock _ | Cond_wait _ | Cond_signal _ | Cond_broadcast _
  | Barrier_init _ | Barrier_wait _ | Sem_init _ | Sem_post _ | Sem_wait _
  | Fence | Yield | Nop ->
      SS.empty

let stored_base = function
  | Store (a, _) | Cas (_, a, _, _) | Rmw (_, _, a, _) -> Some a.base
  | _ -> None

(* Generic slice fixpoint over a set of located instructions.  [seeds] are
   the initially relevant registers.  Returns the relevant-register set and
   the in-slice instructions. *)
let fixpoint instrs seeds =
  let relevant = ref seeds in
  let in_slice = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (l, i) ->
        if not (Hashtbl.mem in_slice l) then
          match defs i with
          | Some d when SS.mem d !relevant ->
              Hashtbl.replace in_slice l i;
              let u = uses i in
              if not (SS.subset u !relevant) then begin
                relevant := SS.union !relevant u;
                changed := true
              end;
              (* A new in-slice instruction can unlock others even when it
                 adds no new registers. *)
              changed := true
          | _ -> ())
      instrs
  done;
  Hashtbl.fold (fun l i acc -> (l, i) :: acc) in_slice []

let located_instrs fname (blocks : block list) =
  List.concat_map
    (fun b ->
      List.mapi (fun idx i -> ({ lfunc = fname; lblk = b.lbl; lidx = idx }, i)) b.ins)
    blocks

(* All bases stored by [f] and, transitively, by its direct callees. *)
let rec all_stores ctx visited fname =
  if SS.mem fname visited then SS.empty
  else
    match ctx.lookup fname with
    | None -> SS.empty
    | Some f ->
        let visited = SS.add fname visited in
        List.fold_left
          (fun acc b ->
            List.fold_left
              (fun acc i ->
                let acc =
                  match stored_base i with Some s -> SS.add s acc | None -> acc
                in
                match i with
                | Call (_, callee, _) | Spawn (_, callee, _) ->
                    SS.union acc (all_stores ctx visited callee)
                | _ -> acc)
              acc b.ins)
          SS.empty f.blocks

let rec summary ctx fname =
  match Hashtbl.find_opt ctx.memo fname with
  | Some s -> s
  | None ->
      if SS.mem fname ctx.in_progress then
        (* Recursive condition evaluation: opaque, like the paper's
           unanalyzable cases. *)
        { cs_blocks = 0; cs_loads = []; cs_bases = []; cs_stores = []; cs_opaque = true }
      else begin
        ctx.in_progress <- SS.add fname ctx.in_progress;
        let s = compute_summary ctx fname in
        ctx.in_progress <- SS.remove fname ctx.in_progress;
        Hashtbl.replace ctx.memo fname s;
        s
      end

and compute_summary ctx fname =
  match ctx.lookup fname with
  | None ->
      { cs_blocks = 0; cs_loads = []; cs_bases = []; cs_stores = []; cs_opaque = true }
  | Some f ->
      let instrs = located_instrs fname f.blocks in
      (* The returned value depends on returned registers (data) and on
         every branch that selects which return executes (control) — a
         condition helper typically computes `if load .. then ret 1 else
         ret 0`, where the dependence is purely control. *)
      let seeds =
        List.fold_left
          (fun acc b ->
            match b.term with
            | Ret (Some o) -> SS.union acc (operand_regs o)
            | Br (o, _, _) -> SS.union acc (operand_regs o)
            | Ret None | Goto _ | Exit -> acc)
          SS.empty f.blocks
      in
      let in_slice = fixpoint instrs seeds in
      let init =
        {
          cs_blocks = List.length f.blocks;
          cs_loads = [];
          cs_bases = [];
          cs_stores = SS.elements (all_stores ctx SS.empty fname);
          cs_opaque = false;
        }
      in
      List.fold_left
        (fun acc (l, i) ->
          match i with
          | Load (_, a) ->
              { acc with cs_loads = l :: acc.cs_loads; cs_bases = a.base :: acc.cs_bases }
          | Cas (_, a, _, _) | Rmw (_, _, a, _) ->
              (* Atomic in the return slice: also a memory read. *)
              { acc with cs_loads = l :: acc.cs_loads; cs_bases = a.base :: acc.cs_bases }
          | Call (Some _, callee, _) ->
              let s = summary ctx callee in
              {
                acc with
                cs_blocks = acc.cs_blocks + s.cs_blocks;
                cs_loads = s.cs_loads @ acc.cs_loads;
                cs_bases = s.cs_bases @ acc.cs_bases;
                cs_opaque = acc.cs_opaque || s.cs_opaque;
              }
          | Call_indirect (Some _, _, _) -> { acc with cs_opaque = true }
          | _ -> acc)
        init in_slice

let callee_summary = summary

type cond_slice = {
  loads : loc list;
  bases : string list;
  callee_blocks : int;
  callees : string list;
  opaque : bool;
  store_bases : string list;
}

let of_loop ctx (g : Graph.t) (loop : Loops.loop) =
  let fname = g.func.fname in
  let body_blocks = List.map (fun i -> g.blocks.(i)) loop.body in
  let instrs = located_instrs fname body_blocks in
  let seeds =
    List.fold_left
      (fun acc bi ->
        let b = g.blocks.(bi) in
        let is_exit = List.exists (fun s -> not (Loops.mem loop s)) g.succs.(bi) in
        match b.term with
        | Br (o, _, _) when is_exit -> SS.union acc (operand_regs o)
        | Br _ | Goto _ | Ret _ | Exit -> acc)
      SS.empty loop.body
  in
  let in_slice = fixpoint instrs seeds in
  let stores_in_body =
    List.fold_left
      (fun acc (_, i) ->
        let acc = match stored_base i with Some s -> SS.add s acc | None -> acc in
        match i with
        | Call (_, callee, _) ->
            SS.union acc (SS.of_list (summary ctx callee).cs_stores)
        | _ -> acc)
      SS.empty instrs
  in
  let init =
    {
      loads = [];
      bases = [];
      callee_blocks = 0;
      callees = [];
      opaque = false;
      store_bases = SS.elements stores_in_body;
    }
  in
  let s =
    List.fold_left
      (fun acc (l, i) ->
        match i with
        | Load (_, a) ->
            { acc with loads = l :: acc.loads; bases = a.base :: acc.bases }
        | Cas (_, a, _, _) | Rmw (_, _, a, _) ->
            { acc with loads = l :: acc.loads; bases = a.base :: acc.bases }
        | Call (Some _, callee, _) ->
            let cs = summary ctx callee in
            {
              acc with
              loads = cs.cs_loads @ acc.loads;
              bases = cs.cs_bases @ acc.bases;
              callee_blocks = acc.callee_blocks + cs.cs_blocks;
              callees = callee :: acc.callees;
              opaque = acc.opaque || cs.cs_opaque;
            }
        | Call_indirect (Some _, _, _) -> { acc with opaque = true }
        | _ -> acc)
      init in_slice
  in
  { s with bases = SS.elements (SS.of_list s.bases) }
