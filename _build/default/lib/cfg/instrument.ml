open Arde_tir.Types

type spin = { s_id : int; s_cand : Spin.candidate }

type t = {
  k : int;
  spins : spin list;
  rejected : (Spin.candidate * Spin.rejection) list;
  headers : (string * label, int) Hashtbl.t;
  members : (string * label, int list) Hashtbl.t;
  marked : (string * label * int, int list) Hashtbl.t;
  sync_bases : (string, unit) Hashtbl.t;
  by_id : (int, spin) Hashtbl.t;
}

let analyze ?(count_callees = true) ~k prog =
  let ctx = Slice.make_ctx prog in
  let spins = ref [] and rejected = ref [] in
  let next_id = ref 0 in
  List.iter
    (fun f ->
      let g = Graph.of_func f in
      let dom = Dominators.compute g in
      List.iter
        (fun loop ->
          match Spin.classify ~count_callees ~k ctx g loop with
          | Spin.Accepted cand ->
              let id = !next_id in
              incr next_id;
              spins := { s_id = id; s_cand = cand } :: !spins
          | Spin.Rejected (cand, why) -> rejected := (cand, why) :: !rejected)
        (Loops.find g dom))
    prog.funcs;
  let spins = List.rev !spins and rejected = List.rev !rejected in
  let headers = Hashtbl.create 16 in
  let members = Hashtbl.create 64 in
  let marked = Hashtbl.create 64 in
  let sync_bases = Hashtbl.create 16 in
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let c = s.s_cand in
      Hashtbl.replace by_id s.s_id s;
      Hashtbl.replace headers (c.Spin.c_func, c.Spin.c_header) s.s_id;
      List.iter
        (fun lbl ->
          let key = (c.Spin.c_func, lbl) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt members key) in
          Hashtbl.replace members key (s.s_id :: prev))
        c.Spin.c_body;
      List.iter
        (fun (l : loc) ->
          let key = (l.lfunc, l.lblk, l.lidx) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt marked key) in
          Hashtbl.replace marked key (s.s_id :: prev))
        c.Spin.c_loads;
      List.iter (fun b -> Hashtbl.replace sync_bases b ()) c.Spin.c_bases)
    spins;
  { k; spins; rejected; headers; members; marked; sync_bases; by_id }

let k t = t.k
let spins t = t.spins
let rejected t = t.rejected
let header_at t ~fname ~lbl = Hashtbl.find_opt t.headers (fname, lbl)

let in_loop t ~fname ~lbl id =
  match Hashtbl.find_opt t.members (fname, lbl) with
  | Some ids -> List.mem id ids
  | None -> false

let marked_loops_at t (l : loc) =
  Option.value ~default:[] (Hashtbl.find_opt t.marked (l.lfunc, l.lblk, l.lidx))

let is_sync_base t b = Hashtbl.mem t.sync_bases b

let find_spin t id = Hashtbl.find t.by_id id

let pp_candidate ppf (c : Spin.candidate) =
  Format.fprintf ppf "%s:%s window=%d bases=[%s] loads=%d" c.Spin.c_func
    c.Spin.c_header c.Spin.c_window
    (String.concat ", " c.Spin.c_bases)
    (List.length c.Spin.c_loads)

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>spin window k = %d@," t.k;
  Format.fprintf ppf "accepted spinning read loops: %d@," (List.length t.spins);
  List.iter
    (fun s -> Format.fprintf ppf "  #%d %a@," s.s_id pp_candidate s.s_cand)
    t.spins;
  Format.fprintf ppf "rejected loop candidates: %d@," (List.length t.rejected);
  List.iter
    (fun (c, why) ->
      Format.fprintf ppf "  %a -- %s@," pp_candidate c
        (Spin.rejection_to_string why))
    t.rejected;
  Format.fprintf ppf "@]"
