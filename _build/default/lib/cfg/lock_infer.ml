open Arde_tir.Types
module SS = Set.Make (String)

type t = { locks : SS.t }

let scan_instr (acquires, releases) = function
  | Cas (_, a, Imm 0, Imm 1) -> (SS.add a.base acquires, releases)
  | Store (a, Imm 0) -> (acquires, SS.add a.base releases)
  | Rmw (_, Rmw_exchange, a, Imm 0) -> (acquires, SS.add a.base releases)
  | _ -> (acquires, releases)

let analyze (p : program) =
  let acquires, releases =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc b -> List.fold_left scan_instr acc b.ins)
          acc f.blocks)
      (SS.empty, SS.empty) p.funcs
  in
  { locks = SS.inter acquires releases }

let inferred_locks t = SS.elements t.locks
let is_lock t b = SS.mem b t.locks

let pp ppf t =
  Format.fprintf ppf "inferred locks: [%s]"
    (String.concat ", " (SS.elements t.locks))
