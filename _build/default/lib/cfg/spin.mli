(** The spinning-read-loop classifier — the paper's instrumentation phase.

    A natural loop qualifies as a spinning read loop for window [k] iff:

    + its effective size — own basic blocks plus the blocks of directly
      called condition helpers, as if inlined — is at most [k] blocks;
    + the backward slice of its exit condition contains at least one load
      from memory;
    + no instruction in the loop (or in its direct callees) stores to a
      base the condition reads — the loop cannot make its own condition
      true;
    + the condition slice is statically analyzable: an indirect call or
      recursion in the slice disqualifies the loop (the paper's
      function-pointer failure mode).

    Qualifying loops get their condition loads marked; the runtime phase
    pairs those loads with counterpart writes. *)

open Arde_tir.Types

type candidate = {
  c_func : string;
  c_header : label;
  c_body : label list;
  c_window : int; (* own blocks + condition-callee blocks *)
  c_bases : string list; (* condition bases *)
  c_loads : loc list; (* condition load sites *)
}

type rejection =
  | Too_large of int (* the offending window *)
  | No_memory_load
  | Writes_condition of string (* the base both read and written *)
  | Indirect_condition

type verdict = Accepted of candidate | Rejected of candidate * rejection

val classify :
  ?count_callees:bool -> k:int -> Slice.ctx -> Graph.t -> Loops.loop -> verdict
(** [count_callees] (default true) counts condition-helper callee blocks
    toward the window, as if inlined — the paper's accounting.  Pass
    [false] for the ablation: call-heavy conditions then appear tiny and
    every window finds them, flattening Table 2's shape. *)

val rejection_to_string : rejection -> string
