(** Minimal ASCII table rendering for the experiment harness.

    Every table and figure of the paper is regenerated as text; this module
    keeps the formatting in one place so all reproductions look alike. *)

type align = Left | Right | Center

type t
(** A table under construction: a header row plus data rows. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Left] for the
    first column and [Right] for the rest, which fits "name, numbers..."
    rows. *)

val add_row : t -> string list -> unit
(** Append a data row.  Rows shorter than the header are padded with empty
    cells; longer rows raise.

    @raise Invalid_argument if the row has more cells than the header. *)

val add_sep : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render with box-drawing ASCII ([+--+] style), ending in a newline. *)

val cell_float : float -> string
(** Format a float the way the paper prints racy contexts: integers are
    printed bare, otherwise one decimal place (e.g. ["153.4"]). *)

val cell_int : int -> string
