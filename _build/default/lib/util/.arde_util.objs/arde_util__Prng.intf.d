lib/util/prng.mli:
