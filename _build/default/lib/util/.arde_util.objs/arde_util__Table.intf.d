lib/util/table.mli:
