type align = Left | Right | Center

type row = Cells of string list | Sep

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> (
        match headers with
        | [] -> []
        | _ :: rest -> Left :: List.map (fun _ -> Right) rest)
  in
  { headers; aligns; rows = [] }

let ncols t = List.length t.headers

let add_row t cells =
  let n = List.length cells in
  if n > ncols t then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (ncols t - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let l = fill / 2 in
        String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.headers :: List.filter_map (function Cells c -> Some c | Sep -> None) rows
  in
  let widths =
    List.mapi
      (fun i _ ->
        List.fold_left
          (fun acc cells -> max acc (String.length (List.nth cells i)))
          0 all_cell_rows)
      t.headers
  in
  let aligns =
    let rec extend a n =
      match (a, n) with
      | _, 0 -> []
      | [], n -> Left :: extend [] (n - 1)
      | x :: rest, n -> x :: extend rest (n - 1)
    in
    extend t.aligns (ncols t)
  in
  let buf = Buffer.create 256 in
  let hline () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  hline ();
  emit_cells t.headers;
  hline ();
  List.iter (function Cells c -> emit_cells c | Sep -> hline ()) rows;
  hline ();
  Buffer.contents buf

let cell_float f =
  if Float.is_integer f then string_of_int (int_of_float f)
  else Printf.sprintf "%.1f" f

let cell_int = string_of_int
