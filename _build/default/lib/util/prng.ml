type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step: one addition then a 64-bit finalizer (Stafford mix13). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (mantissa /. 9007199254740992.0)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t =
  let s = next_int64 t in
  { state = Int64.logxor s 0xA5A5A5A55A5A5A5AL }
