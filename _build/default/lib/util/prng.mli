(** Deterministic pseudo-random number generator (SplitMix64).

    All stochastic behaviour in ARDE (schedulers, workload shuffling,
    multi-seed experiments) flows through this module so that every run is
    reproducible from a single integer seed.  The implementation is
    self-contained and does not touch [Stdlib.Random], keeping library
    clients free to use the global generator however they like. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator positioned at [t]'s current
    state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive.

    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.

    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t].  Used to give each thread / case its own stream. *)
