(* Same-trace comparison: replay one recorded interleaving through
   several detectors at once.

   Dynamic detectors are usually compared across separate runs, where
   schedule variance muddies the water.  [Arde.Driver.compare_on_trace]
   records one event trace per seed and feeds the *identical* stream to
   an engine per configuration, so any difference in warnings is purely
   algorithmic.

   Run with: dune exec examples/same_trace.exe *)

module W = Arde_workloads

let modes =
  [ Arde.Config.Helgrind_lib; Arde.Config.Drd; Arde.Config.Helgrind_spin 7 ]

let show name =
  match W.Racey.find name with
  | None -> Format.printf "case %s missing@." name
  | Some c ->
      Format.printf "--- %s (%s, ground truth: %s) ---@." name
        c.W.Racey.category
        (match c.W.Racey.expectation with
        | Arde.Classify.Race_free -> "race-free"
        | Arde.Classify.Racy bs -> "racy on " ^ String.concat ", " bs);
      let results =
        Arde.Driver.compare_on_trace ~k:7 c.W.Racey.program modes
      in
      List.iter
        (fun (mode, report) ->
          Format.printf "  %-14s %d context(s)%s@."
            (Arde.Config.mode_name mode)
            (Arde.Report.n_contexts report)
            (match Arde.Report.racy_bases report with
            | [] -> ""
            | bs -> "  on " ^ String.concat ", " bs))
        results;
      Format.printf "@."

let () =
  Format.printf
    "One trace, three detectors: differences below are algorithmic,@.";
  Format.printf "not scheduling luck.@.@.";
  (* Ad-hoc flag: the hybrid and DRD both false-positive, spin fixes it. *)
  show "adhoc_flag_w2/8";
  (* Lock-sampled flag: DRD's lock-order edges save it, lockset doesn't. *)
  show "lock_flag_spin/4";
  (* A real race hidden behind coincidental lock ordering: only the
     lockset-carrying hybrids see it on this trace. *)
  show "racy_lock_ordered_w/2";
  (* Broken ad-hoc sync: everyone must keep reporting this one. *)
  show "racy_adhoc_broken/2"
