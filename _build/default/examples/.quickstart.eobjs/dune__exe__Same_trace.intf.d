examples/same_trace.mli:
