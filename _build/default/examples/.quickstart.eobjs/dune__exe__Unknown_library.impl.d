examples/unknown_library.ml: Arde Format List
