examples/task_queue.ml: Arde Arde_workloads Format List String
