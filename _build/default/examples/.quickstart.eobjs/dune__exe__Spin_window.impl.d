examples/spin_window.ml: Arde Arde_workloads Format List Printf
