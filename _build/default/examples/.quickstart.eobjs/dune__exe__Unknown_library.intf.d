examples/unknown_library.mli:
