examples/quickstart.ml: Arde Format
