examples/same_trace.ml: Arde Arde_workloads Format List String
