examples/spin_window.mli:
