examples/quickstart.mli:
