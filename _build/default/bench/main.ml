(* Regenerates every table and figure of the paper's evaluation:

   T1  data-race-test results for the four detector configurations
   T2  spin-window sensitivity (k = 3, 6, 7, 8)
   T3  PARSEC program inventory
   T4  PARSEC racy contexts, programs without ad-hoc synchronization
   T5  PARSEC racy contexts, programs with ad-hoc synchronization
   T6  the combined "universal race detector" table
   F1  detector memory consumption
   F2  runtime overhead

   plus Bechamel micro-benchmarks of the pipeline stages.  Compare the
   output against EXPERIMENTS.md. *)

let section title =
  Printf.printf "\n==== %s ====\n%!" title

let tables () =
  section "Table 1: data-race-test suite (120 cases)";
  let rows1, t1 = Arde_harness.Suite_experiment.table1 () in
  print_string t1;
  section "Table 1a: failures by case category";
  print_string (Arde_harness.Suite_experiment.category_table rows1);
  section "Table 2: spinning-read-loop window sensitivity";
  let _rows, t2 = Arde_harness.Suite_experiment.table2 () in
  print_string t2;
  section
    "Table 2a (ablation): same sweep without counting condition-callee blocks";
  let ablation_options =
    {
      Arde_harness.Suite_experiment.suite_options with
      Arde.Driver.count_callee_blocks = false;
    }
  in
  let _rows, t2a =
    Arde_harness.Suite_experiment.table2 ~options:ablation_options ()
  in
  print_string t2a;
  section "Table 3: PARSEC 2.0 program inventory";
  print_string (Arde_harness.Parsec_experiment.table3 ());
  section "Table 4: racy contexts, programs without ad-hoc synchronization";
  let _r, t4 = Arde_harness.Parsec_experiment.table4 () in
  print_string t4;
  section "Table 5: racy contexts, programs with ad-hoc synchronization";
  let _r, t5 = Arde_harness.Parsec_experiment.table5 () in
  print_string t5;
  section "Table 6: universal race detector (all programs)";
  let _r, t6 = Arde_harness.Parsec_experiment.table6 () in
  print_string t6

(* The paper's stated future work, realized: identify the lock words of
   the lowered (unknown) library statically and rebuild the lockset, then
   compare the universal detector with and without it. *)
let extension_table () =
  section "Extension: universal detector + inferred lock words (future work)";
  let cases = Arde_workloads.Racey.all () in
  let rows =
    List.map
      (fun m -> Arde_harness.Suite_experiment.run_mode m cases)
      [ Arde.Config.Nolib_spin 7; Arde.Config.Nolib_spin_locks 7 ]
  in
  print_string (Arde_harness.Suite_experiment.render rows)

let figures () =
  section "Figure 1: detector memory consumption (heap words)";
  let _figs, f1, f2 = Arde_harness.Perf.run_figures ~repeats:3 () in
  print_string f1;
  section "Figure 2: runtime (ms per full run) and spin overhead ratio";
  print_string f2

(* Bechamel micro-benchmarks: one Test.make per reproduced artifact,
   exercising the pipeline stage that dominates it. *)
let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let flag_case =
    match Arde_workloads.Racey.find "adhoc_flag_w2/8" with
    | Some c -> c.Arde_workloads.Racey.program
    | None -> assert false
  in
  let compiled = Arde.Machine.compile flag_case in
  let inst = Arde.Instrument.analyze ~k:7 flag_case in
  let detect_once mode () =
    let engine = Arde.Engine.create (Arde.Config.make mode) ~instrument:(Some inst) in
    ignore
      (Arde.Machine.run
         {
           Arde.Machine.default_config with
           Arde.Machine.instrument = Some inst;
           observer = Arde.Engine.observer engine;
         }
         compiled)
  in
  let tests =
    [
      Test.make ~name:"T1:instrumentation-phase"
        (Staged.stage (fun () -> ignore (Arde.Instrument.analyze ~k:7 flag_case)));
      Test.make ~name:"T1:machine-only"
        (Staged.stage (fun () ->
             ignore (Arde.Machine.run Arde.Machine.default_config compiled)));
      Test.make ~name:"T1:hybrid-lib"
        (Staged.stage (detect_once Arde.Config.Helgrind_lib));
      Test.make ~name:"T2:hybrid-spin7"
        (Staged.stage (detect_once (Arde.Config.Helgrind_spin 7)));
      Test.make ~name:"T6:lowering"
        (Staged.stage (fun () -> ignore (Arde.Lower.lower flag_case)));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = List.map (fun t -> (Test.Elt.name (List.hd (Test.elements t)), Benchmark.all cfg instances t)) tests in
  section "Bechamel: per-stage timings (ns, monotonic clock)";
  List.iter
    (fun (name, tbl) ->
      Hashtbl.iter
        (fun _ result ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Instance.monotonic_clock result
          in
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        tbl)
    raw

let () =
  tables ();
  extension_table ();
  figures ();
  bechamel_suite ()
