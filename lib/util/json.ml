type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)

(* Strings dominate both directions of the serve wire (program texts are
   hundreds of kilobytes), so the escaper copies maximal clean runs with
   [Buffer.add_substring] instead of walking char by char. *)
let escape_to buf s =
  let n = String.length s in
  let needs_escape c = c = '"' || c = '\\' || Char.code c < 0x20 in
  Buffer.add_char buf '"';
  let i = ref 0 in
  while !i < n do
    let start = !i in
    while !i < n && not (needs_escape (String.unsafe_get s !i)) do
      incr i
    done;
    if !i > start then Buffer.add_substring buf s start (!i - start);
    if !i < n then begin
      (match s.[!i] with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c)));
      incr i
    end
  done;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* keep a marker so the parser reads it back as a float *)
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(minify = true) j =
  let buf = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            go (indent + 2) x)
          xs;
        nl indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            escape_to buf k;
            Buffer.add_char buf ':';
            if not minify then Buffer.add_char buf ' ';
            go (indent + 2) v)
          kvs;
        nl indent;
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)

type error = { at : int; reason : string }

let error_to_string { at; reason } =
  Printf.sprintf "JSON parse error at offset %d: %s" at reason

exception Bad of int * string

(* Socket frames are attacker-controlled, so both knobs default to
   finite: a frame of a million '['s must come back as a structured
   error, not a stack overflow, and an over-long input must be refused
   before the parser walks it. *)
let default_max_depth = 512
let default_max_size = 64 * 1024 * 1024

let parse_checked ?(max_depth = default_max_depth)
    ?(max_size = default_max_size) s =
  let n = String.length s in
  if n > max_size then
    Error
      {
        at = max_size;
        reason =
          Printf.sprintf "input too large: %d bytes exceeds limit of %d" n
            max_size;
      }
  else
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    (* Fast path: scan the maximal run of plain characters by direct
       indexing.  A string with no escapes (the overwhelmingly common
       case, including the multi-hundred-kilobyte program texts on the
       serve wire) is a single [String.sub]; escaped strings fall back
       to a buffer but still copy plain runs chunk-wise. *)
    let scan_plain from =
      let i = ref from in
      while
        !i < n
        &&
        let c = String.unsafe_get s !i in
        c <> '"' && c <> '\\'
      do
        incr i
      done;
      !i
    in
    let start = !pos in
    let stop = scan_plain start in
    if stop < n && String.unsafe_get s stop = '"' then begin
      pos := stop + 1;
      String.sub s start (stop - start)
    end
    else begin
    pos := stop;
    let buf = Buffer.create (stop - start + 16) in
    Buffer.add_substring buf s start (stop - start);
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              advance ();
              let c = parse_hex4 () in
              (* encode the code point as UTF-8 (BMP only) *)
              if c < 0x80 then Buffer.add_char buf (Char.chr c)
              else if c < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
              end;
              pos := !pos - 1 (* advance below re-consumes the last digit *)
          | _ -> fail "bad escape");
          advance ();
          go ())
      | Some _ ->
          let stop = scan_plain !pos in
          Buffer.add_substring buf s !pos (stop - !pos);
          pos := stop;
          go ()
    in
    go ();
    Buffer.contents buf
    end
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        if depth >= max_depth then
          fail (Printf.sprintf "nesting deeper than %d" max_depth);
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        if depth >= max_depth then
          fail (Printf.sprintf "nesting deeper than %d" max_depth);
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error { at; reason = msg }

let parse ?max_depth ?max_size s =
  Result.map_error error_to_string (parse_checked ?max_depth ?max_size s)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
