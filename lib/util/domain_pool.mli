(** Order-preserving parallel map over an OCaml 5 domain pool.

    [map ~jobs f xs] applies [f] to every element of [xs] and returns the
    results in input order, running up to [jobs] applications
    concurrently on separate domains.  Work is handed out through a
    shared atomic counter, so domains that finish early steal the next
    pending item rather than idling.

    Determinism contract: the {e result list} depends only on [f] and
    [xs], never on [jobs] — callers that fold over it in order observe
    the same sequence whether the work ran on one domain or many.  [f]
    itself must be safe to run concurrently with other applications of
    [f] (no shared mutable state between items).

    With [jobs <= 1], a single-element list, or inside a pool worker
    already, this degrades to a plain sequential [List.map] on the
    calling domain — no domains are spawned.

    If an application of [f] raises, the exception is re-raised on the
    calling domain (the first one in input order wins); the remaining
    items may or may not have been processed. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool width to use when the
    caller expresses no preference. *)
