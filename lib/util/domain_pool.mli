(** Order-preserving parallel map over an OCaml 5 domain pool.

    [map ~jobs f xs] applies [f] to every element of [xs] and returns the
    results in input order, running up to [jobs] applications
    concurrently on separate domains.  Work is handed out through a
    shared atomic counter, so domains that finish early steal the next
    pending item rather than idling.

    Determinism contract: the {e result list} depends only on [f] and
    [xs], never on [jobs] — callers that fold over it in order observe
    the same sequence whether the work ran on one domain or many.  [f]
    itself must be safe to run concurrently with other applications of
    [f] (no shared mutable state between items).

    With [jobs <= 1], a single-element list, or inside a pool worker
    already, this degrades to a plain sequential [List.map] on the
    calling domain — no domains are spawned.

    If an application of [f] raises, the exception is re-raised on the
    calling domain (the first one in input order wins); the remaining
    items may or may not have been processed. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool width to use when the
    caller expresses no preference. *)

(** {1 Resident pools}

    [map] spawns and joins domains per call — right for one-shot runs,
    wrong for a server fanning out per request.  A {!pool} spawns its
    workers once; {!map_pool} hands them one batch at a time and blocks
    until the batch completes, with the same ordering, determinism and
    exception contract as {!map}.  Concurrent {!map_pool} calls on the
    same pool are serialized (one batch in flight); a call made from
    inside a pool worker degrades to sequential [List.map], so nesting
    cannot deadlock. *)

type pool

val create : jobs:int -> pool
(** Spawn a resident pool of [max 1 jobs] workers ([jobs - 1] domains;
    the submitting domain is always the batch's first worker). *)

val width : pool -> int

val map_pool : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map} over the resident workers.  After {!shutdown} (or on a
    1-wide pool) this is plain sequential [List.map]. *)

val shutdown : pool -> unit
(** Stop and join the worker domains.  Idempotent. *)
