(** RFC 4648 base64 (standard alphabet, padded) — how binary trace
    bytes travel inside the JSON wire protocol and crash bundles.

    Hand-rolled because the repository deliberately has no third-party
    codec dependency; the decoder is strict so a corrupted bundle fails
    loudly instead of yielding silently wrong trace bytes. *)

val encode : string -> string
(** Standard alphabet, ['='] padded, no line breaks. *)

val decode : string -> (string, string) result
(** Strict inverse: rejects characters outside the alphabet, lengths
    that are not a multiple of four, misplaced padding, and non-zero
    bits hidden under the padding.  [decode (encode s) = Ok s]. *)
