let default_jobs () = Domain.recommended_domain_count ()

(* Nested parallelism guard: a worker that itself calls [map] (e.g. a
   harness running parallel detections whose driver also fans out) runs
   the inner map sequentially instead of multiplying domains. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

let map ~jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside_pool then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let body () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f items.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let worker () =
      Domain.DLS.set inside_pool true;
      body ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the pool's first worker. *)
    Domain.DLS.set inside_pool true;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set inside_pool false;
        List.iter Domain.join domains)
      body;
    (* Joins above give the happens-before edge that makes every
       [results] slot visible here. *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None ->
             (* Unreachable: every index below [n] is claimed exactly once
                and filled before its claimant exits. *)
             invalid_arg "Domain_pool.map: missing result")
  end
