let default_jobs () = Domain.recommended_domain_count ()

(* Nested parallelism guard: a worker that itself calls [map] (e.g. a
   harness running parallel detections whose driver also fans out) runs
   the inner map sequentially instead of multiplying domains. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

(* ------------------------------------------------------------------ *)
(* The resident pool: domains spawned once and reused across batches.
   [map] spawns and joins per call, which is fine for one-shot runs but
   wrong for a server that fans out per request — the resident form
   keeps [width - 1] workers parked on a condition variable and hands
   them one batch at a time.  The caller of [submit] is always the
   batch's first worker, so a 1-wide pool degrades to [List.map] and a
   worker can never deadlock waiting for itself. *)

type pool = {
  width : int;
  m : Mutex.t;
  work_cv : Condition.t; (* workers: "a new batch is up" *)
  done_cv : Condition.t; (* submitter: "the batch completed" *)
  mutable batch : (unit -> unit) option;
  mutable batch_id : int;
  mutable stop : bool;
  submit_m : Mutex.t; (* one batch in flight at a time *)
  mutable domains : unit Domain.t list;
}

let create ~jobs =
  let width = max 1 jobs in
  let pool =
    {
      width;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      batch = None;
      batch_id = 0;
      stop = false;
      submit_m = Mutex.create ();
      domains = [];
    }
  in
  let worker () =
    Domain.DLS.set inside_pool true;
    let rec loop last_id =
      Mutex.lock pool.m;
      while (not pool.stop) && pool.batch_id = last_id do
        Condition.wait pool.work_cv pool.m
      done;
      if pool.stop then Mutex.unlock pool.m
      else begin
        let id = pool.batch_id and body = pool.batch in
        Mutex.unlock pool.m;
        (match body with Some f -> f () | None -> ());
        loop id
      end
    in
    loop 0
  in
  pool.domains <- List.init (width - 1) (fun _ -> Domain.spawn worker);
  pool

let width pool = pool.width

let map_pool pool f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n <= 1 || pool.width <= 1 || pool.stop || Domain.DLS.get inside_pool then
    List.map f xs
  else begin
    Mutex.lock pool.submit_m;
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let body () =
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f items.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          (* the worker that finishes the last item wakes the submitter *)
          if Atomic.fetch_and_add completed 1 = n - 1 then begin
            Mutex.lock pool.m;
            Condition.broadcast pool.done_cv;
            Mutex.unlock pool.m
          end;
          claim ()
        end
      in
      claim ()
    in
    Mutex.lock pool.m;
    pool.batch <- Some body;
    pool.batch_id <- pool.batch_id + 1;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.m;
    (* The submitting domain is the batch's first worker. *)
    Domain.DLS.set inside_pool true;
    Fun.protect ~finally:(fun () -> Domain.DLS.set inside_pool false) body;
    Mutex.lock pool.m;
    while Atomic.get completed < n do
      Condition.wait pool.done_cv pool.m
    done;
    pool.batch <- None;
    Mutex.unlock pool.m;
    Mutex.unlock pool.submit_m;
    (* The done_cv handshake gives the happens-before edge that makes
       every [results] slot written by a worker visible here. *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> invalid_arg "Domain_pool.map_pool: missing result")
  end

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let map ~jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside_pool then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let body () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f items.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let worker () =
      Domain.DLS.set inside_pool true;
      body ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the pool's first worker. *)
    Domain.DLS.set inside_pool true;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set inside_pool false;
        List.iter Domain.join domains)
      body;
    (* Joins above give the happens-before edge that makes every
       [results] slot visible here. *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None ->
             (* Unreachable: every index below [n] is claimed exactly once
                and filled before its claimant exits. *)
             invalid_arg "Domain_pool.map: missing result")
  end
