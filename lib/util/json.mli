(** A minimal JSON tree, printer and parser.

    Just enough for the machine-readable report surface ([Report.to_json],
    [Driver.health_to_json], the [--format json] CLI flag and the bench
    harness's [BENCH_parallel.json]) without pulling an external
    dependency.  The printer emits deterministic output — object fields
    in the order given — so serialized reports can be compared
    byte-for-byte, and [parse] accepts everything [to_string] emits
    (round trip). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Serialize.  [minify] (default [true]) drops all whitespace; otherwise
    output is indented for human readers.  Strings are escaped per RFC
    8259; floats print with enough digits to round-trip. *)

(** {1 Parsing}

    The parser also guards the server's socket boundary, so adversarial
    input must come back as a structured error rather than a crash:
    inputs longer than [max_size] are refused up front, and nesting
    beyond [max_depth] containers fails cleanly instead of overflowing
    the stack.  Both limits default to values far above anything the
    repository's own serializers emit ({!default_max_depth} /
    {!default_max_size}). *)

type error = { at : int; reason : string }
(** A parse failure: [at] is the byte offset in the input where the
    parser gave up ([max_size] itself for over-long input, the opening
    bracket for an over-deep container). *)

val error_to_string : error -> string

val default_max_depth : int
(** 512 nested containers. *)

val default_max_size : int
(** 64 MiB. *)

val parse_checked :
  ?max_depth:int -> ?max_size:int -> string -> (t, error) result
(** Parse a complete JSON document.  Numbers without [.], [e] or [E]
    become [Int]; everything else numeric becomes [Float]. *)

val parse : ?max_depth:int -> ?max_size:int -> string -> (t, string) result
(** {!parse_checked} with the error rendered by {!error_to_string}. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k], if any; [None] on
    non-objects. *)

val to_int : t -> int option
(** [Int n] (or an integral [Float]) as an int. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
val to_float : t -> float option
(** [Float] or [Int] as a float. *)
