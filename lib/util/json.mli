(** A minimal JSON tree, printer and parser.

    Just enough for the machine-readable report surface ([Report.to_json],
    [Driver.health_to_json], the [--format json] CLI flag and the bench
    harness's [BENCH_parallel.json]) without pulling an external
    dependency.  The printer emits deterministic output — object fields
    in the order given — so serialized reports can be compared
    byte-for-byte, and [parse] accepts everything [to_string] emits
    (round trip). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Serialize.  [minify] (default [true]) drops all whitespace; otherwise
    output is indented for human readers.  Strings are escaped per RFC
    8259; floats print with enough digits to round-trip. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document.  Numbers without [.], [e] or [E]
    become [Int]; everything else numeric becomes [Float].  Errors carry
    a character offset. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k], if any; [None] on
    non-objects. *)

val to_int : t -> int option
(** [Int n] (or an integral [Float]) as an int. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
val to_float : t -> float option
(** [Float] or [Int] as a float. *)
