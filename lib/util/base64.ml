(* RFC 4648 standard base64.  See base64.mli. *)

let alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

(* value of each byte in the alphabet; -1 elsewhere, -2 for '='. *)
let rev_table =
  let t = Array.make 256 (-1) in
  String.iteri (fun i c -> t.(Char.code c) <- i) alphabet;
  t.(Char.code '=') <- -2;
  t

let encode s =
  let n = String.length s in
  let out = Buffer.create (((n + 2) / 3) * 4) in
  let emit v = Buffer.add_char out alphabet.[v land 63] in
  let i = ref 0 in
  while !i + 3 <= n do
    let b0 = Char.code s.[!i]
    and b1 = Char.code s.[!i + 1]
    and b2 = Char.code s.[!i + 2] in
    emit (b0 lsr 2);
    emit ((b0 lsl 4) lor (b1 lsr 4));
    emit ((b1 lsl 2) lor (b2 lsr 6));
    emit b2;
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = Char.code s.[!i] in
      emit (b0 lsr 2);
      emit (b0 lsl 4);
      Buffer.add_string out "=="
  | 2 ->
      let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
      emit (b0 lsr 2);
      emit ((b0 lsl 4) lor (b1 lsr 4));
      emit (b1 lsl 2);
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

exception Bad of string

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then
    Error (Printf.sprintf "base64: length %d is not a multiple of 4" n)
  else if n = 0 then Ok ""
  else
    try
      let out = Buffer.create (n / 4 * 3) in
      let v i =
        match rev_table.(Char.code s.[i]) with
        | -1 ->
            raise
              (Bad
                 (Printf.sprintf "base64: invalid character %C at offset %d"
                    s.[i] i))
        | x -> x
      in
      let quad i =
        (* '=' may appear only as the final one or two characters. *)
        let last = i + 4 = n in
        let c0 = v i and c1 = v (i + 1) and c2 = v (i + 2) and c3 = v (i + 3) in
        if c0 = -2 || c1 = -2 then
          raise (Bad "base64: misplaced padding")
        else if c2 = -2 then begin
          if (not last) || c3 <> -2 then raise (Bad "base64: misplaced padding");
          if c1 land 0x0F <> 0 then
            raise (Bad "base64: non-zero bits under padding");
          Buffer.add_char out (Char.chr ((c0 lsl 2) lor (c1 lsr 4)))
        end
        else if c3 = -2 then begin
          if not last then raise (Bad "base64: misplaced padding");
          if c2 land 0x03 <> 0 then
            raise (Bad "base64: non-zero bits under padding");
          Buffer.add_char out (Char.chr ((c0 lsl 2) lor (c1 lsr 4)));
          Buffer.add_char out (Char.chr (((c1 lsl 4) lor (c2 lsr 2)) land 0xFF))
        end
        else begin
          Buffer.add_char out (Char.chr ((c0 lsl 2) lor (c1 lsr 4)));
          Buffer.add_char out (Char.chr (((c1 lsl 4) lor (c2 lsr 2)) land 0xFF));
          Buffer.add_char out (Char.chr (((c2 lsl 6) lor c3) land 0xFF))
        end
      in
      let i = ref 0 in
      while !i < n do
        quad !i;
        i := !i + 4
      done;
      Ok (Buffer.contents out)
    with Bad msg -> Error msg
