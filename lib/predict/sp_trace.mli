(** The flat trace form behind sync-preserving race prediction.

    A recorded section decodes into a totally ordered event sequence;
    this module re-indexes it for the predictor: every event gets a
    trace position, a thread position, and the {e requirements} the
    closure needs in O(1) —

    - the thread-order predecessor (per-thread prefixes are the
      "ideals" of Mathur/Pavlogiannis/Viswanathan's algorithm: a
      candidate's downset is always a union of thread prefixes);
    - for reads (plain {e and} atomic), the observed writer: the last
      write to the same cell before the read in trace order.  Pulling
      the writer into the downset is value preservation, and it is the
      whole of the ad-hoc-sync story — a spin loop's exit read observes
      the flag write, so any reordering keeping the read keeps the
      write, and with it everything the writer did first.  Lowered
      (atomic spin-lock) mutual exclusion is preserved the same way;
    - conservative library-sync requirements: a [Cv_wait_return] needs
      every earlier signal on its condition variable, a [Barrier_pass]
      every arrival of its generation, a [Sem_acquire] every earlier
      post, a [Join_return] the target's exit, and a thread's first
      event its [Spawn_ev];
    - for native lock acquires, the matching release — the one closure
      rule that is {e pairwise}: of any two in-downset acquires of the
      same lock, the earlier one's release must also be in (else the
      witness would acquire a held lock).

    {!closure} runs the fixpoint for one candidate pair over a reusable
    {!ideal} workspace and answers whether the pair is
    sync-preserving-concurrent: no closure rule forces either candidate
    event into its own downset.  The witness is the downset read off in
    trace order — a subsequence, so every read still meets its writer
    last and every sync operation keeps its recorded order. *)

open Arde_tir.Types

type t

val build : Arde_runtime.Event.t array -> t
(** Index one decoded section.  Events must be in recorded (trace)
    order; thread ids must be in [0, max_threads). *)

val n_events : t -> int
val n_threads : t -> int (* highest tid seen + 1 *)

val thread_of : t -> int -> int
val pos_of : t -> int -> int
(** Position of an event within its own thread's subsequence. *)

(** {1 Closure} *)

type ideal
(** Reusable closure workspace (frontiers, per-lock state).  One per
    predictor; {!closure} resets it. *)

val ideal : t -> ideal

type verdict =
  | Concurrent  (** the pair survives closure: a predicted race *)
  | Ordered  (** a closure rule forces one endpoint in — no witness *)
  | Budget_exceeded  (** closure stopped at the step budget (treated
                         as [Ordered] by callers: prediction stays
                         sound, never complete) *)

val closure : ideal -> e1:int -> e2:int -> budget:int -> verdict * int
(** [closure w ~e1 ~e2 ~budget] closes the downset seeded with the two
    events' thread prefixes and returns the verdict plus the number of
    events processed.  [e1] and [e2] are trace positions of two
    accesses by different threads; [budget] bounds processed events. *)

(** {1 Diagnostics} *)

val loc_of : t -> int -> loc option
(** Source location of an access event, [None] for sync events. *)
