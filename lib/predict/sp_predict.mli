(** SpPredict — sync-preserving race prediction over one recorded
    section (Mathur, Pavlogiannis, Viswanathan: "Optimal Prediction of
    Synchronization-Preserving Races").

    The input is the decoded event stream of a single seed; the output
    is the set of access pairs that race in {e some} correct reordering
    of that trace which keeps every synchronization operation and every
    read's observed writer — without re-executing the program.  The
    pipeline:

    + a single {b weak happens-before} pass over the stream computes
      per-thread sparse-epoch clocks ({!Arde_vclock.Vector_clock.m})
      closed under program order, observation (writer → read, plain and
      atomic — the edges the inferred ad-hoc sync lives on), spawn/join
      and the conservative library-sync joins, but {e not} lock
      release → acquire.  Conflicting same-cell plain accesses by
      different threads that this order leaves unordered become
      candidates — any pair it orders is unpredictable by construction,
      which prunes almost everything;
    + candidates are grouped by report context (base + unordered loc
      pair, the same key {!Report} dedups on) with a per-context
      attempt budget, nearest pairs first;
    + each attempted pair runs the {!Sp_trace.closure} fixpoint; the
      first [Concurrent] verdict per context becomes a predicted race.

    Prediction is {b sound} (every predicted pair has a witness
    reordering) and deliberately {b not complete}: the conservative
    sync requirements and the closure budget may miss predictable
    races.  The differential suite measures the gap against the
    16-seed sweep. *)

open Arde_tir.Types

type config = {
  suppress : string -> bool;
      (** bases the detector treats as synchronization (spin condition
          variables found by the instrumentation phase); accesses to
          them are never race candidates, matching the engine *)
  max_pairs_per_context : int;  (** closure attempts per context *)
  max_contexts : int;  (** distinct candidate contexts considered *)
  closure_budget : int;  (** events one closure run may process *)
}

val default_config : config
(** No suppression, 4 pairs per context, 4096 contexts, 200k-step
    closure budget. *)

type race = {
  p_base : string;
  p_idx : int;
  p_first_tid : int;
  p_first_loc : loc;
  p_first_write : bool;
  p_second_tid : int;
  p_second_loc : loc;
  p_second_write : bool;
}
(** Mirrors [Report.race]'s shape; [first] is the earlier access in
    the recorded trace. *)

type stats = {
  s_events : int;
  s_candidates : int;  (** unordered conflicting pairs collected *)
  s_contexts : int;  (** distinct contexts among them *)
  s_predicted : int;  (** contexts with a surviving witness *)
  s_closure_runs : int;
  s_closure_steps : int;  (** total events processed by closures *)
  s_budget_hits : int;  (** closures stopped by the step budget *)
  s_dropped_contexts : int;  (** contexts beyond [max_contexts] *)
}

val predict :
  ?config:config -> Arde_runtime.Event.t array -> race list * stats
(** Races in deterministic order: contexts in first-candidate (trace)
    order, one representative pair each. *)
