open Arde_tir.Types
module Event = Arde_runtime.Event
module Vc = Arde_vclock.Vector_clock

type config = {
  suppress : string -> bool;
  max_pairs_per_context : int;
  max_contexts : int;
  closure_budget : int;
}

let default_config =
  {
    suppress = (fun _ -> false);
    max_pairs_per_context = 4;
    max_contexts = 4096;
    closure_budget = 200_000;
  }

type race = {
  p_base : string;
  p_idx : int;
  p_first_tid : int;
  p_first_loc : loc;
  p_first_write : bool;
  p_second_tid : int;
  p_second_loc : loc;
  p_second_write : bool;
}

type stats = {
  s_events : int;
  s_candidates : int;
  s_contexts : int;
  s_predicted : int;
  s_closure_runs : int;
  s_closure_steps : int;
  s_budget_hits : int;
  s_dropped_contexts : int;
}

(* ------------------------------------------------------------------ *)
(* Candidate bookkeeping                                              *)

(* The last plain access per (cell, thread, kind) — one mutable slot
   each, so the steady state allocates nothing.  Only the nearest
   predecessor is kept: for a racy context the nearest pair is also the
   one with the smallest downset, hence the cheapest closure. *)
type slot = { mutable s_ev : int; mutable s_clk : int; mutable s_loc : loc }

type cell = {
  mutable writer_vc : Vc.t;  (* the last write's release clock *)
  mutable has_writer : bool;
  mutable pw : (int * slot) list;  (* per-tid last plain write *)
  mutable pr : (int * slot) list;  (* per-tid last plain read *)
}

type cand = {
  c_e1 : int;
  c_t1 : int;
  c_l1 : loc;
  c_w1 : bool;
  c_e2 : int;
  c_t2 : int;
  c_l2 : loc;
  c_w2 : bool;
  c_idx : int;
}

type ctx_entry = {
  x_base : string;
  x_lo : loc;
  x_hi : loc;
  mutable x_cands : cand list;  (* reversed; oldest last *)
  mutable x_n : int;
}

let context_key l1 l2 = if compare_loc l1 l2 <= 0 then (l1, l2) else (l2, l1)

(* ------------------------------------------------------------------ *)

let predict ?(config = default_config) events =
  let tr = Sp_trace.build events in
  let n = Array.length events in
  let nthreads = max_threads in
  let vcs = Array.init nthreads (fun t -> Vc.make_mut ~owner:t nthreads) in
  let snaps = Array.make nthreads Vc.bottom in
  let snap_ok = Array.make nthreads true in
  let exit_vcs = Array.make nthreads Vc.bottom in
  let tick t =
    Vc.mtick vcs.(t) t;
    snap_ok.(t) <- false
  in
  let started t = if Vc.mget vcs.(t) t = 0 then tick t in
  let join t c = if Vc.mjoin_changed vcs.(t) c then snap_ok.(t) <- false in
  let snap t =
    if snap_ok.(t) then snaps.(t)
    else begin
      let s = Vc.snapshot vcs.(t) in
      snaps.(t) <- s;
      snap_ok.(t) <- true;
      s
    end
  in
  let table_join tbl key t =
    let cur = Option.value ~default:Vc.bottom (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (Vc.join cur (snap t));
    tick t
  in
  let table_get tbl key =
    Option.value ~default:Vc.bottom (Hashtbl.find_opt tbl key)
  in
  let cv_vc : (string * int, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let sem_vc : (string * int, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let barrier_vc : (string * int * int, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let cells : (string * int, cell) Hashtbl.t = Hashtbl.create 64 in
  let cell base idx =
    let key = (base, idx) in
    match Hashtbl.find_opt cells key with
    | Some c -> c
    | None ->
        let c = { writer_vc = Vc.bottom; has_writer = false; pw = []; pr = [] } in
        Hashtbl.replace cells key c;
        c
  in
  let sup_cache : (string, bool) Hashtbl.t = Hashtbl.create 16 in
  let suppressed base =
    match Hashtbl.find_opt sup_cache base with
    | Some s -> s
    | None ->
        let s = config.suppress base in
        Hashtbl.replace sup_cache base s;
        s
  in
  (* contexts in first-seen order *)
  let ctx_tbl : (string * loc * loc, ctx_entry) Hashtbl.t = Hashtbl.create 32 in
  let ctx_order = ref [] in
  let n_cands = ref 0 in
  let dropped = ref 0 in
  let candidate ~base ~idx ~e1 ~t1 ~l1 ~w1 ~e2 ~t2 ~l2 ~w2 =
    let lo, hi = context_key l1 l2 in
    let key = (base, lo, hi) in
    match Hashtbl.find_opt ctx_tbl key with
    | Some e ->
        if e.x_n < config.max_pairs_per_context then begin
          e.x_cands <-
            { c_e1 = e1; c_t1 = t1; c_l1 = l1; c_w1 = w1; c_e2 = e2;
              c_t2 = t2; c_l2 = l2; c_w2 = w2; c_idx = idx }
            :: e.x_cands;
          e.x_n <- e.x_n + 1;
          incr n_cands
        end
    | None ->
        if Hashtbl.length ctx_tbl >= config.max_contexts then incr dropped
        else begin
          let e =
            { x_base = base; x_lo = lo; x_hi = hi;
              x_cands =
                [ { c_e1 = e1; c_t1 = t1; c_l1 = l1; c_w1 = w1; c_e2 = e2;
                    c_t2 = t2; c_l2 = l2; c_w2 = w2; c_idx = idx } ];
              x_n = 1 }
          in
          Hashtbl.replace ctx_tbl key e;
          ctx_order := e :: !ctx_order;
          incr n_cands
        end
  in
  (* [slot] ordered before the current event of [t2] under the weak
     order iff t2's clock has absorbed the slot's local time *)
  let unordered t2 t1 clk1 = Vc.mget vcs.(t2) t1 < clk1 in
  let update slots tid ev loc clk =
    match List.assq_opt tid slots with
    | Some s ->
        s.s_ev <- ev;
        s.s_clk <- clk;
        s.s_loc <- loc;
        None
    | None -> Some ((tid, { s_ev = ev; s_clk = clk; s_loc = loc }) :: slots)
  in
  for i = 0 to n - 1 do
    match events.(i) with
    | Event.Read { tid; base; idx; loc; kind; _ } ->
        started tid;
        let c = cell base idx in
        (* The candidate scan runs BEFORE this read's own observation
           edge is absorbed: a candidate pair is tested for ordering by
           its prefixes alone — the closure likewise never consults the
           candidate events' own requirements (they are co-enabled, not
           executed).  Joining first would wrongly prune every
           write→read race in which the read observed the racing
           write. *)
        if kind = Event.Plain && not (suppressed base) then begin
          List.iter
            (fun (wt, (s : slot)) ->
              if wt <> tid && unordered tid wt s.s_clk then
                candidate ~base ~idx ~e1:s.s_ev ~t1:wt ~l1:s.s_loc ~w1:true
                  ~e2:i ~t2:tid ~l2:loc ~w2:false)
            c.pw;
          match update c.pr tid i loc (Vc.mget vcs.(tid) tid) with
          | Some slots -> c.pr <- slots
          | None -> ()
        end;
        (* observation: the read's thread absorbs its writer's clock —
           the edge inferred ad-hoc sync (spin loops, lowered locks)
           rides on, so it applies to atomics too *)
        if c.has_writer then join tid c.writer_vc
    | Event.Write { tid; base; idx; loc; kind; _ } ->
        started tid;
        let c = cell base idx in
        if kind = Event.Plain && not (suppressed base) then begin
          let clk = Vc.mget vcs.(tid) tid in
          List.iter
            (fun (wt, (s : slot)) ->
              if wt <> tid && unordered tid wt s.s_clk then
                candidate ~base ~idx ~e1:s.s_ev ~t1:wt ~l1:s.s_loc ~w1:true
                  ~e2:i ~t2:tid ~l2:loc ~w2:true)
            c.pw;
          List.iter
            (fun (rt, (s : slot)) ->
              if rt <> tid && unordered tid rt s.s_clk then
                candidate ~base ~idx ~e1:s.s_ev ~t1:rt ~l1:s.s_loc ~w1:false
                  ~e2:i ~t2:tid ~l2:loc ~w2:true)
            c.pr;
          match update c.pw tid i loc clk with
          | Some slots -> c.pw <- slots
          | None -> ()
        end;
        (* every write is an observation source, whatever its kind *)
        c.writer_vc <- snap tid;
        c.has_writer <- true;
        tick tid
    | Event.Thread_start { tid } -> started tid
    | Event.Spawn_ev { parent; child; _ } ->
        started parent;
        Vc.mjoin_m vcs.(child) vcs.(parent);
        snap_ok.(child) <- false;
        tick child;
        tick parent
    | Event.Thread_exit { tid } ->
        started tid;
        exit_vcs.(tid) <- snap tid
    | Event.Join_return { tid; target; _ } ->
        started tid;
        join tid exit_vcs.(target)
    | Event.Cv_signal { tid; base; idx; _ } ->
        started tid;
        table_join cv_vc (base, idx) tid
    | Event.Cv_wait_return { tid; base; idx; _ } ->
        started tid;
        join tid (table_get cv_vc (base, idx))
    | Event.Barrier_arrive { tid; base; idx; generation; _ } ->
        started tid;
        table_join barrier_vc (base, idx, generation) tid
    | Event.Barrier_pass { tid; base; idx; generation; _ } ->
        started tid;
        join tid (table_get barrier_vc (base, idx, generation))
    | Event.Sem_post_ev { tid; base; idx; _ } ->
        started tid;
        table_join sem_vc (base, idx) tid
    | Event.Sem_acquire { tid; base; idx; _ } ->
        started tid;
        join tid (table_get sem_vc (base, idx))
    (* native lock order is deliberately absent from the weak order —
       reorderings may permute critical sections; the closure's lock
       rule enforces mutual exclusion instead *)
    | Event.Lock_acq { tid; _ } | Event.Lock_rel { tid; _ } -> started tid
    | Event.Cv_wait_begin _ | Event.Spin_enter _ | Event.Spin_exit _ -> ()
  done;
  (* closure pass: contexts in discovery order, nearest pairs first *)
  let w = Sp_trace.ideal tr in
  let runs = ref 0 and steps = ref 0 and budget_hits = ref 0 in
  let races =
    List.filter_map
      (fun e ->
        let rec try_cands = function
          | [] -> None
          | c :: rest -> (
              incr runs;
              let verdict, used =
                Sp_trace.closure w ~e1:c.c_e1 ~e2:c.c_e2
                  ~budget:config.closure_budget
              in
              steps := !steps + used;
              match verdict with
              | Sp_trace.Concurrent ->
                  Some
                    {
                      p_base = e.x_base;
                      p_idx = c.c_idx;
                      p_first_tid = c.c_t1;
                      p_first_loc = c.c_l1;
                      p_first_write = c.c_w1;
                      p_second_tid = c.c_t2;
                      p_second_loc = c.c_l2;
                      p_second_write = c.c_w2;
                    }
              | Sp_trace.Ordered -> try_cands rest
              | Sp_trace.Budget_exceeded ->
                  incr budget_hits;
                  try_cands rest)
        in
        try_cands (List.rev e.x_cands))
      (List.rev !ctx_order)
  in
  ( races,
    {
      s_events = n;
      s_candidates = !n_cands;
      s_contexts = List.length !ctx_order;
      s_predicted = List.length races;
      s_closure_runs = !runs;
      s_closure_steps = !steps;
      s_budget_hits = !budget_hits;
      s_dropped_contexts = !dropped;
    } )
