open Arde_tir.Types
module Event = Arde_runtime.Event

(* Growable int array — thread event lists are built in one pass. *)
module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 8 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let a = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 a 0 v.n;
      v.a <- a
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1
end

type t = {
  n : int;
  tid : int array;  (* per event: thread *)
  tpos : int array;  (* per event: position within its thread *)
  threads : int array array;  (* per thread: event indices in order *)
  nthreads : int;
  req : int array;
      (* single required predecessor: the observed writer for reads,
         the target's exit for joins; -1 when none *)
  multi : int list array;
      (* conservative sync requirements with several predecessors
         (signals before a wait return, arrivals of a barrier
         generation, posts before a semaphore acquire); [] mostly.
         Lists are shared suffix-free: consumers store the producer
         table's current head, so total extra memory is one pointer
         per consumer. *)
  spawn_of : int array;  (* per thread: its Spawn_ev index, or -1 *)
  lock_key : int array;  (* per event: interned lock id for acquires, -1 *)
  lock_rel : int array;
      (* per acquire: matching release event, -1 if never released *)
  locs : loc option array;  (* access events only *)
}

let n_events t = t.n
let n_threads t = t.nthreads
let thread_of t i = t.tid.(i)
let pos_of t i = t.tpos.(i)
let loc_of t i = t.locs.(i)

let build (events : Event.t array) =
  let n = Array.length events in
  let tid = Array.make n 0 in
  let tpos = Array.make n 0 in
  let req = Array.make n (-1) in
  let multi = Array.make n [] in
  let lock_key = Array.make n (-1) in
  let lock_rel = Array.make n (-1) in
  let locs = Array.make n None in
  let spawn_of = Array.make max_threads (-1) in
  let thr = Array.init max_threads (fun _ -> Vec.create ()) in
  let nthreads = ref 0 in
  (* last write per cell, for observation edges *)
  let last_write : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  (* accumulated producer lists *)
  let cv_signals : (string * int, int list) Hashtbl.t = Hashtbl.create 8 in
  let barrier_arrives : (string * int * int, int list) Hashtbl.t =
    Hashtbl.create 8
  in
  let sem_posts : (string * int, int list) Hashtbl.t = Hashtbl.create 8 in
  let exits = Array.make max_threads (-1) in
  (* native locks: interned (base, idx) keys and per-(tid, lock)
     pending acquire *)
  let lock_ids : (string * int, int) Hashtbl.t = Hashtbl.create 8 in
  let next_lock = ref 0 in
  let pending_acq : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  let lock_id key =
    match Hashtbl.find_opt lock_ids key with
    | Some id -> id
    | None ->
        let id = !next_lock in
        incr next_lock;
        Hashtbl.replace lock_ids key id;
        id
  in
  let prior tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  for i = 0 to n - 1 do
    let ev = events.(i) in
    let t = Event.tid_of ev in
    let t = if t < 0 || t >= max_threads then 0 else t in
    tid.(i) <- t;
    tpos.(i) <- (thr.(t)).Vec.n;
    Vec.push thr.(t) i;
    if t >= !nthreads then nthreads := t + 1;
    match ev with
    | Event.Read { base; idx; loc; _ } ->
        locs.(i) <- Some loc;
        (match Hashtbl.find_opt last_write (base, idx) with
        | Some w -> req.(i) <- w
        | None -> ())
    | Event.Write { base; idx; loc; _ } ->
        locs.(i) <- Some loc;
        Hashtbl.replace last_write (base, idx) i
    | Event.Lock_acq { tid = lt; base; idx; _ } ->
        let id = lock_id (base, idx) in
        lock_key.(i) <- id;
        Hashtbl.replace pending_acq (lt, id) i
    | Event.Lock_rel { tid = lt; base; idx; _ } -> (
        let id = lock_id (base, idx) in
        match Hashtbl.find_opt pending_acq (lt, id) with
        | Some a ->
            lock_rel.(a) <- i;
            Hashtbl.remove pending_acq (lt, id)
        | None -> ())
    | Event.Cv_signal { base; idx; _ } ->
        Hashtbl.replace cv_signals (base, idx) (i :: prior cv_signals (base, idx))
    | Event.Cv_wait_return { base; idx; _ } ->
        multi.(i) <- prior cv_signals (base, idx)
    | Event.Barrier_arrive { base; idx; generation; _ } ->
        Hashtbl.replace barrier_arrives
          (base, idx, generation)
          (i :: prior barrier_arrives (base, idx, generation))
    | Event.Barrier_pass { base; idx; generation; _ } ->
        multi.(i) <- prior barrier_arrives (base, idx, generation)
    | Event.Sem_post_ev { base; idx; _ } ->
        Hashtbl.replace sem_posts (base, idx) (i :: prior sem_posts (base, idx))
    | Event.Sem_acquire { base; idx; _ } ->
        multi.(i) <- prior sem_posts (base, idx)
    | Event.Spawn_ev { child; _ } ->
        if child >= 0 && child < max_threads then spawn_of.(child) <- i
    | Event.Join_return { target; _ } ->
        if target >= 0 && target < max_threads && exits.(target) >= 0 then
          req.(i) <- exits.(target)
    | Event.Thread_exit { tid = et } ->
        if et >= 0 && et < max_threads then exits.(et) <- i
    | Event.Cv_wait_begin _ | Event.Thread_start _ | Event.Spin_enter _
    | Event.Spin_exit _ ->
        ()
  done;
  let nthreads = max 1 !nthreads in
  {
    n;
    tid;
    tpos;
    threads =
      Array.init nthreads (fun t ->
          Array.sub (thr.(t)).Vec.a 0 (thr.(t)).Vec.n);
    nthreads;
    req;
    multi;
    spawn_of = Array.sub spawn_of 0 nthreads;
    lock_key;
    lock_rel;
    locs;
  }

(* ------------------------------------------------------------------ *)
(* Closure over per-thread ideals                                     *)

type ideal = {
  tr : t;
  frontier : int array;  (* per thread: events of its prefix in the set *)
  touched : Vec.t;  (* threads whose frontier moved, for cheap reset *)
  work : Vec.t;  (* worklist of (thread, upto) pairs, interleaved *)
  lock_max : (int, int) Hashtbl.t;
      (* per lock: the latest in-set acquire.  Invariant: every other
         in-set acquire of the lock already has its release required. *)
}

let ideal tr =
  {
    tr;
    frontier = Array.make tr.nthreads 0;
    touched = Vec.create ();
    work = Vec.create ();
    lock_max = Hashtbl.create 8;
  }

type verdict = Concurrent | Ordered | Budget_exceeded

exception Infeasible
exception Out_of_budget

(* The fixpoint is an explicit worklist (a recursive formulation would
   recurse as deep as the longest requirement chain — trace-length in
   the worst case).  Each worklist entry raises one thread's frontier;
   every event is processed exactly once because the frontier is bumped
   before its window is walked. *)
let closure w ~e1 ~e2 ~budget =
  let tr = w.tr in
  (* reset the workspace *)
  for i = 0 to w.touched.Vec.n - 1 do
    w.frontier.(w.touched.Vec.a.(i)) <- 0
  done;
  w.touched.Vec.n <- 0;
  w.work.Vec.n <- 0;
  Hashtbl.reset w.lock_max;
  let t1 = tr.tid.(e1) and p1 = tr.tpos.(e1) in
  let t2 = tr.tid.(e2) and p2 = tr.tpos.(e2) in
  let steps = ref 0 in
  let want t p =
    if p > w.frontier.(t) then begin
      Vec.push w.work t;
      Vec.push w.work p
    end
  in
  let need i = want tr.tid.(i) (tr.tpos.(i) + 1) in
  let acquire i =
    let l = tr.lock_key.(i) in
    match Hashtbl.find_opt w.lock_max l with
    | None -> Hashtbl.replace w.lock_max l i
    | Some a ->
        let earlier, later = if a < i then (a, i) else (i, a) in
        Hashtbl.replace w.lock_max l later;
        (* the earlier critical section must close before the later one
           opens; a lock never released pins its holder's whole tail *)
        let r = tr.lock_rel.(earlier) in
        if r < 0 then raise_notrace Infeasible else need r
  in
  let raise_to t p =
    let cur = w.frontier.(t) in
    if p > cur then begin
      if (t = t1 && p > p1) || (t = t2 && p > p2) then raise_notrace Infeasible;
      if cur = 0 then begin
        Vec.push w.touched t;
        if t < Array.length tr.spawn_of && tr.spawn_of.(t) >= 0 then
          need tr.spawn_of.(t)
      end;
      w.frontier.(t) <- p;
      let evs = tr.threads.(t) in
      for k = cur to p - 1 do
        let i = evs.(k) in
        incr steps;
        if !steps > budget then raise_notrace Out_of_budget;
        if tr.req.(i) >= 0 then need tr.req.(i);
        List.iter need tr.multi.(i);
        if tr.lock_key.(i) >= 0 then acquire i
      done
    end
  in
  let run () =
    (* the candidate events' own threads must have been spawned for the
       pair to be co-enabled, even when their prefixes are empty *)
    if t1 < Array.length tr.spawn_of && tr.spawn_of.(t1) >= 0 then
      need tr.spawn_of.(t1);
    if t2 < Array.length tr.spawn_of && tr.spawn_of.(t2) >= 0 then
      need tr.spawn_of.(t2);
    want t1 p1;
    want t2 p2;
    while w.work.Vec.n > 0 do
      let p = w.work.Vec.a.(w.work.Vec.n - 1) in
      let t = w.work.Vec.a.(w.work.Vec.n - 2) in
      w.work.Vec.n <- w.work.Vec.n - 2;
      raise_to t p
    done
  in
  match run () with
  | () -> (Concurrent, !steps)
  | exception Infeasible -> (Ordered, !steps)
  | exception Out_of_budget -> (Budget_exceeded, !steps)
