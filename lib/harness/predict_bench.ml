(* The prediction benchmark: difference a Predict analysis (two
   recorded executions plus the sync-preserving closure) against the
   16-seed sweep it stands in for, on the racy catalog for coverage,
   the race-free catalog for soundness, and swaptions for cost.  Feeds
   BENCH_predict.json and the CI gate. *)

module Config = Arde.Config
module Driver = Arde.Driver
module Options = Arde.Options
module Report = Arde.Report
module J = Arde.Json

type row = {
  p_workload : string;
  p_mode : string;
  p_racy : bool;
  p_sweep_execs : int;
  p_sweep_contexts : int;
  p_sweep_s : float;
  p_predict_execs : int;
  p_predict_contexts : int;
  p_predicted_new : int;
  p_predicted_tagged : int;
  p_predicted_fp : int;
  p_predict_s : float;
  p_missed : int;
}

type timing = {
  t_workload : string;
  t_mode : string;
  t_sweep_execs : int;
  t_sweep_s : float;
  t_predict_s : float;
  t_ratio : float;
}

type summary = {
  s_sweep_execs : int;
  s_sweep_contexts : int;
  s_predict_execs : int;
  s_predict_contexts : int;
  s_sweep_execs_per_race : float;
  s_predict_execs_per_race : float;
  s_reduction : float;
}

type t = { rows : row list; timing : timing; summary : summary }

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

(* Median wall time of [repeats] runs after one discarded warm-up. *)
let timed ~repeats run =
  let times = ref [] and last = ref None in
  for rep = 0 to repeats do
    let t0 = Unix.gettimeofday () in
    let r = run () in
    let t = Unix.gettimeofday () -. t0 in
    if rep > 0 then times := t :: !times;
    last := Some r
  done;
  (median !times, Option.get !last)

(* A context key matching the merge's identity: base plus the unordered
   pair of access locations. *)
let context_keys report =
  List.map
    (fun r ->
      let a = r.Report.r_first_loc and b = r.Report.r_second_loc in
      let lo, hi = if compare a b <= 0 then (a, b) else (b, a) in
      (r.Report.r_base, lo, hi))
    (Report.races report)

let bench_case ~fuel ~seeds (case : Arde_workloads.Racey.case) mode =
  let options = Options.make ~seeds ~fuel () in
  let input = Arde.Input.Program case.program in
  let t0 = Unix.gettimeofday () in
  let sweep = Arde.detect ~ctx:(Driver.ctx ~options ()) ~mode input in
  let sweep_s = Unix.gettimeofday () -. t0 in
  let poptions = Options.with_analysis Options.Predict options in
  let t0 = Unix.gettimeofday () in
  let pred = Arde.detect ~ctx:(Driver.ctx ~options:poptions ()) ~mode input in
  let predict_s = Unix.gettimeofday () -. t0 in
  let pred_keys = context_keys pred.Driver.merged in
  let sweep_keys = context_keys sweep.Driver.merged in
  let missed =
    List.filter (fun k -> not (List.mem k pred_keys)) sweep_keys
  in
  let tagged =
    List.filter
      (fun r -> r.Report.r_predicted)
      (Report.races pred.Driver.merged)
  in
  (* A predicted false positive is a predicted context the 16-seed
     sweep never reports AND that ground truth does not vouch for.  A
     predicted context the sweep also finds (even a detector false
     alarm, like double-checked locking under lockset modes) is
     prediction agreeing with the detector it stands in for; a fresh
     context on a ground-truth racy base is predictive headroom — a
     real race the sixteen schedules happened to miss. *)
  let truth_bases =
    match case.expectation with
    | Arde.Classify.Racy bases -> bases
    | _ -> []
  in
  let predicted_fp =
    List.filter
      (fun r ->
        let a = r.Report.r_first_loc and b = r.Report.r_second_loc in
        let lo, hi = if compare a b <= 0 then (a, b) else (b, a) in
        (not (List.mem (r.Report.r_base, lo, hi) sweep_keys))
        && not (List.mem r.Report.r_base truth_bases))
      tagged
  in
  {
    p_workload = case.name;
    p_mode = Config.mode_name mode;
    p_racy =
      (match case.expectation with
      | Arde.Classify.Racy _ -> true
      | _ -> false);
    p_sweep_execs = List.length sweep.Driver.runs;
    p_sweep_contexts = Report.n_contexts sweep.Driver.merged;
    p_sweep_s = sweep_s;
    p_predict_execs = List.length pred.Driver.runs;
    p_predict_contexts = Report.n_contexts pred.Driver.merged;
    p_predicted_new =
      (match pred.Driver.prediction with
      | Some p -> p.Driver.pr_new_contexts
      | None -> 0);
    p_predicted_tagged = List.length tagged;
    p_predicted_fp = List.length predicted_fp;
    p_predict_s = predict_s;
    p_missed = List.length missed;
  }

(* The cost half runs where the "two executions instead of sixteen"
   claim is priced: a compute-bound PARSEC workload.  The predict side
   consumes a one-seed recording — replay plus closure, zero program
   executions — against the full live sweep. *)
let timing_workload = "swaptions"
let timing_mode = Config.Nolib_spin 7

let time_parsec ~repeats ~fuel ~seeds =
  match Arde_workloads.Parsec.find timing_workload with
  | None -> failwith "bench predict: no workload swaptions"
  | Some (_info, program) ->
      let options = Options.make ~seeds ~fuel () in
      let input = Arde.Input.Program program in
      let sweep_s, sweep =
        timed ~repeats (fun () ->
            Arde.detect ~ctx:(Driver.ctx ~options ()) ~mode:timing_mode input)
      in
      let record_ctx =
        Driver.ctx ~options:(Options.make ~seeds:[ List.hd seeds ] ~fuel ()) ()
      in
      let recording =
        match
          Arde.record ~ctx:record_ctx ~mode:timing_mode ~detect:false
            ~source:timing_workload input
        with
        | Ok r -> r
        | Error e -> failwith (Printf.sprintf "record swaptions: %s" e)
      in
      let recorded =
        match Arde.Recorded.of_string recording.Driver.rec_trace with
        | Ok r -> r
        | Error e -> failwith (Printf.sprintf "load swaptions: %s" e)
      in
      let pctx =
        Driver.ctx ~options:(Options.with_analysis Options.Predict options) ()
      in
      let predict_s, _ =
        timed ~repeats (fun () ->
            Arde.detect ~ctx:pctx (Arde.Input.Recorded_trace recorded))
      in
      {
        t_workload = timing_workload;
        t_mode = Config.mode_name timing_mode;
        t_sweep_execs = List.length sweep.Driver.runs;
        t_sweep_s = sweep_s;
        t_predict_s = predict_s;
        t_ratio = (if sweep_s > 0. then predict_s /. sweep_s else 0.);
      }

let summarize rows =
  let racy = List.filter (fun r -> r.p_racy) rows in
  let sum f = List.fold_left (fun a r -> a + f r) 0 racy in
  let se = sum (fun r -> r.p_sweep_execs) in
  let sc = sum (fun r -> r.p_sweep_contexts) in
  let pe = sum (fun r -> r.p_predict_execs) in
  let pc = sum (fun r -> r.p_predict_contexts) in
  let per e c = if c = 0 then 0. else float_of_int e /. float_of_int c in
  let s = per se sc and p = per pe pc in
  {
    s_sweep_execs = se;
    s_sweep_contexts = sc;
    s_predict_execs = pe;
    s_predict_contexts = pc;
    s_sweep_execs_per_race = s;
    s_predict_execs_per_race = p;
    s_reduction = (if p > 0. then s /. p else 0.);
  }

(* One case per racy family that manifests within the 16-seed budget
   (racy_rare_path's x-race never does, so the sweep side would have
   nothing extra to cover), plus repeats at other thread counts for the
   families where the schedule space grows with threads. *)
let default_racy =
  [
    "racy_counter/2";
    "racy_counter/16";
    "racy_flag_no_loop/2";
    "racy_mixed_locks/4";
    "racy_lock_ordered_w/2";
    "racy_lock_ordered_r/2";
    "racy_read_write/8";
    "racy_adhoc_broken/2";
    "racy_after_join_wrong/2";
    "racy_barrier_missing/4";
  ]

(* Library sync plus the ad-hoc constructs the spin instrumentation
   vouches for — the rows where a predicted race would be a predicted
   false positive. *)
let default_race_free =
  [
    "lock_counter/4";
    "cv_handoff/2";
    "barrier_phases/4";
    "lock_flag_spin/2";
    "guarded_queue/3";
    "double_checked_init/4";
  ]

let modes = Config.all_table1_modes

let run ?(repeats = 2) ?(racy = default_racy) ?(race_free = default_race_free)
    ?(fuel = 400_000) ?(parsec_fuel = 150_000)
    ?(seeds = List.init 16 (fun i -> i + 1)) () =
  let case name =
    match Arde_workloads.Racey.find name with
    | Some c -> c
    | None -> failwith (Printf.sprintf "bench predict: no case %s" name)
  in
  let rows =
    List.concat_map
      (fun name ->
        let c = case name in
        List.map (fun mode -> bench_case ~fuel ~seeds c mode) modes)
      (racy @ race_free)
  in
  let timing = time_parsec ~repeats ~fuel:parsec_fuel ~seeds in
  { rows; timing; summary = summarize rows }

let to_json t =
  J.Obj
    [
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("workload", J.String r.p_workload);
                   ("mode", J.String r.p_mode);
                   ("racy", J.Bool r.p_racy);
                   ("sweep_execs", J.Int r.p_sweep_execs);
                   ("sweep_contexts", J.Int r.p_sweep_contexts);
                   ("sweep_s", J.Float r.p_sweep_s);
                   ("predict_execs", J.Int r.p_predict_execs);
                   ("predict_contexts", J.Int r.p_predict_contexts);
                   ("predicted_new", J.Int r.p_predicted_new);
                   ("predicted_tagged", J.Int r.p_predicted_tagged);
                   ("predicted_fp", J.Int r.p_predicted_fp);
                   ("predict_s", J.Float r.p_predict_s);
                   ("missed", J.Int r.p_missed);
                 ])
             t.rows) );
      ( "timing",
        J.Obj
          [
            ("workload", J.String t.timing.t_workload);
            ("mode", J.String t.timing.t_mode);
            ("sweep_execs", J.Int t.timing.t_sweep_execs);
            ("sweep_s", J.Float t.timing.t_sweep_s);
            ("predict_s", J.Float t.timing.t_predict_s);
            ("ratio", J.Float t.timing.t_ratio);
          ] );
      ( "summary",
        J.Obj
          [
            ("sweep_execs", J.Int t.summary.s_sweep_execs);
            ("sweep_contexts", J.Int t.summary.s_sweep_contexts);
            ("predict_execs", J.Int t.summary.s_predict_execs);
            ("predict_contexts", J.Int t.summary.s_predict_contexts);
            ("sweep_execs_per_race", J.Float t.summary.s_sweep_execs_per_race);
            ( "predict_execs_per_race",
              J.Float t.summary.s_predict_execs_per_race );
            ("reduction", J.Float t.summary.s_reduction);
          ] );
    ]

let render t =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "%-24s %-16s %4s %8s %8s %8s %6s %4s %6s\n" "workload"
       "mode" "racy" "sweep16" "predict" "pred(+)" "tagged" "fp" "missed");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-24s %-16s %4s %8d %8d %8d %6d %4d %6d\n"
           r.p_workload r.p_mode
           (if r.p_racy then "yes" else "no")
           r.p_sweep_contexts r.p_predict_contexts r.p_predicted_new
           r.p_predicted_tagged r.p_predicted_fp r.p_missed))
    t.rows;
  Buffer.add_string b
    (Printf.sprintf
       "\n%s under %s: sweep %d seeds %.3fs, predict-from-trace %.3fs \
        (%.3fx)\n"
       t.timing.t_workload t.timing.t_mode t.timing.t_sweep_execs
       t.timing.t_sweep_s t.timing.t_predict_s t.timing.t_ratio);
  Buffer.add_string b
    (Printf.sprintf
       "racy rows: %d execs / %d contexts swept (%.2f per race) vs %d / %d \
        predicted (%.2f per race): %.2fx fewer executions per race\n"
       t.summary.s_sweep_execs t.summary.s_sweep_contexts
       t.summary.s_sweep_execs_per_race t.summary.s_predict_execs
       t.summary.s_predict_contexts t.summary.s_predict_execs_per_race
       t.summary.s_reduction);
  Buffer.contents b

let max_predict_ratio = 0.25
let min_reduction = 4.0

let gate t =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun r ->
      if r.p_racy && r.p_missed > 0 then
        fail "%s under %s: %d sweep context(s) not covered by the predict run"
          r.p_workload r.p_mode r.p_missed;
      if r.p_predicted_fp > 0 then
        fail
          "%s under %s: %d predicted false positive(s) (outside both the \
           sweep's findings and ground truth)"
          r.p_workload r.p_mode r.p_predicted_fp)
    t.rows;
  if t.timing.t_ratio > max_predict_ratio then
    fail
      "%s under %s: predict-from-trace at %.3fx of the sweep exceeds the \
       %.2fx gate"
      t.timing.t_workload t.timing.t_mode t.timing.t_ratio max_predict_ratio;
  if t.summary.s_reduction < min_reduction then
    fail "executions-per-race reduction %.2fx is below the %.1fx gate"
      t.summary.s_reduction min_reduction;
  List.rev !failures
