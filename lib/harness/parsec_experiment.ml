(* Tables 3-6: the PARSEC 2.0 part of the evaluation.

   Table 3 — program inventory (model, LOC, synchronization primitives).
   Table 4 — racy contexts for the programs without ad-hoc sync.
   Table 5 — racy contexts for the programs with ad-hoc sync.
   Table 6 — the whole set ("universal race detector" summary).

   Racy contexts are averaged over the seeds, capped at 1000 per run,
   exactly as the paper reports them. *)

module Parsec = Arde_workloads.Parsec
module Config = Arde.Config
module Driver = Arde.Driver

let modes = Config.all_table1_modes

let parsec_options (info : Parsec.info) =
  (* integration-style runs, per the paper *)
  Arde.Options.make ~sensitivity:Arde.Msm.Long_running
    ~lower_style:info.Parsec.nolib_style ~fuel:4_000_000 ()

type row = {
  info : Parsec.info;
  loc : int;
  contexts : (Config.mode * float) list;
  capped : (Config.mode * bool) list;
  bad : (Config.mode * Driver.seed_outcome) list;
      (* any run that did not finish cleanly *)
}

let run_one ?(seeds = [ 1; 2; 3; 4; 5 ]) ?jobs (info, program) =
  let options = Arde.Options.with_seeds seeds (parsec_options info) in
  let options =
    match jobs with
    | None -> options
    | Some j -> Arde.Options.with_jobs j options
  in
  let per_mode =
    List.map
      (fun mode ->
        let result =
          Driver.run ~ctx:(Driver.ctx ~options ()) ~mode
            (Arde.Input.Program program)
        in
        let any_capped =
          List.exists (fun s -> s.Driver.sr_capped) result.Driver.runs
        in
        (mode, Driver.mean_contexts result, any_capped,
         Driver.any_bad_outcome result))
      modes
  in
  {
    info;
    loc = Parsec.loc_of program;
    contexts = List.map (fun (m, c, _, _) -> (m, c)) per_mode;
    capped = List.map (fun (m, _, c, _) -> (m, c)) per_mode;
    bad =
      List.filter_map
        (fun (m, _, _, o) -> Option.map (fun o -> (m, o)) o)
        per_mode;
  }

let context_cell row mode =
  let v = List.assoc mode row.contexts in
  if List.assoc mode row.capped then "1000" else Arde_util.Table.cell_float v

let mark b = if b then "x" else "-"

let table3 ?(programs = Parsec.all ()) () =
  let t =
    Arde_util.Table.create
      [ "Program"; "Model"; "LOC"; "CVs"; "Locks"; "Barriers"; "Ad-hoc" ]
  in
  List.iter
    (fun (info, program) ->
      Arde_util.Table.add_row t
        [
          info.Parsec.pname;
          info.Parsec.model;
          string_of_int (Parsec.loc_of program);
          mark info.Parsec.uses_cvs;
          mark info.Parsec.uses_locks;
          mark info.Parsec.uses_barriers;
          mark info.Parsec.uses_adhoc;
        ])
    programs;
  Arde_util.Table.render t

let warnings rows =
  List.concat_map
    (fun row ->
      List.map
        (fun (m, o) ->
          Format.asprintf "WARNING: %s under %s: %a" row.info.Parsec.pname
            (Config.mode_name m) Driver.pp_seed_outcome o)
        row.bad)
    rows

let contexts_table rows =
  let t =
    Arde_util.Table.create
      ([ "Program"; "Model"; "LOC" ]
      @ List.map (fun m -> "H+ " ^ Config.mode_name m) modes)
  in
  List.iter
    (fun row ->
      Arde_util.Table.add_row t
        ([
           row.info.Parsec.pname;
           row.info.Parsec.model;
           string_of_int row.loc;
         ]
        @ List.map (fun m -> context_cell row m) modes))
    rows;
  Arde_util.Table.render t
  ^ String.concat "" (List.map (fun w -> w ^ "\n") (warnings rows))

let table4 ?seeds ?jobs () =
  let rows = List.map (run_one ?seeds ?jobs) (Parsec.without_adhoc ()) in
  (rows, contexts_table rows)

let table5 ?seeds ?jobs () =
  let rows = List.map (run_one ?seeds ?jobs) (Parsec.with_adhoc ()) in
  (rows, contexts_table rows)

let table6 ?seeds ?jobs () =
  let rows = List.map (run_one ?seeds ?jobs) (Parsec.all ()) in
  (rows, contexts_table rows)
