(** The prediction benchmark behind [bench predict].

    Prices {!Arde.Sp_predict} against the detector it is meant to
    replace executions of: for each racy catalog case × Table-1 mode,
    a full 16-seed sweep is compared with a [Predict] analysis that
    executes only {!Arde.Driver.predict_limit} seeds (recording them)
    and predicts sync-preserving races from the traces.  Three claims
    are gated:

    - {b Coverage}: on racy cases, every distinct racy context the
      16-seed sweep finds appears in the predict run's merged report
      (observed from the two recorded executions or predicted from
      their traces).
    - {b Soundness}: no predicted false positives — every
      [r_predicted] context either appears in the 16-seed sweep's
      report or sits on a ground-truth racy base.  The first arm makes
      the sweep the oracle (on cases like double-checked locking,
      where the dynamic detector itself raises a false alarm,
      prediction agreeing with the detector is correct differential
      behavior); the second admits predictive headroom — real races
      the sixteen schedules happened to miss.  On race-free cases the
      second arm is empty, so this is exactly "zero predicted false
      positives on race-free rows".
    - {b Cost}: predicting from a single recorded swaptions trace
      (no execution at all) takes at most a quarter of the 16-seed
      live sweep's wall clock, and across the racy rows the
      executions-per-race ratio drops by at least 4×.

    The result set is written to [BENCH_predict.json] by the [bench]
    executable; {!gate} is the CI smoke criterion. *)

type row = {
  p_workload : string;
  p_mode : string;
  p_racy : bool;  (** ground truth of the catalog case *)
  p_sweep_execs : int;  (** seeds the sweep actually ran *)
  p_sweep_contexts : int;
  p_sweep_s : float;
  p_predict_execs : int;  (** seeds the predict run executed (≤ 2) *)
  p_predict_contexts : int;  (** merged contexts, observed ∪ predicted *)
  p_predicted_new : int;  (** contexts prediction added beyond observation *)
  p_predicted_tagged : int;  (** merged races carrying [r_predicted] *)
  p_predicted_fp : int;
      (** predicted races whose context the sweep never reports and
          whose base ground truth does not vouch for *)
  p_predict_s : float;
  p_missed : int;  (** sweep contexts absent from the predict run *)
}

type timing = {
  t_workload : string;
  t_mode : string;
  t_sweep_execs : int;
  t_sweep_s : float;  (** full live sweep, median wall clock *)
  t_predict_s : float;
      (** [Predict] analysis over a one-seed recording: replay plus
          closure, zero program executions *)
  t_ratio : float;  (** predict / sweep *)
}

type summary = {
  s_sweep_execs : int;  (** total executions across racy rows *)
  s_sweep_contexts : int;
  s_predict_execs : int;
  s_predict_contexts : int;
  s_sweep_execs_per_race : float;
  s_predict_execs_per_race : float;
  s_reduction : float;  (** sweep / predict executions-per-race *)
}

type t = { rows : row list; timing : timing; summary : summary }

val run :
  ?repeats:int ->
  ?racy:string list ->
  ?race_free:string list ->
  ?fuel:int ->
  ?parsec_fuel:int ->
  ?seeds:int list ->
  unit ->
  t
(** Bench the default case set (ten racy cases spanning every family
    that manifests within the sweep, six race-free library and ad-hoc
    cases) under the four Table-1 modes, plus the swaptions timing
    row under nolib+spin(7).  Catalog rows are timed once; the
    swaptions row takes the median of [repeats] runs after a
    discarded warm-up.  [seeds] defaults to 1–16 (the sweep budget
    the predict run is differenced against). *)

val to_json : t -> Arde_util.Json.t
(** The BENCH_predict.json wire form. *)

val render : t -> string
(** Human-readable tables of the same rows. *)

val gate : t -> string list
(** CI failure messages, empty when the run passes: every racy row's
    sweep contexts covered by the predict run, zero predicted races
    outside the sweep's findings on any row, swaptions
    predict-from-trace within 0.25× of the live sweep, and an
    executions-per-race reduction of at least 4× across the racy
    rows. *)
