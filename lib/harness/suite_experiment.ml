(* Table 1 and Table 2: run the 120-case unit suite under each detector
   configuration and tally false alarms / missed races / failed /
   correct, exactly as the paper reports them. *)

module Racey = Arde_workloads.Racey
module Config = Arde.Config
module Classify = Arde.Classify
module Driver = Arde.Driver

type case_result = {
  case : Racey.case;
  verdict : Classify.verdict;
  outcome : Classify.outcome;
}

type mode_result = {
  mode : Config.mode;
  tally : Classify.tally;
  details : case_result list;
}

let suite_options =
  Arde.Options.make ~seeds:[ 1; 2; 3 ] ~fuel:400_000
    ~sensitivity:Arde.Msm.Short_running ()

let run_mode ?(options = suite_options) mode cases =
  let tally = Classify.tally_create () in
  let details =
    List.map
      (fun (c : Racey.case) ->
        let result =
          Driver.run ~ctx:(Driver.ctx ~options ()) ~mode
            (Arde.Input.Program c.Racey.program)
        in
        let verdict =
          Classify.classify c.Racey.expectation
            ~reported:(Driver.racy_bases result)
        in
        let outcome = Classify.outcome_of verdict in
        Classify.tally_add tally outcome;
        { case = c; verdict; outcome })
      cases
  in
  { mode; tally; details }

let failures_of mr =
  List.filter (fun d -> d.outcome <> Classify.Correct) mr.details

let render rows =
  let t =
    Arde_util.Table.create
      [ "Tool"; "False alarms"; "Missed races"; "Failed cases"; "Correct" ]
  in
  List.iter
    (fun mr ->
      Arde_util.Table.add_row t
        [
          "Helgrind+ " ^ Config.mode_name mr.mode;
          string_of_int mr.tally.Classify.false_alarms;
          string_of_int mr.tally.Classify.missed;
          string_of_int (Classify.failed mr.tally);
          string_of_int mr.tally.Classify.correct;
        ])
    rows;
  Arde_util.Table.render t

(* Paper Table 1: the four tool configurations over the whole suite. *)
let table1 ?(options = suite_options) () =
  let cases = Racey.all () in
  let rows =
    List.map (fun m -> run_mode ~options m cases) Config.all_table1_modes
  in
  (rows, render rows)

(* Paper Table 2: sensitivity to the spin window k. *)
let table2 ?(options = suite_options) ?(ks = [ 3; 6; 7; 8 ]) () =
  let cases = Racey.all () in
  let rows =
    List.map (fun k -> run_mode ~options (Config.Helgrind_spin k) cases) ks
  in
  (rows, render rows)

let pp_failures ppf mr =
  Format.fprintf ppf "@[<v>%s failures:@," (Config.mode_name mr.mode);
  List.iter
    (fun d ->
      Format.fprintf ppf "  %-28s %-12s %a@," d.case.Racey.name
        (match d.outcome with
        | Classify.Correct -> "ok"
        | Classify.False_alarm -> "FALSE-ALARM"
        | Classify.Missed_race -> "MISSED")
        Classify.pp_verdict d.verdict)
    (failures_of mr);
  Format.fprintf ppf "@]"

(* Which case categories drive each configuration's failures: the
   analysis behind the paper's "why false positives" narrative. *)
let category_table rows =
  let categories =
    List.sort_uniq compare
      (List.map (fun (c : Racey.case) -> c.Racey.category) (Racey.all ()))
  in
  let t =
    Arde_util.Table.create
      ("Tool"
      :: List.concat_map
           (fun c -> [ c ^ " FA"; c ^ " miss" ])
           categories)
  in
  List.iter
    (fun mr ->
      let count cat outcome =
        List.length
          (List.filter
             (fun d ->
               d.case.Racey.category = cat && d.outcome = outcome)
             mr.details)
      in
      Arde_util.Table.add_row t
        (("Helgrind+ " ^ Config.mode_name mr.mode)
        :: List.concat_map
             (fun c ->
               [
                 string_of_int (count c Classify.False_alarm);
                 string_of_int (count c Classify.Missed_race);
               ])
             categories))
    rows;
  Arde_util.Table.render t
