(* Differential machine benchmark: execute each workload × Table-1 mode
   end-to-end on the compiled {!Machine} and on the frozen {!Machine_ref},
   timing steps/sec and GC-allocated words per step in quiet mode (the
   default discarding observer — the regime detectors-off replay runs in),
   and events/sec with a counting observer attached (the regime detection
   runs in).  Both machines interpret the same compiled-once program under
   the same seed, so the ratios compare interpreter cost alone.

   Every row also spot-checks trace identity — hash and length of the full
   event stream must agree between the two machines — and a straight-line
   probe asserts the steady-state step loop of the optimized machine
   allocates nothing (minor-words delta per step ≈ 0).

   This feeds BENCH_machine.json (the wire form CI archives) and the CI
   smoke gate: the optimized machine must not fall below the reference's
   step throughput on streamcluster under nolib+spin(7), the
   configuration the paper's overhead figure centers on. *)

module Config = Arde.Config
module Machine = Arde.Machine
module Machine_ref = Arde.Machine_ref
module Trace = Arde.Trace
module J = Arde.Json

type side = {
  steps_per_s : float;
  words_per_step : float; (* GC-allocated words per machine step, quiet *)
  events_per_s : float; (* with a counting observer attached *)
}

type row = {
  m_workload : string;
  m_mode : string;
  m_steps : int; (* machine steps per run (deterministic) *)
  m_events : int; (* events observed per run *)
  m_ref : side;
  m_opt : side;
  m_speedup : float; (* opt / ref quiet steps per second *)
  m_alloc_ratio : float; (* opt / ref words per step *)
  m_traces_equal : bool; (* same event-stream hash and length *)
}

type probe = {
  p_steps : int;
  p_words_per_step : float;
  p_pass : bool;
}

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* The mode's program form and instrumentation, as the detection driver
   would prepare them. *)
let prep info program mode =
  let program =
    if Config.needs_lowering mode then
      Arde.Lower.lower ~style:info.Arde_workloads.Parsec.nolib_style program
    else program
  in
  let instrument =
    match Config.spin_k mode with
    | Some k -> Some (Arde.Instrument.analyze ~k program)
    | None -> None
  in
  (program, instrument)

(* Time [repeats] full runs after one discarded warm-up; medians.  The
   run is deterministic, so steps/events are read off any repetition. *)
let timed ~repeats run =
  let times = ref [] and allocs = ref [] and last = ref None in
  for rep = 0 to repeats do
    let a0 = alloc_words () in
    let t0 = Unix.gettimeofday () in
    let r = run () in
    let t = Unix.gettimeofday () -. t0 in
    if rep > 0 then begin
      times := t :: !times;
      allocs := (alloc_words () -. a0) :: !allocs
    end;
    last := Some r
  done;
  (median !times, median !allocs, Option.get !last)

let bench_one ?(repeats = 3) info program mode ~fuel ~seed =
  let program, instrument = prep info program mode in
  let copt = Machine.compile program in
  let cref = Machine_ref.compile program in
  let cfg observer = { Machine.default_config with Machine.seed; fuel; instrument; observer } in
  (* [cfg] built from [default_config] keeps the default observer
     physically intact, which is what arms the optimized machine's quiet
     fast path. *)
  let quiet_cfg = { Machine.default_config with Machine.seed; fuel; instrument } in
  let side runf compiled =
    let tq, aq, res = timed ~repeats (fun () -> runf quiet_cfg compiled) in
    let steps = res.Machine.steps in
    let count = ref 0 in
    let te, _, _ =
      timed ~repeats (fun () ->
          count := 0;
          runf (cfg (fun _ -> incr count)) compiled)
    in
    ( {
        steps_per_s = (if tq > 0. then float_of_int steps /. tq else 0.);
        words_per_step = aq /. float_of_int (max 1 steps);
        events_per_s =
          (if te > 0. then float_of_int !count /. te else 0.);
      },
      steps,
      !count )
  in
  let opt, steps, events = side Machine.run copt in
  let ref_, ref_steps, ref_events = side Machine_ref.run cref in
  (* trace-identity spot check on this exact configuration *)
  let traces_equal =
    let t1 = Trace.create () and t2 = Trace.create () in
    ignore (Machine.run (cfg (Trace.observer t1)) copt);
    ignore (Machine_ref.run (cfg (Trace.observer t2)) cref);
    Trace.hash t1 = Trace.hash t2
    && Trace.length t1 = Trace.length t2
    && steps = ref_steps && events = ref_events
  in
  {
    m_workload = info.Arde_workloads.Parsec.pname;
    m_mode = Config.mode_name mode;
    m_steps = steps;
    m_events = events;
    m_ref = ref_;
    m_opt = opt;
    m_speedup =
      (if ref_.steps_per_s > 0. then opt.steps_per_s /. ref_.steps_per_s
       else 0.);
    m_alloc_ratio =
      (if ref_.words_per_step > 0. then opt.words_per_step /. ref_.words_per_step
       else 0.);
    m_traces_equal = traces_equal;
  }

(* A single-threaded register-arithmetic + global load/store loop under
   [Round_robin]: no PRNG draws, no blocking, no events retained — the
   steady-state straight-line path.  In quiet mode the optimized machine
   must execute it without per-step heap allocation; the measured
   minor-words delta amortizes the fixed setup/teardown cost (thread and
   sync tables, the final-memory rebuild) over ~600k steps, so anything
   per-step would dominate immediately. *)
let straightline_probe () =
  let open Arde.Builder in
  let body =
    [
      load "v" (g "cell");
      addi "v" (r "v") (imm 1);
      store (g "cell") (r "v");
    ]
  in
  let p =
    program
      ~globals:[ global "cell" () ]
      ~entry:"main"
      [
        func "main"
          ((blk "init" [ mov "i" (imm 0) ] (goto "hot_head")
           :: counted_loop ~tag:"hot" ~counter:"i" ~limit:(imm 100_000) ~body
                ~next:"out")
          @ [ blk "out" [] exit_t ]);
      ]
  in
  let compiled = Machine.compile p in
  let cfg =
    {
      Machine.default_config with
      Machine.policy = Arde.Sched.Round_robin 1_000_000;
      fuel = 5_000_000;
    }
  in
  ignore (Machine.run cfg compiled);
  (* warm-up *)
  let a0 = alloc_words () in
  let res = Machine.run cfg compiled in
  let words = alloc_words () -. a0 in
  let steps = max 1 res.Machine.steps in
  let wps = words /. float_of_int steps in
  {
    p_steps = res.Machine.steps;
    p_words_per_step = wps;
    p_pass = (res.Machine.outcome = Machine.Finished && wps < 0.05);
  }

let default_workloads = [ "streamcluster"; "x264"; "blackscholes" ]

let run ?(repeats = 3) ?(workloads = default_workloads) ?(fuel = 200_000)
    ?(seed = 1) () =
  let rows =
    List.concat_map
      (fun name ->
        match Arde_workloads.Parsec.find name with
        | None -> []
        | Some (info, program) ->
            List.map
              (fun mode -> bench_one ~repeats info program mode ~fuel ~seed)
              Config.all_table1_modes)
      workloads
  in
  (rows, straightline_probe ())

let side_to_json s =
  J.Obj
    [
      ("steps_per_s", J.Float s.steps_per_s);
      ("words_per_step", J.Float s.words_per_step);
      ("events_per_s", J.Float s.events_per_s);
    ]

let to_json (rows, probe) =
  J.Obj
    [
      ("host_cores", J.Int (Domain.recommended_domain_count ()));
      ( "straightline_probe",
        J.Obj
          [
            ("steps", J.Int probe.p_steps);
            ("words_per_step", J.Float probe.p_words_per_step);
            ("zero_alloc", J.Bool probe.p_pass);
          ] );
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("workload", J.String r.m_workload);
                   ("mode", J.String r.m_mode);
                   ("steps", J.Int r.m_steps);
                   ("events", J.Int r.m_events);
                   ("ref", side_to_json r.m_ref);
                   ("opt", side_to_json r.m_opt);
                   ("speedup", J.Float r.m_speedup);
                   ("alloc_ratio", J.Float r.m_alloc_ratio);
                   ("traces_equal", J.Bool r.m_traces_equal);
                 ])
             rows) );
    ]

let render (rows, probe) =
  let t =
    Arde_util.Table.create
      [
        "Workload"; "Mode"; "Steps"; "ref st/s"; "opt st/s"; "speedup";
        "ref w/st"; "opt w/st"; "opt ev/s"; "traces";
      ]
  in
  List.iter
    (fun r ->
      Arde_util.Table.add_row t
        [
          r.m_workload;
          r.m_mode;
          string_of_int r.m_steps;
          Printf.sprintf "%.3g" r.m_ref.steps_per_s;
          Printf.sprintf "%.3g" r.m_opt.steps_per_s;
          Printf.sprintf "%.2fx" r.m_speedup;
          Printf.sprintf "%.2f" r.m_ref.words_per_step;
          Printf.sprintf "%.2f" r.m_opt.words_per_step;
          Printf.sprintf "%.3g" r.m_opt.events_per_s;
          (if r.m_traces_equal then "equal" else "DIFFER");
        ])
    rows;
  Arde_util.Table.render t
  ^ Printf.sprintf
      "straight-line probe: %d steps, %.4f words/step (%s)\n"
      probe.p_steps probe.p_words_per_step
      (if probe.p_pass then "zero-alloc OK" else "ALLOCATES")

(* The CI gate: the optimized machine must at least match the reference on
   the paper's central configuration, every trace spot-check must agree,
   and the straight-line path must stay allocation-free. *)
let gate (rows, probe) =
  let failures = ref [] in
  (match
     List.find_opt
       (fun r ->
         (r.m_workload, r.m_mode)
         = ("streamcluster", Config.mode_name (Config.Nolib_spin 7)))
       rows
   with
  | None -> failures := "no streamcluster nolib+spin(7) row" :: !failures
  | Some r ->
      if r.m_speedup < 1.0 then
        failures :=
          Printf.sprintf
            "streamcluster nolib+spin(7): optimized machine at %.2fx of \
             reference step throughput (< 1.0x)"
            r.m_speedup
          :: !failures);
  List.iter
    (fun r ->
      if not r.m_traces_equal then
        failures :=
          Printf.sprintf "%s under %s: event traces differ between machines"
            r.m_workload r.m_mode
          :: !failures)
    rows;
  if not probe.p_pass then
    failures :=
      Printf.sprintf
        "straight-line probe allocates %.4f words/step (want ~0)"
        probe.p_words_per_step
      :: !failures;
  List.rev !failures
