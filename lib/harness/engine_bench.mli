(** Differential engine benchmark behind [bench engine].

    Records one event trace per workload × Table-1 mode and replays the
    identical trace through the optimized {!Arde.Engine} and the frozen
    {!Arde.Engine_ref}, so the measured events/sec and GC-allocated words
    per event compare the detectors alone, with schedule variance and
    machine cost factored out.  Each row also spot-checks that both
    engines produce byte-identical report JSON and spin-edge counts on
    that trace.

    The result set is written to [BENCH_engine.json] by the [bench]
    executable; {!gate} is the CI smoke criterion. *)

type side = {
  events_per_s : float;
  words_per_event : float; (* GC-allocated words per observed event *)
}

type row = {
  b_workload : string;
  b_mode : string;
  b_events : int; (* trace length replayed *)
  b_ref : side;
  b_opt : side;
  b_speedup : float; (* opt / ref events per second *)
  b_alloc_ratio : float; (* opt / ref words per event *)
  b_reports_equal : bool; (* byte-identical report JSON on this trace *)
}

val run :
  ?repeats:int ->
  ?workloads:string list ->
  ?fuel:int ->
  ?seed:int ->
  ?synthetic:bool ->
  unit ->
  row list
(** Bench every named PARSEC workload (default: streamcluster, x264,
    blackscholes) under every Table-1 mode.  [repeats] timed repetitions
    per engine follow one discarded warm-up; times and allocations are
    medians.  With [synthetic] (the default), four hand-built
    high-thread-count rows follow: barrier- and join-heavy event streams
    at 128 and 512 threads, replayed with a raised engine thread
    capacity — the machine itself stays capped at
    [Tir.Types.max_threads]. *)

val to_json : row list -> Arde_util.Json.t
(** The BENCH_engine.json wire form. *)

val render : row list -> string
(** Human-readable table of the same rows. *)

val gate : row list -> string list
(** CI failure messages, empty when the run passes: the optimized engine
    must reach at least 1.0× of the reference's throughput on
    streamcluster under nolib+spin(7) and on every synthetic high-width
    row, at least 2.0× on the 512-thread join-heavy row, and every row's
    report spot-check must agree. *)
