(* The record/replay benchmark: price the sink against the quiet fast
   path on the bare machine, then price replayed detection against the
   live run it reproduces — and verify it reproduces it exactly.  Feeds
   BENCH_replay.json and the CI gate (sink overhead ≤ 1.1× quiet on the
   headline configuration, byte-identity everywhere). *)

module Config = Arde.Config
module Machine = Arde.Machine
module Codec = Arde.Trace_codec
module Driver = Arde.Driver
module J = Arde.Json

type row = {
  r_workload : string;
  r_mode : string;
  r_steps : int;
  r_events : int;
  r_trace_bytes : int;
  r_bytes_per_event : float;
  r_quiet_steps_per_s : float;
  r_record_steps_per_s : float;
  r_record_overhead : float;
  r_live_s : float;
  r_replay_s : float;
  r_replay_speedup : float;
  r_identical : bool;
}

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

(* Median wall time of [repeats] runs after one discarded warm-up. *)
let timed ~repeats run =
  let times = ref [] and last = ref None in
  for rep = 0 to repeats do
    let t0 = Unix.gettimeofday () in
    let r = run () in
    let t = Unix.gettimeofday () -. t0 in
    if rep > 0 then times := t :: !times;
    last := Some r
  done;
  (median !times, Option.get !last)

let prep info program mode =
  let program =
    if Config.needs_lowering mode then
      Arde.Lower.lower ~style:info.Arde_workloads.Parsec.nolib_style program
    else program
  in
  let instrument =
    match Config.spin_k mode with
    | Some k -> Some (Arde.Instrument.analyze ~k program)
    | None -> None
  in
  (program, instrument)

(* Machine-only overhead: the same compiled program and seed, quiet
   (default observer — the fast path stays armed) vs recording (a fresh
   sink per repetition, as the driver attaches one per seed). *)
let sink_overhead program instrument ~fuel ~seed ~repeats =
  let compiled = Machine.compile program in
  let quiet_cfg =
    { Machine.default_config with Machine.seed; fuel; instrument }
  in
  let tq, res = timed ~repeats (fun () -> Machine.run quiet_cfg compiled) in
  let steps = res.Machine.steps in
  let tr, _ =
    timed ~repeats (fun () ->
        let sink = Codec.sink () in
        Machine.run
          { quiet_cfg with Machine.observer = Codec.sink_observer sink }
          compiled)
  in
  let per_s t = if t > 0. then float_of_int steps /. t else 0. in
  (steps, per_s tq, per_s tr, if tq > 0. then tr /. tq else 0.)

let result_bytes r = J.to_string (Driver.result_to_json r)

let bench_one ~repeats info program mode ~fuel ~seeds =
  let prepped, instrument = prep info program mode in
  let steps, quiet_sps, record_sps, overhead =
    sink_overhead prepped instrument ~fuel ~seed:(List.hd seeds) ~repeats
  in
  (* Live vs replay at the driver level: record once (with detection, so
     the live result rides along), then time both halves separately. *)
  let options = Arde.Options.make ~seeds ~fuel () in
  let ctx = Driver.ctx ~options () in
  let input = Arde.Input.Program program in
  let name = info.Arde_workloads.Parsec.pname in
  let recording =
    match Arde.record ~ctx ~mode ~detect:true ~source:name input with
    | Ok r -> r
    | Error e -> failwith (Printf.sprintf "record %s: %s" name e)
  in
  let live = Option.get recording.Driver.rec_result in
  let recorded =
    match Arde.Recorded.of_string recording.Driver.rec_trace with
    | Ok r -> r
    | Error e -> failwith (Printf.sprintf "load %s: %s" name e)
  in
  let live_s, _ =
    timed ~repeats (fun () -> Arde.detect ~ctx ~mode input)
  in
  let replay_s, replayed =
    timed ~repeats (fun () ->
        Arde.detect ~ctx (Arde.Input.Recorded_trace recorded))
  in
  let events = Arde.Recorded.n_events recorded in
  let trace_bytes = String.length recording.Driver.rec_trace in
  {
    r_workload = name;
    r_mode = Config.mode_name mode;
    r_steps = steps;
    r_events = events;
    r_trace_bytes = trace_bytes;
    r_bytes_per_event =
      float_of_int trace_bytes /. float_of_int (max 1 events);
    r_quiet_steps_per_s = quiet_sps;
    r_record_steps_per_s = record_sps;
    r_record_overhead = overhead;
    r_live_s = live_s;
    r_replay_s = replay_s;
    r_replay_speedup = (if replay_s > 0. then live_s /. replay_s else 0.);
    r_identical = result_bytes live = result_bytes replayed;
  }

let default_workloads = [ "swaptions"; "blackscholes"; "streamcluster"; "x264" ]
let modes = [ Config.Helgrind_spin 7; Config.Nolib_spin 7 ]

let run ?(repeats = 3) ?(workloads = default_workloads) ?(fuel = 200_000)
    ?(seeds = [ 1; 2; 3; 4 ]) () =
  List.concat_map
    (fun name ->
      match Arde_workloads.Parsec.find name with
      | None -> failwith (Printf.sprintf "bench replay: no workload %s" name)
      | Some (info, program) ->
          List.map
            (fun mode -> bench_one ~repeats info program mode ~fuel ~seeds)
            modes)
    workloads

let to_json rows =
  J.Obj
    [
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("workload", J.String r.r_workload);
                   ("mode", J.String r.r_mode);
                   ("steps", J.Int r.r_steps);
                   ("events", J.Int r.r_events);
                   ("trace_bytes", J.Int r.r_trace_bytes);
                   ("bytes_per_event", J.Float r.r_bytes_per_event);
                   ("quiet_steps_per_s", J.Float r.r_quiet_steps_per_s);
                   ("record_steps_per_s", J.Float r.r_record_steps_per_s);
                   ("record_overhead", J.Float r.r_record_overhead);
                   ("live_s", J.Float r.r_live_s);
                   ("replay_s", J.Float r.r_replay_s);
                   ("replay_speedup", J.Float r.r_replay_speedup);
                   ("identical", J.Bool r.r_identical);
                 ])
             rows) );
    ]

let render rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-14s %-14s %10s %9s %8s %9s %8s %6s\n" "workload"
       "mode" "events" "bytes/ev" "rec ovh" "replay x" "trace" "ident");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-14s %-14s %10d %9.2f %7.3fx %8.2fx %7dK %6s\n"
           r.r_workload r.r_mode r.r_events r.r_bytes_per_event
           r.r_record_overhead r.r_replay_speedup
           (r.r_trace_bytes / 1024)
           (if r.r_identical then "yes" else "NO")))
    rows;
  Buffer.contents b

(* The overhead bound is enforced where the "cheap enough to leave on"
   claim lives: a compute-bound workload, whose event density reflects
   real programs.  The sync-dense rows (streamcluster, x264 — tens of
   thousands of events per millisecond of quiet runtime) are reported
   for visibility but gated only on identity: a workload that is almost
   nothing but synchronization prices the encoder, not recording. *)
let headline = ("swaptions", Config.mode_name (Config.Nolib_spin 7))
let max_overhead = 1.1

let gate rows =
  let failures = ref [] in
  List.iter
    (fun r ->
      if not r.r_identical then
        failures :=
          Printf.sprintf "%s under %s: replayed result diverged from live"
            r.r_workload r.r_mode
          :: !failures)
    rows;
  (match
     List.find_opt
       (fun r -> (r.r_workload, r.r_mode) = headline)
       rows
   with
  | Some r when r.r_record_overhead > max_overhead ->
      failures :=
        Printf.sprintf
          "%s under %s: recording overhead %.3fx exceeds the %.1fx gate"
          r.r_workload r.r_mode r.r_record_overhead max_overhead
        :: !failures
  | _ -> ());
  List.rev !failures
