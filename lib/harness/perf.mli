(** Figures 1 and 2: detector memory consumption and runtime overhead.

    Each workload is executed repeatedly per configuration (plus a bare
    "none" baseline with no detector attached); an initial warm-up
    repetition absorbs one-time costs and is discarded.  The tables
    report median wall-clock time, GC allocation (from [Gc.quick_stat]
    counter deltas: minor + major - promoted words), the detector's live
    heap words, and the lib+spin / lib overhead ratio — the paper's
    "minor overhead" claim. *)

type sample = {
  s_mode : string; (* "none" for the bare machine *)
  s_time_ns : float;
  s_alloc_words : float;
  s_detector_words : int;
}

type fig = { workload : string; samples : sample list }

val measure :
  ?repeats:int -> Arde_workloads.Parsec.info * Arde.Types.program -> fig

val figure1 : fig list -> string
(** Memory (detector heap words). *)

val figure2 : fig list -> string
(** Runtime (ms per run). *)

val default_workloads :
  unit -> (Arde_workloads.Parsec.info * Arde.Types.program) list

val run_figures : ?repeats:int -> unit -> fig list * string * string
