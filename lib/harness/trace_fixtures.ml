(* Golden-trace fixtures for the interpreting machine.

   The detection engines are pinned by report identity (test_engine_diff);
   the machine is pinned one level deeper, by *trace identity*: the exact
   event sequence it produces for a given (program, policy, seed, fuel,
   perturbation).  Every optimization of the interpreter must reproduce
   these traces bit for bit — a change in trace identity silently changes
   every schedule, every report and every experiment downstream, even when
   each individual run still "looks right".

   This module owns the fixture *enumeration* (which runs are pinned) and
   the fixture *summaries* (trace hash + length, steps, outcome).  The
   enumeration is deterministic, so the generator (`bench fixtures`) and
   the checker (`test_machine_diff`) always agree on the key set.  The
   machine implementation is passed in as a first-class record, which lets
   the same enumeration drive the optimized {!Arde.Machine} and the frozen
   {!Arde_runtime.Machine_ref} oracle. *)

module Machine = Arde.Machine
module Sched = Arde.Sched
module Trace = Arde.Trace

type summary = {
  fx_length : int; (* events in the trace *)
  fx_hash : int; (* Trace.hash *)
  fx_steps : int; (* machine steps executed *)
  fx_outcome : string; (* pretty-printed outcome *)
}

type run_spec = {
  rs_key : string; (* unique, stable fixture key *)
  rs_policy : Sched.policy;
  rs_seed : int;
  rs_fuel : int;
  rs_spurious : bool;
  rs_inject_at : int option; (* raise a machine fault at the Nth event *)
}

type group = {
  g_name : string;
  g_program : Arde.Types.program; (* already lowered where the form wants it *)
  g_instrument : Arde.Instrument.t option;
  g_runs : run_spec list;
}

type impl = { mi_name : string; mi_run_group : group -> (string * summary) list }

(* ------------------------------------------------------------------ *)
(* Enumeration                                                        *)

let policies =
  [ ("rr3", Sched.Round_robin 3); ("uniform", Sched.Uniform); ("chunked6", Sched.Chunked 6) ]

let chaos_policies = [ ("rr1", Sched.Round_robin 1); ("chunked64", Sched.Chunked 64) ]

let seeds n = List.init n (fun i -> i + 1)

let fixture_fuel = 50_000

let spec ?(fuel = fixture_fuel) ?(spurious = false) ?inject_at name pname policy seed =
  {
    rs_key =
      Printf.sprintf "%s|%s|%d|%d|%s%s" name pname seed fuel
        (if spurious then "sw" else "-")
        (match inject_at with None -> "" | Some n -> Printf.sprintf "|f@%d" n);
    rs_policy = policy;
    rs_seed = seed;
    rs_fuel = fuel;
    rs_spurious = spurious;
    rs_inject_at = inject_at;
  }

let grid name ~seeds:ss =
  List.concat_map
    (fun (pname, policy) -> List.map (spec name pname policy) ss)
    policies

let raw_group name program ~seeds:ss =
  {
    g_name = name ^ "/raw";
    g_program = program;
    g_instrument = None;
    g_runs = grid (name ^ "/raw") ~seeds:ss;
  }

let rawspin_group name program ~seeds:ss =
  {
    g_name = name ^ "/rawspin";
    g_program = program;
    g_instrument = Some (Arde.Instrument.analyze ~k:7 program);
    g_runs = grid (name ^ "/rawspin") ~seeds:ss;
  }

let nolib_group ?(style = Arde.Lower.Realistic) name program ~seeds:ss =
  let lowered = Arde.Lower.lower ~style program in
  {
    g_name = name ^ "/nolib";
    g_program = lowered;
    g_instrument = Some (Arde.Instrument.analyze ~k:7 lowered);
    g_runs = grid (name ^ "/nolib") ~seeds:ss;
  }

(* Machine-level perturbations, on the lowered+instrumented form: spurious
   condition-variable wakeups, starved fuel (livelock/exhaustion paths),
   adversarial schedules, and a deterministic fault injected mid-trace by
   an observer — the machine must truncate and attribute identically. *)
let chaos_group name program =
  let lowered = Arde.Lower.lower ~style:Arde.Lower.Realistic program in
  let gname = name ^ "/chaos" in
  let runs =
    List.map
      (fun seed -> spec ~spurious:true gname "chunked6" (Sched.Chunked 6) seed)
      (seeds 16)
    @ List.map
        (fun seed -> spec ~fuel:2_000 gname "chunked6" (Sched.Chunked 6) seed)
        (seeds 16)
    @ List.concat_map
        (fun (pname, policy) -> List.map (spec gname pname policy) (seeds 8))
        chaos_policies
    @ List.map
        (fun seed ->
          spec ~inject_at:200 gname "chunked6" (Sched.Chunked 6) seed)
        (seeds 8)
  in
  {
    g_name = gname;
    g_program = lowered;
    g_instrument = Some (Arde.Instrument.analyze ~k:7 lowered);
    g_runs = runs;
  }

let groups () =
  let racey = Arde_workloads.Racey.all () in
  let catalog =
    List.concat_map
      (fun (c : Arde_workloads.Racey.case) ->
        [
          raw_group c.Arde_workloads.Racey.name c.Arde_workloads.Racey.program
            ~seeds:(seeds 16);
          nolib_group c.Arde_workloads.Racey.name c.Arde_workloads.Racey.program
            ~seeds:(seeds 16);
        ])
      racey
  in
  (* the raw+instrumented form (lib+spin modes) on a cross-section *)
  let rawspin =
    List.filteri (fun i _ -> i mod 3 = 0) racey
    |> List.map (fun (c : Arde_workloads.Racey.case) ->
           rawspin_group c.Arde_workloads.Racey.name
             c.Arde_workloads.Racey.program ~seeds:(seeds 16))
  in
  let parsec =
    List.concat_map
      (fun ((info : Arde_workloads.Parsec.info), p) ->
        [
          raw_group info.Arde_workloads.Parsec.pname p ~seeds:(seeds 4);
          nolib_group ~style:info.Arde_workloads.Parsec.nolib_style
            info.Arde_workloads.Parsec.pname p ~seeds:(seeds 4);
        ])
      (Arde_workloads.Parsec.all ())
  in
  let chaos =
    List.filteri (fun i _ -> i mod 12 = 0) racey
    |> List.map (fun (c : Arde_workloads.Racey.case) ->
           chaos_group c.Arde_workloads.Racey.name
             c.Arde_workloads.Racey.program)
  in
  catalog @ rawspin @ parsec @ chaos

(* ------------------------------------------------------------------ *)
(* Running one spec through a machine implementation                  *)

let inject_loc n =
  { Arde.Types.lfunc = "<fixture>"; lblk = "inject"; lidx = n }

(* [make_impl ~name ~compile ~run] packages a machine implementation.
   Compilation happens once per group; each spec then runs with a fresh
   trace observer (injection, when requested, is teed in *ahead* of the
   trace, mirroring the driver's ordering: the fault fires before the
   triggering event is recorded). *)
let make_impl ~name ~(compile : Arde.Types.program -> 'c)
    ~(run : Machine.config -> 'c -> Machine.result) : impl =
  let run_spec compiled instrument rs =
    let trace = Trace.create () in
    let observer =
      match rs.rs_inject_at with
      | None -> Trace.observer trace
      | Some n ->
          let count = ref 0 in
          fun ev ->
            incr count;
            if !count = n then
              raise
                (Machine.Fault_exn (inject_loc n, "fixture: injected fault"));
            Trace.observer trace ev
    in
    let cfg =
      {
        Machine.policy = rs.rs_policy;
        seed = rs.rs_seed;
        fuel = rs.rs_fuel;
        instrument;
        spurious_wakeups = rs.rs_spurious;
        observer;
      }
    in
    let res = run cfg compiled in
    {
      fx_length = Trace.length trace;
      fx_hash = Trace.hash trace;
      fx_steps = res.Machine.steps;
      fx_outcome = Format.asprintf "%a" Machine.pp_outcome res.Machine.outcome;
    }
  in
  {
    mi_name = name;
    mi_run_group =
      (fun g ->
        let compiled = compile g.g_program in
        List.map
          (fun rs -> (rs.rs_key, run_spec compiled g.g_instrument rs))
          g.g_runs);
  }

let current_machine =
  make_impl ~name:"machine" ~compile:Machine.compile ~run:Machine.run

let reference_machine =
  make_impl ~name:"machine_ref" ~compile:Arde.Machine_ref.compile
    ~run:Arde.Machine_ref.run

let run_all impl = List.concat_map impl.mi_run_group (groups ())

(* ------------------------------------------------------------------ *)
(* On-disk form: one line per fixture, tab-separated                  *)

let encode_line (key, s) =
  Printf.sprintf "%s\t%d\t%d\t%d\t%s" key s.fx_length s.fx_hash s.fx_steps
    s.fx_outcome

let parse_line line =
  match String.split_on_char '\t' line with
  | key :: len :: hash :: steps :: rest when rest <> [] ->
      let outcome = String.concat "\t" rest in
      Option.bind (int_of_string_opt len) (fun l ->
          Option.bind (int_of_string_opt hash) (fun h ->
              Option.map
                (fun st ->
                  ( key,
                    {
                      fx_length = l;
                      fx_hash = h;
                      fx_steps = st;
                      fx_outcome = outcome;
                    } ))
                (int_of_string_opt steps)))
  | _ -> None

let write_file path rows =
  let oc = open_out path in
  output_string oc
    "# machine golden-trace fixtures: key<TAB>events<TAB>hash<TAB>steps<TAB>outcome\n";
  List.iter
    (fun row ->
      output_string oc (encode_line row);
      output_char oc '\n')
    rows;
  close_out oc

let read_file path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       if line <> "" && line.[0] <> '#' then
         match parse_line line with
         | Some row -> rows := row :: !rows
         | None -> failwith (Printf.sprintf "bad fixture line: %s" line)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows
