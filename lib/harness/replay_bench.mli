(** The record/replay benchmark behind [bench replay].

    Two questions, one per half of the record/replay split:

    - {b Recording cost}: how much does attaching a {!Arde.Trace_codec}
      sink slow the bare machine down, measured against the quiet fast
      path (default observer, no events materialized)?  The paper's
      premise is that recording is cheap enough to leave on; the CI gate
      bounds the overhead at 1.1× on the headline configuration.
    - {b Replay value}: how much faster is detection over a recorded
      trace than the live run that produced it (the machine factored
      out), and is the replayed result byte-identical — the invariant
      everything downstream (crash-bundle postmortems, the serve replay
      farm) leans on?

    The result set is written to [BENCH_replay.json] by the [bench]
    executable; {!gate} is the CI smoke criterion. *)

type row = {
  r_workload : string;
  r_mode : string;
  r_steps : int;  (** machine steps of the measured seed *)
  r_events : int;  (** recorded events across all seeds *)
  r_trace_bytes : int;  (** assembled trace size *)
  r_bytes_per_event : float;
  r_quiet_steps_per_s : float;  (** bare machine, default observer *)
  r_record_steps_per_s : float;  (** same run with the sink attached *)
  r_record_overhead : float;  (** quiet time / record time, as a ratio ≥ 1 *)
  r_live_s : float;  (** full live detection, all seeds *)
  r_replay_s : float;  (** detection replayed from the trace *)
  r_replay_speedup : float;  (** live / replay wall-clock *)
  r_identical : bool;  (** replayed result byte-identical to live *)
}

val run :
  ?repeats:int ->
  ?workloads:string list ->
  ?fuel:int ->
  ?seeds:int list ->
  unit ->
  row list
(** Bench the default workload set (swaptions and blackscholes as the
    compute-bound rows, streamcluster and x264 as the sync-dense ones)
    under lib+spin(7) and nolib+spin(7).  [repeats] timed repetitions
    follow one discarded warm-up; times are medians.  [seeds] drive the
    live/replay halves; the machine-overhead half times the first seed
    alone. *)

val to_json : row list -> Arde_util.Json.t
(** The BENCH_replay.json wire form. *)

val render : row list -> string
(** Human-readable table of the same rows. *)

val gate : row list -> string list
(** CI failure messages, empty when the run passes: every row's replayed
    result must be byte-identical to its live run, and recording
    overhead on the headline configuration — swaptions under
    nolib+spin(7), the compute-bound workload where the "cheap enough to
    leave recording on" claim is meaningful — must stay within 1.1× of
    the quiet fast path.  Sync-dense rows are reported but not
    overhead-gated: they price the encoder per event, not recording as
    experienced by a real program. *)
