(* Differential engine benchmark: record one event trace per workload ×
   mode, then replay the identical trace through the optimized {!Engine}
   and the frozen {!Engine_ref}, timing events/sec and GC-allocated words
   per event for each.  Replaying a recorded trace isolates detector cost
   from machine cost — both engines see exactly the same events, so the
   ratios are pure engine comparisons.

   This feeds BENCH_engine.json (the wire form CI archives) and the CI
   smoke gate: the optimized engine must not fall below the reference's
   throughput on streamcluster under nolib+spin(7), the configuration the
   paper's overhead figure centers on. *)

open Arde_tir.Types
module Config = Arde.Config
module Event = Arde.Event
module Machine = Arde.Machine
module Trace = Arde.Trace
module J = Arde.Json

type side = {
  events_per_s : float;
  words_per_event : float;
}

type row = {
  b_workload : string;
  b_mode : string;
  b_events : int;
  b_ref : side;
  b_opt : side;
  b_speedup : float; (* opt / ref events per second *)
  b_alloc_ratio : float; (* opt / ref words per event *)
  b_reports_equal : bool; (* byte-identical report JSON on this trace *)
}

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let cv_mutexes_of program =
  List.sort_uniq String.compare
    (List.concat_map
       (fun f ->
         List.concat_map
           (fun b ->
             List.filter_map
               (function Cond_wait (_, m) -> Some m.base | _ -> None)
               b.ins)
           f.blocks)
       program.funcs)

(* One recorded execution of [program] under [mode]'s program form, with
   whatever instrumentation the mode wants active in the machine. *)
let record_trace info program mode ~fuel ~seed =
  let program =
    if Config.needs_lowering mode then
      Arde.Lower.lower ~style:info.Arde_workloads.Parsec.nolib_style program
    else program
  in
  let instrument =
    match Config.spin_k mode with
    | Some k -> Some (Arde.Instrument.analyze ~k program)
    | None -> None
  in
  let compiled = Machine.compile program in
  let trace = Trace.create () in
  let cfg =
    {
      Machine.default_config with
      Machine.seed;
      fuel;
      instrument;
      observer = Trace.observer trace;
    }
  in
  ignore (Machine.run cfg compiled);
  (Trace.events trace, instrument, cv_mutexes_of program)

(* Replay [events] through fresh engines built by [make], [repeats] times
   plus a discarded warm-up; median time and allocation per repetition.
   Each repetition streams the trace [inner] times through the same
   engine, so short workload traces still yield a steady-state
   measurement: the first pass populates the shadow state, the rest
   exercise the hot path on warm cells — the regime the per-event cost
   claim is about. *)
let replay ~make ~repeats ~inner events =
  let events = Array.of_list events in
  let times = ref [] and allocs = ref [] in
  for rep = 0 to repeats do
    let observe = make () in
    let a0 = alloc_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do
      for i = 0 to Array.length events - 1 do
        observe (Array.unsafe_get events i)
      done
    done;
    let t = Unix.gettimeofday () -. t0 in
    if rep > 0 then begin
      times := t :: !times;
      allocs := (alloc_words () -. a0) :: !allocs
    end
  done;
  (median !times, median !allocs)

let side_of ~n_events ~inner (time_s, alloc) =
  let n = float_of_int (max 1 (n_events * inner)) in
  {
    events_per_s = (if time_s > 0. then n /. time_s else 0.);
    words_per_event = alloc /. n;
  }

let bench_one ?(repeats = 3) info program mode ~fuel ~seed =
  let events, instrument, cv_mutexes = record_trace info program mode ~fuel ~seed in
  let n_events = List.length events in
  let detector_cfg = Config.make mode in
  let make_opt () =
    Arde.Engine.observer
      (Arde.Engine.create ~cv_mutexes detector_cfg ~instrument)
  in
  let make_ref () =
    Arde.Engine_ref.observer
      (Arde.Engine_ref.create ~cv_mutexes detector_cfg ~instrument)
  in
  (* enough passes that each timed repetition streams ~200k events *)
  let inner = max 1 (200_000 / max 1 n_events) in
  let opt = side_of ~n_events ~inner (replay ~make:make_opt ~repeats ~inner events) in
  let ref_ = side_of ~n_events ~inner (replay ~make:make_ref ~repeats ~inner events) in
  (* Differential spot check on this exact trace: reports and spin edges
     must agree byte for byte. *)
  let reports_equal =
    let e = Arde.Engine.create ~cv_mutexes detector_cfg ~instrument in
    let r = Arde.Engine_ref.create ~cv_mutexes detector_cfg ~instrument in
    List.iter (Arde.Engine.observer e) events;
    List.iter (Arde.Engine_ref.observer r) events;
    J.to_string (Arde.Report.to_json (Arde.Engine.report e))
    = J.to_string (Arde.Report.to_json (Arde.Engine_ref.report r))
    && Arde.Engine.n_spin_edges e = Arde.Engine_ref.n_spin_edges r
  in
  {
    b_workload = info.Arde_workloads.Parsec.pname;
    b_mode = Config.mode_name mode;
    b_events = n_events;
    b_ref = ref_;
    b_opt = opt;
    b_speedup =
      (if ref_.events_per_s > 0. then opt.events_per_s /. ref_.events_per_s
       else 0.);
    b_alloc_ratio =
      (if ref_.words_per_event > 0. then
         opt.words_per_event /. ref_.words_per_event
       else 0.);
    b_reports_equal = reports_equal;
  }

let default_workloads = [ "streamcluster"; "x264"; "blackscholes" ]

(* ------------------------------------------------------------------ *)
(* Synthetic high-thread-count workloads.  The machine caps executions
   at [max_threads], so the 128/512-thread rows hand-build event streams
   instead — the documented escape hatch of the trace format — and run
   the engines with a raised [~threads] capacity.  Two shapes, matching
   where the fine-grained-lens cost model says joins dominate:

   - barrier-heavy: every round each thread writes its slot, crosses a
     barrier (an O(threads) accumulated clock every generation), reads a
     neighbour's slot, and crosses a second barrier so rounds stay
     race-free.  Both engines pay the full-width join on every pass.
   - join-heavy: after one barrier widens every clock to full length, a
     writer republishes an atomic flag a handful of times and every
     thread re-acquires it in a tight loop — the ad-hoc-synchronization
     shape, where the same release snapshot is joined thousands of
     times.  The sparse-epoch clock turns the repeats into O(1) skips;
     the reference walks (and reallocates) all components every time.

   Each stream ends with one deliberate unsynchronized write pair so the
   differential report check compares real reports, not empty ones. *)

let syn_loc blk k = { lfunc = "synthetic"; lblk = blk; lidx = k }

let syn_prologue ~threads acc =
  acc := Event.Thread_start { tid = 0 } :: !acc;
  for tid = 1 to threads - 1 do
    acc := Event.Spawn_ev { parent = 0; child = tid; loc = syn_loc "spawn" tid } :: !acc;
    acc := Event.Thread_start { tid } :: !acc
  done

let syn_barrier ~threads ~generation acc =
  let loc = syn_loc "barrier" generation in
  for tid = 0 to threads - 1 do
    acc := Event.Barrier_arrive { tid; base = "bar"; idx = 0; generation; loc } :: !acc
  done;
  for tid = 0 to threads - 1 do
    acc := Event.Barrier_pass { tid; base = "bar"; idx = 0; generation; loc } :: !acc
  done

let syn_epilogue ~threads acc =
  let wloc = syn_loc "racy" 0 in
  acc := Event.Write { tid = 0; base = "racy"; base_id = 1; idx = 0; value = 1;
                       loc = wloc; kind = Event.Plain } :: !acc;
  acc := Event.Write { tid = 1; base = "racy"; base_id = 1; idx = 0; value = 2;
                       loc = wloc; kind = Event.Plain } :: !acc;
  for tid = 1 to threads - 1 do
    acc := Event.Thread_exit { tid } :: !acc;
    acc := Event.Join_return { tid = 0; target = tid; loc = syn_loc "join" tid } :: !acc
  done;
  acc := Event.Thread_exit { tid = 0 } :: !acc

let synthetic_barrier ~threads ~rounds =
  let acc = ref [] in
  syn_prologue ~threads acc;
  let gen = ref 0 in
  for round = 1 to rounds do
    let wloc = syn_loc "w" round and rloc = syn_loc "r" round in
    for tid = 0 to threads - 1 do
      acc := Event.Write { tid; base = "data"; base_id = 0; idx = tid;
                           value = round; loc = wloc; kind = Event.Plain } :: !acc
    done;
    syn_barrier ~threads ~generation:!gen acc;
    incr gen;
    for tid = 0 to threads - 1 do
      acc := Event.Read { tid; base = "data"; base_id = 0;
                          idx = (tid + 1) mod threads; value = round;
                          loc = rloc; kind = Event.Plain; spin = [] } :: !acc
    done;
    syn_barrier ~threads ~generation:!gen acc;
    incr gen
  done;
  syn_epilogue ~threads acc;
  List.rev !acc

let synthetic_join ~threads ~writes ~reads =
  let acc = ref [] in
  syn_prologue ~threads acc;
  (* one full-width barrier so every clock has [threads] components *)
  syn_barrier ~threads ~generation:0 acc;
  let floc = syn_loc "flag" 0 in
  for round = 1 to writes do
    acc := Event.Write { tid = 0; base = "flag"; base_id = 2; idx = 0;
                         value = round; loc = floc; kind = Event.Atomic } :: !acc;
    let wloc = syn_loc "own" round in
    for tid = 0 to threads - 1 do
      acc := Event.Write { tid; base = "data"; base_id = 0; idx = tid;
                           value = round; loc = wloc; kind = Event.Plain } :: !acc
    done;
    for _rep = 1 to reads do
      for tid = 0 to threads - 1 do
        acc := Event.Read { tid; base = "flag"; base_id = 2; idx = 0;
                            value = round; loc = floc; kind = Event.Atomic;
                            spin = [] } :: !acc
      done
    done
  done;
  syn_epilogue ~threads acc;
  List.rev !acc

type synthetic = {
  s_name : string;
  s_mode : Config.mode;
  s_threads : int;
  s_events : Event.t list Lazy.t;
}

let synthetic_specs =
  [
    { s_name = "barrier-128"; s_mode = Config.Helgrind_lib; s_threads = 128;
      s_events = lazy (synthetic_barrier ~threads:128 ~rounds:130) };
    { s_name = "barrier-512"; s_mode = Config.Helgrind_lib; s_threads = 512;
      s_events = lazy (synthetic_barrier ~threads:512 ~rounds:33) };
    { s_name = "join-128"; s_mode = Config.Helgrind_spin 7; s_threads = 128;
      s_events = lazy (synthetic_join ~threads:128 ~writes:8 ~reads:100) };
    { s_name = "join-512"; s_mode = Config.Helgrind_spin 7; s_threads = 512;
      s_events = lazy (synthetic_join ~threads:512 ~writes:4 ~reads:50) };
  ]

let bench_synthetic ?(repeats = 3) spec =
  let events = Lazy.force spec.s_events in
  let n_events = List.length events in
  let detector_cfg = Config.make spec.s_mode in
  let instrument = None in
  let threads = spec.s_threads in
  let make_opt () =
    Arde.Engine.observer (Arde.Engine.create ~threads detector_cfg ~instrument)
  in
  let make_ref () =
    Arde.Engine_ref.observer
      (Arde.Engine_ref.create ~threads detector_cfg ~instrument)
  in
  let inner = max 1 (200_000 / max 1 n_events) in
  let opt = side_of ~n_events ~inner (replay ~make:make_opt ~repeats ~inner events) in
  let ref_ = side_of ~n_events ~inner (replay ~make:make_ref ~repeats ~inner events) in
  let reports_equal =
    let e = Arde.Engine.create ~threads detector_cfg ~instrument in
    let r = Arde.Engine_ref.create ~threads detector_cfg ~instrument in
    List.iter (Arde.Engine.observer e) events;
    List.iter (Arde.Engine_ref.observer r) events;
    J.to_string (Arde.Report.to_json (Arde.Engine.report e))
    = J.to_string (Arde.Report.to_json (Arde.Engine_ref.report r))
    && Arde.Engine.n_spin_edges e = Arde.Engine_ref.n_spin_edges r
  in
  {
    b_workload = spec.s_name;
    b_mode = Config.mode_name spec.s_mode;
    b_events = n_events;
    b_ref = ref_;
    b_opt = opt;
    b_speedup =
      (if ref_.events_per_s > 0. then opt.events_per_s /. ref_.events_per_s
       else 0.);
    b_alloc_ratio =
      (if ref_.words_per_event > 0. then
         opt.words_per_event /. ref_.words_per_event
       else 0.);
    b_reports_equal = reports_equal;
  }

let run ?(repeats = 3) ?(workloads = default_workloads) ?(fuel = 200_000)
    ?(seed = 1) ?(synthetic = true) () =
  List.concat_map
    (fun name ->
      match Arde_workloads.Parsec.find name with
      | None -> []
      | Some (info, program) ->
          List.map
            (fun mode -> bench_one ~repeats info program mode ~fuel ~seed)
            Config.all_table1_modes)
    workloads
  @ (if synthetic then List.map (bench_synthetic ~repeats) synthetic_specs
     else [])

let side_to_json s =
  J.Obj
    [
      ("events_per_s", J.Float s.events_per_s);
      ("words_per_event", J.Float s.words_per_event);
    ]

let to_json rows =
  J.Obj
    [
      ("host_cores", J.Int (Domain.recommended_domain_count ()));
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("workload", J.String r.b_workload);
                   ("mode", J.String r.b_mode);
                   ("events", J.Int r.b_events);
                   ("ref", side_to_json r.b_ref);
                   ("opt", side_to_json r.b_opt);
                   ("speedup", J.Float r.b_speedup);
                   ("alloc_ratio", J.Float r.b_alloc_ratio);
                   ("reports_equal", J.Bool r.b_reports_equal);
                 ])
             rows) );
    ]

let render rows =
  let t =
    Arde_util.Table.create
      [
        "Workload"; "Mode"; "Events"; "ref ev/s"; "opt ev/s"; "speedup";
        "ref w/ev"; "opt w/ev"; "alloc ratio"; "reports";
      ]
  in
  List.iter
    (fun r ->
      Arde_util.Table.add_row t
        [
          r.b_workload;
          r.b_mode;
          string_of_int r.b_events;
          Printf.sprintf "%.3g" r.b_ref.events_per_s;
          Printf.sprintf "%.3g" r.b_opt.events_per_s;
          Printf.sprintf "%.2fx" r.b_speedup;
          Printf.sprintf "%.1f" r.b_ref.words_per_event;
          Printf.sprintf "%.1f" r.b_opt.words_per_event;
          Printf.sprintf "%.2fx" r.b_alloc_ratio;
          (if r.b_reports_equal then "equal" else "DIFFER");
        ])
    rows;
  Arde_util.Table.render t

(* The CI gate: the optimized engine must at least match the reference on
   the paper's central configuration and on every synthetic high-width
   row, must clear 2x on the 512-thread join-heavy row (the shape the
   sparse-epoch clock exists for), and the spot-check reports must all
   agree. *)
let gate rows =
  let key r = (r.b_workload, r.b_mode) in
  let central =
    List.find_opt
      (fun r -> key r = ("streamcluster", Config.mode_name (Config.Nolib_spin 7)))
      rows
  in
  let failures = ref [] in
  (match central with
  | None -> failures := "no streamcluster nolib+spin(7) row" :: !failures
  | Some r ->
      if r.b_speedup < 1.0 then
        failures :=
          Printf.sprintf
            "streamcluster nolib+spin(7): optimized engine at %.2fx of \
             reference throughput (< 1.0x)"
            r.b_speedup
          :: !failures);
  List.iter
    (fun spec ->
      match List.find_opt (fun r -> r.b_workload = spec.s_name) rows with
      | None ->
          failures :=
            Printf.sprintf "no %s synthetic row" spec.s_name :: !failures
      | Some r ->
          let floor = if spec.s_name = "join-512" then 2.0 else 1.0 in
          if r.b_speedup < floor then
            failures :=
              Printf.sprintf
                "%s: optimized engine at %.2fx of reference throughput \
                 (< %.1fx)"
                spec.s_name r.b_speedup floor
              :: !failures)
    synthetic_specs;
  List.iter
    (fun r ->
      if not r.b_reports_equal then
        failures :=
          Printf.sprintf "%s under %s: reports differ between engines"
            r.b_workload r.b_mode
          :: !failures)
    rows;
  List.rev !failures
