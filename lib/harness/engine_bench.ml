(* Differential engine benchmark: record one event trace per workload ×
   mode, then replay the identical trace through the optimized {!Engine}
   and the frozen {!Engine_ref}, timing events/sec and GC-allocated words
   per event for each.  Replaying a recorded trace isolates detector cost
   from machine cost — both engines see exactly the same events, so the
   ratios are pure engine comparisons.

   This feeds BENCH_engine.json (the wire form CI archives) and the CI
   smoke gate: the optimized engine must not fall below the reference's
   throughput on streamcluster under nolib+spin(7), the configuration the
   paper's overhead figure centers on. *)

open Arde_tir.Types
module Config = Arde.Config
module Machine = Arde.Machine
module Trace = Arde.Trace
module J = Arde.Json

type side = {
  events_per_s : float;
  words_per_event : float;
}

type row = {
  b_workload : string;
  b_mode : string;
  b_events : int;
  b_ref : side;
  b_opt : side;
  b_speedup : float; (* opt / ref events per second *)
  b_alloc_ratio : float; (* opt / ref words per event *)
  b_reports_equal : bool; (* byte-identical report JSON on this trace *)
}

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let cv_mutexes_of program =
  List.sort_uniq String.compare
    (List.concat_map
       (fun f ->
         List.concat_map
           (fun b ->
             List.filter_map
               (function Cond_wait (_, m) -> Some m.base | _ -> None)
               b.ins)
           f.blocks)
       program.funcs)

(* One recorded execution of [program] under [mode]'s program form, with
   whatever instrumentation the mode wants active in the machine. *)
let record_trace info program mode ~fuel ~seed =
  let program =
    if Config.needs_lowering mode then
      Arde.Lower.lower ~style:info.Arde_workloads.Parsec.nolib_style program
    else program
  in
  let instrument =
    match Config.spin_k mode with
    | Some k -> Some (Arde.Instrument.analyze ~k program)
    | None -> None
  in
  let compiled = Machine.compile program in
  let trace = Trace.create () in
  let cfg =
    {
      Machine.default_config with
      Machine.seed;
      fuel;
      instrument;
      observer = Trace.observer trace;
    }
  in
  ignore (Machine.run cfg compiled);
  (Trace.events trace, instrument, cv_mutexes_of program)

(* Replay [events] through fresh engines built by [make], [repeats] times
   plus a discarded warm-up; median time and allocation per repetition.
   Each repetition streams the trace [inner] times through the same
   engine, so short workload traces still yield a steady-state
   measurement: the first pass populates the shadow state, the rest
   exercise the hot path on warm cells — the regime the per-event cost
   claim is about. *)
let replay ~make ~repeats ~inner events =
  let events = Array.of_list events in
  let times = ref [] and allocs = ref [] in
  for rep = 0 to repeats do
    let observe = make () in
    let a0 = alloc_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do
      for i = 0 to Array.length events - 1 do
        observe (Array.unsafe_get events i)
      done
    done;
    let t = Unix.gettimeofday () -. t0 in
    if rep > 0 then begin
      times := t :: !times;
      allocs := (alloc_words () -. a0) :: !allocs
    end
  done;
  (median !times, median !allocs)

let side_of ~n_events ~inner (time_s, alloc) =
  let n = float_of_int (max 1 (n_events * inner)) in
  {
    events_per_s = (if time_s > 0. then n /. time_s else 0.);
    words_per_event = alloc /. n;
  }

let bench_one ?(repeats = 3) info program mode ~fuel ~seed =
  let events, instrument, cv_mutexes = record_trace info program mode ~fuel ~seed in
  let n_events = List.length events in
  let detector_cfg = Config.make mode in
  let make_opt () =
    Arde.Engine.observer
      (Arde.Engine.create ~cv_mutexes detector_cfg ~instrument)
  in
  let make_ref () =
    Arde.Engine_ref.observer
      (Arde.Engine_ref.create ~cv_mutexes detector_cfg ~instrument)
  in
  (* enough passes that each timed repetition streams ~200k events *)
  let inner = max 1 (200_000 / max 1 n_events) in
  let opt = side_of ~n_events ~inner (replay ~make:make_opt ~repeats ~inner events) in
  let ref_ = side_of ~n_events ~inner (replay ~make:make_ref ~repeats ~inner events) in
  (* Differential spot check on this exact trace: reports and spin edges
     must agree byte for byte. *)
  let reports_equal =
    let e = Arde.Engine.create ~cv_mutexes detector_cfg ~instrument in
    let r = Arde.Engine_ref.create ~cv_mutexes detector_cfg ~instrument in
    List.iter (Arde.Engine.observer e) events;
    List.iter (Arde.Engine_ref.observer r) events;
    J.to_string (Arde.Report.to_json (Arde.Engine.report e))
    = J.to_string (Arde.Report.to_json (Arde.Engine_ref.report r))
    && Arde.Engine.n_spin_edges e = Arde.Engine_ref.n_spin_edges r
  in
  {
    b_workload = info.Arde_workloads.Parsec.pname;
    b_mode = Config.mode_name mode;
    b_events = n_events;
    b_ref = ref_;
    b_opt = opt;
    b_speedup =
      (if ref_.events_per_s > 0. then opt.events_per_s /. ref_.events_per_s
       else 0.);
    b_alloc_ratio =
      (if ref_.words_per_event > 0. then
         opt.words_per_event /. ref_.words_per_event
       else 0.);
    b_reports_equal = reports_equal;
  }

let default_workloads = [ "streamcluster"; "x264"; "blackscholes" ]

let run ?(repeats = 3) ?(workloads = default_workloads) ?(fuel = 200_000)
    ?(seed = 1) () =
  List.concat_map
    (fun name ->
      match Arde_workloads.Parsec.find name with
      | None -> []
      | Some (info, program) ->
          List.map
            (fun mode -> bench_one ~repeats info program mode ~fuel ~seed)
            Config.all_table1_modes)
    workloads

let side_to_json s =
  J.Obj
    [
      ("events_per_s", J.Float s.events_per_s);
      ("words_per_event", J.Float s.words_per_event);
    ]

let to_json rows =
  J.Obj
    [
      ("host_cores", J.Int (Domain.recommended_domain_count ()));
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("workload", J.String r.b_workload);
                   ("mode", J.String r.b_mode);
                   ("events", J.Int r.b_events);
                   ("ref", side_to_json r.b_ref);
                   ("opt", side_to_json r.b_opt);
                   ("speedup", J.Float r.b_speedup);
                   ("alloc_ratio", J.Float r.b_alloc_ratio);
                   ("reports_equal", J.Bool r.b_reports_equal);
                 ])
             rows) );
    ]

let render rows =
  let t =
    Arde_util.Table.create
      [
        "Workload"; "Mode"; "Events"; "ref ev/s"; "opt ev/s"; "speedup";
        "ref w/ev"; "opt w/ev"; "alloc ratio"; "reports";
      ]
  in
  List.iter
    (fun r ->
      Arde_util.Table.add_row t
        [
          r.b_workload;
          r.b_mode;
          string_of_int r.b_events;
          Printf.sprintf "%.3g" r.b_ref.events_per_s;
          Printf.sprintf "%.3g" r.b_opt.events_per_s;
          Printf.sprintf "%.2fx" r.b_speedup;
          Printf.sprintf "%.1f" r.b_ref.words_per_event;
          Printf.sprintf "%.1f" r.b_opt.words_per_event;
          Printf.sprintf "%.2fx" r.b_alloc_ratio;
          (if r.b_reports_equal then "equal" else "DIFFER");
        ])
    rows;
  Arde_util.Table.render t

(* The CI gate: the optimized engine must at least match the reference on
   the paper's central configuration, and the spot-check reports must all
   agree. *)
let gate rows =
  let key r = (r.b_workload, r.b_mode) in
  let central =
    List.find_opt
      (fun r -> key r = ("streamcluster", Config.mode_name (Config.Nolib_spin 7)))
      rows
  in
  let failures = ref [] in
  (match central with
  | None -> failures := "no streamcluster nolib+spin(7) row" :: !failures
  | Some r ->
      if r.b_speedup < 1.0 then
        failures :=
          Printf.sprintf
            "streamcluster nolib+spin(7): optimized engine at %.2fx of \
             reference throughput (< 1.0x)"
            r.b_speedup
          :: !failures);
  List.iter
    (fun r ->
      if not r.b_reports_equal then
        failures :=
          Printf.sprintf "%s under %s: reports differ between engines"
            r.b_workload r.b_mode
          :: !failures)
    rows;
  List.rev !failures
