(** Tables 1 and 2: the unit-suite experiments.

    Runs the 120-case labelled suite under detector configurations and
    tallies false-alarm / missed-race / failed / correct cases exactly the
    way the paper's tables report them. *)

type case_result = {
  case : Arde_workloads.Racey.case;
  verdict : Arde.Classify.verdict;
  outcome : Arde.Classify.outcome;
}

type mode_result = {
  mode : Arde.Config.mode;
  tally : Arde.Classify.tally;
  details : case_result list;
}

val suite_options : Arde.Options.t
(** Three seeds, 400k fuel, short-running state machine. *)

val run_mode :
  ?options:Arde.Options.t ->
  Arde.Config.mode ->
  Arde_workloads.Racey.case list ->
  mode_result

val failures_of : mode_result -> case_result list
val render : mode_result list -> string

val table1 :
  ?options:Arde.Options.t -> unit -> mode_result list * string
(** The paper's four configurations over the whole suite. *)

val table2 :
  ?options:Arde.Options.t ->
  ?ks:int list ->
  unit ->
  mode_result list * string
(** Window sensitivity, k in [ks] (default 3, 6, 7, 8). *)

val pp_failures : Format.formatter -> mode_result -> unit

val category_table : mode_result list -> string
(** False alarms and misses broken down by case category (lib / adhoc /
    racy) per configuration. *)
