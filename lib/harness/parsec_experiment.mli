(** Tables 3–6: the PARSEC part of the evaluation.

    Racy contexts per program and detector configuration, averaged over
    the seeds and capped at 1000 per run, with warnings surfaced for any
    run that did not finish cleanly. *)

type row = {
  info : Arde_workloads.Parsec.info;
  loc : int;
  contexts : (Arde.Config.mode * float) list;
  capped : (Arde.Config.mode * bool) list;
  bad : (Arde.Config.mode * Arde.Driver.seed_outcome) list;
}

val modes : Arde.Config.mode list
(** The four table columns. *)

val run_one :
  ?seeds:int list ->
  ?jobs:int ->
  Arde_workloads.Parsec.info * Arde.Types.program ->
  row

val table3 :
  ?programs:(Arde_workloads.Parsec.info * Arde.Types.program) list ->
  unit ->
  string
(** The static inventory (model, LOC, primitives used). *)

val table4 : ?seeds:int list -> ?jobs:int -> unit -> row list * string
(** Programs without ad-hoc synchronization. *)

val table5 : ?seeds:int list -> ?jobs:int -> unit -> row list * string
(** Programs with ad-hoc synchronization. *)

val table6 : ?seeds:int list -> ?jobs:int -> unit -> row list * string
(** All thirteen programs — the universal-detector summary. *)
