(** Differential machine benchmark behind [bench machine].

    Executes each workload × Table-1 mode end-to-end on the compiled
    {!Arde.Machine} and on the frozen {!Arde.Machine_ref}, measuring quiet
    steps/sec, GC-allocated words per step, and events/sec with an
    observer attached.  Each row spot-checks trace identity (event-stream
    hash and length must agree between the machines), and a straight-line
    probe asserts the optimized machine's steady-state step loop is
    allocation-free.

    The result set is written to [BENCH_machine.json] by the [bench]
    executable; {!gate} is the CI smoke criterion. *)

type side = {
  steps_per_s : float; (* quiet mode: default discarding observer *)
  words_per_step : float; (* GC-allocated words per machine step, quiet *)
  events_per_s : float; (* with a counting observer attached *)
}

type row = {
  m_workload : string;
  m_mode : string;
  m_steps : int; (* machine steps per run (deterministic) *)
  m_events : int; (* events observed per run *)
  m_ref : side;
  m_opt : side;
  m_speedup : float; (* opt / ref quiet steps per second *)
  m_alloc_ratio : float; (* opt / ref words per step *)
  m_traces_equal : bool; (* same event-stream hash and length *)
}

type probe = {
  p_steps : int;
  p_words_per_step : float; (* minor-words delta per step, quiet *)
  p_pass : bool; (* finished, and ~0 words per step *)
}

val run :
  ?repeats:int ->
  ?workloads:string list ->
  ?fuel:int ->
  ?seed:int ->
  unit ->
  row list * probe
(** Bench every named PARSEC workload (default: streamcluster, x264,
    blackscholes) under every Table-1 mode.  [repeats] timed repetitions
    per machine follow one discarded warm-up; times and allocations are
    medians. *)

val to_json : row list * probe -> Arde_util.Json.t
(** The BENCH_machine.json wire form. *)

val render : row list * probe -> string
(** Human-readable table of the same rows plus the probe verdict. *)

val gate : row list * probe -> string list
(** CI failure messages, empty when the run passes: the optimized machine
    must reach at least 1.0× of the reference's step throughput on
    streamcluster under nolib+spin(7), every trace spot-check must agree,
    and the straight-line probe must stay allocation-free. *)
