(* The paper's two performance figures:

   F1 — memory consumption per detector configuration (shadow cells,
   vector clocks, auxiliary tables), reported in detector heap words plus
   GC allocation, per workload.

   F2 — runtime overhead per configuration, reported as wall-clock time
   relative to executing the same program with no detector attached.

   The paper's claim is relative ("minor overhead due to the new
   feature"), so we report ratios against the spin-less hybrid. *)

module Parsec = Arde_workloads.Parsec
module Config = Arde.Config
module Machine = Arde.Machine
module Engine = Arde.Engine

type sample = {
  s_mode : string; (* "none" for the bare machine *)
  s_time_ns : float; (* per full run, median of repetitions *)
  s_alloc_words : float; (* GC minor+major words per run *)
  s_detector_words : int; (* live detector state at end of run *)
}

type fig = { workload : string; samples : sample list }

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

(* Words allocated so far, from the GC's own counters.  [quick_stat] does
   not force a heap walk; minor + major - promoted counts every allocation
   exactly once (promoted words would otherwise be double-counted). *)
let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* One full instrumented execution under [mode]; [None] runs the bare
   machine (the "native" baseline). *)
let run_once ~seed program_native program_lowered instrument_for mode () =
  match mode with
  | None ->
      let cfg = { Machine.default_config with Machine.seed } in
      ignore (Machine.run cfg program_native);
      0
  | Some mode ->
      let program =
        if Config.needs_lowering mode then program_lowered else program_native
      in
      let instrument = instrument_for mode in
      let engine = Engine.create (Config.make mode) ~instrument in
      let cfg =
        {
          Machine.default_config with
          Machine.seed;
          instrument;
          observer = Engine.observer engine;
        }
      in
      ignore (Machine.run cfg program);
      Engine.memory_words engine

let measure ?(repeats = 5) (info, program) =
  let lowered =
    Arde.Lower.lower ~style:info.Parsec.nolib_style program
  in
  let native_c = Machine.compile program in
  let lowered_c = Machine.compile lowered in
  let inst_native = lazy (Some (Arde.Instrument.analyze ~k:7 program)) in
  let inst_lowered = lazy (Some (Arde.Instrument.analyze ~k:7 lowered)) in
  let instrument_for = function
    | Config.Helgrind_lib | Config.Drd -> None
    | Config.Helgrind_spin _ -> Lazy.force inst_native
    | Config.Nolib_spin _ | Config.Nolib_spin_locks _ -> Lazy.force inst_lowered
  in
  let sample name mode =
    let times = ref [] and allocs = ref [] and words = ref 0 in
    (* Repetition 0 is a warm-up: it pays the one-time costs (lazy
       instrumentation analysis, hashtable growth, code paths cold in the
       icache) and is discarded before taking the median. *)
    for rep = 0 to repeats do
      let a0 = alloc_words () in
      let t =
        time_ns (fun () ->
            words :=
              run_once ~seed:(max 1 rep) native_c lowered_c instrument_for
                mode ())
      in
      if rep > 0 then begin
        times := t :: !times;
        allocs := (alloc_words () -. a0) :: !allocs
      end
    done;
    {
      s_mode = name;
      s_time_ns = median !times;
      s_alloc_words = median !allocs;
      s_detector_words = !words;
    }
  in
  {
    workload = info.Parsec.pname;
    samples =
      sample "none" None
      :: List.map
           (fun m -> sample (Config.mode_name m) (Some m))
           Config.all_table1_modes;
  }

let figure_rows figs ~value ~unit_name =
  let t =
    Arde_util.Table.create
      ([ "Workload" ]
      @ List.map (fun s -> s.s_mode) (List.hd figs).samples
      @ [ Printf.sprintf "spin/lib (%s)" unit_name ])
  in
  List.iter
    (fun f ->
      let v m =
        value (List.find (fun s -> s.s_mode = m) f.samples)
      in
      let lib = v "lib" in
      let ratio = if lib > 0. then v "lib+spin(7)" /. lib else 0. in
      Arde_util.Table.add_row t
        (f.workload
         :: List.map (fun s -> Printf.sprintf "%.2g" (value s)) f.samples
        @ [ Printf.sprintf "%.2f" ratio ]))
    figs;
  Arde_util.Table.render t

let figure1 figs =
  (* memory: detector words live at end of run + words allocated *)
  figure_rows figs ~value:(fun s -> float_of_int s.s_detector_words)
    ~unit_name:"words"

let figure2 figs =
  figure_rows figs ~value:(fun s -> s.s_time_ns /. 1e6) ~unit_name:"ms"

let default_workloads () =
  List.filter_map
    (fun name -> Parsec.find name)
    [ "streamcluster"; "x264"; "bodytrack"; "blackscholes" ]

let run_figures ?repeats () =
  let figs = List.map (measure ?repeats) (default_workloads ()) in
  (figs, figure1 figs, figure2 figs)
