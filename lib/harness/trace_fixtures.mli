(** Golden-trace fixtures for the interpreting machine.

    The machine's correctness oracle is *trace identity*: for a fixed
    (program form, policy, seed, fuel, perturbation) the machine must
    produce the exact same event sequence, forever.  This module owns the
    deterministic fixture enumeration — workload catalog × policies ×
    seeds, plus chaos-perturbed runs — and the per-run summaries
    ({!Arde.Trace.hash} + length, steps, outcome) that get committed to
    [test/fixtures/machine_traces.txt] and re-checked by
    [test_machine_diff] after every interpreter change. *)

type summary = {
  fx_length : int;  (** events in the trace *)
  fx_hash : int;  (** {!Arde.Trace.hash} of the trace *)
  fx_steps : int;  (** machine steps executed *)
  fx_outcome : string;  (** pretty-printed outcome *)
}

type run_spec = {
  rs_key : string;  (** unique, stable fixture key *)
  rs_policy : Arde.Sched.policy;
  rs_seed : int;
  rs_fuel : int;
  rs_spurious : bool;
  rs_inject_at : int option;
      (** raise a machine fault at the Nth observed event *)
}

type group = {
  g_name : string;
  g_program : Arde.Types.program;
      (** already lowered where the form wants it *)
  g_instrument : Arde.Instrument.t option;
  g_runs : run_spec list;
}

type impl = {
  mi_name : string;
  mi_run_group : group -> (string * summary) list;
}

val groups : unit -> group list
(** The full fixture enumeration: every racey case in raw and
    nolib-lowered form × 3 policies × 16 seeds, a raw+spin(7) form on a
    cross-section, all PARSEC programs × 4 seeds, and chaos variants
    (spurious wakeups, starved fuel, adversarial policies, injected
    faults) on a cross-section. *)

val make_impl :
  name:string ->
  compile:(Arde.Types.program -> 'c) ->
  run:(Arde.Machine.config -> 'c -> Arde.Machine.result) ->
  impl
(** Package a machine implementation; compilation happens once per
    group. *)

val current_machine : impl
(** {!Arde.Machine}. *)

val reference_machine : impl
(** {!Arde.Machine_ref}, the frozen oracle. *)

val run_all : impl -> (string * summary) list

val encode_line : string * summary -> string
val parse_line : string -> (string * summary) option
val write_file : string -> (string * summary) list -> unit
val read_file : string -> (string * summary) list
