(** Helgrind+ memory state machine.

    Each shared cell moves through ownership states; races are only
    reported once a cell is shared and modified.  The [sensitivity] knob is
    the paper's short-running vs. long-running distinction: the
    long-running variant arms on the first unsynchronized access and
    reports from the second on ("might miss a race on the first iteration,
    but not on the second"), trading sensitivity for fewer false positives
    in long integration runs. *)

type state =
  | Virgin (* never accessed *)
  | Exclusive of int (* owned by one thread so far *)
  | Shared_read (* several threads, reads only since sharing *)
  | Shared_modified (* several threads, at least one write *)

type sensitivity = Short_running | Long_running

val transition : state -> tid:int -> write:bool -> ordered:bool -> state
(** [ordered] — all prior conflicting accesses happen-before the current
    one; an ordered handover keeps the cell exclusive to the new thread. *)

val pp_state : Format.formatter -> state -> unit
val sensitivity_name : sensitivity -> string

val parse_sensitivity : string -> (sensitivity, string) result
(** Inverse of {!sensitivity_name}. *)
