(** The typed view of a recorded trace.

    {!Trace_codec} knows bytes; this module knows what they mean to the
    detector: the header's mode string becomes a {!Config.mode}, the
    options document becomes an {!Options.t}, the embedded program text
    is parsed and validated, and the digest is checked against the
    program it claims to describe.  Loading is strict — a recording that
    passes {!of_string} can be fed to [Driver.replay] without further
    validation — but event bodies stay {e encoded}: sections decode
    lazily, one seed at a time, on whichever domain replays them. *)

type t

val of_string : string -> (t, string) result
(** Decode and cross-check a complete binary trace.  Errors cover the
    codec's structural failures plus the semantic ones: unknown mode,
    ill-formed options document, program that fails to parse or
    validate, digest that does not match the embedded program. *)

val to_string : t -> string
(** Reassemble the exact bytes ({!of_string}'s inverse). *)

val header : t -> Arde_runtime.Trace_codec.header
val mode : t -> Config.mode
val options : t -> Options.t
(** The recording run's options; [inject] is always [None] (closures
    never cross the wire). *)

val program : t -> Arde_tir.Types.program
(** The recorded program, parsed from the embedded canonical text.
    This is the {e original} (pre-lowering) program: replay re-runs the
    static half, so a lowering mode lowers it again, identically. *)

val sections : t -> Arde_runtime.Trace_codec.section list
(** One per recorded seed, in recording (seed) order. *)

val digest_hex : t -> string
(** Hex digest of the canonical program text (verified at load). *)

val source : t -> string
(** The recording's free-form origin label (workload name); [""] when
    none was given. *)

val seeds : t -> int list
val n_events : t -> int  (** total across sections *)
