(** Process-wide cache for the static half of the pipeline.

    Lowering and spin instrumentation are pure functions of the program
    and a handful of knobs, yet the harnesses re-run them constantly: the
    suite analyzes each case once per detector configuration, a chaos
    storm analyzes the same program hundreds of times, and the bench
    sweeps repeat whole suites.  This cache memoizes both stages, keyed
    by [(program digest, knobs)]:

    - {!lowered} is keyed by [(digest, style)];
    - {!instrumented} is keyed by [(digest, k, count_callees)], where the
      digest is of the (possibly already lowered) program actually
      analyzed — so the lowering style is folded into the key by
      construction.

    The digest is of the program's canonical pretty-printed form, which
    the parser round-trips, so equal-printing programs are genuinely
    interchangeable.  Cached values ([Instrument.t], lowered programs)
    are immutable after construction and therefore safe to share across
    the driver's worker domains; the cache itself is mutex-guarded, so
    concurrent [Driver.run] calls may share it too.

    The cache is on by default.  [set_enabled false] makes both lookups
    recompute (and record misses) — used by the bench harness to measure
    the cache's contribution, and by tests comparing cached against
    fresh results. *)

val lowered : style:Arde_tir.Lower.style -> Arde_tir.Types.program ->
  Arde_tir.Types.program

val instrumented :
  count_callees:bool -> k:int -> Arde_tir.Types.program -> Arde_cfg.Instrument.t

type stats = {
  lower_hits : int;
  lower_misses : int;
  instrument_hits : int;
  instrument_misses : int;
}

val stats : unit -> stats
(** Counters since the last {!reset_stats}; misses include lookups made
    while the cache is disabled. *)

val reset_stats : unit -> unit

val clear : unit -> unit
(** Drop every entry (counters survive; use {!reset_stats} for those). *)

val set_enabled : bool -> unit
val enabled : unit -> bool
