(** Process-wide cache for the static half of the pipeline.

    Lowering and spin instrumentation are pure functions of the program
    and a handful of knobs, yet the harnesses re-run them constantly: the
    suite analyzes each case once per detector configuration, a chaos
    storm analyzes the same program hundreds of times, a bench sweep
    repeats whole suites, and the serve daemon sees the same program on
    every repeat submission.  This cache memoizes three stages, keyed by
    [(program digest, knobs)]:

    - {!lowered} is keyed by [(digest, style)];
    - {!instrumented} is keyed by [(digest, k, count_callees)], where the
      digest is of the (possibly already lowered) program actually
      analyzed — so the lowering style is folded into the key by
      construction;
    - {!prepare} is keyed by [(digest, mode, style, count_callees)] and
      caches the {e whole} pre-seed bundle — lowered program,
      instrumentation, condition-variable scan, lock inference, and the
      compiled machine.  A prepared hit is what lets a repeat submission
      skip straight to per-seed execution: the compiled form also
      carries the machine's per-instrumentation spin cache, so even that
      one-time cost survives across requests.

    The digest is of the program's canonical pretty-printed form, which
    the parser round-trips, so equal-printing programs are genuinely
    interchangeable.  Computing it costs a full pretty-print; callers
    that already hold a digest uniquely identifying the program (the
    serve daemon digests each request's program text anyway) pass it as
    [?digest] to {!prepare} and skip that cost on the warm path.
    Cached values are immutable after construction (the compiled form's
    internal spin cache is lock-free) and therefore safe to share across
    the driver's worker domains; the cache itself is mutex-guarded, so
    concurrent [Driver.run] calls may share it too.

    The prepared table is bounded ([max_prepared] entries, oldest
    evicted) because each entry pins a compiled machine; the two inner
    tables hold only analysis results and are unbounded as before.

    The cache is on by default.  [set_enabled false] makes all lookups
    recompute (and record misses) — used by the bench harness to measure
    the cache's contribution, and by tests comparing cached against
    fresh results. *)

type prepared = {
  p_program : Arde_tir.Types.program;  (** lowered iff the mode lowers *)
  p_instrument : Arde_cfg.Instrument.t option;
  p_cv_mutexes : string list;
  p_inferred_locks : string list;
  p_compiled : Arde_runtime.Machine.compiled;
}

val prepare :
  ?digest:string ->
  style:Arde_tir.Lower.style ->
  count_callees:bool ->
  Config.mode ->
  Arde_tir.Types.program ->
  prepared
(** The full static half for one (program, mode): what {!Driver.run}
    does before any seed executes.  [?digest] must uniquely identify
    [program] (any injective digest will do — the canonical one and the
    serve daemon's request-text digest coexist as distinct keys);
    omitted, the canonical digest is computed here. *)

val digest_of_program : Arde_tir.Types.program -> string
(** Digest of the program's canonical pretty-printed form — the cache's
    native key. *)

val lowered : style:Arde_tir.Lower.style -> Arde_tir.Types.program ->
  Arde_tir.Types.program

val instrumented :
  count_callees:bool -> k:int -> Arde_tir.Types.program -> Arde_cfg.Instrument.t

type stats = {
  lower_hits : int;
  lower_misses : int;
  instrument_hits : int;
  instrument_misses : int;
  prepare_hits : int;
  prepare_misses : int;
}

val stats : unit -> stats
(** Counters since the last {!reset_stats}; misses include lookups made
    while the cache is disabled.  A {!prepare} miss also records the
    inner lower/instrument lookups it performs; a prepare hit touches
    neither. *)

val stats_delta : before:stats -> after:stats -> stats
(** Counter movement between two snapshots — what one request did. *)

val stats_to_json : stats -> Arde_util.Json.t
(** The six counters as a JSON object; the shared shape [arde run
    --format json], the serve responses and the bench artifacts all
    use. *)

val reset_stats : unit -> unit

val clear : unit -> unit
(** Drop every entry (counters survive; use {!reset_stats} for those). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {2 Second-level store}

    An optional persistent cache level consulted between the in-memory
    table and a fresh computation: {!prepare} resolves a miss as
    memory → [store_load] → compute, and calls [store_save] only for
    freshly computed bundles (never for ones the store itself supplied).
    The serve worker registers the on-disk content-addressed bundle
    store here; the indirection exists because that store lives in
    [Arde_server], which depends on this library.

    Both callbacks run outside the cache mutex and inside the key's
    single-flight section: for any given key at most one caller is
    loading/computing/saving at a time within this process, concurrent
    callers wait and reuse the published result.  Callbacks must not
    call back into {!prepare}. *)

type store_key = {
  sk_digest : string;  (** the {!prepare} [?digest], verbatim *)
  sk_mode : Config.mode;
  sk_style : Arde_tir.Lower.style;
  sk_count_callees : bool;
}

type store = {
  store_load : store_key -> prepared option;
  store_save : store_key -> prepared -> unit;
}

val set_store : store option -> unit
(** Register (or, with [None], remove) the second cache level.  The
    store is only consulted while the cache is enabled. *)
