open Arde_tir.Types
module Vc = Arde_vclock.Vector_clock

type read = { r_tid : int; r_clk : int; r_loc : loc }

type cell = {
  mutable state : Msm.state;
  mutable lockset : Lockset.t;
  (* Last-write epoch, fields inlined so a write allocates nothing.
     [w_tid = -1] means the cell was never written. *)
  mutable w_tid : int;
  mutable w_clk : int;
  mutable w_loc : loc;
  mutable w_atomic : bool;
  mutable w_vc : Vc.t;
      (* full writer clock at the last write; only maintained for bases
         spin edges can source from (sync bases), [Vc.bottom] otherwise *)
  (* Read state: a single inlined epoch in the common same-thread case
     ([rd_tid >= 0]), lazily promoted to a list on concurrent reads
     ([rd_tid = promoted]); [rd_tid = -1] means no reads since the last
     write. *)
  mutable rd_tid : int;
  mutable rd_clk : int;
  mutable rd_loc : loc;
  mutable rd_list : read list;
      (* promoted representation: latest read per thread, newest first —
         exactly the reference engine's [Shadow.cell.reads] order *)
  mutable atomic_vc : Vc.t;
  mutable primed : bool;
}

let none = -1
let promoted = -2

type t = {
  mutable rows : cell option array array; (* outer index: interned base id *)
  spill : (string * int, cell) Hashtbl.t; (* events without a base id *)
  mutable n_cells : int;
}

let no_loc = { lfunc = ""; lblk = ""; lidx = 0 }
let no_row : cell option array = [||]

let create () = { rows = Array.make 16 no_row; spill = Hashtbl.create 16; n_cells = 0 }

let fresh () =
  {
    state = Msm.Virgin;
    lockset = Lockset.top;
    w_tid = none;
    w_clk = 0;
    w_loc = no_loc;
    w_atomic = false;
    w_vc = Vc.bottom;
    rd_tid = none;
    rd_clk = 0;
    rd_loc = no_loc;
    rd_list = [];
    atomic_vc = Vc.bottom;
    primed = false;
  }

let spill_cell t key =
  match Hashtbl.find_opt t.spill key with
  | Some c -> c
  | None ->
      let c = fresh () in
      Hashtbl.replace t.spill key c;
      t.n_cells <- t.n_cells + 1;
      c

let cell t ~base_id ~base ~idx =
  if base_id < 0 then spill_cell t (base, idx)
  else begin
    if base_id >= Array.length t.rows then begin
      let rows = Array.make (max (2 * Array.length t.rows) (base_id + 1)) no_row in
      Array.blit t.rows 0 rows 0 (Array.length t.rows);
      t.rows <- rows
    end;
    let row = t.rows.(base_id) in
    let row =
      if idx < Array.length row then row
      else begin
        let row' = Array.make (max (2 * Array.length row) (idx + 1)) None in
        Array.blit row 0 row' 0 (Array.length row);
        t.rows.(base_id) <- row';
        row'
      end
    in
    match Array.unsafe_get row idx with
    | Some c -> c
    | None ->
        let c = fresh () in
        row.(idx) <- Some c;
        t.n_cells <- t.n_cells + 1;
        c
  end

let rec mem_tid tid = function
  | [] -> false
  | r :: rest -> r.r_tid = tid || mem_tid tid rest

(* Record a read access with the reference engine's replacement
   discipline: the accessor's previous entry is dropped, everyone else's
   is kept, newest first. *)
let record_read c ~tid ~clk ~loc =
  if c.rd_tid = tid then begin
    c.rd_clk <- clk;
    c.rd_loc <- loc
  end
  else if c.rd_tid = none then begin
    c.rd_tid <- tid;
    c.rd_clk <- clk;
    c.rd_loc <- loc
  end
  else if c.rd_tid >= 0 then begin
    (* second concurrent reader: promote the inlined epoch to a list *)
    c.rd_list <-
      [
        { r_tid = tid; r_clk = clk; r_loc = loc };
        { r_tid = c.rd_tid; r_clk = c.rd_clk; r_loc = c.rd_loc };
      ];
    c.rd_tid <- promoted
  end
  else begin
    (* Promoted list.  Same contents and order as prepend + filter, but
       share structure where the filter would copy unchanged cells: no
       old entry for [tid] → cons onto the existing list; old entry at
       the head (a repeat reader racing the same cell) → replace it. *)
    let nr = { r_tid = tid; r_clk = clk; r_loc = loc } in
    match c.rd_list with
    | r0 :: rest when r0.r_tid = tid -> c.rd_list <- nr :: rest
    | l ->
        c.rd_list <-
          (if mem_tid tid l then
             nr :: List.filter (fun r -> r.r_tid <> tid) l
           else nr :: l)
  end

(* A write demotes the read state back to the empty epoch. *)
let clear_reads c =
  c.rd_tid <- none;
  c.rd_list <- []

let n_cells t = t.n_cells

let cell_words c =
  16
  + Vc.size_words c.w_vc + Vc.size_words c.atomic_vc
  + (6 * List.length c.rd_list)

let size_words t =
  let acc = ref 0 in
  Array.iter
    (fun row ->
      acc := !acc + 1 + Array.length row;
      Array.iter
        (function Some c -> acc := !acc + cell_words c | None -> ())
        row)
    t.rows;
  Hashtbl.iter (fun _ c -> acc := !acc + 4 + cell_words c) t.spill;
  !acc

let iter_cells t f =
  Array.iter
    (fun row -> Array.iter (function Some c -> f c | None -> ()) row)
    t.rows;
  Hashtbl.iter (fun _ c -> f c) t.spill
