type t =
  | Text of string
  | Program of Arde_tir.Types.program
  | Recorded_trace of Recorded.t

let of_text s = Text s
let of_program p = Program p
let of_trace r = Recorded_trace r

let describe = function
  | Text s -> Printf.sprintf "source text (%d bytes)" (String.length s)
  | Program p ->
      Printf.sprintf "program (%d function%s)"
        (List.length p.Arde_tir.Types.funcs)
        (if List.length p.Arde_tir.Types.funcs = 1 then "" else "s")
  | Recorded_trace r ->
      Printf.sprintf "recorded trace (%d seeds, %d events, digest %s)"
        (List.length (Recorded.sections r))
        (Recorded.n_events r) (Recorded.digest_hex r)
