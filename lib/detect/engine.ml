open Arde_tir.Types
module Vc = Arde_vclock.Vector_clock
module Instrument = Arde_cfg.Instrument
module Event = Arde_runtime.Event
module Sh = Shadow_epoch

(* The optimized engine.  Semantically a clone of {!Engine_ref} — the
   differential suite holds the two to byte-identical reports — but the
   per-event hot path allocates nothing:

   - per-thread clocks are mutable fixed-capacity arrays ([Vc.m]); ticks
     and joins mutate in place, and release operations share one lazily
     computed immutable snapshot per thread until the clock next changes
     (mirroring the reference engine's pointer sharing);
   - shadow cells live in flat rows indexed by the interned base id events
     carry, with last-write and single-reader state inlined as epochs
     ({!Shadow_epoch});
   - race checks are two passes over the inlined epochs: a scan deciding
     whether anything is concurrent, and — only when a warning fires — a
     second pass emitting reports in the reference order (previous write
     first, then reads, newest first). *)

type t = {
  cfg : Config.t;
  instrument : Instrument.t option;
  cv_mutexes : (string, unit) Hashtbl.t;
  inferred_locks : (string, unit) Hashtbl.t;
  (* mode predicates, resolved once at [create] so the per-event path
     never re-matches on the mode *)
  f_lib_sync : bool;
  f_use_lockset : bool;
  f_lock_hb : bool;
  f_infer_locks : bool;
  f_spin : bool; (* spin window active; also gates atomics-as-sync *)
  f_drd : bool;
  f_lockset_active : bool;
  vcs : Vc.m array; (* per-thread clocks, mutated in place *)
  snaps : Vc.t array; (* cached immutable snapshot per thread... *)
  snap_ok : bool array; (* ...valid until the thread's clock changes *)
  exit_vcs : Vc.t array;
  held : Lockset.Held.h;
  shadow : Sh.t;
  mutex_vc : (string * int, Vc.t) Hashtbl.t;
  cv_vc : (string * int, Vc.t) Hashtbl.t;
  sem_vc : (string * int, Vc.t) Hashtbl.t;
  barrier_vc : (string * int * int, Vc.t) Hashtbl.t;
  spin_acc : (int, (int * int, Vc.t) Hashtbl.t) Hashtbl.t;
      (* open spin contexts; inner tables keyed by (base id, idx) *)
  mutable sup_cache : int array;
      (* per base id: -1 unknown, 0 ordinary, 1 sync base (suppressed) *)
  keep_all_wvc : bool;
      (* no instrumentation to narrow by (hand-fed spin streams): keep the
         full writer clock on every cell so spin edges stay sourced *)
  report : Report.t;
  mutable spin_edges : int;
  (* memo of the last spin recording: a spinning read re-observing the
     same cell with the same writer clock re-stores an identical binding,
     so skip the table write (and its tuple key) entirely.  Cleared
     whenever a spin context opens or closes. *)
  mutable lsr_ctx : int;
  mutable lsr_base_id : int;
  mutable lsr_idx : int;
  mutable lsr_wvc : Vc.t;
}

let spin_active_cfg cfg = Config.spin_k cfg.Config.mode <> None

let create ?(cv_mutexes = []) ?(inferred_locks = []) ?(threads = max_threads)
    cfg ~instrument =
  let cvm = Hashtbl.create 4 in
  List.iter (fun b -> Hashtbl.replace cvm b ()) cv_mutexes;
  let inf = Hashtbl.create 4 in
  List.iter (fun b -> Hashtbl.replace inf b ()) inferred_locks;
  let cap_threads = max threads max_threads in
  let mode = cfg.Config.mode in
  {
    cfg;
    instrument;
    cv_mutexes = cvm;
    inferred_locks = inf;
    f_lib_sync = Config.lib_sync mode;
    f_use_lockset = Config.use_lockset mode;
    f_lock_hb = Config.lock_hb mode;
    f_infer_locks = Config.infer_locks mode;
    f_spin = Config.spin_k mode <> None;
    f_drd = (mode = Config.Drd);
    f_lockset_active =
      Config.use_lockset mode
      || (Config.infer_locks mode && Hashtbl.length inf > 0);
    vcs = Array.init cap_threads (fun tid -> Vc.make_mut ~owner:tid cap_threads);
    snaps = Array.make cap_threads Vc.bottom;
    snap_ok = Array.make cap_threads true; (* bottom is a valid snapshot *)
    exit_vcs = Array.make cap_threads Vc.bottom;
    held = Lockset.Held.create ();
    shadow = Sh.create ();
    mutex_vc = Hashtbl.create 8;
    cv_vc = Hashtbl.create 8;
    sem_vc = Hashtbl.create 8;
    barrier_vc = Hashtbl.create 8;
    spin_acc = Hashtbl.create 8;
    sup_cache = Array.make 16 (-1);
    keep_all_wvc = spin_active_cfg cfg && instrument = None;
    report = Report.create ~cap:cfg.Config.cap ();
    spin_edges = 0;
    lsr_ctx = -1;
    lsr_base_id = 0;
    lsr_idx = 0;
    lsr_wvc = Vc.bottom;
  }

let report t = t.report
let n_shadow_cells t = Sh.n_cells t.shadow
let n_spin_edges t = t.spin_edges

let lib_sync t = t.f_lib_sync

(* Clock plumbing.  [snap] is the only producer of stored clocks; its
   cache makes consecutive releases by an un-ticked thread share one
   immutable array, like the reference engine's pointer sharing.  A join
   that grows nothing leaves the cached snapshot valid, so re-acquiring
   an already-seen clock (spin loops hammering the same atomic) costs no
   allocation on the next release. *)
let tick t tid =
  Vc.mtick t.vcs.(tid) tid;
  t.snap_ok.(tid) <- false

let acquire_clock t tid c =
  if Vc.mjoin_changed t.vcs.(tid) c then t.snap_ok.(tid) <- false

let snap t tid =
  if t.snap_ok.(tid) then t.snaps.(tid)
  else begin
    let s = Vc.snapshot t.vcs.(tid) in
    t.snaps.(tid) <- s;
    t.snap_ok.(tid) <- true;
    s
  end

let table_join tbl key c =
  let cur = Option.value ~default:Vc.bottom (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (Vc.join cur c)

let table_get tbl key =
  Option.value ~default:Vc.bottom (Hashtbl.find_opt tbl key)

(* Is the base a spin-condition variable (treated as synchronization)?
   Same predicate as the reference engine, memoized per interned base id
   so the hot path skips the string set lookup. *)
let suppressed_uncached t base =
  match t.instrument with
  | Some inst -> Instrument.is_sync_base inst base
  | None -> false

let suppressed t ~base_id ~base =
  if base_id < 0 then suppressed_uncached t base
  else begin
    if base_id >= Array.length t.sup_cache then begin
      let c = Array.make (max (2 * Array.length t.sup_cache) (base_id + 1)) (-1) in
      Array.blit t.sup_cache 0 c 0 (Array.length t.sup_cache);
      t.sup_cache <- c
    end;
    match t.sup_cache.(base_id) with
    | -1 ->
        let s = suppressed_uncached t base in
        t.sup_cache.(base_id) <- (if s then 1 else 0);
        s
    | 0 -> false
    | _ -> true
  end

let spin_active t = t.f_spin
let atomics_sync t = t.f_spin

(* Does this cell need its full writer clock kept?  Only bases spin edges
   can source from: marked condition loads target sync bases, so everyone
   else keeps the O(1) epoch and a write allocates nothing. *)
let keep_wvc t ~sup = spin_active t && (t.keep_all_wvc || sup)

(* Closure-free scan of a promoted read list for a reader concurrent with
   [tid]'s clock [vcs_t]. *)
let rec any_read_conc vcs_t tid = function
  | [] -> false
  | (r : Sh.read) :: rest ->
      (r.r_tid <> tid && Vc.mget vcs_t r.r_tid < r.r_clk)
      || any_read_conc vcs_t tid rest

(* Report decision for one plain access.  Two passes over the epochs: the
   concurrency scan, then — only when a warning actually fires — report
   emission in the reference order. *)
let check_access t ~tid ~base ~idx ~loc ~write (cell : Sh.cell) =
  let vcs_t = t.vcs.(tid) in
  let w_conc =
    cell.w_tid >= 0 && cell.w_tid <> tid
    && Vc.mget vcs_t cell.w_tid < cell.w_clk
  in
  let reads_conc =
    write
    && (if cell.rd_tid >= 0 then
          cell.rd_tid <> tid && Vc.mget vcs_t cell.rd_tid < cell.rd_clk
        else
          cell.rd_tid = Sh.promoted && any_read_conc vcs_t tid cell.rd_list)
  in
  let has_concurrent = w_conc || reads_conc in
  let entering_shared =
    match cell.state with
    | Msm.Virgin | Msm.Exclusive _ -> true
    | Msm.Shared_read | Msm.Shared_modified -> false
  in
  let new_state =
    Msm.transition cell.state ~tid ~write ~ordered:(not has_concurrent)
  in
  (match new_state with
  | Msm.Shared_read | Msm.Shared_modified when t.f_lockset_active ->
      if entering_shared then
        cell.lockset <- Lockset.Held.current t.held tid
      else if not (Lockset.is_empty cell.lockset) then
        (* narrowing an already-empty set is the identity — skip the
           intersection (and its allocation) on the steady-state path *)
        cell.lockset <-
          Lockset.inter cell.lockset (Lockset.Held.current t.held tid)
  | Msm.Virgin | Msm.Exclusive _ | Msm.Shared_read | Msm.Shared_modified -> ());
  cell.state <- new_state;
  let report_it =
    has_concurrent
    && (t.f_drd
       || new_state = Msm.Shared_modified
          && ((not t.f_lockset_active) || Lockset.is_empty cell.lockset))
  in
  if report_it then begin
    match t.cfg.Config.sensitivity with
    | Msm.Long_running when not cell.primed ->
        (* first warning on a long-running cell arms it silently *)
        cell.primed <- true
    | Msm.Long_running | Msm.Short_running ->
        let add ~first_tid ~first_loc ~first_write =
          Report.add t.report
            {
              Report.r_base = base;
              r_idx = idx;
              r_first_tid = first_tid;
              r_first_loc = first_loc;
              r_first_write = first_write;
              r_second_tid = tid;
              r_second_loc = loc;
              r_second_write = write;
              r_predicted = false;
            }
        in
        if w_conc then
          add ~first_tid:cell.w_tid ~first_loc:cell.w_loc ~first_write:true;
        if write then
          if cell.rd_tid >= 0 then begin
            if cell.rd_tid <> tid && Vc.mget vcs_t cell.rd_tid < cell.rd_clk
            then add ~first_tid:cell.rd_tid ~first_loc:cell.rd_loc ~first_write:false
          end
          else if cell.rd_tid = Sh.promoted then
            List.iter
              (fun (r : Sh.read) ->
                if r.r_tid <> tid && Vc.mget vcs_t r.r_tid < r.r_clk then
                  add ~first_tid:r.r_tid ~first_loc:r.r_loc ~first_write:false)
              cell.rd_list
  end

let spin_record t ~tid ~base_id ~base ~idx spin =
  List.iter
    (fun (_loop, ctx) ->
      match Hashtbl.find_opt t.spin_acc ctx with
      | None -> () (* context of another thread or already closed *)
      | Some acc ->
          let cell = Sh.cell t.shadow ~base_id ~base ~idx in
          if
            cell.w_tid >= 0 && cell.w_tid <> tid
            && not
                 (ctx = t.lsr_ctx && base_id = t.lsr_base_id
                && idx = t.lsr_idx && cell.w_vc == t.lsr_wvc)
          then begin
            Hashtbl.replace acc (base_id, idx) cell.w_vc;
            t.lsr_ctx <- ctx;
            t.lsr_base_id <- base_id;
            t.lsr_idx <- idx;
            t.lsr_wvc <- cell.w_vc
          end)
    spin

let on_read t ~tid ~base ~base_id ~idx ~loc ~kind ~spin =
  if spin <> [] && spin_active t then
    spin_record t ~tid ~base_id ~base ~idx spin;
  let cell = Sh.cell t.shadow ~base_id ~base ~idx in
  match kind with
  | Event.Atomic ->
      if atomics_sync t then acquire_clock t tid cell.atomic_vc
  | Event.Plain ->
      if not (suppressed t ~base_id ~base) then
        check_access t ~tid ~base ~idx ~loc ~write:false cell;
      Sh.record_read cell ~tid ~clk:(Vc.mget t.vcs.(tid) tid) ~loc

let on_write t ~tid ~base ~base_id ~idx ~loc ~kind ~value =
  let cell = Sh.cell t.shadow ~base_id ~base ~idx in
  let sup = suppressed t ~base_id ~base in
  (match kind with
  | Event.Atomic ->
      if t.f_infer_locks && Hashtbl.mem t.inferred_locks base
      then begin
        if value = 1 then Lockset.Held.acquire t.held tid (base, idx)
        else if value = 0 then Lockset.Held.release t.held tid (base, idx)
      end;
      if atomics_sync t then begin
        acquire_clock t tid cell.atomic_vc;
        cell.atomic_vc <- snap t tid
      end
  | Event.Plain ->
      if not sup then check_access t ~tid ~base ~idx ~loc ~write:true cell);
  if keep_wvc t ~sup then cell.w_vc <- snap t tid;
  cell.w_tid <- tid;
  cell.w_clk <- Vc.mget t.vcs.(tid) tid;
  cell.w_loc <- loc;
  cell.w_atomic <- kind = Event.Atomic;
  Sh.clear_reads cell;
  (* Tick so that the writer's post-write work is not covered by the
     release snapshot readers may acquire. *)
  if kind = Event.Atomic || sup then tick t tid

let observer t (ev : Event.t) =
  match ev with
  | Event.Thread_start { tid } ->
      if Vc.m_is_bottom t.vcs.(tid) then tick t tid
  | Event.Spawn_ev { parent; child; _ } ->
      Vc.mjoin_m t.vcs.(child) t.vcs.(parent);
      tick t child;
      tick t parent
  | Event.Thread_exit { tid } -> t.exit_vcs.(tid) <- snap t tid
  | Event.Join_return { tid; target; _ } ->
      if lib_sync t then acquire_clock t tid t.exit_vcs.(target)
  | Event.Lock_acq { tid; base; idx; _ } ->
      if t.f_use_lockset then
        Lockset.Held.acquire t.held tid (base, idx);
      if t.f_lock_hb || (lib_sync t && Hashtbl.mem t.cv_mutexes base)
      then acquire_clock t tid (table_get t.mutex_vc (base, idx))
  | Event.Lock_rel { tid; base; idx; _ } ->
      if t.f_use_lockset then
        Lockset.Held.release t.held tid (base, idx);
      if t.f_lock_hb || (lib_sync t && Hashtbl.mem t.cv_mutexes base)
      then begin
        Hashtbl.replace t.mutex_vc (base, idx) (snap t tid);
        tick t tid
      end
  | Event.Cv_signal { tid; base; idx; _ } ->
      if lib_sync t then begin
        table_join t.cv_vc (base, idx) (snap t tid);
        tick t tid
      end
  | Event.Cv_wait_begin _ -> () (* the CV checker's event, not ours *)
  | Event.Cv_wait_return { tid; base; idx; _ } ->
      if lib_sync t then acquire_clock t tid (table_get t.cv_vc (base, idx))
  | Event.Barrier_arrive { tid; base; idx; generation; _ } ->
      if lib_sync t then begin
        table_join t.barrier_vc (base, idx, generation) (snap t tid);
        tick t tid
      end
  | Event.Barrier_pass { tid; base; idx; generation; _ } ->
      if lib_sync t then begin
        acquire_clock t tid (table_get t.barrier_vc (base, idx, generation));
        Hashtbl.remove t.barrier_vc (base, idx, generation - 2)
      end
  | Event.Sem_post_ev { tid; base; idx; _ } ->
      if lib_sync t then begin
        table_join t.sem_vc (base, idx) (snap t tid);
        tick t tid
      end
  | Event.Sem_acquire { tid; base; idx; _ } ->
      if lib_sync t then acquire_clock t tid (table_get t.sem_vc (base, idx))
  | Event.Spin_enter { ctx; _ } ->
      if spin_active t then begin
        t.lsr_ctx <- -1;
        Hashtbl.replace t.spin_acc ctx (Hashtbl.create 4)
      end
  | Event.Spin_exit { tid; ctx; _ } -> (
      t.lsr_ctx <- -1;
      match Hashtbl.find_opt t.spin_acc ctx with
      | None -> ()
      | Some acc ->
          Hashtbl.iter
            (fun _key wvc ->
              t.spin_edges <- t.spin_edges + 1;
              acquire_clock t tid wvc)
            acc;
          Hashtbl.remove t.spin_acc ctx)
  | Event.Read { tid; base; base_id; idx; loc; kind; spin; _ } ->
      on_read t ~tid ~base ~base_id ~idx ~loc ~kind ~spin
  | Event.Write { tid; base; base_id; idx; loc; kind; value; _ } ->
      on_write t ~tid ~base ~base_id ~idx ~loc ~kind ~value

let memory_words t =
  let clock_words =
    Array.fold_left (fun acc m -> acc + Vc.msize_words m) 0 t.vcs
  in
  let table_words tbl =
    Hashtbl.fold (fun _ c acc -> acc + 4 + Vc.size_words c) tbl 0
  in
  clock_words + Sh.size_words t.shadow + table_words t.mutex_vc
  + table_words t.cv_vc + table_words t.sem_vc
  + Hashtbl.fold (fun _ c acc -> acc + 5 + Vc.size_words c) t.barrier_vc 0
  (* Open spin contexts hold a clock snapshot per watched cell; they are
     live detector state like any other table. *)
  + Hashtbl.fold
      (fun _ acc_tbl acc ->
        acc + 2
        + Hashtbl.fold (fun _ c a -> a + 4 + Vc.size_words c) acc_tbl 0)
      t.spin_acc 0
