(** Epoch-based shadow memory: the optimized {!Engine}'s per-cell state.

    Three changes relative to the reference {!Shadow}:

    - cells live in flat rows indexed by the interned base id events carry
      ({!Arde_runtime.Event}), so the per-access lookup is two array
      indexings instead of hashing a [(string, int)] tuple (events without
      an id — hand-built streams — fall back to a spill table);
    - the last write is an inlined epoch ([w_tid], [w_clk], location)
      rather than an [access option], so recording a write allocates
      nothing;
    - the read state is a single inlined epoch while one thread is reading
      and is only promoted to the reference engine's latest-read-per-thread
      list when a second thread shows up.  A write demotes it back
      ({!clear_reads}).

    The full writer clock [w_vc] — needed only as the source of spin
    happens-before edges — is maintained solely for bases the engine marks
    as spin-condition variables; everything else keeps the O(1) epoch. *)

open Arde_tir.Types
module Vc = Arde_vclock.Vector_clock

type read = { r_tid : int; r_clk : int; r_loc : loc }

type cell = {
  mutable state : Msm.state;
  mutable lockset : Lockset.t;
  mutable w_tid : int; (* -1: never written *)
  mutable w_clk : int;
  mutable w_loc : loc;
  mutable w_atomic : bool;
  mutable w_vc : Vc.t; (* writer's full clock; sync bases only *)
  mutable rd_tid : int; (* >= 0: single epoch; -1: none; -2: promoted *)
  mutable rd_clk : int;
  mutable rd_loc : loc;
  mutable rd_list : read list; (* promoted: latest read per thread *)
  mutable atomic_vc : Vc.t;
  mutable primed : bool;
}

val none : int
(** [-1], the empty [w_tid]/[rd_tid] marker. *)

val promoted : int
(** [-2], the [rd_tid] marker for the list representation. *)

type t

val create : unit -> t

val cell : t -> base_id:int -> base:string -> idx:int -> cell
(** Find or allocate.  [base] is only consulted when [base_id < 0]. *)

val record_read : cell -> tid:int -> clk:int -> loc:loc -> unit
val clear_reads : cell -> unit

val n_cells : t -> int
(** Cells materialized so far (touched, not capacity). *)

val size_words : t -> int
(** Approximate heap words held (memory experiment). *)

val iter_cells : t -> (cell -> unit) -> unit
