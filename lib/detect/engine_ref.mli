(** The reference race-detection engine: the original, straightforward
    implementation kept as a differential-testing oracle for the optimized
    {!Engine}.  Semantics are frozen — the two must produce byte-identical
    {!Report}s on every event stream; [test_engine_diff] enforces it.

    A pure observer over the machine's event stream implementing all four
    detector configurations.

    One engine instance analyzes one execution.  Happens-before edges are
    drawn from: thread creation and join, condition variables, barriers,
    semaphores, atomic release/acquire chains, lock order (DRD only), and
    — in spin modes — the paper's runtime phase: every marked condition
    load snapshots the clock its cell's last writer had at the counterpart
    write, and the spinning thread joins those snapshots when it leaves the
    loop.  Accesses to globals marked as spin-condition variables are
    synchronization accesses and never reported ("synchronization races"
    suppression).

    The hybrid configurations additionally run the Eraser lockset and the
    Helgrind+ memory state machine; a warning needs a shared-modified cell,
    an empty candidate lockset and happens-before-concurrent accesses.  DRD
    reports on happens-before concurrency alone. *)

type t

val create :
  ?cv_mutexes:string list ->
  ?inferred_locks:string list ->
  ?threads:int ->
  Config.t ->
  instrument:Arde_cfg.Instrument.t option ->
  t
(** [instrument] must be the same metadata the machine runs with (or [None]
    for spin-less modes).  [cv_mutexes] are the global bases of mutexes
    associated with a condition variable (statically, via [cond_wait]):
    Helgrind+'s condition-variable pattern handling draws lock-order edges
    for exactly these mutexes, so gate-under-mutex fast paths do not
    false-positive in hybrid mode.  [threads] raises the per-thread
    capacity above [Tir.Types.max_threads] for hand-built event streams
    (the machine itself never exceeds the cap). *)

val observer : t -> Arde_runtime.Event.t -> unit
val report : t -> Report.t
val memory_words : t -> int
(** Approximate detector heap footprint (shadow cells + clock tables). *)

val n_shadow_cells : t -> int
val n_spin_edges : t -> int
(** Happens-before edges injected by spin-loop exits so far. *)
