type stats = {
  lower_hits : int;
  lower_misses : int;
  instrument_hits : int;
  instrument_misses : int;
}

let lock = Mutex.create ()
let lower_tbl : (string * Arde_tir.Lower.style, Arde_tir.Types.program) Hashtbl.t =
  Hashtbl.create 64
let inst_tbl : (string * int * bool, Arde_cfg.Instrument.t) Hashtbl.t =
  Hashtbl.create 64

let lower_hits = ref 0
let lower_misses = ref 0
let inst_hits = ref 0
let inst_misses = ref 0
let on = ref true

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let digest prog = Digest.string (Arde_tir.Pretty.program_to_string prog)

(* Look up under the mutex; compute outside it (analysis can be slow and
   must not serialize unrelated cache users), then publish.  A racing
   duplicate computation is harmless: both compute equal values and the
   second [replace] wins. *)
let memo tbl hits misses key compute =
  let cached =
    locked (fun () ->
        if !on then
          match Hashtbl.find_opt tbl key with
          | Some v ->
              incr hits;
              Some v
          | None ->
              incr misses;
              None
        else begin
          incr misses;
          None
        end)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = compute () in
      locked (fun () -> if !on then Hashtbl.replace tbl key v);
      v

let lowered ~style prog =
  memo lower_tbl lower_hits lower_misses
    (digest prog, style)
    (fun () -> Arde_tir.Lower.lower ~style prog)

let instrumented ~count_callees ~k prog =
  memo inst_tbl inst_hits inst_misses
    (digest prog, k, count_callees)
    (fun () -> Arde_cfg.Instrument.analyze ~count_callees ~k prog)

let stats () =
  locked (fun () ->
      {
        lower_hits = !lower_hits;
        lower_misses = !lower_misses;
        instrument_hits = !inst_hits;
        instrument_misses = !inst_misses;
      })

let reset_stats () =
  locked (fun () ->
      lower_hits := 0;
      lower_misses := 0;
      inst_hits := 0;
      inst_misses := 0)

let clear () =
  locked (fun () ->
      Hashtbl.reset lower_tbl;
      Hashtbl.reset inst_tbl)

let set_enabled b = locked (fun () -> on := b)
let enabled () = locked (fun () -> !on)
