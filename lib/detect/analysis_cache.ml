type stats = {
  lower_hits : int;
  lower_misses : int;
  instrument_hits : int;
  instrument_misses : int;
  prepare_hits : int;
  prepare_misses : int;
}

type prepared = {
  p_program : Arde_tir.Types.program;
  p_instrument : Arde_cfg.Instrument.t option;
  p_cv_mutexes : string list;
  p_inferred_locks : string list;
  p_compiled : Arde_runtime.Machine.compiled;
}

let lock = Mutex.create ()
let lower_tbl : (string * Arde_tir.Lower.style, Arde_tir.Types.program) Hashtbl.t =
  Hashtbl.create 64
let inst_tbl : (string * int * bool, Arde_cfg.Instrument.t) Hashtbl.t =
  Hashtbl.create 64

(* The prepared table holds a [Machine.compiled] per entry — the heaviest
   cached object by far (code arrays plus the per-instrumentation spin
   cache built on first run) — so unlike the two inner tables it is
   bounded: insertion order is tracked in [prep_order] and the oldest
   entry is evicted past [max_prepared].  A resident server seeing an
   endless stream of unique programs therefore plateaus instead of
   growing without bound. *)
let max_prepared = 128
let prep_tbl : (string * string * Arde_tir.Lower.style * bool, prepared) Hashtbl.t =
  Hashtbl.create 64
let prep_order : (string * string * Arde_tir.Lower.style * bool) Queue.t =
  Queue.create ()

let lower_hits = ref 0
let lower_misses = ref 0
let inst_hits = ref 0
let inst_misses = ref 0
let prep_hits = ref 0
let prep_misses = ref 0
let on = ref true

(* Optional second cache level behind the in-memory table, registered by
   the serve worker (the on-disk bundle store lives in [Arde_server] and
   cannot be referenced from here without a cycle).  Both callbacks run
   outside the cache mutex — they do disk I/O, parsing and compilation. *)
type store_key = {
  sk_digest : string;
  sk_mode : Config.mode;
  sk_style : Arde_tir.Lower.style;
  sk_count_callees : bool;
}

type store = {
  store_load : store_key -> prepared option;
  store_save : store_key -> prepared -> unit;
}

let store_hook : store option ref = ref None

(* Keys being computed right now, for single-flight: concurrent callers
   missing on the same key wait for the first instead of recomputing
   (and, with a store registered, instead of racing the write-back). *)
let inflight : (string * string * Arde_tir.Lower.style * bool, unit) Hashtbl.t =
  Hashtbl.create 8

let flight_done = Condition.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let digest_of_program prog =
  Digest.string (Arde_tir.Pretty.program_to_string prog)

(* Look up under the mutex; compute outside it (analysis can be slow and
   must not serialize unrelated cache users), then publish.  A racing
   duplicate computation is harmless: both compute equal values and the
   second [replace] wins. *)
let memo tbl hits misses key compute =
  let cached =
    locked (fun () ->
        if !on then
          match Hashtbl.find_opt tbl key with
          | Some v ->
              incr hits;
              Some v
          | None ->
              incr misses;
              None
        else begin
          incr misses;
          None
        end)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = compute () in
      locked (fun () -> if !on then Hashtbl.replace tbl key v);
      v

let lowered ~style prog =
  memo lower_tbl lower_hits lower_misses
    (digest_of_program prog, style)
    (fun () -> Arde_tir.Lower.lower ~style prog)

let instrumented ~count_callees ~k prog =
  memo inst_tbl inst_hits inst_misses
    (digest_of_program prog, k, count_callees)
    (fun () -> Arde_cfg.Instrument.analyze ~count_callees ~k prog)

(* The full static half of the pipeline, computed once per
   (program, mode, knobs).  The inner stages still route through
   [lowered] / [instrumented], so a prepared miss records their
   hits/misses as before; a prepared hit touches neither. *)
let compute_prepared ~style ~count_callees mode program =
  let program =
    if Config.needs_lowering mode then lowered ~style program else program
  in
  let instrument =
    match Config.spin_k mode with
    | Some k -> Some (instrumented ~count_callees ~k program)
    | None -> None
  in
  let cv_mutexes =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (f : Arde_tir.Types.func) ->
           List.concat_map
             (fun (b : Arde_tir.Types.block) ->
               List.filter_map
                 (function
                   | Arde_tir.Types.Cond_wait (_, m) ->
                       Some m.Arde_tir.Types.base
                   | _ -> None)
                 b.Arde_tir.Types.ins)
             f.Arde_tir.Types.blocks)
         program.Arde_tir.Types.funcs)
  in
  let inferred_locks =
    if Config.infer_locks mode then
      Arde_cfg.Lock_infer.inferred_locks (Arde_cfg.Lock_infer.analyze program)
    else []
  in
  let compiled = Arde_runtime.Machine.compile program in
  {
    p_program = program;
    p_instrument = instrument;
    p_cv_mutexes = cv_mutexes;
    p_inferred_locks = inferred_locks;
    p_compiled = compiled;
  }

let publish_prepared key v =
  if !on && not (Hashtbl.mem prep_tbl key) then begin
    Hashtbl.replace prep_tbl key v;
    Queue.push key prep_order;
    while Hashtbl.length prep_tbl > max_prepared do
      match Queue.take_opt prep_order with
      | Some old -> Hashtbl.remove prep_tbl old
      | None -> Hashtbl.reset prep_tbl
    done
  end

let prepare ?digest ~style ~count_callees mode program =
  let digest =
    match digest with Some d -> d | None -> digest_of_program program
  in
  let key = (digest, Config.mode_id mode, style, count_callees) in
  (* Claim the key under the mutex: hit, wait (someone is computing it),
     or compute.  Waiters re-read the table when woken — if the computing
     caller failed or the cache was disabled meanwhile, one of them
     claims the compute slot instead. *)
  Mutex.lock lock;
  let rec claim () =
    if not !on then begin
      incr prep_misses;
      `Compute_uncached
    end
    else
      match Hashtbl.find_opt prep_tbl key with
      | Some v ->
          incr prep_hits;
          `Hit v
      | None ->
          if Hashtbl.mem inflight key then begin
            Condition.wait flight_done lock;
            claim ()
          end
          else begin
            incr prep_misses;
            Hashtbl.add inflight key ();
            `Compute
          end
  in
  let claimed = claim () in
  Mutex.unlock lock;
  match claimed with
  | `Hit v -> v
  | `Compute_uncached -> compute_prepared ~style ~count_callees mode program
  | `Compute -> (
      let release () =
        locked (fun () ->
            Hashtbl.remove inflight key;
            Condition.broadcast flight_done)
      in
      match
        let hook = locked (fun () -> !store_hook) in
        let skey =
          {
            sk_digest = digest;
            sk_mode = mode;
            sk_style = style;
            sk_count_callees = count_callees;
          }
        in
        let v, fresh =
          match hook with
          | Some s -> (
              match s.store_load skey with
              | Some v -> (v, false)
              | None ->
                  (compute_prepared ~style ~count_callees mode program, true))
          | None -> (compute_prepared ~style ~count_callees mode program, true)
        in
        locked (fun () ->
            publish_prepared key v;
            Hashtbl.remove inflight key;
            Condition.broadcast flight_done);
        (* Write back after releasing the waiters: serialization forces
           the spin-cache build and nobody needs to wait through it. *)
        (match hook with
        | Some s when fresh -> s.store_save skey v
        | _ -> ());
        v
      with
      | v -> v
      | exception e ->
          release ();
          raise e)

let stats () =
  locked (fun () ->
      {
        lower_hits = !lower_hits;
        lower_misses = !lower_misses;
        instrument_hits = !inst_hits;
        instrument_misses = !inst_misses;
        prepare_hits = !prep_hits;
        prepare_misses = !prep_misses;
      })

let stats_delta ~before ~after =
  {
    lower_hits = after.lower_hits - before.lower_hits;
    lower_misses = after.lower_misses - before.lower_misses;
    instrument_hits = after.instrument_hits - before.instrument_hits;
    instrument_misses = after.instrument_misses - before.instrument_misses;
    prepare_hits = after.prepare_hits - before.prepare_hits;
    prepare_misses = after.prepare_misses - before.prepare_misses;
  }

let stats_to_json s =
  Arde_util.Json.Obj
    [
      ("lower_hits", Arde_util.Json.Int s.lower_hits);
      ("lower_misses", Arde_util.Json.Int s.lower_misses);
      ("instrument_hits", Arde_util.Json.Int s.instrument_hits);
      ("instrument_misses", Arde_util.Json.Int s.instrument_misses);
      ("prepare_hits", Arde_util.Json.Int s.prepare_hits);
      ("prepare_misses", Arde_util.Json.Int s.prepare_misses);
    ]

let reset_stats () =
  locked (fun () ->
      lower_hits := 0;
      lower_misses := 0;
      inst_hits := 0;
      inst_misses := 0;
      prep_hits := 0;
      prep_misses := 0)

let clear () =
  locked (fun () ->
      Hashtbl.reset lower_tbl;
      Hashtbl.reset inst_tbl;
      Hashtbl.reset prep_tbl;
      Queue.clear prep_order)

let set_enabled b = locked (fun () -> on := b)
let enabled () = locked (fun () -> !on)
let set_store s = locked (fun () -> store_hook := s)
