type state = Virgin | Exclusive of int | Shared_read | Shared_modified

type sensitivity = Short_running | Long_running

let transition state ~tid ~write ~ordered =
  match state with
  | Virgin -> Exclusive tid
  | Exclusive u when u = tid -> state
  | Exclusive _ ->
      if ordered then Exclusive tid
      else if write then Shared_modified
      else Shared_read
  | Shared_read -> if write then Shared_modified else Shared_read
  | Shared_modified -> Shared_modified

let pp_state ppf = function
  | Virgin -> Format.pp_print_string ppf "virgin"
  | Exclusive t -> Format.fprintf ppf "exclusive(T%d)" t
  | Shared_read -> Format.pp_print_string ppf "shared-read"
  | Shared_modified -> Format.pp_print_string ppf "shared-modified"

let sensitivity_name = function
  | Short_running -> "short-running"
  | Long_running -> "long-running"

let parse_sensitivity = function
  | "short-running" -> Ok Short_running
  | "long-running" -> Ok Long_running
  | s ->
      Error
        (Printf.sprintf "unknown sensitivity %S (short-running, long-running)" s)
