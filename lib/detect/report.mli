(** Race warnings and racy-context accounting.

    The paper's PARSEC metric is "racy contexts": distinct program contexts
    a warning is issued for, capped at 1000 per run.  We define a context
    as the unordered pair of code locations of the two conflicting accesses
    together with the global base they touch — stable across seeds, which
    is what lets multi-seed averages mirror the paper's fractional
    values. *)

open Arde_tir.Types

type race = {
  r_base : string;
  r_idx : int;
  r_first_tid : int;
  r_first_loc : loc;
  r_first_write : bool;
  r_second_tid : int;
  r_second_loc : loc;
  r_second_write : bool;
  r_predicted : bool;
      (** [true] when the race was predicted from a recorded trace
          ({!Arde_predict.Sp_predict}) rather than observed by the
          engine during an execution *)
}

type t

val create : ?cap:int -> unit -> t
(** [cap] bounds the number of distinct contexts recorded (default
    1000). *)

val add : t -> race -> unit
val races : t -> race list
(** One representative per distinct context, in first-seen order. *)

val n_contexts : t -> int
val capped : t -> bool
val racy_bases : t -> string list
(** Sorted, deduplicated bases appearing in any warning. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src]'s representatives into [dst]. *)

val pp : Format.formatter -> t -> unit
val pp_race : Format.formatter -> race -> unit

(** {1 Stable serialized form}

    The JSON shape is the report's wire contract: CI and the bench
    harness consume it instead of scraping the pretty-printer.  Field
    order is fixed, so equal reports serialize byte-identically. *)

val loc_to_json : loc -> Arde_util.Json.t
val loc_of_json : Arde_util.Json.t -> (loc, string) result
val race_to_json : race -> Arde_util.Json.t
val race_of_json : Arde_util.Json.t -> (race, string) result

val to_json : t -> Arde_util.Json.t
(** Cap, capped flag, and every representative race in first-seen
    order. *)

val of_json : Arde_util.Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json t)] reconstructs a report
    with the same races, contexts, cap and capped flag. *)
