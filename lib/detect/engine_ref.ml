open Arde_tir.Types
module Vc = Arde_vclock.Vector_clock
module Instrument = Arde_cfg.Instrument
module Event = Arde_runtime.Event

type t = {
  cfg : Config.t;
  instrument : Instrument.t option;
  cv_mutexes : (string, unit) Hashtbl.t;
      (* mutexes associated with a condition variable: Helgrind+'s CV
         pattern handling draws lock-order edges for these even in hybrid
         mode, which keeps gate-under-mutex fast paths quiet *)
  inferred_locks : (string, unit) Hashtbl.t;
      (* statically inferred lock words (the future-work mode): their
         atomic 0->1 / ->0 transitions drive the lockset *)
  vcs : Vc.t array; (* per-thread clocks *)
  exit_vcs : Vc.t array; (* clocks captured at thread exit, for join *)
  held : Lockset.Held.h;
  shadow : Shadow.t;
  mutex_vc : (string * int, Vc.t) Hashtbl.t;
  cv_vc : (string * int, Vc.t) Hashtbl.t;
  sem_vc : (string * int, Vc.t) Hashtbl.t;
  barrier_vc : (string * int * int, Vc.t) Hashtbl.t;
  spin_acc : (int, (string * int, Vc.t) Hashtbl.t) Hashtbl.t;
  report : Report.t;
  mutable spin_edges : int;
}

let create ?(cv_mutexes = []) ?(inferred_locks = []) ?(threads = max_threads)
    cfg ~instrument =
  let cvm = Hashtbl.create 4 in
  List.iter (fun b -> Hashtbl.replace cvm b ()) cv_mutexes;
  let inf = Hashtbl.create 4 in
  List.iter (fun b -> Hashtbl.replace inf b ()) inferred_locks;
  let cap_threads = max threads max_threads in
  {
    cfg;
    instrument;
    cv_mutexes = cvm;
    inferred_locks = inf;
    vcs = Array.make cap_threads Vc.bottom;
    exit_vcs = Array.make cap_threads Vc.bottom;
    held = Lockset.Held.create ();
    shadow = Shadow.create ();
    mutex_vc = Hashtbl.create 8;
    cv_vc = Hashtbl.create 8;
    sem_vc = Hashtbl.create 8;
    barrier_vc = Hashtbl.create 8;
    spin_acc = Hashtbl.create 8;
    report = Report.create ~cap:cfg.Config.cap ();
    spin_edges = 0;
  }

let report t = t.report
let n_shadow_cells t = Shadow.n_cells t.shadow
let n_spin_edges t = t.spin_edges

let mode t = t.cfg.Config.mode
let lib_sync t = Config.lib_sync (mode t)

(* Is a lockset being maintained (from native events or inferred locks)? *)
let lockset_active t =
  Config.use_lockset (mode t)
  || (Config.infer_locks (mode t) && Hashtbl.length t.inferred_locks > 0)

let tick t tid = t.vcs.(tid) <- Vc.inc t.vcs.(tid) tid
let acquire_clock t tid c = t.vcs.(tid) <- Vc.join t.vcs.(tid) c

let table_join tbl key c =
  let cur = Option.value ~default:Vc.bottom (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (Vc.join cur c)

let table_get tbl key =
  Option.value ~default:Vc.bottom (Hashtbl.find_opt tbl key)

(* Is the base a spin-condition variable (treated as synchronization)? *)
let suppressed t base =
  match t.instrument with
  | Some inst -> Instrument.is_sync_base inst base
  | None -> false

(* [prev] happened-before the current state of thread [tid]? *)
let ordered t tid (prev : Shadow.access) =
  prev.a_tid = tid || Vc.get t.vcs.(tid) prev.a_tid >= prev.a_clk

let conflicting_prevs t tid ~write (cell : Shadow.cell) =
  let writes = Option.to_list cell.last_write in
  let prevs = if write then writes @ cell.reads else writes in
  List.filter (fun p -> not (ordered t tid p)) prevs

(* Report decision for one plain access; returns whether anything was
   recorded.  The hybrid rule needs shared-modified + empty lockset +
   concurrency; DRD needs concurrency alone. *)
let check_access t ~tid ~base ~idx ~loc ~write (cell : Shadow.cell) =
  let concurrent = conflicting_prevs t tid ~write cell in
  let all_ordered = concurrent = [] in
  let entering_shared =
    match cell.state with
    | Msm.Virgin | Msm.Exclusive _ -> true
    | Msm.Shared_read | Msm.Shared_modified -> false
  in
  let new_state = Msm.transition cell.state ~tid ~write ~ordered:all_ordered in
  (* Eraser refinement: the candidate lockset only starts narrowing once
     the cell is genuinely shared — the first-owner phase is exempt.  This
     is what keeps initialize-then-publish patterns quiet, at the price of
     missing races whose two sides are single accesses under different
     locks (the state machine trade-off the paper describes). *)
  (match new_state with
  | Msm.Shared_read | Msm.Shared_modified when lockset_active t ->
      let held_now = Lockset.Held.current t.held tid in
      cell.lockset <-
        (if entering_shared then held_now
         else Lockset.inter cell.lockset held_now)
  | Msm.Virgin | Msm.Exclusive _ | Msm.Shared_read | Msm.Shared_modified -> ());
  cell.state <- new_state;
  let offending =
    match mode t with
    | Config.Drd ->
        (* Pure happens-before: every concurrent conflicting pair. *)
        concurrent
    | Config.Helgrind_lib | Config.Helgrind_spin _ | Config.Nolib_spin _
    | Config.Nolib_spin_locks _ ->
        (* Hybrid rule.  Without library knowledge the candidate lockset
           degenerates to empty — unless lock words were statically
           inferred (the future-work mode) — and only the state machine
           plus happens-before remain: the paper's "universal
           (happens-before) detector". *)
        let lockset_empty =
          if lockset_active t then Lockset.is_empty cell.lockset else true
        in
        if new_state = Msm.Shared_modified && lockset_empty then concurrent
        else []
  in
  let offending =
    match (t.cfg.Config.sensitivity, offending) with
    | Msm.Short_running, o -> o
    | Msm.Long_running, [] -> []
    | Msm.Long_running, o ->
        if cell.primed then o
        else begin
          cell.primed <- true;
          []
        end
  in
  List.iter
    (fun (p : Shadow.access) ->
      Report.add t.report
        {
          Report.r_base = base;
          r_idx = idx;
          r_first_tid = p.a_tid;
          r_first_loc = p.a_loc;
          r_first_write = p.a_write;
          r_second_tid = tid;
          r_second_loc = loc;
          r_second_write = write;
          r_predicted = false;
        })
    offending

let spin_record t ~tid ~key spin =
  List.iter
    (fun (_loop, ctx) ->
      match Hashtbl.find_opt t.spin_acc ctx with
      | None -> () (* context of another thread or already closed *)
      | Some acc ->
          let cell = Shadow.cell t.shadow key in
          (match cell.last_write with
          | Some w when w.a_tid <> tid ->
              Hashtbl.replace acc key cell.write_vc
          | Some _ | None -> ()))
    spin

(* Atomic release/acquire chains are only drawn by the spin-enhanced
   configurations: marking lock-prefixed read-modify-writes as
   synchronization accesses is the natural companion of marking spin
   condition variables (and is needed so a lowered mutex whose CAS
   succeeds without re-spinning still synchronizes).  The 2010 baselines
   (plain hybrid, DRD) treated atomics as ordinary accesses. *)
let atomics_sync t = Config.spin_k (mode t) <> None

let spin_active t = Config.spin_k (mode t) <> None

let on_read t ~tid ~base ~idx ~loc ~kind ~spin =
  let key = (base, idx) in
  if spin <> [] && spin_active t then spin_record t ~tid ~key spin;
  let cell = Shadow.cell t.shadow key in
  match kind with
  | Event.Atomic ->
      (* Atomic load: acquire the cell's release chain; never racy. *)
      if atomics_sync t then acquire_clock t tid cell.atomic_vc
  | Event.Plain ->
      if not (suppressed t base) then
        check_access t ~tid ~base ~idx ~loc ~write:false cell;
      let a =
        {
          Shadow.a_tid = tid;
          a_clk = Vc.get t.vcs.(tid) tid;
          a_loc = loc;
          a_write = false;
          a_atomic = false;
        }
      in
      Shadow.record_read cell a

let on_write t ~tid ~base ~idx ~loc ~kind ~value =
  let key = (base, idx) in
  let cell = Shadow.cell t.shadow key in
  (match kind with
  | Event.Atomic ->
      (* Inferred lock words: the 0->1 transition is an acquisition, a
         write of 0 the release. *)
      if Config.infer_locks (mode t) && Hashtbl.mem t.inferred_locks base then begin
        if value = 1 then Lockset.Held.acquire t.held tid key
        else if value = 0 then Lockset.Held.release t.held tid key
      end;
      (* Release: publish the writer's clock on the cell's atomic chain. *)
      if atomics_sync t then begin
        acquire_clock t tid cell.atomic_vc;
        cell.atomic_vc <- t.vcs.(tid)
      end
  | Event.Plain ->
      if not (suppressed t base) then
        check_access t ~tid ~base ~idx ~loc ~write:true cell);
  cell.write_vc <- t.vcs.(tid);
  cell.last_write <-
    Some
      {
        Shadow.a_tid = tid;
        a_clk = Vc.get t.vcs.(tid) tid;
        a_loc = loc;
        a_write = true;
        a_atomic = kind = Event.Atomic;
      };
  cell.reads <- [];
  (* Tick so that the writer's post-write work is not covered by the
     release snapshot readers may acquire. *)
  if kind = Event.Atomic || suppressed t base then tick t tid

let observer t (ev : Event.t) =
  match ev with
  | Event.Thread_start { tid } ->
      if Vc.is_bottom t.vcs.(tid) then t.vcs.(tid) <- Vc.inc Vc.bottom tid
  | Event.Spawn_ev { parent; child; _ } ->
      t.vcs.(child) <- Vc.inc (Vc.join t.vcs.(child) t.vcs.(parent)) child;
      tick t parent
  | Event.Thread_exit { tid } -> t.exit_vcs.(tid) <- t.vcs.(tid)
  | Event.Join_return { tid; target; _ } ->
      if lib_sync t then acquire_clock t tid t.exit_vcs.(target)
  | Event.Lock_acq { tid; base; idx; _ } ->
      if Config.use_lockset (mode t) then
        Lockset.Held.acquire t.held tid (base, idx);
      if Config.lock_hb (mode t) || (lib_sync t && Hashtbl.mem t.cv_mutexes base)
      then acquire_clock t tid (table_get t.mutex_vc (base, idx))
  | Event.Lock_rel { tid; base; idx; _ } ->
      if Config.use_lockset (mode t) then
        Lockset.Held.release t.held tid (base, idx);
      if Config.lock_hb (mode t) || (lib_sync t && Hashtbl.mem t.cv_mutexes base)
      then begin
        Hashtbl.replace t.mutex_vc (base, idx) t.vcs.(tid);
        tick t tid
      end
  | Event.Cv_signal { tid; base; idx; _ } ->
      if lib_sync t then begin
        table_join t.cv_vc (base, idx) t.vcs.(tid);
        tick t tid
      end
  | Event.Cv_wait_begin _ -> () (* the CV checker's event, not ours *)
  | Event.Cv_wait_return { tid; base; idx; _ } ->
      if lib_sync t then acquire_clock t tid (table_get t.cv_vc (base, idx))
  | Event.Barrier_arrive { tid; base; idx; generation; _ } ->
      if lib_sync t then begin
        table_join t.barrier_vc (base, idx, generation) t.vcs.(tid);
        tick t tid
      end
  | Event.Barrier_pass { tid; base; idx; generation; _ } ->
      if lib_sync t then begin
        acquire_clock t tid (table_get t.barrier_vc (base, idx, generation));
        Hashtbl.remove t.barrier_vc (base, idx, generation - 2)
      end
  | Event.Sem_post_ev { tid; base; idx; _ } ->
      if lib_sync t then begin
        table_join t.sem_vc (base, idx) t.vcs.(tid);
        tick t tid
      end
  | Event.Sem_acquire { tid; base; idx; _ } ->
      if lib_sync t then acquire_clock t tid (table_get t.sem_vc (base, idx))
  | Event.Spin_enter { ctx; _ } ->
      if spin_active t then Hashtbl.replace t.spin_acc ctx (Hashtbl.create 4)
  | Event.Spin_exit { tid; ctx; _ } -> (
      match Hashtbl.find_opt t.spin_acc ctx with
      | None -> ()
      | Some acc ->
          Hashtbl.iter
            (fun _key wvc ->
              t.spin_edges <- t.spin_edges + 1;
              acquire_clock t tid wvc)
            acc;
          Hashtbl.remove t.spin_acc ctx)
  | Event.Read { tid; base; idx; loc; kind; spin; _ } ->
      on_read t ~tid ~base ~idx ~loc ~kind ~spin
  | Event.Write { tid; base; idx; loc; kind; value; _ } ->
      on_write t ~tid ~base ~idx ~loc ~kind ~value

let memory_words t =
  let clock_words =
    Array.fold_left (fun acc c -> acc + Vc.size_words c) 0 t.vcs
  in
  let table_words tbl =
    Hashtbl.fold (fun _ c acc -> acc + 4 + Vc.size_words c) tbl 0
  in
  clock_words + Shadow.size_words t.shadow + table_words t.mutex_vc
  + table_words t.cv_vc + table_words t.sem_vc
  + Hashtbl.fold (fun _ c acc -> acc + 5 + Vc.size_words c) t.barrier_vc 0
  (* Open spin contexts hold a clock snapshot per watched cell; they are
     live detector state like any other table. *)
  + Hashtbl.fold
      (fun _ acc_tbl acc -> acc + 2 + table_words acc_tbl)
      t.spin_acc 0
