open Arde_tir.Types
module Machine = Arde_runtime.Machine
module Sched = Arde_runtime.Sched
module Observer = Arde_runtime.Observer
module Codec = Arde_runtime.Trace_codec

type options = Options.t

(* ------------------------------------------------------------------ *)
(* Engine selection                                                   *)

(* The per-seed detector behind a closure record, so the pipeline can run
   with either the optimized {!Engine} (default) or the frozen
   {!Engine_ref} oracle — the differential suite drives the FULL pipeline
   (chaos injection included) through both and asserts byte-identical
   results. *)
type engine = {
  e_observer : Observer.t;
  e_report : unit -> Report.t;
  e_spin_edges : unit -> int;
  e_memory_words : unit -> int;
}

type engine_factory =
  Config.t ->
  cv_mutexes:string list ->
  inferred_locks:string list ->
  instrument:Arde_cfg.Instrument.t option ->
  engine

let opt_engine : engine_factory =
 fun cfg ~cv_mutexes ~inferred_locks ~instrument ->
  let e = Engine.create ~cv_mutexes ~inferred_locks cfg ~instrument in
  {
    e_observer = Engine.observer e;
    e_report = (fun () -> Engine.report e);
    e_spin_edges = (fun () -> Engine.n_spin_edges e);
    e_memory_words = (fun () -> Engine.memory_words e);
  }

let ref_engine : engine_factory =
 fun cfg ~cv_mutexes ~inferred_locks ~instrument ->
  let e = Engine_ref.create ~cv_mutexes ~inferred_locks cfg ~instrument in
  {
    e_observer = Engine_ref.observer e;
    e_report = (fun () -> Engine_ref.report e);
    e_spin_edges = (fun () -> Engine_ref.n_spin_edges e);
    e_memory_words = (fun () -> Engine_ref.memory_words e);
  }

(* ------------------------------------------------------------------ *)
(* Run context                                                        *)

type ctx = {
  c_options : Options.t;
  c_engine : engine_factory;
  c_pool : Arde_util.Domain_pool.pool option;
  c_should_stop : unit -> bool;
  c_program_digest : string option;
}

let never_stop () = false

let ctx ?(options = Options.default) ?(engine = opt_engine) ?pool
    ?(should_stop = never_stop) ?program_digest () =
  {
    c_options = options;
    c_engine = engine;
    c_pool = pool;
    c_should_stop = should_stop;
    c_program_digest = program_digest;
  }

let default_ctx = ctx ()
let default_mode = Config.Helgrind_spin 7

type seed_outcome =
  | Completed of Machine.outcome
  | Crashed of loc option * string
  | Cancelled

type seed_run = {
  sr_seed : int;
  sr_outcome : seed_outcome;
  sr_steps : int;
  sr_contexts : int;
  sr_capped : bool;
  sr_spin_edges : int;
  sr_memory_words : int;
  sr_check_failures : (loc * string) list;
  sr_cv_diagnostics : Cv_checker.diagnostic list;
}

type health_verdict = Healthy | Degraded | Failed

type health = {
  h_seeds : int;
  h_finished : int;
  h_deadlocked : int;
  h_livelocked : int;
  h_fuel_exhausted : int;
  h_faulted : int;
  h_crashed : int;
  h_cancelled : int;
  h_verdict : health_verdict;
  h_notes : string list;
}

type prediction = {
  pr_sections : int;
  pr_events : int;
  pr_candidates : int;
  pr_predicted : int;
  pr_new_contexts : int;
  pr_closure_steps : int;
  pr_budget_hits : int;
  pr_notes : string list;
}

type result = {
  mode : Config.mode;
  merged : Report.t;
  runs : seed_run list;
  n_spin_loops : int;
  static_cv_hazards : Cv_checker.diagnostic list;
      (* spurious-wakeup-unsafe waits, found statically *)
  health : health;
  prediction : prediction option;
      (* present when the run's analysis predicted from recordings *)
}

(* ------------------------------------------------------------------ *)
(* Run health                                                         *)

let health_of ?(notes = []) runs =
  let finished = ref 0
  and deadlocked = ref 0
  and livelocked = ref 0
  and fuel = ref 0
  and faulted = ref 0
  and crashed = ref 0
  and cancelled = ref 0
  and notes = ref (List.rev notes) in
  List.iter
    (fun sr ->
      match sr.sr_outcome with
      | Completed Machine.Finished -> incr finished
      | Completed (Machine.Deadlock _) -> incr deadlocked
      | Completed (Machine.Livelock _) -> incr livelocked
      | Completed Machine.Fuel_exhausted -> incr fuel
      | Completed (Machine.Fault _) -> incr faulted
      | Crashed (_, msg) ->
          incr crashed;
          notes := Printf.sprintf "seed %d crashed: %s" sr.sr_seed msg :: !notes
      | Cancelled -> incr cancelled)
    runs;
  let n = List.length runs in
  let verdict =
    (* cancellation is voluntary (a deadline or drain), so it degrades
       the run rather than failing it — the completed seeds' findings
       are still real *)
    if n = 0 || !crashed = n then Failed
    else if !finished = n then Healthy
    else Degraded
  in
  {
    h_seeds = n;
    h_finished = !finished;
    h_deadlocked = !deadlocked;
    h_livelocked = !livelocked;
    h_fuel_exhausted = !fuel;
    h_faulted = !faulted;
    h_crashed = !crashed;
    h_cancelled = !cancelled;
    h_verdict = verdict;
    h_notes = List.rev !notes;
  }

let failed_result mode msg =
  {
    mode;
    merged = Report.create ~cap:max_int ();
    runs = [];
    n_spin_loops = 0;
    static_cv_hazards = [];
    health = health_of ~notes:[ "pipeline: " ^ msg ] [];
    prediction = None;
  }

let describe_exn = function
  | Machine.Fault_exn (l, msg) -> (Some l, msg)
  | Machine.Internal_violation msg -> (None, msg)
  | Invalid_argument msg | Failure msg -> (None, msg)
  | e -> (None, Printexc.to_string e)

(* Everything that happens before the per-seed fan-out: lowering, the
   instrumentation phase, lock inference, compilation.  The whole bundle
   goes through {!Analysis_cache.prepare}, so a harness that runs the
   same program many times (suite, chaos storm, bench sweep, a serve
   daemon's repeat submissions) pays for the static analysis once and a
   warm run skips straight to per-seed execution.  A crash here means no
   seed can run at all — the caller turns it into a [Failed] health
   record rather than letting the exception escape [Arde.detect]. *)
let prepare ?digest (options : Options.t) mode program =
  let p =
    Analysis_cache.prepare ?digest ~style:options.Options.lower_style
      ~count_callees:options.Options.count_callee_blocks mode program
  in
  ( p.Analysis_cache.p_program,
    p.Analysis_cache.p_instrument,
    p.Analysis_cache.p_cv_mutexes,
    p.Analysis_cache.p_inferred_locks,
    p.Analysis_cache.p_compiled )

(* The pure per-seed stage.  Runs one seed inside a sandbox and returns
   the seed's record together with its private report — no shared state
   is touched, which is what lets the driver run seeds on separate
   domains.  Machine faults surface as [Completed (Fault _)] (the machine
   catches those itself), while escaping exceptions — broken machine
   invariants, an observer blowing up, injected chaos — become a
   [Crashed] outcome carrying whatever partial report the engine had
   accumulated.  One sick seed never takes down the others.

   When a [sink] is supplied, it is teed {e between} the chaos injector
   and the engine: the recorded stream is exactly the stream the engine
   saw (an injector raising mid-run truncates both identically), which
   is what makes replay reproduce even crashed seeds byte for byte. *)
let run_seed (options : Options.t) mode ~engine_factory ~instrument
    ~cv_mutexes ~inferred_locks ?sink compiled seed =
  let detector_cfg =
    Config.make ~sensitivity:options.Options.sensitivity
      ~cap:options.Options.cap mode
  in
  let engine = engine_factory detector_cfg ~cv_mutexes ~inferred_locks ~instrument in
  let cv_checker = Cv_checker.create () in
  let observer =
    Observer.tee engine.e_observer (Cv_checker.observer cv_checker)
  in
  let observer =
    match sink with
    | None -> observer
    | Some s -> Observer.tee (Codec.sink_observer s) observer
  in
  let observer =
    match options.Options.inject with
    | None -> observer
    | Some f -> Observer.tee (Observer.of_fn (f ~seed)) observer
  in
  let mcfg =
    {
      Machine.policy = options.Options.policy;
      seed;
      fuel = options.Options.fuel;
      instrument;
      spurious_wakeups = options.Options.spurious_wakeups;
      observer;
    }
  in
  match Machine.run mcfg compiled with
  | res ->
      let rep = engine.e_report () in
      ( {
          sr_seed = seed;
          sr_outcome = Completed res.Machine.outcome;
          sr_steps = res.Machine.steps;
          sr_contexts = Report.n_contexts rep;
          sr_capped = Report.capped rep;
          sr_spin_edges = engine.e_spin_edges ();
          sr_memory_words = engine.e_memory_words ();
          sr_check_failures = res.Machine.check_failures;
          sr_cv_diagnostics = Cv_checker.finalize cv_checker;
        },
        Some rep )
  | exception e ->
      let floc, msg = describe_exn e in
      (* Salvage what the engine saw before the crash; warnings found on
         the trace prefix are still valid observations. *)
      let rep = try Some (engine.e_report ()) with _ -> None in
      ( {
          sr_seed = seed;
          sr_outcome = Crashed (floc, msg);
          sr_steps = 0;
          sr_contexts =
            (match rep with Some r -> Report.n_contexts r | None -> 0);
          sr_capped = (match rep with Some r -> Report.capped r | None -> false);
          sr_spin_edges = (try engine.e_spin_edges () with _ -> 0);
          sr_memory_words = (try engine.e_memory_words () with _ -> 0);
          sr_check_failures = [];
          sr_cv_diagnostics = (try Cv_checker.finalize cv_checker with _ -> []);
        },
        rep )

(* A seed the run never started: the cancellation hook (a server
   deadline, a drain) fired before this seed's slot came up.  No machine
   ran and no engine was built, so every counter is zero and there is no
   partial report to salvage — unlike [Crashed], nothing went wrong. *)
let cancelled_run seed =
  ( {
      sr_seed = seed;
      sr_outcome = Cancelled;
      sr_steps = 0;
      sr_contexts = 0;
      sr_capped = false;
      sr_spin_edges = 0;
      sr_memory_words = 0;
      sr_check_failures = [];
      sr_cv_diagnostics = [];
    },
    None )

(* The deterministic merge stage.  Per-seed reports are folded in seed
   order, whatever interleaving the pool produced, so [jobs = 1] and
   [jobs = N] yield byte-identical merged reports: {!Report.merge_into}
   keeps the first representative per context, and "first" is defined by
   this fold. *)
let merge_reports per_seed =
  let merged = Report.create ~cap:max_int () in
  List.iter
    (fun (_, rep) ->
      Option.iter (fun r -> try Report.merge_into merged r with _ -> ()) rep)
    per_seed;
  merged

(* The clamp is recorded in every affected run's health notes, but the
   stderr notice prints once per distinct message per process — a suite
   sweep is hundreds of [run] calls and the spam would drown the table. *)
let clamp_announced : (string, unit) Hashtbl.t = Hashtbl.create 1

let announce_clamp note =
  if not (Hashtbl.mem clamp_announced note) then begin
    Hashtbl.replace clamp_announced note ();
    Printf.eprintf "arde: %s\n%!" note
  end

let clamp_notes options =
  match Options.jobs_clamp options with
  | None -> []
  | Some (requested, host) ->
      let note =
        Printf.sprintf "jobs: requested %d clamped to host core count %d"
          requested host
      in
      announce_clamp note;
      [ note ]

(* ------------------------------------------------------------------ *)
(* Trailer mapping: seed outcome ↔ the codec's machine-free mirror     *)

let codec_outcome = function
  | Completed Machine.Finished -> Codec.Finished
  | Completed (Machine.Deadlock tids) -> Codec.Deadlock tids
  | Completed Machine.Fuel_exhausted -> Codec.Fuel_exhausted
  | Completed (Machine.Livelock sites) ->
      Codec.Livelock
        (List.map
           (fun s ->
             {
               Codec.w_tid = s.Machine.sp_tid;
               w_loop = s.Machine.sp_loop;
               w_loc = s.Machine.sp_loc;
               w_bases = s.Machine.sp_bases;
             })
           sites)
  | Completed (Machine.Fault { ftid; floc; msg }) ->
      Codec.Fault { ftid; floc; msg }
  | Crashed (l, msg) -> Codec.Crashed (l, msg)
  | Cancelled -> Codec.Cancelled

let seed_outcome_of_codec = function
  | Codec.Finished -> Completed Machine.Finished
  | Codec.Deadlock tids -> Completed (Machine.Deadlock tids)
  | Codec.Fuel_exhausted -> Completed Machine.Fuel_exhausted
  | Codec.Livelock sites ->
      Completed
        (Machine.Livelock
           (List.map
              (fun w ->
                {
                  Machine.sp_tid = w.Codec.w_tid;
                  sp_loop = w.Codec.w_loop;
                  sp_loc = w.Codec.w_loc;
                  sp_bases = w.Codec.w_bases;
                })
              sites))
  | Codec.Fault { ftid; floc; msg } -> Completed (Machine.Fault { ftid; floc; msg })
  | Codec.Crashed (l, msg) -> Crashed (l, msg)
  | Codec.Cancelled -> Cancelled

let trailer_of_seed_run sr =
  {
    Codec.t_outcome = codec_outcome sr.sr_outcome;
    t_steps = sr.sr_steps;
    t_check_failures = sr.sr_check_failures;
  }

(* ------------------------------------------------------------------ *)
(* The live pipeline, shared by [run] and [record]                    *)

let fan_out (c : ctx) options body seeds =
  match c.c_pool with
  | Some p -> Arde_util.Domain_pool.map_pool p body seeds
  | None ->
      let jobs = Options.effective_jobs options ~n_seeds:(List.length seeds) in
      Arde_util.Domain_pool.map ~jobs body seeds

let finish_result mode ~program ~instrument ~notes per_seed =
  let merged = merge_reports per_seed in
  let runs = List.map fst per_seed in
  let n_spin_loops =
    match instrument with
    | Some inst -> List.length (Arde_cfg.Instrument.spins inst)
    | None -> 0
  in
  {
    mode;
    merged;
    runs;
    n_spin_loops;
    static_cv_hazards = (try Cv_checker.static_check program with _ -> []);
    health = health_of ~notes runs;
    prediction = None;
  }

(* Execute the live pipeline; with [record] also seal one codec section
   per seed.  Returns the sections in seed order, matching [runs]. *)
let run_live (c : ctx) mode program ~record =
  match prepare ?digest:c.c_program_digest c.c_options mode program with
  | exception e -> (failed_result mode (snd (describe_exn e)), [])
  | program, instrument, cv_mutexes, inferred_locks, compiled ->
      let options = c.c_options in
      let notes = clamp_notes options in
      (* Cooperative cancellation: the hook is consulted once per seed,
         before that seed's machine is built.  Seeds already executing
         run to completion (their findings are salvaged); seeds whose
         slot comes up after the hook fires become [Cancelled]. *)
      let seed_body seed =
        if c.c_should_stop () then
          ( cancelled_run seed,
            if record then Some (Codec.cancelled_section ~seed) else None )
        else begin
          let sink = if record then Some (Codec.sink ()) else None in
          let ((sr, _) as seed_res) =
            run_seed options mode ~engine_factory:c.c_engine ~instrument
              ~cv_mutexes ~inferred_locks ?sink compiled seed
          in
          let section =
            Option.map
              (fun s -> Codec.section_of_sink s ~seed (trailer_of_seed_run sr))
              sink
          in
          (seed_res, section)
        end
      in
      let out = fan_out c options seed_body options.Options.seeds in
      let per_seed = List.map fst out in
      let sections = List.filter_map snd out in
      (finish_result mode ~program ~instrument ~notes per_seed, sections)

(* ------------------------------------------------------------------ *)
(* Inputs                                                             *)

let resolve_text text =
  match Arde_tir.Parse.program text with
  | Error e -> Error (Arde_tir.Parse.error_to_string e)
  | Ok program -> (
      match Arde_tir.Validate.check program with
      | Ok () -> Ok program
      | Error errs ->
          Error
            (String.concat "; " (List.map Arde_tir.Validate.error_to_string errs)))

(* ------------------------------------------------------------------ *)
(* Replay: the detection half alone, fed from a recording             *)

let replay_section (options : Options.t) mode ~engine_factory ~instrument
    ~cv_mutexes ~inferred_locks (sec : Codec.section) =
  let trailer = sec.Codec.s_trailer in
  if trailer.Codec.t_outcome = Codec.Cancelled then
    cancelled_run sec.Codec.s_seed
  else
    let detector_cfg =
      Config.make ~sensitivity:options.Options.sensitivity
        ~cap:options.Options.cap mode
    in
    let engine =
      engine_factory detector_cfg ~cv_mutexes ~inferred_locks ~instrument
    in
    let cv_checker = Cv_checker.create () in
    let observer =
      Observer.tee engine.e_observer (Cv_checker.observer cv_checker)
    in
    let seed = sec.Codec.s_seed in
    let finish outcome check_failures steps =
      let rep = try Some (engine.e_report ()) with _ -> None in
      ( {
          sr_seed = seed;
          sr_outcome = outcome;
          sr_steps = steps;
          sr_contexts =
            (match rep with Some r -> Report.n_contexts r | None -> 0);
          sr_capped = (match rep with Some r -> Report.capped r | None -> false);
          sr_spin_edges = (try engine.e_spin_edges () with _ -> 0);
          sr_memory_words = (try engine.e_memory_words () with _ -> 0);
          sr_check_failures = check_failures;
          sr_cv_diagnostics = (try Cv_checker.finalize cv_checker with _ -> []);
        },
        rep )
    in
    match Codec.decode_events sec (fun ev -> Observer.emit observer ev) with
    | Ok () ->
        finish
          (seed_outcome_of_codec trailer.Codec.t_outcome)
          trailer.Codec.t_check_failures trailer.Codec.t_steps
    | Error e ->
        (* The recording itself is sick (hash-valid but undecodable, or
           an engine blew up mid-stream): surface it like a crashed seed,
           salvaging whatever the engine got through. *)
        finish (Crashed (None, "replay: " ^ Codec.error_to_string e)) [] 0
    | exception e ->
        let floc, msg = describe_exn e in
        finish (Crashed (floc, msg)) [] 0

let replay ?(ctx = default_ctx) recorded =
  (* Everything that shapes detection comes from the recording — mode,
     sensitivity, cap, seeds — so a replayed result is comparable byte
     for byte with the live run that produced the trace.  The caller's
     [ctx] contributes only execution machinery: engine choice, pool,
     cancellation. *)
  let mode = Recorded.mode recorded in
  let options = Recorded.options recorded in
  let program = Recorded.program recorded in
  (* verified equal to the canonical digest at load time *)
  let digest = Digest.from_hex (Recorded.digest_hex recorded) in
  match prepare ~digest options mode program with
  | exception e -> failed_result mode (snd (describe_exn e))
  | program, instrument, cv_mutexes, inferred_locks, _compiled ->
      let notes = clamp_notes options in
      let section_body sec =
        if ctx.c_should_stop () then cancelled_run sec.Codec.s_seed
        else
          replay_section options mode ~engine_factory:ctx.c_engine ~instrument
            ~cv_mutexes ~inferred_locks sec
      in
      let per_seed =
        fan_out ctx options section_body (Recorded.sections recorded)
      in
      finish_result mode ~program ~instrument ~notes per_seed

(* ------------------------------------------------------------------ *)
(* Prediction: sync-preserving races from recorded sections           *)

module Sp = Arde_predict.Sp_predict

(* How many recorded executions a [Predict] analysis consumes.  The
   differential gate promises every sweep-found race from at most this
   many recordings, so the number is part of the contract, not a
   tuning knob. *)
let predict_limit = 2

let take n xs =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n xs

(* Predict over the first [predict_limit] non-cancelled sections.  Never
   raises: an undecodable section (a salvaged chaos trace, a truncated
   stream) is skipped with a note — prediction only ever reads events
   that survived the codec's hash check, so a sick recording degrades
   coverage, never correctness. *)
let predict_from_sections ~instrument sections =
  let suppress =
    match instrument with
    | Some inst -> fun b -> Arde_cfg.Instrument.is_sync_base inst b
    | None -> fun _ -> false
  in
  let config = { Sp.default_config with suppress } in
  let chosen =
    take predict_limit
      (List.filter
         (fun (s : Codec.section) ->
           s.Codec.s_trailer.Codec.t_outcome <> Codec.Cancelled)
         sections)
  in
  let races = ref [] and notes = ref [] in
  let sections_used = ref 0
  and events = ref 0
  and cands = ref 0
  and predicted = ref 0
  and steps = ref 0
  and hits = ref 0 in
  List.iter
    (fun (sec : Codec.section) ->
      let skip msg =
        notes :=
          Printf.sprintf "predict: seed %d skipped: %s" sec.Codec.s_seed msg
          :: !notes
      in
      match Codec.decode_events_list sec with
      | Error e -> skip (Codec.error_to_string e)
      | exception e -> skip (snd (describe_exn e))
      | Ok evs -> (
          match Sp.predict ~config (Array.of_list evs) with
          | rs, st ->
              incr sections_used;
              events := !events + st.Sp.s_events;
              cands := !cands + st.Sp.s_candidates;
              predicted := !predicted + st.Sp.s_predicted;
              steps := !steps + st.Sp.s_closure_steps;
              hits := !hits + st.Sp.s_budget_hits;
              races := !races @ rs
          | exception e -> skip (snd (describe_exn e))))
    chosen;
  ( !races,
    {
      pr_sections = !sections_used;
      pr_events = !events;
      pr_candidates = !cands;
      pr_predicted = !predicted;
      pr_new_contexts = 0;
      pr_closure_steps = !steps;
      pr_budget_hits = !hits;
      pr_notes = List.rev !notes;
    } )

let race_of_predicted (p : Sp.race) =
  {
    Report.r_base = p.Sp.p_base;
    r_idx = p.Sp.p_idx;
    r_first_tid = p.Sp.p_first_tid;
    r_first_loc = p.Sp.p_first_loc;
    r_first_write = p.Sp.p_first_write;
    r_second_tid = p.Sp.p_second_tid;
    r_second_loc = p.Sp.p_second_loc;
    r_second_write = p.Sp.p_second_write;
    r_predicted = true;
  }

(* Fold predicted races into the merged report {e after} every observed
   one: {!Report.add} keeps the first representative per context, so a
   context the sweep already saw stays an observed race and only
   genuinely new contexts carry the [predicted] tag.  Sections are
   visited in seed order and contexts in discovery order, so the merged
   report stays byte-stable. *)
let merge_predicted result (races, p) =
  let before = Report.n_contexts result.merged in
  List.iter (fun r -> Report.add result.merged (race_of_predicted r)) races;
  let p = { p with pr_new_contexts = Report.n_contexts result.merged - before } in
  { result with prediction = Some p }

(* Attach a prediction computed from [sections] to [result].  The
   [prepare] call here is a guaranteed cache hit (the run or replay that
   produced [result] already prepared the program); it only recovers the
   instrumentation so the predictor suppresses the same spin-condition
   bases the engine does. *)
let predict_into (c : ctx) options mode program result sections =
  if result.runs = [] || sections = [] then result
  else begin
    let instrument =
      match prepare ?digest:c.c_program_digest options mode program with
      | _, instrument, _, _, _ -> instrument
      | exception _ -> None
    in
    merge_predicted result (predict_from_sections ~instrument sections)
  end

(* The analysis-aware live pipeline: [Sweep] is the classic path,
   [Predict] trims the run to [predict_limit] recorded seeds and
   predicts from their traces, [Both] sweeps every seed and predicts
   from the first recordings (the differential configuration). *)
let run_live_analyzed (c : ctx) mode program =
  match c.c_options.Options.analysis with
  | Options.Sweep -> fst (run_live c mode program ~record:false)
  | Options.Predict ->
      let options =
        Options.with_seeds
          (take predict_limit c.c_options.Options.seeds)
          c.c_options
      in
      let c = { c with c_options = options } in
      let result, sections = run_live c mode program ~record:true in
      predict_into c options mode program result sections
  | Options.Both ->
      let result, sections = run_live c mode program ~record:true in
      predict_into c c.c_options mode program result sections

(* ------------------------------------------------------------------ *)
(* The front door                                                     *)

let mode_conflict requested recorded_mode =
  Printf.sprintf
    "replay: trace was recorded in mode %s; re-run the program to detect in \
     mode %s"
    (Config.mode_id recorded_mode)
    (Config.mode_id requested)

let run ?(ctx = default_ctx) ?mode input =
  match (input : Input.t) with
  | Input.Recorded_trace r -> (
      match mode with
      | Some m when m <> Recorded.mode r ->
          failed_result m (mode_conflict m (Recorded.mode r))
      | _ -> (
          let result = replay ~ctx r in
          (* Replay itself is pinned to the recording; whether to ALSO
             predict from it is the caller's choice, so the analysis
             knob is read from [ctx], not the recorded options. *)
          match ctx.c_options.Options.analysis with
          | Options.Sweep -> result
          | Options.Predict | Options.Both ->
              (* prepare under the RECORDED mode/options: the predictor
                 must suppress exactly the bases the recorded run's
                 engine did *)
              let digest = Digest.from_hex (Recorded.digest_hex r) in
              let c = { ctx with c_program_digest = Some digest } in
              predict_into c (Recorded.options r) (Recorded.mode r)
                (Recorded.program r) result (Recorded.sections r)))
  | Input.Program program ->
      let mode = Option.value mode ~default:default_mode in
      run_live_analyzed ctx mode program
  | Input.Text text -> (
      let mode = Option.value mode ~default:default_mode in
      match resolve_text text with
      | Error msg -> failed_result mode msg
      | Ok program -> run_live_analyzed ctx mode program)

(* ------------------------------------------------------------------ *)
(* Recording                                                          *)

type recording = { rec_trace : string; rec_result : result option }

(* The record-only per-seed body: no engine, no checker — just the chaos
   injector (if any) and the sink, which is as close to the quiet fast
   path as an observing run gets. *)
let record_seed (options : Options.t) ~instrument compiled seed =
  let sink = Codec.sink () in
  let observer = Codec.sink_observer sink in
  let observer =
    match options.Options.inject with
    | None -> observer
    | Some f -> Observer.tee (Observer.of_fn (f ~seed)) observer
  in
  let mcfg =
    {
      Machine.policy = options.Options.policy;
      seed;
      fuel = options.Options.fuel;
      instrument;
      spurious_wakeups = options.Options.spurious_wakeups;
      observer;
    }
  in
  let trailer =
    match Machine.run mcfg compiled with
    | res ->
        {
          Codec.t_outcome = codec_outcome (Completed res.Machine.outcome);
          t_steps = res.Machine.steps;
          t_check_failures = res.Machine.check_failures;
        }
    | exception e ->
        let floc, msg = describe_exn e in
        {
          Codec.t_outcome = Codec.Crashed (floc, msg);
          t_steps = 0;
          t_check_failures = [];
        }
  in
  Codec.section_of_sink sink ~seed trailer

let record ?(ctx = default_ctx) ?(mode = default_mode) ?(detect = false)
    ?(source = "") input =
  let resolved =
    match (input : Input.t) with
    | Input.Recorded_trace _ ->
        Error "record: input is already a recording; replay it instead"
    | Input.Program p -> Ok p
    | Input.Text text -> resolve_text text
  in
  match resolved with
  | Error msg -> Error msg
  | Ok program -> (
      (* The header pins the recording to the canonical program text: a
         loader re-derives the digest from the embedded text and refuses
         a mismatch, and replay re-runs the static half from it. *)
      let text = Arde_tir.Pretty.program_to_string program in
      let digest = Digest.string text in
      let header =
        {
          Codec.h_digest = Digest.to_hex digest;
          h_mode = Config.mode_id mode;
          h_options = Arde_util.Json.to_string ~minify:true
              (Options.to_json ctx.c_options);
          h_source = source;
          h_program = text;
        }
      in
      let ctx = { ctx with c_program_digest = Some digest } in
      if detect then begin
        let result, sections = run_live ctx mode program ~record:true in
        if result.runs = [] then
          (* the pipeline itself failed: nothing was recorded *)
          Error
            (match result.health.h_notes with
            | n :: _ -> n
            | [] -> "record: pipeline failed")
        else
          Ok
            {
              rec_trace = Codec.assemble header sections;
              rec_result = Some result;
            }
      end
      else
        match prepare ?digest:ctx.c_program_digest ctx.c_options mode program
        with
        | exception e -> Error (snd (describe_exn e))
        | _program, instrument, _cv_mutexes, _inferred_locks, compiled ->
            let options = ctx.c_options in
            ignore (clamp_notes options);
            let seed_body seed =
              if ctx.c_should_stop () then Codec.cancelled_section ~seed
              else record_seed options ~instrument compiled seed
            in
            let sections =
              fan_out ctx options seed_body options.Options.seeds
            in
            Ok { rec_trace = Codec.assemble header sections; rec_result = None })

let mean_contexts r =
  match r.runs with
  | [] -> 0.
  | runs ->
      let total = List.fold_left (fun acc s -> acc + s.sr_contexts) 0 runs in
      float_of_int total /. float_of_int (List.length runs)

let racy_bases r = Report.racy_bases r.merged

let any_bad_outcome r =
  List.find_map
    (fun s ->
      match s.sr_outcome with
      | Completed Machine.Finished -> None
      | o -> Some o)
    r.runs

let pp_seed_outcome ppf = function
  | Completed o -> Machine.pp_outcome ppf o
  | Crashed (Some l, msg) ->
      Format.fprintf ppf "crashed at %a: %s" Arde_tir.Pretty.loc l msg
  | Crashed (None, msg) -> Format.fprintf ppf "crashed: %s" msg
  | Cancelled -> Format.pp_print_string ppf "cancelled"

let verdict_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Failed -> "failed"

let verdict_of_name = function
  | "healthy" -> Some Healthy
  | "degraded" -> Some Degraded
  | "failed" -> Some Failed
  | _ -> None

let pp_health ppf h =
  Format.fprintf ppf
    "%s (%d seed%s: %d finished, %d deadlocked, %d livelocked, %d \
     fuel-exhausted, %d faulted, %d crashed, %d cancelled)"
    (verdict_name h.h_verdict) h.h_seeds
    (if h.h_seeds = 1 then "" else "s")
    h.h_finished h.h_deadlocked h.h_livelocked h.h_fuel_exhausted h.h_faulted
    h.h_crashed h.h_cancelled;
  List.iter (fun n -> Format.fprintf ppf "@\n  %s" n) h.h_notes

(* ------------------------------------------------------------------ *)
(* Stable serialized forms                                            *)

module J = Arde_util.Json

let health_to_json h =
  J.Obj
    [
      ("verdict", J.String (verdict_name h.h_verdict));
      ("seeds", J.Int h.h_seeds);
      ("finished", J.Int h.h_finished);
      ("deadlocked", J.Int h.h_deadlocked);
      ("livelocked", J.Int h.h_livelocked);
      ("fuel_exhausted", J.Int h.h_fuel_exhausted);
      ("faulted", J.Int h.h_faulted);
      ("crashed", J.Int h.h_crashed);
      ("cancelled", J.Int h.h_cancelled);
      ("notes", J.List (List.map (fun n -> J.String n) h.h_notes));
    ]

let health_of_json j =
  let ( let* ) = Result.bind in
  let int_field name =
    match Option.bind (J.member name j) J.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let* verdict =
    match Option.bind (J.member "verdict" j) J.to_str with
    | Some s -> (
        match verdict_of_name s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "unknown verdict %S" s))
    | None -> Error "missing field \"verdict\""
  in
  let* h_seeds = int_field "seeds" in
  let* h_finished = int_field "finished" in
  let* h_deadlocked = int_field "deadlocked" in
  let* h_livelocked = int_field "livelocked" in
  let* h_fuel_exhausted = int_field "fuel_exhausted" in
  let* h_faulted = int_field "faulted" in
  let* h_crashed = int_field "crashed" in
  let* h_cancelled = int_field "cancelled" in
  let* h_notes =
    match Option.bind (J.member "notes" j) J.to_list with
    | Some xs ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match J.to_str x with
            | Some s -> Ok (s :: acc)
            | None -> Error "ill-typed note")
          (Ok []) xs
        |> Result.map List.rev
    | None -> Error "missing field \"notes\""
  in
  Ok
    {
      h_seeds;
      h_finished;
      h_deadlocked;
      h_livelocked;
      h_fuel_exhausted;
      h_faulted;
      h_crashed;
      h_cancelled;
      h_verdict = verdict;
      h_notes;
    }

let seed_run_to_json sr =
  J.Obj
    [
      ("seed", J.Int sr.sr_seed);
      ("outcome", J.String (Format.asprintf "%a" pp_seed_outcome sr.sr_outcome));
      ( "crashed",
        J.Bool
          (match sr.sr_outcome with
          | Crashed _ -> true
          | Completed _ | Cancelled -> false) );
      ("steps", J.Int sr.sr_steps);
      ("contexts", J.Int sr.sr_contexts);
      ("capped", J.Bool sr.sr_capped);
      ("spin_edges", J.Int sr.sr_spin_edges);
      ("memory_words", J.Int sr.sr_memory_words);
      ( "check_failures",
        J.List
          (List.map
             (fun (l, msg) ->
               J.Obj [ ("loc", Report.loc_to_json l); ("msg", J.String msg) ])
             sr.sr_check_failures) );
      ( "cv_diagnostics",
        J.List
          (List.map
             (fun d ->
               J.String (Format.asprintf "%a" Cv_checker.pp_diagnostic d))
             sr.sr_cv_diagnostics) );
    ]

let prediction_to_json p =
  J.Obj
    [
      ("sections", J.Int p.pr_sections);
      ("events", J.Int p.pr_events);
      ("candidates", J.Int p.pr_candidates);
      ("predicted", J.Int p.pr_predicted);
      ("new_contexts", J.Int p.pr_new_contexts);
      ("closure_steps", J.Int p.pr_closure_steps);
      ("budget_hits", J.Int p.pr_budget_hits);
      ("notes", J.List (List.map (fun n -> J.String n) p.pr_notes));
    ]

let result_to_json r =
  J.Obj
    ([
       ("mode", J.String (Config.mode_name r.mode));
       ("spin_loops", J.Int r.n_spin_loops);
       ("report", Report.to_json r.merged);
       ("runs", J.List (List.map seed_run_to_json r.runs));
       ( "static_cv_hazards",
         J.List
           (List.map
              (fun d ->
                J.String (Format.asprintf "%a" Cv_checker.pp_diagnostic d))
              r.static_cv_hazards) );
       ("health", health_to_json r.health);
     ]
    (* absent for sweep results, keeping pinned documents byte-stable *)
    @
    match r.prediction with
    | None -> []
    | Some p -> [ ("prediction", prediction_to_json p) ])

(* ------------------------------------------------------------------ *)
(* Same-trace comparison                                              *)

let compare_on_trace ?(options = Options.default) ~k program modes =
  List.iter
    (fun mode ->
      if Config.needs_lowering mode then
        invalid_arg
          "Driver.compare_on_trace: library-free modes run a different \
           (lowered) program and cannot share a trace")
    modes;
  let instrument = Some (Arde_cfg.Instrument.analyze ~k program) in
  let cv_mutexes =
    List.sort_uniq String.compare
      (List.concat_map
         (fun f ->
           List.concat_map
             (fun b ->
               List.filter_map
                 (function
                   | Cond_wait (_, m) -> Some m.base
                   | _ -> None)
                 b.ins)
             f.blocks)
         program.funcs)
  in
  let compiled = Machine.compile program in
  let engines =
    List.map
      (fun mode ->
        ( mode,
          Report.create ~cap:max_int () ))
      modes
  in
  List.iter
    (fun seed ->
      let trace = Arde_runtime.Trace.create () in
      let mcfg =
        {
          Machine.policy = options.Options.policy;
          seed;
          fuel = options.Options.fuel;
          instrument;
          spurious_wakeups = options.Options.spurious_wakeups;
          observer = Arde_runtime.Trace.observer trace;
        }
      in
      ignore (Machine.run mcfg compiled);
      let events = Arde_runtime.Trace.events trace in
      List.iter
        (fun (mode, merged) ->
          let detector_cfg =
            Config.make ~sensitivity:options.Options.sensitivity
              ~cap:options.Options.cap mode
          in
          (* Spin-less engines must not see the loop metadata, or they
             would suppress marked bases like the spin-aware ones. *)
          let mode_instrument =
            if Config.spin_k mode <> None then instrument else None
          in
          let engine =
            Engine.create ~cv_mutexes detector_cfg ~instrument:mode_instrument
          in
          List.iter (Engine.observer engine) events;
          Report.merge_into merged (Engine.report engine))
        engines)
    options.Options.seeds;
  engines
