(** Detector configurations — the four tool columns of the paper's tables.

    - [Helgrind_lib]: the hybrid detector with full library knowledge
      (lockset + happens-before from condition variables, barriers,
      semaphores, thread creation/join) and no spin detection;
    - [Helgrind_spin k]: the same plus spinning-read-loop detection with
      window [k] ("Helgrind+ lib+spin(k)");
    - [Nolib_spin k]: all library knowledge removed — the program is run in
      its lowered form, the detector ignores synchronization events and has
      no lockset, and only thread creation plus spin-derived happens-before
      edges remain ("Helgrind+ nolib+spin(k)", the universal detector);
    - [Drd]: a pure happens-before detector in which every library
      operation, including lock acquire/release order, induces edges —
      fewer lockset-style false alarms, more missed races. *)

type mode =
  | Helgrind_lib
  | Helgrind_spin of int
  | Nolib_spin of int
  | Nolib_spin_locks of int
      (* the paper's future work: the universal detector plus statically
         inferred lock words feeding an Eraser-style lockset *)
  | Drd

type t = {
  mode : mode;
  sensitivity : Msm.sensitivity;
  cap : int; (* racy-context cap per run, paper uses 1000 *)
}

val make : ?sensitivity:Msm.sensitivity -> ?cap:int -> mode -> t
(** Defaults: [Short_running], cap 1000. *)

val mode_name : mode -> string
(** Display form, e.g. ["lib+spin(7)"] — what the tables print. *)

val mode_id : mode -> string
(** Wire form, e.g. ["lib+spin:7"] — what {!parse_mode} documents, and
    what the serve protocol ships.  [parse_mode (mode_id m) = Ok m]. *)

val parse_mode : string -> (mode, string) result
(** Accepts ["lib"], ["lib+spin:K"], ["nolib+spin:K"],
    ["nolib+spin+locks:K"], ["drd"] — and the [mode_name] display
    spellings (["lib+spin(K)"], …), so serialized modes round-trip. *)

val lib_sync : mode -> bool
(** Consume native synchronization events? *)

val use_lockset : mode -> bool
(** Build locksets from native lock events? *)

val infer_locks : mode -> bool
(** Build locksets from statically inferred lock words? *)

val lock_hb : mode -> bool
(** Do lock operations induce happens-before edges? *)

val spin_k : mode -> int option
val needs_lowering : mode -> bool
(** Must the program run in its lowered (library-free) form? *)

val all_table1_modes : mode list
(** The four columns of the paper's first table. *)
