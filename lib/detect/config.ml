type mode =
  | Helgrind_lib
  | Helgrind_spin of int
  | Nolib_spin of int
  | Nolib_spin_locks of int
  | Drd

type t = { mode : mode; sensitivity : Msm.sensitivity; cap : int }

let make ?(sensitivity = Msm.Short_running) ?(cap = 1000) mode =
  { mode; sensitivity; cap }

let mode_name = function
  | Helgrind_lib -> "lib"
  | Helgrind_spin k -> Printf.sprintf "lib+spin(%d)" k
  | Nolib_spin k -> Printf.sprintf "nolib+spin(%d)" k
  | Nolib_spin_locks k -> Printf.sprintf "nolib+spin+locks(%d)" k
  | Drd -> "drd"

let mode_id = function
  | Helgrind_lib -> "lib"
  | Helgrind_spin k -> Printf.sprintf "lib+spin:%d" k
  | Nolib_spin k -> Printf.sprintf "nolib+spin:%d" k
  | Nolib_spin_locks k -> Printf.sprintf "nolib+spin+locks:%d" k
  | Drd -> "drd"

let parse_mode s =
  (* Accept both the CLI spelling ("lib+spin:7") and the display
     spelling mode_name emits ("lib+spin(7)"), so serialized modes
     round-trip wherever they came from. *)
  let s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = ')' then
      match String.index_opt s '(' with
      | Some i ->
          String.sub s 0 i ^ ":" ^ String.sub s (i + 1) (n - i - 2)
      | None -> s
    else s
  in
  let prefix p = String.length s > String.length p
    && String.sub s 0 (String.length p) = p in
  let suffix_int p =
    match int_of_string_opt (String.sub s (String.length p)
                               (String.length s - String.length p)) with
    | Some k when k > 0 -> Ok k
    | Some _ | None -> Error (Printf.sprintf "bad spin window in %S" s)
  in
  match s with
  | "lib" -> Ok Helgrind_lib
  | "drd" -> Ok Drd
  | _ when prefix "lib+spin:" ->
      Result.map (fun k -> Helgrind_spin k) (suffix_int "lib+spin:")
  | _ when prefix "nolib+spin+locks:" ->
      Result.map (fun k -> Nolib_spin_locks k) (suffix_int "nolib+spin+locks:")
  | _ when prefix "nolib+spin:" ->
      Result.map (fun k -> Nolib_spin k) (suffix_int "nolib+spin:")
  | _ ->
      Error
        (Printf.sprintf
           "unknown mode %S (lib, lib+spin:K, nolib+spin:K, nolib+spin+locks:K, drd)"
           s)

let lib_sync = function
  | Helgrind_lib | Helgrind_spin _ | Drd -> true
  | Nolib_spin _ | Nolib_spin_locks _ -> false

let use_lockset = function
  | Helgrind_lib | Helgrind_spin _ -> true
  | Nolib_spin _ | Nolib_spin_locks _ | Drd -> false

let infer_locks = function
  | Nolib_spin_locks _ -> true
  | Helgrind_lib | Helgrind_spin _ | Nolib_spin _ | Drd -> false

let lock_hb = function
  | Drd -> true
  | Helgrind_lib | Helgrind_spin _ | Nolib_spin _ | Nolib_spin_locks _ -> false

let spin_k = function
  | Helgrind_spin k | Nolib_spin k | Nolib_spin_locks k -> Some k
  | Helgrind_lib | Drd -> None

let needs_lowering = function
  | Nolib_spin _ | Nolib_spin_locks _ -> true
  | Helgrind_lib | Helgrind_spin _ | Drd -> false

let all_table1_modes = [ Helgrind_lib; Helgrind_spin 7; Nolib_spin 7; Drd ]
