open Arde_tir.Types

type race = {
  r_base : string;
  r_idx : int;
  r_first_tid : int;
  r_first_loc : loc;
  r_first_write : bool;
  r_second_tid : int;
  r_second_loc : loc;
  r_second_write : bool;
  r_predicted : bool;
}

type context = string * loc * loc (* base + ordered loc pair *)

type t = {
  cap : int;
  seen : (context, unit) Hashtbl.t;
  mutable rev_races : race list;
  mutable n : int;
  mutable hit_cap : bool;
}

let create ?(cap = 1000) () =
  { cap; seen = Hashtbl.create 32; rev_races = []; n = 0; hit_cap = false }

let context_of r =
  let a = r.r_first_loc and b = r.r_second_loc in
  if compare_loc a b <= 0 then (r.r_base, a, b) else (r.r_base, b, a)

let add t r =
  let ctx = context_of r in
  if not (Hashtbl.mem t.seen ctx) then begin
    if t.n >= t.cap then t.hit_cap <- true
    else begin
      Hashtbl.replace t.seen ctx ();
      t.rev_races <- r :: t.rev_races;
      t.n <- t.n + 1
    end
  end

let races t = List.rev t.rev_races
let n_contexts t = t.n
let capped t = t.hit_cap

let racy_bases t =
  List.sort_uniq String.compare (List.map (fun r -> r.r_base) (races t))

let merge_into dst src = List.iter (add dst) (races src)

let kind w = if w then "write" else "read"

let pp_race ppf r =
  Format.fprintf ppf "race on %s[%d]: T%d %s at %a vs T%d %s at %a%s" r.r_base
    r.r_idx r.r_first_tid (kind r.r_first_write) Arde_tir.Pretty.loc
    r.r_first_loc r.r_second_tid (kind r.r_second_write) Arde_tir.Pretty.loc
    r.r_second_loc
    (if r.r_predicted then " (predicted)" else "")

let pp ppf t =
  Format.fprintf ppf "@[<v>%d racy context(s)%s@," t.n
    (if t.hit_cap then " (capped)" else "");
  List.iter (fun r -> Format.fprintf ppf "  %a@," pp_race r) (races t);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Stable serialized form                                             *)

module J = Arde_util.Json

let loc_to_json (l : loc) =
  J.Obj [ ("func", J.String l.lfunc); ("blk", J.String l.lblk); ("idx", J.Int l.lidx) ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let loc_of_json j =
  let* lfunc = field "func" J.to_str j in
  let* lblk = field "blk" J.to_str j in
  let* lidx = field "idx" J.to_int j in
  Ok { lfunc; lblk; lidx }

let access_to_json tid l write =
  J.Obj [ ("tid", J.Int tid); ("loc", loc_to_json l); ("write", J.Bool write) ]

let access_of_json j =
  let* tid = field "tid" J.to_int j in
  let* l =
    match J.member "loc" j with
    | Some lj -> loc_of_json lj
    | None -> Error "missing field \"loc\""
  in
  let* write = field "write" J.to_bool j in
  Ok (tid, l, write)

let race_to_json r =
  J.Obj
    ([
       ("base", J.String r.r_base);
       ("idx", J.Int r.r_idx);
       ("first", access_to_json r.r_first_tid r.r_first_loc r.r_first_write);
       ("second", access_to_json r.r_second_tid r.r_second_loc r.r_second_write);
     ]
    (* only when set: observed races keep their pre-prediction shape *)
    @ if r.r_predicted then [ ("predicted", J.Bool true) ] else [])

let race_of_json j =
  let* r_base = field "base" J.to_str j in
  let* r_idx = field "idx" J.to_int j in
  let side name =
    match J.member name j with
    | Some sj -> access_of_json sj
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* r_first_tid, r_first_loc, r_first_write = side "first" in
  let* r_second_tid, r_second_loc, r_second_write = side "second" in
  let r_predicted =
    match Option.bind (J.member "predicted" j) J.to_bool with
    | Some b -> b
    | None -> false
  in
  Ok
    {
      r_base;
      r_idx;
      r_first_tid;
      r_first_loc;
      r_first_write;
      r_second_tid;
      r_second_loc;
      r_second_write;
      r_predicted;
    }

let to_json t =
  J.Obj
    [
      ("cap", J.Int t.cap);
      ("capped", J.Bool t.hit_cap);
      ("races", J.List (List.map race_to_json (races t)));
    ]

let of_json j =
  let* cap = field "cap" J.to_int j in
  let* capped = field "capped" J.to_bool j in
  let* race_js = field "races" J.to_list j in
  let* races =
    List.fold_left
      (fun acc rj ->
        let* acc = acc in
        let* r = race_of_json rj in
        Ok (r :: acc))
      (Ok []) race_js
  in
  let t = create ~cap () in
  List.iter (add t) (List.rev races);
  t.hit_cap <- capped;
  Ok t
