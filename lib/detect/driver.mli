(** End-to-end detector runs: {!Input.t} + mode + context → merged report.

    The live pipeline has three stages:

    - {e prepare} (once per program): pick the program form — lowered for
      [Nolib_spin], as written otherwise — and run the instrumentation
      phase when the mode has a spin window.  Both go through
      {!Analysis_cache}, so repeated runs of the same program (suite
      sweeps, chaos storms, benchmarks) skip the static analysis.
    - {e per-seed} (pure, parallel): execute the machine with the engine
      attached as observer, one sandboxed run per seed, fanned out over a
      domain pool [Options.jobs] wide.
    - {e merge} (deterministic): fold the per-seed reports in seed order
      (a dynamic detector's findings accumulate over runs) and average
      the per-run racy-context counts (the paper's PARSEC metric).  The
      fold order is fixed, so results are byte-identical whatever the
      pool width.

    The record/replay split decouples the first two: {!record} runs the
    machine with a {!Trace_codec} sink attached and seals the event
    stream into a compact binary trace; {!replay} runs the detection
    half alone, streaming a recording through a fresh engine without
    re-executing the program.  Replaying a recording produces results
    byte-identical to the live run that made it — that identity is the
    subsystem's correctness oracle. *)

open Arde_tir.Types

type options = Options.t
(** Build with {!Options.make} and the [Options.with_*] combinators. *)

(** {1 Engine selection}

    The per-seed detector behind a closure record.  {!run} defaults to
    the optimized {!Engine}; the differential suite passes
    {!ref_engine} to drive the identical pipeline (chaos injection and
    all) through the frozen {!Engine_ref} oracle and compare results
    byte for byte. *)

type engine = {
  e_observer : Arde_runtime.Observer.t;
  e_report : unit -> Report.t;
  e_spin_edges : unit -> int;
  e_memory_words : unit -> int;
}

type engine_factory =
  Config.t ->
  cv_mutexes:string list ->
  inferred_locks:string list ->
  instrument:Arde_cfg.Instrument.t option ->
  engine

val opt_engine : engine_factory
(** {!Engine}, the epoch-based optimized detector (the default). *)

val ref_engine : engine_factory
(** {!Engine_ref}, the frozen reference detector. *)

(** {1 Run context}

    Everything about {e how} a run executes, as opposed to {e what} it
    analyzes (the input and mode): knob surface, engine choice, domain
    pool, cancellation, cache key.  One value replaces the optional
    argument sprawl the entry points used to share. *)

type ctx = {
  c_options : Options.t;
  c_engine : engine_factory;
  c_pool : Arde_util.Domain_pool.pool option;
      (** run the per-seed stage on a caller-owned resident pool (the
          serve daemon's long-lived one) instead of spawning domains per
          call; [Options.jobs] is ignored when set *)
  c_should_stop : unit -> bool;
      (** cooperative cancellation, consulted once per seed before that
          seed starts.  Once it returns [true], remaining seeds become
          [Cancelled] (health [Degraded]) while completed seeds keep
          their reports — the primitive behind the server's deadlines
          and graceful drain. *)
  c_program_digest : string option;
      (** caller-supplied key uniquely identifying the input program,
          forwarded to {!Analysis_cache.prepare} so the warm path skips
          the canonical-digest pretty-print *)
}

val ctx :
  ?options:options ->
  ?engine:engine_factory ->
  ?pool:Arde_util.Domain_pool.pool ->
  ?should_stop:(unit -> bool) ->
  ?program_digest:string ->
  unit ->
  ctx
(** Smart constructor; every field defaulted ([Options.default],
    {!opt_engine}, no pool, never stop, no digest). *)

val default_ctx : ctx
(** [ctx ()]. *)

val default_mode : Config.mode
(** [Helgrind_spin 7] — what {!run} and the CLI use when no mode is
    given. *)

(** {1 Results} *)

type seed_outcome =
  | Completed of Arde_runtime.Machine.outcome
      (** The machine ran to a verdict (which may itself be a deadlock,
          livelock, fuel exhaustion or program fault). *)
  | Crashed of loc option * string
      (** The detector itself failed on this seed — a broken machine
          invariant, an observer exception, injected chaos.  The location
          is the machine's fault site when one is known. *)
  | Cancelled
      (** The run's [c_should_stop] hook fired before this seed started
          (a server deadline, a drain).  Nothing ran for it; completed
          seeds' findings are unaffected. *)

type seed_run = {
  sr_seed : int;
  sr_outcome : seed_outcome;
  sr_steps : int;
  sr_contexts : int;
  sr_capped : bool;
  sr_spin_edges : int;
  sr_memory_words : int;
  sr_check_failures : (loc * string) list;
  sr_cv_diagnostics : Cv_checker.diagnostic list;
      (* lost signals observed in this run *)
}

type health_verdict =
  | Healthy  (** every seed finished *)
  | Degraded
      (** some seed deadlocked, livelocked, starved, crashed or was
          cancelled *)
  | Failed  (** nothing ran: every seed crashed, or the pipeline did *)

type health = {
  h_seeds : int;
  h_finished : int;
  h_deadlocked : int;
  h_livelocked : int;
  h_fuel_exhausted : int;
  h_faulted : int;
  h_crashed : int;
  h_cancelled : int;
  h_verdict : health_verdict;
  h_notes : string list; (* pipeline and per-seed crash messages *)
}
(** Self-diagnosis of a detector run: how each seed ended and an overall
    verdict.  [run] always returns one — it never raises, whatever the
    program or the injected perturbations do. *)

type prediction = {
  pr_sections : int;  (** recorded sections actually predicted from *)
  pr_events : int;  (** decoded events consumed across them *)
  pr_candidates : int;
  pr_predicted : int;
      (** races the predictor reported (per-section, before the merge
          dedups contexts) *)
  pr_new_contexts : int;
      (** contexts the prediction added beyond the observed ones — the
          predictive headroom over the executions that ran *)
  pr_closure_steps : int;
  pr_budget_hits : int;
  pr_notes : string list;
      (** skipped sections (undecodable or crashed recordings) — a
          salvaged chaos trace degrades coverage, never correctness *)
}
(** What a predictive analysis did: {!Sp_predict} statistics summed over
    the sections consumed, plus how many merged contexts are new. *)

type result = {
  mode : Config.mode;
  merged : Report.t;
      (* union of warnings over all seeds; predicted races (tagged
         [r_predicted]) follow the observed ones *)
  runs : seed_run list; (* in seed order, whatever the pool did *)
  n_spin_loops : int; (* accepted by the instrumentation phase *)
  static_cv_hazards : Cv_checker.diagnostic list;
      (* waits without a predicate re-check loop *)
  health : health;
  prediction : prediction option;
      (* [Some] iff the run's analysis was [Predict] or [Both] and at
         least one seed ran *)
}

(** {1 Entry points} *)

val predict_limit : int
(** Recorded executions a [Predict] analysis consumes (2).  The
    differential gate promises every race the full sweep finds from at
    most this many recordings, so it is contract, not tuning. *)

val run : ?ctx:ctx -> ?mode:Config.mode -> Input.t -> result
(** The one front door.  [Text] input is parsed and validated ([Failed]
    health on errors), [Program] runs as is, and [Recorded_trace] is
    dispatched to {!replay} — the machine never executes for a trace,
    and [mode] (if given) must agree with the recorded one.  [mode]
    defaults to {!default_mode} for text/program inputs and to the
    recorded mode for traces.

    [Options.analysis] selects how races are found.  [Sweep] (default)
    is the pure dynamic path.  [Predict] runs only the first
    {!predict_limit} seeds with recording on and predicts
    sync-preserving races from their traces
    ({!Arde_predict.Sp_predict}); [Both] sweeps every seed and predicts
    from the first recordings.  Either way predicted races are merged
    after the observed ones with [r_predicted] set on genuinely new
    contexts, and [result.prediction] carries the statistics.  For a
    [Recorded_trace] the analysis knob is read from [ctx] — a [Predict]
    request predicts from the recording's existing sections on top of
    the pinned replay, executing nothing.

    Fault-isolated and parallel: each seed executes in a sandbox on the
    domain pool, so one seed crashing (or the whole pipeline failing to
    prepare the program) yields a [Crashed] seed outcome / [Failed]
    health record while every healthy seed's warnings are still merged.
    The merged report, health verdict and run list are independent of
    [Options.jobs]; a [jobs] request beyond the host core count is
    clamped, with a note recorded in [health.h_notes].  This function
    does not raise. *)

val replay : ?ctx:ctx -> Recorded.t -> result
(** Run detection over a recording without executing the machine: each
    recorded section streams through a fresh engine (and the CV
    checker) on the domain pool, and the machine-side half of every
    seed — outcome, steps, check failures — is taken from the section
    trailer.  Mode, sensitivity, cap and seeds come from the recording
    (a replayed result is byte-identical to the live run that recorded
    it); [ctx] contributes only engine choice, pool and cancellation.
    Does not raise: an undecodable section becomes a [Crashed] seed
    carrying the partial report. *)

type recording = {
  rec_trace : string;  (** the complete binary trace *)
  rec_result : result option;  (** the live result when [detect] was on *)
}

val record :
  ?ctx:ctx ->
  ?mode:Config.mode ->
  ?detect:bool ->
  ?source:string ->
  Input.t ->
  (recording, string) Stdlib.result
(** Execute the program across [ctx]'s seeds with a {!Trace_codec} sink
    attached and assemble the binary trace.  With [detect] (default
    [false]) the full engine pipeline runs alongside and the live result
    is returned too — the sink sits between the chaos injector and the
    engine, so the recorded stream is exactly what the engine saw.
    Without it, only the injector and the sink observe the run: the
    cheap recording mode whose overhead the bench gate bounds against
    the quiet fast path.

    [source] is a free-form origin label stored in the header (the CLI
    stores the workload name).  [Error] covers inputs that cannot be
    recorded: unparseable text, a pipeline that fails to prepare, or a
    recording given as input. *)

(** {1 Inspection helpers} *)

val health_of : ?notes:string list -> seed_run list -> health
(** Tally seed outcomes into a health record (exposed for harnesses that
    assemble runs themselves). *)

val mean_contexts : result -> float
(** Average distinct racy contexts per seed — the paper's table entry. *)

val racy_bases : result -> string list

val any_bad_outcome : result -> seed_outcome option
(** First seed outcome that is not [Completed Finished], if any. *)

val pp_seed_outcome : Format.formatter -> seed_outcome -> unit
val verdict_name : health_verdict -> string

val verdict_of_name : string -> health_verdict option
(** Inverse of {!verdict_name}. *)

val pp_health : Format.formatter -> health -> unit

(** {1 Stable serialized forms}

    The [--format json] wire contract: CI and the bench harness consume
    these instead of scraping pretty-printed text. *)

val health_to_json : health -> Arde_util.Json.t
val health_of_json : Arde_util.Json.t -> (health, string) Stdlib.result
(** [health_of_json (health_to_json h) = Ok h]. *)

val seed_run_to_json : seed_run -> Arde_util.Json.t
(** Counters plus rendered outcome/diagnostic strings (not invertible). *)

val prediction_to_json : prediction -> Arde_util.Json.t

val result_to_json : result -> Arde_util.Json.t
(** Mode, spin-loop count, merged report ({!Report.to_json}), per-seed
    runs, static hazards, health — plus a ["prediction"] object when
    the analysis predicted (absent otherwise, keeping pinned sweep
    documents byte-stable). *)

val compare_on_trace :
  ?options:options ->
  k:int ->
  program ->
  Config.mode list ->
  (Config.mode * Report.t) list
(** Record one event trace per seed (with spin instrumentation active) and
    replay the {e identical} trace through an engine per mode, isolating
    the algorithmic differences between detectors from schedule variance.
    Modes that require lowering run a different program and are rejected.

    @raise Invalid_argument on a [needs_lowering] mode. *)
