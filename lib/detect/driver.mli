(** End-to-end detector runs: program + mode + seeds → merged report.

    The pipeline has three stages:

    - {e prepare} (once per program): pick the program form — lowered for
      [Nolib_spin], as written otherwise — and run the instrumentation
      phase when the mode has a spin window.  Both go through
      {!Analysis_cache}, so repeated runs of the same program (suite
      sweeps, chaos storms, benchmarks) skip the static analysis.
    - {e per-seed} (pure, parallel): execute the machine with the engine
      attached as observer, one sandboxed run per seed, fanned out over a
      domain pool [Options.jobs] wide.
    - {e merge} (deterministic): fold the per-seed reports in seed order
      (a dynamic detector's findings accumulate over runs) and average
      the per-run racy-context counts (the paper's PARSEC metric).  The
      fold order is fixed, so results are byte-identical whatever the
      pool width. *)

open Arde_tir.Types

type options = Options.t
(** Build with {!Options.make} and the [Options.with_*] combinators. *)

val default_options : options
  [@@ocaml.deprecated "use Arde.Options.default (or Options.make ())"]
(** Thin alias for {!Options.default}, kept for one release. *)

type seed_outcome =
  | Completed of Arde_runtime.Machine.outcome
      (** The machine ran to a verdict (which may itself be a deadlock,
          livelock, fuel exhaustion or program fault). *)
  | Crashed of loc option * string
      (** The detector itself failed on this seed — a broken machine
          invariant, an observer exception, injected chaos.  The location
          is the machine's fault site when one is known. *)
  | Cancelled
      (** The run's [should_stop] hook fired before this seed started (a
          server deadline, a drain).  Nothing ran for it; completed
          seeds' findings are unaffected. *)

type seed_run = {
  sr_seed : int;
  sr_outcome : seed_outcome;
  sr_steps : int;
  sr_contexts : int;
  sr_capped : bool;
  sr_spin_edges : int;
  sr_memory_words : int;
  sr_check_failures : (loc * string) list;
  sr_cv_diagnostics : Cv_checker.diagnostic list;
      (* lost signals observed in this run *)
}

type health_verdict =
  | Healthy  (** every seed finished *)
  | Degraded
      (** some seed deadlocked, livelocked, starved, crashed or was
          cancelled *)
  | Failed  (** nothing ran: every seed crashed, or the pipeline did *)

type health = {
  h_seeds : int;
  h_finished : int;
  h_deadlocked : int;
  h_livelocked : int;
  h_fuel_exhausted : int;
  h_faulted : int;
  h_crashed : int;
  h_cancelled : int;
  h_verdict : health_verdict;
  h_notes : string list; (* pipeline and per-seed crash messages *)
}
(** Self-diagnosis of a detector run: how each seed ended and an overall
    verdict.  [run] always returns one — it never raises, whatever the
    program or the injected perturbations do. *)

type result = {
  mode : Config.mode;
  merged : Report.t; (* union of warnings over all seeds *)
  runs : seed_run list; (* in seed order, whatever the pool did *)
  n_spin_loops : int; (* accepted by the instrumentation phase *)
  static_cv_hazards : Cv_checker.diagnostic list;
      (* waits without a predicate re-check loop *)
  health : health;
}

(** {1 Engine selection}

    The per-seed detector behind a closure record.  {!run} defaults to
    the optimized {!Engine}; the differential suite passes
    {!ref_engine} to drive the identical pipeline (chaos injection and
    all) through the frozen {!Engine_ref} oracle and compare results
    byte for byte. *)

type engine = {
  e_observer : Arde_runtime.Event.t -> unit;
  e_report : unit -> Report.t;
  e_spin_edges : unit -> int;
  e_memory_words : unit -> int;
}

type engine_factory =
  Config.t ->
  cv_mutexes:string list ->
  inferred_locks:string list ->
  instrument:Arde_cfg.Instrument.t option ->
  engine

val opt_engine : engine_factory
(** {!Engine}, the epoch-based optimized detector (the default). *)

val ref_engine : engine_factory
(** {!Engine_ref}, the frozen reference detector. *)

val run :
  ?options:options ->
  ?engine:engine_factory ->
  ?pool:Arde_util.Domain_pool.pool ->
  ?should_stop:(unit -> bool) ->
  ?program_digest:string ->
  Config.mode ->
  program ->
  result
(** Fault-isolated and parallel: each seed executes in a sandbox on the
    domain pool, so one seed crashing (or the whole pipeline failing to
    prepare the program) yields a [Crashed] seed outcome / [Failed]
    health record while every healthy seed's warnings are still merged.
    The merged report, health verdict and run list are independent of
    [Options.jobs]; a [jobs] request beyond the host core count is
    clamped, with a note recorded in [health.h_notes].  This function
    does not raise.

    [pool] runs the per-seed stage on a caller-owned resident
    {!Arde_util.Domain_pool.pool} (the serve daemon's long-lived pool)
    instead of spawning domains for this call; [Options.jobs] is ignored
    in that case.

    [should_stop] is the cooperative cancellation hook, consulted once
    per seed before that seed starts.  Once it returns [true], remaining
    seeds become [Cancelled] (folded into {!health} as [Degraded]) while
    already-completed seeds keep their reports — the primitive behind
    the server's per-request deadlines and graceful drain.

    [program_digest] is a caller-supplied key uniquely identifying
    [program], forwarded to {!Analysis_cache.prepare} so the static
    half's cache lookup skips the canonical-digest pretty-print (the
    serve daemon passes the digest of the request's program text, which
    it computes anyway for its program cache). *)

val health_of : ?notes:string list -> seed_run list -> health
(** Tally seed outcomes into a health record (exposed for harnesses that
    assemble runs themselves). *)

val mean_contexts : result -> float
(** Average distinct racy contexts per seed — the paper's table entry. *)

val racy_bases : result -> string list

val any_bad_outcome : result -> seed_outcome option
(** First seed outcome that is not [Completed Finished], if any. *)

val pp_seed_outcome : Format.formatter -> seed_outcome -> unit
val verdict_name : health_verdict -> string

val verdict_of_name : string -> health_verdict option
(** Inverse of {!verdict_name}. *)

val pp_health : Format.formatter -> health -> unit

(** {1 Stable serialized forms}

    The [--format json] wire contract: CI and the bench harness consume
    these instead of scraping pretty-printed text. *)

val health_to_json : health -> Arde_util.Json.t
val health_of_json : Arde_util.Json.t -> (health, string) Stdlib.result
(** [health_of_json (health_to_json h) = Ok h]. *)

val seed_run_to_json : seed_run -> Arde_util.Json.t
(** Counters plus rendered outcome/diagnostic strings (not invertible). *)

val result_to_json : result -> Arde_util.Json.t
(** Mode, spin-loop count, merged report ({!Report.to_json}), per-seed
    runs, static hazards, health. *)

val compare_on_trace :
  ?options:options ->
  k:int ->
  program ->
  Config.mode list ->
  (Config.mode * Report.t) list
(** Record one event trace per seed (with spin instrumentation active) and
    replay the {e identical} trace through an engine per mode, isolating
    the algorithmic differences between detectors from schedule variance.
    Modes that require lowering run a different program and are rejected.

    @raise Invalid_argument on a [needs_lowering] mode. *)
