(** End-to-end detector runs: program + mode + seeds → merged report.

    For each seed the driver (1) picks the program form — lowered for
    [Nolib_spin], as written otherwise; (2) runs the instrumentation phase
    when the mode has a spin window; (3) executes the machine with the
    engine attached as observer; (4) merges reports across seeds (a
    dynamic detector's findings accumulate over runs) and averages the
    per-run racy-context counts (the paper's PARSEC metric). *)

open Arde_tir.Types

type options = {
  seeds : int list;
  policy : Arde_runtime.Sched.policy;
  fuel : int;
  sensitivity : Msm.sensitivity;
  cap : int;
  lower_style : Arde_tir.Lower.style;
  spurious_wakeups : bool;
  count_callee_blocks : bool;
      (* count condition-helper callee blocks toward the spin window (the
         paper's accounting); false is the ablation *)
  inject : (seed:int -> Arde_runtime.Event.t -> unit) option;
      (* extra per-seed observer, teed in ahead of the engine.  It may
         raise: [Machine.Fault_exn] becomes a machine [Fault] outcome,
         anything else crashes that seed's sandbox (chaos testing). *)
}

val default_options : options
(** Seeds 1–5, [Chunked 6], 2M fuel, short-running, cap 1000, realistic
    lowering, no spurious wakeups, no injection. *)

type seed_outcome =
  | Completed of Arde_runtime.Machine.outcome
      (** The machine ran to a verdict (which may itself be a deadlock,
          livelock, fuel exhaustion or program fault). *)
  | Crashed of loc option * string
      (** The detector itself failed on this seed — a broken machine
          invariant, an observer exception, injected chaos.  The location
          is the machine's fault site when one is known. *)

type seed_run = {
  sr_seed : int;
  sr_outcome : seed_outcome;
  sr_steps : int;
  sr_contexts : int;
  sr_capped : bool;
  sr_spin_edges : int;
  sr_memory_words : int;
  sr_check_failures : (loc * string) list;
  sr_cv_diagnostics : Cv_checker.diagnostic list;
      (* lost signals observed in this run *)
}

type health_verdict =
  | Healthy  (** every seed finished *)
  | Degraded  (** some seed deadlocked, livelocked, starved or crashed *)
  | Failed  (** nothing ran: every seed crashed, or the pipeline did *)

type health = {
  h_seeds : int;
  h_finished : int;
  h_deadlocked : int;
  h_livelocked : int;
  h_fuel_exhausted : int;
  h_faulted : int;
  h_crashed : int;
  h_verdict : health_verdict;
  h_notes : string list; (* pipeline and per-seed crash messages *)
}
(** Self-diagnosis of a detector run: how each seed ended and an overall
    verdict.  [run] always returns one — it never raises, whatever the
    program or the injected perturbations do. *)

type result = {
  mode : Config.mode;
  merged : Report.t; (* union of warnings over all seeds *)
  runs : seed_run list;
  n_spin_loops : int; (* accepted by the instrumentation phase *)
  static_cv_hazards : Cv_checker.diagnostic list;
      (* waits without a predicate re-check loop *)
  health : health;
}

val run : ?options:options -> Config.mode -> program -> result
(** Fault-isolated: each seed executes in a sandbox, so one seed crashing
    (or the whole pipeline failing to prepare the program) yields a
    [Crashed] seed outcome / [Failed] health record while every healthy
    seed's warnings are still merged.  This function does not raise. *)

val health_of : ?notes:string list -> seed_run list -> health
(** Tally seed outcomes into a health record (exposed for harnesses that
    assemble runs themselves). *)

val mean_contexts : result -> float
(** Average distinct racy contexts per seed — the paper's table entry. *)

val racy_bases : result -> string list

val any_bad_outcome : result -> seed_outcome option
(** First seed outcome that is not [Completed Finished], if any. *)

val pp_seed_outcome : Format.formatter -> seed_outcome -> unit
val verdict_name : health_verdict -> string
val pp_health : Format.formatter -> health -> unit

val compare_on_trace :
  ?options:options ->
  k:int ->
  program ->
  Config.mode list ->
  (Config.mode * Report.t) list
(** Record one event trace per seed (with spin instrumentation active) and
    replay the {e identical} trace through an engine per mode, isolating
    the algorithmic differences between detectors from schedule variance.
    Modes that require lowering run a different program and are rejected.

    @raise Invalid_argument on a [needs_lowering] mode. *)
