type analysis = Sweep | Predict | Both

let analysis_name = function
  | Sweep -> "sweep"
  | Predict -> "predict"
  | Both -> "both"

let parse_analysis = function
  | "sweep" -> Ok Sweep
  | "predict" -> Ok Predict
  | "both" -> Ok Both
  | s -> Error (Printf.sprintf "unknown analysis %S (sweep|predict|both)" s)

type t = {
  seeds : int list;
  policy : Arde_runtime.Sched.policy;
  fuel : int;
  jobs : int;
  sensitivity : Msm.sensitivity;
  cap : int;
  lower_style : Arde_tir.Lower.style;
  spurious_wakeups : bool;
  count_callee_blocks : bool;
  analysis : analysis;
  inject : (seed:int -> Arde_runtime.Event.t -> unit) option;
}

let default_jobs = Domain.recommended_domain_count ()

let default =
  {
    seeds = [ 1; 2; 3; 4; 5 ];
    policy = Arde_runtime.Sched.Chunked 6;
    fuel = 2_000_000;
    jobs = 0;
    sensitivity = Msm.Short_running;
    cap = 1000;
    lower_style = Arde_tir.Lower.Realistic;
    spurious_wakeups = false;
    count_callee_blocks = true;
    analysis = Sweep;
    inject = None;
  }

let make ?seeds ?policy ?fuel ?jobs ?sensitivity ?cap ?lower_style
    ?spurious_wakeups ?count_callee_blocks ?analysis ?inject () =
  {
    seeds = Option.value ~default:default.seeds seeds;
    policy = Option.value ~default:default.policy policy;
    fuel = Option.value ~default:default.fuel fuel;
    jobs = Option.value ~default:default.jobs jobs;
    sensitivity = Option.value ~default:default.sensitivity sensitivity;
    cap = Option.value ~default:default.cap cap;
    lower_style = Option.value ~default:default.lower_style lower_style;
    spurious_wakeups =
      Option.value ~default:default.spurious_wakeups spurious_wakeups;
    count_callee_blocks =
      Option.value ~default:default.count_callee_blocks count_callee_blocks;
    analysis = Option.value ~default:default.analysis analysis;
    inject;
  }

let with_seeds seeds t = { t with seeds }
let with_seed_count n t = { t with seeds = List.init (max 0 n) (fun i -> i + 1) }
let with_policy policy t = { t with policy }
let with_fuel fuel t = { t with fuel }
let with_jobs jobs t = { t with jobs }
let with_sensitivity sensitivity t = { t with sensitivity }
let with_cap cap t = { t with cap }
let with_lower_style lower_style t = { t with lower_style }
let with_spurious_wakeups spurious_wakeups t = { t with spurious_wakeups }
let with_count_callee_blocks count_callee_blocks t = { t with count_callee_blocks }
let with_analysis analysis t = { t with analysis }
let with_inject inject t = { t with inject }

(* ------------------------------------------------------------------ *)
(* Wire form — the serve protocol ships the whole option surface as one
   JSON object.  [inject] is a closure and never crosses the wire; every
   other field does, and absent fields mean "the default", so an empty
   object is a valid (default) options payload. *)

module J = Arde_util.Json

let to_json t =
  J.Obj
    ([
       ("seeds", J.List (List.map (fun s -> J.Int s) t.seeds));
       ("policy", J.String (Arde_runtime.Sched.policy_name t.policy));
       ("fuel", J.Int t.fuel);
       ("jobs", J.Int t.jobs);
       ("sensitivity", J.String (Msm.sensitivity_name t.sensitivity));
       ("cap", J.Int t.cap);
       ("lower_style", J.String (Arde_tir.Lower.style_name t.lower_style));
       ("spurious_wakeups", J.Bool t.spurious_wakeups);
       ("count_callee_blocks", J.Bool t.count_callee_blocks);
     ]
    (* emitted only when non-default, so pre-analysis documents (and
       every already-recorded trace header) stay byte-identical *)
    @
    if t.analysis = Sweep then []
    else [ ("analysis", J.String (analysis_name t.analysis)) ])

let of_json j =
  let ( let* ) = Result.bind in
  match j with
  | J.Obj _ ->
      let opt_field name conv k =
        match J.member name j with
        | None -> Ok None
        | Some v -> (
            match conv v with
            | Some x -> k x
            | None -> Error (Printf.sprintf "ill-typed field %S" name))
      in
      let int_field name = opt_field name J.to_int (fun x -> Ok (Some x)) in
      let bool_field name = opt_field name J.to_bool (fun x -> Ok (Some x)) in
      let parsed_field name parse =
        opt_field name J.to_str (fun s ->
            match parse s with
            | Ok x -> Ok (Some x)
            | Error e -> Error (Printf.sprintf "field %S: %s" name e))
      in
      let* seeds =
        match J.member "seeds" j with
        | None -> Ok None
        | Some (J.List xs) ->
            let rec go acc = function
              | [] -> Ok (Some (List.rev acc))
              | x :: rest -> (
                  match J.to_int x with
                  | Some s -> go (s :: acc) rest
                  | None -> Error "ill-typed seed in \"seeds\"")
            in
            go [] xs
        | Some _ -> Error "ill-typed field \"seeds\""
      in
      let* policy = parsed_field "policy" Arde_runtime.Sched.parse_policy in
      let* fuel = int_field "fuel" in
      let* jobs = int_field "jobs" in
      let* sensitivity = parsed_field "sensitivity" Msm.parse_sensitivity in
      let* cap = int_field "cap" in
      let* lower_style = parsed_field "lower_style" Arde_tir.Lower.parse_style in
      let* spurious_wakeups = bool_field "spurious_wakeups" in
      let* count_callee_blocks = bool_field "count_callee_blocks" in
      let* analysis = parsed_field "analysis" parse_analysis in
      Ok
        (make ?seeds ?policy ?fuel ?jobs ?sensitivity ?cap ?lower_style
           ?spurious_wakeups ?count_callee_blocks ?analysis ())
  | _ -> Error "options must be a JSON object"

(* Requested widths beyond the host's core count only add domain-switch
   overhead (every worker is CPU-bound); clamp and let callers surface the
   correction. *)
let jobs_clamp t =
  if t.jobs > default_jobs then Some (t.jobs, default_jobs) else None

let effective_jobs t ~n_seeds =
  let width =
    if t.jobs <= 0 then default_jobs else min t.jobs default_jobs
  in
  max 1 (min width n_seeds)
