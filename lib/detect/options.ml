type t = {
  seeds : int list;
  policy : Arde_runtime.Sched.policy;
  fuel : int;
  jobs : int;
  sensitivity : Msm.sensitivity;
  cap : int;
  lower_style : Arde_tir.Lower.style;
  spurious_wakeups : bool;
  count_callee_blocks : bool;
  inject : (seed:int -> Arde_runtime.Event.t -> unit) option;
}

let default_jobs = Domain.recommended_domain_count ()

let default =
  {
    seeds = [ 1; 2; 3; 4; 5 ];
    policy = Arde_runtime.Sched.Chunked 6;
    fuel = 2_000_000;
    jobs = 0;
    sensitivity = Msm.Short_running;
    cap = 1000;
    lower_style = Arde_tir.Lower.Realistic;
    spurious_wakeups = false;
    count_callee_blocks = true;
    inject = None;
  }

let make ?seeds ?policy ?fuel ?jobs ?sensitivity ?cap ?lower_style
    ?spurious_wakeups ?count_callee_blocks ?inject () =
  {
    seeds = Option.value ~default:default.seeds seeds;
    policy = Option.value ~default:default.policy policy;
    fuel = Option.value ~default:default.fuel fuel;
    jobs = Option.value ~default:default.jobs jobs;
    sensitivity = Option.value ~default:default.sensitivity sensitivity;
    cap = Option.value ~default:default.cap cap;
    lower_style = Option.value ~default:default.lower_style lower_style;
    spurious_wakeups =
      Option.value ~default:default.spurious_wakeups spurious_wakeups;
    count_callee_blocks =
      Option.value ~default:default.count_callee_blocks count_callee_blocks;
    inject;
  }

let with_seeds seeds t = { t with seeds }
let with_seed_count n t = { t with seeds = List.init (max 0 n) (fun i -> i + 1) }
let with_policy policy t = { t with policy }
let with_fuel fuel t = { t with fuel }
let with_jobs jobs t = { t with jobs }
let with_sensitivity sensitivity t = { t with sensitivity }
let with_cap cap t = { t with cap }
let with_lower_style lower_style t = { t with lower_style }
let with_spurious_wakeups spurious_wakeups t = { t with spurious_wakeups }
let with_count_callee_blocks count_callee_blocks t = { t with count_callee_blocks }
let with_inject inject t = { t with inject }

(* Requested widths beyond the host's core count only add domain-switch
   overhead (every worker is CPU-bound); clamp and let callers surface the
   correction. *)
let jobs_clamp t =
  if t.jobs > default_jobs then Some (t.jobs, default_jobs) else None

let effective_jobs t ~n_seeds =
  let width =
    if t.jobs <= 0 then default_jobs else min t.jobs default_jobs
  in
  max 1 (min width n_seeds)
