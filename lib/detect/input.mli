(** What a detection run consumes — the one front door.

    [Arde.detect], [Driver.run] and the serve protocol all take an
    {!t}: program source text, an already-built program value, or a
    recorded trace to replay.  The sum is what lets every entry point
    stop assuming "input = program text" now that analysis can run from
    a recording without re-executing the machine. *)

type t =
  | Text of string  (** TIR source, parsed and validated by the driver *)
  | Program of Arde_tir.Types.program
  | Recorded_trace of Recorded.t
      (** replay: the machine never runs; events stream from the
          recording *)

val of_text : string -> t
val of_program : Arde_tir.Types.program -> t
val of_trace : Recorded.t -> t

val describe : t -> string
(** One-line form for logs and error notes. *)
