(** First-class detection options.

    This is the one knob surface for the whole pipeline: build a value
    with {!make} (every field defaulted) and refine it with the [with_*]
    combinators:

    {[
      let options =
        Arde.Options.make ~jobs:4 ()
        |> Arde.Options.with_seed_count 10
        |> Arde.Options.with_fuel 400_000
      in
      Arde.detect ~options mode program
    ]}

    The record is exposed so {!Driver} and pattern-matching callers can
    read fields directly, but construction should go through {!make} /
    [with_*] — new fields get defaults there, so adding one never breaks
    a caller. *)

type analysis =
  | Sweep  (** the classic 16-seed-style dynamic sweep: one detector
               run per seed, races observed directly *)
  | Predict
      (** record a couple of executions and {e predict} sync-preserving
          races from the traces ({!Arde_predict.Sp_predict}) — many
          fewer executions for the same racy contexts *)
  | Both  (** full sweep plus prediction from the first recordings —
              the differential-testing configuration *)

val analysis_name : analysis -> string
(** ["sweep"] / ["predict"] / ["both"] — the wire and CLI spelling. *)

val parse_analysis : string -> (analysis, string) result

type t = {
  seeds : int list;  (** scheduler seeds, one detector run each *)
  policy : Arde_runtime.Sched.policy;
  fuel : int;  (** max machine steps per seed *)
  jobs : int;
      (** domain-pool width for the per-seed stage.  [0] means "use
          {!default_jobs}".  Results are independent of this value: the
          merge stage is order-stable, so [jobs = 1] and [jobs = N]
          produce byte-identical merged reports and health verdicts. *)
  sensitivity : Msm.sensitivity;
  cap : int;  (** racy-context cap per run (the paper uses 1000) *)
  lower_style : Arde_tir.Lower.style;
  spurious_wakeups : bool;
  count_callee_blocks : bool;
      (** count condition-helper callee blocks toward the spin window
          (the paper's accounting); [false] is the ablation *)
  analysis : analysis;  (** how races are found; {!Sweep} by default *)
  inject : (seed:int -> Arde_runtime.Event.t -> unit) option;
      (** extra per-seed observer, teed in ahead of the engine.  It may
          raise: [Machine.Fault_exn] becomes a machine [Fault] outcome,
          anything else crashes that seed's sandbox (chaos testing).
          The [~seed] application happens on the worker domain running
          that seed, so the returned closure owns its state; state shared
          {e across} seeds must be domain-safe. *)
}

val default_jobs : int
(** [Domain.recommended_domain_count ()], sampled at startup. *)

val default : t
(** Seeds 1–5, [Chunked 6], 2M fuel, [jobs = 0] (hardware width),
    short-running, cap 1000, realistic lowering, no spurious wakeups,
    callee blocks counted, no injection. *)

val make :
  ?seeds:int list ->
  ?policy:Arde_runtime.Sched.policy ->
  ?fuel:int ->
  ?jobs:int ->
  ?sensitivity:Msm.sensitivity ->
  ?cap:int ->
  ?lower_style:Arde_tir.Lower.style ->
  ?spurious_wakeups:bool ->
  ?count_callee_blocks:bool ->
  ?analysis:analysis ->
  ?inject:(seed:int -> Arde_runtime.Event.t -> unit) ->
  unit ->
  t
(** [make ()] is {!default}; each argument overrides one field. *)

(** {1 Combinators} — pipe-friendly: [options |> with_fuel 1000]. *)

val with_seeds : int list -> t -> t

val with_seed_count : int -> t -> t
(** [with_seed_count n] is [with_seeds [1; …; n]] — the CLI idiom. *)

val with_policy : Arde_runtime.Sched.policy -> t -> t
val with_fuel : int -> t -> t
val with_jobs : int -> t -> t
val with_sensitivity : Msm.sensitivity -> t -> t
val with_cap : int -> t -> t
val with_lower_style : Arde_tir.Lower.style -> t -> t
val with_spurious_wakeups : bool -> t -> t
val with_count_callee_blocks : bool -> t -> t
val with_analysis : analysis -> t -> t
val with_inject : (seed:int -> Arde_runtime.Event.t -> unit) option -> t -> t

(** {1 Wire form}

    The serve protocol ships the whole option surface as one JSON
    object.  [inject] is a closure and never crosses the wire; every
    other field does.  [of_json] treats absent fields as defaults, so
    [Obj []] is a valid (all-default) payload, and
    [of_json (to_json t) = Ok { t with inject = None }].  The
    [analysis] field is emitted only when it is not {!Sweep}, keeping
    recorded trace headers and pinned documents byte-identical. *)

val to_json : t -> Arde_util.Json.t
val of_json : Arde_util.Json.t -> (t, string) result

val effective_jobs : t -> n_seeds:int -> int
(** The domain-pool width a run will actually use: [jobs] (or
    {!default_jobs} when [jobs <= 0]) clamped to the host core count
    ({!default_jobs}) and to the seed count, at least 1. *)

val jobs_clamp : t -> (int * int) option
(** [Some (requested, host)] when [jobs] exceeds the host core count and
    {!effective_jobs} will clamp it; [None] otherwise. *)
