module Codec = Arde_runtime.Trace_codec

type t = {
  r_header : Codec.header;
  r_mode : Config.mode;
  r_options : Options.t;
  r_program : Arde_tir.Types.program;
  r_sections : Codec.section list;
}

let ( let* ) = Result.bind

let of_string data =
  let* header, sects =
    Result.map_error Codec.error_to_string (Codec.read_sections data)
  in
  let* mode =
    Result.map_error
      (fun e -> Printf.sprintf "trace header mode: %s" e)
      (Config.parse_mode header.Codec.h_mode)
  in
  let* options_json =
    Result.map_error
      (fun e -> Printf.sprintf "trace header options: %s" e)
      (Arde_util.Json.parse header.Codec.h_options)
  in
  let* options =
    Result.map_error
      (fun e -> Printf.sprintf "trace header options: %s" e)
      (Options.of_json options_json)
  in
  let* program =
    Result.map_error
      (fun e ->
        Printf.sprintf "trace program: %s" (Arde_tir.Parse.error_to_string e))
      (Arde_tir.Parse.program header.Codec.h_program)
  in
  let* () =
    match Arde_tir.Validate.check program with
    | Ok () -> Ok ()
    | Error errs ->
        Error
          (Printf.sprintf "trace program fails validation: %s"
             (String.concat "; "
                (List.map Arde_tir.Validate.error_to_string errs)))
  in
  let actual = Digest.to_hex (Analysis_cache.digest_of_program program) in
  let* () =
    if String.equal actual header.Codec.h_digest then Ok ()
    else
      Error
        (Printf.sprintf
           "trace digest mismatch: header claims %s, embedded program digests \
            to %s"
           header.Codec.h_digest actual)
  in
  Ok
    {
      r_header = header;
      r_mode = mode;
      r_options = options;
      r_program = program;
      r_sections = sects;
    }

let to_string t = Codec.assemble t.r_header t.r_sections
let header t = t.r_header
let mode t = t.r_mode
let options t = t.r_options
let program t = t.r_program
let sections t = t.r_sections
let digest_hex t = t.r_header.Codec.h_digest
let source t = t.r_header.Codec.h_source
let seeds t = List.map (fun s -> s.Codec.s_seed) t.r_sections

let n_events t =
  List.fold_left (fun acc s -> acc + s.Codec.s_n_events) 0 t.r_sections
