(** The on-disk request spool and crash-bundle store.

    Before a worker executes a run request it journals the request to
    [SPOOL/worker-N.inflight.json] via write-tmp-then-rename — one JSON
    header line of identity metadata, then the exact wire payload bytes
    (journaling is on the per-request hot path, so the request is never
    re-serialized) — and removes the journal after responding.  When the supervisor reaps a
    crashed or watchdog-killed worker it {!seal}s the surviving journal
    into [SPOOL/bundles/crash-*.json]: a durable, self-contained record
    of exactly what the worker was executing, replayable offline with
    [arde postmortem].

    Journal writes are best-effort by design (crash-only thinking: the
    request must be served even when the disk is full); a failed write
    is reported to the supervisor as a counter, never as a request
    error. *)

type t

val create : root:string -> (t, string) result
(** Create (or adopt) a spool rooted at [root]; makes [root] and
    [root/bundles]. *)

val root : t -> string

val inflight_path : t -> worker:int -> string

val journal :
  t ->
  worker:int ->
  pid:int ->
  digest:string ->
  request:string ->
  (unit, string) result
(** Durably record that worker [worker] is about to execute [request] —
    the client's raw run-request bytes, written verbatim, so a replay
    re-parses exactly what arrived with the production parser. *)

val journal_trace : t -> worker:int -> trace:string -> (unit, string) result
(** Record the binary trace of the request the worker is executing,
    alongside its journal.  Written by the worker between the cheap
    recording pass and the expensive detection pass of a record-mode
    request: if the worker dies during detection (a watchdog kill, a
    crash), {!seal} folds the trace into the bundle and [arde
    postmortem] replays detection from it instead of re-executing. *)

val clear : t -> worker:int -> unit
(** Remove the worker's journal and trace (request completed normally). *)

val read_inflight : t -> worker:int -> Arde.Json.t option

val seal : t -> worker:int -> reason:string -> (string option, string) result
(** Turn the worker's in-flight journal, if any, into a durable crash
    bundle tagged with [reason]; returns the bundle path.  [Ok None]
    when the worker had nothing journaled (it crashed between requests,
    or never got to journal). *)

val bundles : t -> string list
(** Bundle paths, oldest first. *)

val load : string -> (Arde.Json.t, string) result
(** Load and schema-check a crash bundle. *)

val bundle_request : Arde.Json.t -> (string, string) result
(** The journaled wire request inside a loaded bundle, as the raw frame
    payload bytes — re-serialized JSON for a JSON-wire request, decoded
    base64 for a binary-wire one — ready for [Protocol.parse_request]. *)

val bundle_trace : Arde.Json.t -> (string option, string) result
(** The binary trace sealed into a loaded bundle, when the crashed
    request had recorded one ([Ok None] otherwise); [Error] on a
    corrupted base64 field. *)
