(* The on-disk request spool and crash-bundle store.  See spool.mli. *)

module J = Arde.Json

type t = { root : string; mutable seq : int }

let bundle_dir t = Filename.concat t.root "bundles"

let mkdir_p path =
  let rec go path =
    if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Unix.mkdir path 0o700
      with Unix.Unix_error (EEXIST, _, _) -> ()
    end
  in
  go path

let create ~root =
  match
    mkdir_p root;
    mkdir_p (Filename.concat root "bundles")
  with
  | () -> Ok { root; seq = 0 }
  | exception Unix.Unix_error (err, fn, arg) ->
      Error
        (Printf.sprintf "spool %s: %s %s: %s" root fn arg
           (Unix.error_message err))

let root t = t.root

let inflight_path t ~worker =
  Filename.concat t.root (Printf.sprintf "worker-%d.inflight.json" worker)

let trace_path t ~worker =
  Filename.concat t.root (Printf.sprintf "worker-%d.inflight.trace" worker)

let schema = "arde-crash-bundle/1"

(* The journal is written on EVERY run request, so its write must not
   re-serialize the request: the file is one small JSON header line
   followed by the raw request bytes exactly as they arrived on the
   public socket.  Only {!seal} — the crash path — ever parses them. *)
let journal t ~worker ~pid ~digest ~request =
  let header =
    J.Obj
      [
        ("schema", J.String schema);
        ("worker", J.Int worker);
        ("pid", J.Int pid);
        ("digest", J.String digest);
        ("received_at", J.Float (Unix.gettimeofday ()));
      ]
  in
  Util.write_file_atomic (inflight_path t ~worker)
    (J.to_string header ^ "\n" ^ request)

let journal_trace t ~worker ~trace =
  Util.write_file_atomic (trace_path t ~worker) trace

let clear t ~worker =
  (try Sys.remove (inflight_path t ~worker) with Sys_error _ -> ());
  try Sys.remove (trace_path t ~worker) with Sys_error _ -> ()

let read_inflight t ~worker =
  match Util.read_file (inflight_path t ~worker) with
  | Error _ -> None
  | Ok text -> (
      match String.index_opt text '\n' with
      | None -> None
      | Some nl -> (
          let header = String.sub text 0 nl in
          let raw =
            String.sub text (nl + 1) (String.length text - nl - 1)
          in
          match J.parse header with
          | Ok (J.Obj fields) ->
              (* A JSON-wire request is embedded as parsed JSON (bundles
                 stay human-readable); a binary-wire request cannot be,
                 so it rides base64 — either way the exact bytes are
                 recoverable for the production parser. *)
              let request_field =
                match J.parse raw with
                | Ok request -> [ ("request", request) ]
                | Error _ ->
                    [ ("request_b64", J.String (Arde.Base64.encode raw)) ]
              in
              Some (J.Obj (fields @ request_field))
          | _ -> None))

let seal t ~worker ~reason =
  match read_inflight t ~worker with
  | None -> Ok None
  | Some entry ->
      t.seq <- t.seq + 1;
      let sealed_at = Unix.gettimeofday () in
      (* A record-mode request that died during detection left its trace
         beside the journal; fold it in so the postmortem can replay the
         detection instead of re-executing the machine. *)
      let trace_field =
        match Util.read_file (trace_path t ~worker) with
        | Ok trace -> [ ("trace", J.String (Arde.Base64.encode trace)) ]
        | Error _ -> []
      in
      let tail =
        trace_field
        @ [
            ("crash_reason", J.String reason);
            ("sealed_at", J.Float sealed_at);
          ]
      in
      let bundle =
        match entry with
        | J.Obj fields -> J.Obj (fields @ tail)
        | other ->
            J.Obj ((("schema", J.String schema) :: ("journal", other) :: tail))
      in
      let name =
        Printf.sprintf "crash-%.0f-w%d-%d.json" (sealed_at *. 1000.) worker
          t.seq
      in
      let path = Filename.concat (bundle_dir t) name in
      (match Util.write_file_atomic path (J.to_string ~minify:false bundle) with
      | Ok () ->
          clear t ~worker;
          Ok (Some path)
      | Error e -> Error e)

let bundles t =
  match Sys.readdir (bundle_dir t) with
  | exception Sys_error _ -> []
  | names ->
      let l =
        Array.to_list names
        |> List.filter (fun n -> Filename.check_suffix n ".json")
        |> List.map (fun n -> Filename.concat (bundle_dir t) n)
      in
      List.sort compare l

let load path =
  match Util.read_file path with
  | Error e -> Error e
  | Ok text -> (
      match J.parse_checked text with
      | Error e -> Error (path ^ ": " ^ J.error_to_string e)
      | Ok j -> (
          match Option.bind (J.member "schema" j) J.to_str with
          | Some s when s = schema -> Ok j
          | Some s ->
              Error
                (Printf.sprintf "%s: unknown bundle schema %S (want %S)" path
                   s schema)
          | None -> Error (path ^ ": not a crash bundle (no schema field)")))

let bundle_request j =
  match J.member "request" j with
  | Some r -> Ok (J.to_string r)
  | None -> (
      match Option.bind (J.member "request_b64" j) J.to_str with
      | Some b64 ->
          Result.map_error
            (fun e -> "bundle request: " ^ e)
            (Arde.Base64.decode b64)
      | None -> Error "bundle carries no request")

let bundle_trace j =
  match Option.bind (J.member "trace" j) J.to_str with
  | None -> Ok None
  | Some b64 -> (
      match Arde.Base64.decode b64 with
      | Ok trace -> Ok (Some trace)
      | Error e -> Error ("bundle trace: " ^ e))
