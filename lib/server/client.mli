(** Blocking client for the serve socket — the library behind
    [arde submit], the protocol tests and the load benchmark.

    One {!t} is one connection; it is not domain-safe (give each
    concurrent client its own connection, as the benchmark does).
    Request helpers send one frame and block until the matching response
    frame arrives; servers answer a connection's requests in submission
    order for run requests, while ping/stats/admission errors may
    overtake queued runs (they are answered by the connection loop
    directly). *)

type t

val connect : socket_path:string -> (t, string) result
val close : t -> unit
(** Idempotent. *)

val request : t -> Arde.Json.t -> (Arde.Json.t, string) result
(** Send one JSON request frame, wait for one response frame.  [Error]
    on transport failure (refused connection, mid-response disconnect,
    unparsable response). *)

val run :
  t ->
  ?id:Arde.Json.t ->
  ?deadline_ms:int ->
  program:string ->
  mode:Arde.Config.mode ->
  options:Arde.Options.t ->
  unit ->
  (Arde.Json.t, string) result
(** Submit a detection run; returns the whole response object (check
    {!Protocol.response_ok} / {!Protocol.response_error}, extract
    ["result"] and ["analysis_cache"] on success). *)

val stats : t -> (Arde.Json.t, string) result
val ping : t -> (Arde.Json.t, string) result

(** {1 Low-level access} (protocol tests) *)

val send_raw : t -> string -> (unit, string) result
(** Write raw bytes with {e no} framing — for feeding the server
    malformed input. *)

val send_frame : t -> string -> (unit, string) result
(** Frame and send a payload without waiting for a response. *)

val recv : t -> (Arde.Json.t, string) result
(** Read frames until one complete response arrives and parse it. *)

val fd : t -> Unix.file_descr
(** The underlying socket (tests: shutdown mid-frame). *)
