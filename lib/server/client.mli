(** Blocking client for the serve socket — the library behind
    [arde submit], the protocol tests and the load benchmark.

    One {!t} is one connection; it is not domain-safe (give each
    concurrent client its own connection, as the benchmark does).
    Request helpers send one frame and block until the matching response
    frame arrives; servers answer a connection's requests in submission
    order for run requests, while ping/stats/admission errors may
    overtake queued runs (they are answered by the connection loop
    directly). *)

type t

type endpoint = Unix_socket of string | Tcp of string * int
    (** Where the daemon listens.  [Tcp ("", port)] and
        [Tcp ("localhost", port)] mean loopback; other hosts resolve as
        numeric addresses first, then through the resolver.  Both
        endpoints speak the identical frame and wire protocol. *)

val endpoint_to_string : endpoint -> string

val parse_tcp_endpoint : string -> (endpoint, string) result
(** ["HOST:PORT"] (host optional: [":4817"] and ["4817"] mean loopback)
    to a [Tcp] endpoint — the parser behind [--connect]. *)

val connect :
  ?wire:Protocol.wire ->
  ?max_frame:int ->
  endpoint:endpoint ->
  unit ->
  (t, string) result
(** [wire] (default [Json]) selects the request encoding for this
    connection.  [Binary] performs the hello handshake: the server's
    hello-ack mirrors its frame cap and this client resizes its decoder
    to match, so responses up to the server's real limit are accepted.
    [max_frame] (default {!Protocol.default_max_frame}) bounds response
    frames until (and unless) a handshake overrides it — mirror the
    server's [--max-frame-mb] here when talking JSON to a server with a
    raised cap.  Responses decode by their own first byte, so callers
    see canonical JSON response objects on either wire.  TCP
    connections set [TCP_NODELAY] — the protocol is request/response
    over small frames, which Nagle serves terribly. *)

val close : t -> unit
(** Idempotent. *)

val wire : t -> Protocol.wire

val max_frame : t -> int
(** The response-frame cap in force: the negotiated value on a binary
    connection, the [connect] argument otherwise. *)

val request : t -> Arde.Json.t -> (Arde.Json.t, string) result
(** Send one JSON request frame, wait for one response frame.  [Error]
    on transport failure (refused connection, mid-response disconnect,
    unparsable response). *)

val request_payload : t -> string -> (Arde.Json.t, string) result
(** Send one raw frame payload (either wire), wait for one response. *)

val run :
  t ->
  ?id:Arde.Json.t ->
  ?deadline_ms:int ->
  ?retry:int ->
  ?record:bool ->
  program:string ->
  mode:Arde.Config.mode ->
  options:Arde.Options.t ->
  unit ->
  (Arde.Json.t, string) result
(** Submit a detection run; returns the whole response object (check
    {!Protocol.response_ok} / {!Protocol.response_error}, extract
    ["result"] and ["analysis_cache"] on success).  [retry] marks a
    resend (see {!Protocol.run_request_json}); [record] asks for the
    binary trace back in the response's ["trace"] field (base64). *)

val replay :
  t ->
  ?id:Arde.Json.t ->
  ?deadline_ms:int ->
  ?retry:int ->
  trace:string ->
  unit ->
  (Arde.Json.t, string) result
(** Submit a recorded binary trace ([trace] is the raw bytes) for
    server-side replay; the response has the same shape as {!run}'s. *)

val stats : t -> (Arde.Json.t, string) result
val ping : t -> (Arde.Json.t, string) result

(** {1 Retry policy}

    Bounded exponential backoff with deterministic jitter, retrying only
    failures that are provably idempotent-safe — the request never
    started executing: a refused or missing socket (connection-level
    failure), a structured [draining] refusal, or a [worker_crashed]
    error (the run died; detection is pure, so re-running is safe).
    [overloaded] is deliberately {e not} retried: it is the server
    asking for less traffic, and hammering it defeats admission
    control.  Transport failures {e after} the request was sent are
    surfaced, not retried. *)

type retry_policy = {
  rp_attempts : int;  (** retries after the first attempt; 0 = one shot *)
  rp_backoff_ms : int;  (** first delay; doubles per retry *)
  rp_max_backoff_ms : int;
  rp_jitter_seed : int;
      (** seeds the jitter {!Arde.Prng} — equal seeds give reproducible
          schedules *)
  rp_sleep : float -> unit;  (** injectable for tests *)
}

val no_retry : retry_policy

val retry_policy :
  ?attempts:int ->
  ?backoff_ms:int ->
  ?max_backoff_ms:int ->
  ?jitter_seed:int ->
  ?sleep:(float -> unit) ->
  unit ->
  retry_policy
(** Defaults: [attempts = 0], [backoff_ms = 50], [max_backoff_ms =
    2_000], [jitter_seed = 0], [sleep = Util.sleepf].  Each delay is the
    doubled-and-capped base scaled by a jitter factor in [\[0.5, 1.5)]. *)

val submit_with_retry :
  endpoint:endpoint ->
  policy:retry_policy ->
  ?wire:Protocol.wire ->
  ?max_frame:int ->
  ?id:Arde.Json.t ->
  ?deadline_ms:int ->
  ?record:bool ->
  program:string ->
  mode:Arde.Config.mode ->
  options:Arde.Options.t ->
  unit ->
  (Arde.Json.t, string) result * int
(** Run one request under the policy, opening a fresh connection per
    attempt and marking resends with the wire [retry] field.  Returns
    the final outcome (the last retryable failure verbatim when the
    budget runs out — a completed response's own exit semantics are
    never masked) and the number of retries actually performed. *)

val submit_trace_with_retry :
  endpoint:endpoint ->
  policy:retry_policy ->
  ?wire:Protocol.wire ->
  ?max_frame:int ->
  ?id:Arde.Json.t ->
  ?deadline_ms:int ->
  trace:string ->
  unit ->
  (Arde.Json.t, string) result * int
(** {!submit_with_retry} for a recorded trace: replay is pure, so the
    same idempotent-safe retry policy applies verbatim. *)

(** {1 Low-level access} (protocol tests) *)

val send_raw : t -> string -> (unit, string) result
(** Write raw bytes with {e no} framing — for feeding the server
    malformed input. *)

val send_frame : t -> string -> (unit, string) result
(** Frame and send a payload without waiting for a response. *)

val recv : t -> (Arde.Json.t, string) result
(** Read frames until one complete response arrives and parse it. *)

val fd : t -> Unix.file_descr
(** The underlying socket (tests: shutdown mid-frame). *)
