(** The worker-process half of the crash-only serving stack.

    A worker executes one run request at a time: it reads [job] frames
    from its stdin, journals each request to the {!Spool} before
    touching it, runs the detection pipeline with a process-local
    program cache and domain pool, and writes [done] frames back on the
    same fd — stdin is the supervisor's socketpair end and carries
    frames in both directions.  Stdout is deliberately {e not} part of
    the protocol (host binaries may link libraries that print there
    before {!hook} runs); the supervisor points it at stderr.  Stdin
    EOF is the drain signal, SIGKILL the crash-class one.

    {2 Why exec, not fork}

    OCaml 5 forbids [Unix.fork] in any process that has ever created a
    domain — and both detection and the test harness create domains
    freely.  So workers are launched by re-executing the {e host
    binary} with {!marker} as [argv.(1)]: every executable that may
    host a supervisor (the CLI, the test runner, the benchmark) calls
    {!hook} as the very first thing in [main], and an invocation
    carrying the marker becomes a worker and never returns. *)

val marker : string
(** ["__arde-serve-worker__"] — the sentinel [argv.(1)] of a worker
    invocation. *)

val hook : unit -> unit
(** Call first in every [main] of a binary that may host a supervisor.
    No-op unless [Sys.argv.(1)] is {!marker}; otherwise runs the worker
    loop on stdin/stdout and [exit]s (0 after a clean drain, 64-70 on
    startup or protocol failures). *)

val worker_args :
  spool:string ->
  index:int ->
  jobs:int ->
  max_frame:int ->
  chaos_plan:string ->
  store:string ->
  store_max_mb:int ->
  string array
(** The argv tail (starting with {!marker}) the supervisor passes to
    [Unix.create_process] when spawning worker [index].  [store] is the
    bundle-store directory shared by every worker of the daemon (and by
    successive daemons); [""] disables the store. *)
