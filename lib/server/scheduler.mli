(** The supervisor's request scheduler: one FIFO per worker slot
    (digest-affinity dispatch routes a program's requests to the same
    worker so its prepared-bundle cache stays hot), a {e global}
    admission bound across all queues, and the drain state machine.

    Slot accounting is the load-bearing invariant: a job holds exactly
    one unit of [depth] from {!submit}/{!enqueue} until {!take},
    {!drain_slot} or {!remove}; a refused submission holds none, a
    cancelled job releases its unit immediately and is counted in
    {!cancelled}.  Admission capacity therefore recovers the moment
    work is refused, re-routed or deadline-cancelled — never only when
    a worker gets around to it.

    Unlike its single-process predecessor this scheduler never blocks
    and takes no locks: it is owned by the supervisor's event loop,
    which is one thread.  Do not share a [t] across domains. *)

type 'job t

val create : workers:int -> max_pending:int -> 'job t
(** Both arguments are clamped to at least 1. *)

val workers : 'job t -> int

type admission = Accepted | Overloaded | Draining

val submit : 'job t -> slot:int -> 'job -> admission
(** Admission-checked enqueue onto [slot]'s queue.  [Overloaded] when
    [depth] has reached [max_pending] (the job is counted in
    {!refused} and holds no capacity). *)

val enqueue : 'job t -> slot:int -> 'job -> unit
(** Re-routing path: move a job that {e already} passed admission onto
    another slot's queue (its capacity unit travels with it).  Not
    admission-checked. *)

val take : 'job t -> slot:int -> 'job option
(** Pop the slot's next job and mark the slot busy; [None] if the slot
    is already busy or its queue is empty.  At most one job is in
    flight per slot — a worker process executes one request at a
    time. *)

val finish : 'job t -> slot:int -> unit
val busy : 'job t -> slot:int -> bool
val slot_depth : 'job t -> slot:int -> int

val drain_slot : 'job t -> slot:int -> 'job list
(** Remove and return every queued job of a dead slot (for re-routing
    via {!enqueue} or structured refusal).  Does not touch the busy
    flag. *)

val remove : 'job t -> pred:('job -> bool) -> 'job list
(** Remove every queued job matching [pred] (deadline-expired while
    queued), releasing their capacity and counting them in
    {!cancelled}.  Queue order of survivors is preserved. *)

val begin_drain : 'job t -> unit
val draining : 'job t -> bool

val depth : 'job t -> int
(** Total queued jobs across all slots. *)

val in_flight : 'job t -> int
val idle : 'job t -> bool
val refused : 'job t -> int
val cancelled : 'job t -> int
