(** The server's request scheduler: a bounded FIFO handing jobs from the
    connection loop to the worker domain, with admission control and the
    drain state machine.

    States: {e accepting} (submissions succeed until the queue holds
    [max_pending] jobs, then come back [Overloaded]) → {e draining}
    (after {!begin_drain}: every submission comes back [Draining], queued
    and in-flight jobs still complete) → {e idle} (queue empty, nothing
    in flight — {!next} returns [None] and the worker exits).

    All operations are safe to call from any domain.  {!begin_drain} is
    {e not} async-signal-safe (it takes the queue lock); signal handlers
    should set a flag and let the event loop call it. *)

type 'job t

val create : max_pending:int -> 'job t
(** [max_pending] is clamped to at least 1. *)

type admission = Accepted | Overloaded | Draining

val submit : 'job t -> 'job -> admission
(** Never blocks. *)

val next : 'job t -> 'job option
(** Blocks until a job is available; [None] once draining and idle (the
    worker's signal to exit).  Taking a job marks it in-flight until the
    matching {!job_done}. *)

val job_done : 'job t -> unit

val begin_drain : 'job t -> unit
(** Idempotent.  Wakes blocked {!next} callers. *)

val draining : 'job t -> bool
val depth : 'job t -> int
val in_flight : 'job t -> int

val idle : 'job t -> bool
(** Queue empty and nothing in flight. *)
