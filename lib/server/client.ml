(* Blocking serve-socket client.  See client.mli. *)

module J = Arde.Json
module P = Protocol

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket path -> path
  | Tcp (host, port) ->
      Printf.sprintf "%s:%d" (if host = "" then "localhost" else host) port

(* "HOST:PORT" with an optional host — ":4817" and "4817" both mean
   loopback.  Mirrors the CLI's [--tcp] syntax on the serve side. *)
let parse_tcp_endpoint s =
  let host, port_s =
    match String.rindex_opt s ':' with
    | None -> ("", s)
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match int_of_string_opt port_s with
  | Some port when port > 0 && port < 65536 -> Ok (Tcp (host, port))
  | Some _ | None ->
      Error (Printf.sprintf "invalid TCP endpoint %S (want HOST:PORT)" s)

type t = {
  cl_fd : Unix.file_descr;
  mutable cl_dec : P.decoder;
      (* replaced once a binary hello-ack announces the server's actual
         frame cap, so the client accepts everything the server may send *)
  cl_buf : Bytes.t; (* per-connection: clients may live on different domains *)
  cl_wire : P.wire;
  mutable cl_max_frame : int;
  mutable cl_open : bool;
}

let close t =
  if t.cl_open then begin
    t.cl_open <- false;
    try Unix.close t.cl_fd with Unix.Unix_error _ -> ()
  end

let fd t = t.cl_fd
let wire t = t.cl_wire
let max_frame t = t.cl_max_frame

let send_raw t bytes =
  if not t.cl_open then Error "connection closed"
  else
    let len = String.length bytes in
    let off = ref 0 in
    match
      while !off < len do
        off := !off + Util.write_substring t.cl_fd bytes !off (len - !off)
      done
    with
    | () -> Ok ()
    | exception Unix.Unix_error (err, _, _) ->
        Error ("write: " ^ Unix.error_message err)

let send_frame t payload = send_raw t (P.frame payload)

(* One complete frame payload off the socket, undecoded. *)
let recv_payload t =
  if not t.cl_open then Error "connection closed"
  else
    let rec loop () =
      match P.next_frame t.cl_dec with
      | P.Frame payload -> Ok payload
      | P.Too_large n ->
          Error (Printf.sprintf "response frame too large (%d bytes)" n)
      | P.Await -> (
          match Util.read t.cl_fd t.cl_buf 0 (Bytes.length t.cl_buf) with
          | 0 -> Error "connection closed by server"
          | n ->
              P.feed t.cl_dec t.cl_buf 0 n;
              loop ()
          | exception Unix.Unix_error (err, _, _) ->
              Error ("read: " ^ Unix.error_message err))
    in
    loop ()

(* Responses are self-describing (the binary magic byte), so either
   wire's response decodes here and callers stay wire-blind. *)
let recv t =
  match recv_payload t with
  | Error _ as e -> e
  | Ok payload -> (
      match P.payload_wire payload with
      | P.Binary ->
          Result.map_error (fun e -> "response: " ^ e)
            (P.response_of_binary payload)
      | P.Json ->
          Result.map_error (fun e -> "response: " ^ e) (J.parse payload))

let request_payload t payload =
  match send_frame t payload with Error _ as e -> e | Ok () -> recv t
let request t json = request_payload t (J.to_string json)

let connect ?(wire = P.Json) ?max_frame ~endpoint () =
  match
    match endpoint with
    | Unix_socket path ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
        let addr = Util.resolve_host host in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (* Request/response over small frames: Nagle would stall every
           request a full RTT behind the previous ack. *)
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        (fd, Unix.ADDR_INET (addr, port))
  with
  | exception Not_found ->
      Error
        (Printf.sprintf "cannot resolve host in %s"
           (endpoint_to_string endpoint))
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (endpoint_to_string endpoint) (Unix.error_message err))
  | fd, addr -> (
  match Util.connect fd addr with
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (endpoint_to_string endpoint) (Unix.error_message err))
  | () -> (
      let mf = Option.value max_frame ~default:P.default_max_frame in
      let t =
        {
          cl_fd = fd;
          cl_dec = P.decoder ~max_frame:mf ();
          cl_buf = Bytes.create 65536;
          cl_wire = wire;
          cl_max_frame = mf;
          cl_open = true;
        }
      in
      match wire with
      | P.Json -> Ok t
      | P.Binary -> (
          (* Negotiate: hello, then the ack mirroring the server's frame
             cap, so our decoder accepts whatever it may legally send. *)
          match send_frame t (P.binary_hello ()) with
          | Error e ->
              close t;
              Error ("hello: " ^ e)
          | Ok () -> (
              match recv_payload t with
              | Error e ->
                  close t;
                  Error ("hello: " ^ e)
              | Ok payload -> (
                  match P.parse_hello_ack payload with
                  | Error e ->
                      close t;
                      Error ("hello: " ^ e)
                  | Ok negotiated ->
                      t.cl_max_frame <- negotiated;
                      (* The server speaks request/response, so nothing
                         can be buffered behind the ack; guard anyway. *)
                      if
                        negotiated <> mf
                        && P.decoder_pending t.cl_dec = 0
                      then t.cl_dec <- P.decoder ~max_frame:negotiated ();
                      Ok t)))))

let run t ?id ?deadline_ms ?retry ?record ~program ~mode ~options () =
  request_payload t
    (match t.cl_wire with
    | P.Json ->
        J.to_string
          (P.run_request_json ?id ?deadline_ms ?retry ?record ~program ~mode
             ~options ())
    | P.Binary ->
        P.binary_run_request ?id ?deadline_ms ?retry ?record ~program ~mode
          ~options ())

let replay t ?id ?deadline_ms ?retry ~trace () =
  request_payload t
    (match t.cl_wire with
    | P.Json ->
        J.to_string (P.replay_request_json ?id ?deadline_ms ?retry ~trace ())
    | P.Binary -> P.binary_replay_request ?id ?deadline_ms ?retry ~trace ())

let stats t =
  request_payload t
    (match t.cl_wire with
    | P.Json -> J.to_string (P.stats_request ())
    | P.Binary -> P.binary_stats_request ())

let ping t =
  request_payload t
    (match t.cl_wire with
    | P.Json -> J.to_string (P.ping_request ())
    | P.Binary -> P.binary_ping_request ())

(* ------------------------------------------------------------------ *)
(* Retry policy                                                       *)

type retry_policy = {
  rp_attempts : int;
  rp_backoff_ms : int;
  rp_max_backoff_ms : int;
  rp_jitter_seed : int;
  rp_sleep : float -> unit;
}

let no_retry =
  {
    rp_attempts = 0;
    rp_backoff_ms = 50;
    rp_max_backoff_ms = 2_000;
    rp_jitter_seed = 0;
    rp_sleep = Util.sleepf;
  }

let retry_policy ?(attempts = 0) ?(backoff_ms = 50) ?(max_backoff_ms = 2_000)
    ?(jitter_seed = 0) ?(sleep = Util.sleepf) () =
  {
    rp_attempts = max 0 attempts;
    rp_backoff_ms = max 1 backoff_ms;
    rp_max_backoff_ms = max 1 max_backoff_ms;
    rp_jitter_seed = jitter_seed;
    rp_sleep = sleep;
  }

let backoff_delay_s policy prng ~attempt =
  let base =
    min policy.rp_max_backoff_ms
      (policy.rp_backoff_ms * (1 lsl min attempt 20))
  in
  (* Uniform in [0.5, 1.5) of the base: staggers a retry herd without
     ever waiting more than 1.5x the nominal schedule. *)
  let factor = 0.5 +. Arde.Prng.float prng 1.0 in
  float_of_int base *. factor /. 1000.

(* What happened to one attempt, as seen by the retry loop. *)
type attempt_outcome =
  | Final of (J.t, string) result
  | Retryable of (J.t, string) result

(* [build ~retry] builds the wire request payload for one attempt — the
   retry loop is payload-agnostic, shared by program and trace submits
   on either wire. *)
let attempt_once ~endpoint ~wire ~max_frame ~build ~attempt =
  match connect ~wire ?max_frame ~endpoint () with
  | Error e ->
      (* The daemon was not reachable (refused, missing socket, failed
         handshake): nothing ran, unconditionally safe to retry. *)
      Retryable (Error e)
  | Ok c ->
      let outcome =
        match request_payload c (build ~retry:attempt) with
        | Error _ as e ->
            (* A transport failure after the request was sent is not
               provably pre-execution, and run requests are answered in
               order, so the conservative policy is to surface it. *)
            Final e
        | Ok response -> (
            match P.response_error response with
            | Some (code, _) when P.retryable_code code ->
                Retryable (Ok response)
            | _ -> Final (Ok response))
      in
      close c;
      outcome

let with_retry ~endpoint ~wire ~max_frame ~policy build =
  let prng = Arde.Prng.create policy.rp_jitter_seed in
  let rec go attempt =
    match attempt_once ~endpoint ~wire ~max_frame ~build ~attempt with
    | Final r -> (r, attempt)
    | Retryable r ->
        if attempt >= policy.rp_attempts then (r, attempt)
        else begin
          policy.rp_sleep (backoff_delay_s policy prng ~attempt);
          go (attempt + 1)
        end
  in
  go 0

let submit_with_retry ~endpoint ~policy ?(wire = P.Json) ?max_frame ?id
    ?deadline_ms ?record ~program ~mode ~options () =
  with_retry ~endpoint ~wire ~max_frame ~policy (fun ~retry ->
      match wire with
      | P.Json ->
          J.to_string
            (P.run_request_json ?id ?deadline_ms ~retry ?record ~program
               ~mode ~options ())
      | P.Binary ->
          P.binary_run_request ?id ?deadline_ms ~retry ?record ~program ~mode
            ~options ())

let submit_trace_with_retry ~endpoint ~policy ?(wire = P.Json) ?max_frame
    ?id ?deadline_ms ~trace () =
  with_retry ~endpoint ~wire ~max_frame ~policy (fun ~retry ->
      match wire with
      | P.Json ->
          J.to_string (P.replay_request_json ?id ?deadline_ms ~retry ~trace ())
      | P.Binary -> P.binary_replay_request ?id ?deadline_ms ~retry ~trace ())
