(* Blocking serve-socket client.  See client.mli. *)

module J = Arde.Json
module P = Protocol

type t = {
  cl_fd : Unix.file_descr;
  cl_dec : P.decoder;
  cl_buf : Bytes.t; (* per-connection: clients may live on different domains *)
  mutable cl_open : bool;
}

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () ->
      Ok
        {
          cl_fd = fd;
          cl_dec = P.decoder ();
          cl_buf = Bytes.create 65536;
          cl_open = true;
        }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket_path
           (Unix.error_message err))

let close t =
  if t.cl_open then begin
    t.cl_open <- false;
    try Unix.close t.cl_fd with Unix.Unix_error _ -> ()
  end

let fd t = t.cl_fd

let send_raw t bytes =
  if not t.cl_open then Error "connection closed"
  else
    let len = String.length bytes in
    let off = ref 0 in
    match
      while !off < len do
        off := !off + Unix.write_substring t.cl_fd bytes !off (len - !off)
      done
    with
    | () -> Ok ()
    | exception Unix.Unix_error (err, _, _) ->
        Error ("write: " ^ Unix.error_message err)

let send_frame t payload = send_raw t (P.frame payload)

let recv t =
  if not t.cl_open then Error "connection closed"
  else
    let rec loop () =
      match P.next_frame t.cl_dec with
      | P.Frame payload ->
          Result.map_error
            (fun e -> "response: " ^ e)
            (J.parse payload)
      | P.Too_large n ->
          Error (Printf.sprintf "response frame too large (%d bytes)" n)
      | P.Await -> (
          match Unix.read t.cl_fd t.cl_buf 0 (Bytes.length t.cl_buf) with
          | 0 -> Error "connection closed by server"
          | n ->
              P.feed t.cl_dec t.cl_buf 0 n;
              loop ()
          | exception Unix.Unix_error (err, _, _) ->
              Error ("read: " ^ Unix.error_message err))
    in
    loop ()

let request t json =
  match send_frame t (J.to_string json) with
  | Error _ as e -> e
  | Ok () -> recv t

let run t ?id ?deadline_ms ~program ~mode ~options () =
  request t (P.run_request_json ?id ?deadline_ms ~program ~mode ~options ())

let stats t = request t (P.stats_request ())
let ping t = request t (P.ping_request ())
