(** On-disk content-addressed store for prepared analysis bundles.

    The in-memory {!Arde.Analysis_cache} makes repeat submissions fast
    but is process-private: every daemon restart and every supervised
    worker respawn pays the full preparation cost again — dominated not
    by parsing or compilation (milliseconds) but by the machine's
    per-instrumentation spin cache, hundreds of milliseconds on the
    PARSEC-scale programs.  This store persists prepared bundles to a
    directory shared by every worker of a daemon (and by successive
    daemons), keyed by the same [(digest, mode, style, count_callees)]
    tuple the memory cache uses, so a restarted or sibling worker starts
    warm from earlier work.

    {b Entry format.}  One file per key, named by an MD5 over the
    length-prefixed key components, holding
    [magic · version · lpbytes body · varint fnv(body)] encoded with
    {!Arde.Trace_codec}'s primitives.  The body echoes the key, then
    carries the processed (lowered) program text, the
    condition-variable and inferred-lock lists, and the spin cache as
    plain int arrays.  Loading re-parses and re-compiles the text and
    re-derives the instrumentation — all cheap — and installs the
    deserialized spin cache, skipping the one expensive build.

    {b Durability and failure.}  Writes go to a pid-unique tmp file and
    rename into place, so readers never observe a partial entry and
    racing workers degenerate to last-writer-wins with byte-identical
    content (the encoding is deterministic).  Every load failure —
    truncation, checksum mismatch, unknown version, key echo mismatch,
    unparsable program, spin-cache shape mismatch — is fail-open: the
    entry is deleted, the [corrupt_recovered] counter bumps, and the
    caller recomputes.  Write failures (ENOSPC and friends) bump
    [store_errors] and serving degrades to compute-only.  Nothing in
    this module is ever fatal to the worker.

    {b Sweep.}  After each write-back the directory is swept
    oldest-mtime-first down to the size bound; a disk hit freshens its
    entry's mtime, making the policy LRU. *)

type t

val create : ?max_mb:int -> dir:string -> unit -> (t, string) result
(** Open (creating if needed) the store directory.  [max_mb] bounds the
    directory size for the post-write sweep (default
    {!default_max_mb}). *)

val default_max_mb : int

val dir : t -> string

val analysis_store : t -> Arde.Analysis_cache.store
(** The hook to register with {!Arde.Analysis_cache.set_store}: load on
    memory miss, save on fresh compute. *)

(** {2 Counters} *)

type stats = {
  st_hits : int;  (** entries loaded from disk *)
  st_misses : int;  (** lookups finding no entry *)
  st_saves : int;  (** successful write-backs *)
  st_evictions : int;  (** entries removed by the LRU sweep *)
  st_corrupt : int;  (** corrupt/versioned-out entries recovered *)
  st_errors : int;  (** failed writes/encodes (ENOSPC, …) *)
}

val zero_stats : stats
val stats : t -> stats
val stats_delta : before:stats -> after:stats -> stats
val stats_add : stats -> stats -> stats
val stats_to_json : stats -> Arde.Json.t
val stats_of_json : Arde.Json.t -> stats
(** Inverse of {!stats_to_json}, absent fields reading as 0 — used by
    the supervisor to aggregate worker-reported deltas. *)

val usage : t -> int * int
(** [(entries, bytes)] currently on disk. *)

(** {2 Administration — the [arde cache] subcommand} *)

type entry_info = {
  e_path : string;
  e_digest_hex : string;
  e_mode : string;
  e_style : string;
  e_count_callees : bool;
  e_bytes : int;
  e_age_s : float;
}

val entries : t -> entry_info list
(** Every readable entry, most recently used first.  Unreadable entries
    are skipped (use {!verify} to delete them). *)

val gc : t -> max_bytes:int -> int
(** Sweep oldest-first down to [max_bytes]; returns entries removed. *)

val clear : t -> int
(** Delete every entry; returns entries removed. *)

val verify : t -> int * int
(** Full checksum walk: [(kept, deleted)].  Corrupt entries are deleted
    and counted into [corrupt_recovered]. *)

(**/**)

(* Exposed for tests: the raw codec and naming. *)
val encode :
  digest:string ->
  mode_id:string ->
  style:Arde.Lower.style ->
  count_callees:bool ->
  Arde.Analysis_cache.prepared ->
  string

val entry_path :
  t ->
  digest:string ->
  mode_id:string ->
  style:Arde.Lower.style ->
  count_callees:bool ->
  string
