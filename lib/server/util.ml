(* EINTR-safe syscall wrappers and non-blocking output buffering shared
   by the supervisor, the worker shim and the client.  See util.mli. *)

let rec retry_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (EINTR, _, _) -> retry_eintr f

let read fd buf off len = retry_eintr (fun () -> Unix.read fd buf off len)

let write_substring fd s off len =
  retry_eintr (fun () -> Unix.write_substring fd s off len)

let accept ?cloexec fd = retry_eintr (fun () -> Unix.accept ?cloexec fd)
let connect fd addr = retry_eintr (fun () -> Unix.connect fd addr)

let waitpid flags pid = retry_eintr (fun () -> Unix.waitpid flags pid)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + write_substring fd s !off (len - !off)
  done

(* Numeric addresses resolve without NSS; "localhost" and "" short-cut
   to loopback so a daemon or client in a minimal container needs no
   resolver. *)
let resolve_host host =
  if host = "" || host = "localhost" then Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | addr -> addr
    | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> raise Not_found
        | h -> h.Unix.h_addr_list.(0))

let sleepf dt =
  (* [Unix.sleepf] can be cut short by a signal; finish the nap. *)
  let until = Unix.gettimeofday () +. dt in
  let rec nap () =
    let left = until -. Unix.gettimeofday () in
    if left > 0. then begin
      (try Unix.sleepf left with Unix.Unix_error (EINTR, _, _) -> ());
      nap ()
    end
  in
  nap ()

(* ------------------------------------------------------------------ *)
(* Non-blocking output buffering                                      *)

(* The supervisor is one thread for every connection and every worker
   pipe, so it must never block in [write].  Frames are appended to an
   [outbuf] and flushed opportunistically; a destination that cannot
   keep up accumulates buffer, and the owner decides when that is fatal
   (see [size]). *)

type outbuf = {
  q : string Queue.t;
  mutable head_off : int; (* bytes of [Queue.peek q] already written *)
  mutable buffered : int; (* total unwritten bytes *)
}

let outbuf () = { q = Queue.create (); head_off = 0; buffered = 0 }
let outbuf_size b = b.buffered
let outbuf_is_empty b = b.buffered = 0

let outbuf_push b s =
  if String.length s > 0 then begin
    Queue.add s b.q;
    b.buffered <- b.buffered + String.length s
  end

type flush_result = Flushed | Partial | Peer_gone

let outbuf_flush b fd =
  let rec go () =
    match Queue.peek_opt b.q with
    | None -> Flushed
    | Some s -> (
        let len = String.length s - b.head_off in
        match write_substring fd s b.head_off len with
        | n ->
            b.buffered <- b.buffered - n;
            if n = len then begin
              ignore (Queue.pop b.q);
              b.head_off <- 0;
              go ()
            end
            else begin
              b.head_off <- b.head_off + n;
              Partial
            end
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> Partial
        | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
            Peer_gone)
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Durable file writes                                                *)

let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  match
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600
        tmp
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Unix.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error e
  | exception Unix.Unix_error (err, fn, _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception (Sys_error e : exn) -> Error e
          | exception End_of_file -> Error (path ^ ": truncated"))
