(* The worker-process shim.  See worker.mli.

   A worker is this very executable re-exec'ed with {!marker} as its
   first argument: OCaml 5 forbids [Unix.fork] in any process that has
   ever created a domain, so the supervisor (which must stay fork-free
   and domain-free) launches workers with [Unix.create_process], and
   every host binary (CLI, tests, benchmark) installs {!hook} at the top
   of its [main] to catch the marker and become a worker instead. *)

module J = Arde.Json
module P = Protocol

let marker = "__arde-serve-worker__"

type args = {
  a_spool : string;
  a_index : int;
  a_jobs : int;
  a_max_frame : int;
  a_chaos : Arde.Chaos.Serve.plan;
  a_store : string; (* bundle-store directory; "" = store disabled *)
  a_store_max_mb : int;
}

let worker_args ~spool ~index ~jobs ~max_frame ~chaos_plan ~store
    ~store_max_mb =
  [|
    marker;
    "--spool";
    spool;
    "--index";
    string_of_int index;
    "--jobs";
    string_of_int jobs;
    "--max-frame";
    string_of_int max_frame;
    "--chaos-plan";
    chaos_plan;
    "--store";
    store;
    "--store-max-mb";
    string_of_int store_max_mb;
  |]

let parse_args argv =
  let a =
    ref
      {
        a_spool = "";
        a_index = 0;
        a_jobs = 0;
        a_max_frame = P.default_max_frame;
        a_chaos = Arde.Chaos.Serve.empty;
        a_store = "";
        a_store_max_mb = Store.default_max_mb;
      }
  in
  let rec go = function
    | [] -> Ok !a
    | "--spool" :: v :: tl ->
        a := { !a with a_spool = v };
        go tl
    | "--index" :: v :: tl ->
        a := { !a with a_index = int_of_string v };
        go tl
    | "--jobs" :: v :: tl ->
        a := { !a with a_jobs = int_of_string v };
        go tl
    | "--max-frame" :: v :: tl ->
        a := { !a with a_max_frame = int_of_string v };
        go tl
    | "--chaos-plan" :: v :: tl -> (
        match Arde.Chaos.Serve.parse v with
        | Ok plan ->
            a := { !a with a_chaos = plan };
            go tl
        | Error e -> Error e)
    | "--store" :: v :: tl ->
        a := { !a with a_store = v };
        go tl
    | "--store-max-mb" :: v :: tl ->
        a := { !a with a_store_max_mb = int_of_string v };
        go tl
    | other :: _ -> Error (Printf.sprintf "unknown worker argument %S" other)
  in
  match go argv with
  | r -> r
  | exception Failure _ -> Error "malformed worker argument"

(* ------------------------------------------------------------------ *)
(* Execution (one request at a time, same pipeline as PR 5's worker
   domain, now in its own process)                                    *)

type state = {
  args : args;
  spool : Spool.t;
  store : Store.t option; (* the shared on-disk bundle store *)
  pool : Arde.Domain_pool.pool;
  programs : (string, Arde.Types.program) Hashtbl.t;
  mutable count : int; (* requests executed, drives the chaos plan *)
}

(* [digest] comes from the job header — the supervisor already digested
   the program for affinity routing, so the worker never re-hashes the
   (potentially very large) text. *)
let lookup_program st ~digest text =
  match Hashtbl.find_opt st.programs digest with
  | Some p -> Ok p
  | None -> (
      match Arde.Parse.program text with
      | Error e -> Error ("program: " ^ Arde.Parse.error_to_string e)
      | Ok p -> (
          match Arde.Validate.check p with
          | Error es ->
              Error
                ("program: "
                ^ String.concat "; "
                    (List.map Arde.Validate.error_to_string es))
          | Ok () ->
              Hashtbl.replace st.programs digest p;
              Ok p))

(* Returns the canonical JSON response plus, in record mode, the raw
   trace bytes — so a binary-wire response can carry them without
   round-tripping through the JSON object's base64 field. *)
let execute st ~digest (req : P.run_request) =
  let before = Arde.Analysis_cache.stats () in
  let store_before =
    match st.store with Some s -> Store.stats s | None -> Store.zero_stats
  in
  let started = Unix.gettimeofday () in
  let should_stop =
    match req.P.rq_deadline_ms with
    | None -> fun () -> false
    | Some ms ->
        fun () -> (Unix.gettimeofday () -. started) *. 1000. > float_of_int ms
  in
  let respond result extra =
    let after = Arde.Analysis_cache.stats () in
    let delta = Arde.Analysis_cache.stats_delta ~before ~after in
    let store_field =
      match st.store with
      | None -> []
      | Some s ->
          [
            ( "store",
              Store.stats_to_json
                (Store.stats_delta ~before:store_before
                   ~after:(Store.stats s)) );
          ]
    in
    P.ok_response ~id:req.P.rq_id
      ([
         ("result", Arde.Driver.result_to_json result);
         ("analysis_cache", Arde.Analysis_cache.stats_to_json delta);
       ]
      @ store_field @ extra)
  in
  match req.P.rq_payload with
  | P.Rq_trace trace -> (
      (* The replay-farm path: detection without the machine.  The
         program comes out of the trace itself; [digest] (from the trace
         header, via the supervisor) still keys the analysis cache, so
         repeated replays of the same program skip the static phase. *)
      match Arde.Recorded.of_string trace with
      | Error msg ->
          (P.error_response ~id:req.P.rq_id P.Bad_request ("trace: " ^ msg),
           None)
      | Ok recorded -> (
          let ctx =
            Arde.Driver.ctx ~pool:st.pool ~should_stop ~program_digest:digest
              ()
          in
          match Arde.detect ~ctx (Arde.Input.Recorded_trace recorded) with
          | result -> (respond result [], None)
          | exception e ->
              (P.error_response ~id:req.P.rq_id P.Internal
                 (Printexc.to_string e),
               None)))
  | P.Rq_program { rp_program; rp_mode; rp_options; rp_record } -> (
      match lookup_program st ~digest rp_program with
      | Error msg -> (P.error_response ~id:req.P.rq_id P.Bad_request msg, None)
      | Ok program -> (
          let ctx =
            Arde.Driver.ctx ~options:rp_options ~pool:st.pool ~should_stop
              ~program_digest:digest ()
          in
          if not rp_record then
            match Arde.detect ~ctx ~mode:rp_mode (Arde.Input.Program program) with
            | result -> (respond result [], None)
            | exception e ->
                (P.error_response ~id:req.P.rq_id P.Internal
                   (Printexc.to_string e),
                 None)
          else
            (* Record-mode: the record/replay split live.  The cheap
               recording pass runs first and the trace lands in the
               spool before the expensive detection pass — so a worker
               killed mid-detection seals a bundle whose trace replays
               the detection deterministically.  The response's result
               comes from replaying that very trace, which the identity
               oracle guarantees equals the live run's. *)
            match
              Arde.record ~ctx ~mode:rp_mode ~source:"serve"
                (Arde.Input.Program program)
            with
            | Error msg -> (P.error_response ~id:req.P.rq_id P.Internal msg, None)
            | Ok { Arde.Driver.rec_trace; _ } -> (
                (* Best-effort, like the request journal. *)
                (match
                   Spool.journal_trace st.spool ~worker:st.args.a_index
                     ~trace:rec_trace
                 with
                | Ok () | Error _ -> ());
                match Arde.Recorded.of_string rec_trace with
                | Error msg ->
                    (P.error_response ~id:req.P.rq_id P.Internal
                       ("recorded trace: " ^ msg),
                     None)
                | Ok recorded -> (
                    match
                      Arde.detect ~ctx (Arde.Input.Recorded_trace recorded)
                    with
                    | result ->
                        (respond result
                           [ ("trace", J.String (Arde.Base64.encode rec_trace)) ],
                         Some rec_trace)
                    | exception e ->
                        (P.error_response ~id:req.P.rq_id P.Internal
                           (Printexc.to_string e),
                         None)))
            | exception e ->
                (P.error_response ~id:req.P.rq_id P.Internal
                   (Printexc.to_string e),
                 None)))

(* ------------------------------------------------------------------ *)
(* The frame loop.  The supervisor hands us its socketpair end as our
   stdin; the socket is bidirectional, so frames flow both ways on
   fd 0.  Our stdout is NOT the protocol channel (the supervisor points
   it at stderr): host binaries may link libraries that print there. *)

let stdin_fd = Unix.stdin
let stdout_fd = Unix.stdin

(* A completed job is two frames back to the supervisor: the small
   [done] header, then the response bytes verbatim.  The torn/slow
   chaos faults corrupt the PAYLOAD frame — the supervisor must treat a
   stream that dies mid-response as a crash, not as a response. *)
let send_done ?(faults = []) ?store ~job ~spool_error ~code raw_response =
  let module CS = Arde.Chaos.Serve in
  Util.write_all stdout_fd
    (P.frame (J.to_string (P.done_frame ?store ~job ~spool_error ~code ())));
  let bytes = P.frame raw_response in
  if List.mem CS.Torn_frame faults then begin
    (* Half the payload frame, then vanish. *)
    let half = max 1 (String.length bytes / 2) in
    Util.write_all stdout_fd (String.sub bytes 0 half);
    exit 0
  end
  else if List.mem CS.Slow_frame faults then begin
    let n = String.length bytes in
    let chunk = 4096 in
    let off = ref 0 in
    while !off < n do
      let len = min chunk (n - !off) in
      Util.write_all stdout_fd (String.sub bytes !off len);
      Util.sleepf 0.002;
      off := !off + len
    done
  end
  else Util.write_all stdout_fd bytes

let response_code resp =
  match P.response_error resp with Some (code, _) -> code | None -> "ok"

let send_done_json ?faults ~job ~spool_error resp =
  send_done ?faults ~job ~spool_error ~code:(response_code resp)
    (J.to_string resp)

(* A response leaves on the wire its request arrived on. *)
let send_done_resp ?faults ?store ?raw_trace ~job ~spool_error ~wire resp =
  send_done ?faults ?store ~job ~spool_error ~code:(response_code resp)
    (P.encode_response ?raw_trace ~wire resp)

(* [raw] is the client's request exactly as it crossed the public
   socket: parsed once here (the supervisor never parses bodies), and
   journaled byte-for-byte. *)
let handle_job st ~job ~digest raw =
  let module CS = Arde.Chaos.Serve in
  let wire = P.payload_wire raw in
  match P.parse_request raw with
  | Error (id, code, msg) ->
      send_done_resp ~job ~spool_error:false ~wire (P.error_response ~id code msg)
  | Ok (P.Ping id | P.Stats id) ->
      send_done_resp ~job ~spool_error:false ~wire
        (P.error_response ~id P.Internal "worker received a non-run request")
  | Ok P.Hello ->
      send_done_resp ~job ~spool_error:false ~wire
        (P.error_response ~id:J.Null P.Internal
           "worker received a non-run request")
  | Ok (P.Run req) ->
      st.count <- st.count + 1;
      let store_before =
        match st.store with
        | Some s -> Store.stats s
        | None -> Store.zero_stats
      in
      let faults = CS.fires st.args.a_chaos ~count:st.count in
      (* Journal before executing: if we die mid-request the supervisor
         seals this journal into a replayable crash bundle.  Journaling
         is best-effort — a full disk must not fail the request. *)
      let spool_error =
        if List.mem CS.Spool_enospc faults then true
        else
          match
            Spool.journal st.spool ~worker:st.args.a_index
              ~pid:(Unix.getpid ()) ~digest ~request:raw
          with
          | Ok () -> false
          | Error _ -> true
      in
      if List.mem CS.Kill_self faults then
        (* The moral equivalent of a segfault mid-request. *)
        Unix.kill (Unix.getpid ()) Sys.sigkill;
      if List.mem CS.Wedge faults then
        (* Ignore every cooperative-cancellation convention and burn
           wall-clock until the watchdog SIGKILLs us. *)
        while true do
          Util.sleepf 3600.
        done;
      let response, raw_trace = execute st ~digest req in
      Spool.clear st.spool ~worker:st.args.a_index;
      let store =
        match st.store with
        | None -> None
        | Some s ->
            Some
              (Store.stats_to_json
                 (Store.stats_delta ~before:store_before
                    ~after:(Store.stats s)))
      in
      send_done_resp ~faults ?store ?raw_trace ~job ~spool_error ~wire
        response

let main args =
  (* The supervisor owns our lifecycle: drain arrives as stdin EOF,
     crash-class shutdown as SIGKILL.  Terminal-delivered SIGINT/SIGTERM
     (the whole process group gets them) must not make an in-flight
     request look like a crash. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let spool =
    match Spool.create ~root:args.a_spool with
    | Ok s -> s
    | Error e ->
        prerr_endline ("arde-serve worker: " ^ e);
        exit 66
  in
  let jobs =
    if args.a_jobs <= 0 then Arde.Domain_pool.default_jobs () else args.a_jobs
  in
  (* The bundle store is strictly optional: a store that cannot even be
     opened (bad path, permissions) logs once and the worker serves
     compute-only, same as every later store failure. *)
  let store =
    if args.a_store = "" then None
    else
      match Store.create ~max_mb:args.a_store_max_mb ~dir:args.a_store () with
      | Ok s -> Some s
      | Error e ->
          prerr_endline ("arde-serve worker: " ^ e ^ " (store disabled)");
          None
  in
  (match store with
  | Some s -> Arde.Analysis_cache.set_store (Some (Store.analysis_store s))
  | None -> ());
  let st =
    {
      args;
      spool;
      store;
      pool = Arde.Domain_pool.create ~jobs;
      programs = Hashtbl.create 16;
      count = 0;
    }
  in
  (* Ready: pool built, spool reachable. *)
  Util.write_all stdout_fd
    (P.frame
       (J.to_string
          (P.hello_frame ~worker:args.a_index ~pid:(Unix.getpid ()))));
  let dec = P.decoder ~max_frame:args.a_max_frame () in
  let buf = Bytes.create 65536 in
  (* Jobs arrive as a header frame then a raw request frame. *)
  let pending_job = ref None in
  let rec loop () =
    match P.next_frame dec with
    | P.Frame payload -> (
        match !pending_job with
        | Some (job, digest) ->
            pending_job := None;
            handle_job st ~job ~digest payload;
            loop ()
        | None -> (
            match P.parse_job payload with
            | Ok job_header ->
                pending_job := Some job_header;
                loop ()
            | Error e ->
                send_done_json ~job:(-1) ~spool_error:false
                  (P.error_response ~id:J.Null P.Internal ("worker: " ^ e));
                loop ()))
    | P.Too_large _ -> exit 65
    | P.Await -> (
        match Util.read stdin_fd buf 0 (Bytes.length buf) with
        | 0 -> () (* supervisor closed our stdin: drain complete *)
        | n ->
            P.feed dec buf 0 n;
            loop ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> ())
  in
  loop ();
  Arde.Domain_pool.shutdown st.pool

let hook () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = marker then begin
    let rest =
      Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
    in
    (match parse_args rest with
    | Error e ->
        prerr_endline ("arde-serve worker: " ^ e);
        exit 64
    | Ok args -> (
        match main args with
        | () -> ()
        | exception e ->
            prerr_endline ("arde-serve worker: " ^ Printexc.to_string e);
            exit 70));
    exit 0
  end
