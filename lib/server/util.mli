(** Shared plumbing for the serving stack.

    {2 EINTR}

    The supervisor fields SIGTERM/SIGINT/SIGCHLD while sitting in
    syscalls, and clients take signals from the shells that drive them;
    a signal landing mid-[read] must never surface as a spurious
    [internal] error.  Every blocking syscall the serving stack performs
    goes through these wrappers, which simply retry on [EINTR]
    ([Unix.select] is the one exception: its callers treat [EINTR] as a
    timeout so the loop re-examines its wake flags). *)

val retry_eintr : (unit -> 'a) -> 'a
(** Re-run [f] until it returns without raising [EINTR]. *)

val read : Unix.file_descr -> Bytes.t -> int -> int -> int
val write_substring : Unix.file_descr -> string -> int -> int -> int

val accept :
  ?cloexec:bool -> Unix.file_descr -> Unix.file_descr * Unix.sockaddr

val connect : Unix.file_descr -> Unix.sockaddr -> unit
val waitpid : Unix.wait_flag list -> int -> int * Unix.process_status

val write_all : Unix.file_descr -> string -> unit
(** Blocking full write (client side; the supervisor uses {!outbuf}). *)

val sleepf : float -> unit
(** [Unix.sleepf] that naps again after a signal until the full duration
    has elapsed. *)

val resolve_host : string -> Unix.inet_addr
(** Hostname to address, biased toward resolver-free containers: [""]
    and ["localhost"] map straight to loopback, numeric addresses parse
    without NSS, anything else goes through [gethostbyname].
    @raise Not_found when the name does not resolve. *)

(** {2 Non-blocking output buffering}

    The supervisor serves every connection and worker pipe from one
    thread, so writes must never block: frames are pushed whole into an
    {!outbuf} and flushed when [select] reports writability.  A slow or
    wedged peer shows up as a growing {!outbuf_size}. *)

type outbuf

val outbuf : unit -> outbuf
val outbuf_push : outbuf -> string -> unit
val outbuf_size : outbuf -> int
val outbuf_is_empty : outbuf -> bool

type flush_result =
  | Flushed  (** nothing left buffered *)
  | Partial  (** the fd stopped accepting bytes; select for writability *)
  | Peer_gone  (** EPIPE/ECONNRESET/EBADF: the owner should reap the fd *)

val outbuf_flush : outbuf -> Unix.file_descr -> flush_result

(** {2 Durable file writes} *)

val write_file_atomic : string -> string -> (unit, string) result
(** Write-tmp-then-rename so a crash mid-write never leaves a torn
    file — the spool's durability primitive. *)

val read_file : string -> (string, string) result
